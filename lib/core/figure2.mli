(** The Appendix E / Figure 2 execution: protection-based schemes (HP, HE,
    IBR) are defeated on Harris's list by inserting a node {e after} a
    reader's protection was established and reclaiming it while the
    reader's validated pointer still leads to it.

    Construction (equivalent to the paper's, with the unlinking folded
    into the two deletes): the list starts as [{15, 76}]. T1 invokes
    [insert 58] and is stalled holding a protected pointer to node 15;
    another thread inserts 43 (so [15.next -> 43]); node 15 is deleted
    (marked, unlinked, retired — but pinned by T1's protection where the
    scheme has one); node 43 is deleted and a reclamation pass runs — 43
    is unprotected, so protection-based schemes free it. T1 then resumes:
    it re-reads [15.next] (safe — 15 is retired but not reclaimed), finds
    it stable, and dereferences the pointer to 43's memory.

    Expected: HP/HE/IBR produce a [Stale_value_used] violation; EBR keeps
    43 alive (T1's announced epoch pins it), VBR validates-and-rolls-back,
    NBR neutralizes T1 before freeing. *)

type outcome =
  | Unsafe of Era_sim.Event.t  (** the first safety violation *)
  | Safe_completion of { retired_backlog : int }

type result = {
  scheme : string;
  outcome : outcome;
  t1_outcome : string;
  final_list : int list;  (** contents after the run (sanity) *)
}

val run : ?tracer:Era_obs.Tracer.t -> Era_smr.Registry.scheme -> result
(** [tracer] records the execution timeline — scheduler quanta, SMR
    lifecycle, operation spans, the violation instant — for Perfetto
    export; the run itself is unchanged (see {!Era_obs.Sim_trace}). *)

val run_footnote_variant :
  ?tracer:Era_obs.Tracer.t -> Era_smr.Registry.scheme -> result
(** The Appendix E footnote's control: node 43 is inserted {e before} T1
    establishes its protection. Era/interval reservations (HE, IBR) then
    cover 43 and the run is safe; HP is defeated either way (it protects
    addresses, and 43's address is unprotected regardless of order). *)

val run_all : unit -> result list
val pp_result : Format.formatter -> result -> unit

open Era_sim
module Sched = Era_sched.Sched

type outcome =
  | Unsafe of Event.t
  | Safe_completion of { retired_backlog : int }

type result = {
  scheme : string;
  outcome : outcome;
  t1_outcome : string;
  final_list : int list;
}

let t1 = 0  (* insert 58, stalled while holding node 15 *)
let t_ins = 1  (* insert 43 *)
let t_del43 = 2  (* delete 43, then run a reclamation pass *)
let t_del15 = 3  (* delete 15 *)

let run_gen ?tracer ~insert_43_early (module S : Era_smr.Smr_intf.S) =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Heap.create mon in
  let module L = Era_sets.Harris_list.Make (S) in
  let g = S.create heap ~nthreads:4 in
  (* Stall T1 exactly when its scheme-level read of [head.next] completes:
     it then holds a pointer to node 15, protected where the scheme
     protects. Protect-validate schemes (HP, HE) load the source twice per
     read; the others once. *)
  let head_addr = ref (-1) in
  let loads_per_read =
    match S.name with "hp" | "he" -> 2 | _ -> 1
  in
  let head_loads = ref 0 in
  let t1_reached_15 = function
    | Event.Access { tid; addr; kind = Event.Read; _ }
      when tid = t1 && addr = !head_addr ->
      incr head_loads;
      !head_loads >= loads_per_read
    | _ -> false
  in
  let script =
    Sched.Script
      [
        (* Stage a: T1 protects node 15 and halts. *)
        Sched.Run_until (t1, t1_reached_15);
        (* Stage b: node 43 enters after the protection. *)
        Sched.Finish t_ins;
        (* Stage c: 15 marked, unlinked, retired. *)
        Sched.Finish t_del15;
        (* Stage d: 43 deleted; a reclamation pass frees it if it can. *)
        Sched.Finish t_del43;
        (* T1 resumes and dereferences its stable pointer chain. *)
        Sched.Finish_bounded (t1, 100_000);
      ]
  in
  let sched = Sched.create ~nthreads:4 script heap in
  (match tracer with
  | None -> ()
  | Some tr ->
    Era_obs.Tracer.set_process_name tr (Printf.sprintf "figure2 %s" S.name);
    ignore (Era_obs.Sim_trace.attach tr mon : unit -> unit);
    Era_obs.Sim_trace.attach_sched tr sched
      ~names:
        [ (t1, "T1 insert(58) [stalls]"); (t_ins, "T2 insert(43)");
          (t_del43, "T3 delete(43)+quiesce"); (t_del15, "T4 delete(15)") ]);
  let ext = Sched.external_ctx sched ~tid:t_ins in
  let dl = L.create ext g in
  let h_setup = L.handle dl ext in
  assert (L.insert h_setup 15);
  assert (L.insert h_setup 76);
  (* The Appendix E footnote: inserting 43 *before* T1's protection lets
     era/interval reservations cover it, so HE and IBR survive; with the
     insertion after the protection (the default) they do not. *)
  if insert_43_early then assert (L.insert h_setup 43);
  head_addr := Word.addr_exn (L.head_word dl);
  Sched.spawn sched ~tid:t1 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.insert h 58));
  Sched.spawn sched ~tid:t_ins (fun ctx ->
      let h = L.handle dl ctx in
      if not insert_43_early then ignore (L.insert h 43));
  Sched.spawn sched ~tid:t_del15 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.delete h 15));
  Sched.spawn sched ~tid:t_del43 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.delete h 43);
      S.quiesce (L.tctx h));
  ignore (Sched.run sched);
  let violation =
    List.find_opt
      (fun ev ->
        match ev with
        | Event.Violation { kind = Event.Progress_failure; _ } -> false
        | Event.Violation _ -> true
        | _ -> false)
      (Monitor.violations mon)
  in
  let outcome =
    match violation with
    | Some v -> Unsafe v
    | None -> Safe_completion { retired_backlog = Monitor.retired mon }
  in
  let t1_outcome =
    match Sched.thread_outcome sched t1 with
    | Sched.Finished -> "finished"
    | Sched.Crashed e -> "crashed: " ^ Printexc.to_string e
    | Sched.Running -> "still suspended"
    | Sched.Not_spawned -> "not spawned"
  in
  let final_list =
    match outcome with
    | Unsafe _ -> []  (* the heap is poisoned; don't traverse *)
    | Safe_completion _ -> L.to_list h_setup
  in
  { scheme = S.name; outcome; t1_outcome; final_list }

let run ?tracer scheme = run_gen ?tracer ~insert_43_early:false scheme

let run_footnote_variant ?tracer scheme =
  run_gen ?tracer ~insert_43_early:true scheme
let run_all () = List.map run Era_smr.Registry.all

let pp_result fmt r =
  match r.outcome with
  | Unsafe v ->
    Fmt.pf fmt "%-6s UNSAFE: %a | T1 %s" r.scheme Event.pp v r.t1_outcome
  | Safe_completion { retired_backlog } ->
    Fmt.pf fmt "%-6s safe (retired backlog %d) | T1 %s | list=[%a]" r.scheme
      retired_backlog r.t1_outcome
      Fmt.(list ~sep:semi int)
      r.final_list

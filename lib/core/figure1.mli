(** The Theorem 6.1 lower-bound execution (Figure 1 of the paper),
    parameterized by the reclamation scheme.

    Construction: Harris's list starts as [{1, 2}]. T1 invokes [delete 3]
    and is stalled by the scheduler just after its traversal obtains a
    pointer to node 1. T2 then executes [delete 1] followed by the
    alternating churn [insert (n+1); delete n] for n = 2, 3, ... — so
    [max_active] stays 4 while n nodes are retired. Finally T1 solo-runs
    to completion under a step budget (the lock-freedom requirement of
    Definition 5.4(3)).

    The theorem says every scheme must lose something here, and the
    outcome type enumerates exactly what:
    - easy + widely-applicable schemes keep every retired node alive
      (EBR — robustness lost) — or reclaim and then feed T1 a freed node
      (HP/HE/IBR — applicability lost, reported as a safety violation);
    - the schemes that survive with bounded memory (VBR, NBR) are exactly
      the ones whose integration audit fails Definition 5.3. *)

type outcome =
  | Robustness_violated of {
      retired_end : int;  (** retired backlog after the churn *)
      max_active : int;  (** stays ~4: the backlog is unbounded in n *)
    }
  | Safety_violated of { violation : Era_sim.Event.t }
  | Survived of { retired_peak : int }

type result = {
  scheme : string;
  rounds : int;
  series : (int * int) list;
      (** (churn round, retired backlog) — the figure's data *)
  outcome : outcome;
  easily_integrated : bool;
  t1_outcome : string;  (** how the stalled thread's solo run ended *)
}

val run : ?tracer:Era_obs.Tracer.t -> ?rounds:int -> Era_smr.Registry.scheme -> result
(** Default 256 churn rounds. [tracer] records the execution timeline
    for Perfetto export without changing the run (see
    {!Era_obs.Sim_trace}). *)

val run_all : ?rounds:int -> unit -> result list

val pp_result : Format.formatter -> result -> unit
val pp_outcome : Format.formatter -> outcome -> unit

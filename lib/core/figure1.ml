open Era_sim
module Sched = Era_sched.Sched

type outcome =
  | Robustness_violated of {
      retired_end : int;
      max_active : int;
    }
  | Safety_violated of { violation : Event.t }
  | Survived of { retired_peak : int }

type result = {
  scheme : string;
  rounds : int;
  series : (int * int) list;
  outcome : outcome;
  easily_integrated : bool;
  t1_outcome : string;
}

let t1 = 0
let t2 = 1

let run ?tracer ?(rounds = 256) (module S : Era_smr.Smr_intf.S) =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Heap.create mon in
  let module L = Era_sets.Harris_list.Make (S) in
  let g = S.create heap ~nthreads:2 in
  (* T1 stalls as soon as its traversal dereferences node 1, i.e. it holds
     a (scheme-protected, where applicable) pointer to node 1. The address
     is only known after setup, hence the reference. *)
  let node1_addr = ref (-1) in
  let t1_reached_node1 = function
    | Event.Access { tid; addr; kind = Event.Read; _ } ->
      tid = t1 && addr = !node1_addr
    | _ -> false
  in
  let solo_budget = (rounds * 64) + 100_000 in
  let script =
    Sched.Script
      [
        Sched.Run_until (t1, t1_reached_node1);
        Sched.Finish t2;
        Sched.Finish_bounded (t1, solo_budget);
      ]
  in
  let sched = Sched.create ~nthreads:2 script heap in
  (match tracer with
  | None -> ()
  | Some tr ->
    Era_obs.Tracer.set_process_name tr (Printf.sprintf "figure1 %s" S.name);
    ignore (Era_obs.Sim_trace.attach tr mon : unit -> unit);
    Era_obs.Sim_trace.attach_sched tr sched
      ~names:[ (t1, "T1 delete(3) [stalls]"); (t2, "T2 churn") ]);
  (* Stage (a): the list contains nodes 1 and 2. *)
  let ext = Sched.external_ctx sched ~tid:t2 in
  let dl = L.create ext g in
  let h_setup = L.handle dl ext in
  assert (L.insert h_setup 1);
  assert (L.insert h_setup 2);
  (node1_addr :=
     match
       List.find_opt (fun (_, _, key) -> key = 1) (Heap.live_nodes heap)
     with
     | Some (addr, _, _) -> addr
     | None -> failwith "figure1: node 1 not found after setup");
  (* The series samples the retired backlog after each churn round. *)
  let series = ref [] in
  let round = ref 0 in
  Monitor.subscribe mon (fun _time ev ->
      match ev with
      | Event.Response { tid; op; _ } when tid = t2 && op.Event.name = "delete"
        ->
        incr round;
        series := (!round, Monitor.retired mon) :: !series
      | _ -> ());
  Sched.spawn sched ~tid:t1 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.delete h 3));
  Sched.spawn sched ~tid:t2 (fun ctx ->
      let h = L.handle dl ctx in
      let ops = L.ops h ~record:true in
      ignore (ops.delete 1);
      List.iter
        (fun (k_ins, k_del) ->
          ignore (ops.insert k_ins);
          ignore (ops.delete k_del))
        (Era_workload.Workload.churn_keys ~base:2 ~rounds));
  ignore (Sched.run sched);
  let retired_end =
    match !series with (_, r) :: _ -> r | [] -> Monitor.retired mon
  in
  let safety_violation =
    List.find_opt
      (fun ev ->
        match ev with
        | Event.Violation { kind; _ } -> (
          match kind with
          | Event.Progress_failure -> false
          | _ -> true)
        | _ -> false)
      (Monitor.violations mon)
  in
  let outcome =
    match safety_violation with
    | Some v -> Safety_violated { violation = v }
    | None ->
      if retired_end >= rounds / 2 then
        Robustness_violated { retired_end; max_active = Monitor.max_active mon }
      else Survived { retired_peak = Monitor.max_retired mon }
  in
  let t1_outcome =
    match Sched.thread_outcome sched t1 with
    | Sched.Finished -> "finished"
    | Sched.Crashed e -> "crashed: " ^ Printexc.to_string e
    | Sched.Running -> "still suspended (budget exhausted)"
    | Sched.Not_spawned -> "not spawned"
  in
  {
    scheme = S.name;
    rounds;
    series = List.rev !series;
    outcome;
    easily_integrated =
      Era_smr.Registry.easily_integrated (module S : Era_smr.Smr_intf.S);
    t1_outcome;
  }

let run_all ?rounds () =
  List.map (fun s -> run ?rounds s) Era_smr.Registry.all

let pp_outcome fmt = function
  | Robustness_violated { retired_end; max_active } ->
    Fmt.pf fmt "ROBUSTNESS VIOLATED (retired backlog %d with max_active %d)"
      retired_end max_active
  | Safety_violated { violation } ->
    Fmt.pf fmt "SAFETY VIOLATED (%a)" Event.pp violation
  | Survived { retired_peak } ->
    Fmt.pf fmt "survived (peak retired backlog %d)" retired_peak

let pp_result fmt r =
  Fmt.pf fmt "%-6s %s | easy-integration=%b | T1 %s" r.scheme
    (Fmt.str "%a" pp_outcome r.outcome)
    r.easily_integrated r.t1_outcome

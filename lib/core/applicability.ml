open Era_sim
module Sched = Era_sched.Sched
module Workload = Era_workload.Workload

type structure =
  | Harris
  | Michael
  | Hash
  | Hash_michael
  | Stack
  | Queue

let structures = [ Harris; Michael; Hash; Hash_michael; Stack; Queue ]

let structure_name = function
  | Harris -> "harris-list"
  | Michael -> "michael-list"
  | Hash -> "hash-harris"
  | Hash_michael -> "hash-michael"
  | Stack -> "treiber-stack"
  | Queue -> "ms-queue"

type verdict = {
  scheme : string;
  structure : structure;
  fuzz_runs : int;
  violations : int;
  first_violation : Event.t option;
  non_linearizable : int;
  progress_failures : int;
  adversarial_unsafe : bool;
  crashed : int;
}

let applicable v =
  v.violations = 0 && v.non_linearizable = 0 && v.progress_failures = 0
  && (not v.adversarial_unsafe)
  && v.crashed = 0

let spec_of = function
  | Harris | Michael | Hash | Hash_michael ->
    (module Era_history.Spec.Int_set : Era_history.Spec.S)
  | Stack -> (module Era_history.Spec.Int_stack)
  | Queue -> (module Era_history.Spec.Int_queue)

(* Build the structure and return one worker body per thread. *)
let build_workers (type gt tc)
    (module S : Era_smr.Smr_intf.S with type t = gt and type tctx = tc)
    structure heap ~nthreads ~seed ~ops_per_thread ext =
  let g = S.create heap ~nthreads in
  let keys = Workload.Uniform 6 in
  match structure with
  | Harris ->
    let module L = Era_sets.Harris_list.Make (S) in
    let dl = L.create ext g in
    fun tid (ctx : Sched.ctx) ->
      let ops = L.ops (L.handle dl ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix:Workload.balanced;
      ops.quiesce ()
  | Michael ->
    let module L = Era_sets.Michael_list.Make (S) in
    let dl = L.create ext g in
    fun tid ctx ->
      let ops = L.ops (L.handle dl ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix:Workload.balanced;
      ops.quiesce ()
  | Hash ->
    let module H = Era_sets.Hash_set.Make (S) in
    let hs = H.create ~nbuckets:4 ext g in
    fun tid ctx ->
      let ops = H.ops (H.handle hs ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix:Workload.balanced;
      ops.quiesce ()
  | Hash_michael ->
    let module H = Era_sets.Hash_set.Make_michael (S) in
    let hs = H.create ~nbuckets:4 ext g in
    fun tid ctx ->
      let ops = H.ops (H.handle hs ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix:Workload.balanced;
      ops.quiesce ()
  | Stack ->
    let module T = Era_sets.Treiber_stack.Make (S) in
    let st = T.create ext g in
    fun tid ctx ->
      let ops = T.ops (T.handle st ctx) ~record:true in
      Workload.run_stack_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys;
      ops.quiesce ()
  | Queue ->
    let module Q = Era_sets.Ms_queue.Make (S) in
    let q = Q.create ext g in
    fun tid ctx ->
      let ops = Q.ops (Q.handle q ctx) ~record:true in
      Workload.run_queue_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys;
      ops.quiesce ()

type run_stats = {
  r_violations : int;
  r_first : Event.t option;
  r_linearizable : bool;
  r_progress_failures : int;
  r_crashed : int;
}

let one_run (module S : Era_smr.Smr_intf.S) structure ~threads ~ops_per_thread
    ~seed ~progress_mode =
  (* Only the Invoke/Response stream feeds the linearizability check, so
     collect exactly those kinds through a tag subscription; every
     memory access then stays on the monitor's allocation-free fast
     path. Filtering preserves the order of operation events, which is
     all the precedence relation of the checker depends on. *)
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let ops_log = Vec.create () in
  Monitor.subscribe_tags mon
    [ Event.tag_invoke; Event.tag_response ]
    (fun _time ev -> Vec.push ops_log ev);
  let heap = Heap.create mon in
  let strategy =
    if progress_mode then
      (* Interleave a prefix, then force bounded solo completions: the
         executable form of the lock-freedom requirement. *)
      Sched.Script
        (List.init threads (fun tid -> Sched.Run (tid, 40 + (7 * tid)))
        @ List.init threads (fun tid -> Sched.Finish_bounded (tid, 200_000)))
    else Sched.Random (Rng.create seed)
  in
  let sched = Sched.create ~nthreads:threads strategy heap in
  let ext = Sched.external_ctx sched ~tid:0 in
  let worker =
    build_workers (module S) structure heap ~nthreads:threads ~seed
      ~ops_per_thread ext
  in
  for tid = 0 to threads - 1 do
    Sched.spawn sched ~tid (fun ctx -> worker tid ctx)
  done;
  ignore (Sched.run sched);
  let is_progress = function
    | Event.Violation { kind = Event.Progress_failure; _ } -> true
    | _ -> false
  in
  let all = Monitor.violations mon in
  let progress, safety = List.partition is_progress all in
  let crashed = ref 0 in
  for tid = 0 to threads - 1 do
    match Sched.thread_outcome sched tid with
    | Sched.Crashed _ -> incr crashed
    | _ -> ()
  done;
  let linearizable =
    if safety <> [] then true  (* poisoned heap: correctness moot *)
    else
      (Era_history.Linearize.check (spec_of structure)
         (Era_history.History.of_trace (Vec.to_list ops_log)))
        .Era_history.Linearize.ok
  in
  {
    r_violations = List.length safety;
    r_first = (match safety with v :: _ -> Some v | [] -> None);
    r_linearizable = linearizable;
    r_progress_failures = List.length progress;
    r_crashed = !crashed;
  }

let adversarial_check scheme structure =
  match structure with
  | Harris | Hash -> (
    (* The hash set's buckets are Harris lists, so the Figure 1/2
       executions stage verbatim inside one bucket: the refutation is
       inherited. *)
    let f2 = Figure2.run scheme in
    (match f2.Figure2.outcome with
    | Figure2.Unsafe _ -> true
    | Figure2.Safe_completion _ -> false)
    ||
    let f1 = Figure1.run ~rounds:128 scheme in
    match f1.Figure1.outcome with
    | Figure1.Safety_violated _ -> true
    | Figure1.Robustness_violated _ | Figure1.Survived _ -> false)
  | Michael | Hash_michael | Stack | Queue -> false

let run ?(fuzz_runs = 20) ?(threads = 3) ?(ops_per_thread = 30) ?(seed = 7)
    ((module S : Era_smr.Smr_intf.S) as scheme) structure =
  let violations = ref 0 in
  let first = ref None in
  let non_lin = ref 0 in
  let progress = ref 0 in
  let crashed = ref 0 in
  for i = 0 to fuzz_runs - 1 do
    let progress_mode = i mod 4 = 3 in
    let st =
      one_run (module S) structure ~threads ~ops_per_thread
        ~seed:(seed + (i * 997))
        ~progress_mode
    in
    violations := !violations + st.r_violations;
    if !first = None then first := st.r_first;
    if not st.r_linearizable then incr non_lin;
    progress := !progress + st.r_progress_failures;
    crashed := !crashed + st.r_crashed
  done;
  {
    scheme = S.name;
    structure;
    fuzz_runs;
    violations = !violations;
    first_violation = !first;
    non_linearizable = !non_lin;
    progress_failures = !progress;
    adversarial_unsafe = adversarial_check scheme structure;
    crashed = !crashed;
  }

(* Stall-augmented fuzzing: random schedules plus a thread frozen at a
   random point and resumed at the end — the ingredient that lets a
   black-box search stumble on Figure 1-like executions without being
   told the construction. *)
let stall_fuzz ?(threads = 3) ?(ops_per_thread = 60) ~tries ~seed
    ((module S : Era_smr.Smr_intf.S) as scheme) structure =
  ignore scheme;
  let found = ref 0 in
  for i = 0 to tries - 1 do
    let mon = Monitor.create ~mode:`Record ~trace:false () in
    let heap = Heap.create mon in
    let rng = Rng.create (seed + (i * 7919)) in
    let sched = Sched.create ~nthreads:threads (Sched.Random rng) heap in
    let stall_at = 50 + Rng.int rng 400 in
    let count = ref 0 in
    Monitor.subscribe mon (fun _ ev ->
        match ev with
        | Event.Access { tid = 0; _ } ->
          incr count;
          if !count = stall_at then Sched.stall sched 0
        | _ -> ());
    let ext = Sched.external_ctx sched ~tid:0 in
    let worker =
      build_workers (module S) structure heap ~nthreads:threads
        ~seed:(seed + i) ~ops_per_thread ext
    in
    for tid = 0 to threads - 1 do
      Sched.spawn sched ~tid (fun ctx -> worker tid ctx)
    done;
    (match Sched.run sched with
    | Sched.No_runnable ->
      (* Everyone else done; resume the frozen thread solo. *)
      Sched.unstall sched 0;
      ignore (Sched.run sched)
    | Sched.All_finished | Sched.Script_done | Sched.Step_limit -> ());
    let real_violation =
      List.exists
        (function
          | Event.Violation { kind = Event.Progress_failure; _ } -> false
          | Event.Violation _ -> true
          | _ -> false)
        (Monitor.violations mon)
    in
    let crashed =
      List.exists
        (fun tid ->
          match Sched.thread_outcome sched tid with
          | Sched.Crashed _ -> true
          | _ -> false)
        (List.init threads Fun.id)
    in
    if real_violation || crashed then incr found
  done;
  !found

let matrix ?fuzz_runs ?seed () =
  List.map
    (fun ((module S : Era_smr.Smr_intf.S) as scheme) ->
      ( S.name,
        List.map
          (fun st -> (st, run ?fuzz_runs ?seed scheme st))
          structures ))
    Era_smr.Registry.all

let widely_applicable verdicts =
  List.for_all (fun (_, v) -> applicable v) verdicts

let pp_verdict fmt v =
  if applicable v then
    Fmt.pf fmt "%-6s %-13s applicable (%d clean fuzz runs)" v.scheme
      (structure_name v.structure)
      v.fuzz_runs
  else
    Fmt.pf fmt
      "%-6s %-13s NOT applicable (violations=%d nonlin=%d progress=%d \
       adversarial=%b crashed=%d)"
      v.scheme
      (structure_name v.structure)
      v.violations v.non_linearizable v.progress_failures v.adversarial_unsafe
      v.crashed

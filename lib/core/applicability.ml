open Era_sim
module Sched = Era_sched.Sched
module Workload = Era_workload.Workload

type structure =
  | Harris
  | Michael
  | Hash
  | Hash_michael
  | Stack
  | Queue

let structures = [ Harris; Michael; Hash; Hash_michael; Stack; Queue ]

let structure_name = function
  | Harris -> "harris-list"
  | Michael -> "michael-list"
  | Hash -> "hash-harris"
  | Hash_michael -> "hash-michael"
  | Stack -> "treiber-stack"
  | Queue -> "ms-queue"

(* Accepts the canonical names above plus the obvious short forms, so CLI
   users can say [--structure harris]. *)
let structure_of_name s =
  match String.lowercase_ascii s with
  | "harris-list" | "harris" -> Some Harris
  | "michael-list" | "michael" -> Some Michael
  | "hash-harris" | "hash" -> Some Hash
  | "hash-michael" -> Some Hash_michael
  | "treiber-stack" | "treiber" | "stack" -> Some Stack
  | "ms-queue" | "queue" -> Some Queue
  | _ -> None

type verdict = {
  scheme : string;
  structure : structure;
  fuzz_runs : int;
  violations : int;
  first_violation : Event.t option;
  non_linearizable : int;
  progress_failures : int;
  adversarial_unsafe : bool;
  neutralize_unsafe : bool;
  crashed : int;
}

let applicable v =
  v.violations = 0 && v.non_linearizable = 0 && v.progress_failures = 0
  && (not v.adversarial_unsafe)
  && (not v.neutralize_unsafe)
  && v.crashed = 0

let spec_of = function
  | Harris | Michael | Hash | Hash_michael ->
    (module Era_history.Spec.Int_set : Era_history.Spec.S)
  | Stack -> (module Era_history.Spec.Int_stack)
  | Queue -> (module Era_history.Spec.Int_queue)

(* Build the structure and return one worker body per thread. [keys],
   [mix] and [prefill] default to the historical fuzzing workload; the
   explorer passes a smaller key range, update-heavy churn and a prefilled
   structure so interesting interleavings need very few quanta. Prefill
   runs through the external context, so every [make] call of an explorer
   target reproduces the identical initial heap. *)
let build_workers (type gt tc)
    (module S : Era_smr.Smr_intf.S with type t = gt and type tctx = tc)
    structure heap ~nthreads ~seed ~ops_per_thread
    ?(keys = Workload.Uniform 6) ?(mix = Workload.balanced) ?(prefill = [])
    ext =
  let g = S.create heap ~nthreads in
  match structure with
  | Harris ->
    let module L = Era_sets.Harris_list.Make (S) in
    let dl = L.create ext g in
    let pre = L.ops (L.handle dl ext) ~record:false in
    List.iter (fun k -> ignore (pre.insert k)) prefill;
    fun tid (ctx : Sched.ctx) ->
      let ops = L.ops (L.handle dl ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix;
      ops.quiesce ()
  | Michael ->
    let module L = Era_sets.Michael_list.Make (S) in
    let dl = L.create ext g in
    let pre = L.ops (L.handle dl ext) ~record:false in
    List.iter (fun k -> ignore (pre.insert k)) prefill;
    fun tid ctx ->
      let ops = L.ops (L.handle dl ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix;
      ops.quiesce ()
  | Hash ->
    let module H = Era_sets.Hash_set.Make (S) in
    let hs = H.create ~nbuckets:4 ext g in
    let pre = H.ops (H.handle hs ext) ~record:false in
    List.iter (fun k -> ignore (pre.insert k)) prefill;
    fun tid ctx ->
      let ops = H.ops (H.handle hs ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix;
      ops.quiesce ()
  | Hash_michael ->
    let module H = Era_sets.Hash_set.Make_michael (S) in
    let hs = H.create ~nbuckets:4 ext g in
    let pre = H.ops (H.handle hs ext) ~record:false in
    List.iter (fun k -> ignore (pre.insert k)) prefill;
    fun tid ctx ->
      let ops = H.ops (H.handle hs ctx) ~record:true in
      Workload.run_set_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys ~mix;
      ops.quiesce ()
  | Stack ->
    let module T = Era_sets.Treiber_stack.Make (S) in
    let st = T.create ext g in
    let pre = T.ops (T.handle st ext) ~record:false in
    List.iter (fun k -> pre.push k) prefill;
    fun tid ctx ->
      let ops = T.ops (T.handle st ctx) ~record:true in
      Workload.run_stack_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys;
      ops.quiesce ()
  | Queue ->
    let module Q = Era_sets.Ms_queue.Make (S) in
    let q = Q.create ext g in
    let pre = Q.ops (Q.handle q ext) ~record:false in
    List.iter (fun k -> pre.enqueue k) prefill;
    fun tid ctx ->
      let ops = Q.ops (Q.handle q ctx) ~record:true in
      Workload.run_queue_ops ops
        (Rng.create ((seed * 131) + tid))
        ~ops:ops_per_thread ~keys;
      ops.quiesce ()

type run_stats = {
  r_violations : int;
  r_first : Event.t option;
  r_linearizable : bool;
  r_progress_failures : int;
  r_crashed : int;
}

let one_run (module S : Era_smr.Smr_intf.S) structure ~threads ~ops_per_thread
    ~seed ~progress_mode =
  (* Only the Invoke/Response stream feeds the linearizability check, so
     collect exactly those kinds through a tag subscription; every
     memory access then stays on the monitor's allocation-free fast
     path. Filtering preserves the order of operation events, which is
     all the precedence relation of the checker depends on. *)
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let ops_log = Vec.create () in
  Monitor.subscribe_tags mon
    [ Event.tag_invoke; Event.tag_response ]
    (fun _time ev -> Vec.push ops_log ev);
  let heap = Heap.create mon in
  let strategy =
    if progress_mode then
      (* Interleave a prefix, then force bounded solo completions: the
         executable form of the lock-freedom requirement. *)
      Sched.Script
        (List.init threads (fun tid -> Sched.Run (tid, 40 + (7 * tid)))
        @ List.init threads (fun tid -> Sched.Finish_bounded (tid, 200_000)))
    else Sched.Random (Rng.create seed)
  in
  let sched = Sched.create ~nthreads:threads strategy heap in
  let ext = Sched.external_ctx sched ~tid:0 in
  let worker =
    build_workers (module S) structure heap ~nthreads:threads ~seed
      ~ops_per_thread ext
  in
  for tid = 0 to threads - 1 do
    Sched.spawn sched ~tid (fun ctx -> worker tid ctx)
  done;
  ignore (Sched.run sched);
  let is_progress = function
    | Event.Violation { kind = Event.Progress_failure; _ } -> true
    | _ -> false
  in
  let all = Monitor.violations mon in
  let progress, safety = List.partition is_progress all in
  let crashed = ref 0 in
  for tid = 0 to threads - 1 do
    match Sched.thread_outcome sched tid with
    | Sched.Crashed _ -> incr crashed
    | _ -> ()
  done;
  let linearizable =
    if safety <> [] then true  (* poisoned heap: correctness moot *)
    else
      (Era_history.Linearize.check (spec_of structure)
         (Era_history.History.of_trace (Vec.to_list ops_log)))
        .Era_history.Linearize.ok
  in
  {
    r_violations = List.length safety;
    r_first = (match safety with v :: _ -> Some v | [] -> None);
    r_linearizable = linearizable;
    r_progress_failures = List.length progress;
    r_crashed = !crashed;
  }

(* Deterministic neutralization scenario (the DEBRA+ counterpart of the
   Figure 1/2 refutations). T1 runs a recorded insert(k); delete(k) on an
   otherwise-empty structure and is suspended immediately after its
   second successful CAS — the delete's marking CAS, i.e. right after the
   operation's linearization point. T0 then churns on disjoint keys,
   which drives any reclamation pass that signals laggards (DEBRA+'s
   patience-triggered neutralization, NBR's reclaim_pass). When T1
   resumes solo, a scheme whose restarts can fire past a linearization
   point re-runs the delete from the top and returns [false] for a key
   it already deleted: a deterministically non-linearizable history. NBR
   survives because the marking CAS sits inside a write phase (the signal
   stays pending); every non-neutralizing scheme trivially survives. *)
let neutralize_check (module S : Era_smr.Smr_intf.S) structure =
  match structure with
  | Stack | Queue -> false
  | Harris | Michael | Hash | Hash_michael ->
    let mon = Monitor.create ~mode:`Record ~trace:false () in
    let ops_log = Vec.create () in
    Monitor.subscribe_tags mon
      [ Event.tag_invoke; Event.tag_response ]
      (fun _time ev -> Vec.push ops_log ev);
    let heap = Heap.create mon in
    let cas_seen = ref 0 in
    let after_second_cas = function
      | Event.Access { tid = 1; kind = Event.Cas true; _ } ->
        incr cas_seen;
        !cas_seen = 2
      | _ -> false
    in
    let sched =
      Sched.create ~nthreads:2
        (Sched.Script
           [
             Sched.Run_until (1, after_second_cas);
             Sched.Finish 0;
             Sched.Finish_bounded (1, 200_000);
           ])
        heap
    in
    let ext = Sched.external_ctx sched ~tid:0 in
    let g = S.create heap ~nthreads:2 in
    let set_ops =
      match structure with
      | Harris ->
        let module L = Era_sets.Harris_list.Make (S) in
        let dl = L.create ext g in
        fun ctx -> L.ops (L.handle dl ctx) ~record:true
      | Michael ->
        let module L = Era_sets.Michael_list.Make (S) in
        let dl = L.create ext g in
        fun ctx -> L.ops (L.handle dl ctx) ~record:true
      | Hash ->
        let module H = Era_sets.Hash_set.Make (S) in
        let hs = H.create ~nbuckets:4 ext g in
        fun ctx -> H.ops (H.handle hs ctx) ~record:true
      | Hash_michael ->
        let module H = Era_sets.Hash_set.Make_michael (S) in
        let hs = H.create ~nbuckets:4 ext g in
        fun ctx -> H.ops (H.handle hs ctx) ~record:true
      | Stack | Queue -> assert false
    in
    Sched.spawn sched ~tid:1 (fun ctx ->
        let ops = set_ops ctx in
        ignore (ops.Era_sets.Set_intf.insert 100);
        ignore (ops.Era_sets.Set_intf.delete 100);
        ops.Era_sets.Set_intf.quiesce ());
    Sched.spawn sched ~tid:0 (fun ctx ->
        let ops = set_ops ctx in
        for i = 1 to 16 do
          let k = 1 + (i mod 8) in
          ignore (ops.Era_sets.Set_intf.insert k);
          ignore (ops.Era_sets.Set_intf.delete k)
        done;
        ops.Era_sets.Set_intf.quiesce ());
    ignore (Sched.run sched);
    let crashed =
      List.exists
        (fun tid ->
          match Sched.thread_outcome sched tid with
          | Sched.Crashed _ -> true
          | _ -> false)
        [ 0; 1 ]
    in
    let poisoned =
      List.exists
        (function
          | Event.Violation { kind = Event.Progress_failure; _ } -> false
          | _ -> true)
        (Monitor.violations mon)
    in
    crashed
    || (not poisoned)
       && not
            (Era_history.Linearize.check (spec_of structure)
               (Era_history.History.of_trace (Vec.to_list ops_log)))
              .Era_history.Linearize.ok

let adversarial_check scheme structure =
  match structure with
  | Harris | Hash -> (
    (* The hash set's buckets are Harris lists, so the Figure 1/2
       executions stage verbatim inside one bucket: the refutation is
       inherited. *)
    let f2 = Figure2.run scheme in
    (match f2.Figure2.outcome with
    | Figure2.Unsafe _ -> true
    | Figure2.Safe_completion _ -> false)
    ||
    let f1 = Figure1.run ~rounds:128 scheme in
    match f1.Figure1.outcome with
    | Figure1.Safety_violated _ -> true
    | Figure1.Robustness_violated _ | Figure1.Survived _ -> false)
  | Michael | Hash_michael | Stack | Queue -> false

let run ?(fuzz_runs = 20) ?(threads = 3) ?(ops_per_thread = 30) ?(seed = 7)
    ((module S : Era_smr.Smr_intf.S) as scheme) structure =
  let violations = ref 0 in
  let first = ref None in
  let non_lin = ref 0 in
  let progress = ref 0 in
  let crashed = ref 0 in
  for i = 0 to fuzz_runs - 1 do
    let progress_mode = i mod 4 = 3 in
    let st =
      one_run (module S) structure ~threads ~ops_per_thread
        ~seed:(seed + (i * 997))
        ~progress_mode
    in
    violations := !violations + st.r_violations;
    if !first = None then first := st.r_first;
    if not st.r_linearizable then incr non_lin;
    progress := !progress + st.r_progress_failures;
    crashed := !crashed + st.r_crashed
  done;
  {
    scheme = S.name;
    structure;
    fuzz_runs;
    violations = !violations;
    first_violation = !first;
    non_linearizable = !non_lin;
    progress_failures = !progress;
    adversarial_unsafe = adversarial_check scheme structure;
    neutralize_unsafe = neutralize_check scheme structure;
    crashed = !crashed;
  }

(* Stall-augmented fuzzing: random schedules plus a thread frozen at a
   random point and resumed at the end — the ingredient that lets a
   black-box search stumble on Figure 1-like executions without being
   told the construction. *)
let stall_fuzz ?(threads = 3) ?(ops_per_thread = 60) ~tries ~seed
    ((module S : Era_smr.Smr_intf.S) as scheme) structure =
  ignore scheme;
  let found = ref 0 in
  let first = ref None in
  for i = 0 to tries - 1 do
    let mon = Monitor.create ~mode:`Record ~trace:false () in
    let heap = Heap.create mon in
    let rng = Rng.create (seed + (i * 7919)) in
    let sched = Sched.create ~nthreads:threads (Sched.Random rng) heap in
    let stall_at = 50 + Rng.int rng 400 in
    let count = ref 0 in
    Monitor.subscribe mon (fun _ ev ->
        match ev with
        | Event.Access { tid = 0; _ } ->
          incr count;
          if !count = stall_at then Sched.stall sched 0
        | _ -> ());
    (* Same first-violation record the systematic explorer produces, so
       fuzz findings and search findings report in one format. *)
    let viol = ref None in
    Monitor.subscribe_tags mon [ Event.tag_violation ] (fun _ ev ->
        match ev with
        | Event.Violation { kind = Event.Progress_failure; _ } -> ()
        | ev ->
          if !viol = None then
            viol :=
              Era_explore.Explore.violation_of_event
                ~step:(Sched.total_steps sched) ev);
    let ext = Sched.external_ctx sched ~tid:0 in
    let worker =
      build_workers (module S) structure heap ~nthreads:threads
        ~seed:(seed + i) ~ops_per_thread ext
    in
    for tid = 0 to threads - 1 do
      Sched.spawn sched ~tid (fun ctx -> worker tid ctx)
    done;
    (match Sched.run sched with
    | Sched.No_runnable ->
      (* Everyone else done; resume the frozen thread solo. *)
      Sched.unstall sched 0;
      ignore (Sched.run sched)
    | Sched.All_finished | Sched.Script_done | Sched.Step_limit -> ());
    let crashed =
      List.exists
        (fun tid ->
          match Sched.thread_outcome sched tid with
          | Sched.Crashed _ -> true
          | _ -> false)
        (List.init threads Fun.id)
    in
    if !viol <> None || crashed then incr found;
    if !first = None then first := !viol
  done;
  {
    Era_explore.Explore.fz_tries = tries;
    fz_found = !found;
    fz_first = !first;
  }

let matrix ?fuzz_runs ?seed () =
  List.map
    (fun ((module S : Era_smr.Smr_intf.S) as scheme) ->
      ( S.name,
        List.map
          (fun st -> (st, run ?fuzz_runs ?seed scheme st))
          structures ))
    Era_smr.Registry.all

let widely_applicable verdicts =
  List.for_all (fun (_, v) -> applicable v) verdicts

(* ------------------------------------------------------------------ *)
(* Systematic exploration targets                                     *)
(* ------------------------------------------------------------------ *)

(* Defaults deliberately tiny: the Figure 1/2 executions live inside a
   couple of operations on a near-empty list, and every extra quantum
   multiplies the schedule space. Threads draw their operations from
   per-thread RNGs seeded by [(seed * 131) + tid], so the op sequences —
   and hence the choice-point structure — are schedule-independent, which
   is what makes prefix replay deterministic. *)
let explore_target ?(threads = 2) ?(ops_per_thread = 14) ?(keys = 4)
    ?(seed = 2) ?(prefill = 2) ?(lincheck = false) ?robustness_bound
    ((module S : Era_smr.Smr_intf.S) as scheme) structure =
  ignore scheme;
  (* The linearizability checker assumes an empty initial structure; a
     prefill would be invisible to it (prefill ops are not recorded). *)
  let prefill = if lincheck then 0 else prefill in
  let params =
    [
      ("threads", threads);
      ("ops", ops_per_thread);
      ("keys", keys);
      ("seed", seed);
      ("prefill", prefill);
      ("lincheck", if lincheck then 1 else 0);
      ("bound", Option.value robustness_bound ~default:(-1));
    ]
  in
  let make ~trace strategy =
    let mon = Monitor.create ~mode:`Record ~trace () in
    let heap = Heap.create mon in
    let sched = Sched.create ~nthreads:threads strategy heap in
    let ext = Sched.external_ctx sched ~tid:0 in
    let worker =
      build_workers (module S) structure heap ~nthreads:threads ~seed
        ~ops_per_thread ~keys:(Workload.Uniform keys)
        ~mix:Workload.update_heavy
        ~prefill:(List.init prefill (fun i -> i + 1))
        ext
    in
    (* Linearizability as an explorable violation: record the op stream
       and have the last thread to finish run the checker, emitting a
       [Linearizability_failure] into the monitor — still inside the
       schedule, so the explorer's violation latch, shrinker and replay
       treat it exactly like a safety violation. Runs that already hit a
       safety violation skip the check (poisoned heap). *)
    let epilogue =
      if not lincheck then fun _tid -> ()
      else begin
        let ops_log = Vec.create () in
        Monitor.subscribe_tags mon
          [ Event.tag_invoke; Event.tag_response ]
          (fun _time ev -> Vec.push ops_log ev);
        let remaining = ref threads in
        fun tid ->
          decr remaining;
          if
            !remaining = 0
            && Monitor.violation_count mon = 0
            && not
                 (Era_history.Linearize.check (spec_of structure)
                    (Era_history.History.of_trace (Vec.to_list ops_log)))
                   .Era_history.Linearize.ok
          then
            Monitor.emit mon
              (Event.Violation
                 {
                   tid;
                   kind = Event.Linearizability_failure;
                   detail = "recorded history failed to linearize";
                 })
      end
    in
    for tid = 0 to threads - 1 do
      Sched.spawn sched ~tid (fun ctx ->
          worker tid ctx;
          epilogue tid)
    done;
    sched
  in
  {
    Era_explore.Explore.name = S.name ^ "/" ^ structure_name structure;
    nthreads = threads;
    params;
    robustness_bound;
    make;
  }

let explore ?config ?threads ?ops_per_thread ?keys ?seed ?prefill ?lincheck
    ?robustness_bound scheme structure =
  Era_explore.Explore.explore ?config
    (explore_target ?threads ?ops_per_thread ?keys ?seed ?prefill ?lincheck
       ?robustness_bound scheme structure)

(* Rebuild the target a saved counterexample was found on, from its
   ["scheme/structure"] name and recorded construction parameters. *)
let target_of_counterexample (cex : Era_explore.Explore.counterexample) =
  match String.split_on_char '/' cex.c_target with
  | [ scheme_name; struct_name ] -> (
    match
      (Era_smr.Registry.find scheme_name, structure_of_name struct_name)
    with
    | Some scheme, Some structure ->
      let p k d =
        match List.assoc_opt k cex.c_params with Some v -> v | None -> d
      in
      let bound = p "bound" (-1) in
      Ok
        (explore_target ~threads:(p "threads" 2) ~ops_per_thread:(p "ops" 14)
           ~keys:(p "keys" 4) ~seed:(p "seed" 2) ~prefill:(p "prefill" 2)
           ~lincheck:(p "lincheck" 0 = 1)
           ?robustness_bound:(if bound < 0 then None else Some bound)
           scheme structure)
    | None, _ -> Error (Fmt.str "unknown scheme %S" scheme_name)
    | _, None -> Error (Fmt.str "unknown structure %S" struct_name))
  | _ ->
    Error
      (Fmt.str "malformed target name %S (expected \"scheme/structure\")"
         cex.c_target)

let pp_verdict fmt v =
  if applicable v then
    Fmt.pf fmt "%-6s %-13s applicable (%d clean fuzz runs)" v.scheme
      (structure_name v.structure)
      v.fuzz_runs
  else
    Fmt.pf fmt
      "%-6s %-13s NOT applicable (violations=%d nonlin=%d progress=%d \
       adversarial=%b neutralize=%b crashed=%d)"
      v.scheme
      (structure_name v.structure)
      v.violations v.non_linearizable v.progress_failures v.adversarial_unsafe
      v.neutralize_unsafe v.crashed

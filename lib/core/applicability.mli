(** Empirical applicability verdicts (Definitions 5.4 and 5.6).

    For each (scheme × structure) pair, applicability requires three
    things, each checked by running integrated executions:

    + {b memory safety} (Definition 4.2): no monitor violation across
      many randomized-schedule executions, {e and} — for Harris's list,
      the structure the theorem turns on — surviving the deterministic
      adversarial executions of Figures 1 and 2;
    + {b correctness}: every recorded history linearizes against the
      structure's sequential specification;
    + {b progress}: partially-run operations complete in bounded solo
      runs (lock-freedom).

    Fuzzing cannot prove a scheme safe, but it refutes decisively; the
    adversarial executions make the refutations for HP/HE/IBR on Harris's
    list deterministic. Wide applicability (Definition 5.6) is then
    approximated as applicability to every access-aware structure in this
    library. *)

type structure =
  | Harris
  | Michael
  | Hash  (** Harris buckets: inherits the Figure 1/2 refutations *)
  | Hash_michael  (** Michael buckets: HP-compatible *)
  | Stack
  | Queue

val structures : structure list
val structure_name : structure -> string

val structure_of_name : string -> structure option
(** Accepts {!structure_name} outputs plus short forms ([harris],
    [michael], [hash], [stack], [queue], …), case-insensitively. *)

type verdict = {
  scheme : string;
  structure : structure;
  fuzz_runs : int;
  violations : int;  (** total safety violations across fuzz runs *)
  first_violation : Era_sim.Event.t option;
  non_linearizable : int;  (** runs whose history failed the checker *)
  progress_failures : int;
  adversarial_unsafe : bool;
      (** Harris only: did Figure 1 or Figure 2 produce a violation *)
  neutralize_unsafe : bool;
      (** set structures only: did the deterministic neutralization
          scenario ({!neutralize_check}) yield a non-linearizable
          history or a crash *)
  crashed : int;  (** threads that died on an exception *)
}

val applicable : verdict -> bool

val neutralize_check : Era_smr.Registry.scheme -> structure -> bool
(** Deterministic refutation for schemes whose restarts can fire past an
    operation's linearization point (DEBRA+): a recorded
    [insert k; delete k] is suspended right after the delete's marking
    CAS while the other thread churns enough to trigger a
    neutralization; on solo resume, a from-the-top restart re-runs the
    delete and answers [false] for a key it already deleted. Returns
    [true] iff the recorded history fails to linearize (or a thread
    crashed). [false] for stack/queue structures (set scenario only) and
    for every scheme that either never neutralizes or — like NBR —
    shields its write phases from the signal. *)

val run :
  ?fuzz_runs:int -> ?threads:int -> ?ops_per_thread:int -> ?seed:int ->
  Era_smr.Registry.scheme -> structure -> verdict
(** Defaults: 20 fuzz runs, 3 threads, 30 ops each. *)

val stall_fuzz :
  ?threads:int -> ?ops_per_thread:int -> tries:int -> seed:int ->
  Era_smr.Registry.scheme -> structure -> Era_explore.Explore.fuzz_report
(** Black-box violation hunting: randomized schedules with one thread
    frozen at a random point and solo-resumed at the end — enough, with
    reclamation-triggering churn, to stumble on Figure 1-like executions
    without knowing the construction. [fz_found] counts the [tries] runs
    that produced a safety violation or crash (expected: >0 for HP/HE/IBR
    on the Harris family, 0 for applicable pairings); the first violation
    is reported in the same {!Era_explore.Explore.violation_info} format
    the systematic explorer emits. *)

(** {2 Systematic exploration}

    Bounded model checking over any (scheme × structure) cell: the
    explorer of [lib/explore] pointed at a tiny deterministic workload —
    the "find the paper's executions instead of scripting them"
    entry point. *)

val explore_target :
  ?threads:int -> ?ops_per_thread:int -> ?keys:int -> ?seed:int ->
  ?prefill:int -> ?lincheck:bool -> ?robustness_bound:int ->
  Era_smr.Registry.scheme -> structure -> Era_explore.Explore.target
(** Defaults: 2 threads, 14 ops each, keys uniform in [1, 4], seed 2,
    prefill of 2 keys, update-heavy mix, no robustness bound. Pass
    [robustness_bound] to also hunt non-robustness (Definition 5.1): a
    retired backlog beyond the bound becomes a [Robustness_exceeded]
    violation. Pass [lincheck:true] to also hunt non-linearizability
    (DEBRA+'s failure mode): each run's recorded history is checked when
    the last thread finishes and a failure is emitted into the monitor
    as a [Linearizability_failure] violation, so counterexamples shrink
    and replay like safety findings; lincheck targets force
    [prefill = 0] (the checker assumes an empty initial structure). *)

val explore :
  ?config:Era_explore.Explore.config -> ?threads:int ->
  ?ops_per_thread:int -> ?keys:int -> ?seed:int -> ?prefill:int ->
  ?lincheck:bool -> ?robustness_bound:int ->
  Era_smr.Registry.scheme -> structure -> Era_explore.Explore.search_result
(** [Era_explore.Explore.explore] on {!explore_target}. *)

val target_of_counterexample :
  Era_explore.Explore.counterexample ->
  (Era_explore.Explore.target, string) result
(** Rebuild the exact target a saved counterexample was found on from its
    ["scheme/structure"] name and recorded parameters — the replay half
    of the CLI round trip. *)

val matrix :
  ?fuzz_runs:int -> ?seed:int -> unit ->
  (string * (structure * verdict) list) list
(** Every scheme crossed with every structure. *)

val widely_applicable : (structure * verdict) list -> bool
(** Applicable to all five (access-aware) structures. *)

val pp_verdict : Format.formatter -> verdict -> unit

module Json = Era_metrics.Json

type arg = string * Json.t

(* One buffered trace event. The ring stores these fully constructed —
   producers only push when a tracer is attached, so construction cost
   is only paid on traced runs. *)
type ev =
  | Instant of {
      name : string;
      ts : int;
      tid : int;
      cat : string;
      global : bool;
      args : arg list;
    }
  | Complete of {
      name : string;
      ts : int;
      dur : int;
      tid : int;
      cat : string;
      args : arg list;
    }
  | Begin of { name : string; ts : int; tid : int; cat : string; args : arg list }
  | End of { ts : int; tid : int }
  | Counter of { name : string; ts : int; values : (string * int) list }

let dummy = End { ts = 0; tid = 0 }

type t = {
  cap : int;  (* power of two *)
  buf : ev array;
  mutable total : int;  (* events ever pushed; index = total land (cap-1) *)
  mutable process_name : string option;
  mutable thread_names : (int * string) list;  (* newest first *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity must be positive";
  let cap = pow2 capacity 1 in
  { buf = Array.make cap dummy; cap; total = 0;
    process_name = None; thread_names = [] }

let set_process_name t name = t.process_name <- Some name

let set_thread_name t ~tid name =
  t.thread_names <- (tid, name) :: List.remove_assoc tid t.thread_names

let push t ev =
  t.buf.(t.total land (t.cap - 1)) <- ev;
  t.total <- t.total + 1

let instant t ?(scope = `Thread) ?(args = []) ~ts ~tid ~cat name =
  push t (Instant { name; ts; tid; cat; global = scope = `Global; args })

let complete t ?(args = []) ~ts ~dur ~tid ~cat name =
  push t (Complete { name; ts; dur; tid; cat; args })

let begin_span t ?(args = []) ~ts ~tid ~cat name =
  push t (Begin { name; ts; tid; cat; args })

let end_span t ~ts ~tid = push t (End { ts; tid })

let counter t ~ts name values = push t (Counter { name; ts; values })

let length t = min t.total t.cap
let dropped t = max 0 (t.total - t.cap)

(* Chrome trace-event JSON. All events live in one process (pid 0); tid
   selects the track. Field order follows the trace-event spec examples
   so the output diffs cleanly against goldens. *)

let base ~name ~ph ~ts ~tid ~cat =
  [ ("name", Json.String name); ("ph", Json.String ph);
    ("ts", Json.Int ts); ("pid", Json.Int 0); ("tid", Json.Int tid);
    ("cat", Json.String cat) ]

let with_args args fields =
  match args with [] -> fields | _ -> fields @ [ ("args", Json.Obj args) ]

let ev_to_json = function
  | Instant { name; ts; tid; cat; global; args } ->
    Json.Obj
      (with_args args
         (base ~name ~ph:"i" ~ts ~tid ~cat
         @ [ ("s", Json.String (if global then "g" else "t")) ]))
  | Complete { name; ts; dur; tid; cat; args } ->
    Json.Obj
      (with_args args
         (base ~name ~ph:"X" ~ts ~tid ~cat @ [ ("dur", Json.Int dur) ]))
  | Begin { name; ts; tid; cat; args } ->
    Json.Obj (with_args args (base ~name ~ph:"B" ~ts ~tid ~cat))
  | End { ts; tid } ->
    Json.Obj
      [ ("ph", Json.String "E"); ("ts", Json.Int ts); ("pid", Json.Int 0);
        ("tid", Json.Int tid) ]
  | Counter { name; ts; values } ->
    Json.Obj
      [ ("name", Json.String name); ("ph", Json.String "C");
        ("ts", Json.Int ts); ("pid", Json.Int 0); ("tid", Json.Int 0);
        ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) values)) ]

let meta_event ~name ~tid ~arg_name ~value =
  Json.Obj
    [ ("name", Json.String name); ("ph", Json.String "M");
      ("pid", Json.Int 0); ("tid", Json.Int tid);
      ("args", Json.Obj [ (arg_name, Json.String value) ]) ]

let iter_chronological t f =
  let n = length t in
  let start = if t.total > t.cap then t.total land (t.cap - 1) else 0 in
  for i = 0 to n - 1 do
    f t.buf.((start + i) land (t.cap - 1))
  done

let to_json t =
  let metas =
    (match t.process_name with
    | None -> []
    | Some p -> [ meta_event ~name:"process_name" ~tid:0 ~arg_name:"name" ~value:p ])
    @ List.rev_map
        (fun (tid, name) ->
          meta_event ~name:"thread_name" ~tid ~arg_name:"name" ~value:name)
        t.thread_names
  in
  let events = ref [] in
  iter_chronological t (fun ev -> events := ev_to_json ev :: !events);
  let doc =
    [ ("traceEvents", Json.List (metas @ List.rev !events));
      ("displayTimeUnit", Json.String "ms") ]
  in
  let doc =
    if t.total > t.cap then
      doc @ [ ("droppedEvents", Json.Int (t.total - t.cap)) ]
    else doc
  in
  Json.Obj doc

let to_string t = Json.to_string (to_json t) ^ "\n"

let write ~file t = Era_metrics.Fsutil.write_file ~file (to_string t)

(** Low-overhead ring-buffer execution tracer.

    Records timeline events — scheduler quanta, SMR lifecycle instants,
    data-structure operation spans, violations — into a bounded ring
    (oldest events are overwritten once the ring is full, with a drop
    count), and exports them as Chrome trace-event JSON, loadable in
    Perfetto ({: https://ui.perfetto.dev}) or [chrome://tracing].

    The tracer itself is passive: it never hooks anything. Producers
    ({!Sim_trace} for simulated executions, the native throughput
    harness, the explorer) push events into it; when no tracer is
    attached every producer keeps its zero-instrumentation fast path, so
    "tracing disabled" costs at most one branch per quantum — the
    disabled path the perf gate's [trace_off_overhead] row asserts is
    within noise of the seed.

    Timestamps are plain ints in the producer's clock: the monitor's
    step clock for simulated executions (one step = one "microsecond" in
    the exported trace), wall-clock microseconds for native runs. *)

type t

type arg = string * Era_metrics.Json.t
(** Event payload entry, rendered into the trace event's ["args"]. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 65536, rounded up to a power of two) bounds the
    number of buffered events; further events overwrite the oldest. *)

val set_process_name : t -> string -> unit
val set_thread_name : t -> tid:int -> string -> unit
(** Track labels, exported as trace metadata events. *)

val instant :
  t -> ?scope:[ `Thread | `Global ] -> ?args:arg list -> ts:int ->
  tid:int -> cat:string -> string -> unit
(** A point-in-time marker (["ph":"i"]) on the thread's track
    ([`Thread], the default) or across every track ([`Global]). *)

val complete :
  t -> ?args:arg list -> ts:int -> dur:int -> tid:int -> cat:string ->
  string -> unit
(** A span with a known duration (["ph":"X"]). *)

val begin_span :
  t -> ?args:arg list -> ts:int -> tid:int -> cat:string -> string -> unit

val end_span : t -> ts:int -> tid:int -> unit
(** Open / close a nested span (["ph":"B"]/["ph":"E"]); spans nest per
    track in LIFO order. An unclosed span (a thread stalled inside an
    operation forever) renders as running to the end of the trace —
    exactly what it means. *)

val counter : t -> ts:int -> string -> (string * int) list -> unit
(** A sampled counter series (["ph":"C"]), e.g. active/retired node
    counts; Perfetto renders each key as a stacked area track. *)

val length : t -> int
(** Events currently buffered. *)

val dropped : t -> int
(** Events overwritten after the ring filled; [0] means the trace is
    complete. *)

val to_json : t -> Era_metrics.Json.t
(** The full trace document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}], with metadata
    events first and buffered events in chronological order. *)

val to_string : t -> string

val write : file:string -> t -> unit
(** Serialize to [file], creating parent directories
    ({!Era_metrics.Fsutil.write_file}). *)

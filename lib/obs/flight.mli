(** Native flight recorder: per-domain SPSC event rings with
    monotonic-clock timestamps, plus allocation-free log2 op-latency
    histograms, merged post-run into a Perfetto trace ({!Tracer}) and a
    metrics {!Registry}.

    Producers (the native SMR schemes and the throughput harness) hold
    a per-domain {!handle} and record fixed-size int entries; each ring
    is written by exactly one domain and read only after that domain has
    been joined, so recording needs no synchronisation. The detached
    handle ({!null_handle}, handed out by {!null}) makes every recording
    call a single predictable branch — the same disabled-path contract
    as {!Sim_trace}, asserted by the E19 [recorder_off_overhead] bench
    row. *)

type t
(** A recorder: one event ring per domain plus a coordinator ring for
    cross-domain gauge samples. *)

type handle
(** A single ring's write end. Only the owning domain may record into
    it (the coordinator ring belongs to the coordinating domain). *)

val null : t
(** The detached recorder: {!handle} returns {!null_handle} for every
    index and every merge is empty. *)

val null_handle : handle
(** The detached handle: recording into it is one branch, nothing
    else. *)

val create : ?capacity:int -> ndomains:int -> unit -> t
(** [capacity] (default 16384, rounded up to a power of two) bounds
    each ring; once full, new events overwrite the oldest and the drop
    is counted. *)

val active : t -> bool
val recording : handle -> bool
(** [false] exactly for {!null} / {!null_handle}. *)

val handle : t -> int -> handle
(** [handle t d] — domain [d]'s ring ([0 <= d < ndomains]);
    {!null_handle} when detached or out of range. *)

val coordinator : t -> handle
(** The extra ring for the coordinating domain's gauge samples. *)

val now_ns : unit -> int
(** [CLOCK_MONOTONIC] nanoseconds ([@@noalloc], tagged-int return). *)

(** {2 Recording}

    All recording calls are allocation-free; on a detached handle they
    cost one branch. *)

val retire : handle -> unit
val free : handle -> int -> unit
(** Whole-bag epoch free (EBR/DEBRA+); the int is nodes freed. *)

val sweep : handle -> int -> unit
(** Compacting scan (HP/IBR); the int is nodes freed. *)

val advance : handle -> int -> unit
(** Global epoch advance observed; the int is the new epoch. *)

val slow_path : handle -> unit
(** Announcement slow path taken (fresh epoch read + advance attempt). *)

val flag : handle -> victim:int -> unit
(** This domain flagged [victim] for neutralization (DEBRA+). *)

val restart_begin : handle -> unit
val restart_end : handle -> unit
(** Span around a neutralization restart: opened when the flag is
    consumed ([Nsmr.Neutralized] is about to unwind), closed when the
    restarted operation completes. *)

val stall_begin : handle -> unit
val stall_end : handle -> unit
(** Span around a deliberate stall (the E9 parked domain). *)

val backlog : handle -> domain:int -> int -> unit
(** Gauge sample: [domain]'s limbo backlog (nodes). *)

val epoch_lag : handle -> domain:int -> int -> unit
(** Gauge sample: how many epochs [domain]'s announcement trails the
    global epoch. *)

(** {2 Op-latency histograms}

    Per-handle log2 histograms (same bucket convention as
    {!Registry.observe}) keyed by op kind. *)

val op_contains : int
val op_add : int
val op_remove : int
val op_name : int -> string

val observe_op : handle -> int -> int -> unit
(** [observe_op h op ns] — record one operation of kind [op] that took
    [ns] nanoseconds. *)

(** {2 Post-run merge} *)

val total_events : t -> int
(** Events currently buffered across all rings. *)

val dropped : t -> int
(** Events overwritten after rings filled; [0] means complete. *)

val to_tracer : ?tracer:Tracer.t -> t -> Tracer.t
(** Merge every ring chronologically into a tracer (a fresh one sized
    to fit when [tracer] is absent): one track per domain carrying
    lifecycle instants and restart/stall spans, plus per-domain
    [backlog/d<i>] and [epoch-lag/d<i>] counter tracks. *)

val to_registry : t -> Registry.t -> unit
(** Publish the aggregated op-latency histograms as
    [native_op_latency_ns{op=...}]. *)

val write : file:string -> t -> unit
(** {!to_tracer} then {!Tracer.write}. *)

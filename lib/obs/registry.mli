(** Cross-stack metrics registry: counters, gauges, and log-scale
    histograms behind one snapshot / labels / JSON-export API.

    Each layer keeps its own cheap internal accounting (sim [Monitor]
    counters, native [Nsmr.stats] records, explorer atomics) and, when a
    report is wanted, {e publishes} into a registry — so registration and
    update cost is only paid at reporting points, never on hot paths.
    Metrics are identified by name plus an ordered label list
    ([("scheme", "hp")]); snapshots preserve registration order so JSON
    exports are deterministic. *)

type t

type counter
(** Monotone integer (operations completed, nodes retired...). *)

type gauge
(** Point-in-time float (frontier depth, occupancy ratio...). *)

type histogram
(** Log2-bucketed integer distribution: an observation [v > 0] lands in
    bucket [floor(log2 v) + 1] (bucket [b] covers [2^(b-1) <= v < 2^b]);
    [v <= 0] lands in bucket 0. Tracks count and sum alongside. *)

val create : unit -> t

(** {2 Registration}

    Registering the same name + labels twice returns the existing
    instrument; re-registering under a different instrument kind is a
    programming error ([Invalid_argument]). *)

val counter : t -> ?labels:(string * string) list -> string -> counter
val gauge : t -> ?labels:(string * string) list -> string -> gauge
val histogram : t -> ?labels:(string * string) list -> string -> histogram

(** {2 Updates} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_counter : counter -> int -> unit
(** Publish an externally accumulated total (e.g. [Nsmr.stats.retired]). *)

val value : counter -> int

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val gauge_value : gauge -> float

val observe : histogram -> int -> unit

val absorb : histogram -> count:int -> sum:int -> buckets:(int * int) list -> unit
(** Merge externally accumulated log2 buckets (same convention as
    {!observe}'s, [(bucket_index, count)]) — e.g. a flight recorder's
    per-domain histograms. [Invalid_argument] on an out-of-range bucket
    index. *)

(** {2 Snapshots} *)

type metric_value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      count : int;
      sum : int;
      buckets : (int * int) list;
          (** [(bucket_index, count)], ascending, zero counts omitted. *)
    }

type metric = {
  name : string;
  labels : (string * string) list;
  value : metric_value;
}

val snapshot : t -> metric list
(** All metrics, in registration order. *)

val estimate_quantile : metric_value -> float -> float option
(** [estimate_quantile v q] — interpolated quantile ([0 <= q <= 1],
    clamped) of a [Histogram] value: the target rank is located by
    cumulative bucket counts and positioned linearly within its bucket
    [[2^(b-1), 2^b)], so the estimate is exact to within the bucket's
    factor-of-2 resolution. [None] for counters, gauges, and empty
    histograms. Histogram JSON exports carry [p50]/[p90]/[p99] computed
    this way (derived fields, ignored on decode). *)

val find : t -> ?labels:(string * string) list -> string -> metric option

(** {2 JSON} *)

val to_json : t -> Era_metrics.Json.t
(** [{"schema_version": 1, "metrics": [...]}]. *)

val metrics_of_json : Era_metrics.Json.t -> (metric list, string) result
(** Decode a document produced by {!to_json} (round-trip of
    {!snapshot}). *)

val to_string : t -> string
val write : file:string -> t -> unit
val pp : Format.formatter -> t -> unit

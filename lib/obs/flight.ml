(* Native flight recorder: per-domain SPSC event rings plus
   allocation-free op-latency histograms, merged post-run into a
   Perfetto trace through [Tracer] and into a [Registry].

   Each ring is written by exactly one domain (ring index = domain
   index; one extra ring belongs to the coordinator, which samples
   cross-domain gauges while the workers run) and read only after the
   producing domain has been joined, so no synchronisation is needed
   beyond [Domain.join]'s ordering. Every entry is four ints — ring
   writes never allocate — and a detached handle costs exactly one
   branch per recording call, mirroring [Sim_trace]'s contract. *)

external now_ns : unit -> int = "era_flight_now_ns" [@@noalloc]

(* Op kinds, aligned with the throughput harness's sample tags. *)
let op_contains = 0
let op_add = 1
let op_remove = 2
let n_ops = 3

let op_name = function
  | 0 -> "contains"
  | 1 -> "add"
  | _ -> "remove"

(* Event tags. [a]/[b] carry the tag-specific payload. *)
let t_retire = 0 (* - *)
let t_free = 1 (* a = nodes freed (whole-bag, EBR/DEBRA) *)
let t_sweep = 2 (* a = nodes freed (compacting scan, HP/IBR) *)
let t_advance = 3 (* a = epoch observed after the advance *)
let t_slow = 4 (* announcement slow path taken *)
let t_flag = 5 (* a = flagged (neutralized) domain *)
let t_restart_begin = 6 (* - *)
let t_restart_end = 7 (* - *)
let t_stall_begin = 8 (* - *)
let t_stall_end = 9 (* - *)
let t_backlog = 10 (* a = domain, b = limbo backlog (gauge) *)
let t_lag = 11 (* a = domain, b = epochs behind global (gauge) *)

type handle = {
  ts : int array;
  tag : int array;
  a : int array;
  b : int array;
  mutable n : int;  (* total records ever; ring slot = n land mask *)
  cap : int;  (* 0 for the detached handle *)
  mask : int;
  hc : int array;  (* per-op-kind observation counts *)
  hs : int array;  (* per-op-kind sums (ns) *)
  hb : int array;  (* n_ops * 64 log2 buckets, Registry's convention *)
}

let null_handle =
  { ts = [||]; tag = [||]; a = [||]; b = [||]; n = 0; cap = 0; mask = 0;
    hc = [||]; hs = [||]; hb = [||] }

type t = {
  capacity : int;  (* 0 for [null] *)
  ndomains : int;
  t0 : int;  (* monotonic ns at creation; trace timestamps are relative *)
  rings : handle array;  (* ndomains worker rings + 1 coordinator ring *)
}

let null = { capacity = 0; ndomains = 0; t0 = 0; rings = [||] }
let active t = t.capacity <> 0
let recording h = h.cap <> 0

let default_capacity = 16384

let create ?(capacity = default_capacity) ~ndomains () =
  if capacity < 1 then invalid_arg "Flight.create: capacity < 1";
  if ndomains < 1 then invalid_arg "Flight.create: ndomains < 1";
  let cap =
    let c = ref 1 in
    while !c < capacity do
      c := !c * 2
    done;
    !c
  in
  let ring () =
    { ts = Array.make cap 0; tag = Array.make cap 0; a = Array.make cap 0;
      b = Array.make cap 0; n = 0; cap; mask = cap - 1;
      hc = Array.make n_ops 0; hs = Array.make n_ops 0;
      hb = Array.make (n_ops * 64) 0 }
  in
  { capacity = cap; ndomains; t0 = now_ns ();
    rings = Array.init (ndomains + 1) (fun _ -> ring ()) }

let handle t d =
  if t.capacity = 0 || d < 0 || d >= Array.length t.rings then null_handle
  else t.rings.(d)

let coordinator t = handle t t.ndomains

let record h tag a b =
  if h.cap <> 0 then begin
    let i = h.n land h.mask in
    Array.unsafe_set h.ts i (now_ns ());
    Array.unsafe_set h.tag i tag;
    Array.unsafe_set h.a i a;
    Array.unsafe_set h.b i b;
    h.n <- h.n + 1
  end

let retire h = record h t_retire 0 0
let free h nodes = record h t_free nodes 0
let sweep h nodes = record h t_sweep nodes 0
let advance h epoch = record h t_advance epoch 0
let slow_path h = record h t_slow 0 0
let flag h ~victim = record h t_flag victim 0
let restart_begin h = record h t_restart_begin 0 0
let restart_end h = record h t_restart_end 0 0
let stall_begin h = record h t_stall_begin 0 0
let stall_end h = record h t_stall_end 0 0
let backlog h ~domain v = record h t_backlog domain v
let epoch_lag h ~domain v = record h t_lag domain v

(* Same bucket convention as [Registry.observe]: bucket = bit length,
   v <= 0 lands in bucket 0. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and n = ref v in
    while !n <> 0 do
      incr b;
      n := !n lsr 1
    done;
    !b
  end

let observe_op h op ns =
  if h.cap <> 0 then begin
    h.hc.(op) <- h.hc.(op) + 1;
    h.hs.(op) <- h.hs.(op) + ns;
    let i = (op * 64) + bucket_of ns in
    h.hb.(i) <- h.hb.(i) + 1
  end

let events h = min h.n h.cap
let dropped_of h = if h.n > h.cap then h.n - h.cap else 0

let total_events t = Array.fold_left (fun acc h -> acc + events h) 0 t.rings
let dropped t = Array.fold_left (fun acc h -> acc + dropped_of h) 0 t.rings

(* ------------------------------------------------------------------ *)
(* Post-run merge                                                      *)
(* ------------------------------------------------------------------ *)

let to_registry t reg =
  if active t then
    for op = 0 to n_ops - 1 do
      let count = ref 0 and sum = ref 0 in
      let buckets = Array.make 64 0 in
      Array.iter
        (fun h ->
          if h.cap <> 0 then begin
            count := !count + h.hc.(op);
            sum := !sum + h.hs.(op);
            for b = 0 to 63 do
              buckets.(b) <- buckets.(b) + h.hb.((op * 64) + b)
            done
          end)
        t.rings;
      if !count > 0 then begin
        let bs = ref [] in
        for b = 63 downto 0 do
          if buckets.(b) <> 0 then bs := (b, buckets.(b)) :: !bs
        done;
        let hist =
          Registry.histogram reg
            ~labels:[ ("op", op_name op) ]
            "native_op_latency_ns"
        in
        Registry.absorb hist ~count:!count ~sum:!sum ~buckets:!bs
      end
    done

let to_tracer ?tracer t =
  let total = total_events t in
  let tr =
    match tracer with
    | Some tr -> tr
    | None -> Tracer.create ~capacity:(max 1024 (total + 256)) ()
  in
  if active t then begin
    (* Flatten every ring (oldest surviving entry first), then one
       stable sort by timestamp so spans pair up chronologically. *)
    let flat = Array.make total (0, 0, 0, 0, 0) in
    let k = ref 0 in
    Array.iteri
      (fun ri h ->
        let n = events h in
        let first = h.n - n in
        for j = 0 to n - 1 do
          let i = (first + j) land h.mask in
          flat.(!k) <- (h.ts.(i), ri, h.tag.(i), h.a.(i), h.b.(i));
          incr k
        done)
      t.rings;
    Array.stable_sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b) flat;
    Tracer.set_process_name tr "native flight";
    for d = 0 to t.ndomains - 1 do
      Tracer.set_thread_name tr ~tid:d (Printf.sprintf "D%d" d)
    done;
    let us ts = (ts - t.t0) / 1000 in
    Array.iter
      (fun (ts, ri, tag, a, b) ->
        let ts = us ts in
        let tid = if ri < t.ndomains then ri else 0 in
        if tag = t_retire then
          Tracer.instant tr ~ts ~tid ~cat:"smr" "retire"
        else if tag = t_free then
          Tracer.instant tr ~ts ~tid ~cat:"smr" "free-bag"
            ~args:[ ("nodes", Era_metrics.Json.Int a) ]
        else if tag = t_sweep then
          Tracer.instant tr ~ts ~tid ~cat:"smr" "sweep"
            ~args:[ ("nodes", Era_metrics.Json.Int a) ]
        else if tag = t_advance then
          Tracer.instant tr ~ts ~tid ~cat:"smr" "epoch-advance"
            ~args:[ ("epoch", Era_metrics.Json.Int a) ]
        else if tag = t_slow then
          Tracer.instant tr ~ts ~tid ~cat:"smr" "slow-path"
        else if tag = t_flag then
          Tracer.instant tr ~ts ~tid ~cat:"smr" "neutralize-flag"
            ~args:[ ("victim", Era_metrics.Json.Int a) ]
        else if tag = t_restart_begin then
          Tracer.begin_span tr ~ts ~tid ~cat:"smr" "neutralize-restart"
        else if tag = t_restart_end then Tracer.end_span tr ~ts ~tid
        else if tag = t_stall_begin then
          Tracer.begin_span tr ~ts ~tid ~cat:"smr" "stall"
        else if tag = t_stall_end then Tracer.end_span tr ~ts ~tid
        else if tag = t_backlog then
          Tracer.counter tr ~ts
            (Printf.sprintf "backlog/d%d" a)
            [ ("nodes", b) ]
        else if tag = t_lag then
          Tracer.counter tr ~ts
            (Printf.sprintf "epoch-lag/d%d" a)
            [ ("epochs", b) ])
      flat
  end;
  tr

let write ~file t = Tracer.write ~file (to_tracer t)

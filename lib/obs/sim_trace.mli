(** Bridge from a simulated execution to a {!Tracer}.

    {!attach} subscribes to a monitor's hook tables and renders every
    event onto the owning thread's track: SMR lifecycle and memory
    accesses as instants, operations ([Invoke]/[Response]) as nested
    spans, violations as instants in their own ["violation"] category
    (Perfetto highlights them on the faulting thread's track), plus a
    sampled ["nodes"] counter series (active / retired) at every
    lifecycle change. {!attach_sched} additionally renders each
    scheduler quantum as a complete span via {!Era_sched.Sched}'s
    quantum hook.

    Attaching changes {e nothing} about the execution: subscriptions
    force event records through [Monitor.emit] on kinds that would
    otherwise take the allocation-free fast path, but the step clock
    advances identically, so seeded schedules are bit-for-bit the same
    traced or untraced. *)

val attach :
  ?accesses:bool -> ?global_tid:int -> Tracer.t -> Era_sim.Monitor.t ->
  unit -> unit
(** Subscribe the tracer to every event kind; returns the detach
    function. [accesses] (default [true]) includes per-memory-access
    events ([Access]/[Key_read]) — pass [false] to keep their
    allocation-free fast path on long runs where only lifecycle and
    operation structure matter. Process-global events ([Epoch], [Note])
    are placed on a pseudo-track [global_tid] (default 9999, named
    "global"). *)

val attach_sched : ?names:(int * string) list -> Tracer.t -> Era_sched.Sched.t -> unit
(** Install a quantum hook emitting one ["sched"]/"quantum" complete
    span per quantum, and name every thread's track ("T0", "T1", ...;
    [names] overrides individual tids). See
    {!Era_sched.Sched.set_quantum_hook} for the determinism and
    disabled-cost contract. *)

val detach_sched : Era_sched.Sched.t -> unit

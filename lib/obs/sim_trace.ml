module Event = Era_sim.Event
module Monitor = Era_sim.Monitor
module Sched = Era_sched.Sched
module Json = Era_metrics.Json

let ikey k v = (k, Json.Int v)
let bkey k v = (k, Json.Bool v)
let skey k v = (k, Json.String v)

let access_name : Event.access_kind -> string = function
  | Read -> "read"
  | Write -> "write"
  | Cas true -> "cas-ok"
  | Cas false -> "cas-fail"

let attach ?(accesses = true) ?(global_tid = 9999) tr mon =
  Tracer.set_thread_name tr ~tid:global_tid "global";
  let nodes_counter ts =
    Tracer.counter tr ~ts "nodes"
      [ ("active", Monitor.active mon); ("retired", Monitor.retired mon) ]
  in
  let hook ts (ev : Event.t) =
    match ev with
    | Alloc { tid; addr; node; key } ->
      Tracer.instant tr ~ts ~tid ~cat:"smr" "alloc"
        ~args:[ ikey "addr" addr; ikey "node" node; ikey "key" key ];
      nodes_counter ts
    | Share { tid; addr; node } ->
      Tracer.instant tr ~ts ~tid ~cat:"smr" "share"
        ~args:[ ikey "addr" addr; ikey "node" node ]
    | Retire { tid; addr; node } ->
      Tracer.instant tr ~ts ~tid ~cat:"smr" "retire"
        ~args:[ ikey "addr" addr; ikey "node" node ];
      nodes_counter ts
    | Reclaim { tid; addr; node; to_system } ->
      Tracer.instant tr ~ts ~tid ~cat:"smr" "reclaim"
        ~args:[ ikey "addr" addr; ikey "node" node; bkey "to_system" to_system ];
      nodes_counter ts
    | Access { tid; addr; node; field; kind; unsafe } ->
      Tracer.instant tr ~ts ~tid ~cat:"mem" (access_name kind)
        ~args:
          [ ikey "addr" addr; ikey "node" node; ikey "field" field;
            bkey "unsafe" unsafe ]
    | Key_read { tid; addr; node; unsafe } ->
      Tracer.instant tr ~ts ~tid ~cat:"mem" "key-read"
        ~args:[ ikey "addr" addr; ikey "node" node; bkey "unsafe" unsafe ]
    | Violation { tid; kind; detail } ->
      Tracer.instant tr ~ts ~tid ~cat:"violation" (Event.violation_name kind)
        ~args:[ skey "detail" detail ]
    | Invoke { tid; opid; op } ->
      Tracer.begin_span tr ~ts ~tid ~cat:"op"
        (Fmt.str "%a" Event.pp_op op)
        ~args:[ ikey "opid" opid ]
    | Response { tid; opid = _; op = _; result = _ } ->
      Tracer.end_span tr ~ts ~tid
    | Label { tid; name } -> Tracer.instant tr ~ts ~tid ~cat:"label" name
    | Protect { tid; slot; addr; node } ->
      Tracer.instant tr ~ts ~tid ~cat:"smr" "protect"
        ~args:[ ikey "slot" slot; ikey "addr" addr; ikey "node" node ]
    | Epoch { value } ->
      Tracer.instant tr ~scope:`Global ~ts ~tid:global_tid ~cat:"smr" "epoch"
        ~args:[ ikey "value" value ]
    | Neutralize { by; target } ->
      Tracer.instant tr ~ts ~tid:by ~cat:"smr" "neutralize"
        ~args:[ ikey "target" target ]
    | Stalled { tid } -> Tracer.instant tr ~ts ~tid ~cat:"sched" "stalled"
    | Resumed { tid } -> Tracer.instant tr ~ts ~tid ~cat:"sched" "resumed"
    | Note s -> Tracer.instant tr ~scope:`Global ~ts ~tid:global_tid ~cat:"note" s
  in
  (if accesses then Monitor.subscribe mon hook
   else
     let tags =
       List.filter
         (fun tag -> tag <> Event.tag_access && tag <> Event.tag_key_read)
         (List.init Event.n_tags Fun.id)
     in
     Monitor.subscribe_tags mon tags hook);
  fun () -> Monitor.unsubscribe mon hook

let attach_sched ?(names = []) tr sched =
  for tid = 0 to Sched.nthreads sched - 1 do
    let name =
      match List.assoc_opt tid names with
      | Some n -> n
      | None -> Printf.sprintf "T%d" tid
    in
    Tracer.set_thread_name tr ~tid name
  done;
  Sched.set_quantum_hook sched
    (Some
       (fun tid t0 t1 ->
         Tracer.complete tr ~ts:t0 ~dur:(t1 - t0) ~tid ~cat:"sched" "quantum"))

let detach_sched sched = Sched.set_quantum_hook sched None

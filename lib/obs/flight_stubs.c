/* Monotonic clock for the native flight recorder.

   CLOCK_MONOTONIC nanoseconds returned as a tagged OCaml int: boot-
   relative nanoseconds stay far below 2^62, and an untagged-int return
   with [@@noalloc] keeps the recording hot path allocation-free (an
   int64 external would box its result at every call site). */

#include <time.h>
#include <caml/mlvalues.h>

CAMLprim value era_flight_now_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return Val_long((long)ts.tv_sec * 1000000000L + ts.tv_nsec);
}

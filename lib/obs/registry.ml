module Json = Era_metrics.Json

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  h_buckets : int array;  (* index = bucket, see bucket_of *)
}

type counter = int ref
type gauge = float ref
type histogram = hist

type cell = C of counter | G of gauge | H of hist

type entry = { e_name : string; e_labels : (string * string) list; e_cell : cell }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t ?(labels = []) name make same =
  let rec find = function
    | [] -> None
    | e :: rest ->
      if e.e_name = name && e.e_labels = labels then Some e else find rest
  in
  match find t.entries with
  | Some e -> (
    match same e.e_cell with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %S already registered as a %s" name
           (kind_name e.e_cell)))
  | None ->
    let cell, v = make () in
    t.entries <- { e_name = name; e_labels = labels; e_cell = cell } :: t.entries;
    v

let counter t ?labels name =
  register t ?labels name
    (fun () -> let r = ref 0 in (C r, r))
    (function C r -> Some r | _ -> None)

let gauge t ?labels name =
  register t ?labels name
    (fun () -> let r = ref 0.0 in (G r, r))
    (function G r -> Some r | _ -> None)

(* 63 buckets cover every positive OCaml int (bucket = bit length). *)
let n_buckets = 64

let histogram t ?labels name =
  register t ?labels name
    (fun () ->
      let h = { h_count = 0; h_sum = 0; h_buckets = Array.make n_buckets 0 } in
      (H h, h))
    (function H h -> Some h | _ -> None)

let incr c = incr c
let add c n = c := !c + n
let set_counter c n = c := n
let value c = !c

let set g v = g := v
let set_int g n = g := float_of_int n
let gauge_value g = !g

let bucket_of v =
  if v <= 0 then 0
  else
    let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1) in
    bits 0 v

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let absorb h ~count ~sum ~buckets =
  h.h_count <- h.h_count + count;
  h.h_sum <- h.h_sum + sum;
  List.iter
    (fun (b, n) ->
      if b < 0 || b >= n_buckets then
        invalid_arg "Registry.absorb: bucket out of range";
      h.h_buckets.(b) <- h.h_buckets.(b) + n)
    buckets

(* Interpolated quantile over log2 buckets: bucket [b >= 1] covers
   [2^(b-1), 2^b), bucket 0 is the point value 0. The target rank is
   located by cumulative count and positioned linearly within its
   bucket's range — exact to within the bucket's resolution (a factor
   of 2), which is the deal log-bucketing makes. *)
let quantile_of_buckets ~count buckets q =
  if count <= 0 then None
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let rank = q *. float_of_int count in
    let rec go cum = function
      | [] -> None
      | (b, n) :: rest ->
        let cum' = cum +. float_of_int n in
        if cum' >= rank && n > 0 then
          if b = 0 then Some 0.0
          else begin
            let lo = float_of_int (1 lsl (b - 1)) in
            let hi = float_of_int (1 lsl b) in
            let frac = (rank -. cum) /. float_of_int n in
            Some (lo +. ((hi -. lo) *. frac))
          end
        else go cum' rest
    in
    go 0.0 buckets
  end

type metric_value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : int; buckets : (int * int) list }

type metric = {
  name : string;
  labels : (string * string) list;
  value : metric_value;
}

let metric_of_entry e =
  let value =
    match e.e_cell with
    | C r -> Counter !r
    | G r -> Gauge !r
    | H h ->
      let buckets = ref [] in
      for b = n_buckets - 1 downto 0 do
        if h.h_buckets.(b) <> 0 then buckets := (b, h.h_buckets.(b)) :: !buckets
      done;
      Histogram { count = h.h_count; sum = h.h_sum; buckets = !buckets }
  in
  { name = e.e_name; labels = e.e_labels; value }

let estimate_quantile v q =
  match v with
  | Counter _ | Gauge _ -> None
  | Histogram { count; buckets; _ } -> quantile_of_buckets ~count buckets q

let snapshot t = List.rev_map metric_of_entry t.entries

let find t ?(labels = []) name =
  let rec go = function
    | [] -> None
    | e :: rest ->
      if e.e_name = name && e.e_labels = labels then Some (metric_of_entry e)
      else go rest
  in
  go t.entries

let metric_to_json m =
  let labels =
    match m.labels with
    | [] -> []
    | ls ->
      [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls)) ]
  in
  let value =
    match m.value with
    | Counter n -> [ ("type", Json.String "counter"); ("value", Json.Int n) ]
    | Gauge v -> [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
    | Histogram { count; sum; buckets } ->
      (* Quantiles are derived, not stored: recomputable from the
         buckets, so the decode round-trip ignores them. *)
      let qs =
        if count = 0 then []
        else
          List.filter_map
            (fun (key, q) ->
              Option.map
                (fun v -> (key, Json.Float v))
                (quantile_of_buckets ~count buckets q))
            [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]
      in
      [ ("type", Json.String "histogram"); ("count", Json.Int count);
        ("sum", Json.Int sum) ]
      @ qs
      @ [ ( "buckets",
            Json.List
              (List.map
                 (fun (b, n) -> Json.List [ Json.Int b; Json.Int n ])
                 buckets) ) ]
  in
  Json.Obj ((("name", Json.String m.name) :: labels) @ value)

let to_json t =
  Json.Obj
    [ ("schema_version", Json.Int 1);
      ("metrics", Json.List (List.map metric_to_json (snapshot t))) ]

let ( let* ) r f = Result.bind r f

let req what = function Some v -> Ok v | None -> Error ("registry json: " ^ what)

let metric_of_json j =
  let* name = req "metric name" Json.(Option.bind (member "name" j) to_str) in
  let labels =
    match Json.member "labels" j with
    | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
        kvs
    | _ -> []
  in
  let* ty = req "metric type" Json.(Option.bind (member "type" j) to_str) in
  let* value =
    match ty with
    | "counter" ->
      let* n = req "counter value" Json.(Option.bind (member "value" j) to_int) in
      Ok (Counter n)
    | "gauge" ->
      let* v = req "gauge value" Json.(Option.bind (member "value" j) to_float) in
      Ok (Gauge v)
    | "histogram" ->
      let* count = req "histogram count" Json.(Option.bind (member "count" j) to_int) in
      let* sum = req "histogram sum" Json.(Option.bind (member "sum" j) to_int) in
      let* bs = req "histogram buckets" Json.(Option.bind (member "buckets" j) to_list) in
      let* buckets =
        List.fold_left
          (fun acc b ->
            let* acc = acc in
            match b with
            | Json.List [ Json.Int i; Json.Int n ] -> Ok ((i, n) :: acc)
            | _ -> Error "registry json: bad histogram bucket")
          (Ok []) bs
      in
      Ok (Histogram { count; sum; buckets = List.rev buckets })
    | other -> Error ("registry json: unknown metric type " ^ other)
  in
  Ok { name; labels; value }

let metrics_of_json j =
  let* ms = req "metrics list" Json.(Option.bind (member "metrics" j) to_list) in
  List.fold_left
    (fun acc m ->
      let* acc = acc in
      let* m = metric_of_json m in
      Ok (m :: acc))
    (Ok []) ms
  |> Result.map List.rev

let to_string t = Json.to_string (to_json t) ^ "\n"
let write ~file t = Era_metrics.Fsutil.write_file ~file (to_string t)

let pp fmt t =
  let pp_labels fmt = function
    | [] -> ()
    | ls ->
      Fmt.pf fmt "{%a}"
        (Fmt.list ~sep:Fmt.comma (fun fmt (k, v) -> Fmt.pf fmt "%s=%s" k v))
        ls
  in
  List.iter
    (fun m ->
      match m.value with
      | Counter n -> Fmt.pf fmt "%s%a %d@." m.name pp_labels m.labels n
      | Gauge v -> Fmt.pf fmt "%s%a %g@." m.name pp_labels m.labels v
      | Histogram { count; sum; _ } ->
        Fmt.pf fmt "%s%a count=%d sum=%d@." m.name pp_labels m.labels count sum)
    (snapshot t)

(** Trace events.

    Every shared-memory step of a simulated execution (Section 3 of the
    paper: an execution is an alternating sequence of configurations and
    steps) is reflected as one event. The monitor consumes the stream to
    enforce Definitions 4.1/4.2 and to sample the retired/active counts
    that Definitions 5.1/5.2 (robustness) quantify over. *)

type op = {
  name : string;  (** e.g. "insert", "delete", "contains" *)
  args : int list;
}

type op_result =
  | R_bool of bool
  | R_int of int option
  | R_unit

type access_kind =
  | Read
  | Write
  | Cas of bool  (** payload: did the CAS succeed *)

type violation =
  | Unsafe_write
      (** update through an invalid pointer (Definition 4.2(2)) *)
  | Unsafe_cas
      (** successful RMW through an invalid pointer (Definition 4.2(2)) *)
  | System_space_access
      (** touched memory returned to the system (Definition 4.2(1)); a
          segmentation fault on real hardware *)
  | Stale_value_used
      (** a value obtained by an unsafe read was used (Definition 4.2(3)) *)
  | Double_free
  | Lifecycle_error
  | Progress_failure
      (** a solo run exceeded its step budget: lock-freedom lost
          (Definition 5.4(3)) *)
  | Robustness_exceeded
      (** the retired backlog crossed a configured robustness bound while
          some thread was delayed (Definitions 5.1/5.2) — emitted by the
          explorer's robustness watcher, not by the heap *)
  | Linearizability_failure

type t =
  | Alloc of { tid : int; addr : int; node : int; key : int }
  | Share of { tid : int; addr : int; node : int }
  | Retire of { tid : int; addr : int; node : int }
  | Reclaim of { tid : int; addr : int; node : int; to_system : bool }
  | Access of {
      tid : int;
      addr : int;
      node : int;  (** node identity the pointer was derived for *)
      field : int;
      kind : access_kind;
      unsafe : bool;
    }
  | Key_read of { tid : int; addr : int; node : int; unsafe : bool }
  | Violation of { tid : int; kind : violation; detail : string }
  | Invoke of { tid : int; opid : int; op : op }
  | Response of { tid : int; opid : int; op : op; result : op_result }
  | Label of { tid : int; name : string }
      (** breakpoint markers emitted by data structures / schemes, used by
          scripted schedules to steer adversarial executions *)
  | Protect of { tid : int; slot : int; addr : int; node : int }
  | Epoch of { value : int }
  | Neutralize of { by : int; target : int }
  | Stalled of { tid : int }
  | Resumed of { tid : int }
  | Note of string

(** {2 Constructor tags}

    Dense numbering of the constructors above, so the monitor can keep
    per-kind subscription tables and callers can ask "is anyone listening
    to this kind?" before building an event record at all. *)

val n_tags : int

val tag : t -> int
(** [0 <= tag ev < n_tags]. *)

val tag_alloc : int
val tag_share : int
val tag_retire : int
val tag_reclaim : int
val tag_access : int
val tag_key_read : int
val tag_violation : int
val tag_invoke : int
val tag_response : int
val tag_label : int
val tag_protect : int
val tag_epoch : int
val tag_neutralize : int
val tag_stalled : int
val tag_resumed : int
val tag_note : int

val violation_name : violation -> string

val violation_of_name : string -> violation option
(** Inverse of {!violation_name} — used when deserializing saved
    counterexamples. *)

val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> op_result -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

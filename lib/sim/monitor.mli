(** The execution monitor: consumes the event stream of a simulated
    execution and enforces / measures the paper's definitions.

    - Safety (Definitions 4.1, 4.2): [Violation] events either raise
      {!Violation} ([`Raise] mode, for tests that expect safe executions)
      or are recorded ([`Record] mode, for the adversarial constructions of
      Figures 1–2 that deliberately drive a scheme into an unsafe access).
    - Robustness (Definitions 5.1, 5.2): the monitor maintains
      [active]/[retired] counts and their running maxima, and samples
      [(time, active, retired, max_active)] at every count change, so a
      classifier can fit the retired-count bound against
      [max_active · N]. *)

type mode =
  [ `Raise  (** raise {!Violation} on the first safety violation *)
  | `Record  (** record violations and keep executing *)
  ]

type sample = {
  time : int;
  active : int;
  retired : int;
  max_active : int;
}

type t

exception Violation of Event.t

val create : ?mode:mode -> ?trace:bool -> unit -> t
(** [trace] (default [true]) keeps the full event list in memory; disable
    for long robustness sweeps. Counters and samples are kept regardless. *)

val emit : t -> Event.t -> unit
(** Feed one event. Updates counters; dispatches to hooks subscribed to
    the event's kind; in [`Raise] mode raises {!Violation} on violation
    events.

    Dispatch contract: hooks run over a stable snapshot of the
    subscription list and all receive the same timestamp. A hook may
    safely {!subscribe} or {!unsubscribe} (itself or any other hook)
    during dispatch — the change takes effect from the {e next} event —
    and may emit nested events (the nested event dispatches immediately,
    with its own later timestamp, without disturbing the outer
    dispatch). *)

val subscribe : t -> (int -> Event.t -> unit) -> unit
(** [subscribe t f] calls [f time event] on every subsequent event. Used by
    auditors (access-awareness, phase checkers) and scripted schedulers. *)

val subscribe_tags : t -> int list -> (int -> Event.t -> unit) -> unit
(** Like {!subscribe} but only for the given {!Event.tag} kinds — events
    of other kinds keep their allocation-free fast path. *)

val unsubscribe : t -> (int -> Event.t -> unit) -> unit
(** Remove a hook from every kind it was subscribed to, restoring the
    fast path for kinds left with no listener. Matches by physical
    equality, so pass the exact closure given to {!subscribe} /
    {!subscribe_tags}. *)

val observed : t -> tag:int -> bool
(** Is anyone listening to this event kind (trace enabled, or at least
    one hook subscribed to [tag])? When [false], callers may skip
    building the event record and call a [emit_*] fast-path instead. *)

(** {2 Fast-path emitters}

    Allocation-free counterparts of {!emit} for the per-memory-access
    event kinds. When the kind is unobserved they only advance the step
    clock; otherwise they build the record and go through {!emit}, so the
    observable event sequence is identical either way. *)

val emit_access :
  t -> tid:int -> addr:int -> node:int -> field:int ->
  kind:Event.access_kind -> unsafe:bool -> unit

val emit_key_read :
  t -> tid:int -> addr:int -> node:int -> unsafe:bool -> unit

val time : t -> int
(** Number of events emitted so far — the simulated step clock. *)

(** {2 Snapshot / restore} *)

type state
(** Captured counters and log lengths (step clock, active/retired counts
    and maxima, event/violation/sample log positions). *)

val snapshot : t -> state

val restore : t -> state -> unit
(** Rewind the counters and truncate the logs to the captured lengths.
    Hook subscriptions are untouched: they belong to the observers, not
    to the observed execution. Only meaningful with a [state] captured
    from the same monitor. *)

val fingerprint : t -> int
(** Hash of the monitor's counter state (active/retired counts, their
    maxima, violation count) — deliberately {e excluding} the step clock,
    so two equivalent configurations reached in different numbers of
    steps can still be recognised as equal by the schedule explorer. *)

val active : t -> int
val retired : t -> int
val max_active : t -> int
val max_retired : t -> int

val violations : t -> Event.t list
(** All recorded violations, oldest first. *)

val first_violation : t -> Event.t option
val violation_count : t -> int

val samples : t -> sample list
(** Robustness samples, oldest first. *)

val trace : t -> Event.t list
(** Full trace, oldest first; [[]] if tracing was disabled. *)

val trace_vec : t -> Event.t Vec.t

val find_last : t -> (Event.t -> bool) -> Event.t option

val pp_violations : Format.formatter -> t -> unit

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len

let grow t v =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let ndata = Array.make ncap v in
  Array.blit t.data 0 ndata 0 t.len;
  t.data <- ndata

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: out of bounds";
  t.data.(i)

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: out of bounds";
  t.data.(i) <- v

let clear t = t.len <- 0

(* Shrink-only: entries beyond [n] stay in [data] (harmless garbage
   retention, same as [clear]) — used by snapshot restore to rewind a
   log to a captured length. *)
let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Vec.truncate: bad length";
  t.len <- n

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t =
  let rec build i acc = if i < 0 then acc else build (i - 1) (t.data.(i) :: acc) in
  build (t.len - 1) []

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let find_last p t =
  let rec loop i =
    if i < 0 then None
    else if p t.data.(i) then Some t.data.(i)
    else loop (i - 1)
  in
  loop (t.len - 1)

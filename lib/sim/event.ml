type op = {
  name : string;
  args : int list;
}

type op_result =
  | R_bool of bool
  | R_int of int option
  | R_unit

type access_kind =
  | Read
  | Write
  | Cas of bool

type violation =
  | Unsafe_write
  | Unsafe_cas
  | System_space_access
  | Stale_value_used
  | Double_free
  | Lifecycle_error
  | Progress_failure
  | Robustness_exceeded
  | Linearizability_failure

type t =
  | Alloc of { tid : int; addr : int; node : int; key : int }
  | Share of { tid : int; addr : int; node : int }
  | Retire of { tid : int; addr : int; node : int }
  | Reclaim of { tid : int; addr : int; node : int; to_system : bool }
  | Access of {
      tid : int;
      addr : int;
      node : int;
      field : int;
      kind : access_kind;
      unsafe : bool;
    }
  | Key_read of { tid : int; addr : int; node : int; unsafe : bool }
  | Violation of { tid : int; kind : violation; detail : string }
  | Invoke of { tid : int; opid : int; op : op }
  | Response of { tid : int; opid : int; op : op; result : op_result }
  | Label of { tid : int; name : string }
  | Protect of { tid : int; slot : int; addr : int; node : int }
  | Epoch of { value : int }
  | Neutralize of { by : int; target : int }
  | Stalled of { tid : int }
  | Resumed of { tid : int }
  | Note of string

(* Dense numbering of the constructors, used by the monitor's per-kind
   subscription tables. *)
let n_tags = 16

let tag_alloc = 0
let tag_share = 1
let tag_retire = 2
let tag_reclaim = 3
let tag_access = 4
let tag_key_read = 5
let tag_violation = 6
let tag_invoke = 7
let tag_response = 8
let tag_label = 9
let tag_protect = 10
let tag_epoch = 11
let tag_neutralize = 12
let tag_stalled = 13
let tag_resumed = 14
let tag_note = 15

let tag = function
  | Alloc _ -> tag_alloc
  | Share _ -> tag_share
  | Retire _ -> tag_retire
  | Reclaim _ -> tag_reclaim
  | Access _ -> tag_access
  | Key_read _ -> tag_key_read
  | Violation _ -> tag_violation
  | Invoke _ -> tag_invoke
  | Response _ -> tag_response
  | Label _ -> tag_label
  | Protect _ -> tag_protect
  | Epoch _ -> tag_epoch
  | Neutralize _ -> tag_neutralize
  | Stalled _ -> tag_stalled
  | Resumed _ -> tag_resumed
  | Note _ -> tag_note

let all_violations =
  [
    Unsafe_write; Unsafe_cas; System_space_access; Stale_value_used;
    Double_free; Lifecycle_error; Progress_failure; Robustness_exceeded;
    Linearizability_failure;
  ]

let violation_name = function
  | Unsafe_write -> "unsafe-write"
  | Unsafe_cas -> "unsafe-cas"
  | System_space_access -> "system-space-access"
  | Stale_value_used -> "stale-value-used"
  | Double_free -> "double-free"
  | Lifecycle_error -> "lifecycle-error"
  | Progress_failure -> "progress-failure"
  | Robustness_exceeded -> "robustness-exceeded"
  | Linearizability_failure -> "linearizability-failure"

let violation_of_name s =
  List.find_opt (fun v -> violation_name v = s) all_violations

let pp_op fmt { name; args } =
  Fmt.pf fmt "%s(%a)" name Fmt.(list ~sep:comma int) args

let pp_result fmt = function
  | R_bool b -> Fmt.bool fmt b
  | R_int (Some v) -> Fmt.pf fmt "Some %d" v
  | R_int None -> Fmt.string fmt "None"
  | R_unit -> Fmt.string fmt "()"

let pp_kind fmt = function
  | Read -> Fmt.string fmt "read"
  | Write -> Fmt.string fmt "write"
  | Cas ok -> Fmt.pf fmt "cas[%s]" (if ok then "ok" else "fail")

let pp fmt = function
  | Alloc { tid; addr; node; key } ->
    Fmt.pf fmt "T%d alloc &%d#%d key=%d" tid addr node key
  | Share { tid; addr; node } -> Fmt.pf fmt "T%d share &%d#%d" tid addr node
  | Retire { tid; addr; node } -> Fmt.pf fmt "T%d retire &%d#%d" tid addr node
  | Reclaim { tid; addr; node; to_system } ->
    Fmt.pf fmt "T%d reclaim &%d#%d%s" tid addr node
      (if to_system then " (to system)" else "")
  | Access { tid; addr; node; field; kind; unsafe } ->
    Fmt.pf fmt "T%d %a &%d#%d.f%d%s" tid pp_kind kind addr node field
      (if unsafe then " UNSAFE" else "")
  | Key_read { tid; addr; node; unsafe } ->
    Fmt.pf fmt "T%d key-read &%d#%d%s" tid addr node
      (if unsafe then " UNSAFE" else "")
  | Violation { tid; kind; detail } ->
    Fmt.pf fmt "T%d VIOLATION %s: %s" tid (violation_name kind) detail
  | Invoke { tid; opid; op } -> Fmt.pf fmt "T%d invoke #%d %a" tid opid pp_op op
  | Response { tid; opid; op; result } ->
    Fmt.pf fmt "T%d response #%d %a = %a" tid opid pp_op op pp_result result
  | Label { tid; name } -> Fmt.pf fmt "T%d label %s" tid name
  | Protect { tid; slot; addr; node } ->
    Fmt.pf fmt "T%d protect[%d] &%d#%d" tid slot addr node
  | Epoch { value } -> Fmt.pf fmt "epoch -> %d" value
  | Neutralize { by; target } -> Fmt.pf fmt "T%d neutralizes T%d" by target
  | Stalled { tid } -> Fmt.pf fmt "T%d stalled" tid
  | Resumed { tid } -> Fmt.pf fmt "T%d resumed" tid
  | Note s -> Fmt.pf fmt "note: %s" s

let to_string e = Fmt.str "%a" pp e

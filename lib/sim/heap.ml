exception Heap_exhausted

type validity =
  | Valid
  | Invalid_unallocated
  | Invalid_reused
  | Invalid_system

type space_policy =
  | Keep_in_program
  | Return_to_system
  | Return_every of int

type config = {
  ptr_fields : int;
  aux_fields : int;
  space : space_policy;
  capacity : int option;
}

type stats = {
  allocs : int;
  reclaims : int;
  cells_in_use : int;
  free_cells : int;
  system_cells : int;
}

type cell = {
  addr : int;
  mutable node : int;
  mutable state : Lifecycle.t;
  mutable key : int;
  mutable ptrs : Word.t array;
  mutable aux : Word.t array;
  mutable in_system : bool;
  mutable entry : bool;  (* data-structure entry point (sentinel) *)
}

type t = {
  cfg : config;
  mon : Monitor.t;
  cells : cell Vec.t;
  mutable free : int list;
  mutable next_node : int;
  mutable allocs : int;
  mutable reclaims : int;
  mutable system_cells : int;
  mutable in_use : int;  (* cells whose state is not Unallocated *)
  mutable free_count : int;  (* length of [free] *)
  (* Incremental fingerprint (opt-in): XOR of per-cell hashes, updated at
     every cell mutation so the schedule explorer can fingerprint the
     heap in O(1) at every branch point instead of walking every cell.
     Off by default — when off, each mutation site pays one branch. *)
  mutable xfp_on : bool;
  mutable xfp : int;
}

let default_config =
  { ptr_fields = 2; aux_fields = 4; space = Keep_in_program; capacity = None }

let create ?(config = default_config) mon =
  {
    cfg = config;
    mon;
    cells = Vec.create ();
    free = [];
    next_node = 0;
    allocs = 0;
    reclaims = 0;
    system_cells = 0;
    in_use = 0;
    free_count = 0;
    xfp_on = false;
    xfp = 0;
  }

let monitor t = t.mon
let config t = t.cfg

(* [in_use] and [free_count] are maintained incrementally at the three
   points where a cell changes occupancy (alloc, reclaim, free-list pop)
   so this is O(1) — it used to fold over every cell and walk the whole
   free list on each call. *)
let stats t =
  {
    allocs = t.allocs;
    reclaims = t.reclaims;
    cells_in_use = t.in_use;
    free_cells = t.free_count;
    system_cells = t.system_cells;
  }

let violate t ~tid kind detail =
  Monitor.emit t.mon (Event.Violation { tid; kind; detail })

let cell_of_addr t addr =
  if addr < 0 || addr >= Vec.length t.cells then
    invalid_arg (Fmt.str "Heap: address %d out of range" addr)
  else Vec.get t.cells addr

let validity t w =
  match w with
  | Word.Null | Word.Int _ -> invalid_arg "Heap.validity: not a pointer"
  | Word.Ptr p ->
    let c = cell_of_addr t p.addr in
    if c.in_system then Invalid_system
    else if c.node <> p.node then Invalid_reused
    else if Lifecycle.equal c.state Lifecycle.Unallocated then
      Invalid_unallocated
    else Valid

let is_valid t w = validity t w = Valid

(* ------------------------------------------------------------------ *)
(* Fingerprinting primitives                                          *)
(* ------------------------------------------------------------------ *)

(* FNV-1a-style mixing. The full-walk [fingerprint] ignores free/unmapped
   cell identity beyond its count, so two executions that reach the same
   logical configuration through different transient allocations still
   collide only when the observable state matches. *)
let fp_mix h v = (h lxor v) * 0x100000001b3

let fp_word h w =
  match w with
  | Word.Null -> fp_mix h 1
  | Word.Int v -> fp_mix (fp_mix h 2) v
  | Word.Ptr p ->
    let tag = 3 lor (if p.marked then 4 else 0) lor (if p.stale then 8 else 0) in
    fp_mix (fp_mix (fp_mix h tag) p.addr) p.node

let fp_state h = function
  | Lifecycle.Unallocated -> fp_mix h 11
  | Lifecycle.Local tid -> fp_mix (fp_mix h 13) tid
  | Lifecycle.Shared -> fp_mix h 17
  | Lifecycle.Retired -> fp_mix h 19

(* Per-cell hash for the incremental XOR fingerprint: unoccupied cells
   contribute 0 so occupancy transitions fall out of the same
   before/after bracket as field updates. Covers exactly the per-cell
   data the full-walk [fingerprint] covers ([entry] is ignored by both);
   the combining differs (XOR of per-cell FNV chains vs one sequential
   chain), so the two fingerprints are distinct hash functions — callers
   must not mix them in one visited set. *)
let cell_hash c =
  if Lifecycle.equal c.state Lifecycle.Unallocated && not c.in_system then 0
  else begin
    let h = fp_mix (fp_mix 0x811c9dc5 c.addr) c.node in
    let h = fp_state h c.state in
    let h = fp_mix h c.key in
    let h = if c.in_system then fp_mix h 23 else h in
    let h = Array.fold_left fp_word h c.ptrs in
    Array.fold_left fp_word h c.aux
  end

(* Mutation sites bracket cell updates with [xfp_pre]/[xfp_post]; when
   the incremental fingerprint is off the bracket costs one branch and
   no allocation. *)
let xfp_pre t c = if t.xfp_on then cell_hash c else 0

let xfp_post t c pre =
  if t.xfp_on then t.xfp <- t.xfp lxor pre lxor cell_hash c

let enable_xfingerprint t =
  t.xfp <- Vec.fold_left (fun h c -> h lxor cell_hash c) 0 t.cells;
  t.xfp_on <- true

let xfingerprint t =
  if not t.xfp_on then
    invalid_arg "Heap.xfingerprint: enable_xfingerprint not called";
  fp_mix (fp_mix 0x1cbf29ce4 t.free_count) t.xfp

(* ------------------------------------------------------------------ *)
(* Allocation / life cycle                                            *)
(* ------------------------------------------------------------------ *)

let fresh_cell t =
  match t.free with
  | addr :: rest ->
    t.free <- rest;
    t.free_count <- t.free_count - 1;
    cell_of_addr t addr
  | [] ->
    let n = Vec.length t.cells in
    (match t.cfg.capacity with
    | Some cap when n >= cap -> raise Heap_exhausted
    | Some _ | None -> ());
    let c =
      {
        addr = n;
        node = -1;
        state = Lifecycle.Unallocated;
        key = 0;
        ptrs = Array.make t.cfg.ptr_fields Word.Null;
        aux = Array.make t.cfg.aux_fields Word.Null;
        in_system = false;
        entry = false;
      }
    in
    Vec.push t.cells c;
    c

let alloc_with_state t ~tid ~key state =
  let c = fresh_cell t in
  let node = t.next_node in
  t.next_node <- node + 1;
  t.allocs <- t.allocs + 1;
  t.in_use <- t.in_use + 1;
  let pre = xfp_pre t c in
  c.node <- node;
  c.state <- state;
  c.key <- key;
  Array.fill c.ptrs 0 (Array.length c.ptrs) Word.Null;
  Array.fill c.aux 0 (Array.length c.aux) Word.Null;
  xfp_post t c pre;
  Monitor.emit t.mon (Event.Alloc { tid; addr = c.addr; node; key });
  (match state with
  | Lifecycle.Shared ->
    Monitor.emit t.mon (Event.Share { tid; addr = c.addr; node })
  | Unallocated | Local _ | Retired -> ());
  Word.ptr ~addr:c.addr ~node

let alloc t ~tid ~key = alloc_with_state t ~tid ~key (Lifecycle.Local tid)

let alloc_sentinel t ~tid ~key =
  let w = alloc_with_state t ~tid ~key Lifecycle.Shared in
  (cell_of_addr t (Word.addr_exn w)).entry <- true;
  w

let is_entry t ~addr = (cell_of_addr t addr).entry

let transition t ~tid c to_ =
  match Lifecycle.check_transition ~from:c.state ~to_ with
  | Ok () ->
    let pre = xfp_pre t c in
    c.state <- to_;
    xfp_post t c pre
  | Error msg -> violate t ~tid Event.Lifecycle_error msg

let retire t ~tid w =
  match w with
  | Word.Null | Word.Int _ -> invalid_arg "Heap.retire: not a pointer"
  | Word.Ptr p ->
    let c = cell_of_addr t p.addr in
    if c.node <> p.node || Lifecycle.equal c.state Lifecycle.Unallocated then
      violate t ~tid Event.Double_free
        (Fmt.str "retire of dead node &%d#%d" p.addr p.node)
    else if Lifecycle.equal c.state Lifecycle.Retired then
      violate t ~tid Event.Double_free
        (Fmt.str "double retire of &%d#%d" p.addr p.node)
    else begin
      transition t ~tid c Lifecycle.Retired;
      Monitor.emit t.mon (Event.Retire { tid; addr = p.addr; node = p.node })
    end

let reclaim t ~tid w =
  match w with
  | Word.Null | Word.Int _ -> invalid_arg "Heap.reclaim: not a pointer"
  | Word.Ptr p ->
    let c = cell_of_addr t p.addr in
    if c.node <> p.node || not (Lifecycle.equal c.state Lifecycle.Retired) then
      violate t ~tid Event.Double_free
        (Fmt.str "reclaim of non-retired node &%d#%d (cell holds #%d, %a)"
           p.addr p.node c.node Lifecycle.pp c.state)
    else begin
      transition t ~tid c Lifecycle.Unallocated;
      if Lifecycle.equal c.state Lifecycle.Unallocated then
        t.in_use <- t.in_use - 1;
      t.reclaims <- t.reclaims + 1;
      let to_system =
        match t.cfg.space with
        | Keep_in_program -> false
        | Return_to_system -> true
        | Return_every k -> k > 0 && t.reclaims mod k = 0
      in
      if to_system then begin
        let pre = xfp_pre t c in
        c.in_system <- true;
        xfp_post t c pre;
        t.system_cells <- t.system_cells + 1
      end
      else begin
        t.free <- c.addr :: t.free;
        t.free_count <- t.free_count + 1
      end;
      Monitor.emit t.mon
        (Event.Reclaim { tid; addr = p.addr; node = p.node; to_system })
    end

(* ------------------------------------------------------------------ *)
(* Accesses                                                           *)
(* ------------------------------------------------------------------ *)

let deref_cell t ~tid w =
  match w with
  | Word.Null -> invalid_arg "Heap: dereference of null (data-structure bug)"
  | Word.Int _ -> invalid_arg "Heap: dereference of integer"
  | Word.Ptr p ->
    let v = validity t w in
    if Word.is_stale w then
      violate t ~tid Event.Stale_value_used
        (Fmt.str "dereference of stale pointer %a" Word.pp w);
    if v = Invalid_system then
      violate t ~tid Event.System_space_access
        (Fmt.str "access to system space via %a" Word.pp w);
    (cell_of_addr t p.addr, p, v)

let check_field c field =
  if field < 0 || field >= Array.length c.ptrs then
    invalid_arg (Fmt.str "Heap: pointer field %d out of range" field)

(* All access/key-read events funnel through the monitor's fast-path
   emitters: when nobody observes the kind the record is never built. *)
let emit_access t ~tid ~(p : Word.ptr) ~field ~kind ~unsafe =
  Monitor.emit_access t.mon ~tid ~addr:p.addr ~node:p.node ~field ~kind
    ~unsafe

(* Auto-promotion of reachability: storing a pointer to a local node into a
   field of a shared node makes the target shared (it became reachable from
   an entry point through shared nodes). *)
let promote_if_shared t ~tid via_cell stored =
  match stored with
  | Word.Ptr q when Lifecycle.equal via_cell.state Lifecycle.Shared -> (
    let target = cell_of_addr t q.addr in
    if target.node = q.node then
      match target.state with
      | Lifecycle.Local _ ->
        transition t ~tid target Lifecycle.Shared;
        Monitor.emit t.mon
          (Event.Share { tid; addr = q.addr; node = q.node })
      | Unallocated | Shared | Retired -> ())
  | Word.Ptr _ | Word.Null | Word.Int _ -> ()

let read_checked t ~tid ~via ~field =
  let c, p, v = deref_cell t ~tid via in
  check_field c field;
  let unsafe = v <> Valid in
  emit_access t ~tid ~p ~field ~kind:Event.Read ~unsafe;
  if unsafe then begin
    violate t ~tid Event.Stale_value_used
      (Fmt.str "value read through invalid pointer %a (.f%d) is used"
         Word.pp via field);
    Word.taint c.ptrs.(field)
  end
  else c.ptrs.(field)

let peek t ~tid ~via ~field =
  let c, p, v = deref_cell t ~tid via in
  check_field c field;
  let unsafe = v <> Valid in
  emit_access t ~tid ~p ~field ~kind:Event.Read ~unsafe;
  let w = c.ptrs.(field) in
  ((if unsafe then Word.taint w else w), v)

let read_key_checked t ~tid ~via =
  let c, p, v = deref_cell t ~tid via in
  let unsafe = v <> Valid in
  Monitor.emit_key_read t.mon ~tid ~addr:p.addr ~node:p.node ~unsafe;
  if unsafe then
    violate t ~tid Event.Stale_value_used
      (Fmt.str "key read through invalid pointer %a is used" Word.pp via);
  c.key

let peek_key t ~tid ~via =
  let c, p, v = deref_cell t ~tid via in
  let unsafe = v <> Valid in
  Monitor.emit_key_read t.mon ~tid ~addr:p.addr ~node:p.node ~unsafe;
  (c.key, v)

let check_stored_value t ~tid w =
  if Word.is_stale w then
    violate t ~tid Event.Stale_value_used
      (Fmt.str "stale value %a stored to shared memory" Word.pp w)

let write_checked t ~tid ~via ~field value =
  let c, p, v = deref_cell t ~tid via in
  check_field c field;
  check_stored_value t ~tid value;
  let unsafe = v <> Valid in
  emit_access t ~tid ~p ~field ~kind:Event.Write ~unsafe;
  if unsafe then
    violate t ~tid Event.Unsafe_write
      (Fmt.str "write through invalid pointer %a (.f%d)" Word.pp via field)
  else begin
    let pre = xfp_pre t c in
    c.ptrs.(field) <- value;
    xfp_post t c pre;
    promote_if_shared t ~tid c value
  end

let cas_gen ~compare_identity t ~tid ~via ~field ~expected ~desired =
  let c, p, v = deref_cell t ~tid via in
  check_field c field;
  check_stored_value t ~tid expected;
  check_stored_value t ~tid desired;
  let unsafe = v <> Valid in
  let current = c.ptrs.(field) in
  let bits_match = Word.same_bits current expected in
  let identity_match =
    bits_match
    &&
    match current, expected with
    | Word.Ptr a, Word.Ptr b -> a.node = b.node
    | (Word.Null | Word.Int _ | Word.Ptr _), _ -> true
  in
  let matches = if compare_identity then identity_match else bits_match in
  let success = matches && not (unsafe && compare_identity) in
  emit_access t ~tid ~p ~field ~kind:(Event.Cas success) ~unsafe;
  if unsafe && not compare_identity then begin
    (* A plain CAS through an invalid pointer: if the bits match it would
       corrupt whatever node now lives there (Definition 4.2(2)). *)
    if matches then begin
      violate t ~tid Event.Unsafe_cas
        (Fmt.str "successful CAS through invalid pointer %a (.f%d)" Word.pp
           via field);
      false
    end
    else false
  end
  else if success then begin
    let pre = xfp_pre t c in
    c.ptrs.(field) <- desired;
    xfp_post t c pre;
    promote_if_shared t ~tid c desired;
    true
  end
  else false

let cas_checked t ~tid ~via ~field ~expected ~desired =
  cas_gen ~compare_identity:false t ~tid ~via ~field ~expected ~desired

let cas_identity t ~tid ~via ~field ~expected ~desired =
  cas_gen ~compare_identity:true t ~tid ~via ~field ~expected ~desired

(* ------------------------------------------------------------------ *)
(* SMR auxiliary fields                                               *)
(* ------------------------------------------------------------------ *)

let check_aux_field t field =
  if field < 0 || field >= t.cfg.aux_fields then
    invalid_arg (Fmt.str "Heap: aux field %d out of range" field)

let aux_get t ~tid ~via ~field =
  let c, p, v = deref_cell t ~tid via in
  check_aux_field t field;
  let unsafe = v <> Valid in
  emit_access t ~tid ~p ~field ~kind:Event.Read ~unsafe;
  let w = c.aux.(field) in
  ((if unsafe then Word.taint w else w), v)

let aux_set t ~tid ~via ~field value =
  let c, p, v = deref_cell t ~tid via in
  check_aux_field t field;
  let unsafe = v <> Valid in
  emit_access t ~tid ~p ~field ~kind:Event.Write ~unsafe;
  if unsafe then
    violate t ~tid Event.Unsafe_write
      (Fmt.str "scheme-field write through invalid pointer %a" Word.pp via)
  else begin
    let pre = xfp_pre t c in
    c.aux.(field) <- value;
    xfp_post t c pre
  end

let aux_cas t ~tid ~via ~field ~expected ~desired =
  let c, p, v = deref_cell t ~tid via in
  check_aux_field t field;
  let unsafe = v <> Valid in
  let current = c.aux.(field) in
  let success = (not unsafe) && Word.same_bits current expected in
  emit_access t ~tid ~p ~field ~kind:(Event.Cas success) ~unsafe;
  if success then begin
    let pre = xfp_pre t c in
    c.aux.(field) <- desired;
    xfp_post t c pre
  end;
  success

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

(* Full walk over the occupied cells; see the fingerprinting primitives
   above for the mixing and what the hash covers. *)
let fingerprint t =
  Vec.fold_left
    (fun h c ->
      if Lifecycle.equal c.state Lifecycle.Unallocated && not c.in_system then
        h
      else begin
        let h = fp_mix (fp_mix h c.addr) c.node in
        let h = fp_state h c.state in
        let h = fp_mix h c.key in
        let h = if c.in_system then fp_mix h 23 else h in
        let h = Array.fold_left fp_word h c.ptrs in
        Array.fold_left fp_word h c.aux
      end)
    (fp_mix 0x1cbf29ce4 t.free_count)
    t.cells

let cell_state t ~addr = (cell_of_addr t addr).state
let node_at t ~addr = (cell_of_addr t addr).node
let key_of_cell t ~addr = (cell_of_addr t addr).key

let collect t p =
  Vec.fold_left
    (fun acc c -> if p c then (c.addr, c.node, c.key) :: acc else acc)
    [] t.cells
  |> List.rev

let live_nodes t = collect t (fun c -> Lifecycle.is_active c.state)

let retired_nodes t =
  collect t (fun c -> Lifecycle.equal c.state Lifecycle.Retired)

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                 *)
(* ------------------------------------------------------------------ *)

(* A deep copy of every cell plus the allocator bookkeeping. Restoring
   rewrites the live cells in place (cell records are only reachable
   through the heap, never captured by simulated programs — [Word.t]
   carries addresses, not cell references) and truncates cells born
   after the capture, so a restored heap is observationally identical
   to the captured one, including its incremental fingerprint. *)
type snapshot = {
  s_cells : cell array;
  s_free : int list;
  s_next_node : int;
  s_allocs : int;
  s_reclaims : int;
  s_system_cells : int;
  s_in_use : int;
  s_free_count : int;
  s_xfp_on : bool;
  s_xfp : int;
}

let snapshot t =
  let copy_cell c = { c with ptrs = Array.copy c.ptrs; aux = Array.copy c.aux } in
  {
    s_cells = Array.init (Vec.length t.cells) (fun i -> copy_cell (Vec.get t.cells i));
    s_free = t.free;
    s_next_node = t.next_node;
    s_allocs = t.allocs;
    s_reclaims = t.reclaims;
    s_system_cells = t.system_cells;
    s_in_use = t.in_use;
    s_free_count = t.free_count;
    s_xfp_on = t.xfp_on;
    s_xfp = t.xfp;
  }

let restore t s =
  let n = Array.length s.s_cells in
  if Vec.length t.cells < n then
    invalid_arg "Heap.restore: snapshot is from a different heap";
  Vec.truncate t.cells n;
  for i = 0 to n - 1 do
    let src = s.s_cells.(i) in
    let dst = Vec.get t.cells i in
    if dst.addr <> src.addr then
      invalid_arg "Heap.restore: snapshot is from a different heap";
    dst.node <- src.node;
    dst.state <- src.state;
    dst.key <- src.key;
    Array.blit src.ptrs 0 dst.ptrs 0 (Array.length src.ptrs);
    Array.blit src.aux 0 dst.aux 0 (Array.length src.aux);
    dst.in_system <- src.in_system;
    dst.entry <- src.entry
  done;
  t.free <- s.s_free;
  t.next_node <- s.s_next_node;
  t.allocs <- s.s_allocs;
  t.reclaims <- s.s_reclaims;
  t.system_cells <- s.s_system_cells;
  t.in_use <- s.s_in_use;
  t.free_count <- s.s_free_count;
  t.xfp_on <- s.s_xfp_on;
  t.xfp <- s.s_xfp

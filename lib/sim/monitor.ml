type mode = [ `Raise | `Record ]

type sample = {
  time : int;
  active : int;
  retired : int;
  max_active : int;
}

type hook = int -> Event.t -> unit

type t = {
  mode : mode;
  keep_trace : bool;
  events : Event.t Vec.t;
  viols : Event.t Vec.t;
  samps : sample Vec.t;
  kind_hooks : hook list array;  (* per Event.tag, newest first *)
  mutable hook_mask : int;  (* bit [tag] set iff kind_hooks.(tag) <> [] *)
  mutable time : int;
  mutable active : int;
  mutable retired : int;
  mutable max_active : int;
  mutable max_retired : int;
}

exception Violation of Event.t

let create ?(mode = `Raise) ?(trace = true) () =
  {
    mode;
    keep_trace = trace;
    events = Vec.create ();
    viols = Vec.create ();
    samps = Vec.create ();
    kind_hooks = Array.make Event.n_tags [];
    hook_mask = 0;
    time = 0;
    active = 0;
    retired = 0;
    max_active = 0;
    max_retired = 0;
  }

let subscribe_tags t tags f =
  List.iter
    (fun tag ->
      if tag < 0 || tag >= Event.n_tags then
        invalid_arg "Monitor.subscribe_tags: bad tag";
      t.kind_hooks.(tag) <- f :: t.kind_hooks.(tag);
      t.hook_mask <- t.hook_mask lor (1 lsl tag))
    tags

let subscribe t f =
  subscribe_tags t (List.init Event.n_tags Fun.id) f

(* Removal is by physical equality on the hook closure, so callers must
   unsubscribe the exact closure they subscribed. *)
let unsubscribe t f =
  for tag = 0 to Event.n_tags - 1 do
    match t.kind_hooks.(tag) with
    | [] -> ()
    | hooks ->
      let hooks' = List.filter (fun g -> g != f) hooks in
      t.kind_hooks.(tag) <- hooks';
      if hooks' = [] then t.hook_mask <- t.hook_mask land lnot (1 lsl tag)
  done

let observed t ~tag =
  t.keep_trace || (t.hook_mask lsr tag) land 1 = 1

let sample t =
  Vec.push t.samps
    { time = t.time; active = t.active; retired = t.retired;
      max_active = t.max_active }

let update_counts t (ev : Event.t) =
  match ev with
  | Alloc _ ->
    t.active <- t.active + 1;
    if t.active > t.max_active then t.max_active <- t.active;
    sample t
  | Retire _ ->
    t.active <- t.active - 1;
    t.retired <- t.retired + 1;
    if t.retired > t.max_retired then t.max_retired <- t.retired;
    sample t
  | Reclaim _ ->
    t.retired <- t.retired - 1;
    sample t
  | Share _ | Access _ | Key_read _ | Violation _ | Invoke _ | Response _
  | Label _ | Protect _ | Epoch _ | Neutralize _ | Stalled _ | Resumed _
  | Note _ ->
    ()

let emit t ev =
  t.time <- t.time + 1;
  update_counts t ev;
  if t.keep_trace then Vec.push t.events ev;
  let tag = Event.tag ev in
  if tag = Event.tag_violation then Vec.push t.viols ev;
  (match t.kind_hooks.(tag) with
  | [] -> ()
  | hooks ->
    (* Dispatch over a stable snapshot. Reading the slot once (lists are
       immutable) means a hook that subscribes or unsubscribes during
       dispatch — auditors detaching on their last event — never
       perturbs the current event's delivery; the mutation takes effect
       from the next event. The timestamp is captured once too: a hook
       that emits a {e nested} event (the explorer's robustness watcher
       emits a [Violation] from inside a [Retire] hook) advances
       [t.time], and re-reading it would hand later hooks of the same
       outer event a shifted timestamp. *)
    let now = t.time in
    List.iter (fun f -> f now ev) hooks);
  match ev, t.mode with
  | Violation _, `Raise -> raise (Violation ev)
  | _ -> ()

(* Fast-path emitters for the two kinds every simulated memory access
   produces. When nobody observes the kind (no trace, no hook) the event
   record is never built: one branch, one counter bump, zero
   allocations. The simulated step clock advances identically either
   way, so seeded executions are unchanged. *)

let emit_access t ~tid ~addr ~node ~field ~kind ~unsafe =
  if t.keep_trace || (t.hook_mask lsr Event.tag_access) land 1 = 1 then
    emit t (Event.Access { tid; addr; node; field; kind; unsafe })
  else t.time <- t.time + 1

let emit_key_read t ~tid ~addr ~node ~unsafe =
  if t.keep_trace || (t.hook_mask lsr Event.tag_key_read) land 1 = 1 then
    emit t (Event.Key_read { tid; addr; node; unsafe })
  else t.time <- t.time + 1

(* Counter-and-log-length snapshot: restoring rewinds the counters and
   truncates the event/violation/sample logs to their captured lengths.
   Hook subscriptions are deliberately not captured — they belong to the
   observers, not to the observed execution. *)
type state = {
  st_time : int;
  st_active : int;
  st_retired : int;
  st_max_active : int;
  st_max_retired : int;
  st_events : int;
  st_viols : int;
  st_samps : int;
}

let snapshot t =
  {
    st_time = t.time;
    st_active = t.active;
    st_retired = t.retired;
    st_max_active = t.max_active;
    st_max_retired = t.max_retired;
    st_events = Vec.length t.events;
    st_viols = Vec.length t.viols;
    st_samps = Vec.length t.samps;
  }

let restore t s =
  t.time <- s.st_time;
  t.active <- s.st_active;
  t.retired <- s.st_retired;
  t.max_active <- s.st_max_active;
  t.max_retired <- s.st_max_retired;
  Vec.truncate t.events s.st_events;
  Vec.truncate t.viols s.st_viols;
  Vec.truncate t.samps s.st_samps

let fingerprint t =
  let mix h v = (h lxor v) * 0x100000001b3 in
  mix
    (mix (mix (mix (mix 0x811c9dc5 t.active) t.retired) t.max_active)
       t.max_retired)
    (Vec.length t.viols)

let time t = t.time
let active t = t.active
let retired t = t.retired
let max_active t = t.max_active
let max_retired t = t.max_retired
let violations t = Vec.to_list t.viols
let first_violation t = if Vec.length t.viols = 0 then None else Some (Vec.get t.viols 0)
let violation_count t = Vec.length t.viols
let samples t = Vec.to_list t.samps
let trace t = Vec.to_list t.events
let trace_vec t = t.events
let find_last t p = Vec.find_last p t.events

let pp_violations fmt t =
  if Vec.length t.viols = 0 then Fmt.string fmt "(no violations)"
  else Vec.iter (fun ev -> Fmt.pf fmt "%a@." Event.pp ev) t.viols

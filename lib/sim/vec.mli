(** Minimal growable array (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate t n] rewinds the length to [n] ([0 <= n <= length t]);
    entries beyond [n] become unreachable through the API. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
val find_last : ('a -> bool) -> 'a t -> 'a option

(** The simulated shared heap.

    Memory is an array of fixed-layout cells. Each cell carries the
    {e logical node} currently occupying it (Section 4.1 of the paper
    treats nodes as logical entities: re-allocation of an address creates a
    different node), a life-cycle state, an immutable key, data-structure
    pointer fields, and SMR-owned auxiliary fields (Definition 5.3(5):
    a reclamation scheme may add fields of its own but not touch the data
    structure's).

    {2 Validity and safety}

    A pointer word is {e valid} (Definition 4.1) iff the node it was
    derived for still occupies its address and was never unallocated in
    between — checked by comparing the word's node identity against the
    cell's. Two families of access are provided:

    - [*_checked] — used for values that will be {e used} by the program.
      Dereferencing an invalid pointer here is a safety violation
      (Definition 4.2(3): a value obtained unsafely may never be used), as
      is any update through an invalid pointer (4.2(2)) and any access to
      system space (4.2(1)).
    - [peek]/[aux_*] — optimistic accesses for schemes that validate and
      then either use or discard (AOA/VBR-style, the "careful unsafe
      access" the paper's Definition 4.2 permits). Peeks report validity
      and taint the returned word; only system-space access violates.

    {2 Spaces}

    Reclaimed cells either return to the free list (program space,
    re-allocatable — the common case) or leave to system space, after
    which any touch is a simulated segmentation fault. *)

exception Heap_exhausted
(** Raised by {!alloc} when [capacity] is set and exhausted — how a
    non-robust scheme's unbounded retired backlog manifests in practice. *)

type validity =
  | Valid
  | Invalid_unallocated  (** the node was reclaimed; address not reused *)
  | Invalid_reused  (** the address now holds a different node *)
  | Invalid_system  (** the memory left program space *)

type space_policy =
  | Keep_in_program  (** reclaimed cells go to the free list *)
  | Return_to_system  (** reclaimed cells are unmapped *)
  | Return_every of int  (** every [k]-th reclaim is unmapped *)

type config = {
  ptr_fields : int;
  aux_fields : int;
  space : space_policy;
  capacity : int option;
}

type stats = {
  allocs : int;
  reclaims : int;
  cells_in_use : int;  (** allocated or retired *)
  free_cells : int;
  system_cells : int;
}

type t

val default_config : config
(** 2 pointer fields, 4 aux fields, [Keep_in_program], unbounded. *)

val create : ?config:config -> Monitor.t -> t
val monitor : t -> Monitor.t
val config : t -> config
val stats : t -> stats

(** {2 Life cycle} *)

val alloc : t -> tid:int -> key:int -> Word.t
(** Fresh node in state [Local tid]; pointer fields [Null], aux fields
    [Null]. Reuses a free cell when available. *)

val alloc_sentinel : t -> tid:int -> key:int -> Word.t
(** Fresh node immediately [Shared] — entry points (list head/tail, queue
    anchors) that are never retired. *)

val retire : t -> tid:int -> Word.t -> unit
(** Active -> [Retired]. Retiring through an invalid pointer or a
    non-active node is a [Double_free]/[Lifecycle_error] violation. *)

val reclaim : t -> tid:int -> Word.t -> unit
(** [Retired] -> [Unallocated]; the cell returns to the free list or
    leaves to system space per {!space_policy}. Only reclamation schemes
    call this. *)

(** {2 Validity} *)

val validity : t -> Word.t -> validity
(** Definition 4.1 for a pointer word; [Valid] includes pointers to
    retired-but-unreclaimed nodes. Raises [Invalid_argument] on
    non-pointers. *)

val is_valid : t -> Word.t -> bool

(** {2 Checked accesses — values that will be used} *)

val read_checked : t -> tid:int -> via:Word.t -> field:int -> Word.t
val read_key_checked : t -> tid:int -> via:Word.t -> int
val write_checked : t -> tid:int -> via:Word.t -> field:int -> Word.t -> unit

val cas_checked :
  t -> tid:int -> via:Word.t -> field:int ->
  expected:Word.t -> desired:Word.t -> bool
(** Hardware CAS: bit-pattern comparison ({!Word.same_bits}), so ABA is
    possible exactly as on a real machine. *)

val cas_identity :
  t -> tid:int -> via:Word.t -> field:int ->
  expected:Word.t -> desired:Word.t -> bool
(** Wide CAS comparing full node identity (address {e and} logical node) —
    the primitive VBR assumes from hardware. Fails benignly (no violation)
    when [via] is invalid: the "guaranteed to fail" update of optimistic
    schemes. *)

(** {2 Peeks — optimistic reads to be validated by the caller} *)

val peek : t -> tid:int -> via:Word.t -> field:int -> Word.t * validity
(** The returned word is tainted when [via] is invalid. System-space
    access still violates. *)

val peek_key : t -> tid:int -> via:Word.t -> (int * validity)

(** {2 SMR auxiliary fields} *)

val aux_get : t -> tid:int -> via:Word.t -> field:int -> Word.t * validity
(** Like {!peek} but on the scheme-owned fields; readable even on retired
    nodes (e.g. IBR/HE birth eras). *)

val aux_set : t -> tid:int -> via:Word.t -> field:int -> Word.t -> unit
(** Requires a valid [via]; writing scheme fields of a reclaimed node is
    an [Unsafe_write] violation. *)

val aux_cas :
  t -> tid:int -> via:Word.t -> field:int ->
  expected:Word.t -> desired:Word.t -> bool

(** {2 Introspection (tests and experiments only)} *)

val is_entry : t -> addr:int -> bool
(** Was this cell allocated as a sentinel/entry point? *)

val fingerprint : t -> int
(** Hash of the occupied heap content: per occupied cell the logical node
    identity, life-cycle state, key, pointer and aux fields, and space;
    plus the free-list size. Used by the schedule explorer to recognise
    (and not re-explore) equivalent configurations reached by different
    interleavings. Equal states hash equal; collisions are possible but
    only cost exploration coverage, never soundness of a reported
    violation. *)

val enable_xfingerprint : t -> unit
(** Switch on the incremental fingerprint: from this call on the heap
    maintains an XOR-of-per-cell-hashes digest at every mutation, making
    {!xfingerprint} O(1). Costs two per-cell hashes per mutation while
    enabled and a single branch per mutation for heaps that never enable
    it. Used by the schedule explorer's DPOR mode, which fingerprints
    the state at every branch point. *)

val xfingerprint : t -> int
(** O(1) digest of the same per-cell content as {!fingerprint} but with
    XOR combining — a {e different} hash function, so values from the
    two must never share a visited set. Raises [Invalid_argument] unless
    {!enable_xfingerprint} was called. *)

(** {2 Snapshot / restore} *)

type snapshot
(** A deep copy of the heap: every cell's content plus the allocator
    bookkeeping (free list, counters, incremental-fingerprint state). *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewrite the heap in place to the captured state; cells allocated
    after the capture are forgotten. Only meaningful on the heap the
    snapshot was taken from (checked by address layout; raises
    [Invalid_argument] otherwise). *)

val cell_state : t -> addr:int -> Lifecycle.t
val node_at : t -> addr:int -> int
val key_of_cell : t -> addr:int -> int
val live_nodes : t -> (int * int * int) list
(** [(addr, node, key)] of all active (local or shared) nodes. *)

val retired_nodes : t -> (int * int * int) list

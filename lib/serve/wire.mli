(** Wire protocol: newline-delimited minified JSON over a local (Unix
    domain) socket.

    One request line, one response line, in order per connection —
    clients may pipeline (write many requests before reading responses),
    which is how the load generator keeps thousands of requests in
    flight over a few hundred connections. Minified JSON never contains
    a raw newline (the codec escapes control characters), so '\n' is an
    unambiguous frame delimiter.

    Requests:
    {v
    {"op":"ping"}
    {"op":"submit","tenant":"t0","job":{"kind":"probe","spin":500}}
    {"op":"job","id":12}
    {"op":"follow","id":12}
    {"op":"jobs"}
    {"op":"stats"}
    {"op":"artifact","key":"<hex>"}
    {"op":"manifest"}
    {"op":"shutdown","drain":true}
    v}

    Responses are [{"ok":true,...}] or [{"ok":false,"error":"..."}]. A
    shed submit is [ok:true] with ["status":"shed"] — shedding is a
    well-formed admission outcome, not a protocol error.

    [follow] is the one streaming exception to one-request/one-response:
    the daemon pushes zero or more [{"heartbeat":...}] lines (periodic
    registry snapshots from the running job) and finishes with a single
    terminal [{"ok":true,"job":...}] line once the job reaches a
    terminal status. A follow occupies its connection until that
    terminal line — don't pipeline other requests behind it. *)

type request =
  | Ping
  | Submit of { tenant : string; kind : Job.kind }
  | Job_status of int
  | Follow of int  (** stream heartbeats for a job until it finishes *)
  | Jobs
  | Stats
  | Artifact of string
  | Manifest
  | Shutdown of { drain : bool }

val request_to_json : request -> Era_metrics.Json.t
val request_of_json : Era_metrics.Json.t -> (request, string) result

val ok : (string * Era_metrics.Json.t) list -> Era_metrics.Json.t
val err : string -> Era_metrics.Json.t

(** {2 Line framing over a file descriptor} *)

type conn
(** A buffered connection (blocking reads). *)

val conn_of_fd : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

val send_line : conn -> string -> unit
(** Write [s ^ "\n"], handling short writes. Raises [Unix.Unix_error]
    on a dead peer. *)

val recv_line : conn -> string option
(** Next complete line (without the delimiter); [None] on EOF. *)

val has_buffered : conn -> bool
(** A complete line is already buffered — {!recv_line} will not block.
    Lets servers poll the fd with a timeout (to observe a stop flag)
    without starving pipelined lines that already arrived. *)

val send_json : conn -> Era_metrics.Json.t -> unit
val recv_json : conn -> (Era_metrics.Json.t, string) result option
(** [None] on EOF; [Some (Error _)] on a malformed line. *)

(** Round-robin fairness across named tenants, composed from one
    {!Bounded_queue} per tenant plus a global admission cap.

    Admission ({!submit}) is non-blocking and sheds explicitly, with the
    reason: the tenant's own queue is full ([`Tenant_cap] — one noisy
    tenant cannot displace the others), the global cap is reached
    ([`Global_cap] — the whole daemon is saturated), or the scheduler is
    closed ([`Closed]). Dispatch ({!next}) blocks until work is
    available and serves tenants round-robin from a rotating cursor, so
    a tenant with a deep backlog gets at most one job per full turn of
    the wheel.

    Tenants are registered implicitly on first submit and never removed
    (the expected population is small and named).

    Shutdown mirrors {!Bounded_queue}: {!close} drains, {!close_now}
    returns the abandoned items. Safe for any number of submitting and
    dispatching domains/threads. *)

type 'a t

type shed = [ `Tenant_cap | `Global_cap | `Closed ]

val shed_reason : shed -> string
(** ["tenant-cap"] | ["global-cap"] | ["closed"] — the wire spelling. *)

val create : ?tenant_cap:int -> ?global_cap:int -> unit -> 'a t
(** Defaults: tenant cap 64, global cap 256. Both clamp to >= 1. *)

val submit : 'a t -> tenant:string -> 'a -> (unit, shed) result

val next : 'a t -> 'a option
(** Block for the next item, round-robin across tenants. [None] once the
    scheduler is closed and (in drain mode) empty — the worker-exit
    signal. *)

val close : 'a t -> unit
(** Refuse further submits; {!next} drains the remaining items. *)

val close_now : 'a t -> 'a list
(** Refuse further submits and abandon the backlog, returning it
    (tenant-grouped FIFO order). Blocked {!next} calls return [None]. *)

val depth : 'a t -> int
(** Total queued items across tenants — telemetry snapshot. *)

val tenants : 'a t -> (string * int) list
(** (tenant, queued items), in first-submit order — telemetry. *)

(* Content-addressed store: objects/<md5-hex> + manifest.json. MD5 is
   content-addressing here, not integrity against an adversary — it is
   in the stdlib and 32 hex chars keep keys short on the wire. *)

module J = Era_metrics.Json
module Fs = Era_metrics.Fsutil

type entry = {
  key : string;
  akind : string;
  job_id : int;
  label : string;
  size : int;
  created_s : float;
}

type t = {
  dir : string;
  m : Mutex.t;
  mutable items : entry list;  (* newest first; exported oldest first *)
}

let manifest_path t = Filename.concat t.dir "manifest.json"
let dir t = t.dir
let object_path t key = Filename.concat (Filename.concat t.dir "objects") key

let entry_to_json e =
  J.Obj
    [
      ("key", J.String e.key);
      ("kind", J.String e.akind);
      ("job_id", J.Int e.job_id);
      ("label", J.String e.label);
      ("size", J.Int e.size);
      ("created_s", J.Float e.created_s);
    ]

let entry_of_json j =
  let str k = Option.bind (J.member k j) J.to_str in
  let int k = Option.bind (J.member k j) J.to_int in
  let flt k = Option.bind (J.member k j) J.to_float in
  match (str "key", str "kind") with
  | Some key, Some akind ->
    Some
      {
        key;
        akind;
        job_id = Option.value (int "job_id") ~default:(-1);
        label = Option.value (str "label") ~default:"";
        size = Option.value (int "size") ~default:0;
        created_s = Option.value (flt "created_s") ~default:0.;
      }
  | _ -> None

let load_manifest path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match J.of_string s with
    | Error _ -> []
    | Ok j -> (
      match Option.bind (J.member "entries" j) J.to_list with
      | None -> []
      | Some l -> List.rev (List.filter_map entry_of_json l))

let open_ ~dir =
  Fs.mkdir_p (Filename.concat dir "objects");
  let t = { dir; m = Mutex.create (); items = [] } in
  t.items <- load_manifest (manifest_path t);
  t

let manifest_json_locked t =
  J.Obj
    [
      ("schema_version", J.Int 1);
      ("entries", J.List (List.rev_map entry_to_json t.items));
    ]

let write_manifest_locked t =
  Fs.write_file ~file:(manifest_path t) (J.to_string (manifest_json_locked t))

let put t ~akind ?(job_id = -1) ?(label = "") content =
  let key = Digest.to_hex (Digest.string content) in
  Mutex.lock t.m;
  let dup =
    List.exists
      (fun e ->
        e.key = key && e.akind = akind && e.job_id = job_id
        && e.label = label)
      t.items
  in
  if not dup then begin
    let path = object_path t key in
    if not (Sys.file_exists path) then Fs.write_file ~file:path content;
    t.items <-
      {
        key;
        akind;
        job_id;
        label;
        size = String.length content;
        created_s = Unix.gettimeofday ();
      }
      :: t.items;
    write_manifest_locked t
  end;
  Mutex.unlock t.m;
  key

let get t key =
  (* Keys are hex digests; refuse anything path-like. *)
  let safe =
    String.length key > 0
    && String.for_all
         (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
         key
  in
  if not safe then None
  else
    let path = object_path t key in
    if not (Sys.file_exists path) then None
    else begin
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      Some s
    end

let entries t =
  Mutex.lock t.m;
  let r = List.rev t.items in
  Mutex.unlock t.m;
  r

let find ?akind t ~job_id =
  entries t
  |> List.filter (fun e ->
         e.job_id = job_id
         && match akind with None -> true | Some k -> e.akind = k)

let manifest_to_json t =
  Mutex.lock t.m;
  let r = manifest_json_locked t in
  Mutex.unlock t.m;
  r

(** Content-addressed artifact store for job outputs — counterexample
    JSON, registry snapshots, Perfetto traces, verdicts.

    Objects live under [<dir>/objects/<key>] where [key] is the hex
    digest of the content, so identical artifacts (the same shrunk
    counterexample found by a thousand load-generator jobs) are stored
    once; an index manifest at [<dir>/manifest.json] records one entry
    per (job, artifact kind) pointing at its key. The manifest is
    rewritten on every {!put} — artifact traffic is per-job, not
    per-operation, so durability wins over write amortization.

    Thread-safe (one internal mutex); a fresh {!open_} re-reads an
    existing manifest, so the store survives daemon restarts. *)

type t

type entry = {
  key : string;  (** content digest, hex *)
  akind : string;  (** "counterexample" | "registry" | "trace" | ... *)
  job_id : int;  (** -1 when not job-bound (e.g. a server trace) *)
  label : string;
  size : int;  (** content bytes *)
  created_s : float;
}

val open_ : dir:string -> t
(** Create [dir] (and [dir/objects]) if needed; load [manifest.json] if
    present (a corrupt manifest is treated as empty rather than fatal —
    the objects themselves are still content-addressed and readable). *)

val dir : t -> string
val manifest_path : t -> string

val put :
  t -> akind:string -> ?job_id:int -> ?label:string -> string -> string
(** Store the content, record a manifest entry, return the key. An
    entry identical in (key, kind, job, label) is not duplicated. *)

val get : t -> string -> string option
(** Content by key. *)

val entries : t -> entry list
(** Manifest entries, oldest first. *)

val find : ?akind:string -> t -> job_id:int -> entry list
(** Entries for one job, optionally filtered by artifact kind. *)

val manifest_to_json : t -> Era_metrics.Json.t

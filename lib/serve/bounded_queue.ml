(* Two-lock bounded queue (the saturn bounded_queue shape, reimplemented
   natively — see DESIGN.md §7).

   Invariants:
   - [head] is a dummy: the first real item is [head.next]; poppers only
     touch [head] (under [head_m]), pushers only touch [tail] (under
     [tail_m]). With >= 1 item the two ends are distinct nodes, so push
     and pop never contend.
   - When the queue is empty, [tail == head]: the pusher's link store
     and the popper's emptiness check race on the same [next] field, so
     [next] is an [Atomic.t]. The SC fence protocol for the sleep path
     (no lost wakeups, relied on by the shutdown tests):
       pusher: Atomic.set next (Some n); then Atomic.get waiters
       popper (under head_m): sees next = None; Atomic.incr waiters;
               re-reads next; only then Condition.wait
     If the pusher read waiters = 0, its link store is SC-ordered before
     the popper's increment, so the popper's re-read sees the node and
     never sleeps. If the pusher read waiters > 0, it signals under
     [head_m] — and since the popper holds [head_m] from the re-read
     until the wait releases it, the signal cannot fire in the window
     before the popper is actually waiting.
   - [size] is a reservation counter: pushers CAS it up before linking
     (shedding on capacity without taking any lock), poppers decrement
     after unlinking. So [try_push] is exact: the queue never holds more
     than [capacity] items. *)

type 'a node = {
  mutable value : 'a option;  (* cleared on pop so the queue doesn't pin *)
  next : 'a node option Atomic.t;
}

type 'a t = {
  cap : int;
  size : int Atomic.t;
  waiters : int Atomic.t;
  closed : bool Atomic.t;
  now_closed : bool Atomic.t;
  head_m : Mutex.t;
  nonempty : Condition.t;  (* associated with head_m *)
  tail_m : Mutex.t;
  mutable head : 'a node;  (* under head_m *)
  mutable tail : 'a node;  (* under tail_m *)
}

let create ~capacity () =
  let dummy = { value = None; next = Atomic.make None } in
  {
    cap = max 1 capacity;
    size = Atomic.make 0;
    waiters = Atomic.make 0;
    closed = Atomic.make false;
    now_closed = Atomic.make false;
    head_m = Mutex.create ();
    nonempty = Condition.create ();
    tail_m = Mutex.create ();
    head = dummy;
    tail = dummy;
  }

let capacity t = t.cap
let length t = Atomic.get t.size
let closed t = Atomic.get t.closed

(* Reserve a slot: false = full. *)
let rec reserve t =
  let s = Atomic.get t.size in
  if s >= t.cap then false
  else if Atomic.compare_and_set t.size s (s + 1) then true
  else reserve t

let try_push t x =
  if Atomic.get t.closed then false
  else if not (reserve t) then false
  else begin
    Mutex.lock t.tail_m;
    (* Re-check under the pusher lock: [close] flips the flag while
       holding both locks, so a push that got here before the flag is
       fully admitted and a push after it is fully refused — no item
       can slip in behind a completed close. *)
    if Atomic.get t.closed then begin
      Mutex.unlock t.tail_m;
      Atomic.decr t.size;
      false
    end
    else begin
      let n = { value = Some x; next = Atomic.make None } in
      Atomic.set t.tail.next (Some n);
      t.tail <- n;
      Mutex.unlock t.tail_m;
      if Atomic.get t.waiters > 0 then begin
        Mutex.lock t.head_m;
        Condition.signal t.nonempty;
        Mutex.unlock t.head_m
      end;
      true
    end
  end

(* Unlink the first item; caller holds head_m. *)
let pop_locked t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
    let v = n.value in
    n.value <- None;
    t.head <- n;  (* n becomes the new dummy *)
    Atomic.decr t.size;
    v

let try_pop t =
  if Atomic.get t.now_closed then None
  else begin
    Mutex.lock t.head_m;
    let r = pop_locked t in
    Mutex.unlock t.head_m;
    r
  end

let pop t =
  Mutex.lock t.head_m;
  let rec loop () =
    if Atomic.get t.now_closed then None
    else
      match pop_locked t with
      | Some _ as r -> r
      | None ->
        if Atomic.get t.closed then None  (* drained after close *)
        else begin
          Atomic.incr t.waiters;
          (* Re-check after publishing the waiter count — the fence
             against the pusher's waiters read (see header). *)
          let again = Atomic.get t.head.next in
          if again = None && not (Atomic.get t.closed) then
            Condition.wait t.nonempty t.head_m;
          Atomic.decr t.waiters;
          loop ()
        end
  in
  let r = loop () in
  Mutex.unlock t.head_m;
  r

let close t =
  (* Both locks: see the pusher-side re-check in [try_push]. *)
  Mutex.lock t.tail_m;
  Atomic.set t.closed true;
  Mutex.unlock t.tail_m;
  Mutex.lock t.head_m;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.head_m

let close_now t =
  Mutex.lock t.tail_m;
  Atomic.set t.closed true;
  Mutex.unlock t.tail_m;
  Mutex.lock t.head_m;
  Atomic.set t.now_closed true;
  let acc = ref [] in
  let rec drain () =
    match pop_locked t with
    | Some v ->
      acc := v :: !acc;
      drain ()
    | None -> ()
  in
  drain ();
  Condition.broadcast t.nonempty;
  Mutex.unlock t.head_m;
  List.rev !acc

(** Jobs: the unit of work `era_serve` admits, queues, executes and
    answers for.

    A job wraps one of the repo's one-shot workloads — a systematic
    exploration, a Figure 1/2 classification run, or a synthetic probe
    (calibrated busy work, the load generator's default) — together with
    the tenant that submitted it and its lifecycle timestamps. Kinds and
    summaries round-trip through the wire JSON ({!kind_to_json} /
    {!kind_of_json}), so the daemon, the CLI client and the load
    generator all speak one format. *)

type kind =
  | Explore of {
      scheme : string;
      structure : string;
      preemptions : int;
      max_runs : int;
      steps : int;
      seed : int;
      ops : int option;  (** ops per thread; [None] = target default *)
      robust_bound : int option;
    }
  | Figure1 of { scheme : string; rounds : int }
  | Figure2 of { scheme : string }
  | Probe of { spin : int }
      (** [spin] units of deterministic busy work — a calibrated service
          time for load/saturation experiments, no artifacts *)

type status =
  | Queued
  | Running
  | Done
  | Failed  (** the run raised; the note carries the exception *)
  | Aborted  (** shed after admission by a non-draining shutdown *)

type result_ = {
  note : string;  (** one-line human outcome, e.g. the violation kind *)
  artifacts : (string * string) list;
      (** (artifact kind, content-addressed store key) *)
}

type t = {
  id : int;
  tenant : string;
  kind : kind;
  submitted_s : float;  (** wall clock, [Unix.gettimeofday] *)
  mutable status : status;
  mutable started_s : float;  (** 0. until the executor picks it up *)
  mutable finished_s : float;  (** 0. until terminal *)
  mutable result : result_ option;
}

val make : id:int -> tenant:string -> kind -> t

val kind_name : kind -> string
(** ["explore"] | ["figure1"] | ["figure2"] | ["probe"]. *)

val kind_label : kind -> string
(** Short display label, e.g. ["explore hp/harris-list"]. *)

val default_explore :
  ?scheme:string -> ?structure:string -> unit -> kind
(** An [Explore] with the explorer's stock small-budget parameters
    (scheme ["hp"], structure ["harris-list"], 2 preemptions, 20k runs). *)

val kind_to_json : kind -> Era_metrics.Json.t
val kind_of_json : Era_metrics.Json.t -> (kind, string) result

val status_name : status -> string
val status_of_name : string -> status option

val terminal : status -> bool
(** [Done], [Failed] and [Aborted] are terminal. *)

val summary_to_json : t -> Era_metrics.Json.t
(** The job as the wire reports it: id, tenant, kind, status,
    timestamps, note and artifact keys. *)

val pp_summary : Format.formatter -> t -> unit

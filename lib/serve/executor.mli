(** Domain-pool job executor: N worker domains pulling from a
    {!Fair_queue}, executing jobs (exploration runs reuse the
    explorer's machinery — a job may itself fan out over the
    work-stealing search engine via its [Explore] parameters), storing
    artifacts content-addressed, and streaming per-job telemetry —
    a Tracer span per job on the worker's track plus a per-job
    [lib/obs] Registry snapshot persisted as a ["registry"] artifact.

    Shutdown, mirroring the explorer's [Work_queue] liveness contract:
    - {!stop} with [drain = true] (default): the queue refuses new work,
      the workers finish everything already admitted, then exit.
    - [drain = false]: the backlog is abandoned; each abandoned job is
      marked [Aborted] (never silently lost) and workers exit after
      their in-flight job.
    Both wake workers blocked on an empty queue ({!stop} joins them). *)

type stats = {
  served : int Atomic.t;  (** jobs finished [Done] *)
  failed : int Atomic.t;
  aborted : int Atomic.t;
  busy : int Atomic.t;  (** workers currently executing a job *)
  service_us : int Atomic.t;  (** total execution time, µs *)
}

type t

type heartbeats
(** Per-job heartbeat bus: sequence-numbered registry-format snapshots
    pushed by the worker executing a job (every job emits one as it
    starts running; explore jobs add periodic progress snapshots) and
    drained by daemon threads serving [follow] requests. History is
    capped at 256 beats per job and persisted as a ["heartbeats"]
    artifact when the job finishes. *)

val create_heartbeats : unit -> heartbeats

val heartbeats_after :
  t -> job:int -> after:int -> (int * Era_metrics.Json.t) list
(** Beats for [job] with sequence number [> after], oldest first, each
    as [(seq, body)] where [body] is
    [{"job":…,"seq":…,"ts_s":…,"label":…,"registry":…}]. *)

val start :
  ?workers:int ->
  ?tracer:Era_obs.Tracer.t ->
  queue:Job.t Fair_queue.t ->
  store:Store.t ->
  unit ->
  t
(** Spawn [workers] (default 2, clamped to >= 1) worker domains. The
    tracer, when given, receives one span per job on track [tid] =
    worker index (timestamps: wall-clock µs since {!start}). *)

val stats : t -> stats
val workers : t -> int

val stop : ?drain:bool -> t -> unit
(** Close the queue ([drain] as above), join every worker. Idempotent —
    a second call is a no-op. *)

val run_job : ?hb:heartbeats -> store:Store.t -> Job.t -> unit
(** Execute one job synchronously on the calling domain: sets
    [started_s]/[finished_s], transitions [Running -> Done|Failed], and
    stores artifacts. With [hb], heartbeats are pushed during the run
    and the history is persisted as a ["heartbeats"] artifact (listed in
    the job's result). Exposed for tests and for running without a
    pool. *)

(** Load generator: hammer an `era_serve` daemon with thousands of
    concurrent in-flight submit requests over a local socket, then wait
    for the daemon to drain and account for every job.

    Mechanics: [conns] client connections multiplexed in one
    non-blocking [select] loop, each pipelining up to [pipeline]
    unanswered submits — so the sustained in-flight total approaches
    [conns * pipeline] without needing thousands of file descriptors or
    threads. Every submit is accounted: the response says admitted or
    shed (with the reason); after the submit phase the generator polls
    daemon stats until every admitted job reached a terminal state.
    {e Lost} jobs — admitted but never terminal, or submits that never
    got a response — are the failure signal the E17 acceptance bar pins
    at zero. *)

type config = {
  socket : string;
  conns : int;  (** concurrent connections (one fd each) *)
  pipeline : int;  (** max unanswered submits per connection *)
  requests : int;  (** total submits across all connections *)
  tenants : int;  (** submits round-robin over ["t0".."tN-1"] *)
  kind : Job.kind;  (** the job every request submits *)
  drain_timeout_s : float;  (** wait budget for the backlog to finish *)
}

val default_config : config
(** socket ["era_serve.sock"], 64 conns x pipeline 16, 2000 requests,
    4 tenants, [Probe {spin = 500}], 120 s drain budget. *)

type result_ = {
  submitted : int;  (** requests written *)
  responded : int;  (** responses received *)
  admitted : int;
  shed : int;
  errors : int;  (** protocol-level failures (ok:false, dead conns) *)
  lost : int;  (** admitted jobs not terminal after the drain wait *)
  served : int;  (** daemon-side jobs Done during the run *)
  failed : int;
  aborted : int;
  inflight_peak : int;  (** max unanswered submits at any sample *)
  inflight_mean : float;
  submit_elapsed_s : float;  (** first write to last response *)
  drain_s : float;  (** extra time until the backlog finished *)
  admit_p50_us : float;
      (** submit -> response latency percentiles, exact over the raw
          per-request µs array *)
  admit_p99_us : float;
  admit_est_p50_us : float;
      (** the same quantiles estimated from a shared-registry log2
          histogram ({!Era_obs.Registry.estimate_quantile}) — reported
          next to the exact values so every load run cross-checks the
          estimator against ground truth *)
  admit_est_p99_us : float;
}

val run : config -> (result_, string) result
(** [Error] on connect failure or a wedged daemon (drain timeout with
    jobs missing counts as [Ok] with [lost > 0] — the caller decides how
    loud to be). *)

val pp_result : Format.formatter -> result_ -> unit

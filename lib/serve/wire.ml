module J = Era_metrics.Json

type request =
  | Ping
  | Submit of { tenant : string; kind : Job.kind }
  | Job_status of int
  | Follow of int
  | Jobs
  | Stats
  | Artifact of string
  | Manifest
  | Shutdown of { drain : bool }

let request_to_json = function
  | Ping -> J.Obj [ ("op", J.String "ping") ]
  | Submit { tenant; kind } ->
    J.Obj
      [
        ("op", J.String "submit");
        ("tenant", J.String tenant);
        ("job", Job.kind_to_json kind);
      ]
  | Job_status id -> J.Obj [ ("op", J.String "job"); ("id", J.Int id) ]
  | Follow id -> J.Obj [ ("op", J.String "follow"); ("id", J.Int id) ]
  | Jobs -> J.Obj [ ("op", J.String "jobs") ]
  | Stats -> J.Obj [ ("op", J.String "stats") ]
  | Artifact key ->
    J.Obj [ ("op", J.String "artifact"); ("key", J.String key) ]
  | Manifest -> J.Obj [ ("op", J.String "manifest") ]
  | Shutdown { drain } ->
    J.Obj [ ("op", J.String "shutdown"); ("drain", J.Bool drain) ]

let request_of_json j =
  match Option.bind (J.member "op" j) J.to_str with
  | None -> Error "request: missing \"op\""
  | Some "ping" -> Ok Ping
  | Some "jobs" -> Ok Jobs
  | Some "stats" -> Ok Stats
  | Some "manifest" -> Ok Manifest
  | Some "shutdown" ->
    let drain =
      Option.value (Option.bind (J.member "drain" j) J.to_bool) ~default:true
    in
    Ok (Shutdown { drain })
  | Some "job" -> (
    match Option.bind (J.member "id" j) J.to_int with
    | Some id -> Ok (Job_status id)
    | None -> Error "job: missing \"id\"")
  | Some "follow" -> (
    match Option.bind (J.member "id" j) J.to_int with
    | Some id -> Ok (Follow id)
    | None -> Error "follow: missing \"id\"")
  | Some "artifact" -> (
    match Option.bind (J.member "key" j) J.to_str with
    | Some key -> Ok (Artifact key)
    | None -> Error "artifact: missing \"key\"")
  | Some "submit" -> (
    let tenant =
      Option.value
        (Option.bind (J.member "tenant" j) J.to_str)
        ~default:"default"
    in
    match J.member "job" j with
    | None -> Error "submit: missing \"job\""
    | Some jj -> (
      match Job.kind_of_json jj with
      | Ok kind -> Ok (Submit { tenant; kind })
      | Error e -> Error e))
  | Some other -> Error (Fmt.str "unknown op %S" other)

let ok fields = J.Obj (("ok", J.Bool true) :: fields)
let err msg = J.Obj [ ("ok", J.Bool false); ("error", J.String msg) ]

(* ---------------------------------------------------------------- *)
(* Framing                                                           *)
(* ---------------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, no complete line yet *)
  chunk : bytes;
  mutable pending : string list;  (* complete lines, oldest first *)
}

let conn_of_fd fd = { fd; buf = Buffer.create 512; chunk = Bytes.create 8192;
                      pending = [] }

let fd c = c.fd

let send_line c s =
  let data = Bytes.of_string (s ^ "\n") in
  let len = Bytes.length data in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write c.fd data !off (len - !off) in
    off := !off + n
  done

(* Split [buf] into complete lines, keeping the trailing partial. *)
let harvest c =
  let s = Buffer.contents c.buf in
  match String.rindex_opt s '\n' with
  | None -> ()
  | Some last ->
    let complete = String.sub s 0 last in
    Buffer.clear c.buf;
    Buffer.add_substring c.buf s (last + 1) (String.length s - last - 1);
    c.pending <- c.pending @ String.split_on_char '\n' complete

let rec recv_line c =
  match c.pending with
  | line :: rest ->
    c.pending <- rest;
    Some line
  | [] -> (
    let n =
      try Unix.read c.fd c.chunk 0 (Bytes.length c.chunk)
      with Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> 0
    in
    if n = 0 then None
    else begin
      Buffer.add_subbytes c.buf c.chunk 0 n;
      harvest c;
      recv_line c
    end)

let has_buffered c =
  c.pending <> [] || String.contains (Buffer.contents c.buf) '\n'

let send_json c j = send_line c (J.to_string ~minify:true j)

let recv_json c =
  match recv_line c with
  | None -> None
  | Some line -> Some (J.of_string line)

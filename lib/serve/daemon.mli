(** The `era_serve` daemon: exploration-as-a-service over a local Unix
    domain socket.

    Architecture: an accept thread spawns one handler thread per
    connection (requests on a connection are served in order, so clients
    may pipeline); handlers perform {e admission} into a tenant-fair
    bounded queue ({!Fair_queue} over {!Bounded_queue} — non-blocking,
    shed-on-full with the reason on the wire); a {!Executor} domain pool
    drains the queue; artifacts land in a content-addressed {!Store};
    cross-job telemetry streams into a [lib/obs] Tracer (one span per
    job per worker track) and is queryable as a Registry snapshot via
    the [stats] op.

    The daemon can be embedded (tests, the E17 bench boot it in-process)
    or run standalone behind [era_cli serve]. *)

type config = {
  socket_path : string;
  workers : int;  (** executor domains *)
  global_cap : int;  (** bounded-queue slots across all tenants *)
  tenant_cap : int;  (** bounded-queue slots per tenant *)
  store_dir : string;
}

val default_config : config
(** socket ["era_serve.sock"], 2 workers, global cap 256, tenant cap 64,
    store ["artifacts"]. *)

type t

val start : config -> t
(** Bind the socket (unlinking a stale file), start the accept thread
    and the executor pool. Raises [Unix.Unix_error] if the socket cannot
    be bound. *)

val config : t -> config
val store : t -> Store.t
val tracer : t -> Era_obs.Tracer.t

val wait : t -> unit
(** Block until a [shutdown] request arrives (or {!stop} is called from
    another thread), then complete that shutdown and return — the
    foreground half of [era_cli serve]. *)

val stop : ?drain:bool -> t -> unit
(** Stop the daemon: close admission, stop the executor pool
    ([drain = true], the default: finish the backlog first;
    [false]: abandon it, marking jobs [Aborted]), stop accepting,
    unlink the socket, dump the job table to [jobs_<socket-base>.json]
    and persist the server trace into the store. Idempotent.

    Handler threads for connections still open exit on their next poll
    tick (sub-second); their clients see EOF. *)

val stats_registry : t -> Era_obs.Registry.t
(** A fresh registry snapshot: admission counters
    ([serve_submitted], [serve_admitted], [serve_shed{reason}]),
    executor counters ([serve_served], [serve_failed], [serve_aborted]),
    queue/busy gauges and per-tenant depths. *)

val jobs : t -> Job.t list
(** Job-table snapshot, ascending id. *)

val find_job : t -> int -> Job.t option

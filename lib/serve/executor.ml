(* Worker-domain pool. Each worker loops [Fair_queue.next] -> run ->
   record; [Fair_queue]'s close/close_now semantics give the two
   shutdown paths, and the [None] return is the exit signal (the
   close-while-workers-blocked case the tests pin: stop broadcasts, all
   workers observe [None] and join). *)

module J = Era_metrics.Json
module Registry = Era_obs.Registry
module Tracer = Era_obs.Tracer
module Ex = Era_explore.Explore

type stats = {
  served : int Atomic.t;
  failed : int Atomic.t;
  aborted : int Atomic.t;
  busy : int Atomic.t;
  service_us : int Atomic.t;
}

(* Heartbeat bus: per-job sequence-numbered registry snapshots pushed by
   the worker domain executing the job and drained by daemon handler
   threads serving [follow] requests. One mutex over a small table —
   heartbeats are coarse (one per progress stride), never hot-path. *)
type heartbeats = {
  hb_m : Mutex.t;
  hb_tbl : (int, (int * J.t) list ref) Hashtbl.t;  (* newest first *)
}

let hb_cap = 256 (* per job; older beats fall off, history stays bounded *)

let create_heartbeats () =
  { hb_m = Mutex.create (); hb_tbl = Hashtbl.create 32 }

let hb_push hb (job : Job.t) registry_json =
  Mutex.lock hb.hb_m;
  let cell =
    match Hashtbl.find_opt hb.hb_tbl job.Job.id with
    | Some c -> c
    | None ->
      let c = ref [] in
      Hashtbl.replace hb.hb_tbl job.Job.id c;
      c
  in
  let seq = match !cell with (s, _) :: _ -> s + 1 | [] -> 1 in
  let entry =
    J.Obj
      [
        ("job", J.Int job.Job.id);
        ("seq", J.Int seq);
        ("ts_s", J.Float (Unix.gettimeofday ()));
        ("label", J.String (Job.kind_label job.Job.kind));
        ("registry", registry_json);
      ]
  in
  let kept =
    if List.length !cell >= hb_cap then
      List.filteri (fun i _ -> i < hb_cap - 1) !cell
    else !cell
  in
  cell := (seq, entry) :: kept;
  Mutex.unlock hb.hb_m

let hb_after hb ~job ~after =
  Mutex.lock hb.hb_m;
  let entries =
    match Hashtbl.find_opt hb.hb_tbl job with
    | None -> []
    | Some c -> List.rev (List.filter (fun (s, _) -> s > after) !c)
  in
  Mutex.unlock hb.hb_m;
  entries

type t = {
  queue : Job.t Fair_queue.t;
  st : stats;
  hb : heartbeats;
  domains : unit Domain.t array;
  stopped : bool Atomic.t;
}

let heartbeats_after t ~job ~after = hb_after t.hb ~job ~after

(* A sink the optimizer cannot delete, so Probe's spin is real work with
   a stable per-unit cost (roughly one float multiply-add per unit). *)
let probe_sink = ref 0.

let run_probe spin =
  let acc = ref 1.0 in
  for i = 1 to max 0 spin do
    acc := (!acc *. 1.0000001) +. float_of_int (i land 7)
  done;
  probe_sink := !probe_sink +. !acc

let scheme_exn name =
  match Era_smr.Registry.find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Fmt.str "unknown scheme %S (expected one of: %s)" name
         (String.concat ", " Era_smr.Registry.names))

let structure_exn name =
  match Era.Applicability.structure_of_name name with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "unknown structure %S" name)

(* Explorer progress snapshot in the shared registry format, so a
   [follow]er sees the same metric names mid-run that the final
   ["registry"] artifact will carry. *)
let progress_registry (p : Ex.progress) =
  let reg = Registry.create () in
  Registry.set_counter (Registry.counter reg "explore_runs") p.Ex.pg_runs;
  Registry.set_counter (Registry.counter reg "explore_states") p.Ex.pg_states;
  Registry.set_counter (Registry.counter reg "explore_pruned") p.Ex.pg_pruned;
  Registry.set_int (Registry.gauge reg "explore_level") p.Ex.pg_level;
  Registry.set_int (Registry.gauge reg "explore_frontier") p.Ex.pg_frontier;
  Registry.set_int (Registry.gauge reg "explore_deferred") p.Ex.pg_deferred;
  Registry.set_int (Registry.gauge reg "explore_fp_size") p.Ex.pg_fp_size;
  Registry.set_int
    (Registry.gauge reg "explore_budget_left")
    p.Ex.pg_budget_left;
  Registry.to_json reg

(* The one beat every job kind emits: pushed as the job transitions to
   [Running], so a follower always sees at least one heartbeat. *)
let start_registry (job : Job.t) =
  let reg = Registry.create () in
  Registry.set (Registry.gauge reg "job_started_s") job.Job.started_s;
  Registry.to_json reg

(* Run the job body; returns (note, artifacts). Raises on bad input or
   a crashing run — the caller turns that into [Failed]. [push] emits a
   mid-job heartbeat (a registry-format JSON snapshot). *)
let execute ~store ~push (job : Job.t) =
  match job.Job.kind with
  | Job.Probe { spin } ->
    run_probe spin;
    (Fmt.str "probe done (spin %d)" spin, [])
  | Job.Figure1 { scheme; rounds } ->
    let r = Era.Figure1.run ~rounds (scheme_exn scheme) in
    let key =
      Store.put store ~akind:"verdict" ~job_id:job.Job.id
        ~label:(Fmt.str "figure1/%s" scheme)
        (J.to_string
           (J.Obj
              [
                ("experiment", J.String "figure1");
                ("scheme", J.String scheme);
                ("rounds", J.Int rounds);
                ("verdict", J.String (Fmt.str "%a" Era.Figure1.pp_result r));
              ]))
    in
    (Fmt.str "%a" Era.Figure1.pp_outcome r.Era.Figure1.outcome,
     [ ("verdict", key) ])
  | Job.Figure2 { scheme } ->
    let r = Era.Figure2.run (scheme_exn scheme) in
    let note =
      match r.Era.Figure2.outcome with
      | Era.Figure2.Unsafe _ -> "UNSAFE (stale value used)"
      | Era.Figure2.Safe_completion { retired_backlog } ->
        Fmt.str "safe (retired backlog %d)" retired_backlog
    in
    let key =
      Store.put store ~akind:"verdict" ~job_id:job.Job.id
        ~label:(Fmt.str "figure2/%s" scheme)
        (J.to_string
           (J.Obj
              [
                ("experiment", J.String "figure2");
                ("scheme", J.String scheme);
                ("verdict", J.String (Fmt.str "%a" Era.Figure2.pp_result r));
              ]))
    in
    (note, [ ("verdict", key) ])
  | Job.Explore e ->
    let scheme = scheme_exn e.scheme in
    let structure = structure_exn e.structure in
    let config =
      {
        Ex.default_config with
        Ex.max_preemptions = e.preemptions;
        max_runs = e.max_runs;
        max_steps = e.steps;
        (* ~16 heartbeats over the run, however large it is. The
           callback runs on the exploring domain, so it only builds a
           small registry and takes one short critical section. *)
        progress_every = max 1 (e.max_runs / 16);
        on_progress = Some (fun p -> push (progress_registry p));
      }
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Era.Applicability.explore ~config ~seed:e.seed ?ops_per_thread:e.ops
        ?robustness_bound:e.robust_bound scheme structure
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    (* Per-job telemetry snapshot: the explorer's final stats in the
       shared lib/obs registry format, persisted as an artifact. *)
    let reg = Ex.stats_registry r.Ex.res_stats in
    Registry.set (Registry.gauge reg "explore_elapsed_s") elapsed_s;
    let reg_key =
      Store.put store ~akind:"registry" ~job_id:job.Job.id
        ~label:(Job.kind_label job.Job.kind)
        (Registry.to_string reg)
    in
    let artifacts = ref [ ("registry", reg_key) ] in
    let note =
      match r.Ex.res_cex with
      | None ->
        Fmt.str "no violation (%d runs, %d states)" r.Ex.res_stats.Ex.runs
          r.Ex.res_stats.Ex.states
      | Some cex ->
        let key =
          Store.put store ~akind:"counterexample" ~job_id:job.Job.id
            ~label:cex.Ex.c_target
            (J.to_string (Ex.counterexample_to_json cex))
        in
        artifacts := ("counterexample", key) :: !artifacts;
        Fmt.str "VIOLATION %a" Ex.pp_violation cex.Ex.c_violation
    in
    (note, !artifacts)

(* Persist the job's heartbeat history (what a follower would have
   seen) as one artifact, oldest beat first. *)
let persist_heartbeats hb ~store (job : Job.t) =
  match hb_after hb ~job:job.Job.id ~after:0 with
  | [] -> None
  | entries ->
    let key =
      Store.put store ~akind:"heartbeats" ~job_id:job.Job.id
        ~label:(Job.kind_label job.Job.kind)
        (J.to_string (J.List (List.map snd entries)))
    in
    Some key

let run_job ?hb ~store (job : Job.t) =
  let push body =
    match hb with None -> () | Some b -> hb_push b job body
  in
  job.Job.status <- Job.Running;
  job.Job.started_s <- Unix.gettimeofday ();
  push (start_registry job);
  let note, artifacts, status =
    match execute ~store ~push job with
    | note, artifacts -> (note, artifacts, Job.Done)
    | exception exn ->
      (Fmt.str "error: %s" (Printexc.to_string exn), [], Job.Failed)
  in
  job.Job.finished_s <- Unix.gettimeofday ();
  let artifacts =
    match Option.bind hb (fun b -> persist_heartbeats b ~store job) with
    | None -> artifacts
    | Some key -> artifacts @ [ ("heartbeats", key) ]
  in
  (* Result and artifacts land before the terminal status store, so a
     follower that wakes on [terminal] sees the complete summary. *)
  job.Job.result <- Some { Job.note; artifacts };
  job.Job.status <- status

let worker ~idx ~t0 ~tracer ~store ~queue ~hb st () =
  let rec loop () =
    match Fair_queue.next queue with
    | None -> ()
    | Some job ->
      Atomic.incr st.busy;
      let now_us () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
      let ts = now_us () in
      (match tracer with
      | None -> ()
      | Some tr ->
        Tracer.begin_span tr ~ts ~tid:idx ~cat:"job"
          ~args:
            [
              ("id", J.Int job.Job.id); ("tenant", J.String job.Job.tenant);
            ]
          (Job.kind_label job.Job.kind));
      run_job ~hb ~store job;
      let ts' = now_us () in
      (match tracer with
      | None -> ()
      | Some tr -> Tracer.end_span tr ~ts:ts' ~tid:idx);
      ignore (Atomic.fetch_and_add st.service_us (ts' - ts));
      (match job.Job.status with
      | Job.Done -> Atomic.incr st.served
      | _ -> Atomic.incr st.failed);
      Atomic.decr st.busy;
      loop ()
  in
  loop ()

let start ?(workers = 2) ?tracer ~queue ~store () =
  let workers = max 1 workers in
  let st =
    {
      served = Atomic.make 0;
      failed = Atomic.make 0;
      aborted = Atomic.make 0;
      busy = Atomic.make 0;
      service_us = Atomic.make 0;
    }
  in
  let t0 = Unix.gettimeofday () in
  (match tracer with
  | None -> ()
  | Some tr ->
    for i = 0 to workers - 1 do
      Tracer.set_thread_name tr ~tid:i (Fmt.str "worker-%d" i)
    done);
  let hb = create_heartbeats () in
  let domains =
    Array.init workers (fun idx ->
        Domain.spawn (worker ~idx ~t0 ~tracer ~store ~queue ~hb st))
  in
  { queue; st; hb; domains; stopped = Atomic.make false }

let stats t = t.st
let workers t = Array.length t.domains

let stop ?(drain = true) t =
  if Atomic.compare_and_set t.stopped false true then begin
    if drain then Fair_queue.close t.queue
    else begin
      let abandoned = Fair_queue.close_now t.queue in
      List.iter
        (fun (job : Job.t) ->
          job.Job.status <- Job.Aborted;
          job.Job.finished_s <- Unix.gettimeofday ();
          job.Job.result <-
            Some { Job.note = "aborted: daemon stopped"; artifacts = [] };
          Atomic.incr t.st.aborted)
        abandoned
    end;
    Array.iter Domain.join t.domains
  end

(* Worker-domain pool. Each worker loops [Fair_queue.next] -> run ->
   record; [Fair_queue]'s close/close_now semantics give the two
   shutdown paths, and the [None] return is the exit signal (the
   close-while-workers-blocked case the tests pin: stop broadcasts, all
   workers observe [None] and join). *)

module J = Era_metrics.Json
module Registry = Era_obs.Registry
module Tracer = Era_obs.Tracer
module Ex = Era_explore.Explore

type stats = {
  served : int Atomic.t;
  failed : int Atomic.t;
  aborted : int Atomic.t;
  busy : int Atomic.t;
  service_us : int Atomic.t;
}

type t = {
  queue : Job.t Fair_queue.t;
  st : stats;
  domains : unit Domain.t array;
  stopped : bool Atomic.t;
}

(* A sink the optimizer cannot delete, so Probe's spin is real work with
   a stable per-unit cost (roughly one float multiply-add per unit). *)
let probe_sink = ref 0.

let run_probe spin =
  let acc = ref 1.0 in
  for i = 1 to max 0 spin do
    acc := (!acc *. 1.0000001) +. float_of_int (i land 7)
  done;
  probe_sink := !probe_sink +. !acc

let scheme_exn name =
  match Era_smr.Registry.find name with
  | Some s -> s
  | None ->
    invalid_arg
      (Fmt.str "unknown scheme %S (expected one of: %s)" name
         (String.concat ", " Era_smr.Registry.names))

let structure_exn name =
  match Era.Applicability.structure_of_name name with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "unknown structure %S" name)

(* Run the job body; returns (note, artifacts). Raises on bad input or
   a crashing run — the caller turns that into [Failed]. *)
let execute ~store (job : Job.t) =
  match job.Job.kind with
  | Job.Probe { spin } ->
    run_probe spin;
    (Fmt.str "probe done (spin %d)" spin, [])
  | Job.Figure1 { scheme; rounds } ->
    let r = Era.Figure1.run ~rounds (scheme_exn scheme) in
    let key =
      Store.put store ~akind:"verdict" ~job_id:job.Job.id
        ~label:(Fmt.str "figure1/%s" scheme)
        (J.to_string
           (J.Obj
              [
                ("experiment", J.String "figure1");
                ("scheme", J.String scheme);
                ("rounds", J.Int rounds);
                ("verdict", J.String (Fmt.str "%a" Era.Figure1.pp_result r));
              ]))
    in
    (Fmt.str "%a" Era.Figure1.pp_outcome r.Era.Figure1.outcome,
     [ ("verdict", key) ])
  | Job.Figure2 { scheme } ->
    let r = Era.Figure2.run (scheme_exn scheme) in
    let note =
      match r.Era.Figure2.outcome with
      | Era.Figure2.Unsafe _ -> "UNSAFE (stale value used)"
      | Era.Figure2.Safe_completion { retired_backlog } ->
        Fmt.str "safe (retired backlog %d)" retired_backlog
    in
    let key =
      Store.put store ~akind:"verdict" ~job_id:job.Job.id
        ~label:(Fmt.str "figure2/%s" scheme)
        (J.to_string
           (J.Obj
              [
                ("experiment", J.String "figure2");
                ("scheme", J.String scheme);
                ("verdict", J.String (Fmt.str "%a" Era.Figure2.pp_result r));
              ]))
    in
    (note, [ ("verdict", key) ])
  | Job.Explore e ->
    let scheme = scheme_exn e.scheme in
    let structure = structure_exn e.structure in
    let config =
      {
        Ex.default_config with
        Ex.max_preemptions = e.preemptions;
        max_runs = e.max_runs;
        max_steps = e.steps;
      }
    in
    let t0 = Unix.gettimeofday () in
    let r =
      Era.Applicability.explore ~config ~seed:e.seed ?ops_per_thread:e.ops
        ?robustness_bound:e.robust_bound scheme structure
    in
    let elapsed_s = Unix.gettimeofday () -. t0 in
    (* Per-job telemetry snapshot: the explorer's final stats in the
       shared lib/obs registry format, persisted as an artifact. *)
    let reg = Ex.stats_registry r.Ex.res_stats in
    Registry.set (Registry.gauge reg "explore_elapsed_s") elapsed_s;
    let reg_key =
      Store.put store ~akind:"registry" ~job_id:job.Job.id
        ~label:(Job.kind_label job.Job.kind)
        (Registry.to_string reg)
    in
    let artifacts = ref [ ("registry", reg_key) ] in
    let note =
      match r.Ex.res_cex with
      | None ->
        Fmt.str "no violation (%d runs, %d states)" r.Ex.res_stats.Ex.runs
          r.Ex.res_stats.Ex.states
      | Some cex ->
        let key =
          Store.put store ~akind:"counterexample" ~job_id:job.Job.id
            ~label:cex.Ex.c_target
            (J.to_string (Ex.counterexample_to_json cex))
        in
        artifacts := ("counterexample", key) :: !artifacts;
        Fmt.str "VIOLATION %a" Ex.pp_violation cex.Ex.c_violation
    in
    (note, !artifacts)

let run_job ~store (job : Job.t) =
  job.Job.status <- Job.Running;
  job.Job.started_s <- Unix.gettimeofday ();
  (match execute ~store job with
  | note, artifacts ->
    job.Job.result <- Some { Job.note; artifacts };
    job.Job.status <- Job.Done
  | exception exn ->
    job.Job.result <-
      Some { Job.note = Fmt.str "error: %s" (Printexc.to_string exn);
             artifacts = [] };
    job.Job.status <- Job.Failed);
  job.Job.finished_s <- Unix.gettimeofday ()

let worker ~idx ~t0 ~tracer ~store ~queue st () =
  let rec loop () =
    match Fair_queue.next queue with
    | None -> ()
    | Some job ->
      Atomic.incr st.busy;
      let now_us () = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
      let ts = now_us () in
      (match tracer with
      | None -> ()
      | Some tr ->
        Tracer.begin_span tr ~ts ~tid:idx ~cat:"job"
          ~args:
            [
              ("id", J.Int job.Job.id); ("tenant", J.String job.Job.tenant);
            ]
          (Job.kind_label job.Job.kind));
      run_job ~store job;
      let ts' = now_us () in
      (match tracer with
      | None -> ()
      | Some tr -> Tracer.end_span tr ~ts:ts' ~tid:idx);
      ignore (Atomic.fetch_and_add st.service_us (ts' - ts));
      (match job.Job.status with
      | Job.Done -> Atomic.incr st.served
      | _ -> Atomic.incr st.failed);
      Atomic.decr st.busy;
      loop ()
  in
  loop ()

let start ?(workers = 2) ?tracer ~queue ~store () =
  let workers = max 1 workers in
  let st =
    {
      served = Atomic.make 0;
      failed = Atomic.make 0;
      aborted = Atomic.make 0;
      busy = Atomic.make 0;
      service_us = Atomic.make 0;
    }
  in
  let t0 = Unix.gettimeofday () in
  (match tracer with
  | None -> ()
  | Some tr ->
    for i = 0 to workers - 1 do
      Tracer.set_thread_name tr ~tid:i (Fmt.str "worker-%d" i)
    done);
  let domains =
    Array.init workers (fun idx ->
        Domain.spawn (worker ~idx ~t0 ~tracer ~store ~queue st))
  in
  { queue; st; domains; stopped = Atomic.make false }

let stats t = t.st
let workers t = Array.length t.domains

let stop ?(drain = true) t =
  if Atomic.compare_and_set t.stopped false true then begin
    if drain then Fair_queue.close t.queue
    else begin
      let abandoned = Fair_queue.close_now t.queue in
      List.iter
        (fun (job : Job.t) ->
          job.Job.status <- Job.Aborted;
          job.Job.finished_s <- Unix.gettimeofday ();
          job.Job.result <-
            Some { Job.note = "aborted: daemon stopped"; artifacts = [] };
          Atomic.incr t.st.aborted)
        abandoned
    end;
    Array.iter Domain.join t.domains
  end

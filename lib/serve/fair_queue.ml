(* Per-tenant bounded queues + a round-robin dispatch cursor.

   The scheduler mutex [m] protects the tenant registry, the cursor, and
   the dispatchers' condvar; the per-tenant queues synchronize
   themselves (they are two-lock {!Bounded_queue}s). The hand-off
   protocol that makes the composition lose no wakeups: a submitter
   first pushes into the tenant queue, {e then} takes [m] and broadcasts.
   A dispatcher scans every tenant queue while holding [m]; if the scan
   finds nothing, the item it missed was pushed before its scan ended —
   but then the submitter's broadcast is still pending behind [m], so
   the dispatcher's wait is woken and it rescans. Dispatchers therefore
   sleep only when every queue really was empty at scan time, and every
   push is followed by a wakeup that triggers a full rescan. *)

type shed = [ `Tenant_cap | `Global_cap | `Closed ]

let shed_reason = function
  | `Tenant_cap -> "tenant-cap"
  | `Global_cap -> "global-cap"
  | `Closed -> "closed"

type 'a t = {
  tenant_cap : int;
  global_cap : int;
  in_queue : int Atomic.t;  (* admitted - dispatched: the global bound *)
  m : Mutex.t;
  work : Condition.t;
  tbl : (string, 'a Bounded_queue.t) Hashtbl.t;  (* under m *)
  mutable order : (string * 'a Bounded_queue.t) array;  (* under m *)
  mutable cursor : int;  (* under m *)
  closed : bool Atomic.t;
  now_closed : bool Atomic.t;
}

let create ?(tenant_cap = 64) ?(global_cap = 256) () =
  {
    tenant_cap = max 1 tenant_cap;
    global_cap = max 1 global_cap;
    in_queue = Atomic.make 0;
    m = Mutex.create ();
    work = Condition.create ();
    tbl = Hashtbl.create 8;
    order = [||];
    cursor = 0;
    closed = Atomic.make false;
    now_closed = Atomic.make false;
  }

let tenant_queue t name =
  Mutex.lock t.m;
  let q =
    match Hashtbl.find_opt t.tbl name with
    | Some q -> q
    | None ->
      let q = Bounded_queue.create ~capacity:t.tenant_cap () in
      (* [close] closes every queue in [order] under [m]; a queue born
         after that must arrive already closed or it could admit a job
         no dispatcher will ever serve. *)
      if Atomic.get t.closed then Bounded_queue.close q;
      Hashtbl.add t.tbl name q;
      t.order <- Array.append t.order [| (name, q) |];
      q
  in
  Mutex.unlock t.m;
  q

(* Reserve one unit of the global cap. *)
let rec reserve t =
  let s = Atomic.get t.in_queue in
  if s >= t.global_cap then false
  else if Atomic.compare_and_set t.in_queue s (s + 1) then true
  else reserve t

let submit t ~tenant x =
  if Atomic.get t.closed then Error `Closed
  else if not (reserve t) then Error `Global_cap
  else begin
    let q = tenant_queue t tenant in
    if Bounded_queue.try_push q x then begin
      Mutex.lock t.m;
      Condition.broadcast t.work;
      Mutex.unlock t.m;
      Ok ()
    end
    else begin
      Atomic.decr t.in_queue;
      (* try_push also fails once the queues are closed; report that as
         [`Closed], not as a full tenant. *)
      if Atomic.get t.closed then Error `Closed else Error `Tenant_cap
    end
  end

(* One round-robin sweep over the tenant queues, starting at the cursor;
   caller holds [m]. *)
let scan t =
  let n = Array.length t.order in
  let rec go i =
    if i >= n then None
    else
      let idx = (t.cursor + i) mod n in
      let _, q = t.order.(idx) in
      match Bounded_queue.try_pop q with
      | Some v ->
        t.cursor <- (idx + 1) mod n;
        Atomic.decr t.in_queue;
        Some v
      | None -> go (i + 1)
  in
  if n = 0 then None else go 0

let next t =
  Mutex.lock t.m;
  let rec loop () =
    if Atomic.get t.now_closed then None
    else
      match scan t with
      | Some _ as r -> r
      | None ->
        if Atomic.get t.closed then None  (* drained *)
        else begin
          Condition.wait t.work t.m;
          loop ()
        end
  in
  let r = loop () in
  Mutex.unlock t.m;
  r

let close t =
  Atomic.set t.closed true;
  Mutex.lock t.m;
  Array.iter (fun (_, q) -> Bounded_queue.close q) t.order;
  Condition.broadcast t.work;
  Mutex.unlock t.m

let close_now t =
  Atomic.set t.closed true;
  Mutex.lock t.m;
  Atomic.set t.now_closed true;
  let left =
    Array.to_list t.order
    |> List.concat_map (fun (_, q) -> Bounded_queue.close_now q)
  in
  List.iter (fun _ -> Atomic.decr t.in_queue) left;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  left

let depth t = max 0 (Atomic.get t.in_queue)

let tenants t =
  Mutex.lock t.m;
  let r =
    Array.to_list t.order
    |> List.map (fun (name, q) -> (name, Bounded_queue.length q))
  in
  Mutex.unlock t.m;
  r

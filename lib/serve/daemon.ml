module J = Era_metrics.Json
module Registry = Era_obs.Registry
module Tracer = Era_obs.Tracer
module Fs = Era_metrics.Fsutil

type config = {
  socket_path : string;
  workers : int;
  global_cap : int;
  tenant_cap : int;
  store_dir : string;
}

let default_config =
  {
    socket_path = "era_serve.sock";
    workers = 2;
    global_cap = 256;
    tenant_cap = 64;
    store_dir = "artifacts";
  }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  store : Store.t;
  queue : Job.t Fair_queue.t;
  exec : Executor.t;
  tracer : Tracer.t;
  table : (int, Job.t) Hashtbl.t;
  table_m : Mutex.t;
  next_id : int Atomic.t;
  submitted : int Atomic.t;
  admitted : int Atomic.t;
  shed_tenant : int Atomic.t;
  shed_global : int Atomic.t;
  shed_closed : int Atomic.t;
  t0 : float;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  sd_m : Mutex.t;
  sd_c : Condition.t;
  mutable sd_req : bool option;  (* Some drain, under sd_m *)
  mutable accept_thread : Thread.t option;
}

let config t = t.cfg
let store t = t.store
let tracer t = t.tracer

let jobs t =
  Mutex.lock t.table_m;
  let l = Hashtbl.fold (fun _ j acc -> j :: acc) t.table [] in
  Mutex.unlock t.table_m;
  List.sort (fun (a : Job.t) b -> compare a.Job.id b.Job.id) l

let find_job t id =
  Mutex.lock t.table_m;
  let r = Hashtbl.find_opt t.table id in
  Mutex.unlock t.table_m;
  r

let shed_total t =
  Atomic.get t.shed_tenant + Atomic.get t.shed_global
  + Atomic.get t.shed_closed

let stats_registry t =
  let reg = Registry.create () in
  let st = Executor.stats t.exec in
  let c name v = Registry.set_counter (Registry.counter reg name) v in
  c "serve_submitted" (Atomic.get t.submitted);
  c "serve_admitted" (Atomic.get t.admitted);
  Registry.set_counter
    (Registry.counter reg "serve_shed" ~labels:[ ("reason", "tenant-cap") ])
    (Atomic.get t.shed_tenant);
  Registry.set_counter
    (Registry.counter reg "serve_shed" ~labels:[ ("reason", "global-cap") ])
    (Atomic.get t.shed_global);
  Registry.set_counter
    (Registry.counter reg "serve_shed" ~labels:[ ("reason", "closed") ])
    (Atomic.get t.shed_closed);
  c "serve_served" (Atomic.get st.Executor.served);
  c "serve_failed" (Atomic.get st.Executor.failed);
  c "serve_aborted" (Atomic.get st.Executor.aborted);
  c "serve_service_us" (Atomic.get st.Executor.service_us);
  let g name v = Registry.set_int (Registry.gauge reg name) v in
  g "serve_queue_depth" (Fair_queue.depth t.queue);
  g "serve_busy_workers" (Atomic.get st.Executor.busy);
  g "serve_workers" (Executor.workers t.exec);
  Registry.set (Registry.gauge reg "serve_uptime_s")
    (Unix.gettimeofday () -. t.t0);
  List.iter
    (fun (tenant, depth) ->
      Registry.set_int
        (Registry.gauge reg "serve_tenant_depth" ~labels:[ ("tenant", tenant) ])
        depth)
    (Fair_queue.tenants t.queue);
  reg

(* Plain-int stats the load generator consumes without decoding the
   registry format. *)
let stats_json t =
  let st = Executor.stats t.exec in
  J.Obj
    [
      ("submitted", J.Int (Atomic.get t.submitted));
      ("admitted", J.Int (Atomic.get t.admitted));
      ("shed", J.Int (shed_total t));
      ("shed_tenant", J.Int (Atomic.get t.shed_tenant));
      ("shed_global", J.Int (Atomic.get t.shed_global));
      ("shed_closed", J.Int (Atomic.get t.shed_closed));
      ("served", J.Int (Atomic.get st.Executor.served));
      ("failed", J.Int (Atomic.get st.Executor.failed));
      ("aborted", J.Int (Atomic.get st.Executor.aborted));
      ("busy", J.Int (Atomic.get st.Executor.busy));
      ("queue_depth", J.Int (Fair_queue.depth t.queue));
      ("uptime_s", J.Float (Unix.gettimeofday () -. t.t0));
    ]

(* ---------------------------------------------------------------- *)
(* Request dispatch                                                  *)
(* ---------------------------------------------------------------- *)

let dispatch t (req : Wire.request) =
  match req with
  | Wire.Ping -> Wire.ok [ ("pong", J.Bool true) ]
  | Wire.Stats ->
    Wire.ok
      [ ("stats", stats_json t); ("registry", Registry.to_json (stats_registry t)) ]
  | Wire.Jobs ->
    Wire.ok [ ("jobs", J.List (List.map Job.summary_to_json (jobs t))) ]
  | Wire.Job_status id -> (
    match find_job t id with
    | Some job -> Wire.ok [ ("job", Job.summary_to_json job) ]
    | None -> Wire.err (Fmt.str "no such job %d" id))
  | Wire.Manifest -> Wire.ok [ ("manifest", Store.manifest_to_json t.store) ]
  | Wire.Artifact key -> (
    match Store.get t.store key with
    | Some content ->
      Wire.ok [ ("key", J.String key); ("content", J.String content) ]
    | None -> Wire.err (Fmt.str "no such artifact %s" key))
  | Wire.Submit { tenant; kind } ->
    Atomic.incr t.submitted;
    let id = Atomic.fetch_and_add t.next_id 1 in
    let job = Job.make ~id ~tenant kind in
    (match Fair_queue.submit t.queue ~tenant job with
    | Ok () ->
      Atomic.incr t.admitted;
      Mutex.lock t.table_m;
      Hashtbl.replace t.table id job;
      Mutex.unlock t.table_m;
      Wire.ok [ ("status", J.String "queued"); ("id", J.Int id) ]
    | Error reason ->
      (match reason with
      | `Tenant_cap -> Atomic.incr t.shed_tenant
      | `Global_cap -> Atomic.incr t.shed_global
      | `Closed -> Atomic.incr t.shed_closed);
      Wire.ok
        [
          ("status", J.String "shed");
          ("reason", J.String (Fair_queue.shed_reason reason));
        ])
  | Wire.Shutdown { drain } ->
    Mutex.lock t.sd_m;
    t.sd_req <- Some drain;
    Condition.broadcast t.sd_c;
    Mutex.unlock t.sd_m;
    Wire.ok [ ("stopping", J.Bool true); ("drain", J.Bool drain) ]
  | Wire.Follow _ ->
    (* Streamed per-connection by [follow] below; only reachable if a
       caller routes a follow through the one-shot dispatch. *)
    Wire.err "follow is a streaming request"

(* Streaming [follow]: one connection-occupying loop per request. Push
   every heartbeat the job emits (each as its own {"heartbeat":...}
   line), then finish with a single terminal ok line carrying the final
   job summary. The executor pushes beats {e before} flipping the job
   to a terminal status, so the drain after observing [terminal] sees
   the complete history. *)
let follow t conn id =
  match find_job t id with
  | None -> Wire.send_json conn (Wire.err (Fmt.str "no such job %d" id))
  | Some job ->
    let last = ref 0 in
    let drain_beats () =
      List.iter
        (fun (seq, body) ->
          last := seq;
          Wire.send_json conn (J.Obj [ ("heartbeat", body) ]))
        (Executor.heartbeats_after t.exec ~job:id ~after:!last)
    in
    let rec go () =
      drain_beats ();
      if Job.terminal job.Job.status then begin
        drain_beats ();
        Wire.send_json conn (Wire.ok [ ("job", Job.summary_to_json job) ])
      end
      else if Atomic.get t.stopping then
        (* Daemon going down: close the stream honestly rather than
           spin — the summary still says queued/running. *)
        Wire.send_json conn
          (Wire.ok
             [ ("job", Job.summary_to_json job); ("interrupted", J.Bool true) ])
      else begin
        Thread.delay 0.05;
        go ()
      end
    in
    go ()

(* ---------------------------------------------------------------- *)
(* Connection handling                                               *)
(* ---------------------------------------------------------------- *)

(* Handler loop: poll the fd with a timeout so a stopped daemon's
   handler threads exit on their own even if the client never hangs up;
   buffered (pipelined) lines are always drained before polling. *)
let handler t fd () =
  let conn = Wire.conn_of_fd fd in
  let rec loop () =
    let ready =
      Wire.has_buffered conn
      ||
      match Unix.select [ fd ] [] [] 0.25 with
      | [ _ ], _, _ -> true
      | _ -> false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    if ready then
      match Wire.recv_json conn with
      | None -> ()  (* EOF *)
      | Some (Error e) ->
        Wire.send_json conn (Wire.err (Fmt.str "bad request: %s" e));
        loop ()
      | Some (Ok j) -> (
        match Wire.request_of_json j with
        | Error e ->
          Wire.send_json conn (Wire.err e);
          loop ()
        | Ok (Wire.Follow id) ->
          (* The one streaming request: occupies this handler thread
             until the followed job is terminal (or we're stopping). *)
          follow t conn id;
          loop ()
        | Ok req ->
          Wire.send_json conn (dispatch t req);
          loop ())
    else if not (Atomic.get t.stopping) then loop ()
  in
  (try loop () with
  | Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.stopping then (try Unix.close fd with _ -> ())
        else ignore (Thread.create (handler t fd) () : Thread.t);
        loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ ->
        (* listen fd shut down by [stop] (or a fatal accept error):
           exit. *)
        ()
  in
  loop ()

(* ---------------------------------------------------------------- *)
(* Lifecycle                                                         *)
(* ---------------------------------------------------------------- *)

let start cfg =
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  (match Filename.dirname cfg.socket_path with
  | "" | "." -> ()
  | d -> Fs.mkdir_p d);
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 512;
  let store = Store.open_ ~dir:cfg.store_dir in
  let queue =
    Fair_queue.create ~tenant_cap:cfg.tenant_cap ~global_cap:cfg.global_cap ()
  in
  let tracer = Tracer.create ~capacity:(1 lsl 16) () in
  Tracer.set_process_name tracer "era_serve";
  let exec = Executor.start ~workers:cfg.workers ~tracer ~queue ~store () in
  let t =
    {
      cfg;
      listen_fd;
      store;
      queue;
      exec;
      tracer;
      table = Hashtbl.create 64;
      table_m = Mutex.create ();
      next_id = Atomic.make 1;
      submitted = Atomic.make 0;
      admitted = Atomic.make 0;
      shed_tenant = Atomic.make 0;
      shed_global = Atomic.make 0;
      shed_closed = Atomic.make 0;
      t0 = Unix.gettimeofday ();
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      sd_m = Mutex.create ();
      sd_c = Condition.create ();
      sd_req = None;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let jobs_dump_path t =
  let base = Filename.remove_extension (Filename.basename t.cfg.socket_path) in
  let safe =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      base
  in
  Fmt.str "jobs_%s.json" safe

let stop ?(drain = true) t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.stopping true;
    (* Finish (or abandon) the backlog first, so the job-table dump and
       the trace below are final. *)
    Executor.stop ~drain t.exec;
    (* Waking a thread blocked in [accept] is platform-delicate:
       [shutdown] does it on Linux; the throwaway self-connection covers
       the rest (the accept loop re-checks [stopping] after every
       accept, so the wake connection is closed, not served). *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       Fun.protect
         ~finally:(fun () -> try Unix.close fd with _ -> ())
         (fun () -> Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path))
     with Unix.Unix_error _ | Sys_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
    ignore
      (Store.put t.store ~akind:"server-trace" ~label:"era_serve"
         (Tracer.to_string t.tracer)
        : string);
    Fs.write_file ~file:(jobs_dump_path t)
      (J.to_string
         (J.Obj
            [
              ("stats", stats_json t);
              ("jobs", J.List (List.map Job.summary_to_json (jobs t)));
            ]));
    (* Unblock a [wait]er when stop was called directly. *)
    Mutex.lock t.sd_m;
    if t.sd_req = None then t.sd_req <- Some drain;
    Condition.broadcast t.sd_c;
    Mutex.unlock t.sd_m
  end

let wait t =
  Mutex.lock t.sd_m;
  while t.sd_req = None do
    Condition.wait t.sd_c t.sd_m
  done;
  let drain = Option.value t.sd_req ~default:true in
  Mutex.unlock t.sd_m;
  stop ~drain t

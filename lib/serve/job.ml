(* Job model + wire codecs. Kinds are deliberately a closed sum: the
   daemon refuses anything it cannot name, so a malformed submit is shed
   at the protocol layer instead of dying inside a worker domain. *)

module J = Era_metrics.Json

type kind =
  | Explore of {
      scheme : string;
      structure : string;
      preemptions : int;
      max_runs : int;
      steps : int;
      seed : int;
      ops : int option;
      robust_bound : int option;
    }
  | Figure1 of { scheme : string; rounds : int }
  | Figure2 of { scheme : string }
  | Probe of { spin : int }

type status = Queued | Running | Done | Failed | Aborted

type result_ = {
  note : string;
  artifacts : (string * string) list;
}

type t = {
  id : int;
  tenant : string;
  kind : kind;
  submitted_s : float;
  mutable status : status;
  mutable started_s : float;
  mutable finished_s : float;
  mutable result : result_ option;
}

let make ~id ~tenant kind =
  {
    id;
    tenant;
    kind;
    submitted_s = Unix.gettimeofday ();
    status = Queued;
    started_s = 0.;
    finished_s = 0.;
    result = None;
  }

let kind_name = function
  | Explore _ -> "explore"
  | Figure1 _ -> "figure1"
  | Figure2 _ -> "figure2"
  | Probe _ -> "probe"

let kind_label = function
  | Explore e -> Fmt.str "explore %s/%s" e.scheme e.structure
  | Figure1 f -> Fmt.str "figure1 %s" f.scheme
  | Figure2 f -> Fmt.str "figure2 %s" f.scheme
  | Probe p -> Fmt.str "probe %d" p.spin

let default_explore ?(scheme = "hp") ?(structure = "harris-list") () =
  let d = Era_explore.Explore.default_config in
  Explore
    {
      scheme;
      structure;
      preemptions = d.Era_explore.Explore.max_preemptions;
      max_runs = d.Era_explore.Explore.max_runs;
      steps = d.Era_explore.Explore.max_steps;
      seed = 2;
      ops = None;
      robust_bound = None;
    }

let kind_to_json k =
  let base = [ ("kind", J.String (kind_name k)) ] in
  J.Obj
    (base
    @
    match k with
    | Explore e ->
      [
        ("scheme", J.String e.scheme);
        ("structure", J.String e.structure);
        ("preemptions", J.Int e.preemptions);
        ("max_runs", J.Int e.max_runs);
        ("steps", J.Int e.steps);
        ("seed", J.Int e.seed);
      ]
      @ (match e.ops with None -> [] | Some n -> [ ("ops", J.Int n) ])
      @
      (match e.robust_bound with
      | None -> []
      | Some b -> [ ("robust_bound", J.Int b) ])
    | Figure1 f ->
      [ ("scheme", J.String f.scheme); ("rounds", J.Int f.rounds) ]
    | Figure2 f -> [ ("scheme", J.String f.scheme) ]
    | Probe p -> [ ("spin", J.Int p.spin) ])

let str_field j k = Option.bind (J.member k j) J.to_str
let int_field j k = Option.bind (J.member k j) J.to_int

let kind_of_json j =
  match str_field j "kind" with
  | None -> Error "job kind: missing \"kind\""
  | Some "probe" ->
    Ok (Probe { spin = Option.value (int_field j "spin") ~default:0 })
  | Some "figure2" -> (
    match str_field j "scheme" with
    | Some scheme -> Ok (Figure2 { scheme })
    | None -> Error "figure2 job: missing \"scheme\"")
  | Some "figure1" -> (
    match str_field j "scheme" with
    | Some scheme ->
      Ok
        (Figure1
           { scheme; rounds = Option.value (int_field j "rounds") ~default:256 })
    | None -> Error "figure1 job: missing \"scheme\"")
  | Some "explore" -> (
    match (str_field j "scheme", str_field j "structure") with
    | Some scheme, Some structure ->
      let d = Era_explore.Explore.default_config in
      let or_ k dflt = Option.value (int_field j k) ~default:dflt in
      Ok
        (Explore
           {
             scheme;
             structure;
             preemptions =
               or_ "preemptions" d.Era_explore.Explore.max_preemptions;
             max_runs = or_ "max_runs" d.Era_explore.Explore.max_runs;
             steps = or_ "steps" d.Era_explore.Explore.max_steps;
             seed = or_ "seed" 2;
             ops = int_field j "ops";
             robust_bound = int_field j "robust_bound";
           })
    | _ -> Error "explore job: missing \"scheme\" or \"structure\"")
  | Some other -> Error (Fmt.str "unknown job kind %S" other)

let status_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Aborted -> "aborted"

let status_of_name = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "aborted" -> Some Aborted
  | _ -> None

let terminal = function
  | Done | Failed | Aborted -> true
  | Queued | Running -> false

let summary_to_json t =
  J.Obj
    [
      ("id", J.Int t.id);
      ("tenant", J.String t.tenant);
      ("kind", kind_to_json t.kind);
      ("label", J.String (kind_label t.kind));
      ("status", J.String (status_name t.status));
      ("submitted_s", J.Float t.submitted_s);
      ("started_s", J.Float t.started_s);
      ("finished_s", J.Float t.finished_s);
      ( "note",
        J.String (match t.result with None -> "" | Some r -> r.note) );
      ( "artifacts",
        J.List
          (match t.result with
          | None -> []
          | Some r ->
            List.map
              (fun (akind, key) ->
                J.Obj [ ("kind", J.String akind); ("key", J.String key) ])
              r.artifacts) );
    ]

let pp_summary fmt t =
  Fmt.pf fmt "#%d %-8s %-28s %-8s %s" t.id t.tenant (kind_label t.kind)
    (status_name t.status)
    (match t.result with
    | None -> ""
    | Some r ->
      Fmt.str "%s%s" r.note
        (match r.artifacts with
        | [] -> ""
        | a ->
          Fmt.str " [%a]"
            Fmt.(list ~sep:comma (pair ~sep:(any ":") string string))
            a))

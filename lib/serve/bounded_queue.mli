(** Bounded two-lock MPMC queue with explicit shed-on-full — the
    admission primitive behind `era_serve`'s backpressure.

    Shape: a Michael–Scott two-lock linked queue (one mutex for pushers
    at the tail, one for poppers at the head, a dummy node between them
    so the two ends never contend on the same lock while the queue is
    non-empty), plus an atomic size used as a reservation counter so
    capacity is enforced exactly: {!try_push} either reserves a slot and
    enqueues, or returns [false] {e immediately} — admission never
    blocks, callers learn about saturation synchronously and can back
    off (the daemon turns [false] into a "shed" reply).

    Shutdown has two modes, mirroring the explorer's
    [Work_queue] contract:
    - {!close}: drain-then-stop. No further pushes are admitted; {!pop}
      keeps serving the remaining items and returns [None] only once the
      queue is empty.
    - {!close_now}: immediate. Remaining items are removed and returned
      to the caller (so no job is silently lost); every blocked and
      future {!pop} returns [None].

    Safe for concurrent use from any number of domains or threads. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** [capacity] is clamped to at least 1. *)

val capacity : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is at capacity ({e shed}) or closed. Never
    blocks. *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue can never
    produce one again ([None]: {!close_now} was called, or {!close} was
    and the queue is drained). *)

val try_pop : 'a t -> 'a option
(** Non-blocking {!pop}: [None] means "nothing available right now" (or
    closed-and-drained) — it carries no liveness information. *)

val close : 'a t -> unit
(** Drain-then-stop; idempotent. Wakes every blocked {!pop}. *)

val close_now : 'a t -> 'a list
(** Stop immediately; returns the abandoned items in FIFO order.
    Idempotent (later calls return []). Implies {!close}. *)

val closed : 'a t -> bool
(** [true] after {!close} or {!close_now} — pushes are refused; pops may
    still be serving a drain. *)

val length : 'a t -> int
(** Items currently queued (including slots mid-reservation) — a racy
    telemetry snapshot. *)

module J = Era_metrics.Json

type config = {
  socket : string;
  conns : int;
  pipeline : int;
  requests : int;
  tenants : int;
  kind : Job.kind;
  drain_timeout_s : float;
}

let default_config =
  {
    socket = "era_serve.sock";
    conns = 64;
    pipeline = 16;
    requests = 2000;
    tenants = 4;
    kind = Job.Probe { spin = 500 };
    drain_timeout_s = 120.;
  }

type result_ = {
  submitted : int;
  responded : int;
  admitted : int;
  shed : int;
  errors : int;
  lost : int;
  served : int;
  failed : int;
  aborted : int;
  inflight_peak : int;
  inflight_mean : float;
  submit_elapsed_s : float;
  drain_s : float;
  admit_p50_us : float;
  admit_p99_us : float;
  admit_est_p50_us : float;
  admit_est_p99_us : float;
}

(* One multiplexed connection. [sent]/[acked] count submits enqueued and
   responses parsed; their difference is this connection's contribution
   to the in-flight total. [ts] holds the enqueue timestamp of every
   unanswered submit, oldest first — responses on a connection come back
   in order, so front-of-queue pairing gives per-request latency. *)
type conn = {
  fd : Unix.file_descr;
  target : int;
  mutable sent : int;
  mutable acked : int;
  mutable dead : bool;
  pending : string Queue.t;  (* request lines not yet handed to write *)
  mutable cur : bytes;  (* partially written chunk *)
  mutable cur_off : int;
  inbuf : Buffer.t;  (* trailing partial response line *)
  ts : float Queue.t;
}

let outstanding c = c.sent - c.acked
let wants_read c = (not c.dead) && outstanding c > 0

let wants_write c =
  (not c.dead)
  && (c.cur_off < Bytes.length c.cur || not (Queue.is_empty c.pending))

(* ---------------------------------------------------------------- *)
(* Daemon-side accounting via the blocking client                    *)
(* ---------------------------------------------------------------- *)

type counts = { c_served : int; c_failed : int; c_aborted : int }

let read_counts stats =
  let int k =
    Option.value (Option.bind (J.member k stats) J.to_int) ~default:0
  in
  { c_served = int "served"; c_failed = int "failed"; c_aborted = int "aborted" }

let fetch_counts ?(retries = 0) socket =
  match Client.connect ~retries ~retry_delay_s:0.25 ~socket () with
  | Error _ as e -> e
  | Ok cl ->
    let r = Client.stats cl in
    Client.close cl;
    Result.map read_counts r

(* ---------------------------------------------------------------- *)
(* Percentiles                                                       *)
(* ---------------------------------------------------------------- *)

(* Exact rank percentile over the raw per-request array — kept for the
   raw-µs latency report. The log2-bucket estimates next to it come
   from the shared registry estimator ({!Era_obs.Registry}), the same
   code path every histogram snapshot's p50/p90/p99 uses; reporting
   both pins the estimator's factor-of-2 resolution against ground
   truth on every load run. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

(* ---------------------------------------------------------------- *)
(* The event loop                                                    *)
(* ---------------------------------------------------------------- *)

let run cfg =
  let cfg =
    { cfg with conns = max 1 cfg.conns; pipeline = max 1 cfg.pipeline;
      tenants = max 1 cfg.tenants; requests = max 0 cfg.requests }
  in
  (* Request lines are identical per tenant: precompute them. *)
  let lines =
    Array.init cfg.tenants (fun i ->
        J.to_string ~minify:true
          (Wire.request_to_json
             (Wire.Submit { tenant = Fmt.str "t%d" i; kind = cfg.kind }))
        ^ "\n")
  in
  (* The baseline fetch retries so scripts can background the daemon
     and start the load generator immediately (same boot-race contract
     as era_cli's client). *)
  match fetch_counts ~retries:20 cfg.socket with
  | Error e -> Error e
  | Ok base -> (
    let conns =
      List.init cfg.conns (fun i ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          match Unix.connect fd (Unix.ADDR_UNIX cfg.socket) with
          | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with _ -> ());
            Error (Fmt.str "connect %d/%d: %s" i cfg.conns
                     (Unix.error_message e))
          | () ->
            Unix.set_nonblock fd;
            let target =
              (cfg.requests / cfg.conns)
              + (if i < cfg.requests mod cfg.conns then 1 else 0)
            in
            Ok
              {
                fd; target; sent = 0; acked = 0; dead = false;
                pending = Queue.create (); cur = Bytes.create 0; cur_off = 0;
                inbuf = Buffer.create 512; ts = Queue.create ();
              })
    in
    let close_all cs =
      List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) cs
    in
    match
      List.partition_map
        (function Ok c -> Left c | Error e -> Right e)
        conns
    with
    | cs, e :: _ ->
      close_all cs;
      Error e
    | cs, [] ->
      let submitted = ref 0 and responded = ref 0 in
      let admitted = ref 0 and shed = ref 0 and errors = ref 0 in
      let lat = Array.make (max 1 cfg.requests) 0.0 in
      let nlat = ref 0 in
      let lat_reg = Era_obs.Registry.create () in
      let lat_hist =
        Era_obs.Registry.histogram lat_reg "load_admit_latency_us"
      in
      let peak = ref 0 and infl_sum = ref 0.0 and infl_n = ref 0 in
      let tenant_ix = ref 0 in
      let scratch = Bytes.create 65536 in
      let handle_line c line now =
        c.acked <- c.acked + 1;
        incr responded;
        (if not (Queue.is_empty c.ts) then begin
           let t0 = Queue.pop c.ts in
           let us = (now -. t0) *. 1e6 in
           Era_obs.Registry.observe lat_hist (int_of_float us);
           if !nlat < Array.length lat then begin
             lat.(!nlat) <- us;
             incr nlat
           end
         end);
        match J.of_string line with
        | Error _ -> incr errors
        | Ok j -> (
          match Option.bind (J.member "status" j) J.to_str with
          | Some "queued" -> incr admitted
          | Some "shed" -> incr shed
          | _ -> incr errors)
      in
      let kill c =
        if not c.dead then begin
          c.dead <- true;
          (* Unanswered submits on a dead connection never get a
             response; count them as protocol errors, not lost jobs. *)
          errors := !errors + outstanding c;
          c.acked <- c.sent;
          Queue.clear c.ts;
          try Unix.close c.fd with Unix.Unix_error _ -> ()
        end
      in
      let top_up c now =
        while
          c.sent < c.target && outstanding c < cfg.pipeline
          && not c.dead
        do
          let line = lines.(!tenant_ix mod cfg.tenants) in
          incr tenant_ix;
          Queue.add line c.pending;
          Queue.add now c.ts;
          c.sent <- c.sent + 1;
          incr submitted
        done
      in
      let flush c =
        try
          let continue = ref true in
          while !continue do
            if c.cur_off >= Bytes.length c.cur then
              if Queue.is_empty c.pending then continue := false
              else begin
                (* Coalesce everything pending into one write chunk. *)
                let b = Buffer.create 1024 in
                Queue.iter (Buffer.add_string b) c.pending;
                Queue.clear c.pending;
                c.cur <- Buffer.to_bytes b;
                c.cur_off <- 0
              end
            else
              let n =
                Unix.write c.fd c.cur c.cur_off (Bytes.length c.cur - c.cur_off)
              in
              c.cur_off <- c.cur_off + n
          done
        with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
        | Unix.Unix_error (_, _, _) -> kill c
      in
      let drain_inbuf c now =
        let s = Buffer.contents c.inbuf in
        match String.rindex_opt s '\n' with
        | None -> ()
        | Some last ->
          Buffer.clear c.inbuf;
          Buffer.add_substring c.inbuf s (last + 1)
            (String.length s - last - 1);
          String.split_on_char '\n' (String.sub s 0 last)
          |> List.iter (fun line -> handle_line c line now)
      in
      let read_some c =
        match Unix.read c.fd scratch 0 (Bytes.length scratch) with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          -> ()
        | exception Unix.Unix_error (_, _, _) -> kill c
        | 0 -> kill c
        | n ->
          Buffer.add_subbytes c.inbuf scratch 0 n;
          drain_inbuf c (Unix.gettimeofday ())
      in
      let t_start = Unix.gettimeofday () in
      let finished () =
        List.for_all (fun c -> c.dead || c.acked >= c.target) cs
      in
      while not (finished ()) do
        let now = Unix.gettimeofday () in
        List.iter (fun c -> top_up c now) cs;
        let wset =
          List.filter_map (fun c -> if wants_write c then Some c.fd else None)
            cs
        and rset =
          List.filter_map (fun c -> if wants_read c then Some c.fd else None)
            cs
        in
        if wset = [] && rset = [] then
          (* Nothing in flight and nothing to send on any live conn:
             every live conn is done — [finished] will stop the loop. *)
          List.iter kill (List.filter (fun c -> c.acked < c.target) cs)
        else begin
          let rready, wready, _ =
            try Unix.select rset wset [] 1.0
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun c -> if List.memq c.fd wready then flush c)
            cs;
          List.iter
            (fun c -> if List.memq c.fd rready then read_some c)
            cs;
          let infl =
            List.fold_left (fun a c -> a + outstanding c) 0 cs
          in
          if infl > !peak then peak := infl;
          infl_sum := !infl_sum +. float_of_int infl;
          incr infl_n
        end
      done;
      let submit_elapsed_s = Unix.gettimeofday () -. t_start in
      close_all (List.filter (fun c -> not c.dead) cs);
      (* Drain: poll daemon stats until every admitted job is terminal. *)
      let t_drain = Unix.gettimeofday () in
      let deadline = t_drain +. cfg.drain_timeout_s in
      let rec drain () =
        match fetch_counts cfg.socket with
        | Error e -> Error e
        | Ok now_ ->
          let terminal =
            now_.c_served - base.c_served
            + (now_.c_failed - base.c_failed)
            + (now_.c_aborted - base.c_aborted)
          in
          if terminal >= !admitted || Unix.gettimeofday () > deadline then
            Ok now_
          else begin
            Unix.sleepf 0.02;
            drain ()
          end
      in
      match drain () with
      | Error e -> Error e
      | Ok final ->
        let drain_s = Unix.gettimeofday () -. t_drain in
        let served = final.c_served - base.c_served
        and failed = final.c_failed - base.c_failed
        and aborted = final.c_aborted - base.c_aborted in
        let sorted = Array.sub lat 0 !nlat in
        Array.sort compare sorted;
        let est q =
          match
            Option.bind
              (Era_obs.Registry.find lat_reg "load_admit_latency_us")
              (fun m -> Era_obs.Registry.estimate_quantile m.Era_obs.Registry.value q)
          with
          | Some v -> v
          | None -> 0.0
        in
        Ok
          {
            submitted = !submitted;
            responded = !responded;
            admitted = !admitted;
            shed = !shed;
            errors = !errors;
            lost = max 0 (!admitted - (served + failed + aborted));
            served;
            failed;
            aborted;
            inflight_peak = !peak;
            inflight_mean =
              (if !infl_n = 0 then 0.0
               else !infl_sum /. float_of_int !infl_n);
            submit_elapsed_s;
            drain_s;
            admit_p50_us = percentile sorted 50.;
            admit_p99_us = percentile sorted 99.;
            admit_est_p50_us = est 0.5;
            admit_est_p99_us = est 0.99;
          })

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>submitted  %d (responded %d, errors %d)@,\
     admitted   %d  shed %d  lost %d@,\
     terminal   served %d  failed %d  aborted %d@,\
     in-flight  peak %d  mean %.1f@,\
     latency    p50 %.0f us  p99 %.0f us  (log2 est: p50 %.0f  p99 %.0f)@,\
     elapsed    submit %.3f s  drain %.3f s@]"
    r.submitted r.responded r.errors r.admitted r.shed r.lost r.served
    r.failed r.aborted r.inflight_peak r.inflight_mean r.admit_p50_us
    r.admit_p99_us r.admit_est_p50_us r.admit_est_p99_us r.submit_elapsed_s
    r.drain_s

module J = Era_metrics.Json

type t = { conn : Wire.conn }

let connect ?(retries = 0) ?(retry_delay_s = 0.2) ~socket () =
  let attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok { conn = Wire.conn_of_fd fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      Error (Fmt.str "connect %s: %s" socket (Unix.error_message e))
  in
  let rec go n =
    match attempt () with
    | Ok _ as r -> r
    | Error _ when n > 0 ->
      Unix.sleepf retry_delay_s;
      go (n - 1)
    | Error _ as e -> e
  in
  go retries

let close t = try Unix.close (Wire.fd t.conn) with Unix.Unix_error _ -> ()

let rpc t req =
  match
    Wire.send_json t.conn (Wire.request_to_json req);
    Wire.recv_json t.conn
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Fmt.str "daemon gone: %s" (Unix.error_message e))
  | None -> Error "daemon closed the connection"
  | Some (Error e) -> Error (Fmt.str "malformed response: %s" e)
  | Some (Ok j) -> (
    match Option.bind (J.member "ok" j) J.to_bool with
    | Some true -> Ok j
    | Some false | None ->
      Error
        (Option.value
           (Option.bind (J.member "error" j) J.to_str)
           ~default:"daemon error"))

type submit_outcome = Admitted of int | Shed of string

let ping t = Result.map (fun _ -> ()) (rpc t Wire.Ping)

let submit t ~tenant kind =
  match rpc t (Wire.Submit { tenant; kind }) with
  | Error _ as e -> e
  | Ok j -> (
    match Option.bind (J.member "status" j) J.to_str with
    | Some "queued" -> (
      match Option.bind (J.member "id" j) J.to_int with
      | Some id -> Ok (Admitted id)
      | None -> Error "queued response without an id")
    | Some "shed" ->
      Ok
        (Shed
           (Option.value
              (Option.bind (J.member "reason" j) J.to_str)
              ~default:"unknown"))
    | _ -> Error "submit response without a status")

let job_status t id =
  match rpc t (Wire.Job_status id) with
  | Error _ as e -> e
  | Ok j -> (
    match J.member "job" j with
    | Some job -> Ok job
    | None -> Error "job response without a job")

let wait_job ?(poll_s = 0.05) ?(timeout_s = 120.) t id =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match job_status t id with
    | Error _ as e -> e
    | Ok job -> (
      let status =
        Option.value
          (Option.bind (J.member "status" job) J.to_str)
          ~default:""
      in
      match Job.status_of_name status with
      | Some s when Job.terminal s -> Ok job
      | _ ->
        if Unix.gettimeofday () > deadline then
          Error (Fmt.str "timed out waiting for job %d (status %s)" id status)
        else begin
          Unix.sleepf poll_s;
          go ()
        end)
  in
  go ()

let follow t ~on_heartbeat id =
  let rec recv_stream () =
    match Wire.recv_json t.conn with
    | None -> Error "daemon closed the connection"
    | Some (Error e) -> Error (Fmt.str "malformed response: %s" e)
    | Some (Ok j) -> (
      match J.member "heartbeat" j with
      | Some hb ->
        on_heartbeat hb;
        recv_stream ()
      | None -> (
        (* Terminal line: ok + final job summary (or an error line). *)
        match Option.bind (J.member "ok" j) J.to_bool with
        | Some true -> (
          match J.member "job" j with
          | Some job -> Ok job
          | None -> Error "follow response without a job")
        | Some false | None ->
          Error
            (Option.value
               (Option.bind (J.member "error" j) J.to_str)
               ~default:"daemon error")))
  in
  match
    Wire.send_json t.conn (Wire.request_to_json (Wire.Follow id));
    recv_stream ()
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Fmt.str "daemon gone: %s" (Unix.error_message e))
  | r -> r

let jobs t =
  match rpc t Wire.Jobs with
  | Error _ as e -> e
  | Ok j -> (
    match Option.bind (J.member "jobs" j) J.to_list with
    | Some l -> Ok l
    | None -> Error "jobs response without a list")

let stats t =
  match rpc t Wire.Stats with
  | Error _ as e -> e
  | Ok j -> (
    match J.member "stats" j with
    | Some s -> Ok s
    | None -> Error "stats response without stats")

let registry t =
  match rpc t Wire.Stats with
  | Error _ as e -> e
  | Ok j -> (
    match J.member "registry" j with
    | Some s -> Ok s
    | None -> Error "stats response without a registry")

let manifest t =
  match rpc t Wire.Manifest with
  | Error _ as e -> e
  | Ok j -> (
    match J.member "manifest" j with
    | Some m -> Ok m
    | None -> Error "manifest response without a manifest")

let artifact t key =
  match rpc t (Wire.Artifact key) with
  | Error _ as e -> e
  | Ok j -> (
    match Option.bind (J.member "content" j) J.to_str with
    | Some c -> Ok c
    | None -> Error "artifact response without content")

let shutdown t ~drain =
  Result.map (fun _ -> ()) (rpc t (Wire.Shutdown { drain }))

(** Blocking client for the `era_serve` wire protocol — the CLI's
    [submit]/[jobs] subcommands and the test suite speak through this;
    the load generator ({!Load}) keeps its own non-blocking event loop
    and shares only the {!Wire} codecs. *)

type t

val connect :
  ?retries:int -> ?retry_delay_s:float -> socket:string -> unit ->
  (t, string) result
(** Connect to the daemon's Unix domain socket. [retries] (default 0)
    extra attempts spaced [retry_delay_s] (default 0.2 s) apart cover
    the daemon-still-booting race in scripts. *)

val close : t -> unit

val rpc : t -> Wire.request -> (Era_metrics.Json.t, string) result
(** One request/response round trip. [Error] on a dead daemon, a
    malformed response, or a response with [ok:false] (carrying its
    ["error"] message). *)

type submit_outcome =
  | Admitted of int  (** job id *)
  | Shed of string  (** wire reason: "tenant-cap" | "global-cap" | "closed" *)

val ping : t -> (unit, string) result
val submit : t -> tenant:string -> Job.kind -> (submit_outcome, string) result

val job_status : t -> int -> (Era_metrics.Json.t, string) result
(** The job summary object ({!Job.summary_to_json} shape). *)

val wait_job :
  ?poll_s:float -> ?timeout_s:float -> t -> int ->
  (Era_metrics.Json.t, string) result
(** Poll until the job's status is terminal (done/failed/aborted);
    default poll interval 0.05 s, timeout 120 s. *)

val follow :
  t -> on_heartbeat:(Era_metrics.Json.t -> unit) -> int ->
  (Era_metrics.Json.t, string) result
(** Stream a running job's heartbeats: [on_heartbeat] is called with
    each beat body ([{"job":…,"seq":…,"ts_s":…,"label":…,"registry":…}])
    as the daemon pushes it; returns the final job summary once the job
    is terminal. Blocks for the job's whole remaining lifetime and
    occupies the connection — don't pipeline other requests behind it. *)

val jobs : t -> (Era_metrics.Json.t list, string) result
val stats : t -> (Era_metrics.Json.t, string) result
(** The plain-int stats object (submitted/admitted/shed/served/...). *)

val registry : t -> (Era_metrics.Json.t, string) result
val manifest : t -> (Era_metrics.Json.t, string) result
val artifact : t -> string -> (string, string) result
val shutdown : t -> drain:bool -> (unit, string) result

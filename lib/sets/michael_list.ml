open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

module Make (S : Era_smr.Smr_intf.S) = struct
  (* The typestate view of the scheme (Smr_intf.GUARD): every memory
     access below takes a [`Pinned] guard, so an access outside an
     operation boundary — or a retire outside the pinned region that
     unlinked the node — does not typecheck. The guard delegates 1:1 to
     [S], so the simulated quanta are identical to the raw interface. *)
  module G = Era_smr.Smr_intf.Guard (S)

  let next = 0

  type t = {
    head : Word.t;
    tail : Word.t;
    scheme : S.t;
  }

  type h = {
    dl : t;
    s : S.tctx;
    ctx : Sched.ctx;
  }

  let create ctx scheme =
    let tail = Mem.alloc_sentinel ctx ~key:max_int in
    let head = Mem.alloc_sentinel ctx ~key:min_int in
    Mem.write ctx ~via:head ~field:next tail;
    { head; tail; scheme }

  let head_word t = t.head
  let handle dl ctx = { dl; s = S.thread dl.scheme ctx; ctx }
  let tctx h = h.s

  let is_tail h w = Word.same_bits (Word.unmark w) h.dl.tail

  (* Find the (pred, curr) window for [key], unlinking every marked node
     encountered before stepping over it. The unlink winner retires the
     node (it is the only thread that can have unlinked it). Restarts
     from the head when a CAS loses. *)
  let rec search g h key =
    G.read_phase g (fun () -> search_body g h key)

  and search_body g h key =
    let rec walk pred curr =
      if is_tail h curr then (pred, curr)
      else
        let curr_next = G.read g ~via:curr ~field:next in
        if Word.is_marked curr_next then begin
          let succ = Word.unmark curr_next in
          G.enter_write_phase g ~reserve:[ pred; curr; succ ];
          if G.cas g ~via:pred ~field:next ~expected:curr ~desired:succ
          then begin
            let (_ : _ G.t) = G.retire (G.stage_retire g curr) in
            (* Restart from the head: keeps the traversal cleanly divided
               into read phases that only dereference pointers obtained in
               the same phase (a conservative variant of Michael's
               continue-from-pred step; the native implementation keeps
               the original). *)
            search g h key
          end
          else search g h key  (* contention: restart from the head *)
        end
        else if G.read_key g ~via:curr < key then walk curr curr_next
        else (pred, curr)
    in
    let first = G.read g ~via:h.dl.head ~field:next in
    walk h.dl.head first

  let insert h key =
    if key = min_int || key = max_int then
      invalid_arg "Michael_list: sentinel key";
    G.with_pin (G.make h.s) (fun g ->
        let new_node = G.alloc g ~key in
        let rec loop () =
          let pred, curr = search g h key in
          if (not (is_tail h curr)) && G.read_key g ~via:curr = key then begin
            let (_ : _ G.t) = G.retire (G.stage_retire g new_node) in
            false
          end
          else begin
            G.write g ~via:new_node ~field:next (Word.unmark curr);
            G.enter_write_phase g ~reserve:[ pred; curr ];
            if G.cas g ~via:pred ~field:next ~expected:curr ~desired:new_node
            then true
            else loop ()
          end
        in
        loop ())

  let delete h key =
    G.with_pin (G.make h.s) (fun g ->
        let rec loop () =
          let pred, curr = search g h key in
          if is_tail h curr || G.read_key g ~via:curr <> key then false
          else begin
            let succ = G.read g ~via:curr ~field:next in
            if Word.is_marked succ then loop ()
            else begin
              G.enter_write_phase g ~reserve:[ pred; curr ];
              if
                not
                  (G.cas g ~via:curr ~field:next ~expected:succ
                     ~desired:(Word.mark succ))
              then loop ()
              else begin
                (* Unlink winner retires; on failure the node stays
                   linked-but-marked and some traversal's unlink CAS will
                   win and retire it. *)
                if G.cas g ~via:pred ~field:next ~expected:curr ~desired:succ
                then begin
                  let (_ : _ G.t) = G.retire (G.stage_retire g curr) in
                  ()
                end;
                true
              end
            end
          end
        in
        loop ())

  let contains h key =
    G.with_pin (G.make h.s) (fun g ->
        let _, curr = search g h key in
        (not (is_tail h curr)) && G.read_key g ~via:curr = key)

  let ops h ~record : Set_intf.ops =
    if record then
      {
        insert =
          (fun k ->
            Set_intf.record h.ctx ~name:"insert" [ k ] (fun () -> insert h k));
        delete =
          (fun k ->
            Set_intf.record h.ctx ~name:"delete" [ k ] (fun () -> delete h k));
        contains =
          (fun k ->
            Set_intf.record h.ctx ~name:"contains" [ k ] (fun () ->
                contains h k));
        quiesce = (fun () -> G.quiesce (G.make h.s));
      }
    else
      {
        insert = (fun k -> insert h k);
        delete = (fun k -> delete h k);
        contains = (fun k -> contains h k);
        quiesce = (fun () -> G.quiesce (G.make h.s));
      }

  let to_list h =
    G.with_pin (G.make h.s) @@ fun g ->
    G.read_phase g (fun () ->
        let rec walk w acc =
          if is_tail h w then List.rev acc
          else
            let w = Word.unmark w in
            let nxt = G.read g ~via:w ~field:next in
            let acc =
              if Word.is_marked nxt then acc else G.read_key g ~via:w :: acc
            in
            walk nxt acc
        in
        walk (G.read g ~via:h.dl.head ~field:next) [])
end

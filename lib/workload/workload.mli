(** Workload generation for the simulated data structures: operation
    mixes, key distributions, and generic per-thread drivers. *)

type mix = {
  insert_pct : int;
  delete_pct : int;
  (* contains gets the remainder *)
}

val update_heavy : mix
(** 50/50 insert/delete: the churn mixes of the paper's constructions. *)

val read_mostly : mix
(** 10% insert, 10% delete, 80% contains. *)

val balanced : mix
(** 25/25/50. *)

type key_dist =
  | Uniform of int  (** keys uniform in [1, n] *)
  | Zipf of int * float  (** [Zipf (n, s)]: Zipf over [1, n] with skew s *)

val draw_key : Era_sim.Rng.t -> key_dist -> int

val sample_keys : Era_sim.Rng.t -> key_dist -> n:int -> int array
(** [n] keys drawn up front, for hot loops that must not pay the
    per-draw cost (the Zipf inverse-CDF bisect) inside the measured
    region. Deterministic in the rng state: element [i] is the [i]-th
    draw. *)

val run_set_ops :
  Era_sets.Set_intf.ops -> Era_sim.Rng.t -> ops:int -> keys:key_dist ->
  mix:mix -> unit
(** Execute [ops] randomly drawn operations through the handle. *)

val run_stack_ops :
  Era_sets.Treiber_stack.stack_ops -> Era_sim.Rng.t -> ops:int ->
  keys:key_dist -> unit
(** 50/50 push/pop. *)

val run_queue_ops :
  Era_sets.Ms_queue.queue_ops -> Era_sim.Rng.t -> ops:int ->
  keys:key_dist -> unit
(** 50/50 enqueue/dequeue. *)

val churn_keys : base:int -> rounds:int -> (int * int) list
(** The Figure 1 churn: [[(insert k+1, delete k)]] pairs starting at
    [base], i.e. the alternating sequence T2 executes. *)

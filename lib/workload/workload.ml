module Rng = Era_sim.Rng

type mix = {
  insert_pct : int;
  delete_pct : int;
}

let update_heavy = { insert_pct = 50; delete_pct = 50 }
let read_mostly = { insert_pct = 10; delete_pct = 10 }
let balanced = { insert_pct = 25; delete_pct = 25 }

type key_dist =
  | Uniform of int
  | Zipf of int * float

(* Zipf via inverse-CDF over a precomputed table would be overkill here;
   rejection-free approximation by the harmonic partial sums, computed
   lazily per (n, s) pair. The memo table is the one piece of
   module-level mutable state in the simulation stack, so it is
   mutex-protected: parallel exploration workers (lib/explore) run
   workloads concurrently from several domains, and an unguarded
   [Hashtbl] resize is a crash. The lock is per table {e lookup}, not per
   key draw — [draw_key] hits it once per Zipf draw, never for Uniform. *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_mutex = Mutex.create ()

let zipf_cdf n s =
  Mutex.lock zipf_mutex;
  let table =
    match Hashtbl.find_opt zipf_tables (n, s) with
    | Some t -> t
    | None ->
      let t = Array.make n 0.0 in
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
        t.(i) <- !acc
      done;
      let total = !acc in
      Array.iteri (fun i v -> t.(i) <- v /. total) t;
      Hashtbl.replace zipf_tables (n, s) t;
      t
  in
  Mutex.unlock zipf_mutex;
  table

let draw_key rng = function
  | Uniform n -> 1 + Rng.int rng n
  | Zipf (n, s) ->
    let cdf = zipf_cdf n s in
    let u = Rng.float rng in
    let rec bisect lo hi =
      if lo >= hi then lo + 1
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    bisect 0 (n - 1)

(* Hot loops must not pay the Zipf bisect (20 float compares over a
   cache-hostile table) per operation: draw the keys up front into a flat
   array and let the loop index it. The explicit loop pins the draw order
   (Array.init's evaluation order is unspecified). *)
let sample_keys rng dist ~n =
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- draw_key rng dist
  done;
  a

let run_set_ops (ops : Era_sets.Set_intf.ops) rng ~ops:n ~keys ~mix =
  for _ = 1 to n do
    let k = draw_key rng keys in
    let roll = Rng.int rng 100 in
    if roll < mix.insert_pct then ignore (ops.insert k)
    else if roll < mix.insert_pct + mix.delete_pct then ignore (ops.delete k)
    else ignore (ops.contains k)
  done

let run_stack_ops (ops : Era_sets.Treiber_stack.stack_ops) rng ~ops:n ~keys =
  for _ = 1 to n do
    if Rng.bool rng then ops.push (draw_key rng keys)
    else ignore (ops.pop ())
  done

let run_queue_ops (ops : Era_sets.Ms_queue.queue_ops) rng ~ops:n ~keys =
  for _ = 1 to n do
    if Rng.bool rng then ops.enqueue (draw_key rng keys)
    else ignore (ops.dequeue ())
  done

let churn_keys ~base ~rounds =
  List.init rounds (fun i -> (base + i + 1, base + i))

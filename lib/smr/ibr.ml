open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

module type CONFIG = sig
  val allocs_per_epoch : int
  val scan_threshold : int
end

module Default_config = struct
  let allocs_per_epoch = 1
  let scan_threshold = 8
end

module type S_EXT = sig
  include Smr_intf.S

  val allocs_per_epoch : int
  val scan_threshold : int
  val current_epoch : t -> int
  val reservation : t -> int -> int * int
  val retired_backlog : t -> int
end

module Make (C : CONFIG) : S_EXT = struct
  include C

  let name = "ibr"

  let describe =
    "interval-based reclamation (2GE); easy + weakly robust, not widely \
     applicable"
  let birth_field = 0

  let integration : Integration.spec =
    {
      scheme_name = name;
      provided_as_object = true;
      insertion_points =
        [
          Integration.Op_boundaries;
          Integration.Alloc_retire_replacement;
          Integration.Primitive_replacement;
        ];
      primitives_linearizable = true;
      uses_rollback = false;
      modifies_ds_fields = false;
      added_fields = 1;
      requires_type_preservation = false;
      special_support = [];
    }

  type t = {
    nthreads : int;
    mutable epoch : int;
    mutable allocs : int;
    resv_lo : int array;
    resv_hi : int array;
    retired : (Word.t * int * int) list array;  (* node, birth, retire epoch *)
    retired_count : int array;
  }

  type tctx = { g : t; ctx : Sched.ctx }

  let create _heap ~nthreads =
    {
      nthreads;
      epoch = 0;
      allocs = 0;
      resv_lo = Array.make nthreads max_int;
      resv_hi = Array.make nthreads min_int;
      retired = Array.make nthreads [];
      retired_count = Array.make nthreads 0;
    }

  let thread g ctx = { g; ctx }
  let global t = t.g
  let current_epoch g = g.epoch
  let reservation g tid = (g.resv_lo.(tid), g.resv_hi.(tid))
  let retired_backlog g = Array.fold_left ( + ) 0 g.retired_count

  let begin_op t =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    Mem.fence t.ctx ();
    g.resv_lo.(tid) <- g.epoch;
    g.resv_hi.(tid) <- g.epoch

  let end_op t =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    Mem.fence t.ctx ();
    g.resv_lo.(tid) <- max_int;
    g.resv_hi.(tid) <- min_int

  let with_op t f =
    begin_op t;
    let r = f () in
    end_op t;
    r

  (* The epoch advances every [allocs_per_epoch] allocations, and the birth
     stamp is taken after the advance: a node allocated after a reader
     refreshed its reservation is born in a strictly later epoch. *)
  let alloc t ~key =
    let g = t.g in
    g.allocs <- g.allocs + 1;
    if g.allocs mod allocs_per_epoch = 0 then begin
      g.epoch <- g.epoch + 1;
      Mem.fence t.ctx ~event:(Event.Epoch { value = g.epoch }) ()
    end;
    let w = Mem.alloc t.ctx ~key in
    Mem.aux_set t.ctx ~via:w ~field:birth_field (Word.int g.epoch);
    w

  let birth_of t w =
    match Mem.aux_get t.ctx ~via:w ~field:birth_field with
    | Word.Int b, _ -> b
    | (Word.Null | Word.Ptr _), _ -> 0

  let intersects g ~birth ~retire_epoch =
    let conflict = ref false in
    for i = 0 to g.nthreads - 1 do
      if g.resv_lo.(i) <= retire_epoch && birth <= g.resv_hi.(i) then
        conflict := true
    done;
    !conflict

  (* One pass: keep intersecting nodes (counting as we go), reclaim the
     rest in list order — same order as the old partition-then-iterate,
     without the trailing [List.length] walk. *)
  let scan t =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    Mem.fence t.ctx ();
    let keep = ref [] in
    let kept = ref 0 in
    List.iter
      (fun ((w, birth, retire_epoch) as r) ->
        if intersects g ~birth ~retire_epoch then begin
          keep := r :: !keep;
          incr kept
        end
        else Mem.reclaim t.ctx w)
      g.retired.(tid);
    g.retired.(tid) <- List.rev !keep;
    g.retired_count.(tid) <- !kept

  let retire t w =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    let birth = birth_of t w in
    Mem.retire t.ctx w;
    g.retired.(tid) <- (w, birth, g.epoch) :: g.retired.(tid);
    g.retired_count.(tid) <- g.retired_count.(tid) + 1;
    if g.retired_count.(tid) >= scan_threshold then scan t

  (* 2GE read: refresh the reservation's upper bound to the current epoch,
     then load. Any node reachable at this point was born at or before the
     refreshed [hi], so the reservation covers it — {e provided} the node
     has not already been reclaimed, which is exactly what fails on
     Harris-style marked-chain traversals. *)
  let read t ~via ~field =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    Mem.fence t.ctx ();
    g.resv_hi.(tid) <- g.epoch;
    Mem.read t.ctx ~via ~field

  let read_key t ~via = Mem.read_key t.ctx ~via
  let write t ~via ~field v = Mem.write t.ctx ~via ~field v

  let cas t ~via ~field ~expected ~desired =
    Mem.cas t.ctx ~via ~field ~expected ~desired

  let enter_read_phase _ = ()
  let read_phase t f = enter_read_phase t; f ()
  let enter_write_phase _ ~reserve:_ = ()
  let quiesce t = scan t

end

module Impl = Make (Default_config)
include Impl
module Guard = Smr_intf.Guard (Impl)

(** Hazard pointers (Michael [32]).

    Each thread owns a small array of single-writer hazard slots. The
    [read] replacement implements the protect-validate protocol: load the
    target pointer, publish its address in a slot, re-load, and retry
    until the two loads agree. Retired nodes are scanned against the
    published slots; unprotected ones are reclaimed.

    ERA profile: {b E} (a drop-in primitive replacement) and {b R}
    (retired count bounded by [N * (threshold + slots)]), but {b not}
    widely applicable: on Harris's linked-list a validated-stable pointer
    can still reference a reclaimed node (Appendix E / Figure 2 of the
    paper), which the monitor reports as a [Stale_value_used] violation.

    {!Make} builds variants with different slot counts and scan
    thresholds — the space/time trade-off dial of Braginsky et al. [6],
    exercised by the ablation benchmarks. The toplevel include is
    [Make (Default_config)]. *)

module type CONFIG = sig
  val slots_per_thread : int
  val scan_threshold : int
end

module Default_config : CONFIG

module type S_EXT = sig
  include Smr_intf.S

  val slots_per_thread : int
  val scan_threshold : int

  val protected_addrs : t -> int list
  (** Addresses currently published in any hazard slot (tests). *)

  val retired_backlog : t -> int
  (** Total nodes sitting in retire lists (tests). *)
end

module Make (_ : CONFIG) : S_EXT

include S_EXT

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

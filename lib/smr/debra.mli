(** DEBRA+ (Brown [PODC 2015]): distributed epochs + neutralization.

    The epoch protocol is EBR's (announcements, advance when everybody is
    caught up, per-epoch limbo bags freed two epochs behind, oldest bag
    first), but an advance attempt does not wait forever: a thread that
    blocks the advance for {!patience} consecutive attempts is
    {e neutralized} — its announcement is cleared on its behalf and a
    pending signal (scheduler-mediated, as in {!Nbr}) aborts its
    in-progress operation at the next shared-memory access. [with_op]
    plays the role of DEBRA+'s sigsetjmp: the aborted operation restarts
    from the top, with the aborted attempt's fresh allocations returned
    to the system.

    ERA profile: {b E} (the author-facing surface is exactly EBR's — no
    phases, no reservations, restarts live in the runtime) and {b R}
    (a stalled thread is neutralized, so the epoch keeps advancing and
    the backlog stays bounded), but {b not} widely applicable: a restart
    can fire after an operation's linearization point, so operations
    that are not restart-idempotent (a list delete past its marking CAS,
    a queue enqueue past its link CAS) return wrong results — the
    deterministic neutralization scenario in {!Era.Applicability} and
    the explorer both exhibit this. *)

include Smr_intf.S

val patience : int
(** Failed advance attempts tolerated per laggard before neutralizing. *)

val current_epoch : t -> int

val announced : t -> int -> int
(** [-1] means quiescent. *)

val neutralizations : t -> int
(** Total neutralization signals sent (tests / benchmarks). *)

val restarts : t -> int
(** Operations restarted after observing a neutralization. *)

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

(* DEBRA+ (Brown, PODC 2015): distributed epoch-based reclamation with
   signal-driven neutralization. The epoch side is EBR's protocol
   (per-thread announcements, advance when everybody caught up, per-epoch
   limbo bags freed two epochs behind); the twist is that an advance
   attempt which finds a thread lagging for [patience] consecutive
   attempts neutralizes it instead of waiting: the laggard's announcement
   is force-cleared so the epoch can move, and a pending signal makes the
   laggard's very next shared-memory access abort its operation and
   restart it from the top ([with_op] is the sigsetjmp point).

   Integration surface: identical to EBR's (operation boundaries plus
   alloc/retire/primitive replacement). Unlike NBR there are no phase
   annotations and no reservations — the data-structure author writes
   nothing scheme-specific, which is what keeps DEBRA+ on the "easy" side
   of Definition 5.3. The price is applicability: because a restart can
   fire *after* an operation's linearization point (e.g. between a
   delete's marking CAS and its return), operations that are not
   restart-idempotent come back with wrong return values — the explorer
   and the deterministic neutralization scenario in [Applicability] find
   exactly this. *)

open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

module Impl = struct

let name = "debra"

let describe =
  "DEBRA+ (distributed epochs + neutralization, Brown); easy + robust, \
   restarts break non-idempotent operations"

(* How many failed advance attempts tolerate the same laggard before it
   is neutralized. Small, so Figure-1-style stalls are cut short within a
   couple of churn rounds. *)
let patience = 3

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [
        Integration.Op_boundaries;
        Integration.Alloc_retire_replacement;
        Integration.Primitive_replacement;
      ];
    primitives_linearizable = true;
    (* Restarts are encapsulated in [with_op] (the runtime's siglongjmp),
       not written by the data-structure author — the integration surface
       is EBR's. Operations must nonetheless *tolerate* a restart from
       the top, and the ones that don't are an applicability loss, not an
       integration burden; the audit judges the author-facing surface. *)
    uses_rollback = false;
    modifies_ds_fields = false;
    added_fields = 0;
    requires_type_preservation = false;
    special_support = [ "lock-free OS signals (simulated by the scheduler)" ];
  }

let quiescent = -1

type t = {
  nthreads : int;
  mutable epoch : int;
  announce : int array;
  flag : bool array;  (* pending neutralization signal *)
  lag : int array;  (* consecutive advance attempts blocked on thread i *)
  (* per-thread limbo bags: (retire epoch, nodes) newest first; freed
     oldest bag first once the epoch is two behind. *)
  buckets : (int * Word.t list) list array;
  mutable neutralize_count : int;
  mutable restart_count : int;
}

type tctx = {
  g : t;
  ctx : Sched.ctx;
  mutable fresh : Word.t list;  (* allocations of the in-progress op *)
}

let create _heap ~nthreads =
  {
    nthreads;
    epoch = 0;
    announce = Array.make nthreads quiescent;
    flag = Array.make nthreads false;
    lag = Array.make nthreads 0;
    buckets = Array.make nthreads [];
    neutralize_count = 0;
    restart_count = 0;
  }

let thread g ctx = { g; ctx; fresh = [] }
let global t = t.g
let current_epoch g = g.epoch
let announced g tid = g.announce.(tid)
let neutralizations g = g.neutralize_count
let restarts g = g.restart_count

(* Signal semantics, as in NBR: the flag test and the subsequent memory
   access share a scheduling quantum, so a pending "signal" is always
   observed before the next instruction touches shared memory — POSIX
   synchronous delivery. DEBRA+ has no uninterruptible write phase: any
   access point may abort. *)
let check_signal t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  if g.flag.(tid) then begin
    g.flag.(tid) <- false;
    raise Smr_intf.Neutralized
  end

(* Free this thread's bags whose epoch is at most [global - 2], oldest
   bag first (nim-debra's limbo walk). *)
let reclaim_eligible t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  let horizon = g.epoch - 2 in
  let eligible, kept =
    List.partition (fun (e, _) -> e <= horizon) g.buckets.(tid)
  in
  g.buckets.(tid) <- kept;
  List.iter
    (fun (_, nodes) -> List.iter (fun w -> Mem.reclaim t.ctx w) nodes)
    (List.rev eligible)

(* Advance the global epoch. A thread that blocks the advance accrues
   lag; past [patience] it is neutralized — its announcement is cleared
   on its behalf and a signal is left pending, so its next access
   restarts the operation (it can never act on the stale epoch: the
   flag test precedes every access in the same quantum). *)
let try_advance t =
  let g = t.g in
  let e = g.epoch in
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  let all_caught_up = ref true in
  for i = 0 to g.nthreads - 1 do
    let a = g.announce.(i) in
    if a <> quiescent && a < e then
      if i = tid then g.announce.(i) <- e (* self-lag: just re-announce *)
      else begin
        g.lag.(i) <- g.lag.(i) + 1;
        if g.lag.(i) >= patience then begin
          (* Neutralize: pend the signal, then clear the laggard's
             announcement so this advance (and later ones) proceed. *)
          g.flag.(i) <- true;
          g.neutralize_count <- g.neutralize_count + 1;
          Mem.fence t.ctx ~event:(Event.Neutralize { by = tid; target = i }) ();
          g.announce.(i) <- quiescent;
          g.lag.(i) <- 0
        end
        else all_caught_up := false
      end
    else g.lag.(i) <- 0
  done;
  if !all_caught_up then begin
    g.epoch <- e + 1;
    Mem.fence t.ctx ~event:(Event.Epoch { value = e + 1 }) ()
  end

let begin_op t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  g.announce.(tid) <- g.epoch;
  g.lag.(tid) <- 0;
  try_advance t;
  reclaim_eligible t

let end_op t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  g.announce.(tid) <- quiescent;
  (* A signal that arrived after the operation's last access is consumed
     now, when it is harmless: the op made no further use of the heap. *)
  if g.flag.(tid) then g.flag.(tid) <- false

(* Return allocations of an aborted operation to the system. They are
   provably unreachable: an allocation becomes shared only through a
   successful CAS, after which the node is no longer [Local]. *)
let drop_fresh t =
  List.iter
    (fun w ->
      match Heap.validity t.ctx.Sched.heap w with
      | Heap.Valid -> (
        match Heap.cell_state t.ctx.Sched.heap ~addr:(Word.addr_exn w) with
        | Lifecycle.Local _ ->
          Mem.retire t.ctx w;
          Mem.reclaim t.ctx w
        | Lifecycle.Unallocated | Shared | Retired -> ())
      | Heap.Invalid_unallocated | Invalid_reused | Invalid_system -> ())
    t.fresh;
  t.fresh <- []

let with_op t f =
  let rec attempt () =
    begin_op t;
    t.fresh <- [];
    match f () with
    | r ->
      end_op t;
      r
    | exception Smr_intf.Neutralized ->
      t.g.restart_count <- t.g.restart_count + 1;
      drop_fresh t;
      attempt ()
  in
  attempt ()

let alloc t ~key =
  Sched.yield t.ctx;
  check_signal t;
  let w = Heap.alloc t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~key in
  t.fresh <- w :: t.fresh;
  w

let retire t w =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.retire t.ctx w;
  let e = g.epoch in
  (g.buckets.(tid) <-
    (match g.buckets.(tid) with
    | (e', nodes) :: rest when e' = e -> (e, w :: nodes) :: rest
    | l -> (e, [ w ]) :: l));
  reclaim_eligible t

(* Signal-interruptible accesses: yield, then flag-test + access in one
   atomic quantum. *)
let read t ~via ~field =
  Sched.yield t.ctx;
  check_signal t;
  Heap.read_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via ~field

let read_key t ~via =
  Sched.yield t.ctx;
  check_signal t;
  Heap.read_key_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via

let write t ~via ~field value =
  Sched.yield t.ctx;
  check_signal t;
  Heap.write_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via ~field value

let cas t ~via ~field ~expected ~desired =
  Sched.yield t.ctx;
  check_signal t;
  Heap.cas_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via ~field ~expected
    ~desired

(* No phase structure: a neutralization always restarts the whole
   operation (propagates to [with_op]) — the contrast with NBR, whose
   write phases delay the signal and whose read phases restart locally. *)
let enter_read_phase _ = ()
let read_phase _t f = f ()
let enter_write_phase _ ~reserve:_ = ()

let quiesce t =
  try_advance t;
  reclaim_eligible t

end

include Impl
module Guard = Smr_intf.Guard (Impl)

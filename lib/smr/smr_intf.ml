(** The uniform interface every simulated reclamation scheme implements.

    The data structures in [Era_sets] are functorized over this signature,
    so one Harris-list (etc.) source integrates with every scheme. The
    interface is the union of what the paper's Definition 5.3 allows for
    easily-integrated schemes (operation boundaries, [alloc]/[retire]
    replacements, primitive replacements) and the extra hooks that
    hard-integration schemes need ({!S.with_op} restart scopes for
    VBR-style roll-backs and NBR-style neutralization,
    {!S.enter_read_phase}/{!S.enter_write_phase} phase annotations).
    Easy schemes implement the extra hooks as no-ops; which hooks a scheme
    {e requires} is recorded in its {!Integration.spec}, and that record —
    not the OCaml signature — is what the Definition 5.3 audit judges. *)

open Era_sim

module type S = sig
  val name : string
  val describe : string

  val integration : Integration.spec

  type t
  (** Global scheme state (epoch counters, hazard arrays, ...). *)

  type tctx
  (** Per-thread state bound to a scheduler context. *)

  val create : Heap.t -> nthreads:int -> t
  val thread : t -> Era_sched.Sched.ctx -> tctx
  val global : tctx -> t

  (** {2 Operation boundaries (Definition 5.3(2)(1))} *)

  val begin_op : tctx -> unit
  val end_op : tctx -> unit

  val with_op : tctx -> (unit -> 'a) -> 'a
  (** [with_op t f] brackets [f] with {!begin_op}/{!end_op} and provides
      the scheme's restart semantics: VBR re-runs [f] after a roll-back,
      NBR re-runs it after a neutralization. For easy schemes it is
      exactly [begin_op; f (); end_op]. [f] must therefore be written
      restartable (standard for lock-free retry loops). *)

  (** {2 Allocation and retirement (Definition 5.3(2)(2))} *)

  val alloc : tctx -> key:int -> Word.t

  val retire : tctx -> Word.t -> unit
  (** May trigger reclamation of eligible previously-retired nodes. *)

  (** {2 Primitive replacements (Definition 5.3(2)(3))} *)

  val read : tctx -> via:Word.t -> field:int -> Word.t
  (** Linearizable replacement for a pointer-field load; may protect /
      validate / retry internally. The returned word is safe to use iff
      the scheme is applicable to the calling data structure — when it is
      not (e.g. HP on Harris's list), the monitor records the violation. *)

  val read_key : tctx -> via:Word.t -> int
  val write : tctx -> via:Word.t -> field:int -> Word.t -> unit

  val cas :
    tctx -> via:Word.t -> field:int ->
    expected:Word.t -> desired:Word.t -> bool

  (** {2 Phase annotations (NBR-style; no-ops for other schemes)} *)

  val read_phase : tctx -> (unit -> 'a) -> 'a
  (** [read_phase t body] brackets a restartable read phase (ending, if
      the body enters one, with its write phase): NBR re-runs [body] after
      a neutralization, VBR re-runs it after a version roll-back (the
      bracket is VBR's "checkpoint"). Restart granularity matters for
      correctness: an operation that already performed an effect (e.g.
      Harris's delete after its marking CAS) must not be restarted from
      the top, only its in-progress traversal may be — which is exactly
      what bracketing each traversal gives. For easy schemes this is
      [enter_read_phase t; body ()]. [body] must be safe to re-execute
      from its start. *)

  val enter_read_phase : tctx -> unit

  val enter_write_phase : tctx -> reserve:Word.t list -> unit
  (** Publish write-set reservations obtained during the read phase. *)

  (** {2 Maintenance} *)

  val quiesce : tctx -> unit
  (** Best-effort: flush this thread's retire lists if currently eligible
      (tests use it to assert leak-freedom at quiescence). *)
end

(** Exceptions used by hard-integration schemes to restart an operation;
    they never escape {!S.with_op}. *)
exception Rollback
exception Neutralized

(** {1 Typestate integration guards}

    A phantom-typed view of {!S} that turns Definition 5.3's integration
    lifecycle into types (the nim-debra shape, DESIGN.md §7.2): a guard
    is [`Unpinned] until an operation boundary opens, [`Pinned] inside
    one, and [`Retire_ready] once a node has been staged for retirement.
    Memory accesses and allocation demand a [`Pinned] guard and
    retirement a [`Retire_ready] one, so "retire while unpinned",
    "dereference after unpin" and "retire without staging" are rejected
    by the type checker — no runtime state machine, no checks on the hot
    path (see [test/typestate_rejects/]). The guard is a zero-cost
    delegation layer: every operation forwards 1:1 to the underlying
    scheme, so simulated quanta are unchanged and explorer goldens do
    not drift. *)

module type GUARD = sig
  type tctx
  (** The underlying scheme's per-thread state ({!S.tctx}). *)

  type 's t
  (** A guard whose phantom parameter ['s] is its lifecycle state:
      [[`Unpinned]], [[`Pinned]] or [[`Retire_ready]]. The state is
      advanced by returning a {e new} guard; stale aliases of consumed
      guards are not detected (OCaml has no linearity) — the typestate
      stops wrong-state calls, which is what Definition 5.3 needs. *)

  val make : tctx -> [ `Unpinned ] t
  (** Entry point: a quiescent guard for this thread. *)

  val with_pin : [ `Unpinned ] t -> ([ `Pinned ] t -> 'a) -> 'a
  (** The operation bracket, via {!S.with_op}: opens an operation
      boundary, runs the body with a pinned guard, closes the boundary —
      and re-invokes the body with a {e fresh} pinned guard whenever the
      scheme restarts the operation (VBR roll-back, NBR/DEBRA+
      neutralization), so partially-advanced guards from an aborted
      attempt cannot leak into the retry. *)

  val pin : [ `Unpinned ] t -> [ `Pinned ] t
  (** Bare {!S.begin_op}, for code that manages its own boundary (e.g.
      stall injection in tests). Restart-driven schemes need
      {!with_pin}: a restart raised outside {!S.with_op} escapes. *)

  val unpin : [ `Pinned ] t -> [ `Unpinned ] t
  (** Bare {!S.end_op}. The returned guard no longer reads or writes. *)

  (** {2 Pinned-only operations} *)

  val read : [ `Pinned ] t -> via:Word.t -> field:int -> Word.t
  val read_key : [ `Pinned ] t -> via:Word.t -> int
  val write : [ `Pinned ] t -> via:Word.t -> field:int -> Word.t -> unit

  val cas :
    [ `Pinned ] t -> via:Word.t -> field:int ->
    expected:Word.t -> desired:Word.t -> bool

  val alloc : [ `Pinned ] t -> key:int -> Word.t
  val read_phase : [ `Pinned ] t -> (unit -> 'a) -> 'a
  val enter_write_phase : [ `Pinned ] t -> reserve:Word.t list -> unit

  (** {2 Retirement: stage, then commit} *)

  val stage_retire : [ `Pinned ] t -> Word.t -> [ `Retire_ready ] t
  (** Record an unlinked node for retirement. Staging requires a pinned
      guard, so a node can only ever be retired from inside the
      operation that unlinked it. *)

  val retire : [ `Retire_ready ] t -> [ `Pinned ] t
  (** Commit the staged retirement ({!S.retire}) and drop back to
      [`Pinned]. *)

  (** {2 Unpinned-only maintenance} *)

  val quiesce : [ `Unpinned ] t -> unit
  (** {!S.quiesce}; demanding [`Unpinned] makes "flush my limbo bags
      while I still hold an operation open" unrepresentable. *)
end

module Guard (S : S) : GUARD with type tctx = S.tctx = struct
  type tctx = S.tctx

  (* One record for every state; the phantom index alone moves. [staged]
     is only meaningful at [`Retire_ready] and holds [Word.null]
     otherwise. *)
  type 's t = { s : S.tctx; staged : Word.t }

  let make s = { s; staged = Word.null }
  let with_pin g f = S.with_op g.s (fun () -> f { g with staged = Word.null })

  let pin g =
    S.begin_op g.s;
    { g with staged = Word.null }

  let unpin g =
    S.end_op g.s;
    { g with staged = Word.null }

  let read g = S.read g.s
  let read_key g = S.read_key g.s
  let write g = S.write g.s
  let cas g = S.cas g.s
  let alloc g = S.alloc g.s
  let read_phase g f = S.read_phase g.s f
  let enter_write_phase g = S.enter_write_phase g.s
  let stage_retire g w = { g with staged = w }

  let retire g =
    S.retire g.s g.staged;
    { g with staged = Word.null }

  let quiesce g = S.quiesce g.s
end

(* A reusable scratch set of published integers (hazard addresses for
   HP, eras for HE, epochs if a scheme wants them) shared by the scan
   paths. Scans used to rebuild a list per pass and probe it with
   [List.mem] — O(retired x hazards) with an allocation per slot; this
   keeps one growable buffer per scheme instance, sorts it in place, and
   answers membership / interval queries by binary search. *)

type t = {
  mutable data : int array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 16 0; len = 0; sorted = true }

let clear t =
  t.len <- 0;
  t.sorted <- true

let length t = t.len

let add t v =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0 in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false

(* In-place insertion sort: hazard sets are tiny (threads x slots) and
   often nearly sorted, and this allocates nothing. *)
let sort t =
  if not t.sorted then begin
    let a = t.data in
    for i = 1 to t.len - 1 do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done;
    t.sorted <- true
  end

(* Index of the first element >= v, or len if none. *)
let lower_bound t v =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.data.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let mem t v =
  sort t;
  let i = lower_bound t v in
  i < t.len && t.data.(i) = v

let exists_in_range t ~lo ~hi =
  sort t;
  let i = lower_bound t lo in
  i < t.len && t.data.(i) <= hi

open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

module type CONFIG = sig
  val slots_per_thread : int
  val scan_threshold : int
end

module Default_config = struct
  let slots_per_thread = 3
  let scan_threshold = 8
end

module type S_EXT = sig
  include Smr_intf.S

  val slots_per_thread : int
  val scan_threshold : int
  val protected_addrs : t -> int list
  val retired_backlog : t -> int
end

module Make (C : CONFIG) : S_EXT = struct
  include C

  let name = "hp"

  let describe =
    "hazard pointers (Michael); easy + robust, not widely applicable"

  let integration : Integration.spec =
    {
      scheme_name = name;
      provided_as_object = true;
      insertion_points =
        [
          Integration.Op_boundaries;
          Integration.Alloc_retire_replacement;
          Integration.Primitive_replacement;
        ];
      primitives_linearizable = true;
      uses_rollback = false;
      modifies_ds_fields = false;
      added_fields = 0;
      requires_type_preservation = false;
      special_support = [];
    }

  type t = {
    nthreads : int;
    hp : Word.t array array;  (* [tid].(slot); Null = empty *)
    retired : Word.t list array;
    retired_count : int array;
    hz : Hazards.t;  (* scan-time scratch of protected addresses *)
  }

  type tctx = {
    g : t;
    ctx : Sched.ctx;
    mutable rot : int;
  }

  let create _heap ~nthreads =
    {
      nthreads;
      hp = Array.init nthreads (fun _ -> Array.make slots_per_thread Word.Null);
      retired = Array.make nthreads [];
      retired_count = Array.make nthreads 0;
      hz = Hazards.create ();
    }

  let thread g ctx = { g; ctx; rot = 0 }
  let global t = t.g

  let protected_addrs g =
    Array.to_list g.hp
    |> List.concat_map Array.to_list
    |> List.filter_map (function
         | Word.Ptr p -> Some p.addr
         | Word.Null | Word.Int _ -> None)

  let retired_backlog g = Array.fold_left ( + ) 0 g.retired_count

  let clear_slots t =
    let tid = t.ctx.Sched.tid in
    Mem.fence t.ctx ();
    Array.fill t.g.hp.(tid) 0 slots_per_thread Word.Null

  let begin_op t =
    t.rot <- 0;
    clear_slots t

  let end_op t = clear_slots t

  let with_op t f =
    begin_op t;
    let r = f () in
    end_op t;
    r

  let alloc t ~key = Mem.alloc t.ctx ~key

  (* Scan: snapshot every published hazard address into the reusable
     scratch set, then walk this thread's retired list once, keeping
     protected nodes (counted as we go) and reclaiming the rest in the
     same order the two-pass version did. *)
  let scan t =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    Mem.fence t.ctx ();
    Hazards.clear g.hz;
    Array.iter
      (fun slots ->
        Array.iter
          (function
            | Word.Ptr p -> Hazards.add g.hz p.Word.addr
            | Word.Null | Word.Int _ -> ())
          slots)
      g.hp;
    let keep = ref [] in
    let kept = ref 0 in
    List.iter
      (fun w ->
        if Hazards.mem g.hz (Word.addr_exn w) then begin
          keep := w :: !keep;
          incr kept
        end
        else Mem.reclaim t.ctx w)
      g.retired.(tid);
    g.retired.(tid) <- List.rev !keep;
    g.retired_count.(tid) <- !kept

  let retire t w =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    Mem.retire t.ctx w;
    g.retired.(tid) <- w :: g.retired.(tid);
    g.retired_count.(tid) <- g.retired_count.(tid) + 1;
    if g.retired_count.(tid) >= scan_threshold then scan t

  let publish t w =
    let g = t.g in
    let tid = t.ctx.Sched.tid in
    let slot = t.rot mod slots_per_thread in
    let clean = Word.unmark w in
    g.hp.(tid).(slot) <- clean;
    Mem.fence t.ctx
      ~event:
        (Event.Protect
           { tid; slot; addr = Word.addr_exn clean; node = Word.node_exn clean })
      ()

  (* Protect-validate loop. Both loads are checked reads: if [via] itself is
     invalid the protocol has already been defeated and the monitor flags
     the use. *)
  let read t ~via ~field =
    let rec loop () =
      let w = Mem.read t.ctx ~via ~field in
      match w with
      | Word.Null | Word.Int _ -> w
      | Word.Ptr _ ->
        publish t w;
        let w' = Mem.read t.ctx ~via ~field in
        if Word.same_bits w w' then begin
          t.rot <- t.rot + 1;
          w'
        end
        else loop ()
    in
    loop ()

  let read_key t ~via = Mem.read_key t.ctx ~via
  let write t ~via ~field v = Mem.write t.ctx ~via ~field v

  let cas t ~via ~field ~expected ~desired =
    Mem.cas t.ctx ~via ~field ~expected ~desired

  let enter_read_phase _ = ()
  let read_phase t f = enter_read_phase t; f ()
  let enter_write_phase _ ~reserve:_ = ()
  let quiesce t = scan t

end

module Impl = Make (Default_config)
include Impl
module Guard = Smr_intf.Guard (Impl)

type scheme = (module Smr_intf.S)

let all : scheme list =
  [
    (module None_scheme);
    (module Ebr);
    (module Hp);
    (module Ibr);
    (module He);
    (module Rc);
    (module Vbr);
    (module Nbr);
    (module Debra);
  ]

let name_of (module S : Smr_intf.S) = S.name

let find name = List.find_opt (fun s -> name_of s = name) all

let find_exn name =
  match find name with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Registry: unknown scheme %S" name)

let names = List.map name_of all

let integration_of (module S : Smr_intf.S) = S.integration

let easily_integrated s = fst (Integration.easily_integrated (integration_of s))

open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

module Impl = struct

let name = "ebr"
let describe = "epoch-based reclamation (Fraser); easy + strongly applicable"

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [ Integration.Op_boundaries; Integration.Alloc_retire_replacement ];
    primitives_linearizable = true;
    uses_rollback = false;
    modifies_ds_fields = false;
    added_fields = 0;
    requires_type_preservation = false;
    special_support = [];
  }

let quiescent = -1

type t = {
  nthreads : int;
  mutable epoch : int;
  announce : int array;
  (* per-thread retire buckets: (retire epoch, nodes) newest first *)
  buckets : (int * Word.t list) list array;
}

type tctx = { g : t; ctx : Sched.ctx }

let create _heap ~nthreads =
  {
    nthreads;
    epoch = 0;
    announce = Array.make nthreads quiescent;
    buckets = Array.make nthreads [];
  }

let thread g ctx = { g; ctx }
let global t = t.g
let current_epoch g = g.epoch
let announced g tid = g.announce.(tid)

(* Reclaim this thread's buckets whose epoch is at most [global - 2]. *)
let reclaim_eligible t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  let horizon = g.epoch - 2 in
  let eligible, kept =
    List.partition (fun (e, _) -> e <= horizon) g.buckets.(tid)
  in
  g.buckets.(tid) <- kept;
  List.iter
    (fun (_, nodes) -> List.iter (fun w -> Mem.reclaim t.ctx w) nodes)
    eligible

(* Advance the global epoch if every thread has announced it (or is
   quiescent) — the paper's Appendix A protocol, attempted in begin_op. *)
let try_advance t =
  let g = t.g in
  let e = g.epoch in
  Mem.fence t.ctx ();
  let all_caught_up =
    let ok = ref true in
    for i = 0 to g.nthreads - 1 do
      let a = g.announce.(i) in
      if a <> quiescent && a < e then ok := false
    done;
    !ok
  in
  if all_caught_up then begin
    g.epoch <- e + 1;
    Mem.fence t.ctx ~event:(Event.Epoch { value = e + 1 }) ()
  end

let begin_op t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  g.announce.(tid) <- g.epoch;
  try_advance t;
  reclaim_eligible t

let end_op t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  g.announce.(tid) <- quiescent

let with_op t f =
  begin_op t;
  let r = f () in
  end_op t;
  r

let alloc t ~key = Mem.alloc t.ctx ~key

let retire t w =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.retire t.ctx w;
  let e = g.epoch in
  (g.buckets.(tid) <-
    (match g.buckets.(tid) with
    | (e', nodes) :: rest when e' = e -> (e, w :: nodes) :: rest
    | l -> (e, [ w ]) :: l));
  reclaim_eligible t

let read t ~via ~field = Mem.read t.ctx ~via ~field
let read_key t ~via = Mem.read_key t.ctx ~via
let write t ~via ~field v = Mem.write t.ctx ~via ~field v

let cas t ~via ~field ~expected ~desired =
  Mem.cas t.ctx ~via ~field ~expected ~desired

let enter_read_phase _ = ()
let read_phase t f = enter_read_phase t; f ()
let enter_write_phase _ ~reserve:_ = ()

let quiesce t =
  try_advance t;
  reclaim_eligible t

end

include Impl
module Guard = Smr_intf.Guard (Impl)

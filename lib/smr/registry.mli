(** All reclamation schemes in the library, as first-class modules.

    Experiments and tests iterate this list to build the paper's
    per-scheme verdict tables. *)

type scheme = (module Smr_intf.S)

val all : scheme list
(** none, ebr, hp, ibr, he, rc, vbr, nbr, debra — in that order. *)

val find : string -> scheme option
val find_exn : string -> scheme
val names : string list

val easily_integrated : scheme -> bool
(** Definition 5.3 audit of the scheme's integration spec. *)

val name_of : scheme -> string
val integration_of : scheme -> Integration.spec

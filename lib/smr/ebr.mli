(** Epoch-based reclamation (Fraser [16], Harris [19], DEBRA's ancestor).

    Exactly the scheme of the paper's Appendix A: a global epoch counter,
    a per-thread announcement array written in [begin_op] and cleared (to
    quiescent) in [end_op], and three per-thread retire buckets; the
    bucket of epoch [e] is reclaimable once the global epoch reaches
    [e + 2].

    ERA profile: {b E} (two op-boundary calls, nothing else) and {b A}
    ({e strongly} applicable, Appendix A), but {b not} robust — a single
    stalled thread pins the epoch and every subsequently retired node
    leaks (the Figure 1 execution). *)

include Smr_intf.S

val current_epoch : t -> int
val announced : t -> int -> int
(** [-1] means quiescent. *)

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

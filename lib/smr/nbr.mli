(** Neutralization-based reclamation (Singh, Brown & Mashtizadeh [39]).

    The plain implementation must be divided into read phases and write
    phases (the access-aware discipline of the paper's Appendix C). Read
    phases run unprotected; before a write phase the thread publishes
    reservations for the nodes it will touch. A reclaiming thread first
    {e neutralizes} every other thread (in the original: a POSIX signal
    whose handler longjmps read-phase threads back to their phase start),
    then reclaims every retired node that no thread has reserved.

    The simulation substitutes scheduler-mediated signals for POSIX ones
    (see DESIGN.md): setting a thread's neutralization flag guarantees —
    like a pending signal — that the target executes no further memory
    access before observing it, because the flag test and the access
    happen inside one atomic scheduling quantum.

    ERA profile: {b R} (only reserved nodes survive a reclamation pass)
    and {b A} (applicable to every access-aware implementation, Harris's
    list included), but {b not} E: phase annotations and restarts are
    exactly what Definition 5.3 rules out. *)

include Smr_intf.S

val retire_cap : int
val neutralizations : t -> int
(** Total neutralization signals sent (tests / benchmarks). *)

val restarts : t -> int
(** Operations restarted after observing a neutralization. *)

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

module Impl = struct

let name = "vbr"
let describe =
  "version-based reclamation; robust (constant bound) + widely applicable, \
   hard integration (checkpoints/roll-backs)"

let retire_cap = 8

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [
        Integration.Op_boundaries;
        Integration.Alloc_retire_replacement;
        Integration.Primitive_replacement;
        Integration.Checkpoints;
      ];
    primitives_linearizable = true;
    uses_rollback = true;
    modifies_ds_fields = false;
    added_fields = 1;
    requires_type_preservation = true;
    special_support = [ "wide CAS" ];
  }

type t = {
  heap : Heap.t;
  mutable epoch : int;
  retired : Word.t list array;
  retired_count : int array;
  mutable rollback_count : int;
}

type tctx = {
  g : t;
  ctx : Sched.ctx;
  mutable fresh : Word.t list;  (* allocated during the current attempt *)
}

let create heap ~nthreads =
  {
    heap;
    epoch = 0;
    retired = Array.make nthreads [];
    retired_count = Array.make nthreads 0;
    rollback_count = 0;
  }

let thread g ctx = { g; ctx; fresh = [] }
let global t = t.g
let current_epoch g = g.epoch
let rollbacks g = g.rollback_count

let begin_op t = t.fresh <- []
let end_op t = t.fresh <- []

(* Reclaim the local nodes allocated by an aborted attempt (they are
   still private, so recycling them immediately is trivially safe). *)
let drop_fresh t =
  List.iter
    (fun w ->
      match Heap.validity t.g.heap w with
      | Heap.Valid -> (
        match Heap.cell_state t.g.heap ~addr:(Word.addr_exn w) with
        | Lifecycle.Local _ ->
          Mem.retire t.ctx w;
          Mem.reclaim t.ctx w
        | Lifecycle.Unallocated | Shared | Retired -> ())
      | Heap.Invalid_unallocated | Invalid_reused | Invalid_system -> ())
    t.fresh;
  t.fresh <- []

let with_op t f =
  let rec attempt () =
    begin_op t;
    match f () with
    | r ->
      end_op t;
      r
    | exception Smr_intf.Rollback ->
      t.g.rollback_count <- t.g.rollback_count + 1;
      drop_fresh t;
      attempt ()
  in
  attempt ()

let alloc t ~key =
  let w = Mem.alloc t.ctx ~key in
  Mem.aux_set t.ctx ~via:w ~field:0 (Word.int t.g.epoch);
  t.fresh <- w :: t.fresh;
  w

(* Retirement recycles aggressively: when the local list reaches the cap,
   bump the global version epoch and recycle the whole list. Readers that
   still hold pointers into it will fail validation and roll back. *)
let retire t w =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.retire t.ctx w;
  g.retired.(tid) <- w :: g.retired.(tid);
  g.retired_count.(tid) <- g.retired_count.(tid) + 1;
  if g.retired_count.(tid) >= retire_cap then begin
    g.epoch <- g.epoch + 1;
    Mem.fence t.ctx ~event:(Event.Epoch { value = g.epoch }) ();
    List.iter (fun n -> Mem.reclaim t.ctx n) g.retired.(tid);
    g.retired.(tid) <- [];
    g.retired_count.(tid) <- 0
  end

(* Optimistic read: peek, validate the version (= node identity), roll
   back on mismatch. The peeked value is discarded on the failure path,
   so Definition 4.2(3) is respected. *)
let read t ~via ~field =
  let w, v = Mem.peek t.ctx ~via ~field in
  match v with
  | Heap.Valid -> w
  | Heap.Invalid_unallocated | Invalid_reused | Invalid_system ->
    raise Smr_intf.Rollback

let read_key t ~via =
  let k, v = Mem.peek_key t.ctx ~via in
  match v with
  | Heap.Valid -> k
  | Heap.Invalid_unallocated | Invalid_reused | Invalid_system ->
    raise Smr_intf.Rollback

let write t ~via ~field value = Mem.write t.ctx ~via ~field value

let cas t ~via ~field ~expected ~desired =
  Mem.cas_identity t.ctx ~via ~field ~expected ~desired

let enter_read_phase _ = ()

(* The bracket is VBR's checkpoint: a failed validation rolls back to the
   start of the current traversal, not the operation — crucial when the
   operation has already taken effect (e.g. Harris's delete after its
   marking CAS re-runs only the line-51 search). *)
let read_phase t f =
  let rec go () =
    match f () with
    | r -> r
    | exception Smr_intf.Rollback ->
      t.g.rollback_count <- t.g.rollback_count + 1;
      go ()
  in
  go ()

let enter_write_phase _ ~reserve:_ = ()
let quiesce _ = ()

end

include Impl
module Guard = Smr_intf.Guard (Impl)

open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

module Impl = struct

let name = "he"
let describe = "hazard eras; easy + robust (liberal bound), not widely applicable"

let slots_per_thread = 3
let allocs_per_era = 1
let scan_threshold = 8
let birth_field = 0
let no_era = -1

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [
        Integration.Op_boundaries;
        Integration.Alloc_retire_replacement;
        Integration.Primitive_replacement;
      ];
    primitives_linearizable = true;
    uses_rollback = false;
    modifies_ds_fields = false;
    added_fields = 1;
    requires_type_preservation = false;
    special_support = [ "wide CAS (in the original; not needed here)" ];
  }

type t = {
  nthreads : int;
  mutable era : int;
  mutable allocs : int;
  slots : int array array;  (* published eras; [no_era] = empty *)
  retired : (Word.t * int * int) list array;  (* node, birth, retire era *)
  retired_count : int array;
  hz : Hazards.t;  (* scan-time scratch of published eras *)
}

type tctx = {
  g : t;
  ctx : Sched.ctx;
  mutable rot : int;
}

let create _heap ~nthreads =
  {
    nthreads;
    era = 0;
    allocs = 0;
    slots = Array.init nthreads (fun _ -> Array.make slots_per_thread no_era);
    retired = Array.make nthreads [];
    retired_count = Array.make nthreads 0;
    hz = Hazards.create ();
  }

let thread g ctx = { g; ctx; rot = 0 }
let global t = t.g
let current_era g = g.era

let published_eras g =
  Array.to_list g.slots
  |> List.concat_map Array.to_list
  |> List.filter (fun e -> e <> no_era)

let retired_backlog g = Array.fold_left ( + ) 0 g.retired_count

let clear_slots t =
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  Array.fill t.g.slots.(tid) 0 slots_per_thread no_era

let begin_op t =
  t.rot <- 0;
  clear_slots t

let end_op t = clear_slots t

let with_op t f =
  begin_op t;
  let r = f () in
  end_op t;
  r

(* Eras advance on allocation, and births are stamped after the advance:
   a node born after a reader published its era is never covered by it. *)
let alloc t ~key =
  let g = t.g in
  g.allocs <- g.allocs + 1;
  if g.allocs mod allocs_per_era = 0 then begin
    g.era <- g.era + 1;
    Mem.fence t.ctx ~event:(Event.Epoch { value = g.era }) ()
  end;
  let w = Mem.alloc t.ctx ~key in
  Mem.aux_set t.ctx ~via:w ~field:birth_field (Word.int g.era);
  w

let birth_of t w =
  match Mem.aux_get t.ctx ~via:w ~field:birth_field with
  | Word.Int b, _ -> b
  | (Word.Null | Word.Ptr _), _ -> 0

(* One pass over the retired list: snapshot published eras into the
   scratch set, keep covered nodes (counting as we go), reclaim the rest
   in list order — same order as the old partition-then-iterate. *)
let scan t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.fence t.ctx ();
  Hazards.clear g.hz;
  Array.iter
    (fun slots ->
      Array.iter (fun e -> if e <> no_era then Hazards.add g.hz e) slots)
    g.slots;
  let keep = ref [] in
  let kept = ref 0 in
  List.iter
    (fun ((w, birth, retire_era) as r) ->
      if Hazards.exists_in_range g.hz ~lo:birth ~hi:retire_era then begin
        keep := r :: !keep;
        incr kept
      end
      else Mem.reclaim t.ctx w)
    g.retired.(tid);
  g.retired.(tid) <- List.rev !keep;
  g.retired_count.(tid) <- !kept

let retire t w =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  let birth = birth_of t w in
  Mem.retire t.ctx w;
  g.retired.(tid) <- (w, birth, g.era) :: g.retired.(tid);
  g.retired_count.(tid) <- g.retired_count.(tid) + 1;
  if g.retired_count.(tid) >= scan_threshold then scan t

(* Publish the current era in a rotating slot, retrying until the global
   era is stable across the publication — the HE protect protocol. *)
let publish_era t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  let slot = t.rot mod slots_per_thread in
  let rec loop () =
    let e = g.era in
    g.slots.(tid).(slot) <- e;
    Mem.fence t.ctx
      ~event:(Event.Protect { tid; slot; addr = -1; node = e })
      ();
    if g.era = e then e else loop ()
  in
  let e = loop () in
  t.rot <- t.rot + 1;
  e

(* Protect-validate, as in HP but era-grained: load, publish the current
   era, re-load; a stable pointer is deemed protected by the published
   era. (On Harris's list "stable" does not imply "safe" — Figure 2.) *)
let read t ~via ~field =
  let rec loop () =
    let w = Mem.read t.ctx ~via ~field in
    match w with
    | Word.Null | Word.Int _ -> w
    | Word.Ptr _ ->
      let _era = publish_era t in
      let w' = Mem.read t.ctx ~via ~field in
      if Word.same_bits w w' then w' else loop ()
  in
  loop ()

let read_key t ~via = Mem.read_key t.ctx ~via
let write t ~via ~field v = Mem.write t.ctx ~via ~field v

let cas t ~via ~field ~expected ~desired =
  Mem.cas t.ctx ~via ~field ~expected ~desired

let enter_read_phase _ = ()
let read_phase t f = enter_read_phase t; f ()
let enter_write_phase _ ~reserve:_ = ()
let quiesce t = scan t

end

include Impl
module Guard = Smr_intf.Guard (Impl)

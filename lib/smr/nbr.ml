open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

module Impl = struct

let name = "nbr"
let describe =
  "neutralization-based reclamation; robust + widely applicable, hard \
   integration (read/write phases, restarts)"

let retire_cap = 8

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [
        Integration.Op_boundaries;
        Integration.Alloc_retire_replacement;
        Integration.Primitive_replacement;
        Integration.Phase_annotations;
      ];
    primitives_linearizable = true;
    uses_rollback = true;
    modifies_ds_fields = false;
    added_fields = 0;
    requires_type_preservation = false;
    special_support = [ "lock-free OS signals (simulated by the scheduler)" ];
  }

type t = {
  heap : Heap.t;
  nthreads : int;
  flag : bool array;  (* pending neutralization signal *)
  in_write_phase : bool array;
  reservations : int list array;  (* reserved addresses *)
  retired : Word.t list array;
  retired_count : int array;
  mutable neutralize_count : int;
  mutable restart_count : int;
}

type tctx = {
  g : t;
  ctx : Sched.ctx;
  mutable fresh : Word.t list;
}

let create heap ~nthreads =
  {
    heap;
    nthreads;
    flag = Array.make nthreads false;
    in_write_phase = Array.make nthreads false;
    reservations = Array.make nthreads [];
    retired = Array.make nthreads [];
    retired_count = Array.make nthreads 0;
    neutralize_count = 0;
    restart_count = 0;
  }

let thread g ctx = { g; ctx; fresh = [] }
let global t = t.g
let neutralizations g = g.neutralize_count
let restarts g = g.restart_count

(* Signal semantics: the flag test and the subsequent memory access are in
   the same scheduling quantum (no yield in between), so a pending
   "signal" is always observed before the next instruction touches
   memory — exactly POSIX delivery order. Only read phases are
   interruptible; during a write phase the signal stays pending. *)
let check_signal t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  if g.flag.(tid) && not g.in_write_phase.(tid) then begin
    g.flag.(tid) <- false;
    raise Smr_intf.Neutralized
  end

let begin_op t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  g.in_write_phase.(tid) <- false;
  g.reservations.(tid) <- []

let end_op t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Sched.yield t.ctx;
  g.in_write_phase.(tid) <- false;
  g.reservations.(tid) <- [];
  (* A signal that arrived during the write phase is processed now, when
     it is harmless. *)
  if g.flag.(tid) then g.flag.(tid) <- false

let drop_fresh t =
  List.iter
    (fun w ->
      match Heap.validity t.g.heap w with
      | Heap.Valid -> (
        match Heap.cell_state t.g.heap ~addr:(Word.addr_exn w) with
        | Lifecycle.Local _ ->
          Mem.retire t.ctx w;
          Mem.reclaim t.ctx w
        | Lifecycle.Unallocated | Shared | Retired -> ())
      | Heap.Invalid_unallocated | Invalid_reused | Invalid_system -> ())
    t.fresh;
  t.fresh <- []

let with_op t f =
  let rec attempt () =
    begin_op t;
    t.fresh <- [];
    match f () with
    | r ->
      end_op t;
      r
    | exception Smr_intf.Neutralized ->
      t.g.restart_count <- t.g.restart_count + 1;
      let tid = t.ctx.Sched.tid in
      t.g.in_write_phase.(tid) <- false;
      t.g.reservations.(tid) <- [];
      drop_fresh t;
      attempt ()
  in
  attempt ()

let alloc t ~key =
  Sched.yield t.ctx;
  check_signal t;
  let w = Heap.alloc t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~key in
  t.fresh <- w :: t.fresh;
  w

let enter_read_phase t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Sched.yield t.ctx;
  g.in_write_phase.(tid) <- false;
  g.reservations.(tid) <- []

(* Neutralization rolls a thread back to the start of its current read
   phase (the sigsetjmp point in the original NBR): the bracket re-runs
   on [Neutralized] so an operation that already performed a write-phase
   effect restarts only its in-progress traversal. *)
let read_phase t f =
  let rec go () =
    enter_read_phase t;
    match f () with
    | r -> r
    | exception Smr_intf.Neutralized ->
      t.g.restart_count <- t.g.restart_count + 1;
      go ()
  in
  go ()

let enter_write_phase t ~reserve =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  (* Publish the write-set reservations... *)
  Sched.yield t.ctx;
  g.reservations.(tid) <-
    List.filter_map
      (function
        | Word.Ptr p -> Some p.addr
        | Word.Null | Word.Int _ -> None)
      reserve;
  (* ... then re-check the signal: a reclamation that raced with the
     publication has set the flag, so we restart rather than trust the
     reservations. If the flag is clear here, no reclamation pass has
     completed since the reservations became visible. *)
  Sched.yield t.ctx;
  if g.flag.(tid) then begin
    g.flag.(tid) <- false;
    g.reservations.(tid) <- [];
    raise Smr_intf.Neutralized
  end;
  g.in_write_phase.(tid) <- true

(* Reclamation pass: signal everyone, snapshot reservations, free every
   retired node nobody reserved. *)
let reclaim_pass t =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  for i = 0 to g.nthreads - 1 do
    if i <> tid then begin
      g.flag.(i) <- true;
      g.neutralize_count <- g.neutralize_count + 1;
      Mem.fence t.ctx ~event:(Event.Neutralize { by = tid; target = i }) ()
    end
  done;
  Mem.fence t.ctx ();
  let reserved = Array.to_list g.reservations |> List.concat in
  let keep, free =
    List.partition
      (fun w -> List.mem (Word.addr_exn w) reserved)
      g.retired.(tid)
  in
  g.retired.(tid) <- keep;
  g.retired_count.(tid) <- List.length keep;
  List.iter (fun w -> Mem.reclaim t.ctx w) free

let retire t w =
  let g = t.g in
  let tid = t.ctx.Sched.tid in
  Mem.retire t.ctx w;
  g.retired.(tid) <- w :: g.retired.(tid);
  g.retired_count.(tid) <- g.retired_count.(tid) + 1;
  if g.retired_count.(tid) >= retire_cap then reclaim_pass t

(* Signal-interruptible accesses: yield, then flag-test + access in one
   atomic quantum. *)
let read t ~via ~field =
  Sched.yield t.ctx;
  check_signal t;
  Heap.read_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via ~field

let read_key t ~via =
  Sched.yield t.ctx;
  check_signal t;
  Heap.read_key_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via

let write t ~via ~field value =
  Sched.yield t.ctx;
  check_signal t;
  Heap.write_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via ~field value

let cas t ~via ~field ~expected ~desired =
  Sched.yield t.ctx;
  check_signal t;
  Heap.cas_checked t.ctx.Sched.heap ~tid:t.ctx.Sched.tid ~via ~field ~expected
    ~desired

let quiesce t = if t.g.retired_count.(t.ctx.Sched.tid) > 0 then reclaim_pass t

end

include Impl
module Guard = Smr_intf.Guard (Impl)

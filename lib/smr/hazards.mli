(** A reusable scratch set of published integers — hazard-pointer
    addresses (HP), eras (HE) — shared by the scan paths of the
    simulated schemes. One instance lives in a scheme's global state and
    is cleared and refilled per scan, so scanning allocates nothing and
    probes are O(log hazards) instead of the former
    [List.mem]-per-retired-node. *)

type t

val create : unit -> t
val clear : t -> unit
val add : t -> int -> unit
val length : t -> int

val mem : t -> int -> bool
(** Is the value present? Sorts lazily on first query after a batch of
    {!add}s. *)

val exists_in_range : t -> lo:int -> hi:int -> bool
(** Is any published value within [\[lo, hi\]] (inclusive)? The HE
    covered-interval test. *)

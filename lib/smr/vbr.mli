(** Version-based reclamation (Sheffi, Herlihy & Petrank [37]), the
    fully-optimistic scheme.

    Nodes are reclaimed (almost) immediately on retirement into a
    type-preserving pool; safety comes from versioning, not from delaying
    reclamation. Here the version check is the heap's logical node
    identity: a read validates that the dereferenced cell still holds the
    node the pointer was derived for (the simulation's equivalent of VBR's
    birth-epoch comparison after a wide read), and updates use the
    identity-comparing wide CAS ({!Era_sched.Mem.cas_identity}), which is
    guaranteed to fail on a reclaimed node. A failed validation rolls the
    operation back to its checkpoint (here: operation start, the
    linearizability-based checkpoint placement of the VBR paper) — the
    roll-back that disqualifies VBR from easy integration
    (Definition 5.3(4)).

    ERA profile: {b R} with a constant per-thread bound (the strongest in
    the literature, Section 5.1) and {b A} (widely applicable: stale reads
    are validated and discarded, never used), but {b not} E. *)

include Smr_intf.S

val retire_cap : int
(** Per-thread retire-list capacity; the whole list is recycled when the
    cap is reached, so the retired backlog never exceeds
    [retire_cap * N]. *)

val current_epoch : t -> int
val rollbacks : t -> int
(** Total roll-backs taken so far (tests / benchmarks). *)

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

(** Hazard eras (Ramalhete & Correia [36]).

    Hazard-pointer interface with epoch ("era") contents: instead of
    publishing the protected {e address}, a thread publishes the current
    {e era} in one of its slots before dereferencing. A retired node whose
    lifetime [birth, retire_era] contains some published era is kept.

    ERA profile: like HP, {b E} and {b R} with a liberal (era-granular)
    bound, but {b not} widely applicable: a published era protects only
    nodes already born when it was read, so nodes inserted {e after} the
    protection and reclaimed while a stalled reader still trusts its
    validated pointer defeat it on Harris's list (Figure 2; the footnote
    in Appendix E — inserting node 43 after the protection — is exactly
    this). *)

include Smr_intf.S

val slots_per_thread : int
val allocs_per_era : int
val scan_threshold : int
val current_era : t -> int
val published_eras : t -> int list
val retired_backlog : t -> int

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

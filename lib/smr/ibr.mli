(** Interval-based reclamation (Wen et al. [45]), 2GE flavour.

    A global epoch advances every few allocations; every node records its
    birth epoch (in a scheme-owned field, Definition 5.3(5)). A thread
    reserves the interval [lo, hi] of epochs it may be holding pointers
    from: [lo] is set at operation start, [hi] is refreshed to the current
    epoch at every read. A retired node with life interval
    [birth, retire_epoch] is reclaimable when it intersects no thread's
    reservation.

    ERA profile: {b E} (op boundaries + primitive replacements) and
    {b weakly R} (the retired backlog is bounded by a function linear in
    [max_active * N], not a constant), but {b not} widely applicable —
    in the Figure 1/2 executions, nodes born after a stalled reader's
    reservation are reclaimed out from under its traversal.

    {!Make} builds variants with different epoch granularity and scan
    thresholds for the ablation benchmarks (coarser epochs change which
    adversarial executions defeat the scheme, not whether one exists).
    The toplevel include is [Make (Default_config)]. *)

module type CONFIG = sig
  val allocs_per_epoch : int
  val scan_threshold : int
end

module Default_config : CONFIG

module type S_EXT = sig
  include Smr_intf.S

  val allocs_per_epoch : int
  val scan_threshold : int
  val current_epoch : t -> int

  val reservation : t -> int -> int * int
  (** [(lo, hi)]; [(max_int, min_int)] when inactive. *)

  val retired_backlog : t -> int
end

module Make (_ : CONFIG) : S_EXT

include S_EXT

module Guard : Smr_intf.GUARD with type tctx = tctx
(** Typestate view of the integration API: phantom lifecycle states make
    retire-while-unpinned and use-after-unpin type errors (see
    {!Smr_intf.GUARD}). *)

type t = {
  quick : bool;
  json : string option;
  only : string list;
  schemes : string list;
  structure : string option;
  domains : int option;
  ops : int option;
  rounds : int option;
  fuzz : int option;
  tries : int option;
  seed : int option;
  preemptions : int option;
  max_runs : int option;
  steps : int option;
  robust_bound : int option;
  dpor : bool;
  steal : bool;
  lincheck : bool;
  keys : int option;
  zipf : float option;
  mix : string option;
  out : string option;
  heartbeat : int option;
  trace : bool;
  flight : string option;
  stall : bool;
  follow : int option;
  socket : string option;
  tenant : string option;
  workers : int option;
  queue_cap : int option;
  tenant_cap : int option;
  store : string option;
  wait : bool;
  shutdown : bool;
  now : bool;
  command : string option;
  file : string option;
}

let split_commas s =
  String.split_on_char ',' s
  |> List.filter_map (fun x ->
         match String.trim x with "" -> None | x -> Some x)

let parse_result ~argv ~prog ?(commands = []) ?(file_arg = false) () =
  let quick = ref false in
  let json = ref None in
  let only = ref [] in
  let schemes = ref [] in
  let structure = ref None in
  let domains = ref None in
  let ops = ref None in
  let rounds = ref None in
  let fuzz = ref None in
  let tries = ref None in
  let seed = ref None in
  let preemptions = ref None in
  let max_runs = ref None in
  let steps = ref None in
  let robust_bound = ref None in
  let dpor = ref false in
  let steal = ref false in
  let lincheck = ref false in
  let keys = ref None in
  let zipf = ref None in
  let mix = ref None in
  let out = ref None in
  let heartbeat = ref None in
  let trace = ref false in
  let flight = ref None in
  let stall = ref false in
  let follow = ref None in
  let socket = ref None in
  let tenant = ref None in
  let workers = ref None in
  let queue_cap = ref None in
  let tenant_cap = ref None in
  let store = ref None in
  let wait = ref false in
  let shutdown = ref false in
  let now = ref false in
  let command = ref None in
  let file = ref None in
  let set_opt r v = r := Some v in
  let spec =
    Arg.align
      [
        ("--quick", Arg.Set quick, " Smaller parameters for every experiment");
        ( "--json",
          Arg.String (set_opt json),
          "FILE Write machine-readable rows to FILE (default \
           bench/BENCH_<timestamp>.json)" );
        ( "--only",
          Arg.String (fun s -> only := !only @ split_commas s),
          "LIST Run only these experiments (comma-separated, e.g. E1,E8b,B3)"
        );
        ( "--schemes",
          Arg.String (fun s -> schemes := !schemes @ split_commas s),
          "LIST Restrict to these schemes (comma-separated, e.g. ebr,ibr)" );
        ( "--scheme",
          Arg.String (fun s -> schemes := !schemes @ split_commas s),
          "LIST Alias for --schemes" );
        ( "-s",
          Arg.String (fun s -> schemes := !schemes @ split_commas s),
          "LIST Alias for --schemes" );
        ( "--structure",
          Arg.String (set_opt structure),
          "NAME Data structure (harris, michael, hash, hash-michael, stack, \
           queue)" );
        ( "--domains",
          Arg.Int (set_opt domains),
          "N Domains: native throughput rows, and parallel explore workers"
        );
        ("--ops", Arg.Int (set_opt ops), "N Operations per domain (native)");
        ("--rounds", Arg.Int (set_opt rounds), "N Figure 1 churn rounds");
        ( "--fuzz",
          Arg.Int (set_opt fuzz),
          "N Randomized executions per (scheme, structure) pair" );
        ("--tries", Arg.Int (set_opt tries), "N Stall-fuzz attempts");
        ("--seed", Arg.Int (set_opt seed), "N Workload seed (explore)");
        ( "--preemptions",
          Arg.Int (set_opt preemptions),
          "N Preemption bound for systematic exploration" );
        ( "--max-runs",
          Arg.Int (set_opt max_runs),
          "N Execution budget for systematic exploration" );
        ("--steps", Arg.Int (set_opt steps), "N Per-run quantum budget");
        ( "--robust-bound",
          Arg.Int (set_opt robust_bound),
          "N Also hunt retired-backlog robustness violations beyond N" );
        ( "--dpor",
          Arg.Set dpor,
          " Sleep-set partial-order reduction for systematic exploration" );
        ( "--steal",
          Arg.Set steal,
          " Randomized work stealing for parallel exploration (with \
           --domains > 1)" );
        ( "--lincheck",
          Arg.Set lincheck,
          " Also hunt non-linearizable histories during systematic \
           exploration (forces an empty prefill)" );
        ( "--keys",
          Arg.Int (set_opt keys),
          "N Key-space size for native list workloads (e.g. 1000000)" );
        ( "--zipf",
          Arg.Float (set_opt zipf),
          "S Zipf skew for native key draws (omit for uniform)" );
        ( "--mix",
          Arg.String (set_opt mix),
          "NAME Operation mix: churn, read-heavy, balanced, or a contains \
           percentage 0-100" );
        ( "--out",
          Arg.String (set_opt out),
          "FILE Output path (explore counterexample, trace JSON)" );
        ( "--heartbeat",
          Arg.Int (set_opt heartbeat),
          "N Report explore progress every N runs and write a heartbeat \
           JSON sidecar" );
        ( "--trace",
          Arg.Set trace,
          " Capture a Perfetto trace (explore: of the shrunk \
           counterexample replay)" );
        ( "--flight",
          Arg.String (set_opt flight),
          "FILE Attach the native flight recorder and write the merged \
           Perfetto trace to FILE (native command)" );
        ( "--stall",
          Arg.Set stall,
          " Native: run only the E9 stalled-domain rows (pairs with \
           --flight for a reclamation-lag timeline)" );
        ( "--follow",
          Arg.Int (set_opt follow),
          "ID Stream job ID's heartbeats until it finishes (jobs command)" );
        ( "--socket",
          Arg.String (set_opt socket),
          "PATH Daemon Unix socket (serve/submit/jobs)" );
        ( "--tenant",
          Arg.String (set_opt tenant),
          "NAME Tenant for submitted jobs (default \"default\")" );
        ( "--workers",
          Arg.Int (set_opt workers),
          "N Executor domains for the serve daemon" );
        ( "--queue-cap",
          Arg.Int (set_opt queue_cap),
          "N Global admission-queue capacity (serve)" );
        ( "--tenant-cap",
          Arg.Int (set_opt tenant_cap),
          "N Per-tenant admission-queue capacity (serve)" );
        ( "--store",
          Arg.String (set_opt store),
          "DIR Artifact store directory (serve)" );
        ( "--wait",
          Arg.Set wait,
          " Block until the submitted job is terminal and print its \
           artifacts" );
        ( "--shutdown",
          Arg.Set shutdown,
          " Ask the daemon to shut down (jobs command)" );
        ( "--now",
          Arg.Set now,
          " With --shutdown: abandon the backlog instead of draining it" );
      ]
  in
  let usage =
    if commands = [] then Printf.sprintf "usage: %s [options]" prog
    else
      Printf.sprintf "usage: %s <command> [options]\ncommands: %s" prog
        (String.concat ", " commands)
  in
  let anon a =
    if a = "quick" then quick := true (* the historical positional form *)
    else if commands = [] then
      raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a))
    else
      match !command with
      | Some _ ->
        if file_arg && !file = None then file := Some a
        else raise (Arg.Bad (Printf.sprintf "unexpected second command %S" a))
      | None ->
        if List.mem a commands then command := Some a
        else
          raise
            (Arg.Bad
               (Printf.sprintf "unknown command %S (expected one of: %s)" a
                  (String.concat ", " commands)))
  in
  match Arg.parse_argv ~current:(ref 0) argv spec anon usage with
  | () ->
    Ok
      {
        quick = !quick;
        json = !json;
        only = !only;
        schemes = !schemes;
        structure = !structure;
        domains = !domains;
        ops = !ops;
        rounds = !rounds;
        fuzz = !fuzz;
        tries = !tries;
        seed = !seed;
        preemptions = !preemptions;
        max_runs = !max_runs;
        steps = !steps;
        robust_bound = !robust_bound;
        dpor = !dpor;
        steal = !steal;
        lincheck = !lincheck;
        keys = !keys;
        zipf = !zipf;
        mix = !mix;
        out = !out;
        heartbeat = !heartbeat;
        trace = !trace;
        flight = !flight;
        stall = !stall;
        follow = !follow;
        socket = !socket;
        tenant = !tenant;
        workers = !workers;
        queue_cap = !queue_cap;
        tenant_cap = !tenant_cap;
        store = !store;
        wait = !wait;
        shutdown = !shutdown;
        now = !now;
        command = !command;
        file = !file;
      }
  | exception Arg.Bad msg -> Error msg
  | exception Arg.Help msg -> Error msg

let parse ?(argv = Sys.argv) ~prog ?(commands = []) ?(file_arg = false) () =
  match parse_result ~argv ~prog ~commands ~file_arg () with
  | Ok t -> t
  | Error msg ->
    let is_help =
      Array.exists (fun a -> a = "-help" || a = "--help") argv
    in
    if is_help then begin
      (* --help keeps the full Arg-generated text. *)
      print_string msg;
      exit 0
    end
    else begin
      (* Arg.Bad prepends the full usage + option listing to the actual
         complaint; a typo'd flag then scrolls the real error off
         screen. Keep just the first line (the complaint itself) and
         point at --help. *)
      let first_line =
        match String.index_opt msg '\n' with
        | Some i -> String.sub msg 0 i
        | None -> msg
      in
      Printf.eprintf "%s\nrun '%s --help' for usage\n" first_line prog;
      exit 2
    end

let lower = String.lowercase_ascii
let selects_experiment t id = t.only = [] || List.mem (lower id) (List.map lower t.only)
let selects_scheme t name =
  t.schemes = [] || List.mem (lower name) (List.map lower t.schemes)

let domains_or t d = Option.value t.domains ~default:d
let ops_or t d = Option.value t.ops ~default:d
let rounds_or t d = Option.value t.rounds ~default:d
let fuzz_or t d = Option.value t.fuzz ~default:d
let tries_or t d = Option.value t.tries ~default:d
let seed_or t d = Option.value t.seed ~default:d
let preemptions_or t d = Option.value t.preemptions ~default:d
let max_runs_or t d = Option.value t.max_runs ~default:d
let steps_or t d = Option.value t.steps ~default:d
let mode t = if t.quick then "quick" else "full"

let default_json_path ?(clock = Unix.gettimeofday) t =
  match t.json with
  | Some f -> f
  | None ->
    let tm = Unix.localtime (clock ()) in
    (* Default under bench/ so ad-hoc runs don't litter the repo root;
       bench/.gitignore already covers the pattern. *)
    Printf.sprintf "bench/BENCH_%04d%02d%02dT%02d%02d%02d.json"
      (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
      tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

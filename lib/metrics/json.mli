(** Minimal zero-dependency JSON: enough of an emitter and parser for the
    benchmark-metrics files ([BENCH_*.json]) without pulling yojson into
    the build. Integers and floats are kept distinct (ops counts vs
    Mops/s); floats are printed with round-trip precision. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Serialize. Default is 2-space-indented; [~minify:true] is compact. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed). The
    error string carries a character offset. *)

(** {2 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** [member k (Obj ...)] — [None] on missing key or non-object. *)

val to_list : t -> t list option
val to_int : t -> int option  (** [Int]; does not coerce floats. *)

val to_float : t -> float option  (** [Float] or [Int], coerced. *)

val to_str : t -> string option
val to_bool : t -> bool option

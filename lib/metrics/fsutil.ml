let rec mkdir_p dir =
  if
    dir <> "" && dir <> "." && dir <> "/" && dir <> Filename.current_dir_name
    && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_file ~file data =
  (try mkdir_p (Filename.dirname file)
   with Sys_error e ->
     raise
       (Sys_error
          (Printf.sprintf "cannot create directory for %S: %s" file e)));
  let oc =
    try open_out file
    with Sys_error e ->
      raise (Sys_error (Printf.sprintf "cannot write %S: %s" file e))
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

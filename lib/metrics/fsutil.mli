(** Small filesystem helpers shared by every writer of result artifacts
    (bench reports, explorer counterexamples, trace files, heartbeat
    sidecars): create parent directories instead of failing with a bare
    "No such file or directory" when an [--out] path names a directory
    that does not exist yet. *)

val mkdir_p : string -> unit
(** Create the directory and its missing parents ([mkdir -p]). A
    component that already exists as a directory is fine; one that
    exists as a file raises [Sys_error]. *)

val write_file : file:string -> string -> unit
(** Write [data] to [file], creating the parent directories first.
    Raises [Sys_error] with the offending path in the message when the
    path is unwritable even after that. *)

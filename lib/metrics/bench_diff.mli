(** The perf gate: diff two benchmark reports.

    Rows are matched by {!Metrics.key}. Two checks decide the verdict:

    - {b throughput regression} — for rows in category
      ["native-throughput"] present in both reports, the new [mops] must
      not fall more than [max_regression_pct] percent below the old;
    - {b backlog blow-up} — for rows in any ["native-*"] category, the
      new [max_backlog] must not exceed
      [max (old * backlog_factor) (old + backlog_slack)] (the additive
      slack absorbs bounded schemes whose old backlog is tiny);
    - {b suite slowdown} — for rows in category ["suite-timing"]
      (per-experiment wall clock plus the [SUITE/total] row), the new
      [elapsed_s] must not exceed
      [old * (1 + max_suite_regression_pct/100) + suite_slack_s]. The
      loose default tolerance is intentional: this catches
      order-of-magnitude hot-path regressions, not wall-clock noise.

    Simulated classification rows carry timing noise and deterministic
    outcomes, so they are compared for presence only. A row present in
    the old report but absent from the new one also fails the gate —
    silently dropping a benchmark must not read as "no regression". *)

type change = {
  key : string;
  old_mops : float;
  new_mops : float;
  delta_pct : float;  (** signed; negative = slower *)
}

type blowup = {
  key : string;
  old_backlog : int;
  new_backlog : int;
}

type slowdown = {
  key : string;
  old_elapsed_s : float;
  new_elapsed_s : float;
}

type verdict = {
  compared : int;  (** rows present in both reports *)
  regressions : change list;
  improvements : change list;  (** informational: faster than threshold *)
  blowups : blowup list;
  slowdowns : slowdown list;
  missing : string list;  (** keys in the old report absent from the new *)
  added : string list;  (** informational *)
}

val diff :
  ?max_regression_pct:float ->
  ?backlog_factor:float ->
  ?backlog_slack:int ->
  ?max_suite_regression_pct:float ->
  ?suite_slack_s:float ->
  old_report:Metrics.report ->
  new_report:Metrics.report ->
  unit ->
  verdict
(** Defaults: 25%% regression tolerance, 2.0x backlog factor, 256 nodes
    of additive backlog slack, 75%% suite-timing tolerance with 0.05 s
    additive slack. *)

val ok : verdict -> bool
(** No regressions, no blow-ups, no slowdowns, no missing rows. *)

val pp : Format.formatter -> verdict -> unit

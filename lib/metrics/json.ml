type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter                                                             *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest decimal that round-trips the float, always with a decimal
   point or exponent so the parser reads it back as a float. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(minify = false) v =
  let b = Buffer.create 4096 in
  let nl indent =
    if not minify then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make indent ' ')
    end
  in
  let rec emit indent = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          emit (indent + 2) x)
        items;
      nl indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          escape_string b k;
          Buffer.add_string b (if minify then ":" else ": ");
          emit (indent + 2) x)
        fields;
      nl indent;
      Buffer.add_char b '}'
  in
  emit 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parser (recursive descent)                                          *)
(* ------------------------------------------------------------------ *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> advance (); Buffer.add_char b '"'; loop ()
        | Some '\\' -> advance (); Buffer.add_char b '\\'; loop ()
        | Some '/' -> advance (); Buffer.add_char b '/'; loop ()
        | Some 'n' -> advance (); Buffer.add_char b '\n'; loop ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; loop ()
        | Some 'r' -> advance (); Buffer.add_char b '\r'; loop ()
        | Some 'b' -> advance (); Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance (); Buffer.add_char b '\012'; loop ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          (* Surrogate pair for astral-plane code points. *)
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
               && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
            then begin
              pos := !pos + 2;
              let lo = hex4 () in
              0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
            end
            else cp
          in
          utf8_add b cp;
          loop ()
        | _ -> fail "bad escape")
      | c ->
        advance ();
        Buffer.add_char b c;
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
    Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let schema_version = 1

type row = {
  experiment : string;
  label : string;
  category : string;
  scheme : string;
  structure : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;
  max_backlog : int;
  reclaimed : int;
  retired : int;
  scans : int;
  note : string;
  extra : (string * float) list;
}

let row ~experiment ~label ?(category = "simulated") ?(scheme = "")
    ?(structure = "") ?(domains = 0) ?(total_ops = 0) ?(elapsed_s = 0.)
    ?(mops = 0.) ?(max_backlog = 0) ?(reclaimed = 0) ?(retired = 0)
    ?(scans = 0) ?(note = "") ?(extra = []) () =
  {
    experiment;
    label;
    category;
    scheme;
    structure;
    domains;
    total_ops;
    elapsed_s;
    mops;
    max_backlog;
    reclaimed;
    retired;
    scans;
    note;
    extra;
  }

let key r = r.experiment ^ "/" ^ r.label

type manifest = {
  schema_version : int;
  created_at : float;
  git_rev : string;
  ocaml_version : string;
  recommended_domains : int;
  mode : string;
  argv : string list;
}

(* Best-effort git revision without shelling out: walk up from the cwd
   looking for .git, follow HEAD's symref, fall back to packed-refs. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let packed_ref git_dir refname =
  let data = read_file (Filename.concat git_dir "packed-refs") in
  let hit = ref None in
  String.split_on_char '\n' data
  |> List.iter (fun line ->
         match String.index_opt line ' ' with
         | Some i when String.sub line (i + 1) (String.length line - i - 1)
                       = refname ->
           hit := Some (String.sub line 0 i)
         | _ -> ());
  !hit

let git_rev () =
  let rec find_git_dir dir depth =
    if depth > 6 then None
    else
      let cand = Filename.concat dir ".git" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git_dir parent (depth + 1)
  in
  match find_git_dir (Sys.getcwd ()) 0 with
  | None -> "unknown"
  | Some git_dir -> (
    try
      let head = String.trim (read_file (Filename.concat git_dir "HEAD")) in
      match String.length head >= 5 && String.sub head 0 5 = "ref: " with
      | false -> head (* detached HEAD: already a hash *)
      | true -> (
        let refname =
          String.trim (String.sub head 5 (String.length head - 5))
        in
        let ref_file = Filename.concat git_dir refname in
        if Sys.file_exists ref_file then String.trim (read_file ref_file)
        else
          match packed_ref git_dir refname with
          | Some h -> h
          | None -> "unknown")
    with _ -> "unknown")

let manifest ?(argv = Array.to_list Sys.argv) ~mode () =
  {
    schema_version;
    created_at = Unix.gettimeofday ();
    git_rev = git_rev ();
    ocaml_version = Sys.ocaml_version;
    recommended_domains = Domain.recommended_domain_count ();
    mode;
    argv;
  }

type report = {
  manifest : manifest;
  rows : row list;
}

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let row_to_json r =
  Json.Obj
    [
      ("experiment", Json.String r.experiment);
      ("label", Json.String r.label);
      ("category", Json.String r.category);
      ("scheme", Json.String r.scheme);
      ("structure", Json.String r.structure);
      ("domains", Json.Int r.domains);
      ("total_ops", Json.Int r.total_ops);
      ("elapsed_s", Json.Float r.elapsed_s);
      ("mops", Json.Float r.mops);
      ("max_backlog", Json.Int r.max_backlog);
      ("reclaimed", Json.Int r.reclaimed);
      ("retired", Json.Int r.retired);
      ("scans", Json.Int r.scans);
      ("note", Json.String r.note);
      ("extra", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.extra));
    ]

(* Field extraction helpers: missing fields fail loudly so schema drift
   between two compared files is a diagnosis, not a silent zero. *)
let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "row: missing or mistyped field %S" name)

let ( let* ) = Result.bind

let row_of_json j =
  let* experiment = field "experiment" Json.to_str j in
  let* label = field "label" Json.to_str j in
  let* category = field "category" Json.to_str j in
  let* scheme = field "scheme" Json.to_str j in
  let* structure = field "structure" Json.to_str j in
  let* domains = field "domains" Json.to_int j in
  let* total_ops = field "total_ops" Json.to_int j in
  let* elapsed_s = field "elapsed_s" Json.to_float j in
  let* mops = field "mops" Json.to_float j in
  let* max_backlog = field "max_backlog" Json.to_int j in
  let* reclaimed = field "reclaimed" Json.to_int j in
  let* retired = field "retired" Json.to_int j in
  let* scans = field "scans" Json.to_int j in
  let* note = field "note" Json.to_str j in
  let* extra =
    match Json.member "extra" j with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_float v with
          | Some f -> Ok ((k, f) :: acc)
          | None -> Error (Printf.sprintf "row: extra field %S not a number" k))
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "row: missing extra object"
  in
  Ok
    {
      experiment;
      label;
      category;
      scheme;
      structure;
      domains;
      total_ops;
      elapsed_s;
      mops;
      max_backlog;
      reclaimed;
      retired;
      scans;
      note;
      extra;
    }

let manifest_to_json m =
  Json.Obj
    [
      ("schema_version", Json.Int m.schema_version);
      ("created_at", Json.Float m.created_at);
      ("git_rev", Json.String m.git_rev);
      ("ocaml_version", Json.String m.ocaml_version);
      ("recommended_domains", Json.Int m.recommended_domains);
      ("mode", Json.String m.mode);
      ("argv", Json.List (List.map (fun a -> Json.String a) m.argv));
    ]

let manifest_of_json j =
  let* schema_version = field "schema_version" Json.to_int j in
  if schema_version <> 1 then
    Error (Printf.sprintf "unsupported schema_version %d" schema_version)
  else
    let* created_at = field "created_at" Json.to_float j in
    let* git_rev = field "git_rev" Json.to_str j in
    let* ocaml_version = field "ocaml_version" Json.to_str j in
    let* recommended_domains = field "recommended_domains" Json.to_int j in
    let* mode = field "mode" Json.to_str j in
    let* argv =
      match Option.bind (Json.member "argv" j) Json.to_list with
      | Some l ->
        List.fold_left
          (fun acc v ->
            let* acc = acc in
            match Json.to_str v with
            | Some s -> Ok (s :: acc)
            | None -> Error "manifest: argv entry not a string")
          (Ok []) l
        |> Result.map List.rev
      | None -> Error "manifest: missing argv"
    in
    Ok
      {
        schema_version;
        created_at;
        git_rev;
        ocaml_version;
        recommended_domains;
        mode;
        argv;
      }

let report_to_json r =
  Json.Obj
    [
      ("manifest", manifest_to_json r.manifest);
      ("rows", Json.List (List.map row_to_json r.rows));
    ]

let report_of_json j =
  let* mj =
    match Json.member "manifest" j with
    | Some m -> Ok m
    | None -> Error "report: missing manifest"
  in
  let* manifest = manifest_of_json mj in
  let* rowsj =
    match Option.bind (Json.member "rows" j) Json.to_list with
    | Some l -> Ok l
    | None -> Error "report: missing rows array"
  in
  let* rows =
    List.fold_left
      (fun acc rj ->
        let* acc = acc in
        let* r = row_of_json rj in
        Ok (r :: acc))
      (Ok []) rowsj
    |> Result.map List.rev
  in
  Ok { manifest; rows }

let write path report =
  (* The default path lands under bench/ — create it on first use. *)
  (match Filename.dirname path with
  | "" | "." -> ()
  | d -> Fsutil.mkdir_p d);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Json.to_string (report_to_json report));
      output_char oc '\n')

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | data ->
    let* j = Json.of_string data in
    report_of_json j

let pp_row fmt r =
  Format.fprintf fmt
    "%s/%-30s %-18s d=%d ops=%-8d %8.3f Mops/s backlog(max)=%-6d \
     reclaimed=%-8d retired=%-8d scans=%d%s"
    r.experiment r.label r.category r.domains r.total_ops r.mops r.max_backlog
    r.reclaimed r.retired r.scans
    (if r.note = "" then "" else "  [" ^ r.note ^ "]")

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

type sink = row list ref

let sink () = ref []
let add s r = s := r :: !s
let rows s = List.rev !s

let flush s ~mode ~path =
  let rows = rows s in
  write path { manifest = manifest ~mode (); rows };
  List.length rows

(** The one command-line surface shared by the experiment front-ends
    ([bench/main.exe] and [bin/era_cli.exe]).

    Historically [bench/main.ml] only recognised a positional ["quick"]
    at [Sys.argv.(1)] and [era_cli] had its own dispatch; both now parse
    through this [Arg]-based module, so flags like [--json] and
    [--schemes] behave identically everywhere. The bare positional
    ["quick"] is still accepted as an alias for [--quick]. *)

type t = {
  quick : bool;
  json : string option;  (** [--json FILE] *)
  only : string list;  (** [--only E1,E8b] — empty means everything *)
  schemes : string list;
      (** [--schemes ebr,ibr] (aliases [--scheme], [-s]) — empty means all *)
  structure : string option;  (** [--structure harris] (explore/replay) *)
  domains : int option;  (** [--domains N] override for native rows *)
  ops : int option;  (** [--ops N] per-domain op count override *)
  rounds : int option;  (** [--rounds N] Figure 1 churn rounds *)
  fuzz : int option;  (** [--fuzz N] randomized runs per pair *)
  tries : int option;  (** [--tries N] stall-fuzz attempts *)
  seed : int option;  (** [--seed N] workload seed (explore) *)
  preemptions : int option;  (** [--preemptions N] exploration bound *)
  max_runs : int option;  (** [--max-runs N] exploration budget *)
  steps : int option;  (** [--steps N] per-run quantum budget *)
  robust_bound : int option;
      (** [--robust-bound N] — explore also flags retired backlogs > N *)
  dpor : bool;
      (** [--dpor] — sleep-set partial-order reduction for systematic
          exploration *)
  steal : bool;
      (** [--steal] — randomized work stealing across explore workers
          instead of the level-synchronous queue (with [--domains] > 1) *)
  lincheck : bool;
      (** [--lincheck] — explore also hunts non-linearizable histories
          (forces an empty prefill; see
          [Era.Applicability.explore_target]) *)
  keys : int option;
      (** [--keys N] — key-space size for native list workloads *)
  zipf : float option;
      (** [--zipf S] — Zipf skew for native key draws (absent = uniform) *)
  mix : string option;
      (** [--mix NAME] — churn | read-heavy | balanced | a contains
          percentage 0–100 (native list workloads) *)
  out : string option;
      (** [--out FILE] output path (explore counterexample, trace JSON) *)
  heartbeat : int option;
      (** [--heartbeat N] — explore progress report interval in runs,
          plus a heartbeat JSON sidecar at the end *)
  trace : bool;
      (** [--trace] — capture a Perfetto trace of the relevant
          execution (explore: the shrunk counterexample replay) *)
  flight : string option;
      (** [--flight FILE] — attach the native flight recorder and write
          the merged Perfetto trace to FILE (native command) *)
  stall : bool;
      (** [--stall] — native: run only the E9 stalled-domain rows *)
  follow : int option;
      (** [--follow ID] — jobs: stream the job's heartbeats until it is
          terminal *)
  socket : string option;
      (** [--socket PATH] — daemon Unix socket (serve/submit/jobs) *)
  tenant : string option;  (** [--tenant NAME] for submitted jobs *)
  workers : int option;  (** [--workers N] serve executor domains *)
  queue_cap : int option;  (** [--queue-cap N] global admission cap *)
  tenant_cap : int option;  (** [--tenant-cap N] per-tenant cap *)
  store : string option;  (** [--store DIR] artifact store directory *)
  wait : bool;  (** [--wait] — block until the submitted job finishes *)
  shutdown : bool;  (** [--shutdown] — stop the daemon (jobs command) *)
  now : bool;  (** [--now] — with [--shutdown], abandon the backlog *)
  command : string option;  (** first non-flag word (era_cli commands) *)
  file : string option;
      (** second positional (e.g. [replay <counterexample.json>]); only
          accepted when [parse] was called with [~file_arg:true] *)
}

val parse :
  ?argv:string array -> prog:string -> ?commands:string list ->
  ?file_arg:bool -> unit -> t
(** Parse [argv] (default [Sys.argv]). If [commands] is non-empty, one
    positional command from that list is accepted; an unknown command or
    a second positional is an error, except that [~file_arg:true]
    (default false) allows one positional after the command, captured in
    {!field:t.file}. On bad usage (unknown flag, unknown command, stray
    positional) prints a {e one-line} error plus a [--help] pointer to
    stderr and exits 2; [--help] prints the full usage text and exits
    0. *)

val parse_result :
  argv:string array -> prog:string -> ?commands:string list ->
  ?file_arg:bool -> unit -> (t, string) result
(** Like {!parse} but returns [Error usage_message] instead of exiting —
    for tests. *)

val selects_experiment : t -> string -> bool
(** [--only] filter; ids are matched case-insensitively ("e8b" = "E8b").
    An empty filter selects everything. *)

val selects_scheme : t -> string -> bool
(** [--schemes] filter, case-insensitive; empty selects all. *)

val domains_or : t -> int -> int
val ops_or : t -> int -> int
val rounds_or : t -> int -> int
val fuzz_or : t -> int -> int
val tries_or : t -> int -> int
val seed_or : t -> int -> int
val preemptions_or : t -> int -> int
val max_runs_or : t -> int -> int
val steps_or : t -> int -> int

val mode : t -> string
(** ["quick"] or ["full"], for the run manifest. *)

val default_json_path : ?clock:(unit -> float) -> t -> string
(** [--json FILE] if given, else [bench/BENCH_<timestamp>.json] derived
    from [clock] (default [Unix.gettimeofday]). *)

(** Machine-readable experiment results.

    Every experiment row the harness produces — simulated classification
    runs (E1–E7, E10/E11) and native throughput/backlog runs (E8/E8b/E9)
    — is a uniform {!row}; a run writes one {!report} (manifest + rows)
    to a [BENCH_*.json] file. [bin/bench_compare.exe] diffs two such
    files, which is the perf gate future changes run against.

    Schema (version {!schema_version}):
    {v
    { "manifest": { "schema_version": int, "created_at": float,
                    "git_rev": str, "ocaml_version": str,
                    "recommended_domains": int, "mode": "quick"|"full",
                    "argv": [str] },
      "rows": [ { "experiment": str, "label": str, "category": str,
                  "scheme": str, "structure": str, "domains": int,
                  "total_ops": int, "elapsed_s": float, "mops": float,
                  "max_backlog": int, "reclaimed": int, "retired": int,
                  "scans": int, "note": str,
                  "extra": { str: float, ... } } ] }
    v} *)

val schema_version : int

type row = {
  experiment : string;  (** "E1" … "E11" *)
  label : string;  (** unique within the experiment, e.g. "harris+ebr/churn" *)
  category : string;
      (** "native-throughput" (mops is the gated signal),
          "native-backlog" (max_backlog is), or "simulated"
          (deterministic classification rows). *)
  scheme : string;  (** "" when the row is not per-scheme *)
  structure : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;  (** million completed operations per second; 0 if n/a *)
  max_backlog : int;
  reclaimed : int;
  retired : int;
  scans : int;  (** reclamation scan passes (per-scheme semantics) *)
  note : string;  (** free-text verdict, e.g. "ROBUSTNESS VIOLATED" *)
  extra : (string * float) list;  (** experiment-specific numerics *)
}

val row :
  experiment:string -> label:string -> ?category:string -> ?scheme:string ->
  ?structure:string -> ?domains:int -> ?total_ops:int -> ?elapsed_s:float ->
  ?mops:float -> ?max_backlog:int -> ?reclaimed:int -> ?retired:int ->
  ?scans:int -> ?note:string -> ?extra:(string * float) list -> unit -> row
(** All optional fields default to [0] / [""] / [[]]; [category] defaults
    to ["simulated"]. *)

val key : row -> string
(** ["experiment/label"] — the identity rows are matched on when two
    reports are diffed. *)

type manifest = {
  schema_version : int;
  created_at : float;  (** Unix time *)
  git_rev : string;  (** best-effort from [.git]; "unknown" otherwise *)
  ocaml_version : string;
  recommended_domains : int;  (** [Domain.recommended_domain_count ()] *)
  mode : string;  (** "quick" | "full" *)
  argv : string list;
}

val manifest : ?argv:string list -> mode:string -> unit -> manifest

type report = {
  manifest : manifest;
  rows : row list;
}

val row_to_json : row -> Json.t
val row_of_json : Json.t -> (row, string) result
val report_to_json : report -> Json.t
val report_of_json : Json.t -> (report, string) result

val write : string -> report -> unit
(** Write the report to a file (pretty-printed JSON, trailing newline). *)

val load : string -> (report, string) result
(** Read and parse; [Error] carries a parse or schema message. *)

val pp_row : Format.formatter -> row -> unit

(** {2 Collecting rows during a run} *)

type sink

val sink : unit -> sink
val add : sink -> row -> unit
val rows : sink -> row list  (** In insertion order. *)

val flush : sink -> mode:string -> path:string -> int
(** Write all collected rows (plus a fresh manifest) to [path]; returns
    the number of rows written. *)

type change = {
  key : string;
  old_mops : float;
  new_mops : float;
  delta_pct : float;
}

type blowup = {
  key : string;
  old_backlog : int;
  new_backlog : int;
}

type slowdown = {
  key : string;
  old_elapsed_s : float;
  new_elapsed_s : float;
}

type verdict = {
  compared : int;
  regressions : change list;
  improvements : change list;
  blowups : blowup list;
  slowdowns : slowdown list;
  missing : string list;
  added : string list;
}

let is_native (r : Metrics.row) =
  String.length r.category >= 7 && String.sub r.category 0 7 = "native-"

let diff ?(max_regression_pct = 25.) ?(backlog_factor = 2.) ?(backlog_slack = 256)
    ?(max_suite_regression_pct = 75.) ?(suite_slack_s = 0.05)
    ~old_report ~new_report () =
  let index rows =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (r : Metrics.row) -> Hashtbl.replace tbl (Metrics.key r) r)
      rows;
    tbl
  in
  let old_tbl = index old_report.Metrics.rows in
  let new_tbl = index new_report.Metrics.rows in
  let compared = ref 0 in
  let regressions = ref [] in
  let improvements = ref [] in
  let blowups = ref [] in
  let slowdowns = ref [] in
  let missing = ref [] in
  let added = ref [] in
  List.iter
    (fun (o : Metrics.row) ->
      let k = Metrics.key o in
      match Hashtbl.find_opt new_tbl k with
      | None -> missing := k :: !missing
      | Some n ->
        incr compared;
        if o.category = "native-throughput" && o.mops > 0. then begin
          let delta_pct = (n.mops -. o.mops) /. o.mops *. 100. in
          if delta_pct < -.max_regression_pct then
            regressions :=
              { key = k; old_mops = o.mops; new_mops = n.mops; delta_pct }
              :: !regressions
          else if delta_pct > max_regression_pct then
            improvements :=
              { key = k; old_mops = o.mops; new_mops = n.mops; delta_pct }
              :: !improvements
        end;
        if is_native o then begin
          let bound =
            max
              (int_of_float (float_of_int o.max_backlog *. backlog_factor))
              (o.max_backlog + backlog_slack)
          in
          if n.max_backlog > bound then
            blowups :=
              {
                key = k;
                old_backlog = o.max_backlog;
                new_backlog = n.max_backlog;
              }
              :: !blowups
        end;
        if o.category = "suite-timing" then begin
          (* The additive slack absorbs scheduling jitter on experiments
             that finish in milliseconds; the multiplicative tolerance is
             deliberately loose — suite timing is wall clock on a shared
             machine, and this gate exists to catch order-of-magnitude
             hot-path regressions, not percent-level noise. *)
          let bound =
            (o.elapsed_s *. (1. +. (max_suite_regression_pct /. 100.)))
            +. suite_slack_s
          in
          if n.elapsed_s > bound then
            slowdowns :=
              {
                key = k;
                old_elapsed_s = o.elapsed_s;
                new_elapsed_s = n.elapsed_s;
              }
              :: !slowdowns
        end)
    old_report.Metrics.rows;
  List.iter
    (fun (n : Metrics.row) ->
      let k = Metrics.key n in
      if not (Hashtbl.mem old_tbl k) then added := k :: !added)
    new_report.Metrics.rows;
  {
    compared = !compared;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    blowups = List.rev !blowups;
    slowdowns = List.rev !slowdowns;
    missing = List.rev !missing;
    added = List.rev !added;
  }

let ok v =
  v.regressions = [] && v.blowups = [] && v.slowdowns = [] && v.missing = []

let pp fmt v =
  Format.fprintf fmt "compared %d rows" v.compared;
  if v.added <> [] then
    Format.fprintf fmt ", %d new" (List.length v.added);
  Format.fprintf fmt "@.";
  List.iter
    (fun (c : change) ->
      Format.fprintf fmt "  REGRESSION %-40s %8.3f -> %8.3f Mops/s (%+.1f%%)@."
        c.key c.old_mops c.new_mops c.delta_pct)
    v.regressions;
  List.iter
    (fun (c : change) ->
      Format.fprintf fmt "  improved   %-40s %8.3f -> %8.3f Mops/s (%+.1f%%)@."
        c.key c.old_mops c.new_mops c.delta_pct)
    v.improvements;
  List.iter
    (fun (b : blowup) ->
      Format.fprintf fmt "  BACKLOG BLOW-UP %-33s %d -> %d@." b.key
        b.old_backlog b.new_backlog)
    v.blowups;
  List.iter
    (fun (s : slowdown) ->
      Format.fprintf fmt "  SUITE SLOWDOWN %-34s %.3f -> %.3f s@." s.key
        s.old_elapsed_s s.new_elapsed_s)
    v.slowdowns;
  List.iter (fun k -> Format.fprintf fmt "  MISSING ROW %s@." k) v.missing;
  if ok v then Format.fprintf fmt "  ok: within tolerance@."

open Effect
open Effect.Deep
module Event = Era_sim.Event
module Monitor = Era_sim.Monitor
module Rng = Era_sim.Rng

type _ Effect.t += Yield : unit Effect.t

type fiber_status =
  | Suspended of (unit, fiber_status) continuation
  | Done
  | Failed of exn

type thread_state =
  | Not_spawned_s
  | Fresh of (unit -> unit)
  | Paused of (unit, fiber_status) continuation
  | Finished_s
  | Crashed_s of exn

type instr =
  | Run of int * int
  | Run_until of int * (Event.t -> bool)
  | Run_until_label of int * string
  | Finish of int
  | Finish_bounded of int * int
  | Finish_all

type outcome =
  | All_finished
  | Script_done
  | Step_limit
  | No_runnable

type thread_outcome =
  | Not_spawned
  | Running
  | Finished
  | Crashed of exn

type strategy =
  | Round_robin
  | Random of Rng.t
  | Script of instr list
  | Controlled of (t -> int)

and t = {
  sim_heap : Era_sim.Heap.t;
  mon : Monitor.t;
  max_steps : int;
  threads : thread_state array;
  stalled : bool array;
  steps : int array;
  mutable total : int;
  mutable rr_next : int;
  mutable opid : int;
  mutable current : int;  (* tid being stepped; -1 outside a quantum *)
  mutable runnable_count : int;  (* #threads live and not stalled *)
  strategy : strategy;
  mutable script : instr list;
  mutable instr_budget : int;  (* remaining quanta for the current instr *)
  step_events : Event.t Era_sim.Vec.t;  (* events of the current quantum *)
  step_hook : int -> Event.t -> unit;  (* pushes into [step_events] *)
  mutable step_hook_on : bool;  (* hook currently subscribed? *)
  pick_buf : int array;  (* scratch for pick_random; length nthreads *)
  mutable quantum_hook : (int -> int -> int -> unit) option;
      (* observability: called after every quantum with
         (tid, monitor time before, monitor time after); [None] (the
         default) keeps the hot path to a single branch *)
}

and ctx = {
  tid : int;
  heap : Era_sim.Heap.t;
  sched : t;
}

(* ctx is declared after t so redefine the public order via an interface
   trick: the .mli lists ctx first; OCaml allows any order with 'and'. *)

let create ?(max_steps = 20_000_000) ~nthreads strategy heap =
  let step_events = Era_sim.Vec.create () in
  let step_hook _time ev = Era_sim.Vec.push step_events ev in
  let t =
    {
      sim_heap = heap;
      mon = Era_sim.Heap.monitor heap;
      max_steps;
      threads = Array.make nthreads Not_spawned_s;
      stalled = Array.make nthreads false;
      steps = Array.make nthreads 0;
      total = 0;
      rr_next = 0;
      opid = 0;
      current = -1;
      runnable_count = 0;
      strategy;
      script = (match strategy with Script s -> s | _ -> []);
      instr_budget = -1;
      step_events;
      step_hook;
      step_hook_on = false;
      pick_buf = Array.make (max nthreads 1) 0;
      quantum_hook = None;
    }
  in
  (* [step_hook] is not subscribed here: only the [Run_until] /
     [Run_until_label] script instructions inspect the events of the
     current quantum, so the run loop attaches the hook exactly while
     one of those is active. Every other schedule keeps the monitor's
     allocation-free fast path for unobserved event kinds. *)
  t

let spawn t ~tid body =
  if tid < 0 || tid >= Array.length t.threads then
    invalid_arg "Sched.spawn: tid out of range";
  (match t.threads.(tid) with
  | Not_spawned_s -> ()
  | _ -> invalid_arg "Sched.spawn: thread already spawned");
  let ctx = { tid; heap = t.sim_heap; sched = t } in
  t.threads.(tid) <- Fresh (fun () -> body ctx);
  if not t.stalled.(tid) then t.runnable_count <- t.runnable_count + 1

let external_ctx t ~tid = { tid; heap = t.sim_heap; sched = t }

let heap t = t.sim_heap
let monitor t = t.mon
let nthreads t = Array.length t.threads
let set_quantum_hook t h = t.quantum_hook <- h

let thread_outcome t tid =
  match t.threads.(tid) with
  | Not_spawned_s -> Not_spawned
  | Fresh _ | Paused _ -> Running
  | Finished_s -> Finished
  | Crashed_s e -> Crashed e

let steps_of t tid = t.steps.(tid)
let total_steps t = t.total

(* Counter snapshot for the explorer's Snapshot module. Fiber state is
   deliberately out of scope: a [Paused] continuation is one-shot, so a
   mid-run thread position cannot be re-entered twice and a snapshot
   taken there could never be restored honestly. Counters alone are
   restorable at points where no fiber holds progress beyond the capture
   — before the first quantum, or around work done through
   [external_ctx] (prefill, post-run assertions). *)
type counters = {
  sc_steps : int array;
  sc_total : int;
  sc_rr_next : int;
  sc_opid : int;
}

let snapshot_counters t =
  {
    sc_steps = Array.copy t.steps;
    sc_total = t.total;
    sc_rr_next = t.rr_next;
    sc_opid = t.opid;
  }

let restore_counters t s =
  if Array.length s.sc_steps <> Array.length t.steps then
    invalid_arg "Sched.restore_counters: snapshot from a different scheduler";
  Array.blit s.sc_steps 0 t.steps 0 (Array.length t.steps);
  t.total <- s.sc_total;
  t.rr_next <- s.sc_rr_next;
  t.opid <- s.sc_opid

let live t tid =
  match t.threads.(tid) with
  | Fresh _ | Paused _ -> true
  | Not_spawned_s | Finished_s | Crashed_s _ -> false

let runnable t tid = live t tid && not t.stalled.(tid)
let is_live = live
let is_runnable = runnable
let runnable_count t = t.runnable_count
let current_tid t = t.current

let runnable_tids t =
  let acc = ref [] in
  for tid = Array.length t.threads - 1 downto 0 do
    if runnable t tid then acc := tid :: !acc
  done;
  !acc

let runnable_into t buf =
  let n = Array.length t.threads in
  if Array.length buf < n then
    invalid_arg "Sched.runnable_into: buffer shorter than nthreads";
  let count = ref 0 in
  for tid = 0 to n - 1 do
    if runnable t tid then begin
      buf.(!count) <- tid;
      incr count
    end
  done;
  !count

let stall t tid =
  if not t.stalled.(tid) then begin
    t.stalled.(tid) <- true;
    if live t tid then t.runnable_count <- t.runnable_count - 1;
    Monitor.emit t.mon (Event.Stalled { tid })
  end

let unstall t tid =
  if t.stalled.(tid) then begin
    t.stalled.(tid) <- false;
    if live t tid then t.runnable_count <- t.runnable_count + 1;
    Monitor.emit t.mon (Event.Resumed { tid })
  end

let is_stalled t tid = t.stalled.(tid)

(* Outside a fiber (test setup, pre-filling a structure before the
   concurrent part starts) there is no handler for [Yield]: [current] is
   -1 and the yield is a no-op, so the same data-structure code runs in
   both settings — without raising and catching [Effect.Unhandled] per
   access like [perform] would.

   Inside a fiber, if the running thread is the only runnable one (solo
   phases: single-thread runs, tails after the other threads finish),
   suspending would bounce through the scheduler only to resume the same
   fiber. Charge the quantum inline instead: same [steps]/[total]
   accounting, and under [Random] the same single [Rng.int rng 1] draw
   the pick would have made — seeded schedules are bit-for-bit
   unchanged. Scripts are excluded: their per-instruction budgets count
   actual [step_thread] calls. Controlled schedules are excluded for the
   same reason: the controller's choice trace must see every quantum. *)
let yield ctx =
  let t = ctx.sched in
  if t.current < 0 then ()
  else if
    t.runnable_count = 1
    && t.current = ctx.tid
    && (not t.stalled.(ctx.tid))
    && t.total < t.max_steps
    && (match t.quantum_hook with None -> true | Some _ -> false)
    && (match t.strategy with
       | Script _ | Controlled _ -> false
       | Round_robin | Random _ -> true)
  then begin
    (match t.strategy with
    | Random rng -> ignore (Rng.int rng 1)
    | Round_robin -> t.rr_next <- ctx.tid + 1
    | Script _ | Controlled _ -> ());
    t.steps.(ctx.tid) <- t.steps.(ctx.tid) + 1;
    t.total <- t.total + 1
  end
  else perform Yield

let label ctx name =
  yield ctx;
  Monitor.emit ctx.sched.mon (Event.Label { tid = ctx.tid; name })

let next_opid t =
  t.opid <- t.opid + 1;
  t.opid

let run_op ctx op f =
  let t = ctx.sched in
  let opid = next_opid t in
  Monitor.emit t.mon (Event.Invoke { tid = ctx.tid; opid; op });
  let result = f () in
  Monitor.emit t.mon (Event.Response { tid = ctx.tid; opid; op; result });
  result

(* ------------------------------------------------------------------ *)
(* Fiber machinery                                                     *)
(* ------------------------------------------------------------------ *)

let fiber_handler : (unit, fiber_status) handler =
  {
    retc = (fun () -> Done);
    exnc = (fun e -> Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some (fun (k : (a, fiber_status) continuation) -> Suspended k)
        | _ -> None);
  }

(* Give [tid] one quantum. Only scripted schedules read back the events
   of the quantum, so only they pay for resetting the buffer. *)
let step_thread t tid =
  (match t.strategy with
  | Script _ -> Era_sim.Vec.clear t.step_events
  | Round_robin | Random _ | Controlled _ -> ());
  let q0 =
    match t.quantum_hook with None -> 0 | Some _ -> Monitor.time t.mon
  in
  t.current <- tid;
  let status =
    match t.threads.(tid) with
    | Fresh body -> match_with body () fiber_handler
    | Paused k -> continue k ()
    | Not_spawned_s | Finished_s | Crashed_s _ ->
      invalid_arg "Sched.step_thread: thread not runnable"
  in
  t.current <- -1;
  t.steps.(tid) <- t.steps.(tid) + 1;
  t.total <- t.total + 1;
  (match status with
  | Suspended k -> t.threads.(tid) <- Paused k
  | Done ->
    t.threads.(tid) <- Finished_s;
    if not t.stalled.(tid) then t.runnable_count <- t.runnable_count - 1
  | Failed e ->
    t.threads.(tid) <- Crashed_s e;
    if not t.stalled.(tid) then t.runnable_count <- t.runnable_count - 1);
  match t.quantum_hook with
  | None -> ()
  | Some f -> f tid q0 (Monitor.time t.mon)

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

(* Both picks return the chosen tid, or -1 when nothing is runnable —
   an option here would allocate a [Some] box on every quantum. *)

let pick_round_robin t =
  let n = Array.length t.threads in
  let pick = ref (-1) in
  let i = ref t.rr_next in
  let remaining = ref n in
  while !pick < 0 && !remaining > 0 do
    let tid = !i mod n in
    if runnable t tid then begin
      t.rr_next <- tid + 1;
      pick := tid
    end;
    incr i;
    decr remaining
  done;
  !pick

(* Collect runnable tids into a reusable scratch buffer (ascending, the
   order the old list-based version produced) and draw the same single
   [Rng.int] over the same count — seeded schedules are bit-for-bit
   unchanged, with zero allocation per quantum. *)
let pick_random t rng =
  let n = Array.length t.threads in
  let count = ref 0 in
  for tid = 0 to n - 1 do
    if runnable t tid then begin
      t.pick_buf.(!count) <- tid;
      incr count
    end
  done;
  if !count = 0 then -1 else t.pick_buf.(Rng.int rng !count)

let step_events_match t pred = Era_sim.Vec.exists pred t.step_events

exception Stop of outcome

let progress_violation t tid =
  Monitor.emit t.mon
    (Event.Violation
       {
         tid;
         kind = Event.Progress_failure;
         detail =
           Fmt.str "T%d did not finish its solo run within its step budget"
             tid;
       })

(* Execute the current script instruction for one quantum; return [true]
   when the instruction is complete and should be popped. *)
let script_quantum t instr =
  match instr with
  | Run (tid, n) ->
    if n <= 0 || not (live t tid) then true
    else begin
      if t.instr_budget < 0 then t.instr_budget <- n;
      step_thread t tid;
      t.instr_budget <- t.instr_budget - 1;
      t.instr_budget = 0 || not (live t tid)
    end
  | Run_until (tid, pred) ->
    if not (live t tid) then true
    else begin
      step_thread t tid;
      step_events_match t pred || not (live t tid)
    end
  | Run_until_label (tid, name) ->
    if not (live t tid) then true
    else begin
      step_thread t tid;
      step_events_match t (function
        | Event.Label l -> l.tid = tid && l.name = name
        | _ -> false)
      || not (live t tid)
    end
  | Finish tid ->
    if not (live t tid) then true
    else begin
      step_thread t tid;
      not (live t tid)
    end
  | Finish_bounded (tid, budget) ->
    if not (live t tid) then true
    else begin
      if t.instr_budget < 0 then t.instr_budget <- budget;
      step_thread t tid;
      t.instr_budget <- t.instr_budget - 1;
      if not (live t tid) then true
      else if t.instr_budget = 0 then begin
        progress_violation t tid;
        true
      end
      else false
    end
  | Finish_all -> (
    match pick_round_robin t with
    | -1 -> true
    | tid ->
      step_thread t tid;
      false)

let run t =
  let finished_all () =
    let n = Array.length t.threads in
    let rec go tid = tid >= n || ((not (live t tid)) && go (tid + 1)) in
    go 0
  in
  (* [finished_all] is only consulted when a pick comes up empty — the
     common per-quantum path is check-limit, pick, step. *)
  let no_pick () =
    raise (Stop (if finished_all () then All_finished else No_runnable))
  in
  try
    while true do
      if t.total >= t.max_steps then raise (Stop Step_limit);
      match t.strategy with
      | Script _ -> (
        match t.script with
        | [] -> raise (Stop Script_done)
        | instr :: rest ->
          (* Attach the step-events hook only while an instruction that
             reads them is running; [Run]/[Finish]/[Finish_all] phases
             keep unobserved events on the fast path. *)
          (match instr with
          | Run_until _ | Run_until_label _ ->
            if not t.step_hook_on then begin
              Monitor.subscribe t.mon t.step_hook;
              t.step_hook_on <- true
            end
          | Run _ | Finish _ | Finish_bounded _ | Finish_all ->
            if t.step_hook_on then begin
              Monitor.unsubscribe t.mon t.step_hook;
              t.step_hook_on <- false
            end);
          if script_quantum t instr then begin
            t.script <- rest;
            t.instr_budget <- -1
          end)
      | Round_robin -> (
        match pick_round_robin t with
        | -1 -> no_pick ()
        | tid -> step_thread t tid)
      | Random rng -> (
        match pick_random t rng with
        | -1 -> no_pick ()
        | tid -> step_thread t tid)
      | Controlled pick -> (
        match pick t with
        | -1 -> raise (Stop Script_done)
        | tid when tid >= 0 && tid < Array.length t.threads && runnable t tid
          ->
          step_thread t tid
        | tid ->
          invalid_arg
            (Fmt.str "Sched.run: controller picked unrunnable tid %d" tid))
    done;
    assert false
  with Stop o ->
    if t.step_hook_on then begin
      Monitor.unsubscribe t.mon t.step_hook;
      t.step_hook_on <- false
    end;
    if finished_all () && o = Script_done then All_finished else o

(** Deterministic cooperative scheduler over effect-based fibers.

    This realizes the paper's execution model (Section 3): an execution is
    an alternating sequence of configurations and steps, where each step is
    a shared-memory access by one thread. Simulated threads are OCaml
    fibers that perform a [Yield] effect immediately before every shared
    access (see {!Mem}); the scheduler resumes exactly one fiber at a time,
    so every quantum is one atomic step plus thread-local computation.

    Schedules come in four flavours:
    - [Round_robin] and [Random _] for fuzzing and throughput-style runs;
    - [Script _] for the paper's adversarial constructions — e.g. Figure 1
      needs "run T1 until it has read [head.next], then run T2 to
      completion, then solo-run T1", which is exactly a three-instruction
      script;
    - [Controlled _] for systematic exploration: an external controller is
      consulted before {e every} quantum and picks the thread to step, so
      a model checker can enumerate scheduling choices one at a time (see
      [lib/explore]).

    Threads can be stalled (they model the failed/delayed threads of the
    robustness definitions) and resumed; a bounded solo run that exceeds
    its budget emits a [Progress_failure] violation (loss of lock-freedom,
    Definition 5.4(3)). *)

type t

type ctx = {
  tid : int;
  heap : Era_sim.Heap.t;
  sched : t;
}
(** Per-thread handle passed to thread bodies; all shared accesses go
    through {!Mem} with a [ctx]. *)

type instr =
  | Run of int * int
      (** [Run (tid, n)]: give [tid] exactly [n] quanta (fewer if it
          finishes). *)
  | Run_until of int * (Era_sim.Event.t -> bool)
      (** run [tid] until a quantum emits a matching event; the thread is
          left suspended right after that quantum. *)
  | Run_until_label of int * string
      (** convenience: {!Run_until} on a [Label] event with this name. *)
  | Finish of int  (** run [tid] until its body returns (or crashes). *)
  | Finish_bounded of int * int
      (** [Finish_bounded (tid, budget)]: like [Finish] but emits a
          [Progress_failure] violation if the budget is exhausted — the
          executable form of a solo-run lock-freedom check. *)
  | Finish_all  (** round-robin over all runnable threads until done. *)

type strategy =
  | Round_robin
  | Random of Era_sim.Rng.t
  | Script of instr list
  | Controlled of (t -> int)
      (** The controller is called before every quantum with the scheduler
          itself and returns the tid to step next (it must be runnable), or
          [-1] to end the run ([Script_done], or [All_finished] when every
          thread has completed). Like scripts, controlled schedules never
          take the solo inline-yield shortcut, so the controller observes a
          choice point for every single quantum. *)

type outcome =
  | All_finished
  | Script_done  (** script exhausted; some threads may still be live *)
  | Step_limit
  | No_runnable  (** only stalled/suspended threads remain *)

type thread_outcome =
  | Not_spawned
  | Running  (** suspended mid-execution *)
  | Finished
  | Crashed of exn

val create :
  ?max_steps:int -> nthreads:int -> strategy -> Era_sim.Heap.t -> t
(** [max_steps] defaults to 20 million quanta. *)

val spawn : t -> tid:int -> (ctx -> unit) -> unit
val heap : t -> Era_sim.Heap.t
val monitor : t -> Era_sim.Monitor.t
val nthreads : t -> int

val set_quantum_hook : t -> (int -> int -> int -> unit) option -> unit
(** Observability tap for the tracer ([lib/obs]): when set, the hook is
    called after every quantum with [(tid, time_before, time_after)]
    where the times are the monitor's step clock around the quantum, so
    a trace can render each quantum as a span on the thread's track.
    While a hook is installed the solo inline-yield shortcut is disabled
    so that {e every} quantum is reported, even in single-runnable-thread
    phases; seeded [Random] schedules still make the identical RNG draws
    ({!yield} draws in both paths). [None] (the default) costs one
    branch per quantum — the disabled path the perf gate's
    [trace_off_overhead] row asserts is free. *)

val run : t -> outcome
(** Drive the schedule to completion. May raise
    [Era_sim.Monitor.Violation] if the monitor is in [`Raise] mode. *)

val thread_outcome : t -> int -> thread_outcome
val steps_of : t -> int -> int
(** Quanta consumed by a thread so far — the thread's position in its own
    instruction stream. *)

val total_steps : t -> int
(** Quanta executed so far across all threads — the schedule's current
    step count. *)

(** {2 Counter snapshot / restore}

    Hooks for the explorer's [Snapshot] module: capture and restore the
    scheduler's progress counters (per-thread steps, total, round-robin
    cursor, operation-id counter). Fiber continuations are one-shot and
    therefore {e not} captured — restoring is only honest at points
    where no fiber holds progress beyond the capture: before the first
    quantum, or around work done through {!external_ctx}. *)

type counters

val snapshot_counters : t -> counters

val restore_counters : t -> counters -> unit
(** Raises [Invalid_argument] if the snapshot came from a scheduler with
    a different thread count. *)

(** {2 Runnable-set introspection}

    Read-only accessors used by exploration tooling (and tests) to
    enumerate the scheduling choices available at the current
    configuration. None of them affect the schedule. *)

val is_live : t -> int -> bool
(** Spawned and neither finished nor crashed (it may be stalled). *)

val is_runnable : t -> int -> bool
(** Live and not stalled: a legal pick for the next quantum. *)

val runnable_count : t -> int

val runnable_tids : t -> int list
(** Ascending. [runnable_tids t] is empty iff [runnable_count t = 0]. *)

val runnable_into : t -> int array -> int
(** Allocation-free variant for per-quantum callers (the explorer's
    controller): fill [buf] with the runnable tids in ascending order and
    return their count. [buf] must have length at least [nthreads t].
    Exploration workers on separate domains each own a private scheduler
    and scratch buffer — a [t] itself is single-domain and must never be
    shared across domains. *)

val current_tid : t -> int
(** The tid being stepped right now; [-1] between quanta (in particular,
    inside a [Controlled] callback). *)

val stall : t -> int -> unit
(** Mark a thread failed/delayed: [Round_robin]/[Random] skip it. Emits a
    [Stalled] event. Scripted instructions ignore stalling (a script is
    absolute authority over who runs). *)

val unstall : t -> int -> unit
val is_stalled : t -> int -> bool

val yield : ctx -> unit
(** Suspend until rescheduled. Called by {!Mem} before every shared
    access; thread bodies may also call it to create extra interleaving
    points. Outside a fiber (setup code) it is a no-op. *)

val external_ctx : t -> tid:int -> ctx
(** A context for running data-structure code {e outside} the scheduler —
    building sentinels, pre-filling, post-run assertions. Yields become
    no-ops; every access still goes through the heap and monitor. *)

val label : ctx -> string -> unit
(** Emit a [Label] breakpoint event (one quantum). *)

val run_op : ctx -> Era_sim.Event.op ->
  (unit -> Era_sim.Event.op_result) -> Era_sim.Event.op_result
(** Wrap a data-structure operation in [Invoke]/[Response] events for
    history extraction. *)

val next_opid : t -> int

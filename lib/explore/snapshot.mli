(** Base-state snapshot-restore for the explorer.

    Captures the heap image, monitor counters/log positions, and
    scheduler progress counters in one value, so a search can rewind to
    its base configuration between runs instead of rebuilding the target
    (setup allocation, pre-fill, scheme init) from scratch every time.

    Fiber continuations are one-shot in OCaml 5 and are {e not}
    captured: a snapshot is only honest at points where no fiber holds
    progress beyond it — in the explorer, the configuration before the
    first quantum. Thread bodies are re-spawned per run. *)

type t

val capture : Era_sched.Sched.t -> t
(** Snapshot the scheduler's heap, monitor, and counters. *)

val restore : Era_sched.Sched.t -> t -> unit
(** Rewind all three. The scheduler must structurally match the one the
    snapshot was captured from (same heap layout prefix, same thread
    count) — the explorer guarantees this by capturing and restoring the
    same scheduler-per-worker. *)

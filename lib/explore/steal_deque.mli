(** Per-worker deque for the randomized work-stealing explorer.

    Owner operations ({!push}, {!pop}) work LIFO at the bottom; thieves
    {!steal_half} from the top (oldest items first). Mutex-protected —
    correctness by inspection rather than by a lock-free memory-model
    argument; steals only happen when the thief is out of work, so the
    lock is uncontended in steady state. No operation ever holds two
    deque locks, so any lock order across deques is deadlock-free.

    Quiescence detection is the {e caller's} job (the explorer keeps a
    global atomic count of outstanding items): an empty deque says
    nothing about other workers' deques or in-flight items. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner end (bottom). *)

val pop : 'a t -> 'a option
(** Owner end (bottom): the most recently pushed item. *)

val steal_half : 'a t -> 'a list
(** Remove up to half the items from the top, oldest first ([[]] if the
    deque is empty). Safe to call from any domain. *)

val length : 'a t -> int
(** Telemetry snapshot; immediately stale under concurrency. *)

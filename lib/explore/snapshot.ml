(* Prefix snapshot-restore for the explorer.

   A captured snapshot bundles everything a fresh run would rebuild by
   replaying a schedule prefix from scratch: the heap image, the
   monitor's counters and log positions, and the scheduler's progress
   counters. What it deliberately does NOT capture is fiber state —
   OCaml 5 effect continuations are one-shot, so a suspended thread
   cannot be resumed twice. A snapshot is therefore only honest at
   points where no fiber holds progress beyond the capture: the explorer
   takes exactly one, of the base configuration before the first
   quantum, and uses it to avoid re-running target setup (allocation,
   pre-filling, scheme init) on every run. Thread bodies are re-spawned
   per run regardless (they are closures, not continuations).

   Restoring the base state this way is what makes the incremental XOR
   heap fingerprint usable across runs: [Heap.restore] puts back the
   captured [xfp] accumulator, so per-choice-point fingerprints stay
   O(live threads) instead of O(heap) for the entire search. *)

module Heap = Era_sim.Heap
module Monitor = Era_sim.Monitor
module Sched = Era_sched.Sched

type t = {
  heap : Heap.snapshot;
  mon : Monitor.state;
  sched : Sched.counters;
}

let capture (s : Sched.t) : t =
  {
    heap = Heap.snapshot (Sched.heap s);
    mon = Monitor.snapshot (Sched.monitor s);
    sched = Sched.snapshot_counters s;
  }

let restore (s : Sched.t) (t : t) =
  Heap.restore (Sched.heap s) t.heap;
  Monitor.restore (Sched.monitor s) t.mon;
  Sched.restore_counters s t.sched

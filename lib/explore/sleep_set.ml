(* Footprints and sleep sets for dynamic partial-order reduction.

   A quantum's footprint summarizes the shared locations it touched, as
   observed through the monitor's event hooks. Two quanta are
   independent (they commute) when their footprints do not conflict;
   sleep sets use that relation to skip sibling subtrees that are
   guaranteed to be Mazurkiewicz-equivalent to already-explored ones.

   The encoding is deliberately conservative wherever the hooks cannot
   see everything:

   - Heap accesses ([Access]/[Key_read]) carry (addr, field, kind) and
     get precise per-location entries. Pointer and aux fields share one
     field-code space (the [Access] event does not distinguish them), so
     ptr field [k] and aux field [k] alias — a false conflict, never a
     missed one.
   - Allocator traffic ([Alloc]/[Retire]/[Reclaim]/[Share]) writes both
     a whole-cell location (conflicting with any access to that address)
     and the global pseudo-location (free list, monitor counters — the
     robustness watcher reads the retired count).
   - Scheme-state events ([Protect]/[Epoch]/[Neutralize]) and
     stall/resume write the global pseudo-location: hazard arrays,
     epoch counters etc. live outside the simulated heap, so per-slot
     precision is not observable here.
   - A quantum that emitted {e nothing} attributable gets a global
     write: schemes also mutate invisible state on event-free quanta
     (e.g. HP clearing its slots after a bare fence), and treating such
     quanta as independent of everything would be unsound.

   Conservative entries only cost reduction, never soundness: a false
   conflict wakes a sleeping thread early, re-exploring an equivalent
   interleaving. *)

module Event = Era_sim.Event
module Vec = Era_sim.Vec

type footprint = int array

(* Entry layout: [loc * 2 + is_write] with [loc = (addr + 1) * 10 +
   fcode]; [loc = 0] is the global pseudo-location. *)
let fc_field f = f land 7 (* per-field code, 0..7 *)
let fc_key = 8
let fc_all = 9 (* whole-cell: alloc / retire / reclaim / share *)
let pack ~addr ~fcode ~w = (((((addr + 1) * 10) + fcode) * 2) + w : int)
let global_write = 1 (* loc 0, write *)

let entry_conflicts a b =
  (a land 1 <> 0 || b land 1 <> 0)
  &&
  let la = a lsr 1 and lb = b lsr 1 in
  la = lb
  ||
  let aa = la / 10 and ab = lb / 10 in
  aa = ab && aa <> 0 && (la mod 10 = fc_all || lb mod 10 = fc_all)

let conflicts (f1 : footprint) (f2 : footprint) =
  let n1 = Array.length f1 and n2 = Array.length f2 in
  let rec outer i =
    i < n1
    &&
    let rec inner j = j < n2 && (entry_conflicts f1.(i) f2.(j) || inner (j + 1)) in
    inner 0 || outer (i + 1)
  in
  outer 0

(* ------------------------------------------------------------------ *)
(* Building footprints from the event stream                          *)
(* ------------------------------------------------------------------ *)

(* The builder is an int Vec the explorer's monitor hook pushes into;
   [finalize] cuts a footprint and resets it for the next quantum. *)
type builder = int Vec.t

let builder () : builder = Vec.create ()
let reset (b : builder) = Vec.clear b

let record (b : builder) (ev : Event.t) =
  match ev with
  | Access { addr; field; kind; _ } ->
    let w = match kind with
      | Event.Write | Event.Cas true -> 1
      | Event.Read | Event.Cas false -> 0
    in
    Vec.push b (pack ~addr ~fcode:(fc_field field) ~w)
  | Key_read { addr; _ } -> Vec.push b (pack ~addr ~fcode:fc_key ~w:0)
  | Alloc { addr; _ } | Retire { addr; _ } | Reclaim { addr; _ }
  | Share { addr; _ } ->
    Vec.push b (pack ~addr ~fcode:fc_all ~w:1);
    Vec.push b global_write
  | Protect _ | Epoch _ | Neutralize _ | Stalled _ | Resumed _ ->
    Vec.push b global_write
  | Violation _ | Invoke _ | Response _ | Label _ | Note _ -> ()

(* Tags the explorer subscribes the [record] hook to. *)
let tags =
  Event.[
    tag_alloc; tag_share; tag_retire; tag_reclaim; tag_access;
    tag_key_read; tag_protect; tag_epoch; tag_neutralize; tag_stalled;
    tag_resumed;
  ]

let empty_conservative : footprint = [| global_write |]

let finalize (b : builder) : footprint =
  let n = Vec.length b in
  if n = 0 then empty_conservative
  else begin
    let fp = Array.init n (Vec.get b) in
    Vec.clear b;
    fp
  end

(* ------------------------------------------------------------------ *)
(* Sleep entries                                                      *)
(* ------------------------------------------------------------------ *)

(* A sleeping scheduling alternative: stepping [tid] at the node where
   the entry was created starts a subtree already explored (or covered
   by an equivalent state); the entry stays asleep until an executed
   quantum's footprint conflicts with [fp] — the footprint [tid]'s
   quantum had from that node. *)
type entry = { tid : int; fp : footprint }

(* [wake entries alive fp] clears the alive-bit of every entry whose
   footprint conflicts with [fp]. [alive] is a bitmask over [entries]
   indices. *)
let wake (entries : entry array) alive (fp : footprint) =
  let alive = ref alive in
  for i = 0 to Array.length entries - 1 do
    if (!alive lsr i) land 1 = 1 && conflicts entries.(i).fp fp then
      alive := !alive land lnot (1 lsl i)
  done;
  !alive

(* Tid bitmask of the entries still alive. *)
let tid_mask (entries : entry array) alive =
  let m = ref 0 in
  for i = 0 to Array.length entries - 1 do
    if (alive lsr i) land 1 = 1 then m := !m lor (1 lsl entries.(i).tid)
  done;
  !m

(* Shared accumulator of the edges already explored from one node:
   sibling deviations created together put each other to sleep in
   exploration order (earlier-explored siblings join the group, so
   later-popped siblings start with them asleep). Only the sequential
   search mutates groups — exploration order is ill-defined across
   domains, so parallel modes leave [edges] at its initial content. *)
type group = { mutable edges : entry list }

let group_create e : group = { edges = [ e ] }
let group_add g e = g.edges <- e :: g.edges
let group_edges g = g.edges

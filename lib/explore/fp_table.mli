(** Lock-striped set of visited-state fingerprints, shared by the
    parallel explorer's domain workers.

    One lookup per run (at the deviating quantum), so the table is far
    off the per-quantum hot path; striping exists to keep concurrent
    runs from serializing on a single table mutex. Safe for concurrent
    use from any number of domains. *)

type t

val create : ?stripes:int -> unit -> t
(** [stripes] (default 64) is rounded up to a power of two. *)

val check_and_add : t -> int -> bool
(** [check_and_add t fp] is [true] iff [fp] was already present, and
    inserts it otherwise — atomically, so concurrent callers with the
    same fingerprint agree on a single first visitor. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val size : t -> int

val elements : t -> int list
(** All fingerprints, unsorted. Post-search reporting only. *)

(** Lock-striped visited-state table over int fingerprints, shared by
    the explorer's domain workers, with a sleep-set tid-mask per entry.

    A state visited with sleep set [S] had every successor outside [S]
    explored; a later visitor with sleep set [S'] is covered iff
    [S ⊆ S'] (its would-be exploration is a subset of what already
    happened). Searches without sleep sets pass mask [0], which makes
    the table behave as a plain visited set. Safe for concurrent use
    from any number of domains. *)

type t

val create : ?stripes:int -> unit -> t
(** [stripes] (default 64) is rounded up to a power of two. *)

val check_covered : t -> int -> mask:int -> bool
(** [check_covered t fp ~mask] is [true] iff [fp] was already visited
    with a stored mask that is a subset of [mask]; otherwise it records
    the visit (inserting [mask], or intersecting it into the stored
    mask) and returns [false] — atomically, so concurrent callers with
    the same fingerprint agree on a single first visitor. *)

val check_and_add : t -> int -> bool
(** [check_covered ~mask:0]: plain visited-set semantics — [true] iff
    [fp] was already present, inserting it otherwise. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val size : t -> int

val elements : t -> int list
(** All fingerprints, unsorted. Post-search reporting only. *)

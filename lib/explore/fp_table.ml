(* Lock-striped visited-state set over int fingerprints.

   The explorer consults the table exactly once per run (at the deviating
   quantum), so contention is per-run, not per-quantum; a modest stripe
   count keeps the common case — distinct fingerprints hitting distinct
   stripes — entirely uncontended across domain workers. Keys are the
   already well-mixed [Heap.fingerprint ⊕ Monitor.fingerprint ⊕ thread
   positions] hashes, so stripe selection just folds the high bits in. *)

type t = {
  stripes : (int, unit) Hashtbl.t array;
  locks : Mutex.t array;
  mask : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(stripes = 64) () =
  let n = pow2_at_least (max 1 stripes) 1 in
  {
    stripes = Array.init n (fun _ -> Hashtbl.create 256);
    locks = Array.init n (fun _ -> Mutex.create ());
    mask = n - 1;
  }

let stripe_of t fp = (fp lxor (fp lsr 17) lxor (fp lsr 31)) land t.mask

(* [true] iff [fp] was already present; otherwise inserts it. The
   check-and-insert is atomic per stripe, so two workers reaching the
   same state concurrently agree on exactly one first visitor. *)
let check_and_add t fp =
  let i = stripe_of t fp in
  let l = t.locks.(i) in
  Mutex.lock l;
  let seen = Hashtbl.mem t.stripes.(i) fp in
  if not seen then Hashtbl.replace t.stripes.(i) fp ();
  Mutex.unlock l;
  seen

let mem t fp =
  let i = stripe_of t fp in
  let l = t.locks.(i) in
  Mutex.lock l;
  let seen = Hashtbl.mem t.stripes.(i) fp in
  Mutex.unlock l;
  seen

let add t fp = ignore (check_and_add t fp)

let size t =
  Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.stripes

(* Unsorted; callers sort. Only used for post-search reporting, never on
   the hot path, so locking stripe-by-stripe is fine. *)
let elements t =
  let acc = ref [] in
  Array.iteri
    (fun i h ->
      Mutex.lock t.locks.(i);
      Hashtbl.iter (fun fp () -> acc := fp :: !acc) h;
      Mutex.unlock t.locks.(i))
    t.stripes;
  !acc

(* Lock-striped visited-state table over int fingerprints, with a
   sleep-set mask per entry.

   The classic search consults the table once per run (at the deviating
   quantum); the DPOR search consults it at every quantum past the
   deviation. Either way contention is low — distinct fingerprints hit
   distinct stripes — and keys are the already well-mixed
   [Heap.(x)fingerprint ⊕ Monitor.fingerprint ⊕ thread positions]
   hashes, so stripe selection just folds the high bits in.

   Each entry stores the tid bitmask of the sleep set the state was
   visited with. A visit explores every successor NOT in its sleep set,
   so a state is covered for a new visitor iff the stored mask is a
   subset of the new visitor's mask (everything the new visitor would
   explore was already explored). On a non-covered revisit the stored
   mask shrinks to the intersection: after the new visit completes, the
   jointly-unexplored successors are exactly the intersection. A search
   without sleep sets passes [mask = 0], which degenerates to exact
   set-membership semantics: the first visit stores 0, and 0 ⊆ 0 makes
   every revisit covered. *)

type t = {
  stripes : (int, int) Hashtbl.t array;
  locks : Mutex.t array;
  mask : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(stripes = 64) () =
  let n = pow2_at_least (max 1 stripes) 1 in
  {
    stripes = Array.init n (fun _ -> Hashtbl.create 256);
    locks = Array.init n (fun _ -> Mutex.create ());
    mask = n - 1;
  }

let stripe_of t fp = (fp lxor (fp lsr 17) lxor (fp lsr 31)) land t.mask

(* [true] iff [fp] is covered for a visitor carrying sleep-tid-mask
   [mask]; otherwise records the visit (insert, or intersect the stored
   mask) and returns [false]. Atomic per stripe, so two workers reaching
   the same state concurrently agree on exactly one first visitor. *)
let check_covered t fp ~mask =
  let i = stripe_of t fp in
  let l = t.locks.(i) in
  Mutex.lock l;
  let covered =
    match Hashtbl.find_opt t.stripes.(i) fp with
    | Some stored when stored land lnot mask = 0 -> true
    | Some stored ->
      Hashtbl.replace t.stripes.(i) fp (stored land mask);
      false
    | None ->
      Hashtbl.replace t.stripes.(i) fp mask;
      false
  in
  Mutex.unlock l;
  covered

let check_and_add t fp = check_covered t fp ~mask:0

let mem t fp =
  let i = stripe_of t fp in
  let l = t.locks.(i) in
  Mutex.lock l;
  let seen = Hashtbl.mem t.stripes.(i) fp in
  Mutex.unlock l;
  seen

let add t fp = ignore (check_and_add t fp)

let size t =
  Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.stripes

(* Unsorted; callers sort. Only used for post-search reporting, never on
   the hot path, so locking stripe-by-stripe is fine. *)
let elements t =
  let acc = ref [] in
  Array.iteri
    (fun i h ->
      Mutex.lock t.locks.(i);
      Hashtbl.iter (fun fp _ -> acc := fp :: !acc) h;
      Mutex.unlock t.locks.(i))
    t.stripes;
  !acc

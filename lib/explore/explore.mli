(** Systematic schedule exploration: bounded model checking over the
    deterministic scheduler.

    The paper's refutations (Figure 1 / Theorem 6.1, Figure 2 /
    Appendix E) are hand-crafted adversarial interleavings; this module
    {e searches} for them instead. A {!target} packages a deterministic
    multi-threaded execution (threads whose operation sequences do not
    depend on the schedule); {!explore} then enumerates schedules
    depth-first by stateless re-execution — each run replays a recorded
    prefix of scheduling choices and deviates at the frontier — under
    CHESS-style iterative preemption bounding: all schedules reachable
    with at most [k] context switches away from a runnable thread are
    explored before any schedule needing [k+1]. Unscheduled threads are
    de-facto stalled threads, so the search space at small bounds already
    contains the delayed-thread executions of the robustness definitions
    (5.1/5.2) as well as the preempt-and-churn safety executions of
    Figure 2.

    Reduction devices keep the space tractable:
    - {e state pruning}: after a run's first deviating quantum the global
      state — heap content, SMR bookkeeping, per-thread positions — is
      fingerprinted; runs reaching an already-visited state are cut short.
      Pruning is a coverage heuristic (hash collisions and budget
      differences can drop schedules) but never affects the soundness of
      a reported violation, which is a concrete witnessed execution.
    - {e preemption bounding}: empirically (CHESS), real concurrency bugs
      need very few preemptions; both paper constructions need one.
    - {e sleep sets} ([config.dpor]): dynamic partial-order reduction.
      When a sibling schedule at a choice point has already been
      explored, the deviating thread is put {e to sleep} in the subtree;
      it wakes only when some executed quantum's memory footprint
      (reads/writes per heap cell field, plus SMR-global effects,
      observed through the monitor's event hooks) conflicts with the
      footprint it was scheduled under. Scheduling a sleeping thread
      commutes with the explored sibling, so those schedules are covered
      by construction: configurations whose every runnable thread sleeps
      are cut, and the visited table stores per-state sleep masks so a
      state is only "visited" for the sleep sets it was covered under.
      DPOR-mode pruning also checks {e every} quantum past the deviation
      (not just the first), made affordable by an incremental
      XOR heap fingerprint that is O(threads), not O(heap), to read.

    A found violation is shrunk by delta-debugging its quantum-by-quantum
    schedule to a minimal still-violating sequence, compressed into a
    [Sched.Script] ([Run (tid, n)] instructions), and serialized as a
    replayable JSON counterexample ({!save} / {!load} / {!replay}).

    The search is embarrassingly parallel — every run is a stateless
    re-execution of a choice-point prefix — so [config.domains > 1]
    shards the frontier across OCaml 5 domains, in one of two shapes:
    the default level-synchronous batched work queue (preserves minimal
    preemption bounds), or randomized work-stealing deques
    ([config.steal]) with no level barriers — each worker runs a private
    depth-first loop and steals half a random victim's deque when it
    drains. Both share a lock-striped visited-fingerprint table and a
    first-violation latch that cancels in-flight workers before
    shrinking proceeds sequentially on the winning schedule (see
    {!explore} for the exact determinism contract). *)

type target = {
  name : string;  (** e.g. ["hp/harris-list"] — round-tripped through JSON *)
  nthreads : int;
  params : (string * int) list;
      (** opaque construction parameters (seed, key range, ops per
          thread, …), carried into the counterexample so the CLI can
          rebuild the same target for replay *)
  robustness_bound : int option;
      (** when [Some b], a watcher emits a [Robustness_exceeded]
          violation the first time the retired backlog exceeds [b]
          (Definitions 5.1/5.2); [None] searches for safety violations
          only *)
  make : trace:bool -> Era_sched.Sched.strategy -> Era_sched.Sched.t;
      (** Build a fresh instance: heap and monitor (in [`Record] mode,
          event trace kept iff [trace]), structure setup and prefill, and
          all [nthreads] threads spawned. Must be deterministic — every
          call yields the identical initial configuration and thread
          bodies whose operation sequences are schedule-independent. *)
}

type violation_info = {
  v_kind : Era_sim.Event.violation;
  v_tid : int;
  v_step : int;  (** quantum index at which the violation fired *)
  v_detail : string;
}

type counterexample = {
  c_target : string;  (** {!field:target.name} of the violating target *)
  c_nthreads : int;
  c_params : (string * int) list;
  c_violation : violation_info;
  c_steps : int list;
      (** the shrunk schedule: the tid stepped at each quantum, ending at
          the violating quantum *)
  c_script : Era_sched.Sched.instr list;
      (** [c_steps] compressed into [Run (tid, n)] instructions *)
  c_preemptions : int;  (** preemptions in [c_steps] *)
}

type stats = {
  runs : int;  (** executions performed during the search *)
  states : int;  (** quanta executed across all runs ("states visited") *)
  pruned : int;  (** runs cut short by the visited-fingerprint set *)
  sleep_cuts : int;
      (** runs cut with every runnable thread asleep (DPOR mode): the
          remaining schedules commute with already-explored siblings *)
  shrink_runs : int;  (** extra executions spent delta-debugging *)
  cex_preemptions : int option;
      (** preemption bound at which the violation was found *)
  levels_completed : int;
      (** preemption bounds fully exhausted without finding a violation *)
  failed_runs : int;
      (** runs that raised instead of completing (fault injection, target
          bugs); nonzero means the coverage report is partial *)
  domains_used : int;  (** worker domains the search actually ran on *)
  per_domain_runs : int list;
      (** runs executed by each worker domain, index = domain ordinal
          (a single entry for the sequential search); sums to [runs] —
          the utilization breakdown behind the heartbeat telemetry *)
}

type search_result = {
  res_stats : stats;
  res_cex : counterexample option;
  res_fps : int list;
      (** sorted distinct deviation-point fingerprints, recorded only
          when [config.record_fps] — the coverage witness the
          differential tests compare across domain counts *)
}

type progress = {
  pg_level : int;  (** preemption level being explored *)
  pg_runs : int;
  pg_states : int;
  pg_pruned : int;
  pg_frontier : int;  (** unexplored prefixes left at this level *)
  pg_deferred : int;  (** prefixes already seeded for the next level *)
  pg_fp_size : int;  (** visited-fingerprint table occupancy *)
  pg_budget_left : int;  (** runs remaining in [max_runs] *)
  pg_per_domain_runs : int array;  (** runs per worker domain so far *)
}
(** A telemetry snapshot of a search in flight, delivered through
    [config.on_progress]. Parallel-mode snapshots are racy reads of
    monotone counters — each may be a few runs stale, but never
    invented. *)

type config = {
  max_preemptions : int;  (** highest preemption bound to search *)
  max_runs : int;  (** total execution budget for the search *)
  max_steps : int;  (** per-run quantum budget *)
  shrink : bool;
  shrink_budget : int;  (** execution budget for delta-debugging *)
  domains : int;
      (** worker domains; 1 (the default) runs the exact sequential DFS,
          [> 1] shards each preemption level's frontier across
          [Domain.spawn] workers (see {!explore}) *)
  batch : int;
      (** schedule prefixes handed to a worker per queue interaction
          (level-synchronous parallel mode only); amortizes queue
          contention *)
  steal : bool;
      (** with [domains > 1], use randomized work-stealing deques
          instead of the level-synchronous queue: no level barriers, so
          workers never idle at level boundaries, at the price of the
          reported violation's preemption level not being guaranteed
          minimal. Ignored when [domains <= 1]. *)
  prune : bool;
      (** visited-fingerprint pruning; disable only for coverage
          comparisons — the full tree is explored without it *)
  dpor : bool;
      (** sleep-set dynamic partial-order reduction (see the module
          header). Changes which runs are executed — [domains = 1]
          results remain deterministic but differ from classic-mode
          stats. Sleep sets only cut schedules that commute with
          explored ones, so every violation stays reachable; under
          preemption bounding the commuted representative can cost one
          more preemption, so in principle a violation can surface at a
          higher level than classic mode finds it (the differential
          tests check every built-in cell finds its violation at the
          same level). *)
  record_fps : bool;  (** collect {!field:search_result.res_fps} *)
  fault_hook : (int -> unit) option;
      (** test-only: called with each run's index before it executes; an
          exception it raises is charged to [failed_runs] and the search
          continues with the remaining frontier *)
  progress_every : int;
      (** emit a {!progress} snapshot roughly every this many runs;
          [0] (the default) disables telemetry entirely *)
  on_progress : (progress -> unit) option;
      (** heartbeat consumer. Always invoked on the calling domain (the
          parallel search reports from its coordinator worker), so it
          may print or mutate caller state without synchronization. It
          runs inside the search loop — keep it cheap. *)
}

val default_config : config
(** 2 preemptions, 20_000 runs, 50_000 steps/run, shrinking on with a
    budget of 500 runs; 1 domain, batch 16, level-synchronous (no
    stealing), pruning on, DPOR off, no fingerprint recording, no fault
    hook. *)

val explore : ?config:config -> target -> search_result
(** Search the target's schedule space. Stops at the first violation
    (shrunk if [config.shrink]), or when every schedule within
    [max_preemptions] has been covered, or when [max_runs] is spent.

    Determinism contract, by mode:
    - [domains = 1], [dpor = false]: the sequential CHESS-style DFS,
      fully deterministic — identical target and config give identical
      stats and counterexample, bit for bit across releases (the golden
      counts the test suite pins).
    - [domains = 1], [dpor = true]: still fully deterministic, but the
      sleep-set cuts change which runs execute, so stats differ from
      classic mode (fewer runs/states, same violations found).
    - [domains > 1], level-synchronous (default): level barriers
      preserve the iterative-bounding order, so a found violation still
      carries the minimal preemption bound; {e which} violating schedule
      is reported (and, with pruning, the run/state counts) may vary
      across domain counts and timings.
    - [domains > 1], [steal = true]: additionally, the reported
      violation's preemption level is the level of the schedule that
      found it — not guaranteed minimal, because levels interleave
      without barriers.
    In every mode a reported violation is a concretely witnessed
    execution that replays sequentially to the same violation kind, and
    a no-violation verdict covers the same bounded schedule space. *)

type replay_result = {
  rp_violation : violation_info option;
  rp_outcome : Era_sched.Sched.outcome;
  rp_trace : Era_sim.Event.t list;
      (** the full monitor event trace of the replayed execution *)
}

val run_steps :
  ?trace:bool -> ?on_sched:(Era_sched.Sched.t -> unit) -> target ->
  int list -> replay_result
(** Execute the target under the exact quantum-by-quantum schedule
    [steps] (entries naming finished threads are skipped), with the same
    violation/robustness watchers the explorer uses. [on_sched] is
    called with the freshly built scheduler before the run starts —
    the hook point for attaching a tracer
    ([Era_obs.Sim_trace.attach]/[attach_sched]) to an execution whose
    scheduler the caller never sees otherwise. *)

val replay :
  ?trace:bool -> ?on_sched:(Era_sched.Sched.t -> unit) -> target ->
  counterexample -> replay_result
(** {!run_steps} on the counterexample's shrunk schedule. *)

val preemptions_of_steps : int list -> int
(** Context switches away from a still-live thread (first choice and
    switches after a thread's last quantum are free). Counts against the
    steps list alone, treating a tid's final occurrence as its end. *)

(** {2 Serialization} *)

val save : file:string -> counterexample -> unit
(** Write the counterexample as an indented JSON document, creating the
    parent directories if needed. Raises [Sys_error] with the offending
    path in the message when the path is unwritable. *)

val load : file:string -> (counterexample, string) result

val counterexample_to_json : counterexample -> Era_metrics.Json.t
val counterexample_of_json :
  Era_metrics.Json.t -> (counterexample, string) result

(** {2 Shared violation reporting}

    Randomized stall fuzzing ([Applicability.stall_fuzz]) reports through
    the same record types as systematic exploration, so downstream tables
    consume one format. *)

type fuzz_report = {
  fz_tries : int;
  fz_found : int;  (** runs that produced a violation or thread crash *)
  fz_first : violation_info option;
}

val violation_of_event :
  step:int -> Era_sim.Event.t -> violation_info option
(** [Some] iff the event is a [Violation]. *)

val stats_registry : stats -> Era_obs.Registry.t
(** Publish final search statistics into a fresh metrics registry
    (counters [explore_runs], [explore_states], …, one labelled
    [explore_domain_runs] counter per worker domain) — the payload of
    the heartbeat JSON sidecar and the unified export path shared with
    the sim monitor and native scheme stats. *)

val pp_violation : Format.formatter -> violation_info -> unit
val pp_counterexample : Format.formatter -> counterexample -> unit
val pp_stats : Format.formatter -> stats -> unit

(** Footprints and sleep sets for dynamic partial-order reduction.

    The explorer observes each quantum's shared accesses through the
    monitor's event hooks and condenses them into a {e footprint} — a
    small int array of (location, read/write) entries. Two quanta
    commute when their footprints don't {!conflicts}; a sleep set
    (Godefroid) uses that relation to prune sibling subtrees that only
    reorder independent quanta.

    Everything the hooks cannot attribute precisely is encoded
    conservatively (whole-cell or global pseudo-location entries), which
    can only cost reduction, never soundness: a false conflict wakes a
    sleeper early and re-explores an equivalent interleaving. *)

type footprint = int array
(** Entries are packed ints; treat as abstract outside tests. *)

val conflicts : footprint -> footprint -> bool
(** Do the two quanta fail to commute? True iff some location is touched
    by both with at least one write. *)

val pack : addr:int -> fcode:int -> w:int -> int
(** Exposed for tests: one footprint entry for field-code [fcode]
    ([0..7] per-field, {!fc_key}, or {!fc_all}) of cell [addr],
    write iff [w = 1]. *)

val fc_key : int
val fc_all : int

val global_write : int
(** The packed entry for a write to the global pseudo-location
    (allocator / scheme state); conflicts with every other global
    entry. *)

val empty_conservative : footprint
(** The footprint assigned to a quantum that emitted no attributable
    event: a single global write. Schemes mutate hook-invisible state
    (hazard slots, epoch caches) on such quanta, so they cannot soundly
    be treated as independent of everything. *)

(** {2 Building footprints from the event stream} *)

type builder

val builder : unit -> builder
val reset : builder -> unit

val record : builder -> Era_sim.Event.t -> unit
(** Append the entries for one event. The explorer subscribes this (via
    a closure tagging the current builder) to {!tags}. *)

val tags : int list
(** The {!Era_sim.Event.tag} kinds [record] cares about. *)

val finalize : builder -> footprint
(** Cut the footprint accumulated since the last [finalize]/[reset] and
    clear the builder. An empty builder yields {!empty_conservative}. *)

(** {2 Sleep entries} *)

type entry = { tid : int; fp : footprint }
(** A sleeping alternative: stepping [tid] at the node that created the
    entry is covered by an already-explored subtree; [fp] is the
    footprint [tid]'s quantum had from that node. *)

val wake : entry array -> int -> footprint -> int
(** [wake entries alive fp] clears the alive-bit (bitmask over [entries]
    indices) of every entry whose footprint conflicts with [fp] — the
    executed quantum invalidated the commutation argument for those
    sleepers. *)

val tid_mask : entry array -> int -> int
(** Bitmask over {e tids} of the entries still alive. *)

(** {2 Sibling groups}

    Accumulator of the deviations already explored from one node, shared
    by the sibling work items created there: siblings explored earlier
    join the group, so siblings popped later start with them asleep.
    Only the sequential search mutates groups (exploration order is
    ill-defined across domains); parallel modes keep the initial,
    parent-chosen-only content — a sound subset. *)

type group

val group_create : entry -> group
val group_add : group -> entry -> unit
val group_edges : group -> entry list

(** Mutex + condvar work queue with batched handoff, for domain workers
    that both consume and produce work (a run's same-level children go
    back into the queue).

    Termination is by quiescence: {!take} returns [None] once the queue
    is empty and no worker is mid-batch (so nobody can produce more), or
    after {!stop}. Safe for concurrent use from any number of domains. *)

type 'a t

val create : ?batch:int -> unit -> 'a t
(** [batch] (default 16) bounds how many items one {!take} hands out. *)

val push_batch : 'a t -> 'a list -> unit
(** Insert a whole list under one lock acquisition. Never blocks. *)

val take : 'a t -> 'a list option
(** Block until work arrives (up to [batch] items, caller becomes
    {e active}) or the queue quiesces / is stopped ([None]). Every
    [Some] result must be followed by exactly one {!batch_done} — the
    crash-safety contract: a worker that fails mid-batch must still call
    it (e.g. via [Fun.protect]) or the quiescence count deadlocks. *)

val batch_done : 'a t -> unit
(** Declare the batch from the matching {!take} fully processed (all
    children pushed). *)

val stop : 'a t -> unit
(** Make every current and future {!take} return [None]. Idempotent. *)

val stopped : 'a t -> bool

val length : 'a t -> int
(** Undistributed items currently queued — a telemetry snapshot (the
    heartbeat's frontier depth), immediately stale under concurrency. *)

val drain : 'a t -> 'a list
(** Remove and return all undistributed items (after an early {!stop},
    the unexplored remainder of the level's frontier). *)

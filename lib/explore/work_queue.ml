(* Mutex + condvar work queue with batched handoff and quiescence
   detection, shared by the parallel explorer's domain workers.

   Workers both consume and produce: a run's non-preempting children go
   back into the same queue (they belong to the same preemption level).
   A level is exhausted when the queue is empty AND no worker is mid-
   batch — an in-flight worker may still push children — which is what
   the [active] count tracks. Handoff is batched ([take] hands out up to
   [batch] prefixes per lock acquisition, [push_batch] inserts a whole
   child list under one) so queue contention is amortized across many
   runs even when individual runs are microseconds long. *)

type 'a t = {
  m : Mutex.t;
  cond : Condition.t;
  q : 'a Queue.t;
  batch : int;
  mutable active : int;  (* workers holding an unfinished batch *)
  mutable stopped : bool;
}

let create ?(batch = 16) () =
  {
    m = Mutex.create ();
    cond = Condition.create ();
    q = Queue.create ();
    batch = max 1 batch;
    active = 0;
    stopped = false;
  }

let push_batch t xs =
  match xs with
  | [] -> ()
  | xs ->
    Mutex.lock t.m;
    List.iter (fun x -> Queue.add x t.q) xs;
    Condition.broadcast t.cond;
    Mutex.unlock t.m

(* Blocks until work is available (returning up to [batch] items and
   marking the caller active) or the level is over ([None]: stopped, or
   drained with no active worker left to produce more). Every [Some]
   must be matched by exactly one [batch_done]. *)
let take t =
  Mutex.lock t.m;
  let rec wait () =
    if t.stopped then None
    else if not (Queue.is_empty t.q) then begin
      let n = min t.batch (Queue.length t.q) in
      let acc = ref [] in
      for _ = 1 to n do
        acc := Queue.pop t.q :: !acc
      done;
      t.active <- t.active + 1;
      Some (List.rev !acc)
    end
    else if t.active = 0 then begin
      (* Globally drained: wake the other waiters so they exit too. *)
      Condition.broadcast t.cond;
      None
    end
    else begin
      Condition.wait t.cond t.m;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.m;
  r

(* Liveness invariant, checked here and relied on by [take]: [active] is
   the number of [take]s not yet matched by a [batch_done], every check
   and every wait happens under [t.m], and a waiter only blocks when the
   queue is empty and [active > 0] — so the matching [batch_done] (whose
   existence the take/batch_done contract guarantees) is still to come
   and will run this broadcast. A waiter can therefore never sleep
   through the last producer retiring. The broadcast is deliberately NOT
   conditioned on queue emptiness: [push_batch] already signals its own
   pushes, but making the wake-up here unconditional keeps [take]'s
   progress argument local — every event a waiter waits for (new items,
   or quiescence) broadcasts, full stop. *)
let batch_done t =
  Mutex.lock t.m;
  assert (t.active > 0);
  t.active <- t.active - 1;
  if t.active = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.m

let stop t =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.m

let stopped t =
  Mutex.lock t.m;
  let s = t.stopped in
  Mutex.unlock t.m;
  s

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

(* Remaining (undistributed) items, e.g. to roll an unfinished level's
   frontier over after an early stop. *)
let drain t =
  Mutex.lock t.m;
  let acc = ref [] in
  while not (Queue.is_empty t.q) do
    acc := Queue.pop t.q :: !acc
  done;
  Mutex.unlock t.m;
  List.rev !acc

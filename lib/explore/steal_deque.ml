(* Per-worker work-stealing deque for the randomized explorer.

   Chase–Lev shape — the owner pushes and pops at the bottom (LIFO,
   which keeps the frontier depth-first and bounded), thieves take from
   the top (the oldest, typically shallowest and therefore largest,
   subtrees) — but mutex-protected rather than lock-free: steals only
   happen when a thief's own deque is empty, so the lock is uncontended
   in steady state and correctness is by inspection instead of by a
   memory-model argument. Items are exploration work items, microseconds
   to generate and often milliseconds to process; a mutex per operation
   is far below the noise floor.

   Deadlock discipline: a thief holds the victim's lock only while
   copying items out ([steal_half] returns them), never while touching
   its own deque — no operation ever holds two deque locks. *)

type 'a t = {
  m : Mutex.t;
  mutable buf : 'a option array;  (* circular; [None] = empty slot *)
  mutable head : int;  (* steal end; index of the oldest item *)
  mutable size : int;
}

let create () = { m = Mutex.create (); buf = Array.make 64 None; head = 0; size = 0 }

let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (cap * 2) None in
  for i = 0 to t.size - 1 do
    nbuf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- nbuf;
  t.head <- 0

(* Owner end. *)
let push t x =
  Mutex.lock t.m;
  if t.size = Array.length t.buf then grow t;
  t.buf.((t.head + t.size) mod Array.length t.buf) <- Some x;
  t.size <- t.size + 1;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  let r =
    if t.size = 0 then None
    else begin
      let i = (t.head + t.size - 1) mod Array.length t.buf in
      let x = t.buf.(i) in
      t.buf.(i) <- None;
      t.size <- t.size - 1;
      x
    end
  in
  Mutex.unlock t.m;
  r

(* Thief end: take (up to) half the victim's items, oldest first. The
   returned list preserves age order, so a thief that pushes them into
   its own deque and pops LIFO continues with the victim's
   newest-stolen item — the usual steal-half locality compromise. *)
let steal_half t =
  Mutex.lock t.m;
  let n = (t.size + 1) / 2 in
  let acc = ref [] in
  let cap = Array.length t.buf in
  for k = n - 1 downto 0 do
    let i = (t.head + k) mod cap in
    (match t.buf.(i) with
    | Some x -> acc := x :: !acc
    | None -> assert false);
    t.buf.(i) <- None
  done;
  t.head <- (t.head + n) mod cap;
  t.size <- t.size - n;
  Mutex.unlock t.m;
  !acc

let length t =
  Mutex.lock t.m;
  let n = t.size in
  Mutex.unlock t.m;
  n

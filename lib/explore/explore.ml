module Event = Era_sim.Event
module Monitor = Era_sim.Monitor
module Heap = Era_sim.Heap
module Sched = Era_sched.Sched
module Json = Era_metrics.Json

type target = {
  name : string;
  nthreads : int;
  params : (string * int) list;
  robustness_bound : int option;
  make : trace:bool -> Sched.strategy -> Sched.t;
}

type violation_info = {
  v_kind : Event.violation;
  v_tid : int;
  v_step : int;
  v_detail : string;
}

type counterexample = {
  c_target : string;
  c_nthreads : int;
  c_params : (string * int) list;
  c_violation : violation_info;
  c_steps : int list;
  c_script : Sched.instr list;
  c_preemptions : int;
}

type stats = {
  runs : int;
  states : int;
  pruned : int;
  shrink_runs : int;
  cex_preemptions : int option;
  levels_completed : int;
  failed_runs : int;
  domains_used : int;
  per_domain_runs : int list;
}

type search_result = {
  res_stats : stats;
  res_cex : counterexample option;
  res_fps : int list;
}

type progress = {
  pg_level : int;
  pg_runs : int;
  pg_states : int;
  pg_pruned : int;
  pg_frontier : int;
  pg_deferred : int;
  pg_fp_size : int;
  pg_budget_left : int;
  pg_per_domain_runs : int array;
}

type config = {
  max_preemptions : int;
  max_runs : int;
  max_steps : int;
  shrink : bool;
  shrink_budget : int;
  domains : int;
  batch : int;
  prune : bool;
  record_fps : bool;
  fault_hook : (int -> unit) option;
  progress_every : int;
  on_progress : (progress -> unit) option;
}

let default_config =
  {
    max_preemptions = 2;
    max_runs = 20_000;
    max_steps = 50_000;
    shrink = true;
    shrink_budget = 500;
    domains = 1;
    batch = 16;
    prune = true;
    record_fps = false;
    fault_hook = None;
    progress_every = 0;
    on_progress = None;
  }

type fuzz_report = {
  fz_tries : int;
  fz_found : int;
  fz_first : violation_info option;
}

let violation_of_event ~step = function
  | Event.Violation { tid; kind; detail } ->
    Some { v_kind = kind; v_tid = tid; v_step = step; v_detail = detail }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Schedules as step lists                                            *)
(* ------------------------------------------------------------------ *)

let script_of_steps steps =
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest -> (
      match acc with
      | Sched.Run (t', n) :: acc' when t' = t ->
        go (Sched.Run (t, n + 1) :: acc') rest
      | _ -> go (Sched.Run (t, 1) :: acc) rest)
  in
  go [] steps

(* A switch away from a thread whose tid occurs again later in the list:
   from the steps alone a tid's final occurrence is indistinguishable
   from the thread finishing, so switches after it count as free. *)
let preemptions_of_steps steps =
  let arr = Array.of_list steps in
  let last_occ = Hashtbl.create 8 in
  Array.iteri (fun i t -> Hashtbl.replace last_occ t i) arr;
  let p = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) <> arr.(i - 1) && Hashtbl.find last_occ arr.(i - 1) > i - 1
    then incr p
  done;
  !p

(* ------------------------------------------------------------------ *)
(* Watchers                                                           *)
(* ------------------------------------------------------------------ *)

(* Install the violation recorder (first violation, with its quantum
   index) and, when the target asks for one, the robustness watcher that
   turns a retired backlog crossing the bound into a
   [Robustness_exceeded] violation event — Definitions 5.1/5.2 made
   executable: a thread the schedule is currently not running is a
   potentially-delayed thread, so a backlog beyond the bound under some
   schedule is exactly non-robustness. Returns the violation cell. *)
let install_watchers target sched =
  let mon = Sched.monitor sched in
  let viol = ref None in
  Monitor.subscribe_tags mon [ Event.tag_violation ] (fun _ ev ->
      if !viol = None then
        viol := violation_of_event ~step:(Sched.total_steps sched) ev);
  (match target.robustness_bound with
  | None -> ()
  | Some bound ->
    let fired = ref false in
    Monitor.subscribe_tags mon [ Event.tag_retire ] (fun _ _ ->
        if (not !fired) && Monitor.retired mon > bound then begin
          fired := true;
          let tid = max 0 (Sched.current_tid sched) in
          Monitor.emit mon
            (Event.Violation
               {
                 tid;
                 kind = Event.Robustness_exceeded;
                 detail =
                   Fmt.str "retired backlog %d exceeded robustness bound %d"
                     (Monitor.retired mon) bound;
               })
        end));
  viol

(* ------------------------------------------------------------------ *)
(* One controlled run                                                 *)
(* ------------------------------------------------------------------ *)

type decision = {
  de_chosen : int;
  de_runnable : int list;  (* >= 2 entries: a real choice point *)
  de_prev : int;  (* tid of the preceding quantum; -1 at the start *)
}

type run_record = {
  ru_steps : int list;  (* tids in execution order *)
  ru_decisions : decision array;
  ru_violation : violation_info option;
  ru_pruned : bool;
  ru_quanta : int;
}

let state_fp sched =
  let mix h v = (h lxor v) * 0x100000001b3 in
  let h = ref (Heap.fingerprint (Sched.heap sched)) in
  h := mix !h (Monitor.fingerprint (Sched.monitor sched));
  for tid = 0 to Sched.nthreads sched - 1 do
    h := mix !h (Sched.steps_of sched tid);
    h := mix !h (if Sched.is_live sched tid then 1 else 0)
  done;
  !h

(* Execute one schedule: replay [prefix] (one entry per choice point — a
   quantum with >= 2 runnable threads), then follow the deterministic
   non-preemptive default (keep running the current thread; on its
   completion, the lowest runnable tid). Right after the deviating
   quantum — the last prefix entry — the global state's fingerprint is
   offered to [fp_check]; when it reports a previous visit the run is cut
   short: its continuation and all its extensions were already covered
   from the first visit. [cancel] is polled once per quantum so a
   first-violation latch can cut in-flight runs short across domain
   workers. *)
let run_one target ~max_steps ~fp_check ~cancel ~prefix =
  let steps = ref [] in
  let nsteps = ref 0 in
  let decisions = ref [] in
  let ndec = ref 0 in
  let plen = Array.length prefix in
  let last = ref (-1) in
  let pruned = ref false in
  let fp_pending = ref false in
  let buf = ref [||] in  (* runnable-tid scratch, sized on first pick *)
  (* Re-bound after [make] installs the real cell; the controller only
     reads it once the run is underway. *)
  let viol = ref (ref None) in
  let push tid =
    steps := tid :: !steps;
    incr nsteps;
    last := tid
  in
  let pick sched =
    if !fp_pending then begin
      fp_pending := false;
      if fp_check (state_fp sched) then pruned := true
    end;
    if !pruned || !(!viol) <> None || !nsteps >= max_steps || cancel ()
    then -1
    else begin
      if Array.length !buf = 0 then
        buf := Array.make (max (Sched.nthreads sched) 1) 0;
      match Sched.runnable_into sched !buf with
      | 0 -> -1
      | 1 ->
        let t = !buf.(0) in
        push t;
        t
      | n ->
        let ts = Array.to_list (Array.sub !buf 0 n) in
        let chosen =
          if !ndec < plen then prefix.(!ndec)
          else if !last >= 0 && List.mem !last ts then !last
          else List.hd ts
        in
        if not (List.mem chosen ts) then
          invalid_arg
            (Fmt.str
               "Explore: target %S is not schedule-deterministic (prefix \
                tid %d not runnable at choice point %d)"
               target.name chosen !ndec);
        decisions :=
          { de_chosen = chosen; de_runnable = ts; de_prev = !last }
          :: !decisions;
        incr ndec;
        if plen > 0 && !ndec = plen then fp_pending := true;
        push chosen;
        chosen
    end
  in
  let sched = target.make ~trace:false (Sched.Controlled pick) in
  viol := install_watchers target sched;
  ignore (Sched.run sched);
  let v =
    match !(!viol) with
    | Some _ as v -> v
    | None ->
      (* a violation emitted during setup, before the watcher existed *)
      Option.bind (Monitor.first_violation (Sched.monitor sched))
        (violation_of_event ~step:0)
  in
  {
    ru_steps = List.rev !steps;
    ru_decisions = Array.of_list (List.rev !decisions);
    ru_violation = v;
    ru_pruned = !pruned;
    ru_quanta = !nsteps;
  }

(* ------------------------------------------------------------------ *)
(* Script replay                                                      *)
(* ------------------------------------------------------------------ *)

type replay_result = {
  rp_violation : violation_info option;
  rp_outcome : Sched.outcome;
  rp_trace : Event.t list;
}

let run_steps ?(trace = false) ?on_sched target steps =
  let sched = target.make ~trace (Sched.Script (script_of_steps steps)) in
  (* [on_sched] lets a caller attach observers (e.g. a tracer, via
     [Era_obs.Sim_trace.attach]) to the internally built scheduler and
     monitor before the replay runs. *)
  (match on_sched with None -> () | Some f -> f sched);
  let viol = install_watchers target sched in
  let outcome = Sched.run sched in
  {
    rp_violation = !viol;
    rp_outcome = outcome;
    rp_trace = Monitor.trace (Sched.monitor sched);
  }

let replay ?trace ?on_sched target cex =
  run_steps ?trace ?on_sched target cex.c_steps

(* ------------------------------------------------------------------ *)
(* Shrinking: ddmin over the quantum-by-quantum schedule              *)
(* ------------------------------------------------------------------ *)

let split_chunks lst n =
  let len = List.length lst in
  let base = len / n and rem = len mod n in
  let rec go i acc lst =
    if i >= n then List.rev acc
    else begin
      let size = base + (if i < rem then 1 else 0) in
      let chunk, rest =
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: tl -> take (k - 1) (x :: acc) tl
        in
        take size [] lst
      in
      go (i + 1) (chunk :: acc) rest
    end
  in
  go 0 [] lst

(* Zeller-Hildebrandt ddmin. [test] must hold on [lst]; the result is a
   sublist on which [test] still holds and that is 1-minimal up to the
   test budget (a budget-exhausted test reports [false], which only stops
   further reduction). *)
let ddmin test lst =
  let rec go lst n =
    let len = List.length lst in
    if len <= 1 || n > len then lst
    else begin
      let chunks = split_chunks lst n in
      match List.find_opt test chunks with
      | Some c -> go c 2
      | None -> (
        let complements =
          List.mapi
            (fun i _ ->
              List.concat
                (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        match if n = 2 then None else List.find_opt test complements with
        | Some c -> go c (max (n - 1) 2)
        | None -> if n < len then go lst (min len (2 * n)) else lst)
    end
  in
  go lst 2

let shrink_steps target ~budget ~kind steps0 =
  let tests = ref 0 in
  let check steps =
    !tests < budget
    && begin
         incr tests;
         match (run_steps target steps).rp_violation with
         | Some v -> v.v_kind = kind
         | None -> false
       end
  in
  let shrunk = ddmin check steps0 in
  (shrunk, !tests)

(* ------------------------------------------------------------------ *)
(* The bounded DFS                                                    *)
(* ------------------------------------------------------------------ *)

let rec list_take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: list_take (n - 1) tl

(* Children of a completed, unpruned run: deviations strictly after its
   prefix (siblings at earlier points were enumerated by ancestors).
   Walked in reverse so a LIFO consumer extends the earliest choice
   point first — the DFS order of the sequential search. Free-switch
   siblings stay within the preemption level ([same]), preempting
   siblings seed level k+1 ([next]). *)
let children_of_run ~prefix r ~same ~next =
  let dec = r.ru_decisions in
  let plen = Array.length prefix in
  for i = Array.length dec - 1 downto plen do
    let d = dec.(i) in
    List.iter
      (fun alt ->
        if alt <> d.de_chosen then begin
          let child =
            Array.init (i + 1) (fun j ->
                if j = i then alt else dec.(j).de_chosen)
          in
          let preempts =
            d.de_prev >= 0 && alt <> d.de_prev
            && List.mem d.de_prev d.de_runnable
          in
          if preempts then next child else same child
        end)
      d.de_runnable
  done

(* Shrink a found violation and package the counterexample; shared by
   the sequential and parallel searches (shrinking is always sequential:
   ddmin on the one winning schedule). *)
let build_cex config target (v, steps) =
  let shrink_runs = ref 0 in
  let steps = list_take (v.v_step + 1) steps in
  let steps, v =
    if config.shrink && steps <> [] then begin
      let shrunk, tests =
        shrink_steps target ~budget:config.shrink_budget ~kind:v.v_kind steps
      in
      shrink_runs := tests;
      (* Re-derive the violation from the shrunk schedule so the
         recorded step index matches what replay will observe. *)
      match (run_steps target shrunk).rp_violation with
      | Some v' -> (shrunk, v')
      | None -> (steps, v)  (* defensive: keep the original witness *)
    end
    else (steps, v)
  in
  ( {
      c_target = target.name;
      c_nthreads = target.nthreads;
      c_params = target.params;
      c_violation = v;
      c_steps = steps;
      c_script = script_of_steps steps;
      c_preemptions = preemptions_of_steps steps;
    },
    !shrink_runs )

exception Search_over

let no_cancel () = false

let explore_sequential config target =
  let visited = Hashtbl.create 8192 in
  let fps = if config.record_fps then Some (Hashtbl.create 1024) else None in
  let fp_check fp =
    (match fps with Some t -> Hashtbl.replace t fp () | None -> ());
    if config.prune then
      if Hashtbl.mem visited fp then true
      else begin
        Hashtbl.replace visited fp ();
        false
      end
    else false
  in
  let runs = ref 0 in
  let states = ref 0 in
  let pruned_n = ref 0 in
  let failed = ref 0 in
  let found = ref None in
  let found_level = ref None in
  let levels_completed = ref 0 in
  let level = ref 0 in
  (* Iterative preemption bounding: the level-[k] stack holds prefixes
     whose deviation needed its [k]-th preemption; free-switch siblings
     stay within the level, preempting siblings seed level [k+1]. *)
  let stack = ref [ [||] ] in
  let deferred = ref [] in
  (try
     while !level <= config.max_preemptions do
       while !stack <> [] do
         if !runs >= config.max_runs then raise Search_over;
         match !stack with
         | [] -> assert false
         | prefix :: rest ->
           stack := rest;
           let r =
             match config.fault_hook with
             | None ->
               Some
                 (run_one target ~max_steps:config.max_steps ~fp_check
                    ~cancel:no_cancel ~prefix)
             | Some h -> (
               try
                 h !runs;
                 Some
                   (run_one target ~max_steps:config.max_steps ~fp_check
                      ~cancel:no_cancel ~prefix)
               with _ -> None)
           in
           incr runs;
           (match r with
           | None -> incr failed
           | Some r ->
             states := !states + r.ru_quanta;
             if r.ru_pruned then incr pruned_n;
             (match r.ru_violation with
             | Some v ->
               found := Some (v, r.ru_steps);
               found_level := Some !level;
               raise Search_over
             | None -> ());
             if not r.ru_pruned then
               children_of_run ~prefix r
                 ~same:(fun child -> stack := child :: !stack)
                 ~next:(fun child -> deferred := child :: !deferred));
           (match config.on_progress with
           | Some f
             when config.progress_every > 0
                  && !runs mod config.progress_every = 0 ->
             f
               {
                 pg_level = !level;
                 pg_runs = !runs;
                 pg_states = !states;
                 pg_pruned = !pruned_n;
                 pg_frontier = List.length !stack;
                 pg_deferred = List.length !deferred;
                 pg_fp_size = Hashtbl.length visited;
                 pg_budget_left = max 0 (config.max_runs - !runs);
                 pg_per_domain_runs = [| !runs |];
               }
           | _ -> ())
       done;
       levels_completed := !level + 1;
       stack := List.rev !deferred;
       deferred := [];
       incr level;
       if !stack = [] then raise Search_over
     done
   with Search_over -> ());
  let cex, shrink_runs =
    match !found with
    | None -> (None, 0)
    | Some witness ->
      let c, n = build_cex config target witness in
      (Some c, n)
  in
  {
    res_stats =
      {
        runs = !runs;
        states = !states;
        pruned = !pruned_n;
        shrink_runs;
        cex_preemptions = Option.map (fun _ -> Option.get !found_level) cex;
        levels_completed = !levels_completed;
        failed_runs = !failed;
        domains_used = 1;
        per_domain_runs = [ !runs ];
      };
    res_cex = cex;
    res_fps =
      (match fps with
      | None -> []
      | Some t ->
        List.sort compare (Hashtbl.fold (fun fp () acc -> fp :: acc) t []));
  }

(* ------------------------------------------------------------------ *)
(* Parallel search across OCaml 5 domains                             *)
(* ------------------------------------------------------------------ *)

(* Same level-synchronous frontier as the sequential search — every
   schedule within preemption bound [k] is covered before any schedule
   needing [k+1], so a reported violation still carries the minimal
   bound — but within a level the prefixes are sharded across [domains]
   workers through a batched work queue. Each worker owns a private
   re-execution loop (every run builds a fresh heap/monitor/scheduler, so
   nothing of the simulation itself is shared); the only cross-domain
   state is the work queue, the lock-striped visited table, the atomic
   budget/stat counters, and the first-violation latch. On a violation
   the latch cancels in-flight runs (polled once per quantum) and
   shrinking proceeds sequentially on the winning schedule.

   Which violating schedule wins the latch depends on worker timing, so
   across domain counts the reported counterexample may differ — but
   never its validity (it is always a concretely witnessed execution,
   re-checkable by sequential replay), and thanks to the level barrier
   never its preemption level. With pruning on, run/state counts for
   [domains > 1] are timing-dependent too: the visited table fills in a
   different order, so different runs get cut short. [domains = 1] never
   enters this code path and stays bit-identical to the sequential
   search. *)
let explore_parallel config target ~domains =
  let visited = Fp_table.create () in
  let fps = if config.record_fps then Some (Fp_table.create ()) else None in
  let fp_check fp =
    (match fps with Some t -> Fp_table.add t fp | None -> ());
    if config.prune then Fp_table.check_and_add visited fp else false
  in
  let runs = Atomic.make 0 in
  let states = Atomic.make 0 in
  let pruned_n = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let budget_out = Atomic.make false in
  let cancel = Atomic.make false in
  let cancelled () = Atomic.get cancel in
  let found_m = Mutex.create () in
  let found = ref None in
  let found_level = ref 0 in
  (* Reserve one run slot against the shared budget; the slot ordinal
     doubles as the fault-hook's run index. *)
  let reserve () =
    let slot = Atomic.fetch_and_add runs 1 in
    if slot >= config.max_runs then begin
      ignore (Atomic.fetch_and_add runs (-1));
      Atomic.set budget_out true;
      None
    end
    else Some slot
  in
  let levels_completed = ref 0 in
  let level = ref 0 in
  let frontier = ref [ [||] ] in
  let stop_all = ref false in
  (* Per-worker run counts: slot [w] is written only by worker [w], so
     plain array stores suffice; the coordinator's heartbeat reads are
     racy snapshots (monotone counters, at worst one run stale) and the
     final read happens after every join. *)
  let per_domain = Array.make domains 0 in
  let last_report = ref 0 in
  while (not !stop_all) && !level <= config.max_preemptions do
    let q = Work_queue.create ~batch:config.batch () in
    let deferred_m = Mutex.create () in
    let deferred = ref [] in
    Work_queue.push_batch q !frontier;
    let this_level = !level in
    (* Heartbeats come from the coordinator only — the [on_progress]
       callback then never needs to be domain-safe. *)
    let maybe_report () =
      match config.on_progress with
      | Some f when config.progress_every > 0 ->
        let r = Atomic.get runs in
        if r - !last_report >= config.progress_every then begin
          last_report := r;
          let deferred_n =
            Mutex.lock deferred_m;
            let n = List.length !deferred in
            Mutex.unlock deferred_m;
            n
          in
          f
            {
              pg_level = this_level;
              pg_runs = r;
              pg_states = Atomic.get states;
              pg_pruned = Atomic.get pruned_n;
              pg_frontier = Work_queue.length q;
              pg_deferred = deferred_n;
              pg_fp_size = Fp_table.size visited;
              pg_budget_left = max 0 (config.max_runs - r);
              pg_per_domain_runs = Array.copy per_domain;
            }
        end
      | _ -> ()
    in
    let worker wid =
      let rec loop () =
        match Work_queue.take q with
        | None -> ()
        | Some batch ->
          (* [batch_done] must run even if a fault escapes, or the
             queue's quiescence count would deadlock the level. *)
          Fun.protect
            ~finally:(fun () -> Work_queue.batch_done q)
            (fun () ->
              let same = ref [] in
              let next = ref [] in
              List.iter
                (fun prefix ->
                  if not (Atomic.get cancel || Atomic.get budget_out) then
                    match reserve () with
                    | None -> Work_queue.stop q
                    | Some slot -> (
                      per_domain.(wid) <- per_domain.(wid) + 1;
                      let r =
                        match config.fault_hook with
                        | None ->
                          Some
                            (run_one target ~max_steps:config.max_steps
                               ~fp_check ~cancel:cancelled ~prefix)
                        | Some h -> (
                          try
                            h slot;
                            Some
                              (run_one target ~max_steps:config.max_steps
                                 ~fp_check ~cancel:cancelled ~prefix)
                          with _ -> None)
                      in
                      match r with
                      | None -> Atomic.incr failed
                      | Some r ->
                        ignore (Atomic.fetch_and_add states r.ru_quanta);
                        if r.ru_pruned then Atomic.incr pruned_n;
                        (match r.ru_violation with
                        | Some v ->
                          Mutex.lock found_m;
                          if !found = None then begin
                            found := Some (v, r.ru_steps);
                            found_level := this_level
                          end;
                          Mutex.unlock found_m;
                          Atomic.set cancel true;
                          Work_queue.stop q
                        | None ->
                          if not r.ru_pruned then
                            children_of_run ~prefix r
                              ~same:(fun c -> same := c :: !same)
                              ~next:(fun c -> next := c :: !next))))
                batch;
              Work_queue.push_batch q (List.rev !same);
              if !next <> [] then begin
                Mutex.lock deferred_m;
                deferred := List.rev_append !next !deferred;
                Mutex.unlock deferred_m
              end);
          if wid = 0 then maybe_report ();
          loop ()
      in
      loop ()
    in
    let spawned =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join spawned;
    if Atomic.get cancel || Atomic.get budget_out then stop_all := true
    else begin
      levels_completed := !level + 1;
      frontier := List.rev !deferred;
      incr level;
      if !frontier = [] then stop_all := true
    end
  done;
  let cex, shrink_runs =
    match !found with
    | None -> (None, 0)
    | Some witness ->
      let c, n = build_cex config target witness in
      (Some c, n)
  in
  {
    res_stats =
      {
        runs = Atomic.get runs;
        states = Atomic.get states;
        pruned = Atomic.get pruned_n;
        shrink_runs;
        cex_preemptions = Option.map (fun _ -> !found_level) cex;
        levels_completed = !levels_completed;
        failed_runs = Atomic.get failed;
        domains_used = domains;
        per_domain_runs = Array.to_list per_domain;
      };
    res_cex = cex;
    res_fps =
      (match fps with
      | None -> []
      | Some t -> List.sort compare (Fp_table.elements t));
  }

let explore ?(config = default_config) target =
  if config.domains <= 1 then explore_sequential config target
  else explore_parallel config target ~domains:config.domains

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let violation_to_json v =
  Json.Obj
    [
      ("kind", Json.String (Event.violation_name v.v_kind));
      ("tid", Json.Int v.v_tid);
      ("step", Json.Int v.v_step);
      ("detail", Json.String v.v_detail);
    ]

let instr_to_json = function
  | Sched.Run (tid, n) ->
    Json.Obj [ ("tid", Json.Int tid); ("n", Json.Int n) ]
  | _ ->
    invalid_arg "Explore: only Run instructions appear in counterexamples"

let counterexample_to_json c =
  Json.Obj
    [
      ("target", Json.String c.c_target);
      ("nthreads", Json.Int c.c_nthreads);
      ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.c_params));
      ("violation", violation_to_json c.c_violation);
      ("preemptions", Json.Int c.c_preemptions);
      ("steps", Json.List (List.map (fun t -> Json.Int t) c.c_steps));
      ("script", Json.List (List.map instr_to_json c.c_script));
    ]

let ( let* ) = Result.bind

let req what = function
  | Some x -> Ok x
  | None -> Error (Fmt.str "counterexample JSON: missing or bad %s" what)

let violation_of_json j =
  let* kind_s = req "violation.kind" Json.(Option.bind (member "kind" j) to_str) in
  let* kind = req ("violation kind " ^ kind_s) (Event.violation_of_name kind_s) in
  let* tid = req "violation.tid" Json.(Option.bind (member "tid" j) to_int) in
  let* step = req "violation.step" Json.(Option.bind (member "step" j) to_int) in
  let* detail =
    req "violation.detail" Json.(Option.bind (member "detail" j) to_str)
  in
  Ok { v_kind = kind; v_tid = tid; v_step = step; v_detail = detail }

let all_ints what l =
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* i = req what (Json.to_int j) in
      Ok (i :: acc))
    (Ok []) l
  |> Result.map List.rev

let counterexample_of_json j =
  let* tname = req "target" Json.(Option.bind (member "target" j) to_str) in
  let* nthreads =
    req "nthreads" Json.(Option.bind (member "nthreads" j) to_int)
  in
  let* params =
    match Json.member "params" j with
    | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (k, vj) ->
          let* acc = acc in
          let* v = req ("params." ^ k) (Json.to_int vj) in
          Ok ((k, v) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | Some _ -> Error "counterexample JSON: params is not an object"
    | None -> Ok []
  in
  let* vj = req "violation" (Json.member "violation" j) in
  let* v = violation_of_json vj in
  let* preempts =
    req "preemptions" Json.(Option.bind (member "preemptions" j) to_int)
  in
  let* steps_j =
    req "steps" Json.(Option.bind (member "steps" j) to_list)
  in
  let* steps = all_ints "steps entry" steps_j in
  Ok
    {
      c_target = tname;
      c_nthreads = nthreads;
      c_params = params;
      c_violation = v;
      c_steps = steps;
      c_script = script_of_steps steps;
      c_preemptions = preempts;
    }

(* [open_out] on a path whose directory does not exist fails with a bare
   "No such file or directory" — opaque when the path came from [--out].
   [Fsutil.write_file] (shared with the tracer and heartbeat writers)
   creates the missing parents instead and surfaces a clear error when
   even that fails, e.g. a file standing where a directory is needed. *)
let save ~file cex =
  try
    Era_metrics.Fsutil.write_file ~file
      (Json.to_string (counterexample_to_json cex) ^ "\n")
  with Sys_error e -> raise (Sys_error (Fmt.str "Explore.save: %s" e))

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error e -> Error e
  | text ->
    let* j = Json.of_string text in
    counterexample_of_json j

(* ------------------------------------------------------------------ *)
(* Metrics export                                                     *)
(* ------------------------------------------------------------------ *)

let stats_registry s =
  let module R = Era_obs.Registry in
  let reg = R.create () in
  let c name v = R.set_counter (R.counter reg name) v in
  c "explore_runs" s.runs;
  c "explore_states" s.states;
  c "explore_pruned" s.pruned;
  c "explore_shrink_runs" s.shrink_runs;
  c "explore_levels_completed" s.levels_completed;
  c "explore_failed_runs" s.failed_runs;
  R.set_int (R.gauge reg "explore_domains") s.domains_used;
  List.iteri
    (fun d n ->
      R.set_counter
        (R.counter reg ~labels:[ ("domain", string_of_int d) ]
           "explore_domain_runs")
        n)
    s.per_domain_runs;
  (match s.cex_preemptions with
  | None -> ()
  | Some p -> R.set_int (R.gauge reg "explore_cex_preemptions") p);
  reg

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                    *)
(* ------------------------------------------------------------------ *)

let pp_violation fmt v =
  Fmt.pf fmt "%s by T%d at quantum %d (%s)"
    (Event.violation_name v.v_kind)
    v.v_tid v.v_step v.v_detail

let pp_counterexample fmt c =
  Fmt.pf fmt
    "%s: %a@ schedule: %d quanta, %d preemption(s), %d script instruction(s)"
    c.c_target pp_violation c.c_violation (List.length c.c_steps)
    c.c_preemptions (List.length c.c_script)

let pp_stats fmt s =
  Fmt.pf fmt
    "%d runs, %d states, %d pruned, %d shrink runs, %d level(s) completed%a%a%a"
    s.runs s.states s.pruned s.shrink_runs s.levels_completed
    (Fmt.option (fun fmt p -> Fmt.pf fmt ", found at preemption bound %d" p))
    s.cex_preemptions
    (fun fmt d -> if d > 1 then Fmt.pf fmt ", %d domains" d)
    s.domains_used
    (fun fmt f ->
      if f > 0 then Fmt.pf fmt ", %d FAILED run(s) (partial coverage)" f)
    s.failed_runs

module Event = Era_sim.Event
module Monitor = Era_sim.Monitor
module Heap = Era_sim.Heap
module Vec = Era_sim.Vec
module Sched = Era_sched.Sched
module Json = Era_metrics.Json

type target = {
  name : string;
  nthreads : int;
  params : (string * int) list;
  robustness_bound : int option;
  make : trace:bool -> Sched.strategy -> Sched.t;
}

type violation_info = {
  v_kind : Event.violation;
  v_tid : int;
  v_step : int;
  v_detail : string;
}

type counterexample = {
  c_target : string;
  c_nthreads : int;
  c_params : (string * int) list;
  c_violation : violation_info;
  c_steps : int list;
  c_script : Sched.instr list;
  c_preemptions : int;
}

type stats = {
  runs : int;
  states : int;
  pruned : int;
  sleep_cuts : int;
  shrink_runs : int;
  cex_preemptions : int option;
  levels_completed : int;
  failed_runs : int;
  domains_used : int;
  per_domain_runs : int list;
}

type search_result = {
  res_stats : stats;
  res_cex : counterexample option;
  res_fps : int list;
}

type progress = {
  pg_level : int;
  pg_runs : int;
  pg_states : int;
  pg_pruned : int;
  pg_frontier : int;
  pg_deferred : int;
  pg_fp_size : int;
  pg_budget_left : int;
  pg_per_domain_runs : int array;
}

type config = {
  max_preemptions : int;
  max_runs : int;
  max_steps : int;
  shrink : bool;
  shrink_budget : int;
  domains : int;
  batch : int;
  steal : bool;
  prune : bool;
  dpor : bool;
  record_fps : bool;
  fault_hook : (int -> unit) option;
  progress_every : int;
  on_progress : (progress -> unit) option;
}

let default_config =
  {
    max_preemptions = 2;
    max_runs = 20_000;
    max_steps = 50_000;
    shrink = true;
    shrink_budget = 500;
    domains = 1;
    batch = 16;
    steal = false;
    prune = true;
    dpor = false;
    record_fps = false;
    fault_hook = None;
    progress_every = 0;
    on_progress = None;
  }

type fuzz_report = {
  fz_tries : int;
  fz_found : int;
  fz_first : violation_info option;
}

let violation_of_event ~step = function
  | Event.Violation { tid; kind; detail } ->
    Some { v_kind = kind; v_tid = tid; v_step = step; v_detail = detail }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Schedules as step lists                                            *)
(* ------------------------------------------------------------------ *)

let script_of_steps steps =
  let rec go acc = function
    | [] -> List.rev acc
    | t :: rest -> (
      match acc with
      | Sched.Run (t', n) :: acc' when t' = t ->
        go (Sched.Run (t, n + 1) :: acc') rest
      | _ -> go (Sched.Run (t, 1) :: acc) rest)
  in
  go [] steps

(* A switch away from a thread whose tid occurs again later in the list:
   from the steps alone a tid's final occurrence is indistinguishable
   from the thread finishing, so switches after it count as free. *)
let preemptions_of_steps steps =
  let arr = Array.of_list steps in
  let last_occ = Hashtbl.create 8 in
  Array.iteri (fun i t -> Hashtbl.replace last_occ t i) arr;
  let p = ref 0 in
  for i = 1 to Array.length arr - 1 do
    if arr.(i) <> arr.(i - 1) && Hashtbl.find last_occ arr.(i - 1) > i - 1
    then incr p
  done;
  !p

(* ------------------------------------------------------------------ *)
(* Watchers                                                           *)
(* ------------------------------------------------------------------ *)

(* Install the violation recorder (first violation, with its quantum
   index) and, when the target asks for one, the robustness watcher that
   turns a retired backlog crossing the bound into a
   [Robustness_exceeded] violation event — Definitions 5.1/5.2 made
   executable: a thread the schedule is currently not running is a
   potentially-delayed thread, so a backlog beyond the bound under some
   schedule is exactly non-robustness. Returns the violation cell. *)
let install_watchers target sched =
  let mon = Sched.monitor sched in
  let viol = ref None in
  Monitor.subscribe_tags mon [ Event.tag_violation ] (fun _ ev ->
      if !viol = None then
        viol := violation_of_event ~step:(Sched.total_steps sched) ev);
  (match target.robustness_bound with
  | None -> ()
  | Some bound ->
    let fired = ref false in
    Monitor.subscribe_tags mon [ Event.tag_retire ] (fun _ _ ->
        if (not !fired) && Monitor.retired mon > bound then begin
          fired := true;
          let tid = max 0 (Sched.current_tid sched) in
          Monitor.emit mon
            (Event.Violation
               {
                 tid;
                 kind = Event.Robustness_exceeded;
                 detail =
                   Fmt.str "retired backlog %d exceeded robustness bound %d"
                     (Monitor.retired mon) bound;
               })
        end));
  viol

(* ------------------------------------------------------------------ *)
(* Run records, work items, per-worker scratch                        *)
(* ------------------------------------------------------------------ *)

(* Reusable int buffer: the per-quantum and per-choice-point recording
   of a run goes through these, so a run's bookkeeping allocates only
   the final copied-out arrays (and only for runs that can have
   children). *)
module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 256 0; len = 0 }
  let clear b = b.len <- 0

  let push b v =
    if b.len = Array.length b.a then begin
      let na = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 na 0 b.len;
      b.a <- na
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len

  let to_list b =
    let rec go i acc = if i < 0 then acc else go (i - 1) (b.a.(i) :: acc) in
    go (b.len - 1) []
end

(* Decision records are packed ints: the low [mask_bits] hold the
   runnable-tid bitmask of the choice point, the high bits hold
   [prev + 1] — the tid of the preceding quantum (0 encodes "none": the
   run's first quantum). One int per choice point instead of a
   3-field record holding a list. *)
let mask_bits = 48
let low_mask = (1 lsl mask_bits) - 1

(* A unit of search work: "replay [it_choices.(0 .. it_dev - 1)], choose
   [it_alt] at choice point [it_dev], then follow the deterministic
   default". The choices array is the {e parent} run's record, shared by
   reference among all its children — materializing per-child prefix
   arrays was the dominant cost of the previous explorer (O(depth) per
   child, ~3/4 of search time on the Figure 2 cell). *)
type item = {
  it_choices : int array;
  it_dev : int;  (* -1 for the root item (empty prefix) *)
  it_alt : int;
  it_level : int;  (* preemption level; bookkeeping for steal mode *)
  it_sleep : Sleep_set.entry array;  (* DPOR: entries asleep at it_dev *)
  it_group : Sleep_set.group option;  (* DPOR: sibling group at it_dev *)
}

let root_item =
  {
    it_choices = [||];
    it_dev = -1;
    it_alt = -1;
    it_level = 0;
    it_sleep = [||];
    it_group = None;
  }

type run_record = {
  ru_plen : int;  (* prefix length: it_dev + 1 *)
  ru_choices : int array;  (* chosen tid per choice point *)
  ru_info : int array;  (* packed runnable mask + prev tid *)
  ru_awake : int array;  (* DPOR: non-sleeping runnable mask per point *)
  ru_alive : int array;  (* DPOR: alive bitmask over [ru_entries] *)
  ru_fps : Sleep_set.footprint array;  (* DPOR: chosen quantum footprints *)
  ru_entries : Sleep_set.entry array;  (* DPOR: the run's sleep entries *)
  ru_violation : violation_info option;
  ru_steps : int list;  (* tids in execution order; only on violation *)
  ru_pruned : bool;  (* cut by the visited-state table *)
  ru_sleep_cut : bool;  (* cut with every runnable thread asleep *)
  ru_quanta : int;
}

(* Per-worker scratch. One per domain; a [Sched.t] and its heap are
   single-domain objects, and so is this. *)
type scratch = {
  s_info : Ibuf.t;
  s_choices : Ibuf.t;
  s_awake : Ibuf.t;
  s_alive : Ibuf.t;
  s_steps : Ibuf.t;
  s_fps : Sleep_set.footprint Vec.t;
  s_builder : Sleep_set.builder;
  mutable s_buf : int array;  (* runnable-tid scratch *)
}

let scratch () =
  {
    s_info = Ibuf.create ();
    s_choices = Ibuf.create ();
    s_awake = Ibuf.create ();
    s_alive = Ibuf.create ();
    s_steps = Ibuf.create ();
    s_fps = Vec.create ();
    s_builder = Sleep_set.builder ();
    s_buf = [||];
  }

(* Sleep entries carried into one run are capped so the alive set fits
   one immediate int bitmask. Dropping an entry is always sound — it
   only costs reduction. *)
let max_sleep_entries = 62

let state_fp sched =
  let mix h v = (h lxor v) * 0x100000001b3 in
  let h = ref (Heap.fingerprint (Sched.heap sched)) in
  h := mix !h (Monitor.fingerprint (Sched.monitor sched));
  for tid = 0 to Sched.nthreads sched - 1 do
    h := mix !h (Sched.steps_of sched tid);
    h := mix !h (if Sched.is_live sched tid then 1 else 0)
  done;
  !h

(* DPOR-mode state hash: the incremental XOR heap fingerprint (O(1) per
   heap mutation, O(threads) to read — the classic [Heap.fingerprint]
   full walk would dominate once checks happen at every quantum) plus
   the tid of the quantum that produced the state. The previous-tid
   component matters here because the run's continuation (the
   keep-running-the-current-thread default) depends on it: two visits
   disagreeing on it would explore different default tails, which the
   covering argument must not conflate. The two hash families are never
   mixed in one visited table — a search is either classic or DPOR. *)
let state_fp_x sched ~last =
  let mix h v = (h lxor v) * 0x100000001b3 in
  let h = ref (Heap.xfingerprint (Sched.heap sched)) in
  h := mix !h (Monitor.fingerprint (Sched.monitor sched));
  h := mix !h (last + 1);
  for tid = 0 to Sched.nthreads sched - 1 do
    h := mix !h (Sched.steps_of sched tid);
    h := mix !h (if Sched.is_live sched tid then 1 else 0)
  done;
  !h

(* ------------------------------------------------------------------ *)
(* One controlled run                                                 *)
(* ------------------------------------------------------------------ *)

(* Execute one work item's schedule: replay the parent's choices up to
   the deviation, take the deviating choice, then follow the
   deterministic non-preemptive default (keep running the current
   thread; on its completion, the lowest runnable tid — in DPOR mode,
   the lowest {e awake} runnable tid).

   Classic mode ([dpor = false]) reproduces the historical explorer
   bit for bit: right after the deviating quantum the state fingerprint
   is offered to [fp_check] (mask 0) and a previous visit cuts the run.

   DPOR mode layers sleep sets on top, driven by the per-quantum
   footprints observed through the monitor hooks:
   - {e wake-ups}: every executed quantum past the deviation wakes the
     sleep entries whose footprints it conflicts with;
   - {e sleep cuts}: a configuration whose every runnable thread is
     asleep is fully covered by already-explored siblings — end the run.
   The deviation-point visited check additionally carries the sleep-tid
   mask (a previous visit covers this one only if it slept a subset of
   the current sleep set) and uses the incremental heap fingerprint
   ([Heap.enable_xfingerprint]) — O(threads) to read, not O(heap).
   The check stays at the deviation point only: the fingerprint is
   blind to native scheme state (HP slots, era reservations, retired
   bags live outside the simulated heap), a heuristic classic mode
   tolerates at one check per run but which, applied per quantum,
   measurably suppresses real violations (the he cell loses its
   Figure 2 counterexample).

   [mutate_groups] gates reporting the deviating quantum's footprint to
   the item's sibling group: the sequential search accumulates explored
   siblings there (later-popped siblings then start with them asleep);
   parallel searches leave groups frozen at the parent-chosen edge,
   because "explored earlier" is not well-defined across domains —
   a sound, smaller sleep set.

   [cancel] is polled once per quantum so a first-violation latch can
   cut in-flight runs short across domain workers. *)
let run_one target ~dpor ~mutate_groups ~max_steps ~fp_check ~cancel ~item sc
    =
  Ibuf.clear sc.s_info;
  Ibuf.clear sc.s_choices;
  Ibuf.clear sc.s_awake;
  Ibuf.clear sc.s_alive;
  Ibuf.clear sc.s_steps;
  Vec.clear sc.s_fps;
  Sleep_set.reset sc.s_builder;
  let plen = item.it_dev + 1 in
  let entries =
    if not dpor then [||]
    else begin
      (* Inherited entries (alive at the deviation node, pre-compacted
         by the enumerator) plus the sibling group's explored edges,
         read once at run start. The deviating tid itself can never be
         asleep — it was picked from the awake set and siblings have
         distinct alts — but filtering is cheap insurance. *)
      let group_edges =
        match item.it_group with
        | None -> []
        | Some g -> Sleep_set.group_edges g
      in
      let all = Array.to_list item.it_sleep @ group_edges in
      let all =
        List.filter (fun (e : Sleep_set.entry) -> e.tid <> item.it_alt) all
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | e :: tl -> e :: take (n - 1) tl
      in
      Array.of_list (take max_sleep_entries all)
    end
  in
  let alive = ref ((1 lsl Array.length entries) - 1) in
  let nsteps = ref 0 in
  let ndec = ref 0 in
  let last = ref (-1) in
  let pruned = ref false in
  let sleep_cut = ref false in
  let fp_pending = ref false in  (* classic-mode deferred check *)
  let after_dev = ref (plen = 0) in
  let pending_fp_at = ref (-1) in
  let group_reported = ref false in
  (* Re-bound after [make] installs the real cell; the controller only
     reads it once the run is underway. *)
  let viol = ref (ref None) in
  let push tid =
    Ibuf.push sc.s_steps tid;
    incr nsteps;
    last := tid
  in
  let store_fp f =
    if !pending_fp_at >= 0 then begin
      Vec.set sc.s_fps !pending_fp_at f;
      if !pending_fp_at = plen - 1 && not !group_reported then begin
        group_reported := true;
        match item.it_group with
        | Some g when mutate_groups ->
          Sleep_set.group_add g { Sleep_set.tid = item.it_alt; fp = f }
        | _ -> ()
      end;
      pending_fp_at := -1
    end
  in
  let pick sched =
    (* Footprint epilogue of the quantum that just ran. Before the
       deviation the builder is merely drained: those quanta replay the
       parent's execution, whose wakes are already reflected in the
       inherited alive mask — re-applying them here would wake entries
       against quanta that precede their creation point. *)
    if dpor && !nsteps > 0 then begin
      if !after_dev || !pending_fp_at = plen - 1 then begin
        let f = Sleep_set.finalize sc.s_builder in
        store_fp f;
        if !after_dev && !alive <> 0 then
          alive := Sleep_set.wake entries !alive f
      end
      else begin
        Sleep_set.reset sc.s_builder;
        pending_fp_at := -1
      end
    end;
    if !fp_pending then begin
      fp_pending := false;
      (* Deviation-point visited check. Classic: the full-walk hash,
         mask 0 (set semantics). DPOR: the incremental hash, with the
         current sleep-tid mask — wakes from the deviation quantum
         itself have already been applied above, so the mask is the
         sleep set this subtree will actually be explored under. *)
      let covered =
        if dpor then
          fp_check
            (state_fp_x sched ~last:!last)
            (Sleep_set.tid_mask entries !alive)
        else fp_check (state_fp sched) 0
      in
      if covered then pruned := true
    end;
    if
      !pruned || !sleep_cut
      || !(!viol) <> None
      || !nsteps >= max_steps || cancel ()
    then -1
    else begin
      begin
        if Array.length sc.s_buf = 0 then
          sc.s_buf <- Array.make (max (Sched.nthreads sched) 1) 0;
        let n = Sched.runnable_into sched sc.s_buf in
        if n = 0 then -1
        else begin
          let rmask = ref 0 in
          for k = 0 to n - 1 do
            rmask := !rmask lor (1 lsl sc.s_buf.(k))
          done;
          let rmask = !rmask in
          let awake =
            if dpor && !after_dev then
              rmask land lnot (Sleep_set.tid_mask entries !alive)
            else rmask
          in
          if n = 1 then begin
            if awake = 0 then begin
              sleep_cut := true;
              -1
            end
            else begin
              let t = sc.s_buf.(0) in
              push t;
              t
            end
          end
          else if awake = 0 then begin
            sleep_cut := true;
            -1
          end
          else begin
            let chosen =
              if !ndec < plen then
                if !ndec = item.it_dev then item.it_alt
                else item.it_choices.(!ndec)
              else if !last >= 0 && (awake lsr !last) land 1 = 1 then !last
              else begin
                (* lowest awake runnable tid (= [List.hd] of the old
                   ascending runnable list in classic mode) *)
                let rec first k =
                  let t = sc.s_buf.(k) in
                  if (awake lsr t) land 1 = 1 then t else first (k + 1)
                in
                first 0
              end
            in
            if chosen < 0 || chosen >= mask_bits
               || (rmask lsr chosen) land 1 = 0
            then
              invalid_arg
                (Fmt.str
                   "Explore: target %S is not schedule-deterministic \
                    (prefix tid %d not runnable at choice point %d)"
                   target.name chosen !ndec);
            Ibuf.push sc.s_info (rmask lor ((!last + 1) lsl mask_bits));
            Ibuf.push sc.s_choices chosen;
            if dpor then begin
              Ibuf.push sc.s_awake awake;
              Ibuf.push sc.s_alive !alive;
              Vec.push sc.s_fps [||];
              pending_fp_at := !ndec
            end;
            incr ndec;
            if !ndec = plen then begin
              after_dev := true;
              fp_pending := true
            end;
            push chosen;
            chosen
          end
        end
      end
    end
  in
  let sched = target.make ~trace:false (Sched.Controlled pick) in
  if Sched.nthreads sched > mask_bits then
    invalid_arg
      (Fmt.str "Explore: at most %d threads supported (target has %d)"
         mask_bits (Sched.nthreads sched));
  if dpor then begin
    Heap.enable_xfingerprint (Sched.heap sched);
    let mon = Sched.monitor sched in
    Monitor.subscribe_tags mon Sleep_set.tags (fun _ ev ->
        Sleep_set.record sc.s_builder ev)
  end;
  viol := install_watchers target sched;
  ignore (Sched.run sched);
  (* The last quantum's footprint may still be pending (the run ended
     without another pick): the sibling-group report must not be lost. *)
  if dpor && !pending_fp_at >= 0 then
    store_fp (Sleep_set.finalize sc.s_builder);
  let v =
    match !(!viol) with
    | Some _ as v -> v
    | None ->
      (* a violation emitted during setup, before the watcher existed *)
      Option.bind (Monitor.first_violation (Sched.monitor sched))
        (violation_of_event ~step:0)
  in
  let ndecs = !ndec in
  (* Copy the packed records out only when the run can have children:
     a run cut at its own deviation point (classic pruning) explored no
     new choice points, and a violating run ends the search. *)
  let has_children = v = None && ndecs > plen in
  {
    ru_plen = plen;
    ru_choices = (if has_children then Ibuf.to_array sc.s_choices else [||]);
    ru_info = (if has_children then Ibuf.to_array sc.s_info else [||]);
    ru_awake =
      (if has_children && dpor then Ibuf.to_array sc.s_awake else [||]);
    ru_alive =
      (if has_children && dpor then Ibuf.to_array sc.s_alive else [||]);
    ru_fps =
      (if has_children && dpor then Array.init ndecs (Vec.get sc.s_fps)
       else [||]);
    ru_entries = entries;
    ru_violation = v;
    ru_steps = (if v = None then [] else Ibuf.to_list sc.s_steps);
    ru_pruned = !pruned;
    ru_sleep_cut = !sleep_cut;
    ru_quanta = !nsteps;
  }

(* ------------------------------------------------------------------ *)
(* Child enumeration                                                  *)
(* ------------------------------------------------------------------ *)

let popcount m =
  let c = ref 0 in
  let m = ref m in
  while !m <> 0 do
    incr c;
    m := !m land (!m - 1)
  done;
  !c

let compact_entries (entries : Sleep_set.entry array) am =
  let n = popcount am in
  if n = 0 then [||]
  else begin
    let out = Array.make n entries.(0) in
    let j = ref 0 in
    Array.iteri
      (fun k e ->
        if (am lsr k) land 1 = 1 then begin
          out.(!j) <- e;
          incr j
        end)
      entries;
    out
  end

(* Children of a completed run: deviations strictly after its prefix
   (siblings at earlier points were enumerated by ancestors). Walked in
   reverse so a LIFO consumer extends the earliest choice point first —
   the DFS order of the sequential search. Free-switch siblings keep the
   item's preemption level, preempting siblings get level + 1; [emit]
   routes on [preempts]. In DPOR mode the alternatives come from the
   awake mask (sleeping tids are covered by construction), each node's
   children share one freshly compacted inherited-sleep array, and one
   sibling group seeded with the parent-chosen edge. *)
let iter_children r ~dpor ~level ~emit =
  let len = Array.length r.ru_choices in
  for i = len - 1 downto r.ru_plen do
    let info = r.ru_info.(i) in
    let rmask = info land low_mask in
    let prev = (info lsr mask_bits) - 1 in
    let chosen = r.ru_choices.(i) in
    let cand =
      (if dpor then r.ru_awake.(i) else rmask) land lnot (1 lsl chosen)
    in
    if cand <> 0 then begin
      let sleep, group =
        if not dpor then ([||], None)
        else begin
          let fp = r.ru_fps.(i) in
          (* Every recorded choice point's quantum executed, so its
             footprint was finalized; the guard is belt-and-braces. *)
          let fp =
            if Array.length fp = 0 then Sleep_set.empty_conservative else fp
          in
          ( compact_entries r.ru_entries r.ru_alive.(i),
            Some (Sleep_set.group_create { Sleep_set.tid = chosen; fp }) )
        end
      in
      let m = ref cand in
      while !m <> 0 do
        let alt = popcount ((!m land - !m) - 1) in
        m := !m land (!m - 1);
        let preempts =
          prev >= 0 && alt <> prev && (rmask lsr prev) land 1 = 1
        in
        emit
          {
            it_choices = r.ru_choices;
            it_dev = i;
            it_alt = alt;
            it_level = (if preempts then level + 1 else level);
            it_sleep = sleep;
            it_group = group;
          }
          ~preempts
      done
    end
  done

(* ------------------------------------------------------------------ *)
(* Script replay                                                      *)
(* ------------------------------------------------------------------ *)

type replay_result = {
  rp_violation : violation_info option;
  rp_outcome : Sched.outcome;
  rp_trace : Event.t list;
}

let run_steps ?(trace = false) ?on_sched target steps =
  let sched = target.make ~trace (Sched.Script (script_of_steps steps)) in
  (* [on_sched] lets a caller attach observers (e.g. a tracer, via
     [Era_obs.Sim_trace.attach]) to the internally built scheduler and
     monitor before the replay runs. *)
  (match on_sched with None -> () | Some f -> f sched);
  let viol = install_watchers target sched in
  let outcome = Sched.run sched in
  {
    rp_violation = !viol;
    rp_outcome = outcome;
    rp_trace = Monitor.trace (Sched.monitor sched);
  }

let replay ?trace ?on_sched target cex =
  run_steps ?trace ?on_sched target cex.c_steps

(* ------------------------------------------------------------------ *)
(* Shrinking: ddmin over the quantum-by-quantum schedule              *)
(* ------------------------------------------------------------------ *)

let split_chunks lst n =
  let len = List.length lst in
  let base = len / n and rem = len mod n in
  let rec go i acc lst =
    if i >= n then List.rev acc
    else begin
      let size = base + (if i < rem then 1 else 0) in
      let chunk, rest =
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: tl -> take (k - 1) (x :: acc) tl
        in
        take size [] lst
      in
      go (i + 1) (chunk :: acc) rest
    end
  in
  go 0 [] lst

(* Zeller-Hildebrandt ddmin. [test] must hold on [lst]; the result is a
   sublist on which [test] still holds and that is 1-minimal up to the
   test budget (a budget-exhausted test reports [false], which only stops
   further reduction). *)
let ddmin test lst =
  let rec go lst n =
    let len = List.length lst in
    if len <= 1 || n > len then lst
    else begin
      let chunks = split_chunks lst n in
      match List.find_opt test chunks with
      | Some c -> go c 2
      | None -> (
        let complements =
          List.mapi
            (fun i _ ->
              List.concat
                (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        match if n = 2 then None else List.find_opt test complements with
        | Some c -> go c (max (n - 1) 2)
        | None -> if n < len then go lst (min len (2 * n)) else lst)
    end
  in
  go lst 2

let shrink_steps target ~budget ~kind steps0 =
  let tests = ref 0 in
  let check steps =
    !tests < budget
    && begin
         incr tests;
         match (run_steps target steps).rp_violation with
         | Some v -> v.v_kind = kind
         | None -> false
       end
  in
  let shrunk = ddmin check steps0 in
  (shrunk, !tests)

(* ------------------------------------------------------------------ *)
(* Search bookkeeping shared by the three engines                     *)
(* ------------------------------------------------------------------ *)

let rec list_take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: list_take (n - 1) tl

(* Shrink a found violation and package the counterexample; shared by
   the sequential and parallel searches (shrinking is always sequential:
   ddmin on the one winning schedule). *)
let build_cex config target (v, steps) =
  let shrink_runs = ref 0 in
  let steps = list_take (v.v_step + 1) steps in
  let steps, v =
    if config.shrink && steps <> [] then begin
      let shrunk, tests =
        shrink_steps target ~budget:config.shrink_budget ~kind:v.v_kind steps
      in
      shrink_runs := tests;
      (* Re-derive the violation from the shrunk schedule so the
         recorded step index matches what replay will observe. *)
      match (run_steps target shrunk).rp_violation with
      | Some v' -> (shrunk, v')
      | None -> (steps, v)  (* defensive: keep the original witness *)
    end
    else (steps, v)
  in
  ( {
      c_target = target.name;
      c_nthreads = target.nthreads;
      c_params = target.params;
      c_violation = v;
      c_steps = steps;
      c_script = script_of_steps steps;
      c_preemptions = preemptions_of_steps steps;
    },
    !shrink_runs )

exception Search_over

let no_cancel () = false

(* ------------------------------------------------------------------ *)
(* The bounded DFS                                                    *)
(* ------------------------------------------------------------------ *)

let explore_sequential config target =
  let dpor = config.dpor in
  let visited : (int, int) Hashtbl.t = Hashtbl.create 8192 in
  let fps = if config.record_fps then Some (Hashtbl.create 1024) else None in
  let fp_check fp mask =
    (match fps with Some t -> Hashtbl.replace t fp () | None -> ());
    if config.prune then
      match Hashtbl.find_opt visited fp with
      | Some stored when stored land lnot mask = 0 -> true
      | Some stored ->
        Hashtbl.replace visited fp (stored land mask);
        false
      | None ->
        Hashtbl.replace visited fp mask;
        false
    else false
  in
  let sc = scratch () in
  let runs = ref 0 in
  let states = ref 0 in
  let pruned_n = ref 0 in
  let sleep_cuts = ref 0 in
  let failed = ref 0 in
  let found = ref None in
  let found_level = ref None in
  let levels_completed = ref 0 in
  let level = ref 0 in
  (* Iterative preemption bounding: the level-[k] stack holds items
     whose deviation needed its [k]-th preemption; free-switch siblings
     stay within the level, preempting siblings seed level [k+1]. *)
  let stack = ref [ root_item ] in
  let deferred = ref [] in
  (try
     while !level <= config.max_preemptions do
       while !stack <> [] do
         if !runs >= config.max_runs then raise Search_over;
         match !stack with
         | [] -> assert false
         | item :: rest ->
           stack := rest;
           let r =
             match config.fault_hook with
             | None ->
               Some
                 (run_one target ~dpor ~mutate_groups:true
                    ~max_steps:config.max_steps ~fp_check ~cancel:no_cancel
                    ~item sc)
             | Some h -> (
               try
                 h !runs;
                 Some
                   (run_one target ~dpor ~mutate_groups:true
                      ~max_steps:config.max_steps ~fp_check
                      ~cancel:no_cancel ~item sc)
               with _ -> None)
           in
           incr runs;
           (match r with
           | None -> incr failed
           | Some r ->
             states := !states + r.ru_quanta;
             if r.ru_pruned then incr pruned_n;
             if r.ru_sleep_cut then incr sleep_cuts;
             (match r.ru_violation with
             | Some v ->
               found := Some (v, r.ru_steps);
               found_level := Some !level;
               raise Search_over
             | None -> ());
             iter_children r ~dpor ~level:!level ~emit:(fun child ~preempts ->
                 if preempts then deferred := child :: !deferred
                 else stack := child :: !stack));
           (match config.on_progress with
           | Some f
             when config.progress_every > 0
                  && !runs mod config.progress_every = 0 ->
             f
               {
                 pg_level = !level;
                 pg_runs = !runs;
                 pg_states = !states;
                 pg_pruned = !pruned_n;
                 pg_frontier = List.length !stack;
                 pg_deferred = List.length !deferred;
                 pg_fp_size = Hashtbl.length visited;
                 pg_budget_left = max 0 (config.max_runs - !runs);
                 pg_per_domain_runs = [| !runs |];
               }
           | _ -> ())
       done;
       levels_completed := !level + 1;
       stack := List.rev !deferred;
       deferred := [];
       incr level;
       if !stack = [] then raise Search_over
     done
   with Search_over -> ());
  let cex, shrink_runs =
    match !found with
    | None -> (None, 0)
    | Some witness ->
      let c, n = build_cex config target witness in
      (Some c, n)
  in
  {
    res_stats =
      {
        runs = !runs;
        states = !states;
        pruned = !pruned_n;
        sleep_cuts = !sleep_cuts;
        shrink_runs;
        cex_preemptions = Option.map (fun _ -> Option.get !found_level) cex;
        levels_completed = !levels_completed;
        failed_runs = !failed;
        domains_used = 1;
        per_domain_runs = [ !runs ];
      };
    res_cex = cex;
    res_fps =
      (match fps with
      | None -> []
      | Some t ->
        List.sort compare (Hashtbl.fold (fun fp () acc -> fp :: acc) t []));
  }

(* ------------------------------------------------------------------ *)
(* Shared pieces of the two parallel engines                          *)
(* ------------------------------------------------------------------ *)

(* Reserve one run slot against the shared budget; the slot ordinal
   doubles as the fault-hook's run index. A compare-and-set loop rather
   than fetch-and-add-then-rollback: the optimistic increment could
   transiently push the counter past [max_runs] (briefly visible to
   heartbeat readers as an over-budget run count) and, with several
   workers hitting the limit at once, the rollbacks raced each other —
   each loser both decremented and set [budget_out], so the counter
   could end below the number of runs actually performed. CAS reserves
   exactly [max_runs] slots, no more, and the counter is monotone. *)
let make_reserve ~runs ~max_runs ~budget_out =
  let rec reserve () =
    let r = Atomic.get runs in
    if r >= max_runs then begin
      Atomic.set budget_out true;
      None
    end
    else if Atomic.compare_and_set runs r (r + 1) then Some r
    else reserve ()
  in
  reserve

(* Per-worker run counters. Slot [w] is written only by worker [w], but
   the coordinator's heartbeat reads run concurrently: with a plain int
   array those reads raced the writes (unsynchronized in the OCaml
   memory model — the data race satellite this PR fixes), so each slot
   is an [Atomic.t]. No padding: OCaml 5.1 has no [Atomic.make_contended],
   and one write per {e run} (not per quantum) is far too cold for false
   sharing to matter. *)
let make_per_domain domains = Array.init domains (fun _ -> Atomic.make 0)

let per_domain_snapshot a = Array.map Atomic.get a

let parallel_fp_check ~fps ~prune visited =
  fun fp mask ->
    (match fps with Some t -> Fp_table.add t fp | None -> ());
    if prune then Fp_table.check_covered visited fp ~mask
    else false

(* ------------------------------------------------------------------ *)
(* Parallel search: level-synchronous shared queue                    *)
(* ------------------------------------------------------------------ *)

(* Same level-synchronous frontier as the sequential search — every
   schedule within preemption bound [k] is covered before any schedule
   needing [k+1], so a reported violation still carries the minimal
   bound — but within a level the work items are sharded across
   [domains] workers through a batched work queue. Each worker owns a
   private re-execution loop (every run builds a fresh heap/monitor/
   scheduler, so nothing of the simulation itself is shared); the only
   cross-domain state is the work queue, the lock-striped visited table,
   the atomic budget/stat counters, and the first-violation latch. On a
   violation the latch cancels in-flight runs (polled once per quantum)
   and shrinking proceeds sequentially on the winning schedule.

   Which violating schedule wins the latch depends on worker timing, so
   across domain counts the reported counterexample may differ — but
   never its validity (it is always a concretely witnessed execution,
   re-checkable by sequential replay), and thanks to the level barrier
   never its preemption level. With pruning on, run/state counts for
   [domains > 1] are timing-dependent too: the visited table fills in a
   different order, so different runs get cut short. [domains = 1] never
   enters this code path and stays bit-identical to the sequential
   search. *)
let explore_parallel config target ~domains =
  let dpor = config.dpor in
  let visited = Fp_table.create () in
  let fps = if config.record_fps then Some (Fp_table.create ()) else None in
  let fp_check = parallel_fp_check ~fps ~prune:config.prune visited in
  let runs = Atomic.make 0 in
  let states = Atomic.make 0 in
  let pruned_n = Atomic.make 0 in
  let sleep_cuts = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let budget_out = Atomic.make false in
  let cancel = Atomic.make false in
  let cancelled () = Atomic.get cancel in
  let found_m = Mutex.create () in
  let found = ref None in
  let found_level = ref 0 in
  let reserve =
    make_reserve ~runs ~max_runs:config.max_runs ~budget_out
  in
  let levels_completed = ref 0 in
  let level = ref 0 in
  let frontier = ref [ root_item ] in
  let stop_all = ref false in
  let per_domain = make_per_domain domains in
  let last_report = ref 0 in
  while (not !stop_all) && !level <= config.max_preemptions do
    let q = Work_queue.create ~batch:config.batch () in
    let deferred_m = Mutex.create () in
    let deferred = ref [] in
    Work_queue.push_batch q !frontier;
    let this_level = !level in
    (* Heartbeats come from the coordinator only — the [on_progress]
       callback then never needs to be domain-safe. *)
    let maybe_report () =
      match config.on_progress with
      | Some f when config.progress_every > 0 ->
        let r = Atomic.get runs in
        if r - !last_report >= config.progress_every then begin
          last_report := r;
          let deferred_n =
            Mutex.lock deferred_m;
            let n = List.length !deferred in
            Mutex.unlock deferred_m;
            n
          in
          f
            {
              pg_level = this_level;
              pg_runs = r;
              pg_states = Atomic.get states;
              pg_pruned = Atomic.get pruned_n;
              pg_frontier = Work_queue.length q;
              pg_deferred = deferred_n;
              pg_fp_size = Fp_table.size visited;
              pg_budget_left = max 0 (config.max_runs - r);
              pg_per_domain_runs = per_domain_snapshot per_domain;
            }
        end
      | _ -> ()
    in
    let worker wid =
      let sc = scratch () in
      let rec loop () =
        match Work_queue.take q with
        | None -> ()
        | Some batch ->
          (* [batch_done] must run even if a fault escapes, or the
             queue's quiescence count would deadlock the level. *)
          Fun.protect
            ~finally:(fun () -> Work_queue.batch_done q)
            (fun () ->
              let same = ref [] in
              let next = ref [] in
              List.iter
                (fun item ->
                  if not (Atomic.get cancel || Atomic.get budget_out) then
                    match reserve () with
                    | None -> Work_queue.stop q
                    | Some slot -> (
                      Atomic.incr per_domain.(wid);
                      let r =
                        match config.fault_hook with
                        | None ->
                          Some
                            (run_one target ~dpor ~mutate_groups:false
                               ~max_steps:config.max_steps ~fp_check
                               ~cancel:cancelled ~item sc)
                        | Some h -> (
                          try
                            h slot;
                            Some
                              (run_one target ~dpor ~mutate_groups:false
                                 ~max_steps:config.max_steps ~fp_check
                                 ~cancel:cancelled ~item sc)
                          with _ -> None)
                      in
                      match r with
                      | None -> Atomic.incr failed
                      | Some r ->
                        ignore (Atomic.fetch_and_add states r.ru_quanta);
                        if r.ru_pruned then Atomic.incr pruned_n;
                        if r.ru_sleep_cut then Atomic.incr sleep_cuts;
                        (match r.ru_violation with
                        | Some v ->
                          Mutex.lock found_m;
                          if !found = None then begin
                            found := Some (v, r.ru_steps);
                            found_level := this_level
                          end;
                          Mutex.unlock found_m;
                          Atomic.set cancel true;
                          Work_queue.stop q
                        | None ->
                          iter_children r ~dpor ~level:this_level
                            ~emit:(fun c ~preempts ->
                              if preempts then next := c :: !next
                              else same := c :: !same))))
                batch;
              Work_queue.push_batch q (List.rev !same);
              if !next <> [] then begin
                Mutex.lock deferred_m;
                deferred := List.rev_append !next !deferred;
                Mutex.unlock deferred_m
              end);
          if wid = 0 then maybe_report ();
          loop ()
      in
      loop ()
    in
    let spawned =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join spawned;
    if Atomic.get cancel || Atomic.get budget_out then stop_all := true
    else begin
      levels_completed := !level + 1;
      frontier := List.rev !deferred;
      incr level;
      if !frontier = [] then stop_all := true
    end
  done;
  let cex, shrink_runs =
    match !found with
    | None -> (None, 0)
    | Some witness ->
      let c, n = build_cex config target witness in
      (Some c, n)
  in
  {
    res_stats =
      {
        runs = Atomic.get runs;
        states = Atomic.get states;
        pruned = Atomic.get pruned_n;
        sleep_cuts = Atomic.get sleep_cuts;
        shrink_runs;
        cex_preemptions = Option.map (fun _ -> !found_level) cex;
        levels_completed = !levels_completed;
        failed_runs = Atomic.get failed;
        domains_used = domains;
        per_domain_runs = Array.to_list (per_domain_snapshot per_domain);
      };
    res_cex = cex;
    res_fps =
      (match fps with
      | None -> []
      | Some t -> List.sort compare (Fp_table.elements t));
  }

(* ------------------------------------------------------------------ *)
(* Parallel search: randomized work stealing                          *)
(* ------------------------------------------------------------------ *)

(* Decentralized alternative to the level-synchronous queue: each worker
   owns a deque, pushes a run's children locally (LIFO — depth-first,
   which keeps the frontier from ballooning), and steals half of a
   random victim's items when its own deque drains. There are no level
   barriers, so no worker ever idles at a level boundary — the trade-off
   is that preemption levels interleave: a reported violation's level is
   the level of the item that found it, NOT guaranteed minimal (the
   sequential and queue engines do guarantee minimality). Preemption
   bounding itself still holds — items beyond [max_preemptions] are
   never created.

   Termination is a single atomic count of live items (pushed and not
   yet fully processed): a worker that cannot pop or steal exits once
   the count hits zero — nobody holds an item, so nobody can produce
   more. Stolen items move between deques without touching the count. *)
let explore_steal config target ~domains =
  let dpor = config.dpor in
  let visited = Fp_table.create () in
  let fps = if config.record_fps then Some (Fp_table.create ()) else None in
  let fp_check = parallel_fp_check ~fps ~prune:config.prune visited in
  let runs = Atomic.make 0 in
  let states = Atomic.make 0 in
  let pruned_n = Atomic.make 0 in
  let sleep_cuts = Atomic.make 0 in
  let failed = Atomic.make 0 in
  let budget_out = Atomic.make false in
  let cancel = Atomic.make false in
  let cancelled () = Atomic.get cancel in
  let found_m = Mutex.create () in
  let found = ref None in
  let found_level = ref 0 in
  let reserve =
    make_reserve ~runs ~max_runs:config.max_runs ~budget_out
  in
  let per_domain = make_per_domain domains in
  let items = Atomic.make 1 in
  let deques = Array.init domains (fun _ -> Steal_deque.create ()) in
  Steal_deque.push deques.(0) root_item;
  let last_report = ref 0 in
  let maybe_report level =
    match config.on_progress with
    | Some f when config.progress_every > 0 ->
      let r = Atomic.get runs in
      if r - !last_report >= config.progress_every then begin
        last_report := r;
        f
          {
            pg_level = level;
            pg_runs = r;
            pg_states = Atomic.get states;
            pg_pruned = Atomic.get pruned_n;
            pg_frontier = Atomic.get items;
            pg_deferred = 0;
            pg_fp_size = Fp_table.size visited;
            pg_budget_left = max 0 (config.max_runs - r);
            pg_per_domain_runs = per_domain_snapshot per_domain;
          }
      end
    | _ -> ()
  in
  let worker wid =
    let sc = scratch () in
    (* Cheap per-worker LCG for victim selection; distinct odd seeds per
       worker. Randomized victim choice is what spreads steal pressure —
       a fixed scan order would hammer worker 0's deque. *)
    let rng = ref (((wid * 0x9E3779B9) + 0x6D2B79F5) lor 1) in
    let next_victim () =
      (* Java-style 48-bit LCG; victim index from the high bits. *)
      rng := ((!rng * 25214903917) + 11) land 0xFFFFFFFFFFFF;
      let v = (!rng lsr 17) mod domains in
      if v = wid then (v + 1) mod domains else v
    in
    let stop () =
      Atomic.get cancel || Atomic.get budget_out || Atomic.get items = 0
    in
    let process item =
      Fun.protect
        ~finally:(fun () -> ignore (Atomic.fetch_and_add items (-1)))
        (fun () ->
          match reserve () with
          | None -> ()
          | Some slot -> (
            Atomic.incr per_domain.(wid);
            let r =
              match config.fault_hook with
              | None ->
                Some
                  (run_one target ~dpor ~mutate_groups:false
                     ~max_steps:config.max_steps ~fp_check ~cancel:cancelled
                     ~item sc)
              | Some h -> (
                try
                  h slot;
                  Some
                    (run_one target ~dpor ~mutate_groups:false
                       ~max_steps:config.max_steps ~fp_check
                       ~cancel:cancelled ~item sc)
                with _ -> None)
            in
            match r with
            | None -> Atomic.incr failed
            | Some r ->
              ignore (Atomic.fetch_and_add states r.ru_quanta);
              if r.ru_pruned then Atomic.incr pruned_n;
              if r.ru_sleep_cut then Atomic.incr sleep_cuts;
              (match r.ru_violation with
              | Some v ->
                Mutex.lock found_m;
                if !found = None then begin
                  found := Some (v, r.ru_steps);
                  found_level := item.it_level
                end;
                Mutex.unlock found_m;
                Atomic.set cancel true
              | None ->
                iter_children r ~dpor ~level:item.it_level
                  ~emit:(fun c ~preempts ->
                    ignore preempts;
                    if c.it_level <= config.max_preemptions then begin
                      (* count before push: an item in a deque is always
                         accounted for, so [items = 0] really means
                         "no work anywhere" *)
                      Atomic.incr items;
                      Steal_deque.push deques.(wid) c
                    end))));
      if wid = 0 then maybe_report item.it_level
    in
    let rec loop () =
      match Steal_deque.pop deques.(wid) with
      | Some item ->
        process item;
        loop ()
      | None ->
        if stop () then ()
        else begin
          (match Steal_deque.steal_half deques.(next_victim ()) with
          | [] -> Domain.cpu_relax ()
          | stolen ->
            (* Oldest first into our own deque: the LIFO pop then starts
               from the newest stolen item, preserving victim order. *)
            List.iter (Steal_deque.push deques.(wid)) stolen);
          loop ()
        end
    in
    loop ()
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  List.iter Domain.join spawned;
  let finished_naturally =
    not (Atomic.get cancel || Atomic.get budget_out)
  in
  let cex, shrink_runs =
    match !found with
    | None -> (None, 0)
    | Some witness ->
      let c, n = build_cex config target witness in
      (Some c, n)
  in
  {
    res_stats =
      {
        runs = Atomic.get runs;
        states = Atomic.get states;
        pruned = Atomic.get pruned_n;
        sleep_cuts = Atomic.get sleep_cuts;
        shrink_runs;
        cex_preemptions = Option.map (fun _ -> !found_level) cex;
        (* no level barrier: either the whole bounded space was covered
           (all levels), or the early stop makes the notion moot *)
        levels_completed =
          (if finished_naturally then config.max_preemptions + 1 else 0);
        failed_runs = Atomic.get failed;
        domains_used = domains;
        per_domain_runs = Array.to_list (per_domain_snapshot per_domain);
      };
    res_cex = cex;
    res_fps =
      (match fps with
      | None -> []
      | Some t -> List.sort compare (Fp_table.elements t));
  }

let explore ?(config = default_config) target =
  if config.domains <= 1 then explore_sequential config target
  else if config.steal then explore_steal config target ~domains:config.domains
  else explore_parallel config target ~domains:config.domains

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let violation_to_json v =
  Json.Obj
    [
      ("kind", Json.String (Event.violation_name v.v_kind));
      ("tid", Json.Int v.v_tid);
      ("step", Json.Int v.v_step);
      ("detail", Json.String v.v_detail);
    ]

let instr_to_json = function
  | Sched.Run (tid, n) ->
    Json.Obj [ ("tid", Json.Int tid); ("n", Json.Int n) ]
  | _ ->
    invalid_arg "Explore: only Run instructions appear in counterexamples"

let counterexample_to_json c =
  Json.Obj
    [
      ("target", Json.String c.c_target);
      ("nthreads", Json.Int c.c_nthreads);
      ("params", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.c_params));
      ("violation", violation_to_json c.c_violation);
      ("preemptions", Json.Int c.c_preemptions);
      ("steps", Json.List (List.map (fun t -> Json.Int t) c.c_steps));
      ("script", Json.List (List.map instr_to_json c.c_script));
    ]

let ( let* ) = Result.bind

let req what = function
  | Some x -> Ok x
  | None -> Error (Fmt.str "counterexample JSON: missing or bad %s" what)

let violation_of_json j =
  let* kind_s = req "violation.kind" Json.(Option.bind (member "kind" j) to_str) in
  let* kind = req ("violation kind " ^ kind_s) (Event.violation_of_name kind_s) in
  let* tid = req "violation.tid" Json.(Option.bind (member "tid" j) to_int) in
  let* step = req "violation.step" Json.(Option.bind (member "step" j) to_int) in
  let* detail =
    req "violation.detail" Json.(Option.bind (member "detail" j) to_str)
  in
  Ok { v_kind = kind; v_tid = tid; v_step = step; v_detail = detail }

let all_ints what l =
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* i = req what (Json.to_int j) in
      Ok (i :: acc))
    (Ok []) l
  |> Result.map List.rev

let counterexample_of_json j =
  let* tname = req "target" Json.(Option.bind (member "target" j) to_str) in
  let* nthreads =
    req "nthreads" Json.(Option.bind (member "nthreads" j) to_int)
  in
  let* params =
    match Json.member "params" j with
    | Some (Json.Obj kvs) ->
      List.fold_left
        (fun acc (k, vj) ->
          let* acc = acc in
          let* v = req ("params." ^ k) (Json.to_int vj) in
          Ok ((k, v) :: acc))
        (Ok []) kvs
      |> Result.map List.rev
    | Some _ -> Error "counterexample JSON: params is not an object"
    | None -> Ok []
  in
  let* vj = req "violation" (Json.member "violation" j) in
  let* v = violation_of_json vj in
  let* preempts =
    req "preemptions" Json.(Option.bind (member "preemptions" j) to_int)
  in
  let* steps_j =
    req "steps" Json.(Option.bind (member "steps" j) to_list)
  in
  let* steps = all_ints "steps entry" steps_j in
  Ok
    {
      c_target = tname;
      c_nthreads = nthreads;
      c_params = params;
      c_violation = v;
      c_steps = steps;
      c_script = script_of_steps steps;
      c_preemptions = preempts;
    }

(* [open_out] on a path whose directory does not exist fails with a bare
   "No such file or directory" — opaque when the path came from [--out].
   [Fsutil.write_file] (shared with the tracer and heartbeat writers)
   creates the missing parents instead and surfaces a clear error when
   even that fails, e.g. a file standing where a directory is needed. *)
let save ~file cex =
  try
    Era_metrics.Fsutil.write_file ~file
      (Json.to_string (counterexample_to_json cex) ^ "\n")
  with Sys_error e -> raise (Sys_error (Fmt.str "Explore.save: %s" e))

let load ~file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error e -> Error e
  | text ->
    let* j = Json.of_string text in
    counterexample_of_json j

(* ------------------------------------------------------------------ *)
(* Metrics export                                                     *)
(* ------------------------------------------------------------------ *)

let stats_registry s =
  let module R = Era_obs.Registry in
  let reg = R.create () in
  let c name v = R.set_counter (R.counter reg name) v in
  c "explore_runs" s.runs;
  c "explore_states" s.states;
  c "explore_pruned" s.pruned;
  c "explore_sleep_cuts" s.sleep_cuts;
  c "explore_shrink_runs" s.shrink_runs;
  c "explore_levels_completed" s.levels_completed;
  c "explore_failed_runs" s.failed_runs;
  R.set_int (R.gauge reg "explore_domains") s.domains_used;
  List.iteri
    (fun d n ->
      R.set_counter
        (R.counter reg ~labels:[ ("domain", string_of_int d) ]
           "explore_domain_runs")
        n)
    s.per_domain_runs;
  (match s.cex_preemptions with
  | None -> ()
  | Some p -> R.set_int (R.gauge reg "explore_cex_preemptions") p);
  reg

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                    *)
(* ------------------------------------------------------------------ *)

let pp_violation fmt v =
  Fmt.pf fmt "%s by T%d at quantum %d (%s)"
    (Event.violation_name v.v_kind)
    v.v_tid v.v_step v.v_detail

let pp_counterexample fmt c =
  Fmt.pf fmt
    "%s: %a@ schedule: %d quanta, %d preemption(s), %d script instruction(s)"
    c.c_target pp_violation c.c_violation (List.length c.c_steps)
    c.c_preemptions (List.length c.c_script)

let pp_stats fmt s =
  Fmt.pf fmt
    "%d runs, %d states, %d pruned, %d shrink runs, %d level(s) completed%a%a%a%a"
    s.runs s.states s.pruned s.shrink_runs s.levels_completed
    (fun fmt n -> if n > 0 then Fmt.pf fmt ", %d sleep cut(s)" n)
    s.sleep_cuts
    (Fmt.option (fun fmt p -> Fmt.pf fmt ", found at preemption bound %d" p))
    s.cex_preemptions
    (fun fmt d -> if d > 1 then Fmt.pf fmt ", %d domains" d)
    s.domains_used
    (fun fmt f ->
      if f > 0 then Fmt.pf fmt ", %d FAILED run(s) (partial coverage)" f)
    s.failed_runs

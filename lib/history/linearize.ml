module Event = Era_sim.Event

type verdict = {
  ok : bool;
  witness : Event.op list;
  states_explored : int;
}

(* Memo keys: a visited search node is (linearized-set, abstract state).
   For histories of up to 62 operations — all of them in practice — the
   linearized set is kept as an int bitmask maintained incrementally, so
   a key is built without copying the bytes buffer or concatenating
   strings. Longer histories fall back to the old string encoding. *)
module Memo_key = struct
  type t = int * string  (* bitmask (or 0 for the fallback), state *)

  let equal ((a, s) : t) ((b, u) : t) = a = b && String.equal s u
  let hash ((a, s) : t) = Hashtbl.hash a + (Hashtbl.hash s * 65599)
end

module Memo = Hashtbl.Make (Memo_key)

let max_mask_ops = 62

(* Wing–Gong search. At each point, an operation may linearize next iff it
   is not yet linearized and its invocation precedes the earliest response
   among the not-yet-linearized completed operations (otherwise that other
   operation returned strictly before this one began, so real-time order
   forbids the choice). Completed operations must match the spec's result;
   pending ones may linearize with any result or be dropped (by never
   being chosen). *)
let check (module S : Spec.S) (history : History.t) =
  let ops = Array.of_list history in
  let n = Array.length ops in
  let explored = ref 0 in
  let memo : unit Memo.t = Memo.create 4096 in
  let small = n <= max_mask_ops in
  let lin_mask = ref 0 in
  let linearized = Bytes.make n '0' in
  let completed_total =
    Array.fold_left
      (fun acc (r : History.op_record) ->
        if r.result <> None then acc + 1 else acc)
      0 ops
  in
  let witness = ref [] in
  let rec go state completed_done =
    if completed_done = completed_total then true
    else begin
      let key =
        if small then (!lin_mask, S.canonical state)
        else (0, Bytes.to_string linearized ^ "|" ^ S.canonical state)
      in
      if Memo.mem memo key then false
      else begin
        Memo.add memo key ();
        incr explored;
        let min_res = ref max_int in
        for i = 0 to n - 1 do
          let r = ops.(i) in
          if Bytes.get linearized i = '0' && r.result <> None then
            if r.res_time < !min_res then min_res := r.res_time
        done;
        let rec try_candidates i =
          if i >= n then false
          else begin
            let r = ops.(i) in
            if Bytes.get linearized i = '1' || r.inv_time >= !min_res then
              try_candidates (i + 1)
            else begin
              let state', res = S.apply state r.op in
              let admissible =
                match r.result with
                | None -> true  (* pending: any result is fine *)
                | Some actual -> Spec.result_matches actual res
              in
              if admissible then begin
                Bytes.set linearized i '1';
                if small then lin_mask := !lin_mask lor (1 lsl i);
                let done' =
                  if r.result <> None then completed_done + 1
                  else completed_done
                in
                if go state' done' then begin
                  witness := r.op :: !witness;
                  true
                end
                else begin
                  Bytes.set linearized i '0';
                  if small then lin_mask := !lin_mask land lnot (1 lsl i);
                  try_candidates (i + 1)
                end
              end
              else try_candidates (i + 1)
            end
          end
        in
        try_candidates 0
      end
    end
  in
  let ok = go S.init 0 in
  { ok; witness = !witness; states_explored = !explored }

let is_linearizable spec h = (check spec h).ok

let check_monitor spec mon = check spec (History.of_monitor mon)

(* Brute force: enumerate sequences. Pending ops may be dropped, so we try
   every subset of pending operations interleaved anywhere after their
   invocation; completed ops must respect real-time order. *)
let brute_force (module S : Spec.S) (history : History.t) =
  let ops = Array.of_list history in
  let n = Array.length ops in
  let used = Array.make n false in
  let completed_total =
    Array.fold_left
      (fun acc (r : History.op_record) ->
        if r.result <> None then acc + 1 else acc)
      0 ops
  in
  let rec go state completed_done =
    if completed_done = completed_total then true
    else begin
      let min_res = ref max_int in
      for i = 0 to n - 1 do
        if (not used.(i)) && ops.(i).result <> None then
          if ops.(i).res_time < !min_res then min_res := ops.(i).res_time
      done;
      let rec attempt i =
        if i >= n then false
        else if used.(i) || ops.(i).inv_time >= !min_res then attempt (i + 1)
        else begin
          let r = ops.(i) in
          let state', res = S.apply state r.op in
          let admissible =
            match r.result with
            | None -> true
            | Some actual -> Spec.result_matches actual res
          in
          (if admissible then begin
             used.(i) <- true;
             let done' =
               if r.result <> None then completed_done + 1 else completed_done
             in
             let sub = go state' done' in
             used.(i) <- false;
             sub
           end
           else false)
          || attempt (i + 1)
        end
      in
      attempt 0
    end
  in
  go S.init 0

(** Native Treiber stack over the native reclamation schemes. *)

open Nnode

module Make (S : Nsmr.S) = struct
  type t = { top : link Atomic.t }

  let create () = { top = Atomic.make (link nil) }

  let push t s v =
    S.begin_op s;
    let node = S.alloc s v in
    let rec loop () =
      let old_top = Atomic.get t.top in
      Atomic.set node.next old_top;
      if Atomic.compare_and_set t.top old_top (link node) then ()
      else begin
        Domain.cpu_relax ();
        loop ()
      end
    in
    loop ();
    S.end_op s

  let pop t s =
    S.begin_op s;
    let rec loop () =
      let old_top = Atomic.get t.top in
      let n = old_top.target in
      if n == nil then None
      else
        let nxt = S.read_link s n in
        if Atomic.compare_and_set t.top old_top (link nxt.target) then begin
          let v = n.key in
          S.retire s n;
          Some v
        end
        else begin
          Domain.cpu_relax ();
          loop ()
        end
    in
    let r = loop () in
    S.end_op s;
    r
end

(** Native interval-based reclamation (2GE): birth epochs stamped at
    allocation, per-domain [lo, hi] reservations, interval-disjointness
    scans. *)

let name = "ibr"
let allocs_per_epoch = 64
let scan_threshold = 64

type dstate = {
  mutable retired : (Nnode.node * int * int) list;  (* node, birth, retire *)
  mutable retired_count : int;
  mutable pool : Nnode.node list;
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired_total : int;
  mutable scans : int;
}

type t = {
  ndomains : int;
  epoch : int Atomic.t;
  allocs : int Atomic.t;
  resv_lo : int Atomic.t array;
  resv_hi : int Atomic.t array;
  domains : dstate array;
}

type tctx = {
  g : t;
  d : int;
}

let create ~ndomains =
  {
    ndomains;
    epoch = Atomic.make 0;
    allocs = Atomic.make 0;
    resv_lo = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make max_int);
    resv_hi = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make min_int);
    domains =
      Array.init ndomains (fun _ ->
          { retired = []; retired_count = 0; pool = []; max_backlog = 0;
            reclaimed = 0; retired_total = 0; scans = 0 });
  }

let thread g d = { g; d }
let lo t = t.g.resv_lo.(Nsmr.padded_index t.d)
let hi t = t.g.resv_hi.(Nsmr.padded_index t.d)

let begin_op t =
  let e = Atomic.get t.g.epoch in
  Atomic.set (lo t) e;
  Atomic.set (hi t) e

let end_op t =
  Atomic.set (lo t) max_int;
  Atomic.set (hi t) min_int

let alloc t key =
  let g = t.g in
  let a = Atomic.fetch_and_add g.allocs 1 in
  if a mod allocs_per_epoch = 0 then ignore (Atomic.fetch_and_add g.epoch 1);
  let ds = g.domains.(t.d) in
  let n =
    match ds.pool with
    | n :: rest ->
      ds.pool <- rest;
      Atomic.set n.Nnode.next (Nnode.link None);
      n.Nnode.key <- key;
      n
    | [] -> Nnode.make ~key
  in
  n.Nnode.birth <- Atomic.get g.epoch;
  n

let intersects g ~birth ~retire_epoch =
  let conflict = ref false in
  for d = 0 to g.ndomains - 1 do
    let l = Atomic.get g.resv_lo.(Nsmr.padded_index d) in
    let h = Atomic.get g.resv_hi.(Nsmr.padded_index d) in
    if l <= retire_epoch && birth <= h then conflict := true
  done;
  !conflict

(* One pass over the retired list: keep intersecting nodes (counted as
   we go), push the rest straight onto the pool — same pool order as the
   old [rev_append (map fst free)], without building either list. *)
let scan t =
  let g = t.g in
  let ds = g.domains.(t.d) in
  ds.scans <- ds.scans + 1;
  let keep = ref [] in
  let kept = ref 0 in
  List.iter
    (fun ((n, birth, retire_epoch) as r) ->
      if intersects g ~birth ~retire_epoch then begin
        keep := r :: !keep;
        incr kept
      end
      else begin
        ds.reclaimed <- ds.reclaimed + 1;
        ds.pool <- n :: ds.pool
      end)
    ds.retired;
  ds.retired <- List.rev !keep;
  ds.retired_count <- !kept

let retire t n =
  let ds = t.g.domains.(t.d) in
  ds.retired <-
    (n, n.Nnode.birth, Atomic.get t.g.epoch) :: ds.retired;
  ds.retired_count <- ds.retired_count + 1;
  ds.retired_total <- ds.retired_total + 1;
  if ds.retired_count > ds.max_backlog then ds.max_backlog <- ds.retired_count;
  if ds.retired_count >= scan_threshold then scan t

let read_link t n =
  Atomic.set (hi t) (Atomic.get t.g.epoch);
  Nnode.get n

let backlog g = Array.fold_left (fun a d -> a + d.retired_count) 0 g.domains

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired_total;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + d.retired_count;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

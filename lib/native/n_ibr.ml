(** Native interval-based reclamation (2GE): birth epochs stamped at
    allocation, per-domain [lo, hi] reservations, interval-disjointness
    scans.

    Retired nodes sit in per-domain {!Limbo} bags tagged with their
    retire epoch (pushes seal a bag whenever the tag changes, so a bag
    groups exactly one retire epoch); the birth epoch travels on the
    node itself. A scan compacts the bags in place under the
    interval-disjointness predicate — retire and scan are
    allocation-free. *)

let name = "ibr"
let allocs_per_epoch = 64
let scan_threshold = 64

type dstate = {
  limbo : Limbo.t;
  pool : Limbo.Pool.t;
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired_total : int;
  mutable scans : int;
}

type t = {
  ndomains : int;
  epoch : int Atomic.t;
  allocs : int Atomic.t;
  resv_lo : int Atomic.t array;
  resv_hi : int Atomic.t array;
  domains : dstate array;
  mutable flight : Era_obs.Flight.t;
}

type tctx = {
  g : t;
  d : int;
  ds : dstate;
  fl : Era_obs.Flight.handle;
}

let create ~ndomains =
  {
    ndomains;
    epoch = Atomic.make 0;
    allocs = Atomic.make 0;
    resv_lo = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make max_int);
    resv_hi = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make min_int);
    domains =
      Array.init ndomains (fun _ ->
          { limbo = Limbo.create (); pool = Limbo.Pool.create ();
            max_backlog = 0; reclaimed = 0; retired_total = 0; scans = 0 });
    flight = Era_obs.Flight.null;
  }

let attach_flight g f = g.flight <- f

let thread g d =
  { g; d; ds = g.domains.(d); fl = Era_obs.Flight.handle g.flight d }
let lo t = t.g.resv_lo.(Nsmr.padded_index t.d)
let hi t = t.g.resv_hi.(Nsmr.padded_index t.d)

let current_epoch g = Atomic.get g.epoch

let begin_op t =
  let e = Atomic.get t.g.epoch in
  Atomic.set (lo t) e;
  Atomic.set (hi t) e

let end_op t =
  Atomic.set (lo t) max_int;
  Atomic.set (hi t) min_int

let alloc t key =
  let g = t.g in
  let a = Atomic.fetch_and_add g.allocs 1 in
  if a mod allocs_per_epoch = 0 then begin
    let e = Atomic.fetch_and_add g.epoch 1 in
    Era_obs.Flight.advance t.fl (e + 1)
  end;
  let n = Limbo.Pool.take t.ds.pool in
  let n =
    if n == Nnode.nil then Nnode.make ~key
    else begin
      Atomic.set n.Nnode.next (Nnode.link Nnode.nil);
      n.Nnode.key <- key;
      n
    end
  in
  n.Nnode.birth <- Atomic.get g.epoch;
  n

let intersects g ~birth ~retire_epoch =
  let conflict = ref false in
  for d = 0 to g.ndomains - 1 do
    let l = Atomic.get g.resv_lo.(Nsmr.padded_index d) in
    let h = Atomic.get g.resv_hi.(Nsmr.padded_index d) in
    if l <= retire_epoch && birth <= h then conflict := true
  done;
  !conflict

(* Compact the limbo bags in place: nodes whose [birth, retire] interval
   intersects some reservation stay; the rest go straight to the pool.
   The retire epoch is the bag tag, the birth rides on the node. *)
let scan t =
  let g = t.g in
  let ds = t.ds in
  ds.scans <- ds.scans + 1;
  let freed =
    Limbo.sweep ds.limbo
      ~keep:(fun retire_epoch n ->
        intersects g ~birth:n.Nnode.birth ~retire_epoch)
      ~free:(fun n -> Limbo.Pool.put ds.pool n)
  in
  ds.reclaimed <- ds.reclaimed + freed;
  Era_obs.Flight.sweep t.fl freed;
  Era_obs.Flight.backlog t.fl ~domain:t.d (Limbo.size ds.limbo)

let retire t n =
  let ds = t.ds in
  Limbo.push ds.limbo ~tag:(Atomic.get t.g.epoch) n;
  ds.retired_total <- ds.retired_total + 1;
  Era_obs.Flight.retire t.fl;
  let backlog = Limbo.size ds.limbo in
  if backlog > ds.max_backlog then ds.max_backlog <- backlog;
  if backlog >= scan_threshold then scan t

let read_link t n =
  Atomic.set (hi t) (Atomic.get t.g.epoch);
  Nnode.get n

let in_pool t n = Limbo.Pool.mem t.ds.pool n

let backlog g =
  Array.fold_left (fun a d -> a + Limbo.size d.limbo) 0 g.domains

let domain_backlog g d = Limbo.size g.domains.(d).limbo

let domain_lag g d =
  let l = Atomic.get g.resv_lo.(Nsmr.padded_index d) in
  if l = max_int then 0 else max 0 (Atomic.get g.epoch - l)

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired_total;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + Limbo.size d.limbo;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

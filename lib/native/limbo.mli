(** Fixed-capacity limbo bags and typed node pools for the native
    reclamation schemes (the DEBRA shape, cf. SNIPPETS.md Snippet 3).

    Retired nodes are appended to node arrays ("bags") chained
    oldest→newest; each bag carries a tag (the retire epoch for EBR/IBR,
    unused for HP) and all nodes in a bag share it, so tags are
    non-decreasing along the chain. Reclamation either drops whole
    eligible bags from the oldest end ({!free_le} — EBR's batch free) or
    compacts bags in place under a per-node predicate ({!sweep} — HP/IBR
    scans). Emptied bags are recycled through an internal free list and
    nodes through {!Pool}, so steady-state retire/reclaim traffic
    performs no allocation. Everything here is domain-private: one [t]
    per domain, no synchronisation. *)

val bag_capacity : int
(** Nodes per bag (64). *)

module Pool : sig
  type t
  (** Growable array stack of recycled nodes (per-domain, type-preserving
      — the "pool" of the scheme interface). *)

  val create : unit -> t

  val put : t -> Nnode.node -> unit

  val take : t -> Nnode.node
  (** Pops a node, or returns {!Nnode.nil} when empty (the caller's cue
      to allocate fresh). The vacated slot is cleared, so the pool never
      pins a node it handed out. *)

  val is_empty : t -> bool
  val size : t -> int

  val mem : t -> Nnode.node -> bool
  (** Physical-equality membership scan (tests: a protected node must
      never sit in a pool). *)
end

type t

val create : unit -> t
(** An empty chain holding one blank bag. *)

val push : t -> tag:int -> Nnode.node -> unit
(** Append a node under [tag]. Seals the newest bag (and opens a fresh
    or recycled one) when it is full or the tag changes. Tags passed to
    successive [push]es must be non-decreasing for {!free_le}'s
    early-stop to be sound. *)

val free_le : t -> horizon:int -> free:(Nnode.node -> unit) -> int
(** Free every node in bags tagged [<= horizon], walking oldest→newest
    and stopping at the first ineligible bag. Whole-bag batch free: no
    per-node predicate. Returns the number freed. *)

val sweep : t -> keep:(int -> Nnode.node -> bool) -> free:(Nnode.node -> unit) -> int
(** Compact every bag in place, freeing nodes for which
    [keep tag node] is false and recycling emptied bags. Returns the
    number freed. *)

val size : t -> int
(** Nodes currently held across all bags. *)

val iter : t -> f:(int -> Nnode.node -> unit) -> unit
(** Visit every held node with its bag tag, oldest bag first (tests). *)

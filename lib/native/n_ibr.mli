(** Native interval-based reclamation (2GE): birth epochs stamped at
    allocation, per-domain [lo, hi] reservations refreshed on every read,
    interval-disjointness scans. Weakly robust: the backlog is bounded by
    what a reservation can pin, which scales with the structure size. *)

include Nsmr.S

val allocs_per_epoch : int
val scan_threshold : int

val current_epoch : t -> int
(** The global epoch right now (tests: retire-epoch bag tagging). *)

val in_pool : tctx -> Nnode.node -> bool
(** Is [n] sitting in this domain's recycle pool? (Tests: the
    reserved-interval-never-pooled property.) *)

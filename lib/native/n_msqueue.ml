(** Native Michael–Scott queue over the native reclamation schemes. *)

open Nnode

module Make (S : Nsmr.S) = struct
  type t = {
    head : link Atomic.t;  (* always points at the current dummy *)
    tail : link Atomic.t;
  }

  let create () =
    let dummy = make ~key:0 in
    { head = Atomic.make (link dummy); tail = Atomic.make (link dummy) }

  let enqueue t s v =
    S.begin_op s;
    let node = S.alloc s v in
    let rec loop () =
      let last_l = Atomic.get t.tail in
      let last = last_l.target in
      let nxt = S.read_link s last in
      if nxt.target == nil then begin
        if Atomic.compare_and_set last.next nxt (link node) then
          ignore (Atomic.compare_and_set t.tail last_l (link node))
        else loop ()
      end
      else begin
        ignore (Atomic.compare_and_set t.tail last_l (link nxt.target));
        loop ()
      end
    in
    loop ();
    S.end_op s

  let dequeue t s =
    S.begin_op s;
    let rec loop () =
      let first_l = Atomic.get t.head in
      let last_l = Atomic.get t.tail in
      let first = first_l.target in
      let nxt = S.read_link s first in
      if first == last_l.target then begin
        if nxt.target == nil then None
        else begin
          ignore (Atomic.compare_and_set t.tail last_l (link nxt.target));
          loop ()
        end
      end
      else
        let second = nxt.target in
        if second == nil then loop ()
        else
          let v = second.key in
          if Atomic.compare_and_set t.head first_l (link second) then begin
            S.retire s first;
            Some v
          end
          else loop ()
    in
    let r = loop () in
    S.end_op s;
    r
end

(** Native DEBRA+: {!N_ebr}'s amortized epoch protocol plus cooperative
    neutralization. A domain observed lagging past [patience]
    consecutive advance attempts is flagged and stops blocking the epoch
    (robustness under stalls); the flagged domain's next {!read_link}
    consumes the flag, re-announces the current epoch, repools its
    not-yet-linked allocations and raises {!Nsmr.Neutralized} so the
    structure's restart wrapper re-runs the operation. Only structures
    wired for whole-operation restarts may use it (the Michael list is;
    {!Throughput} refuses the others) — the native face of the scheme's
    applicability loss. *)

include Nsmr.S

val default_amortize : int
(** Slow-path period of {!create} (32). *)

val create_with : ?amortize:int -> ndomains:int -> unit -> t
(** As {!N_ebr.create_with}: [amortize] must be a power of two (else
    [Invalid_argument]); [k = 1] recovers per-op epoch checks. *)

val patience : int
(** Consecutive blocked advance attempts (per observing context) before
    a laggard is flagged (3). *)

val neutralizations : t -> int
(** Flags raised by observers since [create]. *)

val restarts : t -> int
(** Flags consumed by victims (operations restarted via
    {!Nsmr.Neutralized}). At a quiescent point,
    [restarts + stale-consumed = neutralizations]. *)

val in_pool : tctx -> Nnode.node -> bool
(** Is this node currently recycled into the context's pool (tests)? *)

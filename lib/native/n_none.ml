(** Native no-reclamation baseline: retired nodes are dropped on the
    floor (the GC will eventually collect them once unreachable, but they
    are never recycled and the backlog counter grows forever). *)

let name = "none"

type t = {
  backlog : int Atomic.t;
  max_backlog : int Atomic.t;
}

type tctx = t

let create ~ndomains:_ =
  { backlog = Atomic.make 0; max_backlog = Atomic.make 0 }

let thread t _ = t
let begin_op _ = ()
let end_op _ = ()
let alloc _ key = Nnode.make ~key

let rec bump_max m v =
  let cur = Atomic.get m in
  if v > cur && not (Atomic.compare_and_set m cur v) then bump_max m v

let retire t _node =
  let b = Atomic.fetch_and_add t.backlog 1 + 1 in
  bump_max t.max_backlog b

let read_link _ n = Nnode.get n
let backlog t = Atomic.get t.backlog
let max_backlog t = Atomic.get t.max_backlog
let reclaimed _ = 0

(* Nothing to record and no per-domain accounting: the baseline keeps
   one global backlog counter, so the flight probes report it on domain
   0 and zero elsewhere. *)
let attach_flight _ _ = ()
let domain_backlog t d = if d = 0 then Atomic.get t.backlog else 0
let domain_lag _ _ = 0

let stats t =
  let b = Atomic.get t.backlog in
  {
    Nsmr.retired = b;  (* nothing is ever reclaimed: retired = backlog *)
    reclaimed = 0;
    backlog = b;
    max_backlog = Atomic.get t.max_backlog;
    scans = 0;
  }

type node = {
  mutable key : int;
  next : link Atomic.t;
  mutable birth : int;
}

and link = {
  marked : bool;
  target : node;
}

(* The null sentinel. [target == nil] is the null test; [nil.next] is a
   self-link so the record is well-formed, but dereferencing it is a
   protocol violation — every traversal checks for [nil] (or a
   structure's own tail sentinel) first. Bootstrapping the cycle needs
   one [Obj.magic]: the placeholder is an immediate (GC-safe) and is
   overwritten before [nil] escapes this definition. *)
let nil =
  let n =
    { key = max_int; next = Atomic.make (Obj.magic 0 : link); birth = 0 }
  in
  Atomic.set n.next { marked = false; target = n };
  n

let link ?(marked = false) target = { marked; target }
let make ~key = { key; next = Atomic.make (link nil); birth = 0 }
let get n = Atomic.get n.next

let same_target a b = a.marked = b.marked && a.target == b.target

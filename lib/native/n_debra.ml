(** Native DEBRA+: the epoch scheme of {!N_ebr} plus cooperative
    neutralization, so a stalled domain stops pinning the epoch.

    The epoch protocol, packed announcement words and amortized hot path
    are exactly {!N_ebr}'s. What changes is the advance rule: a domain
    observed lagging for more than [patience] consecutive advance
    attempts gets its {e neutralization flag} set and no longer blocks
    the advance. The flagged domain discovers the flag at its next
    {!read_link} — it consumes the flag, hops its announcement to the
    current epoch, returns its not-yet-linked allocations to the pool
    and raises {!Nsmr.Neutralized}, which the data structure's restart
    wrapper turns into a from-the-top re-run of the operation.

    This is a {e cooperative} port of DEBRA+'s OS-signal neutralization
    (Brown, PODC 2015): where the simulated scheme (lib/smr/debra.ml)
    delivers the "signal" synchronously at the next scheduler quantum,
    the native victim keeps executing until its next [read_link]. Two
    mechanisms close the reuse window that latency opens:

    - [read_link] double-checks the flag around the load, so a value
      read concurrently with a neutralization request is discarded, and
      no pointer obtained {e after} the request is ever returned;
    - bag-freeing clears each node's [next] to a fresh link record
      before pooling it, so a CAS the victim attempts with a stale
      expected link (read before the request) fails on physical
      inequality instead of corrupting a pooled node.

    Plain field reads ([key], mark bits) between the victim's last
    [read_link] and its flag check are the simulated signal latency;
    they are memory-safe (the pool preserves the node type) and every
    structural mutation is a CAS that fails on recycled nodes, but a
    [contains] completing inside that window can report a stale answer.
    Linearizability under neutralization is adjudicated in the simulated
    stack (where delivery is synchronous and the explorer's lincheck
    finds the restart-past-linearization counterexample); the native
    rows measure cost, and the native tests assert the safety
    properties: no pooled-node dereference hand-off, bounded backlog
    under a stall. *)

let name = "debra"
let default_amortize = 32

let patience = 3
(* Consecutive blocked advance attempts (per observer) before the
   laggard is flagged. Small: E9-style stalls should unblock within a
   few slow paths. *)

type dstate = {
  limbo : Limbo.t;
  pool : Limbo.Pool.t;
  mutable ops : int;  (* per-domain op counter for the amortized path *)
  mutable ann_active : int;  (* (cached epoch lsl 1) lor 1 *)
  mutable ann_idle : int;  (* cached epoch lsl 1 *)
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired : int;
  mutable scans : int;  (* slow paths that freed at least one bag *)
}

type t = {
  ndomains : int;
  amortize_mask : int;  (* amortize - 1; amortize is a power of two *)
  epoch : int Atomic.t;
  announce : int Atomic.t array;  (* packed; padded *)
  flag : int Atomic.t array;  (* neutralization requests; padded *)
  neutralizations : int Atomic.t;  (* flags raised (by observers) *)
  restarts : int Atomic.t;  (* flags consumed via Neutralized *)
  domains : dstate array;
  mutable flight : Era_obs.Flight.t;
}

type tctx = {
  g : t;
  d : int;
  ds : dstate;
  ann : int Atomic.t;  (* cached announce slot — read_link is hot *)
  flg : int Atomic.t;  (* cached flag slot *)
  lag : int array;
      (* per-observer consecutive-block counters, one per observed
         domain; private to this context, so patience needs no
         cross-domain synchronisation *)
  mutable fresh : Nnode.node list;
      (* nodes allocated by the in-progress operation and not yet
         retired; provably unlinked at every point [read_link] can
         raise, so the neutralization path returns them to the pool *)
  fl : Era_obs.Flight.handle;
  mutable restarting : bool;
      (* a neutralization restart span is open; closed by the end_op
         that completes the re-run *)
}

let create_with ?(amortize = default_amortize) ~ndomains () =
  if amortize < 1 || amortize land (amortize - 1) <> 0 then
    invalid_arg "N_debra.create_with: amortize must be a power of two";
  {
    ndomains;
    amortize_mask = amortize - 1;
    epoch = Atomic.make 0;
    announce = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make 0);
    flag = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make 0);
    neutralizations = Atomic.make 0;
    restarts = Atomic.make 0;
    domains =
      Array.init ndomains (fun _ ->
          { limbo = Limbo.create (); pool = Limbo.Pool.create (); ops = 0;
            ann_active = 1; ann_idle = 0; max_backlog = 0; reclaimed = 0;
            retired = 0; scans = 0 });
    flight = Era_obs.Flight.null;
  }

let create ~ndomains = create_with ~ndomains ()
let attach_flight g f = g.flight <- f

let thread g d =
  {
    g; d; ds = g.domains.(d);
    ann = g.announce.(Nsmr.padded_index d);
    flg = g.flag.(Nsmr.padded_index d);
    lag = Array.make g.ndomains 0;
    fresh = [];
    fl = Era_obs.Flight.handle g.flight d;
    restarting = false;
  }

let announce_slot t = t.ann
let flag_slot t = t.flg

(* A slot blocks the advance from [e] iff its active bit is set, its
   announced epoch is behind [e] and it is not flagged. A laggard
   observed blocking for more than [patience] consecutive attempts gets
   flagged — from then on the advance treats it as neutralized. *)
let try_advance t =
  let g = t.g in
  let e = Atomic.get g.epoch in
  let ok = ref true in
  for d = 0 to g.ndomains - 1 do
    let a = Atomic.get g.announce.(Nsmr.padded_index d) in
    if a land 1 = 1 && a asr 1 < e then begin
      if Atomic.get g.flag.(Nsmr.padded_index d) = 1 then ()
      else begin
        let l = t.lag.(d) + 1 in
        t.lag.(d) <- l;
        if l > patience then begin
          Atomic.set g.flag.(Nsmr.padded_index d) 1;
          Atomic.incr g.neutralizations;
          Era_obs.Flight.flag t.fl ~victim:d;
          t.lag.(d) <- 0
        end
        else ok := false
      end
    end
    else t.lag.(d) <- 0
  done;
  if !ok then ignore (Atomic.compare_and_set g.epoch e (e + 1))

(* The cooperative "signal handler": consume the request, hop to the
   current epoch (we block nobody), return not-yet-linked allocations to
   the pool, and unwind to the operation's restart wrapper. *)
let neutralize t =
  Atomic.set (flag_slot t) 0;
  let e = Atomic.get t.g.epoch in
  t.ds.ann_idle <- e lsl 1;
  t.ds.ann_active <- (e lsl 1) lor 1;
  Atomic.set (announce_slot t) t.ds.ann_active;
  List.iter (fun n -> Limbo.Pool.put t.ds.pool n) t.fresh;
  t.fresh <- [];
  Atomic.incr t.g.restarts;
  (* The restart span stays open until the re-run's end_op; repeated
     neutralizations inside one logical operation extend the same
     span. *)
  if not t.restarting then begin
    t.restarting <- true;
    Era_obs.Flight.restart_begin t.fl
  end;
  raise Nsmr.Neutralized

let slow_path t =
  let g = t.g and ds = t.ds in
  Era_obs.Flight.slow_path t.fl;
  let e = Atomic.get g.epoch in
  if e lsl 1 <> ds.ann_idle then begin
    ds.ann_idle <- e lsl 1;
    ds.ann_active <- (e lsl 1) lor 1;
    Atomic.set (announce_slot t) ds.ann_active
  end;
  try_advance t;
  let e' = Atomic.get g.epoch in
  if e' > e then Era_obs.Flight.advance t.fl e';
  let horizon = e' - 2 in
  let freed =
    Limbo.free_le ds.limbo ~horizon ~free:(fun n ->
        (* Fail-safe for neutralized laggards: a fresh [next] record
           means any CAS still holding a pre-neutralization expected
           link fails on physical inequality (see the module note). *)
        Atomic.set n.Nnode.next (Nnode.link Nnode.nil);
        Limbo.Pool.put ds.pool n)
  in
  if freed > 0 then begin
    ds.reclaimed <- ds.reclaimed + freed;
    ds.scans <- ds.scans + 1;
    Era_obs.Flight.free t.fl freed
  end;
  Era_obs.Flight.backlog t.fl ~domain:t.d (Limbo.size ds.limbo)

let begin_op t =
  let ds = t.ds in
  Atomic.set (announce_slot t) ds.ann_active;
  let ops = ds.ops + 1 in
  ds.ops <- ops;
  if ops land t.g.amortize_mask = 0 then slow_path t

let end_op t =
  Atomic.set (announce_slot t) t.ds.ann_idle;
  t.fresh <- [];
  if t.restarting then begin
    t.restarting <- false;
    Era_obs.Flight.restart_end t.fl
  end;
  (* A request that lands after the operation finished is stale: the
     next operation starts from the current epoch anyway. Consume it
     silently, mirroring the simulated scheme's end_op. *)
  if Atomic.get (flag_slot t) = 1 then Atomic.set (flag_slot t) 0

let alloc t key =
  let n = Limbo.Pool.take t.ds.pool in
  let n =
    if n == Nnode.nil then Nnode.make ~key
    else begin
      Atomic.set n.Nnode.next (Nnode.link Nnode.nil);
      n.Nnode.key <- key;
      n
    end
  in
  t.fresh <- n :: t.fresh;
  n

let retire t n =
  let ds = t.ds in
  (* A retired node is out of our hands; it must not ride the fresh list
     into a double hand-off to the pool on a later restart. *)
  (match t.fresh with
  | [] -> ()
  | fresh -> t.fresh <- List.filter (fun m -> m != n) fresh);
  (* Fresh epoch read — the cached epoch is NOT a safe retire tag (see
     N_ebr's note). *)
  Limbo.push ds.limbo ~tag:(Atomic.get t.g.epoch) n;
  ds.retired <- ds.retired + 1;
  Era_obs.Flight.retire t.fl;
  let backlog = Limbo.size ds.limbo in
  if backlog > ds.max_backlog then ds.max_backlog <- backlog

(* Double-checked protected load: never return a pointer obtained after
   a neutralization request, and discard one obtained concurrently with
   it. *)
let read_link t n =
  if Atomic.get (flag_slot t) = 1 then neutralize t;
  let l = Nnode.get n in
  if Atomic.get (flag_slot t) = 1 then neutralize t;
  l

let backlog g =
  Array.fold_left (fun a d -> a + Limbo.size d.limbo) 0 g.domains

let domain_backlog g d = Limbo.size g.domains.(d).limbo

let domain_lag g d =
  let a = Atomic.get g.announce.(Nsmr.padded_index d) in
  if a land 1 = 1 then max 0 (Atomic.get g.epoch - (a asr 1)) else 0

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains
let neutralizations g = Atomic.get g.neutralizations
let restarts g = Atomic.get g.restarts
let in_pool t n = Limbo.Pool.mem t.ds.pool n

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + Limbo.size d.limbo;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

(** Nodes of the native (real multicore, Domain/Atomic) data structures.

    A link packs a Harris-style mark bit with the successor pointer in
    one immutable record, so a single [Atomic.compare_and_set] updates
    both — the OCaml idiom for tagged pointers. CAS relies on physical
    equality: always CAS with the exact link value previously read.

    Null successors are the [nil] sentinel rather than an [option]: a
    hot-path traversal dereferences [link.target] without unwrapping a
    [Some] box, which removes one dependent load (and 2 words per link)
    from every hop. *)

type node = {
  mutable key : int;
  next : link Atomic.t;
  mutable birth : int;  (** epoch stamp used by IBR *)
}

and link = {
  marked : bool;
  target : node;  (** [== nil] means null; test physically *)
}

val nil : node
(** The shared null sentinel. [l.target == nil] replaces the old
    [l.target = None] test. Its [key] is [max_int] and its link is a
    self-link; reading {e through} [nil] is a protocol violation. *)

val make : key:int -> node
(** Fresh node with an unmarked [nil] link and birth 0. *)

val link : ?marked:bool -> node -> link
val get : node -> link

val same_target : link -> link -> bool
(** Do two links denote the same (mark, target) value? (Physical node
    equality plus mark comparison — the bit-pattern test.) *)

(** Native reclamation-scheme interface.

    The native layer exists for the paper's performance remarks
    (experiments E8/E9): real domains, real [Atomic] fences, real retry
    loops. "Reclaiming" a node recycles it into a per-domain
    type-preserving pool (the OCaml GC owns the memory itself); the
    statistics expose reclaimed counts and the retired-backlog high-water
    mark, which is the space axis of the robustness trade-off. *)

(** Aggregated per-scheme counters, snapshotted by [S.stats]. The
    invariants [reclaimed <= retired] and [backlog = retired - reclaimed]
    hold at any quiescent point (no operation in flight). *)
type stats = {
  retired : int;  (** total nodes ever passed to [retire] *)
  reclaimed : int;  (** nodes recycled into the pools *)
  backlog : int;  (** currently retired-but-unreclaimed *)
  max_backlog : int;  (** high-water mark of the backlog *)
  scans : int;
      (** reclamation passes: threshold-triggered scans for HP/IBR,
          epoch-bucket frees for EBR, always 0 for none *)
}

module type S = sig
  val name : string

  type t
  type tctx

  val create : ndomains:int -> t
  val thread : t -> int -> tctx
  (** [thread t d] — per-domain context; [d] must be unique per domain. *)

  val begin_op : tctx -> unit
  val end_op : tctx -> unit

  val alloc : tctx -> int -> Nnode.node
  (** Recycled from the pool when possible; stamps IBR-style birth. *)

  val retire : tctx -> Nnode.node -> unit

  val read_link : tctx -> Nnode.node -> Nnode.link
  (** Protected load of [n.next] (protocol per scheme). *)

  val backlog : t -> int
  (** Current total retired-but-unreclaimed nodes. *)

  val max_backlog : t -> int
  val reclaimed : t -> int

  val stats : t -> stats
  (** One consistent snapshot of every counter (experiment rows are built
      from this rather than the individual accessors). *)

  val attach_flight : t -> Era_obs.Flight.t -> unit
  (** Install a flight recorder; contexts created by later [thread]
      calls record their SMR lifecycle events (retire, bag free/sweep,
      epoch advance, slow path, neutralization) into its per-domain
      rings. Contexts created before the attach keep the detached
      handle. With {!Era_obs.Flight.null} (the default) every recording
      call is a single branch. *)

  val domain_backlog : t -> int -> int
  (** [domain_backlog t d] — domain [d]'s retired-but-unreclaimed
      count, readable cross-domain (the coordinator's gauge probe). *)

  val domain_lag : t -> int -> int
  (** [domain_lag t d] — how many epochs domain [d]'s published
      announcement/reservation trails the global epoch; [0] when idle
      or for schemes with no epoch ({!N_hp}, {!N_none}). *)
end

exception Neutralized
(** Raised by a scheme's [read_link] when another domain has requested
    this domain's neutralization (native DEBRA+, {!N_debra}): the
    in-progress operation must abandon every pointer it holds and
    restart from its beginning. Data structures that integrate with
    neutralizing schemes catch it in a whole-operation restart wrapper
    (the Michael list does); it never crosses an operation boundary. *)

(* Per-domain padded slot helper: OCaml records/arrays give no real
   cache-line padding control; we approximate by spacing entries. *)
let pad = 8

let padded_index d = d * pad

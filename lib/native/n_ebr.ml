(** Native epoch-based reclamation: global epoch [Atomic], per-domain
    announcements, three retire buckets. One stalled domain stops the
    epoch — experiment E9's backlog blow-up. *)

let name = "ebr"

let quiescent = max_int

type dstate = {
  mutable buckets : (int * Nnode.node list * int) list;
      (* (epoch, nodes, count), newest first *)
  mutable pool : Nnode.node list;
  mutable backlog : int;
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired : int;
  mutable scans : int;  (* epoch-bucket frees (passes that reclaimed) *)
}

type t = {
  ndomains : int;
  epoch : int Atomic.t;
  announce : int Atomic.t array;  (* padded *)
  domains : dstate array;
}

type tctx = {
  g : t;
  d : int;
}

let create ~ndomains =
  {
    ndomains;
    epoch = Atomic.make 0;
    announce =
      Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make quiescent);
    domains =
      Array.init ndomains (fun _ ->
          { buckets = []; pool = []; backlog = 0; max_backlog = 0;
            reclaimed = 0; retired = 0; scans = 0 });
  }

let thread g d = { g; d }

let announce_slot t = t.g.announce.(Nsmr.padded_index t.d)

let reclaim_eligible t =
  let ds = t.g.domains.(t.d) in
  let horizon = Atomic.get t.g.epoch - 2 in
  let eligible, kept =
    List.partition (fun (e, _, _) -> e <= horizon) ds.buckets
  in
  ds.buckets <- kept;
  if eligible <> [] then ds.scans <- ds.scans + 1;
  List.iter
    (fun (_, nodes, count) ->
      ds.pool <- List.rev_append nodes ds.pool;
      ds.backlog <- ds.backlog - count;
      ds.reclaimed <- ds.reclaimed + count)
    eligible

let try_advance t =
  let g = t.g in
  let e = Atomic.get g.epoch in
  let all_caught_up =
    let ok = ref true in
    for d = 0 to g.ndomains - 1 do
      let a = Atomic.get g.announce.(Nsmr.padded_index d) in
      if a <> quiescent && a < e then ok := false
    done;
    !ok
  in
  if all_caught_up then ignore (Atomic.compare_and_set g.epoch e (e + 1))

let begin_op t =
  Atomic.set (announce_slot t) (Atomic.get t.g.epoch);
  try_advance t;
  reclaim_eligible t

let end_op t = Atomic.set (announce_slot t) quiescent

let alloc t key =
  let ds = t.g.domains.(t.d) in
  match ds.pool with
  | n :: rest ->
    ds.pool <- rest;
    Atomic.set n.Nnode.next (Nnode.link None);
    n.Nnode.key <- key;
    n
  | [] -> Nnode.make ~key

let retire t n =
  let ds = t.g.domains.(t.d) in
  let e = Atomic.get t.g.epoch in
  (ds.buckets <-
    (match ds.buckets with
    | (e', nodes, c) :: rest when e' = e -> (e, n :: nodes, c + 1) :: rest
    | l -> (e, [ n ], 1) :: l));
  ds.retired <- ds.retired + 1;
  ds.backlog <- ds.backlog + 1;
  if ds.backlog > ds.max_backlog then ds.max_backlog <- ds.backlog;
  reclaim_eligible t

let read_link _ n = Nnode.get n

let backlog g = Array.fold_left (fun a d -> a + d.backlog) 0 g.domains

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + d.backlog;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

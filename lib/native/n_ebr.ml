(** Native epoch-based reclamation, DEBRA-style amortized hot path.

    The global epoch is an [Atomic]; each domain publishes one packed
    announcement word [(epoch lsl 1) lor active_bit]. [begin_op] is two
    stores and a counter test: it re-announces the {e cached} epoch and
    only every [amortize]-th operation takes the slow path (fresh epoch
    read, re-announce, [try_advance], batch reclaim of eligible limbo
    bags). Announcing a stale cached epoch is safe — it is {e more}
    conservative, blocking the epoch advance exactly as a reader at that
    epoch would. Retire tags, by contrast, MUST come from a fresh read
    of the global epoch: tagging with a stale cached value could date an
    unlink before a reader that still holds the unlinked pointer, and
    the bag would free under that reader's feet.

    Retired nodes go into per-domain {!Limbo} bags keyed by retire
    epoch; the bucket of epoch [e] recycles (whole-bag, allocation-free)
    once the global epoch reaches [e + 2]. Cheap reads (no per-access
    protocol) but not robust: a stalled domain pins the epoch and the
    backlog grows with the churn volume (experiment E9). *)

let name = "ebr"
let default_amortize = 32

type dstate = {
  limbo : Limbo.t;
  pool : Limbo.Pool.t;
  mutable ops : int;  (* per-domain op counter for the amortized path *)
  mutable ann_active : int;  (* (cached epoch lsl 1) lor 1 *)
  mutable ann_idle : int;  (* cached epoch lsl 1 *)
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired : int;
  mutable scans : int;  (* slow paths that freed at least one bag *)
}

type t = {
  ndomains : int;
  amortize_mask : int;  (* amortize - 1; amortize is a power of two *)
  epoch : int Atomic.t;
  announce : int Atomic.t array;  (* packed; padded *)
  domains : dstate array;
  mutable flight : Era_obs.Flight.t;
}

type tctx = {
  g : t;
  d : int;
  ds : dstate;
  fl : Era_obs.Flight.handle;
}

let create_with ?(amortize = default_amortize) ~ndomains () =
  if amortize < 1 || amortize land (amortize - 1) <> 0 then
    invalid_arg "N_ebr.create_with: amortize must be a power of two";
  {
    ndomains;
    amortize_mask = amortize - 1;
    epoch = Atomic.make 0;
    announce = Array.init (ndomains * Nsmr.pad) (fun _ -> Atomic.make 0);
    domains =
      Array.init ndomains (fun _ ->
          { limbo = Limbo.create (); pool = Limbo.Pool.create (); ops = 0;
            ann_active = 1; ann_idle = 0; max_backlog = 0; reclaimed = 0;
            retired = 0; scans = 0 });
    flight = Era_obs.Flight.null;
  }

let create ~ndomains = create_with ~ndomains ()
let attach_flight g f = g.flight <- f

let thread g d =
  { g; d; ds = g.domains.(d); fl = Era_obs.Flight.handle g.flight d }

let announce_slot t = t.g.announce.(Nsmr.padded_index t.d)

(* A slot blocks the advance from [e] iff its active bit is set and its
   announced epoch is behind [e]. Idle domains never block. *)
let try_advance g =
  let e = Atomic.get g.epoch in
  let ok = ref true in
  for d = 0 to g.ndomains - 1 do
    let a = Atomic.get g.announce.(Nsmr.padded_index d) in
    if a land 1 = 1 && a asr 1 < e then ok := false
  done;
  if !ok then ignore (Atomic.compare_and_set g.epoch e (e + 1))

let slow_path t =
  let g = t.g and ds = t.ds in
  Era_obs.Flight.slow_path t.fl;
  let e = Atomic.get g.epoch in
  if e lsl 1 <> ds.ann_idle then begin
    (* The epoch moved since we cached it: re-announce fresh so we stop
       blocking the next advance, and update both cached words. *)
    ds.ann_idle <- e lsl 1;
    ds.ann_active <- (e lsl 1) lor 1;
    Atomic.set (announce_slot t) ds.ann_active
  end;
  try_advance g;
  let e' = Atomic.get g.epoch in
  if e' > e then Era_obs.Flight.advance t.fl e';
  let freed =
    Limbo.free_le ds.limbo ~horizon:(e' - 2) ~free:(fun n ->
        Limbo.Pool.put ds.pool n)
  in
  if freed > 0 then begin
    ds.reclaimed <- ds.reclaimed + freed;
    ds.scans <- ds.scans + 1;
    Era_obs.Flight.free t.fl freed
  end;
  Era_obs.Flight.backlog t.fl ~domain:t.d (Limbo.size ds.limbo)

let begin_op t =
  let ds = t.ds in
  Atomic.set (announce_slot t) ds.ann_active;
  let ops = ds.ops + 1 in
  ds.ops <- ops;
  if ops land t.g.amortize_mask = 0 then slow_path t

let end_op t = Atomic.set (announce_slot t) t.ds.ann_idle

let alloc t key =
  let n = Limbo.Pool.take t.ds.pool in
  if n == Nnode.nil then Nnode.make ~key
  else begin
    Atomic.set n.Nnode.next (Nnode.link Nnode.nil);
    n.Nnode.key <- key;
    n
  end

let retire t n =
  let ds = t.ds in
  (* Fresh epoch read — see the safety note above; the cached epoch is
     NOT safe to use as a retire tag. *)
  Limbo.push ds.limbo ~tag:(Atomic.get t.g.epoch) n;
  ds.retired <- ds.retired + 1;
  Era_obs.Flight.retire t.fl;
  let backlog = Limbo.size ds.limbo in
  if backlog > ds.max_backlog then ds.max_backlog <- backlog

let read_link _ n = Nnode.get n

let backlog g =
  Array.fold_left (fun a d -> a + Limbo.size d.limbo) 0 g.domains

let domain_backlog g d = Limbo.size g.domains.(d).limbo

let domain_lag g d =
  let a = Atomic.get g.announce.(Nsmr.padded_index d) in
  if a land 1 = 1 then max 0 (Atomic.get g.epoch - (a asr 1)) else 0

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + Limbo.size d.limbo;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

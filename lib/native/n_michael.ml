(** Native Michael linked-list set [30]: the HP-compatible restructuring
    of Harris's algorithm. Traversals never step over a marked node —
    they unlink it first (one node per CAS), restarting from the head on
    contention. This is the list whose slower churn behaviour the paper's
    Section 6 discussion cites; experiment E8 measures it against
    Harris's. Safe with every native scheme, including HP. *)

open Nnode

module Make (S : Nsmr.S) = struct
  type t = {
    head : node;
    tail : node;
  }

  (* Whole-operation restart wrapper: a neutralizing scheme (N_debra)
     abandons an in-progress operation by raising [Nsmr.Neutralized]
     from [read_link]. Every pointer the attempt held is dead at that
     point, so the only sound resumption is the top of the operation —
     which is also why only this list supports such schemes. For
     non-neutralizing schemes the wrapper is one exception handler per
     operation and never fires. *)
  let rec restartable f = try f () with Nsmr.Neutralized -> restartable f

  let create () =
    let tail = make ~key:max_int in
    let head = make ~key:min_int in
    Atomic.set head.next (link tail);
    { head; tail }

  let head t = t.head

  (* Returns (pred, pred_link, curr): pred unmarked and physically linked
     to curr at read time; every marked node met on the way was unlinked
     (and retired by the unlink winner) before stepping over it. *)
  let rec search t s key =
    let rec walk pred pred_link =
      let curr = pred_link.target in
      if curr == t.tail then (pred, pred_link, curr)
      else
        let curr_link = S.read_link s curr in
        if curr_link.marked then begin
          let fresh = link curr_link.target in
          if Atomic.compare_and_set pred.next pred_link fresh then begin
            S.retire s curr;
            walk pred fresh
          end
          else search t s key  (* contention: restart *)
        end
        else if curr.key < key then walk curr curr_link
        else (pred, pred_link, curr)
    in
    walk t.head (S.read_link s t.head)

  let insert t s key =
    restartable @@ fun () ->
    S.begin_op s;
    let node = S.alloc s key in
    let rec loop () =
      let pred, pred_link, curr = search t s key in
      if curr != t.tail && curr.key = key then begin
        S.retire s node;
        false
      end
      else begin
        Atomic.set node.next (link curr);
        if Atomic.compare_and_set pred.next pred_link (link node) then true
        else loop ()
      end
    in
    let r = loop () in
    S.end_op s;
    r

  let delete t s key =
    restartable @@ fun () ->
    S.begin_op s;
    let rec loop () =
      let pred, pred_link, curr = search t s key in
      if curr == t.tail || curr.key <> key then false
      else
        let succ = S.read_link s curr in
        if succ.marked then loop ()
        else if
          not
            (Atomic.compare_and_set curr.next succ
               { succ with marked = true })
        then loop ()
        else begin
          (* Unlink winner retires; if we lose, a traversal will win the
             unlink CAS and retire it. *)
          if Atomic.compare_and_set pred.next pred_link (link succ.target)
          then S.retire s curr;
          true
        end
    in
    let r = loop () in
    S.end_op s;
    r

  let contains t s key =
    restartable @@ fun () ->
    S.begin_op s;
    let _, _, curr = search t s key in
    let r = curr != t.tail && curr.key = key in
    S.end_op s;
    r

  let to_list t s =
    restartable @@ fun () ->
    S.begin_op s;
    let rec walk l acc =
      let n = l.target in
      if n == nil || n == t.tail then List.rev acc
      else
        let nl = S.read_link s n in
        walk nl (if nl.marked then acc else n.key :: acc)
    in
    let r = walk (S.read_link s t.head) [] in
    S.end_op s;
    r
end

(** Native Harris linked-list set (the original algorithm: traversals
    stride over chains of marked nodes; one CAS unlinks the whole run).
    Functorized over the native reclamation scheme. Only schemes that are
    {e applicable} to Harris's list (EBR; none) are safe here —
    integrating native HP with this list compiles but is exactly the
    unsafe combination the ERA theorem talks about, so the benchmark
    harness never pairs them.

    CAS uses physical equality, so [search] returns the {e physically
    read} (or physically installed) link of [pred] along with the
    window. *)

open Nnode

module Make (S : Nsmr.S) = struct
  type t = {
    head : node;
    tail : node;
  }

  let create () =
    let tail = make ~key:max_int in
    let head = make ~key:min_int in
    Atomic.set head.next (link tail);
    { head; tail }

  let head t = t.head

  (* Returns (pred, pred_link, curr): [pred_link] is the link value
     physically residing in [pred.next] and pointing (unmarked) at
     [curr]. *)
  let rec search t s key =
    let first = S.read_link s t.head in
    let rec find n n_link (left, left_link) =
      let acc =
        if not n_link.marked then (n, n_link) else (left, left_link)
      in
      let n' = n_link.target in
      if n' == t.tail then (fst acc, snd acc, n')
      else
        let n'_link = S.read_link s n' in
        if n'_link.marked || n'.key < key then find n' n'_link acc
        else (fst acc, snd acc, n')
    in
    let left, left_link, right = find t.head first (t.head, first) in
    if left_link.target == right then
      if right != t.tail && (S.read_link s right).marked then search t s key
      else (left, left_link, right)
    else begin
      let fresh = link right in
      if Atomic.compare_and_set left.next left_link fresh then
        if right != t.tail && (S.read_link s right).marked then search t s key
        else (left, fresh, right)
      else search t s key
    end

  let insert t s key =
    S.begin_op s;
    let node = S.alloc s key in
    let rec loop () =
      let pred, pred_link, curr = search t s key in
      if curr != t.tail && curr.key = key then begin
        S.retire s node;
        false
      end
      else begin
        Atomic.set node.next (link curr);
        if Atomic.compare_and_set pred.next pred_link (link node) then true
        else loop ()
      end
    in
    let r = loop () in
    S.end_op s;
    r

  let delete t s key =
    S.begin_op s;
    let rec loop () =
      let pred, pred_link, curr = search t s key in
      if curr == t.tail || curr.key <> key then false
      else
        let succ = S.read_link s curr in
        if succ.marked then loop ()
        else if
          not
            (Atomic.compare_and_set curr.next succ
               { succ with marked = true })
        then loop ()
        else begin
          if
            not
              (Atomic.compare_and_set pred.next pred_link (link succ.target))
          then ignore (search t s key);
          S.retire s curr;
          true
        end
    in
    let r = loop () in
    S.end_op s;
    r

  let contains t s key =
    S.begin_op s;
    let _, _, curr = search t s key in
    let r =
      curr != t.tail && (not (S.read_link s curr).marked) && curr.key = key
    in
    S.end_op s;
    r

  let to_list t s =
    S.begin_op s;
    let rec walk l acc =
      let n = l.target in
      if n == nil || n == t.tail then List.rev acc
      else
        let nl = S.read_link s n in
        walk nl (if nl.marked then acc else n.key :: acc)
    in
    let r = walk (S.read_link s t.head) [] in
    S.end_op s;
    r
end

(** Native hazard pointers: per-domain atomic slots, protect-validate
    loads, scan-on-threshold reclamation into a type-preserving pool.
    Backlog bounded by [ndomains * (threshold + slots)].

    Retired nodes sit in per-domain {!Limbo} bags (tag unused); a scan
    snapshots the hazard slots into domain-private scratch and compacts
    the bags in place, so retire and scan are allocation-free. Slots
    hold {!Nnode.nil} when empty rather than [None] — no [Some] box on
    the protect path. *)

let name = "hp"
let slots_per_domain = 3
let scan_threshold = 64

type dstate = {
  limbo : Limbo.t;
  pool : Limbo.Pool.t;
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired_total : int;
  mutable scans : int;
  mutable rot : int;
  hz_buf : Nnode.node array;
      (* per-domain scan scratch: the hazard snapshot; private to the
         owning domain, so scans stay allocation-free and race-free *)
}

type t = {
  ndomains : int;
  hp : Nnode.node Atomic.t array;  (* ndomains * slots, padded; nil = empty *)
  domains : dstate array;
  mutable flight : Era_obs.Flight.t;
}

type tctx = {
  g : t;
  d : int;
  ds : dstate;
  fl : Era_obs.Flight.handle;
}

let create ~ndomains =
  {
    ndomains;
    hp =
      Array.init
        (ndomains * slots_per_domain * Nsmr.pad)
        (fun _ -> Atomic.make Nnode.nil);
    domains =
      Array.init ndomains (fun _ ->
          { limbo = Limbo.create (); pool = Limbo.Pool.create ();
            max_backlog = 0; reclaimed = 0; retired_total = 0; scans = 0;
            rot = 0;
            hz_buf = Array.make (ndomains * slots_per_domain) Nnode.nil });
    flight = Era_obs.Flight.null;
  }

let attach_flight g f = g.flight <- f

let thread g d =
  { g; d; ds = g.domains.(d); fl = Era_obs.Flight.handle g.flight d }

let slot g d s = g.hp.(((d * slots_per_domain) + s) * Nsmr.pad)

let clear_slots t =
  for s = 0 to slots_per_domain - 1 do
    Atomic.set (slot t.g t.d s) Nnode.nil
  done

let begin_op t =
  t.ds.rot <- 0;
  clear_slots t

let end_op t = clear_slots t

let alloc t key =
  let n = Limbo.Pool.take t.ds.pool in
  if n == Nnode.nil then Nnode.make ~key
  else begin
    Atomic.set n.Nnode.next (Nnode.link Nnode.nil);
    n.Nnode.key <- key;
    n
  end

(* Snapshot the slots into the domain's scratch array, then compact the
   limbo bags in place: protected nodes stay, the rest go straight to
   the pool. No intermediate lists. *)
let scan t =
  let g = t.g in
  let ds = t.ds in
  ds.scans <- ds.scans + 1;
  let hz = ds.hz_buf in
  let nhz = ref 0 in
  for d = 0 to g.ndomains - 1 do
    for s = 0 to slots_per_domain - 1 do
      let n = Atomic.get (slot g d s) in
      if n != Nnode.nil then begin
        hz.(!nhz) <- n;
        incr nhz
      end
    done
  done;
  let protected_ n =
    let rec probe i = i < !nhz && (hz.(i) == n || probe (i + 1)) in
    probe 0
  in
  let freed =
    Limbo.sweep t.ds.limbo
      ~keep:(fun _tag n -> protected_ n)
      ~free:(fun n -> Limbo.Pool.put ds.pool n)
  in
  ds.reclaimed <- ds.reclaimed + freed;
  Array.fill hz 0 !nhz Nnode.nil;
  Era_obs.Flight.sweep t.fl freed;
  Era_obs.Flight.backlog t.fl ~domain:t.d (Limbo.size ds.limbo)

let retire t n =
  let ds = t.ds in
  Limbo.push ds.limbo ~tag:0 n;
  ds.retired_total <- ds.retired_total + 1;
  Era_obs.Flight.retire t.fl;
  let backlog = Limbo.size ds.limbo in
  if backlog > ds.max_backlog then ds.max_backlog <- backlog;
  if backlog >= scan_threshold then scan t

(* Protect-validate: load the link, publish its target in a rotating
   slot, re-load; retry until stable. *)
let read_link t n =
  let ds = t.ds in
  let rec loop () =
    let l = Nnode.get n in
    if l.Nnode.target == Nnode.nil then l
    else begin
      let s = ds.rot mod slots_per_domain in
      Atomic.set (slot t.g t.d s) l.Nnode.target;
      let l' = Nnode.get n in
      if Nnode.same_target l l' then begin
        ds.rot <- ds.rot + 1;
        l'
      end
      else loop ()
    end
  in
  loop ()

let in_pool t n = Limbo.Pool.mem t.ds.pool n

let backlog g =
  Array.fold_left (fun a d -> a + Limbo.size d.limbo) 0 g.domains

let domain_backlog g d = Limbo.size g.domains.(d).limbo
let domain_lag _ _ = 0 (* no epochs: hazard slots don't lag *)

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired_total;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + Limbo.size d.limbo;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

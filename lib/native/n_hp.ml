(** Native hazard pointers: per-domain atomic slots, protect-validate
    loads, scan-on-threshold reclamation into a type-preserving pool.
    Backlog bounded by [ndomains * (threshold + slots)]. *)

let name = "hp"
let slots_per_domain = 3
let scan_threshold = 64

type dstate = {
  mutable retired : Nnode.node list;
  mutable retired_count : int;
  mutable pool : Nnode.node list;
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired_total : int;
  mutable scans : int;
  mutable rot : int;
}

type t = {
  ndomains : int;
  hp : Nnode.node option Atomic.t array;  (* ndomains * slots, padded *)
  domains : dstate array;
}

type tctx = {
  g : t;
  d : int;
}

let create ~ndomains =
  {
    ndomains;
    hp =
      Array.init
        (ndomains * slots_per_domain * Nsmr.pad)
        (fun _ -> Atomic.make None);
    domains =
      Array.init ndomains (fun _ ->
          { retired = []; retired_count = 0; pool = []; max_backlog = 0;
            reclaimed = 0; retired_total = 0; scans = 0; rot = 0 });
  }

let thread g d = { g; d }

let slot g d s = g.hp.(((d * slots_per_domain) + s) * Nsmr.pad)

let clear_slots t =
  for s = 0 to slots_per_domain - 1 do
    Atomic.set (slot t.g t.d s) None
  done

let begin_op t =
  t.g.domains.(t.d).rot <- 0;
  clear_slots t

let end_op t = clear_slots t

let alloc t key =
  let ds = t.g.domains.(t.d) in
  match ds.pool with
  | n :: rest ->
    ds.pool <- rest;
    Atomic.set n.Nnode.next (Nnode.link None);
    n.Nnode.key <- key;
    n
  | [] -> Nnode.make ~key

let hazards g =
  let acc = ref [] in
  for d = 0 to g.ndomains - 1 do
    for s = 0 to slots_per_domain - 1 do
      match Atomic.get (slot g d s) with
      | Some n -> acc := n :: !acc
      | None -> ()
    done
  done;
  !acc

let scan t =
  let g = t.g in
  let ds = g.domains.(t.d) in
  ds.scans <- ds.scans + 1;
  let hz = hazards g in
  let keep, free =
    List.partition (fun n -> List.memq n hz) ds.retired
  in
  ds.retired <- keep;
  ds.retired_count <- List.length keep;
  ds.reclaimed <- ds.reclaimed + List.length free;
  ds.pool <- List.rev_append free ds.pool

let retire t n =
  let ds = t.g.domains.(t.d) in
  ds.retired <- n :: ds.retired;
  ds.retired_count <- ds.retired_count + 1;
  ds.retired_total <- ds.retired_total + 1;
  if ds.retired_count > ds.max_backlog then ds.max_backlog <- ds.retired_count;
  if ds.retired_count >= scan_threshold then scan t

(* Protect-validate: load the link, publish its target in a rotating
   slot, re-load; retry until stable. *)
let read_link t n =
  let ds = t.g.domains.(t.d) in
  let rec loop () =
    let l = Nnode.get n in
    match l.Nnode.target with
    | None -> l
    | Some tgt ->
      let s = ds.rot mod slots_per_domain in
      Atomic.set (slot t.g t.d s) (Some tgt);
      let l' = Nnode.get n in
      if Nnode.same_target l l' then begin
        ds.rot <- ds.rot + 1;
        l'
      end
      else loop ()
  in
  loop ()

let backlog g = Array.fold_left (fun a d -> a + d.retired_count) 0 g.domains

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired_total;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + d.retired_count;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

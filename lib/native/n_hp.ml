(** Native hazard pointers: per-domain atomic slots, protect-validate
    loads, scan-on-threshold reclamation into a type-preserving pool.
    Backlog bounded by [ndomains * (threshold + slots)]. *)

let name = "hp"
let slots_per_domain = 3
let scan_threshold = 64

type dstate = {
  mutable retired : Nnode.node list;
  mutable retired_count : int;
  mutable pool : Nnode.node list;
  mutable max_backlog : int;
  mutable reclaimed : int;
  mutable retired_total : int;
  mutable scans : int;
  mutable rot : int;
  hz_buf : Nnode.node option array;
      (* per-domain scan scratch: the hazard snapshot; private to the
         owning domain, so scans stay allocation-free and race-free *)
}

type t = {
  ndomains : int;
  hp : Nnode.node option Atomic.t array;  (* ndomains * slots, padded *)
  domains : dstate array;
}

type tctx = {
  g : t;
  d : int;
}

let create ~ndomains =
  {
    ndomains;
    hp =
      Array.init
        (ndomains * slots_per_domain * Nsmr.pad)
        (fun _ -> Atomic.make None);
    domains =
      Array.init ndomains (fun _ ->
          { retired = []; retired_count = 0; pool = []; max_backlog = 0;
            reclaimed = 0; retired_total = 0; scans = 0; rot = 0;
            hz_buf = Array.make (ndomains * slots_per_domain) None });
  }

let thread g d = { g; d }

let slot g d s = g.hp.(((d * slots_per_domain) + s) * Nsmr.pad)

let clear_slots t =
  for s = 0 to slots_per_domain - 1 do
    Atomic.set (slot t.g t.d s) None
  done

let begin_op t =
  t.g.domains.(t.d).rot <- 0;
  clear_slots t

let end_op t = clear_slots t

let alloc t key =
  let ds = t.g.domains.(t.d) in
  match ds.pool with
  | n :: rest ->
    ds.pool <- rest;
    Atomic.set n.Nnode.next (Nnode.link None);
    n.Nnode.key <- key;
    n
  | [] -> Nnode.make ~key

(* Snapshot the slots into the domain's scratch array, then walk the
   retired list once: keep protected nodes (counted as we go), move the
   rest straight to the pool. Pushing frees one by one while iterating
   in list order leaves the pool in the same order as the old
   [List.rev_append free] — and no intermediate lists are built. *)
let scan t =
  let g = t.g in
  let ds = g.domains.(t.d) in
  ds.scans <- ds.scans + 1;
  let hz = ds.hz_buf in
  let nhz = ref 0 in
  for d = 0 to g.ndomains - 1 do
    for s = 0 to slots_per_domain - 1 do
      match Atomic.get (slot g d s) with
      | Some _ as o ->
        hz.(!nhz) <- o;
        incr nhz
      | None -> ()
    done
  done;
  let protected_ n =
    let rec probe i =
      i < !nhz
      && ((match hz.(i) with Some m -> m == n | None -> false)
          || probe (i + 1))
    in
    probe 0
  in
  let keep = ref [] in
  let kept = ref 0 in
  List.iter
    (fun n ->
      if protected_ n then begin
        keep := n :: !keep;
        incr kept
      end
      else begin
        ds.reclaimed <- ds.reclaimed + 1;
        ds.pool <- n :: ds.pool
      end)
    ds.retired;
  ds.retired <- List.rev !keep;
  ds.retired_count <- !kept;
  Array.fill hz 0 !nhz None

let retire t n =
  let ds = t.g.domains.(t.d) in
  ds.retired <- n :: ds.retired;
  ds.retired_count <- ds.retired_count + 1;
  ds.retired_total <- ds.retired_total + 1;
  if ds.retired_count > ds.max_backlog then ds.max_backlog <- ds.retired_count;
  if ds.retired_count >= scan_threshold then scan t

(* Protect-validate: load the link, publish its target in a rotating
   slot, re-load; retry until stable. *)
let read_link t n =
  let ds = t.g.domains.(t.d) in
  let rec loop () =
    let l = Nnode.get n in
    match l.Nnode.target with
    | None -> l
    | Some tgt ->
      let s = ds.rot mod slots_per_domain in
      Atomic.set (slot t.g t.d s) (Some tgt);
      let l' = Nnode.get n in
      if Nnode.same_target l l' then begin
        ds.rot <- ds.rot + 1;
        l'
      end
      else loop ()
  in
  loop ()

let backlog g = Array.fold_left (fun a d -> a + d.retired_count) 0 g.domains

let max_backlog g =
  Array.fold_left (fun a d -> max a d.max_backlog) 0 g.domains

let reclaimed g = Array.fold_left (fun a d -> a + d.reclaimed) 0 g.domains

let stats g =
  Array.fold_left
    (fun (s : Nsmr.stats) d ->
      {
        Nsmr.retired = s.retired + d.retired_total;
        reclaimed = s.reclaimed + d.reclaimed;
        backlog = s.backlog + d.retired_count;
        max_backlog = max s.max_backlog d.max_backlog;
        scans = s.scans + d.scans;
      })
    { Nsmr.retired = 0; reclaimed = 0; backlog = 0; max_backlog = 0; scans = 0 }
    g.domains

module Rng = Era_sim.Rng

type result = {
  label : string;
  scheme : string;
  structure : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;
  max_backlog : int;
  reclaimed : int;
  retired : int;
  scans : int;
}

type list_kind =
  | Harris
  | Michael

type mix =
  | Churn
  | Read_heavy

module Flight = Era_obs.Flight

let run_workers ?tracer ?flight ?probe ?ops_for ~label ~scheme ~structure
    ~domains ~ops_per_domain ~make_worker ~stats () =
  let ops_of =
    match ops_for with None -> fun _ -> ops_per_domain | Some f -> f
  in
  (* Cross-domain gauge sampler: the coordinator owns the recorder's
     extra ring and probes every domain's backlog / epoch lag at the
     tracer stride. A stalled domain never runs its own slow path, so
     its lag is only visible from outside — this is where the E9
     timeline's signal comes from. *)
  let sample_flight =
    match flight, probe with
    | Some f, Some probe when Flight.active f ->
      let co = Flight.coordinator f in
      Some
        (fun () ->
          for d = 0 to domains - 1 do
            let b, lag = probe d in
            Flight.backlog co ~domain:d b;
            Flight.epoch_lag co ~domain:d lag
          done)
    | _ -> None
  in
  (* Two-phase start barrier: every domain (including this one) builds
     its worker, then signals [ready] and spins on [go]; only once all
     of them are parked does the coordinator release them, and the start
     timestamp is taken {e after} the release store. Sampling [t0]
     before the release — or letting domain 0 run while spawned domains
     were still being scheduled — undercounted [mops] on slow spawns. *)
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  (* Per-domain work-phase boundaries for the tracer. Each slot is
     written by exactly one domain; [Domain.join] orders the writes
     before the coordinator reads them. Two clock reads per domain per
     run — noise against a multi-second run, and the only cost the
     disabled-tracer path pays beyond one option match. *)
  let t_start = Array.make domains 0.0 in
  let t_end = Array.make domains 0.0 in
  let body d () =
    let worker = make_worker d in
    ignore (Atomic.fetch_and_add ready 1);
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    t_start.(d) <- Unix.gettimeofday ();
    for _ = 1 to ops_of d do
      worker ()
    done;
    t_end.(d) <- Unix.gettimeofday ()
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (body (i + 1)))
  in
  let worker0 = make_worker 0 in
  ignore (Atomic.fetch_and_add ready 1);
  while Atomic.get ready < domains do
    Domain.cpu_relax ()
  done;
  Atomic.set go true;
  let t0 = Unix.gettimeofday () in
  t_start.(0) <- t0;
  let us t = int_of_float ((t -. t0) *. 1e6) in
  (match tracer, sample_flight with
  | None, None ->
    for _ = 1 to ops_of 0 do
      worker0 ()
    done
  | tracer, sample_flight ->
    (* Only the coordinator touches the tracer and the recorder's
       coordinator ring (both single-producer); it samples the scheme
       counters — which are cross-domain-readable by design — at a
       fixed stride so the trace shows the backlog evolving mid-run. *)
    let stride = max 1 (ops_of 0 / 64) in
    for i = 1 to ops_of 0 do
      worker0 ();
      if i mod stride = 0 then begin
        (match tracer with
        | None -> ()
        | Some tr ->
          let s : Nsmr.stats = stats () in
          Era_obs.Tracer.counter tr ~ts:(us (Unix.gettimeofday ())) "nsmr"
            [ ("retired", s.Nsmr.retired); ("reclaimed", s.Nsmr.reclaimed);
              ("backlog", s.Nsmr.backlog) ]);
        match sample_flight with None -> () | Some f -> f ()
      end
    done);
  t_end.(0) <- Unix.gettimeofday ();
  List.iter Domain.join spawned;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = ref 0 in
  for d = 0 to domains - 1 do
    total := !total + ops_of d
  done;
  let total = !total in
  let s : Nsmr.stats = stats () in
  (match tracer with
  | None -> ()
  | Some tr ->
    Era_obs.Tracer.set_process_name tr (Fmt.str "native %s" label);
    for d = 0 to domains - 1 do
      Era_obs.Tracer.set_thread_name tr ~tid:d (Printf.sprintf "D%d" d);
      Era_obs.Tracer.complete tr ~ts:(us t_start.(d))
        ~dur:(us t_end.(d) - us t_start.(d))
        ~tid:d ~cat:"native" "work"
        ~args:[ ("ops", Era_metrics.Json.Int (ops_of d)) ]
    done);
  {
    label;
    scheme;
    structure;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    mops = float_of_int total /. elapsed /. 1e6;
    max_backlog = s.Nsmr.max_backlog;
    reclaimed = s.Nsmr.reclaimed;
    retired = s.Nsmr.retired;
    scans = s.Nsmr.scans;
  }

let kind_name = function Harris -> "harris" | Michael -> "michael"
let structure_name = function Harris -> "harris-list" | Michael -> "michael-list"
let mix_name = function Churn -> "churn" | Read_heavy -> "read-heavy"

let scheme_name = function
  | `Debra -> "debra"
  | `Ebr -> "ebr"
  | `Hp -> "hp"
  | `Ibr -> "ibr"
  | `None -> "none"

(* ------------------------------------------------------------------ *)
(* Workload specs                                                      *)
(* ------------------------------------------------------------------ *)

type workload = {
  wl_label : string;
  wl_keys : Era_workload.Workload.key_dist;
  wl_contains_pct : int;
  wl_prefill : int;
}

let uniform_churn =
  { wl_label = "churn-64"; wl_keys = Era_workload.Workload.Uniform 64;
    wl_contains_pct = 0; wl_prefill = 32 }

let uniform_small =
  { wl_label = "uniform-1k"; wl_keys = Era_workload.Workload.Uniform 1024;
    wl_contains_pct = 90; wl_prefill = 512 }

let zipf_1m =
  { wl_label = "zipf-1m"; wl_keys = Era_workload.Workload.Zipf (1_000_000, 0.99);
    wl_contains_pct = 90; wl_prefill = 1024 }

let zipf_1m_hot =
  { wl_label = "zipf-1m-hot"; wl_keys = Era_workload.Workload.Zipf (1_000_000, 1.5);
    wl_contains_pct = 90; wl_prefill = 1024 }

let workload_of_mix = function
  | Churn -> uniform_churn
  | Read_heavy -> uniform_small

let human_keys n =
  if n >= 1_000_000 && n mod 1_000_000 = 0 then Fmt.str "%dm" (n / 1_000_000)
  else if n >= 1_000 && n mod 1_000 = 0 then Fmt.str "%dk" (n / 1_000)
  else string_of_int n

let custom_workload ?zipf ~keys ~contains_pct () =
  if keys < 2 then invalid_arg "Throughput.custom_workload: keys < 2";
  if contains_pct < 0 || contains_pct > 100 then
    invalid_arg "Throughput.custom_workload: contains_pct outside [0, 100]";
  let wl_keys, tag =
    match zipf with
    | None -> (Era_workload.Workload.Uniform keys, Fmt.str "u%s" (human_keys keys))
    | Some s ->
      (Era_workload.Workload.Zipf (keys, s), Fmt.str "z%g-%s" s (human_keys keys))
  in
  {
    wl_label = Fmt.str "%s-c%d" tag contains_pct;
    wl_keys;
    wl_contains_pct = contains_pct;
    wl_prefill = min 1024 (keys / 2);
  }

let contains_pct_of_mix = function
  | "churn" | "update-heavy" -> Ok 0
  | "read-heavy" -> Ok 90
  | "balanced" -> Ok 50
  | s -> (
    match int_of_string_opt s with
    | Some p when p >= 0 && p <= 100 -> Ok p
    | Some _ | None ->
      Error
        (Fmt.str
           "unknown mix %S (expected churn, read-heavy, balanced, or a \
            contains percentage 0-100)"
           s))

(* The per-worker key samples: long enough that the cyclic reuse is
   invisible against multi-hundred-thousand-op runs, a power of two so
   the wrap is a mask, and drawn {e before} the start barrier so the
   Zipf bisect never executes inside the timed region. *)
let sample_len = 1 lsl 16

(* Shared per-operation body for the list mixes. The key and the
   operation roll are {e independent} draws — deriving both from one
   splitmix64 output (key from the low bits, roll from the quotient)
   correlated the read/write decision with the key, biasing the mix per
   key. Both are drawn {e before} the start barrier into one tagged
   array ([key lsl 2 lor op]), so the timed loop does a single array
   read per op: no Zipf bisect, no rng call, no branch on a fresh
   roll. The cycle length (65536) is long enough that reuse is
   invisible against multi-hundred-thousand-op runs. *)
let list_worker ?(fl = Flight.null_handle) ~workload ~seed ~insert ~delete
    ~contains () =
  let rng = Rng.create seed in
  let keys =
    Era_workload.Workload.sample_keys rng workload.wl_keys ~n:sample_len
  in
  let contains_pct = workload.wl_contains_pct in
  let tagged = Array.make sample_len 0 in
  for i = 0 to sample_len - 1 do
    let roll = Rng.int rng 100 in
    let op = if roll < contains_pct then 0 else (roll land 1) + 1 in
    tagged.(i) <- (keys.(i) lsl 2) lor op
  done;
  let idx = ref 0 in
  (* The recorder choice is made here, once, outside the hot loop: the
     detached path is byte-identical to before (no clock reads, no
     recorder branch), preserving the E19 [recorder_off_overhead]
     contract. The op tag doubles as the histogram kind (0 = contains,
     1 = add, 2 = remove). *)
  if Flight.recording fl then
    fun () ->
      let v = Array.unsafe_get tagged (!idx land (sample_len - 1)) in
      incr idx;
      let k = v lsr 2 in
      let op = v land 3 in
      let t0 = Flight.now_ns () in
      (match op with
      | 0 -> ignore (contains k)
      | 1 -> ignore (insert k)
      | _ -> ignore (delete k));
      Flight.observe_op fl op (Flight.now_ns () - t0)
  else
    fun () ->
      let v = Array.unsafe_get tagged (!idx land (sample_len - 1)) in
      incr idx;
      let k = v lsr 2 in
      match v land 3 with
      | 0 -> ignore (contains k)
      | 1 -> ignore (insert k)
      | _ -> ignore (delete k)

let worker_seed d = (d * 77) + 13
let prefill_keys workload = List.init workload.wl_prefill (fun i -> (i * 2) + 1)

(* Build (worker factory, stats) for a (list, scheme, workload) choice.
   The functor application must happen per concrete scheme module, hence
   the repetition-by-dispatch. *)
let build_list (type a) (module S : Nsmr.S with type t = a)
    ?(flight = Flight.null) kind ~workload ~domains =
  let prefill = prefill_keys workload in
  (* The recorder is attached only after the prefill, so its rings hold
     the measured phase; the per-domain gauge probe stays readable
     cross-domain for the coordinator's sampler. *)
  match kind with
  | Harris ->
    let module L = N_harris.Make (S) in
    let g = S.create ~ndomains:domains in
    let l = L.create () in
    let s0 = S.thread g 0 in
    List.iter (fun k -> ignore (L.insert l s0 k)) prefill;
    S.attach_flight g flight;
    let make_worker d =
      let s = S.thread g d in
      list_worker ~fl:(Flight.handle flight d) ~workload ~seed:(worker_seed d)
        ~insert:(fun k -> L.insert l s k)
        ~delete:(fun k -> L.delete l s k)
        ~contains:(fun k -> L.contains l s k)
        ()
    in
    ( make_worker,
      (fun () -> S.stats g),
      fun d -> (S.domain_backlog g d, S.domain_lag g d) )
  | Michael ->
    let module L = N_michael.Make (S) in
    let g = S.create ~ndomains:domains in
    let l = L.create () in
    let s0 = S.thread g 0 in
    List.iter (fun k -> ignore (L.insert l s0 k)) prefill;
    S.attach_flight g flight;
    let make_worker d =
      let s = S.thread g d in
      list_worker ~fl:(Flight.handle flight d) ~workload ~seed:(worker_seed d)
        ~insert:(fun k -> L.insert l s k)
        ~delete:(fun k -> L.delete l s k)
        ~contains:(fun k -> L.contains l s k)
        ()
    in
    ( make_worker,
      (fun () -> S.stats g),
      fun d -> (S.domain_backlog g d, S.domain_lag g d) )

let scheme_module = function
  | `Debra -> (module N_debra : Nsmr.S)
  | `Ebr -> (module N_ebr)
  | `Hp -> (module N_hp)
  | `Ibr -> (module N_ibr)
  | `None -> (module N_none)

let refuse_unsupported ~who kind scheme =
  match kind, scheme with
  | Harris, `Hp ->
    invalid_arg
      (Fmt.str
         "Throughput.%s: HP is not applicable to Harris's list (that is the \
          theorem)"
         who)
  | Harris, `Debra ->
    invalid_arg
      (Fmt.str
         "Throughput.%s: DEBRA+ neutralization restarts are only wired into \
          the Michael list (Harris's delete is not whole-op restartable \
          after its marking CAS)"
         who)
  | _ -> ()

let list_row ?tracer ?flight ~who ~label kind ~scheme ~workload ~domains
    ~ops_per_domain =
  refuse_unsupported ~who kind scheme;
  let (module S) = scheme_module scheme in
  let make_worker, stats, probe =
    build_list (module S) ?flight kind ~workload ~domains
  in
  run_workers ?tracer ?flight ~probe ~label ~scheme:(scheme_name scheme)
    ~structure:(structure_name kind) ~domains ~ops_per_domain ~make_worker
    ~stats ()

let e8_row ?tracer ?flight kind ~scheme mix ~domains ~ops_per_domain =
  list_row ?tracer ?flight ~who:"e8_row"
    ~label:
      (Fmt.str "%s+%s/%s" (kind_name kind) (scheme_name scheme)
         (mix_name mix))
    kind ~scheme ~workload:(workload_of_mix mix) ~domains ~ops_per_domain

let e16_row ?tracer ?flight kind ~scheme ~workload ~domains ~ops_per_domain =
  list_row ?tracer ?flight ~who:"e16_row"
    ~label:
      (Fmt.str "%s+%s/%s" (kind_name kind) (scheme_name scheme)
         workload.wl_label)
    kind ~scheme ~workload ~domains ~ops_per_domain

(* E9: domain 0 opens an operation (announcing its epoch / publishing its
   reservation) and parks until the churn domains are done. The stalled
   domain is a genuine one-shot: its per-domain op count is 1, so the
   reported totals are computed by [run_workers], not patched. *)
let e9_row ?(workload = uniform_churn) ?(flight = Flight.null)
    ~(scheme : [ `Debra | `Ebr | `Hp | `Ibr ]) ~churn_ops () =
  let sname = scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]) in
  let domains = 3 in
  let churn = { workload with wl_contains_pct = 0 } in
  let done_flag = Atomic.make 0 in
  let (module S) =
    scheme_module (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ])
  in
  let module L = N_michael.Make (S) in
  let g = S.create ~ndomains:domains in
  let l = L.create () in
  let s0 = S.thread g 0 in
  List.iter (fun k -> ignore (L.insert l s0 k)) (prefill_keys churn);
  S.attach_flight g flight;
  let make_worker d =
    let s = S.thread g d in
    let fl = Flight.handle flight d in
    if d = 0 then
      fun () ->
        (* Called exactly once: open an operation and stall inside it.
           A neutralizing scheme may flag this domain before its first
           protected load completes — the stall must survive that, so
           the early Neutralized is swallowed (there is no operation
           left to restart). *)
        S.begin_op s;
        Flight.stall_begin fl;
        (try ignore (S.read_link s (L.head l))
         with Nsmr.Neutralized -> ());
        while Atomic.get done_flag < 2 do
          Domain.cpu_relax ()
        done;
        Flight.stall_end fl;
        S.end_op s
    else
      let churn_op =
        list_worker ~fl ~workload:churn ~seed:((d * 91) + 7)
          ~insert:(fun k -> L.insert l s k)
          ~delete:(fun k -> L.delete l s k)
          ~contains:(fun k -> L.contains l s k)
          ()
      in
      let count = ref 0 in
      if Flight.recording fl then begin
        (* The stall row's coordinator worker IS the stalled domain, so
           cross-domain gauge sampling can't ride the coordinator loop
           here: churner 1 probes every domain (its own ring, so SPSC
           holds — the probed domain is payload, not producer). *)
        let stride = max 1 (churn_ops / 256) in
        fun () ->
          churn_op ();
          incr count;
          if d = 1 && !count mod stride = 0 then
            for dd = 0 to domains - 1 do
              Flight.backlog fl ~domain:dd (S.domain_backlog g dd);
              Flight.epoch_lag fl ~domain:dd (S.domain_lag g dd)
            done;
          if !count = churn_ops then ignore (Atomic.fetch_and_add done_flag 1)
      end
      else
        fun () ->
          churn_op ();
          incr count;
          if !count = churn_ops then ignore (Atomic.fetch_and_add done_flag 1)
  in
  let label =
    if workload.wl_label = uniform_churn.wl_label then
      Fmt.str "stall/%s" sname
    else Fmt.str "stall/%s/%s" sname workload.wl_label
  in
  run_workers ~label
    ~ops_for:(fun d -> if d = 0 then 1 else churn_ops)
    ~scheme:sname ~structure:"michael-list" ~domains
    ~ops_per_domain:churn_ops ~make_worker
    ~stats:(fun () -> S.stats g)
    ()

(* Stack and queue throughput rows: 50/50 producer/consumer mixes. *)
let stack_row ?tracer ~(scheme : [ `Ebr | `Hp | `Ibr | `None ]) ~domains
    ~ops_per_domain () =
  (* The narrow type is the refusal: no neutralization restarts are
     wired into the stack (pop reads the popped key after its CAS). *)
  let sname = scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]) in
  let (module S) =
    scheme_module (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ])
  in
  let module T = N_treiber.Make (S) in
  let g = S.create ~ndomains:domains in
  let st = T.create () in
  let make_worker d =
    let s = S.thread g d in
    let rng = Rng.create ((d * 31) + 5) in
    fun () ->
      if Rng.bool rng then T.push st s (Rng.int rng 1000)
      else ignore (T.pop st s)
  in
  run_workers ?tracer
    ~label:(Fmt.str "treiber+%s" sname)
    ~scheme:sname ~structure:"treiber-stack" ~domains
    ~ops_per_domain ~make_worker
    ~stats:(fun () -> S.stats g)
    ()

let queue_row ?tracer ~(scheme : [ `Ebr | `Hp | `Ibr | `None ]) ~domains
    ~ops_per_domain () =
  let sname = scheme_name (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ]) in
  let (module S) =
    scheme_module (scheme :> [ `Debra | `Ebr | `Hp | `Ibr | `None ])
  in
  let module Q = N_msqueue.Make (S) in
  let g = S.create ~ndomains:domains in
  let q = Q.create () in
  let make_worker d =
    let s = S.thread g d in
    let rng = Rng.create ((d * 53) + 9) in
    fun () ->
      if Rng.bool rng then Q.enqueue q s (Rng.int rng 1000)
      else ignore (Q.dequeue q s)
  in
  run_workers ?tracer
    ~label:(Fmt.str "msqueue+%s" sname)
    ~scheme:sname ~structure:"ms-queue" ~domains
    ~ops_per_domain ~make_worker
    ~stats:(fun () -> S.stats g)
    ()

let to_row ~experiment ~category r =
  (* The domain count is part of the row identity: the E8 grid runs the
     same pairing at several domain counts, and bench_compare must never
     pair a 1-domain row with a 2-domain one. *)
  let label = Printf.sprintf "%s@%dd" r.label r.domains in
  Era_metrics.Metrics.row ~experiment ~label ~category ~scheme:r.scheme
    ~structure:r.structure ~domains:r.domains ~total_ops:r.total_ops
    ~elapsed_s:r.elapsed_s ~mops:r.mops ~max_backlog:r.max_backlog
    ~reclaimed:r.reclaimed ~retired:r.retired ~scans:r.scans ()

let pp_result fmt r =
  Fmt.pf fmt "%-24s d=%d ops=%-8d %6.3f s  %8.3f Mops/s  backlog(max)=%-6d \
              reclaimed=%d"
    r.label r.domains r.total_ops r.elapsed_s r.mops r.max_backlog r.reclaimed

module Rng = Era_sim.Rng

type result = {
  label : string;
  scheme : string;
  structure : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;
  max_backlog : int;
  reclaimed : int;
  retired : int;
  scans : int;
}

type list_kind =
  | Harris
  | Michael

type mix =
  | Churn
  | Read_heavy

let run_workers ?tracer ~label ~scheme ~structure ~domains ~ops_per_domain
    ~make_worker ~stats () =
  (* Two-phase start barrier: every domain (including this one) builds
     its worker, then signals [ready] and spins on [go]; only once all
     of them are parked does the coordinator release them, and the start
     timestamp is taken {e after} the release store. Sampling [t0]
     before the release — or letting domain 0 run while spawned domains
     were still being scheduled — undercounted [mops] on slow spawns. *)
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  (* Per-domain work-phase boundaries for the tracer. Each slot is
     written by exactly one domain; [Domain.join] orders the writes
     before the coordinator reads them. Two clock reads per domain per
     run — noise against a multi-second run, and the only cost the
     disabled-tracer path pays beyond one option match. *)
  let t_start = Array.make domains 0.0 in
  let t_end = Array.make domains 0.0 in
  let body d () =
    let worker = make_worker d in
    ignore (Atomic.fetch_and_add ready 1);
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    t_start.(d) <- Unix.gettimeofday ();
    for _ = 1 to ops_per_domain do
      worker ()
    done;
    t_end.(d) <- Unix.gettimeofday ()
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (body (i + 1)))
  in
  let worker0 = make_worker 0 in
  ignore (Atomic.fetch_and_add ready 1);
  while Atomic.get ready < domains do
    Domain.cpu_relax ()
  done;
  Atomic.set go true;
  let t0 = Unix.gettimeofday () in
  t_start.(0) <- t0;
  let us t = int_of_float ((t -. t0) *. 1e6) in
  (match tracer with
  | None ->
    for _ = 1 to ops_per_domain do
      worker0 ()
    done
  | Some tr ->
    (* Only the coordinator touches the tracer (it is single-domain);
       it samples the scheme counters — which are cross-domain-readable
       by design — at a fixed stride so the trace shows the backlog
       evolving mid-run. *)
    let stride = max 1 (ops_per_domain / 64) in
    for i = 1 to ops_per_domain do
      worker0 ();
      if i mod stride = 0 then begin
        let s : Nsmr.stats = stats () in
        Era_obs.Tracer.counter tr ~ts:(us (Unix.gettimeofday ())) "nsmr"
          [ ("retired", s.Nsmr.retired); ("reclaimed", s.Nsmr.reclaimed);
            ("backlog", s.Nsmr.backlog) ]
      end
    done);
  t_end.(0) <- Unix.gettimeofday ();
  List.iter Domain.join spawned;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = domains * ops_per_domain in
  let s : Nsmr.stats = stats () in
  (match tracer with
  | None -> ()
  | Some tr ->
    Era_obs.Tracer.set_process_name tr (Fmt.str "native %s" label);
    for d = 0 to domains - 1 do
      Era_obs.Tracer.set_thread_name tr ~tid:d (Printf.sprintf "D%d" d);
      Era_obs.Tracer.complete tr ~ts:(us t_start.(d))
        ~dur:(us t_end.(d) - us t_start.(d))
        ~tid:d ~cat:"native" "work"
        ~args:[ ("ops", Era_metrics.Json.Int ops_per_domain) ]
    done);
  {
    label;
    scheme;
    structure;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    mops = float_of_int total /. elapsed /. 1e6;
    max_backlog = s.Nsmr.max_backlog;
    reclaimed = s.Nsmr.reclaimed;
    retired = s.Nsmr.retired;
    scans = s.Nsmr.scans;
  }

let kind_name = function Harris -> "harris" | Michael -> "michael"
let structure_name = function Harris -> "harris-list" | Michael -> "michael-list"
let mix_name = function Churn -> "churn" | Read_heavy -> "read-heavy"

let scheme_name = function
  | `Ebr -> "ebr"
  | `Hp -> "hp"
  | `Ibr -> "ibr"
  | `None -> "none"

(* Shared per-operation body for the list mixes. The key and the
   operation roll are {e independent} draws — deriving both from one
   splitmix64 output (key from the low bits, roll from the quotient)
   correlated the read/write decision with the key, biasing the mix per
   key. *)
let list_worker ~mix ~seed ~insert ~delete ~contains =
  let rng = Rng.create seed in
  let key_range, contains_pct =
    match mix with Churn -> (64, 0) | Read_heavy -> (1024, 90)
  in
  fun () ->
    let k = 1 + Rng.int rng key_range in
    let roll = Rng.int rng 100 in
    if roll < contains_pct then ignore (contains k)
    else if roll land 1 = 0 then ignore (insert k)
    else ignore (delete k)

let worker_seed d = (d * 77) + 13

(* Build (worker factory, stats) for a (list, scheme, mix) choice. The
   functor application must happen per concrete scheme module, hence the
   repetition-by-dispatch. *)
let build_list (type a) (module S : Nsmr.S with type t = a) kind mix ~domains
    ~prefill =
  match kind with
  | Harris ->
    let module L = N_harris.Make (S) in
    let g = S.create ~ndomains:domains in
    let l = L.create () in
    let s0 = S.thread g 0 in
    List.iter (fun k -> ignore (L.insert l s0 k)) prefill;
    let make_worker d =
      let s = S.thread g d in
      list_worker ~mix ~seed:(worker_seed d)
        ~insert:(fun k -> L.insert l s k)
        ~delete:(fun k -> L.delete l s k)
        ~contains:(fun k -> L.contains l s k)
    in
    (make_worker, fun () -> S.stats g)
  | Michael ->
    let module L = N_michael.Make (S) in
    let g = S.create ~ndomains:domains in
    let l = L.create () in
    let s0 = S.thread g 0 in
    List.iter (fun k -> ignore (L.insert l s0 k)) prefill;
    let make_worker d =
      let s = S.thread g d in
      list_worker ~mix ~seed:(worker_seed d)
        ~insert:(fun k -> L.insert l s k)
        ~delete:(fun k -> L.delete l s k)
        ~contains:(fun k -> L.contains l s k)
    in
    (make_worker, fun () -> S.stats g)

let scheme_module = function
  | `Ebr -> (module N_ebr : Nsmr.S)
  | `Hp -> (module N_hp)
  | `Ibr -> (module N_ibr)
  | `None -> (module N_none)

let e8_row ?tracer kind ~scheme mix ~domains ~ops_per_domain =
  (match kind, scheme with
  | Harris, `Hp ->
    invalid_arg
      "Throughput.e8_row: HP is not applicable to Harris's list (that is \
       the theorem)"
  | _ -> ());
  let prefill =
    match mix with
    | Churn -> List.init 32 (fun i -> (i * 2) + 1)
    | Read_heavy -> List.init 512 (fun i -> (i * 2) + 1)
  in
  let (module S) = scheme_module scheme in
  let make_worker, stats = build_list (module S) kind mix ~domains ~prefill in
  run_workers ?tracer
    ~label:
      (Fmt.str "%s+%s/%s" (kind_name kind) (scheme_name scheme)
         (mix_name mix))
    ~scheme:(scheme_name scheme) ~structure:(structure_name kind) ~domains
    ~ops_per_domain ~make_worker ~stats ()

(* E9: domain 0 opens an operation (announcing its epoch / publishing its
   reservation) and parks until the churn domains are done. *)
let e9_row ~scheme ~churn_ops =
  let domains = 3 in
  let done_flag = Atomic.make 0 in
  let (module S) = scheme_module (scheme :> [ `Ebr | `Hp | `Ibr | `None ]) in
  let module L = N_michael.Make (S) in
  let g = S.create ~ndomains:domains in
  let l = L.create () in
  let s0 = S.thread g 0 in
  List.iter (fun k -> ignore (L.insert l s0 ((k * 2) + 1))) (List.init 32 Fun.id);
  let make_worker d =
    let s = S.thread g d in
    if d = 0 then (
      let started = ref false in
      fun () ->
        if not !started then begin
          started := true;
          (* Open an operation and stall inside it. *)
          S.begin_op s;
          ignore (S.read_link s (L.head l));
          while Atomic.get done_flag < 2 do
            Domain.cpu_relax ()
          done;
          S.end_op s
        end)
    else
      let rng = Rng.create ((d * 91) + 7) in
      let count = ref 0 in
      fun () ->
        let k = 1 + Rng.int rng 64 in
        if Rng.bool rng then ignore (L.insert l s k)
        else ignore (L.delete l s k);
        incr count;
        if !count = churn_ops then ignore (Atomic.fetch_and_add done_flag 1)
  in
  let res =
    run_workers
      ~label:(Fmt.str "stall/%s" (scheme_name scheme))
      ~scheme:(scheme_name scheme) ~structure:"michael-list" ~domains
      ~ops_per_domain:churn_ops ~make_worker
      ~stats:(fun () -> S.stats g)
      ()
  in
  { res with total_ops = 2 * churn_ops }

(* Stack and queue throughput rows: 50/50 producer/consumer mixes. *)
let stack_row ?tracer ~scheme ~domains ~ops_per_domain () =
  let (module S) = scheme_module scheme in
  let module T = N_treiber.Make (S) in
  let g = S.create ~ndomains:domains in
  let st = T.create () in
  let make_worker d =
    let s = S.thread g d in
    let rng = Rng.create ((d * 31) + 5) in
    fun () ->
      if Rng.bool rng then T.push st s (Rng.int rng 1000)
      else ignore (T.pop st s)
  in
  run_workers ?tracer
    ~label:(Fmt.str "treiber+%s" (scheme_name scheme))
    ~scheme:(scheme_name scheme) ~structure:"treiber-stack" ~domains
    ~ops_per_domain ~make_worker
    ~stats:(fun () -> S.stats g)
    ()

let queue_row ?tracer ~scheme ~domains ~ops_per_domain () =
  let (module S) = scheme_module scheme in
  let module Q = N_msqueue.Make (S) in
  let g = S.create ~ndomains:domains in
  let q = Q.create () in
  let make_worker d =
    let s = S.thread g d in
    let rng = Rng.create ((d * 53) + 9) in
    fun () ->
      if Rng.bool rng then Q.enqueue q s (Rng.int rng 1000)
      else ignore (Q.dequeue q s)
  in
  run_workers ?tracer
    ~label:(Fmt.str "msqueue+%s" (scheme_name scheme))
    ~scheme:(scheme_name scheme) ~structure:"ms-queue" ~domains
    ~ops_per_domain ~make_worker
    ~stats:(fun () -> S.stats g)
    ()

let to_row ~experiment ~category r =
  (* The domain count is part of the row identity: the E8 grid runs the
     same pairing at several domain counts, and bench_compare must never
     pair a 1-domain row with a 2-domain one. *)
  let label = Printf.sprintf "%s@%dd" r.label r.domains in
  Era_metrics.Metrics.row ~experiment ~label ~category ~scheme:r.scheme
    ~structure:r.structure ~domains:r.domains ~total_ops:r.total_ops
    ~elapsed_s:r.elapsed_s ~mops:r.mops ~max_backlog:r.max_backlog
    ~reclaimed:r.reclaimed ~retired:r.retired ~scans:r.scans ()

let pp_result fmt r =
  Fmt.pf fmt "%-24s d=%d ops=%-8d %6.3f s  %8.3f Mops/s  backlog(max)=%-6d \
              reclaimed=%d"
    r.label r.domains r.total_ops r.elapsed_s r.mops r.max_backlog r.reclaimed

(** Native multicore measurement harness for experiments E8 and E9.

    E8 (Section 6's practical remark): Harris's original list vs
    Michael's HP-compatible restructuring, each paired with a scheme that
    is {e applicable} to it — the cost of demanding an HP-friendly
    implementation shows up as lost throughput under churn.

    E9 (the robustness trade-off, Sections 1/5.1): with one domain
    stalled mid-operation, EBR's retired backlog grows with the churn
    volume while HP's and IBR's stay bounded.

    On a single-core host the domains time-share; relative per-operation
    costs and backlog shapes remain meaningful, absolute scaling does
    not. *)

type result = {
  label : string;
  scheme : string;  (** e.g. "ebr" *)
  structure : string;  (** e.g. "michael-list" *)
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;  (** million completed operations per second *)
  max_backlog : int;
  reclaimed : int;
  retired : int;  (** total nodes retired (= reclaimed + final backlog) *)
  scans : int;  (** reclamation scan passes (see {!Nsmr.stats}) *)
}

val run_workers :
  ?tracer:Era_obs.Tracer.t ->
  label:string -> scheme:string -> structure:string -> domains:int ->
  ops_per_domain:int ->
  make_worker:(int -> unit -> unit) ->
  stats:(unit -> Nsmr.stats) -> unit -> result
(** Spawn [domains] domains; each calls its worker [ops_per_domain]
    times; [stats ()] snapshots the scheme counters at the end. The
    domains are released through a two-phase barrier (build worker →
    signal ready → spin) and the clock starts only after the release
    store, so no domain's work predates [t0] and none is still spawning
    when the timed region begins.

    [tracer] adds a wall-clock timeline (timestamps in microseconds
    since the barrier release): one ["work"] span per domain plus a
    periodically sampled ["nsmr"] counter series (retired / reclaimed /
    backlog). The tracer is single-domain, so only the coordinator
    writes to it; spawned domains just record their span boundaries.
    With [tracer] absent the run is byte-identical to before: one
    option match outside the hot loop and two clock reads per domain. *)

type list_kind =
  | Harris
  | Michael

type mix =
  | Churn  (** 50/50 insert/delete over a small key range *)
  | Read_heavy  (** 90% contains over a prefilled larger range *)

val e8_row :
  ?tracer:Era_obs.Tracer.t ->
  list_kind -> scheme:[ `Ebr | `Hp | `Ibr | `None ] -> mix ->
  domains:int -> ops_per_domain:int -> result
(** One throughput row. Pairings of HP with [Harris] are refused
    ([Invalid_argument]) — that is the unsafe combination the theorem
    rules out. *)

val e9_row :
  scheme:[ `Ebr | `Hp | `Ibr ] -> churn_ops:int -> result
(** Backlog with a stalled domain: domain 0 opens an operation and parks;
    two churn domains push [churn_ops] each through a Michael list. *)

val stack_row :
  ?tracer:Era_obs.Tracer.t ->
  scheme:[ `Ebr | `Hp | `Ibr | `None ] -> domains:int ->
  ops_per_domain:int -> unit -> result
(** Treiber stack, 50/50 push/pop. *)

val queue_row :
  ?tracer:Era_obs.Tracer.t ->
  scheme:[ `Ebr | `Hp | `Ibr | `None ] -> domains:int ->
  ops_per_domain:int -> unit -> result
(** Michael–Scott queue, 50/50 enqueue/dequeue. *)

val scheme_name : [ `Ebr | `Hp | `Ibr | `None ] -> string

val to_row :
  experiment:string -> category:string -> result -> Era_metrics.Metrics.row
(** The machine-readable form of a result, for [BENCH_*.json] files.
    [category] is ["native-throughput"] for timed rows and
    ["native-backlog"] for the E9 stall rows. The row label is
    [<result label>@<domains>d] so the same pairing measured at several
    domain counts yields distinct row keys. *)

val pp_result : Format.formatter -> result -> unit

(** Native multicore measurement harness for experiments E8 and E9.

    E8 (Section 6's practical remark): Harris's original list vs
    Michael's HP-compatible restructuring, each paired with a scheme that
    is {e applicable} to it — the cost of demanding an HP-friendly
    implementation shows up as lost throughput under churn.

    E9 (the robustness trade-off, Sections 1/5.1): with one domain
    stalled mid-operation, EBR's retired backlog grows with the churn
    volume while HP's and IBR's stay bounded.

    On a single-core host the domains time-share; relative per-operation
    costs and backlog shapes remain meaningful, absolute scaling does
    not. *)

type result = {
  label : string;
  scheme : string;  (** e.g. "ebr" *)
  structure : string;  (** e.g. "michael-list" *)
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;  (** million completed operations per second *)
  max_backlog : int;
  reclaimed : int;
  retired : int;  (** total nodes retired (= reclaimed + final backlog) *)
  scans : int;  (** reclamation scan passes (see {!Nsmr.stats}) *)
}

val run_workers :
  ?tracer:Era_obs.Tracer.t ->
  ?flight:Era_obs.Flight.t ->
  ?probe:(int -> int * int) ->
  ?ops_for:(int -> int) ->
  label:string -> scheme:string -> structure:string -> domains:int ->
  ops_per_domain:int ->
  make_worker:(int -> unit -> unit) ->
  stats:(unit -> Nsmr.stats) -> unit -> result
(** Spawn [domains] domains; each calls its worker [ops_per_domain]
    times; [stats ()] snapshots the scheme counters at the end. The
    domains are released through a two-phase barrier (build worker →
    signal ready → spin) and the clock starts only after the release
    store, so no domain's work predates [t0] and none is still spawning
    when the timed region begins.

    [ops_for d] overrides the per-domain op count (default: the constant
    [ops_per_domain]); [total_ops] is the computed sum, so asymmetric
    rows (e.g. a one-shot stalled domain) report honest totals.

    [tracer] adds a wall-clock timeline (timestamps in microseconds
    since the barrier release): one ["work"] span per domain plus a
    periodically sampled ["nsmr"] counter series (retired / reclaimed /
    backlog). The tracer is single-domain, so only the coordinator
    writes to it; spawned domains just record their span boundaries.
    With [tracer] absent the run is byte-identical to before: one
    option match outside the hot loop and two clock reads per domain.

    [flight] + [probe] add the flight recorder's cross-domain gauge
    samples: at the tracer stride the coordinator calls [probe d] for
    every domain — returning [(backlog, epoch_lag)] — and records both
    into the recorder's coordinator ring. With [flight] absent (or
    {!Era_obs.Flight.null}) the sampling closure is never built and the
    detached run stays on the zero-instrumentation path. *)

type list_kind =
  | Harris
  | Michael

type mix =
  | Churn  (** 50/50 insert/delete over a small key range *)
  | Read_heavy  (** 90% contains over a prefilled larger range *)

type workload = {
  wl_label : string;  (** short tag used in row labels, e.g. ["zipf-1m"] *)
  wl_keys : Era_workload.Workload.key_dist;
  wl_contains_pct : int;  (** contains share; the rest splits 50/50 ins/del *)
  wl_prefill : int;  (** odd keys 1, 3, … inserted before the barrier *)
}
(** A list workload: key distribution, operation mix, prefill size. Keys
    are sampled into per-worker arrays before the start barrier, so the
    Zipf inverse-CDF bisect never runs inside the timed region. *)

val uniform_churn : workload
(** 64 uniform keys, 0% contains, 32 prefilled — E8's [Churn]. *)

val uniform_small : workload
(** 1024 uniform keys, 90% contains, 512 prefilled — E8's [Read_heavy]. *)

val zipf_1m : workload
(** 1M keys, Zipf s=0.99, 90% contains. Median key rank is in the
    thousands, so list walks dominate: the scheme-cost signal is in
    backlog, not mops. *)

val zipf_1m_hot : workload
(** 1M keys, Zipf s=1.5, 90% contains. ~98% of draws land in the top
    couple thousand ranks (= smallest keys = near the list head), so
    walks are short and the per-operation sampling + SMR overhead
    dominates — the cell where the fast path shows. The remaining tail
    draws keep the full million-key space live. *)

val custom_workload :
  ?zipf:float -> keys:int -> contains_pct:int -> unit -> workload
(** Workload from CLI-style parameters: [keys] uniform, or Zipf with
    skew [zipf]. Prefill is [min 1024 (keys / 2)]. Raises
    [Invalid_argument] on [keys < 2] or a percentage outside [0, 100]. *)

val contains_pct_of_mix : string -> (int, string) Stdlib.result
(** ["churn"]/["update-heavy"] → 0, ["read-heavy"] → 90, ["balanced"] →
    50, or a literal percentage ["0"]–["100"]. *)

val e8_row :
  ?tracer:Era_obs.Tracer.t ->
  ?flight:Era_obs.Flight.t ->
  list_kind -> scheme:[ `Debra | `Ebr | `Hp | `Ibr | `None ] -> mix ->
  domains:int -> ops_per_domain:int -> result
(** One throughput row. Pairings of HP with [Harris] are refused
    ([Invalid_argument]) — that is the unsafe combination the theorem
    rules out. DEBRA+ × [Harris] is likewise refused: Harris's delete is
    not whole-operation restartable after its marking CAS, so the
    neutralization wrapper is only wired into the Michael list. *)

val e16_row :
  ?tracer:Era_obs.Tracer.t ->
  ?flight:Era_obs.Flight.t ->
  list_kind -> scheme:[ `Debra | `Ebr | `Hp | `Ibr | `None ] ->
  workload:workload -> domains:int -> ops_per_domain:int -> result
(** E8 generalized to arbitrary workloads (the E16/E18 grids). Row label
    is [<kind>+<scheme>/<wl_label>]. HP × [Harris] and DEBRA+ ×
    [Harris] are refused as in {!e8_row}. [flight] attaches the flight
    recorder: per-domain SMR lifecycle rings, op-latency histograms in
    the workers (one clock pair per op, chosen outside the hot loop),
    and coordinator-sampled backlog / epoch-lag gauges. *)

val e9_row :
  ?workload:workload ->
  ?flight:Era_obs.Flight.t ->
  scheme:[ `Debra | `Ebr | `Hp | `Ibr ] ->
  churn_ops:int -> unit -> result
(** Backlog with a stalled domain: domain 0 opens an operation and parks
    (a genuine one-shot — its per-domain op count is 1); two churn
    domains push [churn_ops] each through a Michael list. [workload]
    (default {!uniform_churn}) sets the churners' key distribution; its
    contains share is forced to 0 so every op is an update. Non-default
    workloads get label [stall/<scheme>/<wl_label>]. With [`Debra] the
    stalled domain is neutralized after {!N_debra.patience} blocked
    advance attempts and the backlog stays bounded — the native face of
    the sim's Figure 1 survival. *)

val stack_row :
  ?tracer:Era_obs.Tracer.t ->
  scheme:[ `Ebr | `Hp | `Ibr | `None ] -> domains:int ->
  ops_per_domain:int -> unit -> result
(** Treiber stack, 50/50 push/pop. The scheme type excludes [`Debra]:
    pop reads the popped node's key after its head CAS, so the stack is
    not whole-operation restartable — the refusal is the type. *)

val queue_row :
  ?tracer:Era_obs.Tracer.t ->
  scheme:[ `Ebr | `Hp | `Ibr | `None ] -> domains:int ->
  ops_per_domain:int -> unit -> result
(** Michael–Scott queue, 50/50 enqueue/dequeue. [`Debra] excluded as in
    {!stack_row}. *)

val scheme_name : [ `Debra | `Ebr | `Hp | `Ibr | `None ] -> string

val to_row :
  experiment:string -> category:string -> result -> Era_metrics.Metrics.row
(** The machine-readable form of a result, for [BENCH_*.json] files.
    [category] is ["native-throughput"] for timed rows and
    ["native-backlog"] for the E9 stall rows. The row label is
    [<result label>@<domains>d] so the same pairing measured at several
    domain counts yields distinct row keys. *)

val pp_result : Format.formatter -> result -> unit

(* Fixed-capacity limbo bags (the DEBRA shape): retired nodes go into
   node arrays chained oldest→newest, each bag stamped with a tag (the
   retire epoch for EBR/IBR, unused for HP). Reclamation either drops
   whole bags from the oldest end ([free_le]) or compacts every bag in
   place ([sweep]). Emptied bags are recycled through a per-limbo free
   list and pooled nodes through a growable array stack, so steady-state
   retire/reclaim traffic allocates nothing. *)

let bag_capacity = 64

module Pool = struct
  type t = {
    mutable arr : Nnode.node array;
    mutable len : int;
  }

  let create () = { arr = Array.make 64 Nnode.nil; len = 0 }
  let size p = p.len
  let is_empty p = p.len = 0

  let put p n =
    if p.len = Array.length p.arr then begin
      let bigger = Array.make (2 * p.len) Nnode.nil in
      Array.blit p.arr 0 bigger 0 p.len;
      p.arr <- bigger
    end;
    p.arr.(p.len) <- n;
    p.len <- p.len + 1

  (* [nil] when empty — the caller's cue to allocate fresh. The vacated
     slot is cleared so the pool never pins a node it handed out. *)
  let take p =
    if p.len = 0 then Nnode.nil
    else begin
      let len = p.len - 1 in
      p.len <- len;
      let n = p.arr.(len) in
      p.arr.(len) <- Nnode.nil;
      n
    end

  let mem p n =
    let rec go i = i < p.len && (p.arr.(i) == n || go (i + 1)) in
    go 0
end

type bag = {
  mutable tag : int;
  mutable count : int;
  nodes : Nnode.node array;
  mutable next : bag;
}

(* Chain terminator: a self-linked empty bag (cf. [Nnode.nil]); legal as
   a [let rec] because only constructors appear on the right-hand
   side. *)
let rec nil_bag = { tag = 0; count = 0; nodes = [||]; next = nil_bag }

type t = {
  mutable oldest : bag;
  mutable newest : bag;
  mutable free : bag;  (* recycled bags, chained via [next] *)
  mutable total : int;
}

let fresh_bag ~tag =
  { tag; count = 0; nodes = Array.make bag_capacity Nnode.nil; next = nil_bag }

let create () =
  let b = fresh_bag ~tag:min_int in
  { oldest = b; newest = b; free = nil_bag; total = 0 }

let size t = t.total

let recycle t b =
  b.count <- 0;
  b.tag <- min_int;
  b.next <- t.free;
  t.free <- b

let take_bag t ~tag =
  if t.free == nil_bag then fresh_bag ~tag
  else begin
    let b = t.free in
    t.free <- b.next;
    b.next <- nil_bag;
    b.tag <- tag;
    b
  end

(* Append [n] under [tag]. The newest bag is sealed (a fresh one opened)
   when full or when the tag changes, so a bag's nodes all share one tag
   and tags are non-decreasing along the chain. *)
let push t ~tag n =
  let nb = t.newest in
  if nb.count = 0 then nb.tag <- tag
  else if nb.count = bag_capacity || nb.tag <> tag then begin
    let b = take_bag t ~tag in
    nb.next <- b;
    t.newest <- b
  end;
  let b = t.newest in
  b.nodes.(b.count) <- n;
  b.count <- b.count + 1;
  t.total <- t.total + 1

(* Drop whole bags from the oldest end while their tag is [<= horizon];
   stops at the first ineligible bag (tags are non-decreasing, so
   everything behind it is ineligible too). Returns the number freed. *)
let free_le t ~horizon ~free =
  let freed = ref 0 in
  let rec drop b =
    if b.tag <= horizon && b.count > 0 then begin
      for i = 0 to b.count - 1 do
        free b.nodes.(i);
        b.nodes.(i) <- Nnode.nil
      done;
      freed := !freed + b.count;
      let nxt = b.next in
      recycle t b;
      if nxt == nil_bag then begin
        (* Chain emptied: reopen with one blank bag. *)
        let nb = take_bag t ~tag:min_int in
        nb.tag <- min_int;
        t.oldest <- nb;
        t.newest <- nb
      end
      else begin
        t.oldest <- nxt;
        drop nxt
      end
    end
  in
  drop t.oldest;
  t.total <- t.total - !freed;
  !freed

(* Compact every bag in place: nodes failing [keep] are freed, the rest
   slide down within their bag. Emptied bags are unlinked and recycled
   (the last bag always stays so the chain is never empty). Returns the
   number freed. *)
let sweep t ~keep ~free =
  let freed = ref 0 in
  let compact b =
    let w = ref 0 in
    for i = 0 to b.count - 1 do
      let n = b.nodes.(i) in
      if keep b.tag n then begin
        b.nodes.(!w) <- n;
        incr w
      end
      else begin
        free n;
        incr freed
      end
    done;
    for i = !w to b.count - 1 do
      b.nodes.(i) <- Nnode.nil
    done;
    b.count <- !w
  in
  (* Walk with an explicit predecessor so empty bags can be unlinked. *)
  let rec walk prev b =
    let nxt = b.next in
    compact b;
    if b.count = 0 && nxt != nil_bag then begin
      (* unlink b *)
      (if prev == nil_bag then t.oldest <- nxt else prev.next <- nxt);
      recycle t b;
      walk prev nxt
    end
    else if nxt == nil_bag then t.newest <- b
    else walk b nxt
  in
  walk nil_bag t.oldest;
  t.total <- t.total - !freed;
  !freed

let iter t ~f =
  let rec go b =
    if b != nil_bag then begin
      for i = 0 to b.count - 1 do
        f b.tag b.nodes.(i)
      done;
      go b.next
    end
  in
  go t.oldest

(** Native epoch-based reclamation: a global epoch [Atomic], per-domain
    packed announcements, per-domain limbo bags keyed by retire epoch;
    the bag of epoch [e] recycles (whole-bag, allocation-free) once the
    global epoch reaches [e + 2]. The hot path is DEBRA-style amortized:
    [begin_op] re-announces the cached epoch and only every
    [amortize]-th operation reads the global epoch, tries to advance it
    and batch-frees eligible bags. Cheap reads (no per-access protocol)
    but not robust: a stalled domain pins the epoch and the backlog
    grows with the churn volume (experiment E9). *)

include Nsmr.S

val default_amortize : int
(** Slow-path period of {!create} (32). *)

val create_with : ?amortize:int -> ndomains:int -> unit -> t
(** [create_with ~amortize:k] takes the epoch-advance/reclaim slow path
    every [k]-th operation per domain ([k] a power of two, else
    [Invalid_argument]). [k = 1] recovers the per-op epoch checks of the
    unamortized scheme; the steady-state backlog scales with
    [3 * k * retire-rate] per domain. [create] uses
    {!default_amortize}. *)

(** Native hazard pointers: per-domain atomic slots, protect-validate
    loads (two [Atomic.get]s and a slot publication per step), and
    scan-on-threshold reclamation. Robust (backlog bounded by
    [ndomains * (threshold + slots)]) but reads pay the protocol
    (benchmark B3) — and pairing it with Harris's list would be the
    unsafe combination the ERA theorem describes, so the harness refuses
    it. *)

include Nsmr.S

val slots_per_domain : int
val scan_threshold : int

val in_pool : tctx -> Nnode.node -> bool
(** Is [n] sitting in this domain's recycle pool? (Tests: the
    protected-never-pooled property.) *)

(* Command-line driver for the ERA reproduction experiments.

     dune exec bin/era_cli.exe -- <command> [options]

   Commands: figure1, figure2, robustness, applicability, access-aware,
   matrix, native, all. *)

open Cmdliner

let scheme_names = Era_smr.Registry.names

let scheme_conv =
  let parse s =
    match Era_smr.Registry.find s with
    | Some _ -> Ok s
    | None ->
      Error
        (`Msg
          (Fmt.str "unknown scheme %S (expected one of: %s)" s
             (String.concat ", " scheme_names)))
  in
  Arg.conv (parse, Fmt.string)

let scheme_arg =
  let doc = "Restrict to one scheme (default: all)." in
  Arg.(value & opt (some scheme_conv) None & info [ "s"; "scheme" ] ~doc)

let schemes_of = function
  | None -> Era_smr.Registry.all
  | Some name -> [ Era_smr.Registry.find_exn name ]

let rounds_arg =
  let doc = "Churn rounds for the Figure 1 construction." in
  Arg.(value & opt int 256 & info [ "rounds" ] ~doc)

let fuzz_arg =
  let doc = "Randomized executions per (scheme, structure) pair." in
  Arg.(value & opt int 10 & info [ "fuzz" ] ~doc)

let ops_arg =
  let doc = "Operations per domain for native benchmarks." in
  Arg.(value & opt int 100_000 & info [ "ops" ] ~doc)

let figure1 scheme rounds =
  List.iter
    (fun s -> Fmt.pr "%a@." Era.Figure1.pp_result (Era.Figure1.run ~rounds s))
    (schemes_of scheme)

let figure2 scheme =
  List.iter
    (fun s -> Fmt.pr "%a@." Era.Figure2.pp_result (Era.Figure2.run s))
    (schemes_of scheme)

let robustness scheme =
  List.iter
    (fun s ->
      Fmt.pr "%a@." Era.Robustness.pp_measurement (Era.Robustness.classify s))
    (schemes_of scheme)

let applicability scheme fuzz =
  List.iter
    (fun s ->
      List.iter
        (fun st ->
          Fmt.pr "%a@." Era.Applicability.pp_verdict
            (Era.Applicability.run ~fuzz_runs:fuzz s st))
        Era.Applicability.structures)
    (schemes_of scheme)

let access_aware () =
  List.iter
    (fun r -> Fmt.pr "%a@." Era.Access_aware.pp_report r)
    (Era.Access_aware.audit_all ());
  Fmt.pr "negative control: %a@."
    Fmt.(list ~sep:semi (pair ~sep:(any " x") string int))
    (Era.Access_aware.negative_control ())

let matrix fuzz =
  let rows = Era.Era_matrix.compute ~fuzz_runs:fuzz () in
  Fmt.pr "%a@." Era.Era_matrix.pp_table rows;
  if not (Era.Era_matrix.theorem_holds rows) then exit 1

let ablation () =
  Fmt.pr "HP scan-threshold sweep (space vs scan frequency):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_hp_row r)
    (Era.Ablation.hp_sweep ());
  Fmt.pr "@.IBR epoch-granularity sweep (no tuning escapes Figure 1):@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_ibr_row r)
    (Era.Ablation.ibr_sweep ())

let stall_fuzz_cmd scheme tries =
  List.iter
    (fun ((module S : Era_smr.Smr_intf.S) as s) ->
      let found =
        Era.Applicability.stall_fuzz ~tries ~seed:1 s Era.Applicability.Harris
      in
      Fmt.pr "%-6s stall-fuzz on harris-list: %d/%d runs violated@." S.name
        found tries)
    (schemes_of scheme)

let native ops =
  let open Era_native.Throughput in
  List.iter
    (fun (kind, scheme, mix) ->
      Fmt.pr "%a@." pp_result
        (e8_row kind ~scheme mix ~domains:2 ~ops_per_domain:ops))
    [
      (Harris, `Ebr, Churn); (Michael, `Ebr, Churn); (Michael, `Hp, Churn);
      (Harris, `Ebr, Read_heavy); (Michael, `Ebr, Read_heavy);
      (Michael, `Hp, Read_heavy);
    ];
  List.iter
    (fun s -> Fmt.pr "%a@." pp_result (e9_row ~scheme:s ~churn_ops:ops))
    [ `Ebr; `Hp; `Ibr ]

let all rounds fuzz ops =
  Fmt.pr "== Figure 1 ==@.";
  figure1 None rounds;
  Fmt.pr "@.== Figure 2 ==@.";
  figure2 None;
  Fmt.pr "@.== Robustness ==@.";
  robustness None;
  Fmt.pr "@.== Applicability ==@.";
  applicability None fuzz;
  Fmt.pr "@.== Access-aware audit ==@.";
  access_aware ();
  Fmt.pr "@.== ERA matrix ==@.";
  matrix fuzz;
  Fmt.pr "@.== Native ==@.";
  native ops

let cmd name doc term = Cmd.v (Cmd.info name ~doc) term

let () =
  let cmds =
    [
      cmd "figure1" "The Theorem 6.1 lower-bound execution (Figure 1)."
        Term.(const figure1 $ scheme_arg $ rounds_arg);
      cmd "figure2" "The Appendix E inapplicability execution (Figure 2)."
        Term.(const figure2 $ scheme_arg);
      cmd "robustness" "Robustness classification (Definitions 5.1/5.2)."
        Term.(const robustness $ scheme_arg);
      cmd "applicability" "Applicability matrix (Definitions 5.4/5.6)."
        Term.(const applicability $ scheme_arg $ fuzz_arg);
      cmd "access-aware" "Access-aware discipline audit (Appendices C/D)."
        Term.(const access_aware $ const ());
      cmd "matrix" "The ERA matrix and Theorem 6.1 check."
        Term.(const matrix $ fuzz_arg);
      cmd "native" "Native multicore throughput/backlog (E8/E9)."
        Term.(const native $ ops_arg);
      cmd "ablation" "Tuning-parameter ablations (E10/E11)."
        Term.(const ablation $ const ());
      cmd "stall-fuzz"
        "Black-box violation hunting with random stalls (Harris list)."
        Term.(
          const stall_fuzz_cmd $ scheme_arg
          $ Arg.(value & opt int 30 & info [ "tries" ] ~doc:"Fuzz attempts."));
      cmd "all" "Run every experiment."
        Term.(const all $ rounds_arg $ fuzz_arg $ ops_arg);
    ]
  in
  let info =
    Cmd.info "era_cli" ~version:"1.0"
      ~doc:"Experiments reproducing `The ERA Theorem for Safe Memory \
            Reclamation' (PODC 2023)"
  in
  exit (Cmd.eval (Cmd.group info cmds))

(* Tests for the tuning-parameter ablations: the backlog bound tracks
   HP's threshold, and no IBR epoch granularity escapes the theorem. *)

let test_hp_threshold_tracks_backlog () =
  let rows = Era.Ablation.hp_sweep ~thresholds:[ 2; 32 ] ~size:96 () in
  match rows with
  | [ small; large ] ->
    Alcotest.(check bool) "small threshold, small backlog" true
      (small.Era.Ablation.max_backlog <= 2 + 3);
    Alcotest.(check bool) "large threshold, larger backlog" true
      (large.Era.Ablation.max_backlog > small.Era.Ablation.max_backlog);
    Alcotest.(check bool) "still bounded by threshold + slots" true
      (large.Era.Ablation.max_backlog <= 32 + 3)
  | _ -> Alcotest.fail "expected two rows"

let test_hp_functor_variants_coexist () =
  (* Two differently-tuned HP instances are independent schemes. *)
  let module Tight =
    Era_smr.Hp.Make (struct
      let slots_per_thread = 2
      let scan_threshold = 2
    end)
  in
  let module Loose =
    Era_smr.Hp.Make (struct
      let slots_per_thread = 8
      let scan_threshold = 64
    end)
  in
  Alcotest.(check int) "tight threshold" 2 Tight.scan_threshold;
  Alcotest.(check int) "loose slots" 8 Loose.slots_per_thread;
  Alcotest.(check bool) "both audit as easy" true
    (fst (Era_smr.Integration.easily_integrated Tight.integration)
    && fst (Era_smr.Integration.easily_integrated Loose.integration))

let test_ibr_granularity_no_escape () =
  let rows = Era.Ablation.ibr_sweep ~rates:[ 1; 64 ] () in
  List.iter
    (fun r ->
      Alcotest.(check string)
        (Fmt.str "figure1 defeats rate %d" r.Era.Ablation.allocs_per_epoch)
        "safety-violated" r.Era.Ablation.figure1)
    rows;
  (* The stock Figure 2 schedule only defeats fine-grained epochs. *)
  (match rows with
  | [ fine; coarse ] ->
    Alcotest.(check string) "fine epochs: figure2 unsafe" "unsafe"
      fine.Era.Ablation.figure2;
    Alcotest.(check string) "coarse epochs: stock figure2 dodged" "safe"
      coarse.Era.Ablation.figure2
  | _ -> Alcotest.fail "expected two rows");
  ()

let () =
  Alcotest.run "era_ablation"
    [
      ( "hp",
        [
          Alcotest.test_case "threshold tracks backlog" `Slow
            test_hp_threshold_tracks_backlog;
          Alcotest.test_case "functor variants" `Quick
            test_hp_functor_variants_coexist;
        ] );
      ( "ibr",
        [
          Alcotest.test_case "no granularity escapes Figure 1" `Slow
            test_ibr_granularity_no_escape;
        ] );
    ]

(* Tests for the workload generators: distribution bounds and shapes,
   mix proportions, and the Figure 1 churn sequence. *)

open Era_workload
module Rng = Era_sim.Rng

let test_uniform_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let k = Workload.draw_key rng (Workload.Uniform 10) in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= 10)
  done

let test_zipf_bounds_and_skew () =
  let rng = Rng.create 5 in
  let counts = Array.make 21 0 in
  for _ = 1 to 20_000 do
    let k = Workload.draw_key rng (Workload.Zipf (20, 1.2)) in
    Alcotest.(check bool) "in range" true (k >= 1 && k <= 20);
    counts.(k) <- counts.(k) + 1
  done;
  (* Zipf with s=1.2: key 1 must dominate, the tail must be light. *)
  Alcotest.(check bool) "head heavy" true (counts.(1) > counts.(5));
  Alcotest.(check bool) "monotone-ish head" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "tail light" true
    (counts.(20) < counts.(1) / 4)

let zipf_prop =
  QCheck2.Test.make ~name:"zipf: draws always within [1, n]" ~count:100
    QCheck2.Gen.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let k = Workload.draw_key rng (Workload.Zipf (n, 0.8)) in
      k >= 1 && k <= n)

let test_mix_proportions () =
  (* Route a large op count through a counting handle and check the mix
     lands near the requested percentages. *)
  let ins = ref 0 and del = ref 0 and con = ref 0 in
  let ops : Era_sets.Set_intf.ops =
    {
      insert = (fun _ -> incr ins; true);
      delete = (fun _ -> incr del; true);
      contains = (fun _ -> incr con; true);
      quiesce = ignore;
    }
  in
  Workload.run_set_ops ops (Rng.create 11) ~ops:10_000
    ~keys:(Workload.Uniform 5)
    ~mix:{ Workload.insert_pct = 10; delete_pct = 10 };
  Alcotest.(check int) "total" 10_000 (!ins + !del + !con);
  Alcotest.(check bool) "inserts ~10%" true (abs (!ins - 1000) < 200);
  Alcotest.(check bool) "deletes ~10%" true (abs (!del - 1000) < 200);
  Alcotest.(check bool) "contains ~80%" true (abs (!con - 8000) < 400)

let test_churn_keys () =
  Alcotest.(check (list (pair int int)))
    "figure 1 sequence"
    [ (3, 2); (4, 3); (5, 4) ]
    (Workload.churn_keys ~base:2 ~rounds:3)

let test_stack_queue_drivers () =
  let pushes = ref 0 and pops = ref 0 in
  let sops : Era_sets.Treiber_stack.stack_ops =
    {
      push = (fun _ -> incr pushes);
      pop = (fun () -> incr pops; None);
      quiesce = ignore;
    }
  in
  Workload.run_stack_ops sops (Rng.create 2) ~ops:1000
    ~keys:(Workload.Uniform 5);
  Alcotest.(check int) "stack total" 1000 (!pushes + !pops);
  Alcotest.(check bool) "stack roughly half/half" true
    (abs (!pushes - 500) < 100);
  let enq = ref 0 and deq = ref 0 in
  let qops : Era_sets.Ms_queue.queue_ops =
    {
      enqueue = (fun _ -> incr enq);
      dequeue = (fun () -> incr deq; None);
      quiesce = ignore;
    }
  in
  Workload.run_queue_ops qops (Rng.create 2) ~ops:1000
    ~keys:(Workload.Uniform 5);
  Alcotest.(check int) "queue total" 1000 (!enq + !deq)

let () =
  Alcotest.run "era_workload"
    [
      ( "keys",
        [
          Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
          Alcotest.test_case "zipf bounds and skew" `Quick
            test_zipf_bounds_and_skew;
        ] );
      ("key-props", [ QCheck_alcotest.to_alcotest zipf_prop ]);
      ( "drivers",
        [
          Alcotest.test_case "mix proportions" `Quick test_mix_proportions;
          Alcotest.test_case "churn keys" `Quick test_churn_keys;
          Alcotest.test_case "stack/queue drivers" `Quick
            test_stack_queue_drivers;
        ] );
    ]

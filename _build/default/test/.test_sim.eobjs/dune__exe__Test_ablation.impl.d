test/test_ablation.ml: Alcotest Era Era_smr Fmt List

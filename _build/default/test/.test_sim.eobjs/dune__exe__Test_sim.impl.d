test/test_sim.ml: Alcotest Era_sim Event Fmt Fun Heap Lifecycle List Monitor QCheck2 QCheck_alcotest Result Rng Vec Word

test/test_core.ml: Alcotest Era Era_sim Era_smr List

test/test_workload.ml: Alcotest Array Era_sets Era_sim Era_workload QCheck2 QCheck_alcotest Workload

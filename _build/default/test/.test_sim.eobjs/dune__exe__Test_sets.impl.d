test/test_sets.ml: Alcotest Era Era_history Era_sched Era_sets Era_sim Era_smr Era_workload Event Fmt Heap Int List Monitor QCheck2 QCheck_alcotest Rng Set

test/test_native.ml: Alcotest Array Domain Era_native Int Int64 List N_ebr N_harris N_hp N_michael N_msqueue N_treiber Set Throughput

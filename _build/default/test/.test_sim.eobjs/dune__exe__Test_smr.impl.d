test/test_smr.ml: Alcotest Era Era_sched Era_sim Era_smr Heap List Monitor String Word

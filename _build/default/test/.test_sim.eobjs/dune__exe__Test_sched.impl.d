test/test_sched.ml: Alcotest Era_history Era_sched Era_sim Event Heap List Monitor Rng String Word

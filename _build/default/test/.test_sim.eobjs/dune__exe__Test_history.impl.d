test/test_history.ml: Alcotest Array Era_history Era_sim Event List QCheck2 QCheck_alcotest

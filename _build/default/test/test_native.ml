(* Tests for the native (Domain/Atomic) layer: sequential semantics,
   multi-domain stress with verification, and reclamation statistics. *)

open Era_native

module Int_set = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Sequential model checks                                             *)
(* ------------------------------------------------------------------ *)

let test_native_harris_sequential () =
  let module L = N_harris.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let l = L.create () in
  let model = ref Int_set.empty in
  let st = ref 424242L in
  let next () =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    Int64.to_int (Int64.shift_right_logical !st 3)
  in
  for _ = 1 to 2000 do
    let k = 1 + (next () mod 20) in
    match next () mod 3 with
    | 0 ->
      let e = not (Int_set.mem k !model) in
      model := Int_set.add k !model;
      Alcotest.(check bool) "insert" e (L.insert l s k)
    | 1 ->
      let e = Int_set.mem k !model in
      model := Int_set.remove k !model;
      Alcotest.(check bool) "delete" e (L.delete l s k)
    | _ -> Alcotest.(check bool) "contains" (Int_set.mem k !model)
             (L.contains l s k)
  done;
  Alcotest.(check (list int)) "final" (Int_set.elements !model) (L.to_list l s)

let test_native_michael_sequential () =
  let module L = N_michael.Make (N_hp) in
  let g = N_hp.create ~ndomains:1 in
  let s = N_hp.thread g 0 in
  let l = L.create () in
  let model = ref Int_set.empty in
  let st = ref 99L in
  let next () =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    Int64.to_int (Int64.shift_right_logical !st 3)
  in
  for _ = 1 to 2000 do
    let k = 1 + (next () mod 20) in
    match next () mod 3 with
    | 0 ->
      let e = not (Int_set.mem k !model) in
      model := Int_set.add k !model;
      Alcotest.(check bool) "insert" e (L.insert l s k)
    | 1 ->
      let e = Int_set.mem k !model in
      model := Int_set.remove k !model;
      Alcotest.(check bool) "delete" e (L.delete l s k)
    | _ -> Alcotest.(check bool) "contains" (Int_set.mem k !model)
             (L.contains l s k)
  done;
  Alcotest.(check (list int)) "final" (Int_set.elements !model) (L.to_list l s)

let test_native_treiber_sequential () =
  let module T = N_treiber.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let t = T.create () in
  Alcotest.(check (option int)) "empty" None (T.pop t s);
  T.push t s 1;
  T.push t s 2;
  Alcotest.(check (option int)) "lifo" (Some 2) (T.pop t s);
  Alcotest.(check (option int)) "lifo2" (Some 1) (T.pop t s)

let test_native_msqueue_sequential () =
  let module Q = N_msqueue.Make (N_hp) in
  let g = N_hp.create ~ndomains:1 in
  let s = N_hp.thread g 0 in
  let q = Q.create () in
  Alcotest.(check (option int)) "empty" None (Q.dequeue q s);
  Q.enqueue q s 1;
  Q.enqueue q s 2;
  Q.enqueue q s 3;
  Alcotest.(check (option int)) "fifo" (Some 1) (Q.dequeue q s);
  Alcotest.(check (option int)) "fifo2" (Some 2) (Q.dequeue q s);
  Alcotest.(check (option int)) "fifo3" (Some 3) (Q.dequeue q s);
  Alcotest.(check (option int)) "empty again" None (Q.dequeue q s)

(* ------------------------------------------------------------------ *)
(* Multi-domain stress with verifiable outcomes                        *)
(* ------------------------------------------------------------------ *)

let test_native_parallel_disjoint_inserts () =
  (* Two domains insert disjoint key ranges into one Michael+HP list;
     every key must be present at the end. *)
  let module L = N_michael.Make (N_hp) in
  let g = N_hp.create ~ndomains:2 in
  let l = L.create () in
  let worker lo hi d () =
    let s = N_hp.thread g d in
    for k = lo to hi do
      ignore (L.insert l s k)
    done
  in
  let d1 = Domain.spawn (worker 101 200 1) in
  worker 1 100 0 ();
  Domain.join d1;
  let s = N_hp.thread g 0 in
  Alcotest.(check (list int)) "all 200 keys present"
    (List.init 200 (fun i -> i + 1))
    (L.to_list l s)

let test_native_parallel_churn_counts () =
  (* Two domains each push/pop on a Treiber stack; pushes - successful
     pops = final size, and every popped value was pushed. *)
  let module T = N_treiber.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:2 in
  let t = T.create () in
  let pops = Array.make 2 0 in
  let worker d () =
    let s = N_ebr.thread g d in
    for k = 1 to 5000 do
      T.push t s ((d * 100000) + k);
      if k mod 2 = 0 then
        match T.pop t s with Some _ -> pops.(d) <- pops.(d) + 1 | None -> ()
    done
  in
  let d1 = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d1;
  let s = N_ebr.thread g 0 in
  let remaining = ref 0 in
  let rec drain () =
    match T.pop t s with
    | Some _ ->
      incr remaining;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "push/pop conservation" 10000
    (pops.(0) + pops.(1) + !remaining)

let test_native_queue_fifo_per_producer () =
  (* Single consumer, one producer domain: the consumer must see the
     producer's values in order. *)
  let module Q = N_msqueue.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:2 in
  let q = Q.create () in
  let producer () =
    let s = N_ebr.thread g 1 in
    for k = 1 to 5000 do
      Q.enqueue q s k
    done
  in
  let p = Domain.spawn producer in
  let s = N_ebr.thread g 0 in
  let last = ref 0 in
  let seen = ref 0 in
  let ok = ref true in
  while !seen < 5000 do
    match Q.dequeue q s with
    | Some v ->
      if v <= !last then ok := false;
      last := v;
      incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join p;
  Alcotest.(check bool) "FIFO per producer" true !ok

(* ------------------------------------------------------------------ *)
(* Reclamation statistics                                              *)
(* ------------------------------------------------------------------ *)

let test_native_ebr_reclaims () =
  let module L = N_michael.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let l = L.create () in
  for k = 1 to 1000 do
    ignore (L.insert l s (k mod 10));
    ignore (L.delete l s (k mod 10))
  done;
  Alcotest.(check bool) "ebr recycles" true (N_ebr.reclaimed g > 100);
  Alcotest.(check bool) "backlog small" true (N_ebr.backlog g < 50)

let test_native_hp_bounded_backlog () =
  let module L = N_michael.Make (N_hp) in
  let g = N_hp.create ~ndomains:1 in
  let s = N_hp.thread g 0 in
  let l = L.create () in
  for k = 1 to 2000 do
    ignore (L.insert l s (k mod 10));
    ignore (L.delete l s (k mod 10))
  done;
  Alcotest.(check bool) "hp backlog bounded" true
    (N_hp.max_backlog g <= N_hp.scan_threshold)

let test_e9_shape () =
  (* The robustness trade-off: a stalled domain blows up EBR's backlog
     but not HP's. *)
  let ebr = Throughput.e9_row ~scheme:`Ebr ~churn_ops:20_000 in
  let hp = Throughput.e9_row ~scheme:`Hp ~churn_ops:20_000 in
  Alcotest.(check bool) "ebr backlog explodes" true
    (ebr.Throughput.max_backlog > 1000);
  Alcotest.(check bool) "hp backlog bounded" true
    (hp.Throughput.max_backlog <= 2 * 64);
  Alcotest.(check bool) "ebr reclaimed nothing under stall" true
    (ebr.Throughput.reclaimed < ebr.Throughput.max_backlog / 2)

let test_e8_hp_harris_refused () =
  Alcotest.(check bool) "hp+harris pairing refused" true
    (match
       Throughput.e8_row Throughput.Harris ~scheme:`Hp Throughput.Churn
         ~domains:1 ~ops_per_domain:10
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "era_native"
    [
      ( "sequential",
        [
          Alcotest.test_case "harris+ebr model" `Quick
            test_native_harris_sequential;
          Alcotest.test_case "michael+hp model" `Quick
            test_native_michael_sequential;
          Alcotest.test_case "treiber" `Quick test_native_treiber_sequential;
          Alcotest.test_case "msqueue" `Quick test_native_msqueue_sequential;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "disjoint inserts" `Slow
            test_native_parallel_disjoint_inserts;
          Alcotest.test_case "stack conservation" `Slow
            test_native_parallel_churn_counts;
          Alcotest.test_case "queue FIFO" `Slow
            test_native_queue_fifo_per_producer;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "ebr recycles" `Quick test_native_ebr_reclaims;
          Alcotest.test_case "hp bounded backlog" `Quick
            test_native_hp_bounded_backlog;
          Alcotest.test_case "E9 shape" `Slow test_e9_shape;
          Alcotest.test_case "hp+harris refused" `Quick
            test_e8_hp_harris_refused;
        ] );
    ]

(* A narrated tour of the ERA theorem: run the paper's two adversarial
   executions against every scheme in the registry and print, per scheme,
   which of the three properties it forfeits.

     dune exec examples/theorem_walkthrough.exe *)

let section title =
  Fmt.pr "@.=== %s ===@.@." title

let () =
  section "The cast";
  List.iter
    (fun (module S : Era_smr.Smr_intf.S) ->
      Fmt.pr "  %-6s %s@." S.name S.describe)
    Era_smr.Registry.all;

  section "Figure 1 — the Theorem 6.1 execution";
  Fmt.pr
    "Harris's list holds {1, 2}. T1 begins delete(3) and is stalled \
     holding a pointer@.to node 1; T2 churns insert(n+1)/delete(n), so \
     max_active stays 4 while the@.retired population grows; then T1 \
     solo-runs. Every scheme must lose something:@.@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Figure1.pp_result r)
    (Era.Figure1.run_all ~rounds:256 ());

  section "Figure 2 — why validated protection fails on Harris's list";
  Fmt.pr
    "The list holds {15, 76}. T1 protects node 15 and stalls; 43 is \
     inserted after@.the protection; 15 and 43 are deleted; a reclamation \
     pass frees 43 (it is@.unprotected); T1 resumes and walks 15.next \
     into freed memory.@.@.";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Figure2.pp_result r)
    (Era.Figure2.run_all ());

  section "The ERA matrix";
  let rows =
    Era.Era_matrix.compute ~fuzz_runs:5 ~churn_points:[ 128; 512 ]
      ~size_points:[ 32; 128 ] ()
  in
  Fmt.pr "%a@." Era.Era_matrix.pp_table rows;
  Fmt.pr
    "Each scheme provides exactly two of {E, R, A}; per Theorem 6.1 no \
     scheme can@.provide all three — robust reclamation either narrows \
     its applicability (HP)@.or complicates its integration (VBR, NBR).@."

(* The classic ABA disaster, reproduced deterministically — why safe
   memory reclamation exists at all (paper, Section 1: reclaimed nodes
   "may still be accessed by concurrent threads ... potentially causing a
   system crash, a segmentation fault, or correctness failure").

   A Treiber stack holds [A; B]. T0 starts a pop: it reads top = A and
   A.next = B, then stalls before its CAS. T1 pops and *immediately
   frees* A and B (no SMR!), then pushes two fresh nodes — the second of
   which recycles A's address. T0 resumes: its CAS compares bit patterns,
   sees "A" on top again, succeeds — and installs a pointer to the freed
   node B. The next reader walks into freed memory.

   The simulator's logical node identity catches exactly this: the
   success of the stale CAS and the subsequent use of freed memory are
   both visible in the trace.

     dune exec examples/aba_demo.exe *)

open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

let top = 0  (* anchor field *)
let next = 0  (* node field *)

let () =
  let mon = Monitor.create ~mode:`Record ~trace:true () in
  let heap = Heap.create mon in
  let addr_a = ref (-1) in
  (* Stall T0 right after it has read A.next (its second load). *)
  let t0_read_a_next = function
    | Event.Access { tid = 0; addr; field = 0; kind = Event.Read; _ } ->
      addr = !addr_a
    | _ -> false
  in
  let script =
    Sched.Script
      [
        Sched.Run_until (0, t0_read_a_next);
        Sched.Finish 1;
        Sched.Finish 0;
      ]
  in
  let sched = Sched.create ~nthreads:2 script heap in
  let ext = Sched.external_ctx sched ~tid:1 in
  let anchor = Mem.alloc_sentinel ext ~key:0 in
  let b = Mem.alloc ext ~key:2 in
  let a = Mem.alloc ext ~key:1 in
  Mem.write ext ~via:a ~field:next b;
  Mem.write ext ~via:anchor ~field:top a;
  addr_a := Word.addr_exn a;
  Fmt.pr "setup: top -> A(key 1, addr %d) -> B(key 2, addr %d)@.@."
    (Word.addr_exn a) (Word.addr_exn b);

  (* T0: a pop that loses the race and trusts its bit-pattern CAS. *)
  Sched.spawn sched ~tid:0 (fun ctx ->
      let old_top = Mem.read ctx ~via:anchor ~field:top in
      let nxt = Mem.read ctx ~via:old_top ~field:next in
      (* --- stalled here by the script --- *)
      let ok = Mem.cas ctx ~via:anchor ~field:top ~expected:old_top ~desired:nxt in
      Fmt.pr "T0: CAS(top, A, B) after resuming: %b  <- ABA, it should have failed!@." ok;
      (* The stack now exposes freed memory; the next reader faults. *)
      let w = Mem.read ctx ~via:anchor ~field:top in
      match w with
      | Word.Ptr _ -> ignore (Mem.read_key ctx ~via:w)
      | Word.Null | Word.Int _ -> ());

  (* T1: pops A and B with immediate manual frees, then pushes two fresh
     nodes; the free-list reuse puts the second one at A's old address. *)
  Sched.spawn sched ~tid:1 (fun ctx ->
      let pop () =
        let t = Mem.read ctx ~via:anchor ~field:top in
        let n = Mem.read ctx ~via:t ~field:next in
        ignore (Mem.cas ctx ~via:anchor ~field:top ~expected:t ~desired:n);
        Mem.retire ctx t;
        Mem.reclaim ctx t  (* manual free: no SMR discipline *)
      in
      pop ();
      pop ();
      let push key =
        let node = Mem.alloc ctx ~key in
        let t = Mem.read ctx ~via:anchor ~field:top in
        Mem.write ctx ~via:node ~field:next t;
        ignore (Mem.cas ctx ~via:anchor ~field:top ~expected:t ~desired:node);
        node
      in
      let x = push 3 in
      let y = push 4 in
      Fmt.pr "T1: freed A and B, pushed X(key 3, addr %d) and Y(key 4, addr %d)@."
        (Word.addr_exn x) (Word.addr_exn y);
      Fmt.pr "T1: Y recycled A's address: %b@.@."
        (Word.addr_exn y = !addr_a));

  ignore (Sched.run sched);
  Fmt.pr "@.violations detected by the monitor:@.";
  List.iter (fun v -> Fmt.pr "  %a@." Event.pp v) (Monitor.violations mon);
  Fmt.pr
    "@.Moral: the CAS compared bit patterns, not logical nodes, so \
     recycling A's@.address made a stale expectation succeed and linked \
     freed memory into the@.stack. Every scheme in lib/smr exists to \
     prevent exactly this — and the ERA@.theorem says the prevention \
     always costs one of {E, R, A}.@."

(* Quickstart: integrate a reclamation scheme into a lock-free set, run a
   concurrent workload on the simulator, and check what the monitor saw.

     dune exec examples/quickstart.exe

   The pattern below is the library's core loop:
     1. a monitor observes every step and enforces the paper's safety
        definitions;
     2. a heap provides allocation / retirement / reclamation with
        logical node identity;
     3. a scheduler interleaves effect-based threads one shared-memory
        access at a time;
     4. a data structure functor integrates any scheme via the uniform
        SMR interface;
     5. afterwards, the recorded history is checked for linearizability
        against a sequential specification. *)

open Era_sim
module Sched = Era_sched.Sched

(* Pick the scheme by name — every scheme in the registry works here.
   Try "hp" and watch the run stay safe: random schedules rarely build
   the adversarial execution; that is what Figures 1 and 2 are for. *)
module Scheme = Era_smr.Ebr
module List_set = Era_sets.Harris_list.Make (Scheme)

let nthreads = 4
let ops_per_thread = 100

let () =
  (* 1. Monitor: [`Raise] turns any safety violation into an exception. *)
  let monitor = Monitor.create ~mode:`Raise ~trace:true () in
  let heap = Heap.create monitor in

  (* 3. Scheduler: seeded random interleaving, reproducible. *)
  let sched =
    Sched.create ~nthreads (Sched.Random (Rng.create 2023)) heap
  in

  (* 2+4. Scheme + structure. Setup runs outside the scheduler. *)
  let scheme = Scheme.create heap ~nthreads in
  let setup_ctx = Sched.external_ctx sched ~tid:0 in
  let list = List_set.create setup_ctx scheme in
  let setup = List_set.handle list setup_ctx in
  (* Pre-fill through *recorded* operations: the linearizability checker
     replays the history from the empty set, so unrecorded effects would
     make correct results look inexplicable. *)
  let setup_ops = List_set.ops setup ~record:true in
  List.iter (fun k -> ignore (setup_ops.insert k)) [ 10; 20; 30 ];

  (* Spawn workers: each runs a random mix of insert/delete/contains. *)
  for tid = 0 to nthreads - 1 do
    Sched.spawn sched ~tid (fun ctx ->
        let ops = List_set.ops (List_set.handle list ctx) ~record:true in
        Era_workload.Workload.run_set_ops ops
          (Rng.create (7 * (tid + 1)))
          ~ops:ops_per_thread
          ~keys:(Era_workload.Workload.Uniform 40)
          ~mix:Era_workload.Workload.balanced;
        ops.quiesce ())
  done;
  let outcome = Sched.run sched in

  (* 5. Check the history. *)
  let verdict =
    Era_history.Linearize.check_monitor
      (module Era_history.Spec.Int_set)
      monitor
  in
  let history = Era_history.History.of_monitor monitor in
  Fmt.pr "scheduler outcome   : %s@."
    (match outcome with
    | Sched.All_finished -> "all threads finished"
    | _ -> "something else (unexpected)");
  Fmt.pr "operations recorded : %d@." (List.length history);
  Fmt.pr "safety violations   : %d@." (Monitor.violation_count monitor);
  Fmt.pr "linearizable        : %b (%d states explored)@."
    verdict.Era_history.Linearize.ok verdict.Era_history.Linearize.states_explored;
  Fmt.pr "retired backlog     : %d (max over run: %d)@."
    (Monitor.retired monitor) (Monitor.max_retired monitor);
  Fmt.pr "heap                : %d allocations, %d reclaims@."
    (Heap.stats heap).Heap.allocs (Heap.stats heap).Heap.reclaims;
  Fmt.pr "final contents      : [%a]@."
    Fmt.(list ~sep:comma int)
    (List_set.to_list setup)

examples/native_throughput.ml: Array Era_native Fmt List Sys

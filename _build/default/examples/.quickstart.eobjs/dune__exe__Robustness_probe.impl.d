examples/robustness_probe.ml: Array Era Era_smr Fmt List String Sys

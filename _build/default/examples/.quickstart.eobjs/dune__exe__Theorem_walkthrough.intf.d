examples/theorem_walkthrough.mli:

examples/quickstart.ml: Era_history Era_sched Era_sets Era_sim Era_smr Era_workload Fmt Heap List Monitor Rng

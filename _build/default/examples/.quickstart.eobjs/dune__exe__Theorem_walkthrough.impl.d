examples/theorem_walkthrough.ml: Era Era_smr Fmt List

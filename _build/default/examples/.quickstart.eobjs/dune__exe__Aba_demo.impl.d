examples/aba_demo.ml: Era_sched Era_sim Event Fmt Heap List Monitor Word

examples/robustness_probe.mli:

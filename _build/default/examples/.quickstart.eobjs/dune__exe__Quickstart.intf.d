examples/quickstart.mli:

examples/aba_demo.mli:

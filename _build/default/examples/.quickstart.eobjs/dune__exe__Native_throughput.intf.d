examples/native_throughput.mli:

(* Probe the memory footprint (Definitions 5.1/5.2) of one scheme:
   print the churn-sweep and size-sweep series behind the robustness
   classification.

     dune exec examples/robustness_probe.exe           # default: ebr
     dune exec examples/robustness_probe.exe -- hp     # any scheme name *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "ebr" in
  let scheme =
    match Era_smr.Registry.find name with
    | Some s -> s
    | None ->
      Fmt.epr "unknown scheme %S; available: %s@." name
        (String.concat ", " Era_smr.Registry.names);
      exit 1
  in
  Fmt.pr "Robustness probe for %s@.@." name;
  let m =
    Era.Robustness.classify
      ~churn_points:[ 64; 128; 256; 512; 1024 ]
      ~size_points:[ 16; 32; 64; 128; 256 ]
      scheme
  in
  Fmt.pr
    "Churn sweep (Figure 1 workload: max_active pinned at 4, growing op \
     count M):@.";
  Fmt.pr "  %-8s %s@." "M" "retired backlog after churn";
  List.iter
    (fun (m', r) -> Fmt.pr "  %-8d %d@." m' r)
    m.Era.Robustness.churn_series;
  Fmt.pr "@.Size sweep (stalled reader over a pre-filled list of size S):@.";
  Fmt.pr "  %-8s %s@." "S" "peak retired backlog";
  List.iter
    (fun (s, r) -> Fmt.pr "  %-8d %d@." s r)
    m.Era.Robustness.size_series;
  Fmt.pr "@.slopes: churn %.3f, size %.3f@." m.Era.Robustness.churn_slope
    m.Era.Robustness.size_slope;
  Fmt.pr "classification: %s@."
    (Era.Robustness.clazz_name m.Era.Robustness.clazz);
  Fmt.pr
    "@.(Not robust: backlog grows with execution length. Weakly robust: \
     bounded by a@.polynomial of max_active. Robust: o(max_active) — in \
     practice a constant.)@."

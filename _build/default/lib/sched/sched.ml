open Effect
open Effect.Deep
module Event = Era_sim.Event
module Monitor = Era_sim.Monitor
module Rng = Era_sim.Rng

type _ Effect.t += Yield : unit Effect.t

type fiber_status =
  | Suspended of (unit, fiber_status) continuation
  | Done
  | Failed of exn

type thread_state =
  | Not_spawned_s
  | Fresh of (unit -> unit)
  | Paused of (unit, fiber_status) continuation
  | Finished_s
  | Crashed_s of exn

type instr =
  | Run of int * int
  | Run_until of int * (Event.t -> bool)
  | Run_until_label of int * string
  | Finish of int
  | Finish_bounded of int * int
  | Finish_all

type strategy =
  | Round_robin
  | Random of Rng.t
  | Script of instr list

type outcome =
  | All_finished
  | Script_done
  | Step_limit
  | No_runnable

type thread_outcome =
  | Not_spawned
  | Running
  | Finished
  | Crashed of exn

type t = {
  sim_heap : Era_sim.Heap.t;
  mon : Monitor.t;
  max_steps : int;
  threads : thread_state array;
  stalled : bool array;
  steps : int array;
  mutable total : int;
  mutable rr_next : int;
  mutable opid : int;
  strategy : strategy;
  mutable script : instr list;
  mutable instr_budget : int;  (* remaining quanta for the current instr *)
  step_events : Event.t Era_sim.Vec.t;  (* events of the current quantum *)
}

and ctx = {
  tid : int;
  heap : Era_sim.Heap.t;
  sched : t;
}

(* ctx is declared after t so redefine the public order via an interface
   trick: the .mli lists ctx first; OCaml allows any order with 'and'. *)

let create ?(max_steps = 20_000_000) ~nthreads strategy heap =
  let t =
    {
      sim_heap = heap;
      mon = Era_sim.Heap.monitor heap;
      max_steps;
      threads = Array.make nthreads Not_spawned_s;
      stalled = Array.make nthreads false;
      steps = Array.make nthreads 0;
      total = 0;
      rr_next = 0;
      opid = 0;
      strategy;
      script = (match strategy with Script s -> s | _ -> []);
      instr_budget = -1;
      step_events = Era_sim.Vec.create ();
    }
  in
  Monitor.subscribe t.mon (fun _time ev -> Era_sim.Vec.push t.step_events ev);
  t

let spawn t ~tid body =
  if tid < 0 || tid >= Array.length t.threads then
    invalid_arg "Sched.spawn: tid out of range";
  (match t.threads.(tid) with
  | Not_spawned_s -> ()
  | _ -> invalid_arg "Sched.spawn: thread already spawned");
  let ctx = { tid; heap = t.sim_heap; sched = t } in
  t.threads.(tid) <- Fresh (fun () -> body ctx)

let external_ctx t ~tid = { tid; heap = t.sim_heap; sched = t }

let heap t = t.sim_heap
let monitor t = t.mon
let nthreads t = Array.length t.threads

let thread_outcome t tid =
  match t.threads.(tid) with
  | Not_spawned_s -> Not_spawned
  | Fresh _ | Paused _ -> Running
  | Finished_s -> Finished
  | Crashed_s e -> Crashed e

let steps_of t tid = t.steps.(tid)
let total_steps t = t.total

let stall t tid =
  if not t.stalled.(tid) then begin
    t.stalled.(tid) <- true;
    Monitor.emit t.mon (Event.Stalled { tid })
  end

let unstall t tid =
  if t.stalled.(tid) then begin
    t.stalled.(tid) <- false;
    Monitor.emit t.mon (Event.Resumed { tid })
  end

let is_stalled t tid = t.stalled.(tid)

(* Outside a fiber (test setup, pre-filling a structure before the
   concurrent part starts) there is no handler for [Yield]; treat the
   yield as a no-op so the same data-structure code runs in both
   settings. *)
let yield _ctx = try perform Yield with Effect.Unhandled _ -> ()

let label ctx name =
  yield ctx;
  Monitor.emit ctx.sched.mon (Event.Label { tid = ctx.tid; name })

let next_opid t =
  t.opid <- t.opid + 1;
  t.opid

let run_op ctx op f =
  let t = ctx.sched in
  let opid = next_opid t in
  Monitor.emit t.mon (Event.Invoke { tid = ctx.tid; opid; op });
  let result = f () in
  Monitor.emit t.mon (Event.Response { tid = ctx.tid; opid; op; result });
  result

(* ------------------------------------------------------------------ *)
(* Fiber machinery                                                     *)
(* ------------------------------------------------------------------ *)

let fiber_handler : (unit, fiber_status) handler =
  {
    retc = (fun () -> Done);
    exnc = (fun e -> Failed e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
          Some (fun (k : (a, fiber_status) continuation) -> Suspended k)
        | _ -> None);
  }

let runnable t tid =
  match t.threads.(tid) with
  | Fresh _ | Paused _ -> not t.stalled.(tid)
  | Not_spawned_s | Finished_s | Crashed_s _ -> false

let live t tid =
  match t.threads.(tid) with
  | Fresh _ | Paused _ -> true
  | Not_spawned_s | Finished_s | Crashed_s _ -> false

(* Give [tid] one quantum. Returns the events it emitted. *)
let step_thread t tid =
  Era_sim.Vec.clear t.step_events;
  let status =
    match t.threads.(tid) with
    | Fresh body -> match_with body () fiber_handler
    | Paused k -> continue k ()
    | Not_spawned_s | Finished_s | Crashed_s _ ->
      invalid_arg "Sched.step_thread: thread not runnable"
  in
  t.steps.(tid) <- t.steps.(tid) + 1;
  t.total <- t.total + 1;
  (match status with
  | Suspended k -> t.threads.(tid) <- Paused k
  | Done -> t.threads.(tid) <- Finished_s
  | Failed e -> t.threads.(tid) <- Crashed_s e);
  ()

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

let pick_round_robin t =
  let n = Array.length t.threads in
  let rec search i remaining =
    if remaining = 0 then None
    else if runnable t (i mod n) then begin
      t.rr_next <- (i mod n) + 1;
      Some (i mod n)
    end
    else search (i + 1) (remaining - 1)
  in
  search t.rr_next n

let pick_random t rng =
  let candidates =
    Array.to_list (Array.init (Array.length t.threads) Fun.id)
    |> List.filter (runnable t)
  in
  match candidates with
  | [] -> None
  | l -> Some (List.nth l (Rng.int rng (List.length l)))

let step_events_match t pred = Era_sim.Vec.exists pred t.step_events

exception Stop of outcome

let progress_violation t tid =
  Monitor.emit t.mon
    (Event.Violation
       {
         tid;
         kind = Event.Progress_failure;
         detail =
           Fmt.str "T%d did not finish its solo run within its step budget"
             tid;
       })

(* Execute the current script instruction for one quantum; return [true]
   when the instruction is complete and should be popped. *)
let script_quantum t instr =
  match instr with
  | Run (tid, n) ->
    if n <= 0 || not (live t tid) then true
    else begin
      if t.instr_budget < 0 then t.instr_budget <- n;
      step_thread t tid;
      t.instr_budget <- t.instr_budget - 1;
      t.instr_budget = 0 || not (live t tid)
    end
  | Run_until (tid, pred) ->
    if not (live t tid) then true
    else begin
      step_thread t tid;
      step_events_match t pred || not (live t tid)
    end
  | Run_until_label (tid, name) ->
    if not (live t tid) then true
    else begin
      step_thread t tid;
      step_events_match t (function
        | Event.Label l -> l.tid = tid && l.name = name
        | _ -> false)
      || not (live t tid)
    end
  | Finish tid ->
    if not (live t tid) then true
    else begin
      step_thread t tid;
      not (live t tid)
    end
  | Finish_bounded (tid, budget) ->
    if not (live t tid) then true
    else begin
      if t.instr_budget < 0 then t.instr_budget <- budget;
      step_thread t tid;
      t.instr_budget <- t.instr_budget - 1;
      if not (live t tid) then true
      else if t.instr_budget = 0 then begin
        progress_violation t tid;
        true
      end
      else false
    end
  | Finish_all -> (
    match pick_round_robin t with
    | None -> true
    | Some tid ->
      step_thread t tid;
      false)

let run t =
  let finished_all () =
    let all = ref true in
    Array.iteri (fun tid _ -> if live t tid then all := false) t.threads;
    !all
  in
  try
    while true do
      if t.total >= t.max_steps then raise (Stop Step_limit);
      match t.strategy with
      | Script _ -> (
        match t.script with
        | [] -> raise (Stop Script_done)
        | instr :: rest ->
          if script_quantum t instr then begin
            t.script <- rest;
            t.instr_budget <- -1
          end)
      | Round_robin -> (
        if finished_all () then raise (Stop All_finished);
        match pick_round_robin t with
        | None -> raise (Stop No_runnable)
        | Some tid -> step_thread t tid)
      | Random rng -> (
        if finished_all () then raise (Stop All_finished);
        match pick_random t rng with
        | None -> raise (Stop No_runnable)
        | Some tid -> step_thread t tid)
    done;
    assert false
  with Stop o -> if finished_all () && o = Script_done then All_finished else o

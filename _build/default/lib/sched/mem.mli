(** Shared-memory accesses as scheduled steps.

    Thin wrappers over {!Era_sim.Heap} that perform a scheduler yield
    immediately before every access, so that each shared-memory access is
    exactly one atomic step of the interleaving (Section 3 of the paper).
    Data structures and reclamation schemes must go through this module —
    direct [Heap] calls would make multi-access sequences artificially
    atomic and hide the races the ERA constructions depend on. *)

open Era_sim

val alloc : Sched.ctx -> key:int -> Word.t
val alloc_sentinel : Sched.ctx -> key:int -> Word.t
val retire : Sched.ctx -> Word.t -> unit
val reclaim : Sched.ctx -> Word.t -> unit

val read : Sched.ctx -> via:Word.t -> field:int -> Word.t
(** Checked read: the value will be used (Definition 4.2(3) enforced). *)

val read_key : Sched.ctx -> via:Word.t -> int
val write : Sched.ctx -> via:Word.t -> field:int -> Word.t -> unit

val cas :
  Sched.ctx -> via:Word.t -> field:int ->
  expected:Word.t -> desired:Word.t -> bool

val cas_identity :
  Sched.ctx -> via:Word.t -> field:int ->
  expected:Word.t -> desired:Word.t -> bool

val peek : Sched.ctx -> via:Word.t -> field:int -> Word.t * Heap.validity
val peek_key : Sched.ctx -> via:Word.t -> int * Heap.validity

val aux_get : Sched.ctx -> via:Word.t -> field:int -> Word.t * Heap.validity
val aux_set : Sched.ctx -> via:Word.t -> field:int -> Word.t -> unit

val aux_cas :
  Sched.ctx -> via:Word.t -> field:int ->
  expected:Word.t -> desired:Word.t -> bool

val fence : Sched.ctx -> ?event:Event.t -> unit -> unit
(** One scheduling step with no heap access; used by schemes when they
    mutate their own shared metadata (hazard slots, epoch announcements)
    so the mutation is an interleaving point. [event] is emitted inside
    the step. *)

val validity : Sched.ctx -> Word.t -> Heap.validity
(** Free introspection (not a step): schemes may not branch on this to
    gain magical safety — it exists for monitors and assertions in tests. *)

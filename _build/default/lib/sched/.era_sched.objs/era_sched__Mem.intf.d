lib/sched/mem.mli: Era_sim Event Heap Sched Word

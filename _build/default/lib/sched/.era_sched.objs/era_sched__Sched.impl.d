lib/sched/sched.ml: Array Effect Era_sim Fmt Fun List

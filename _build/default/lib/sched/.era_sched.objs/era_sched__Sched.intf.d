lib/sched/sched.mli: Era_sim

lib/sched/mem.ml: Era_sim Heap Monitor Sched

open Era_sim

let alloc (ctx : Sched.ctx) ~key =
  Sched.yield ctx;
  Heap.alloc ctx.heap ~tid:ctx.tid ~key

let alloc_sentinel (ctx : Sched.ctx) ~key =
  Sched.yield ctx;
  Heap.alloc_sentinel ctx.heap ~tid:ctx.tid ~key

let retire (ctx : Sched.ctx) w =
  Sched.yield ctx;
  Heap.retire ctx.heap ~tid:ctx.tid w

let reclaim (ctx : Sched.ctx) w =
  Sched.yield ctx;
  Heap.reclaim ctx.heap ~tid:ctx.tid w

let read (ctx : Sched.ctx) ~via ~field =
  Sched.yield ctx;
  Heap.read_checked ctx.heap ~tid:ctx.tid ~via ~field

let read_key (ctx : Sched.ctx) ~via =
  Sched.yield ctx;
  Heap.read_key_checked ctx.heap ~tid:ctx.tid ~via

let write (ctx : Sched.ctx) ~via ~field value =
  Sched.yield ctx;
  Heap.write_checked ctx.heap ~tid:ctx.tid ~via ~field value

let cas (ctx : Sched.ctx) ~via ~field ~expected ~desired =
  Sched.yield ctx;
  Heap.cas_checked ctx.heap ~tid:ctx.tid ~via ~field ~expected ~desired

let cas_identity (ctx : Sched.ctx) ~via ~field ~expected ~desired =
  Sched.yield ctx;
  Heap.cas_identity ctx.heap ~tid:ctx.tid ~via ~field ~expected ~desired

let peek (ctx : Sched.ctx) ~via ~field =
  Sched.yield ctx;
  Heap.peek ctx.heap ~tid:ctx.tid ~via ~field

let peek_key (ctx : Sched.ctx) ~via =
  Sched.yield ctx;
  Heap.peek_key ctx.heap ~tid:ctx.tid ~via

let aux_get (ctx : Sched.ctx) ~via ~field =
  Sched.yield ctx;
  Heap.aux_get ctx.heap ~tid:ctx.tid ~via ~field

let aux_set (ctx : Sched.ctx) ~via ~field value =
  Sched.yield ctx;
  Heap.aux_set ctx.heap ~tid:ctx.tid ~via ~field value

let aux_cas (ctx : Sched.ctx) ~via ~field ~expected ~desired =
  Sched.yield ctx;
  Heap.aux_cas ctx.heap ~tid:ctx.tid ~via ~field ~expected ~desired

let fence (ctx : Sched.ctx) ?event () =
  Sched.yield ctx;
  match event with
  | Some ev -> Monitor.emit (Heap.monitor ctx.heap) ev
  | None -> ()

let validity (ctx : Sched.ctx) w = Heap.validity ctx.heap w

lib/workload/workload.mli: Era_sets Era_sim

lib/workload/workload.ml: Array Era_sets Era_sim Float Hashtbl List

(** Experiment E7: re-deriving Appendix D — the data structures in this
    library obey the access-aware read/write-phase discipline of
    Appendix C.

    Each structure is integrated with the {!Era_smr.Phase_audit} scheme,
    which tracks j-permittedness of every dereference at run time, and
    driven through randomized concurrent executions. Zero discipline
    violations across the runs is the empirical counterpart of the
    paper's by-induction proof that Harris's list is access-aware. *)

type report = {
  structure : Applicability.structure;
  runs : int;
  total_ops : int;
  discipline_violations : (string * int) list;
}

val clean : report -> bool

val audit :
  ?runs:int -> ?threads:int -> ?ops_per_thread:int -> ?seed:int ->
  Applicability.structure -> report

val audit_all : ?runs:int -> ?seed:int -> unit -> report list

val negative_control : unit -> (string * int) list
(** A deliberately undisciplined client (it caches a pointer across a
    phase boundary and dereferences it in the next read phase, and issues
    a CAS from a read phase); returns the violations the auditor catches —
    must be non-empty, or the auditor itself is broken. *)

val pp_report : Format.formatter -> report -> unit

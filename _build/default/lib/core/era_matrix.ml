type row = {
  scheme : string;
  easy : bool;
  easy_failures : string list;
  robustness : Robustness.clazz;
  churn_slope : float;
  size_slope : float;
  widely_applicable : bool;
  inapplicable_to : string list;
}

let compute ?fuzz_runs ?churn_points ?size_points ?seed () =
  List.map
    (fun ((module S : Era_smr.Smr_intf.S) as scheme) ->
      let easy, easy_failures =
        Era_smr.Integration.easily_integrated S.integration
      in
      let rob = Robustness.classify ?churn_points ?size_points scheme in
      let verdicts =
        List.map
          (fun st -> (st, Applicability.run ?fuzz_runs ?seed scheme st))
          Applicability.structures
      in
      let inapplicable_to =
        List.filter_map
          (fun (st, v) ->
            if Applicability.applicable v then None
            else Some (Applicability.structure_name st))
          verdicts
      in
      {
        scheme = S.name;
        easy;
        easy_failures;
        robustness = rob.Robustness.clazz;
        churn_slope = rob.Robustness.churn_slope;
        size_slope = rob.Robustness.size_slope;
        widely_applicable = inapplicable_to = [];
        inapplicable_to;
      })
    Era_smr.Registry.all

let has_r row =
  match row.robustness with
  | Robustness.Robust | Robustness.Weakly_robust -> true
  | Robustness.Not_robust -> false

let properties_held row =
  (if row.easy then 1 else 0)
  + (if has_r row then 1 else 0)
  + if row.widely_applicable then 1 else 0

let theorem_holds rows =
  List.for_all
    (fun row -> not (row.easy && has_r row && row.widely_applicable))
    rows

let pp_row fmt r =
  Fmt.pf fmt "%-6s | E=%-5b | R=%-14s | A=%-5b | %d/3%s" r.scheme r.easy
    (Robustness.clazz_name r.robustness)
    r.widely_applicable (properties_held r)
    (match r.inapplicable_to with
    | [] -> ""
    | l -> "  (refuted on: " ^ String.concat ", " l ^ ")")

let pp_table fmt rows =
  Fmt.pf fmt "scheme | easy  | robustness     | wide  | ERA count@.";
  Fmt.pf fmt "-------+-------+----------------+-------+----------@.";
  List.iter (fun r -> Fmt.pf fmt "%a@." pp_row r) rows;
  Fmt.pf fmt "Theorem 6.1 (no scheme has all three): %s@."
    (if theorem_holds rows then "HOLDS" else "VIOLATED")

open Era_sim
module Sched = Era_sched.Sched
module Workload = Era_workload.Workload
module Audit = Era_smr.Phase_audit

type report = {
  structure : Applicability.structure;
  runs : int;
  total_ops : int;
  discipline_violations : (string * int) list;
}

let clean r = r.discipline_violations = []

let audit ?(runs = 10) ?(threads = 3) ?(ops_per_thread = 40) ?(seed = 11)
    structure =
  let violations = Hashtbl.create 8 in
  let total_ops = ref 0 in
  for i = 0 to runs - 1 do
    let mon = Monitor.create ~mode:`Record ~trace:false () in
    let heap = Heap.create mon in
    let sched =
      Sched.create ~nthreads:threads
        (Sched.Random (Rng.create (seed + (i * 613))))
        heap
    in
    let ext = Sched.external_ctx sched ~tid:0 in
    let g = Audit.create heap ~nthreads:threads in
    let keys = Workload.Uniform 6 in
    let worker =
      match structure with
      | Applicability.Harris ->
        let module L = Era_sets.Harris_list.Make (Audit) in
        let dl = L.create ext g in
        fun tid (ctx : Sched.ctx) ->
          Workload.run_set_ops
            (L.ops (L.handle dl ctx) ~record:false)
            (Rng.create ((seed * 31) + tid))
            ~ops:ops_per_thread ~keys ~mix:Workload.balanced
      | Applicability.Michael ->
        let module L = Era_sets.Michael_list.Make (Audit) in
        let dl = L.create ext g in
        fun tid ctx ->
          Workload.run_set_ops
            (L.ops (L.handle dl ctx) ~record:false)
            (Rng.create ((seed * 31) + tid))
            ~ops:ops_per_thread ~keys ~mix:Workload.balanced
      | Applicability.Hash ->
        let module H = Era_sets.Hash_set.Make (Audit) in
        let hs = H.create ~nbuckets:4 ext g in
        fun tid ctx ->
          Workload.run_set_ops
            (H.ops (H.handle hs ctx) ~record:false)
            (Rng.create ((seed * 31) + tid))
            ~ops:ops_per_thread ~keys ~mix:Workload.balanced
      | Applicability.Hash_michael ->
        let module H = Era_sets.Hash_set.Make_michael (Audit) in
        let hs = H.create ~nbuckets:4 ext g in
        fun tid ctx ->
          Workload.run_set_ops
            (H.ops (H.handle hs ctx) ~record:false)
            (Rng.create ((seed * 31) + tid))
            ~ops:ops_per_thread ~keys ~mix:Workload.balanced
      | Applicability.Stack ->
        let module T = Era_sets.Treiber_stack.Make (Audit) in
        let st = T.create ext g in
        fun tid ctx ->
          Workload.run_stack_ops
            (T.ops (T.handle st ctx) ~record:false)
            (Rng.create ((seed * 31) + tid))
            ~ops:ops_per_thread ~keys
      | Applicability.Queue ->
        let module Q = Era_sets.Ms_queue.Make (Audit) in
        let q = Q.create ext g in
        fun tid ctx ->
          Workload.run_queue_ops
            (Q.ops (Q.handle q ctx) ~record:false)
            (Rng.create ((seed * 31) + tid))
            ~ops:ops_per_thread ~keys
    in
    for tid = 0 to threads - 1 do
      Sched.spawn sched ~tid (fun ctx -> worker tid ctx)
    done;
    ignore (Sched.run sched);
    total_ops := !total_ops + (threads * ops_per_thread);
    List.iter
      (fun (msg, n) ->
        let prev = Option.value (Hashtbl.find_opt violations msg) ~default:0 in
        Hashtbl.replace violations msg (prev + n))
      (Audit.discipline_violations g)
  done;
  {
    structure;
    runs;
    total_ops = !total_ops;
    discipline_violations =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) violations []
      |> List.sort compare;
  }

let audit_all ?runs ?seed () =
  List.map (fun st -> audit ?runs ?seed st) Applicability.structures

(* A client that violates the discipline on purpose: it reads a pointer
   in one read phase, crosses a phase boundary, dereferences the stale
   permission in the next read phase, and CASes from a read phase. *)
let negative_control () =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Heap.create mon in
  let sched = Sched.create ~nthreads:1 Sched.Round_robin heap in
  let ext = Sched.external_ctx sched ~tid:0 in
  let g = Audit.create heap ~nthreads:1 in
  let t = Audit.thread g ext in
  let anchor = Era_sched.Mem.alloc_sentinel ext ~key:0 in
  Audit.begin_op t;
  let n1 = Audit.alloc t ~key:1 in
  Audit.enter_write_phase t ~reserve:[];
  ignore (Audit.cas t ~via:anchor ~field:0 ~expected:Word.Null ~desired:n1);
  Audit.end_op t;
  Audit.begin_op t;
  Audit.enter_read_phase t;
  let p = Audit.read t ~via:anchor ~field:0 in
  Audit.enter_read_phase t;  (* phase boundary drops p's permission *)
  ignore (Audit.read t ~via:p ~field:0);  (* stale-permission dereference *)
  ignore (Audit.cas t ~via:anchor ~field:0 ~expected:p ~desired:p);
  (* CAS from a read phase *)
  Audit.end_op t;
  Audit.discipline_violations g

let pp_report fmt r =
  if clean r then
    Fmt.pf fmt "%-13s access-aware discipline CLEAN over %d ops"
      (Applicability.structure_name r.structure)
      r.total_ops
  else
    Fmt.pf fmt "%-13s discipline VIOLATED: %a"
      (Applicability.structure_name r.structure)
      Fmt.(list ~sep:semi (pair ~sep:(Fmt.any " x") string int))
      r.discipline_violations

lib/core/era_matrix.mli: Format Robustness

lib/core/figure1.mli: Era_sim Era_smr Format

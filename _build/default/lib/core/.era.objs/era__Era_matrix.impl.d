lib/core/era_matrix.ml: Applicability Era_smr Fmt List Robustness String

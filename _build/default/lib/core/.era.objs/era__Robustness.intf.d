lib/core/robustness.mli: Era_smr Format

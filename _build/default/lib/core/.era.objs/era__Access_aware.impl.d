lib/core/access_aware.ml: Applicability Era_sched Era_sets Era_sim Era_smr Era_workload Fmt Hashtbl Heap List Monitor Option Rng Word

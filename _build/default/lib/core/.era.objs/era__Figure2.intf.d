lib/core/figure2.mli: Era_sim Era_smr Format

lib/core/figure1.ml: Era_sched Era_sets Era_sim Era_smr Era_workload Event Fmt Heap List Monitor Printexc

lib/core/robustness.ml: Era_sched Era_sets Era_sim Era_smr Event Figure1 Fmt Heap List Monitor

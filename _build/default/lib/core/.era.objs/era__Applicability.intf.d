lib/core/applicability.mli: Era_sim Era_smr Format

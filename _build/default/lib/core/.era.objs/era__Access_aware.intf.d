lib/core/access_aware.mli: Applicability Format

lib/core/ablation.ml: Era_sched Era_sets Era_sim Era_smr Event Figure1 Figure2 Fmt Heap List Monitor Robustness

lib/core/ablation.mli: Format

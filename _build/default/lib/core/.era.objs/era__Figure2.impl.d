lib/core/figure2.ml: Era_sched Era_sets Era_sim Era_smr Event Fmt Heap List Monitor Printexc Word

lib/core/applicability.ml: Era_history Era_sched Era_sets Era_sim Era_smr Era_workload Event Figure1 Figure2 Fmt Fun Heap List Monitor Rng

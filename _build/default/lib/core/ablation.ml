open Era_sim
module Sched = Era_sched.Sched

type hp_row = {
  threshold : int;
  slots : int;
  max_backlog : int;
  steps : int;
}

type ibr_row = {
  allocs_per_epoch : int;
  figure1 : string;
  figure2 : string;
  size_backlog : int;
}

(* Stalled reader + full-range churn on Michael's list (HP-safe). *)
let michael_stall_run (module S : Era_smr.Smr_intf.S) ~size =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Heap.create mon in
  let node1_addr = ref (-1) in
  let reader_at_node1 = function
    | Event.Access { tid = 0; addr; kind = Event.Read; _ } ->
      addr = !node1_addr
    | _ -> false
  in
  let script =
    Sched.Script
      [
        Sched.Run_until (0, reader_at_node1);
        Sched.Finish 1;
        Sched.Finish_bounded (0, (size * 512) + 100_000);
      ]
  in
  let sched = Sched.create ~nthreads:2 script heap in
  let module L = Era_sets.Michael_list.Make (S) in
  let g = S.create heap ~nthreads:2 in
  let ext = Sched.external_ctx sched ~tid:1 in
  let dl = L.create ext g in
  let h_setup = L.handle dl ext in
  for k = 1 to size do
    ignore (L.insert h_setup k)
  done;
  (node1_addr :=
     match
       List.find_opt (fun (_, _, key) -> key = 1) (Heap.live_nodes heap)
     with
     | Some (addr, _, _) -> addr
     | None -> failwith "ablation: node 1 missing");
  Sched.spawn sched ~tid:0 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.contains h size));
  Sched.spawn sched ~tid:1 (fun ctx ->
      let h = L.handle dl ctx in
      for k = 2 to size do
        ignore (L.delete h k);
        ignore (L.insert h k)
      done);
  ignore (Sched.run sched);
  (Monitor.max_retired mon, Monitor.time mon)

let hp_sweep ?(thresholds = [ 2; 8; 32; 128 ]) ?(slots = 3) ?(size = 128) ()
    =
  List.map
    (fun threshold ->
      let module H =
        Era_smr.Hp.Make (struct
          let slots_per_thread = slots
          let scan_threshold = threshold
        end)
      in
      let max_backlog, steps = michael_stall_run (module H) ~size in
      { threshold; slots; max_backlog; steps })
    thresholds

let outcome_name1 (r : Figure1.result) =
  match r.Figure1.outcome with
  | Figure1.Robustness_violated _ -> "robustness-violated"
  | Figure1.Safety_violated _ -> "safety-violated"
  | Figure1.Survived _ -> "survived"

let outcome_name2 (r : Figure2.result) =
  match r.Figure2.outcome with
  | Figure2.Unsafe _ -> "unsafe"
  | Figure2.Safe_completion _ -> "safe"

let ibr_sweep ?(rates = [ 1; 4; 16; 64 ]) () =
  List.map
    (fun rate ->
      let module I =
        Era_smr.Ibr.Make (struct
          let allocs_per_epoch = rate
          let scan_threshold = 8
        end)
      in
      let f1 = Figure1.run ~rounds:512 (module I) in
      let f2 = Figure2.run (module I) in
      let size_backlog =
        Robustness.size_sweep_point (module I) ~size:128
      in
      {
        allocs_per_epoch = rate;
        figure1 = outcome_name1 f1;
        figure2 = outcome_name2 f2;
        size_backlog;
      })
    rates

let pp_hp_row fmt r =
  Fmt.pf fmt "threshold=%-4d slots=%d | max backlog %-4d | steps %d"
    r.threshold r.slots r.max_backlog r.steps

let pp_ibr_row fmt r =
  Fmt.pf fmt "epoch every %-3d allocs | figure1 %-20s | figure2 %-7s | \
              stalled-reader backlog %d"
    r.allocs_per_epoch r.figure1 r.figure2 r.size_backlog

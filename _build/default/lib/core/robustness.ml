open Era_sim
module Sched = Era_sched.Sched

type clazz =
  | Robust
  | Weakly_robust
  | Not_robust

type measurement = {
  scheme : string;
  churn_series : (int * int) list;
  size_series : (int * int) list;
  churn_slope : float;
  size_slope : float;
  clazz : clazz;
}

let clazz_name = function
  | Robust -> "robust"
  | Weakly_robust -> "weakly robust"
  | Not_robust -> "not robust"

(* One churn-sweep point: the Figure 1 workload. *)
let churn_point scheme ~rounds =
  let r = Figure1.run ~rounds scheme in
  match r.Figure1.outcome with
  | Figure1.Robustness_violated { retired_end; _ } -> retired_end
  | Figure1.Safety_violated _ | Figure1.Survived _ -> (
    (* Retired backlog at the end of the churn, from the series. *)
    match List.rev r.Figure1.series with (_, v) :: _ -> v | [] -> 0)

(* One size-sweep point: pre-fill keys 1..size, stall a reader holding a
   pointer to node 1, then have a worker delete and re-insert every key
   once. The stalled reader pins whatever the scheme's granularity pins. *)
let size_sweep_point (module S : Era_smr.Smr_intf.S) ~size =
  let mon = Monitor.create ~mode:`Record ~trace:false () in
  let heap = Heap.create mon in
  let module L = Era_sets.Harris_list.Make (S) in
  let g = S.create heap ~nthreads:2 in
  let node1_addr = ref (-1) in
  let reader_at_node1 = function
    | Event.Access { tid = 0; addr; kind = Event.Read; _ } ->
      addr = !node1_addr
    | _ -> false
  in
  let script =
    Sched.Script
      [
        Sched.Run_until (0, reader_at_node1);
        Sched.Finish 1;
        Sched.Finish_bounded (0, (size * 512) + 100_000);
      ]
  in
  let sched = Sched.create ~nthreads:2 script heap in
  let ext = Sched.external_ctx sched ~tid:1 in
  let dl = L.create ext g in
  let h_setup = L.handle dl ext in
  for k = 1 to size do
    ignore (L.insert h_setup k)
  done;
  (node1_addr :=
     match
       List.find_opt (fun (_, _, key) -> key = 1) (Heap.live_nodes heap)
     with
     | Some (addr, _, _) -> addr
     | None -> failwith "size_sweep: node 1 missing");
  Sched.spawn sched ~tid:0 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.contains h size));
  Sched.spawn sched ~tid:1 (fun ctx ->
      let h = L.handle dl ctx in
      for k = 2 to size do
        ignore (L.delete h k);
        ignore (L.insert h k)
      done);
  ignore (Sched.run sched);
  Monitor.max_retired mon

let slope points =
  match points, List.rev points with
  | (x0, y0) :: _, (x1, y1) :: _ when x1 > x0 ->
    float_of_int (y1 - y0) /. float_of_int (x1 - x0)
  | _ -> 0.0

let default_churn = [ 128; 256; 512; 1024 ]
let default_sizes = [ 32; 64; 128; 256 ]

let classify ?(churn_points = default_churn) ?(size_points = default_sizes)
    ((module S : Era_smr.Smr_intf.S) as scheme) =
  let churn_series =
    List.map (fun m -> (m, churn_point scheme ~rounds:m)) churn_points
  in
  let size_series =
    List.map (fun s -> (s, size_sweep_point (module S) ~size:s)) size_points
  in
  let churn_slope = slope churn_series in
  let size_slope = slope size_series in
  let clazz =
    if churn_slope > 0.1 then Not_robust
    else if size_slope > 0.25 then Weakly_robust
    else Robust
  in
  { scheme = S.name; churn_series; size_series; churn_slope; size_slope;
    clazz }

let classify_all ?churn_points ?size_points () =
  List.map (classify ?churn_points ?size_points) Era_smr.Registry.all

let pp_measurement fmt m =
  Fmt.pf fmt "%-6s %-14s | churn slope %.3f %a | size slope %.3f %a" m.scheme
    (clazz_name m.clazz) m.churn_slope
    Fmt.(
      brackets (list ~sep:comma (pair ~sep:(Fmt.any ":") int int)))
    m.churn_series m.size_slope
    Fmt.(
      brackets (list ~sep:comma (pair ~sep:(Fmt.any ":") int int)))
    m.size_series

(** Empirical robustness classification (Definitions 5.1 and 5.2).

    Both definitions bound the retired backlog by [f_E(i) * N]; they
    differ in how [f_E] may grow with [max_active]: robustness needs
    [f_E = o(max_active)], weak robustness allows any polynomial, and
    schemes like EBR satisfy neither (the backlog grows with the
    {e execution length} even while [max_active] is constant).

    The classifier separates the three cases with two sweeps, each with a
    thread stalled mid-traversal (the failed/delayed thread both
    definitions quantify over):

    - {b churn sweep}: [max_active] pinned at ~4 (the Figure 1 workload)
      while the number of operations M grows. A backlog growing with M
      here is not even weakly robust.
    - {b size sweep}: fixed small churn over a pre-filled list of size S,
      with S growing. A backlog growing with S (but not M) is bounded by
      a function of [max_active] — weakly robust, but not robust.
    - A backlog flat in both is (empirically) a constant bound — robust.

    Expected: none/EBR not robust; IBR/HE weakly robust (era-granular
    pinning scales with the structure size); HP/VBR/NBR robust. *)

type clazz =
  | Robust
  | Weakly_robust
  | Not_robust

type measurement = {
  scheme : string;
  churn_series : (int * int) list;  (** (M, retired backlog at end) *)
  size_series : (int * int) list;  (** (S, peak retired backlog) *)
  churn_slope : float;
  size_slope : float;
  clazz : clazz;
}

val clazz_name : clazz -> string

val classify :
  ?churn_points:int list -> ?size_points:int list ->
  Era_smr.Registry.scheme -> measurement
(** Defaults: churn 128/256/512/1024 rounds; sizes 32/64/128/256. *)

val classify_all :
  ?churn_points:int list -> ?size_points:int list -> unit ->
  measurement list

val size_sweep_point : Era_smr.Registry.scheme -> size:int -> int
(** One size-sweep run; returns the peak retired backlog (exposed for
    tests). *)

val pp_measurement : Format.formatter -> measurement -> unit

(** Experiment E6: the ERA theorem itself, as an empirically-derived
    matrix.

    For every scheme in the registry, combine the three verdicts:
    - {b E}: the static Definition 5.3 audit of its integration spec;
    - {b R}: the measured robustness class (Definitions 5.1/5.2);
    - {b A}: the measured wide-applicability verdict (Definition 5.6).

    Theorem 6.1 predicts no row can score all three — and more strongly
    (the paper proves the weak-robustness variant), no scheme can be
    easily integrated, widely applicable, and even {e weakly} robust.
    {!theorem_holds} checks exactly that. *)

type row = {
  scheme : string;
  easy : bool;
  easy_failures : string list;
  robustness : Robustness.clazz;
  churn_slope : float;
  size_slope : float;
  widely_applicable : bool;
  inapplicable_to : string list;  (** structures with refutations *)
}

val compute :
  ?fuzz_runs:int -> ?churn_points:int list -> ?size_points:int list ->
  ?seed:int -> unit -> row list

val theorem_holds : row list -> bool
(** No row has easy && (robust or weakly robust) && widely applicable. *)

val properties_held : row -> int
(** How many of the three ERA properties this scheme provides (counting
    weak robustness as the R property, per the strong form of the
    theorem). *)

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit

(** Ablations over scheme tuning parameters.

    Two dials the paper's related-work section discusses:

    - {b HP scan threshold / slot count} — the space-vs-time trade-off of
      Braginsky et al. [6]: a larger retire-list threshold amortizes
      scans (fewer steps) at the cost of a proportionally larger bounded
      backlog. Measured on Michael's list (where HP is applicable) with a
      stalled reader.
    - {b IBR epoch granularity} — epochs advancing every k allocations:
      coarser epochs pin more nodes per reservation (worse backlog) and
      change {e which} executions defeat the scheme (the stock Figure 2
      run no longer does for large k), but not {e whether} one exists:
      the Figure 1 execution, which retires arbitrarily many nodes,
      defeats every granularity — the theorem is not a tuning problem. *)

type hp_row = {
  threshold : int;
  slots : int;
  max_backlog : int;  (** bounded by ~threshold + slots *)
  steps : int;  (** total simulated steps: scan work shows up here *)
}

val hp_sweep :
  ?thresholds:int list -> ?slots:int -> ?size:int -> unit -> hp_row list
(** Defaults: thresholds [2; 8; 32; 128], 3 slots, list size 128. *)

type ibr_row = {
  allocs_per_epoch : int;
  figure1 : string;  (** outcome of the Figure 1 execution *)
  figure2 : string;  (** outcome of the Figure 2 execution *)
  size_backlog : int;  (** stalled-reader backlog on a 128-key list *)
}

val ibr_sweep : ?rates:int list -> unit -> ibr_row list
(** Defaults: epoch every [1; 4; 16; 64] allocations. *)

val pp_hp_row : Format.formatter -> hp_row -> unit
val pp_ibr_row : Format.formatter -> ibr_row -> unit

open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

module Make (S : Era_smr.Smr_intf.S) = struct
  let next = 0  (* the single pointer field *)

  type t = {
    head : Word.t;
    tail : Word.t;
    scheme : S.t;
  }

  type h = {
    dl : t;
    s : S.tctx;
    ctx : Sched.ctx;
  }

  let create ctx scheme =
    let tail = Mem.alloc_sentinel ctx ~key:max_int in
    let head = Mem.alloc_sentinel ctx ~key:min_int in
    Mem.write ctx ~via:head ~field:next tail;
    { head; tail; scheme }

  let head_word t = t.head
  let tail_word t = t.tail
  let handle dl ctx = { dl; s = S.thread dl.scheme ctx; ctx }
  let tctx h = h.s

  let is_tail h w = Word.same_bits (Word.unmark w) h.dl.tail

  (* Lines 1-22. The traversal (read phase) walks over marked nodes
     without unlinking them; the write window then either returns the
     adjacent pair or unlinks the whole marked run with one CAS. *)
  let rec search h key =
    S.read_phase h.s (fun () -> search_body h key)

  and search_body h key =
    let first_next = S.read h.s ~via:h.dl.head ~field:next in
    (* Inner do-while: find left (last unmarked before right) and right
       (first unmarked node with key >= search key, or tail). *)
    let rec find t t_next left left_next =
      let left, left_next =
        if not (Word.is_marked t_next) then (t, t_next) else (left, left_next)
      in
      let t' = Word.unmark t_next in
      if is_tail h t' then (left, left_next, t')
      else
        let t'_next = S.read h.s ~via:t' ~field:next in
        if Word.is_marked t'_next || S.read_key h.s ~via:t' < key then
          find t' t'_next left left_next
        else (left, left_next, t')
    in
    let left, left_next, right =
      find h.dl.head first_next h.dl.head first_next
    in
    (* Lines 14-22: check adjacency, else unlink the marked run. *)
    if Word.same_bits left_next right then begin
      S.enter_write_phase h.s ~reserve:[ left; right ];
      if (not (is_tail h right)) && Word.is_marked (S.read h.s ~via:right ~field:next)
      then search h key
      else (left, right)
    end
    else begin
      S.enter_write_phase h.s ~reserve:[ left; right ];
      if S.cas h.s ~via:left ~field:next ~expected:left_next ~desired:right
      then
        if (not (is_tail h right))
           && Word.is_marked (S.read h.s ~via:right ~field:next)
        then search h key
        else (left, right)
      else search h key
    end

  (* Lines 27-38. *)
  let insert h key =
    if key = min_int || key = max_int then invalid_arg "Harris_list: sentinel key";
    S.with_op h.s (fun () ->
        let new_node = S.alloc h.s ~key in
        let rec loop () =
          let pred, curr = search h key in
          if (not (is_tail h curr)) && S.read_key h.s ~via:curr = key then begin
            S.retire h.s new_node;  (* line 34 *)
            false
          end
          else begin
            S.write h.s ~via:new_node ~field:next (Word.unmark curr);
            if S.cas h.s ~via:pred ~field:next ~expected:curr ~desired:new_node
            then true
            else loop ()
          end
        in
        loop ())

  (* Lines 39-53. *)
  let delete h key =
    S.with_op h.s (fun () ->
        let rec loop () =
          let pred, curr = search h key in
          if is_tail h curr || S.read_key h.s ~via:curr <> key then false
          else begin
            let succ = S.read h.s ~via:curr ~field:next in
            if Word.is_marked succ then loop ()  (* line 46 *)
            else if
              not
                (S.cas h.s ~via:curr ~field:next ~expected:succ
                   ~desired:(Word.mark succ))
            then loop ()  (* line 49 *)
            else begin
              (if
                 not
                   (S.cas h.s ~via:pred ~field:next ~expected:curr
                      ~desired:succ)
               then
                 (* line 51: let search unlink the marked node *)
                 ignore (search h key));
              S.retire h.s curr;  (* line 52 *)
              true
            end
          end
        in
        loop ())

  (* Lines 23-26. *)
  let contains h key =
    S.with_op h.s (fun () ->
        let _, curr = search h key in
        if is_tail h curr then false
        else
          (not (Word.is_marked (S.read h.s ~via:curr ~field:next)))
          && S.read_key h.s ~via:curr = key)

  let ops h ~record : Set_intf.ops =
    if record then
      {
        insert =
          (fun k ->
            Set_intf.record h.ctx ~name:"insert" [ k ] (fun () -> insert h k));
        delete =
          (fun k ->
            Set_intf.record h.ctx ~name:"delete" [ k ] (fun () -> delete h k));
        contains =
          (fun k ->
            Set_intf.record h.ctx ~name:"contains" [ k ] (fun () ->
                contains h k));
        quiesce = (fun () -> S.quiesce h.s);
      }
    else
      {
        insert = (fun k -> insert h k);
        delete = (fun k -> delete h k);
        contains = (fun k -> contains h k);
        quiesce = (fun () -> S.quiesce h.s);
      }

  let to_list h =
    S.with_op h.s @@ fun () ->
    S.read_phase h.s (fun () ->
        let rec walk w acc =
          if is_tail h w then List.rev acc
          else
            let w = Word.unmark w in
            let nxt = S.read h.s ~via:w ~field:next in
            let acc =
              if Word.is_marked nxt then acc
              else S.read_key h.s ~via:w :: acc
            in
            walk nxt acc
        in
        walk (S.read h.s ~via:h.dl.head ~field:next) [])
end

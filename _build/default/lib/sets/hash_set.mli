(** Fixed-size hash sets: an array of independent lock-free list buckets
    (the lock-free hash table of Michael [30]).

    Two flavours, differing only in the bucket algorithm — the practical
    choice the paper's Section 6 discusses:

    - {!Make}: {b Harris} buckets. Fast traversals over marked chains,
      but reclamation-hostile: it inherits the Figure 1/2 refutations, so
      HP/HE/IBR are not applicable to it.
    - {!Make_michael}: {b Michael} buckets. HP-compatible (every followed
      pointer validated from a reachable unmarked source), at the cost of
      eager unlinking and head-restarts under churn. *)

module Make (S : Era_smr.Smr_intf.S) : sig
  type t

  val create : ?nbuckets:int -> Era_sched.Sched.ctx -> S.t -> t
  (** Default 8 buckets. *)

  type h

  val handle : t -> Era_sched.Sched.ctx -> h
  val insert : h -> int -> bool
  val delete : h -> int -> bool
  val contains : h -> int -> bool
  val ops : h -> record:bool -> Set_intf.ops
  val to_list : h -> int list
end

module Make_michael (S : Era_smr.Smr_intf.S) : sig
  type t

  val create : ?nbuckets:int -> Era_sched.Sched.ctx -> S.t -> t

  type h

  val handle : t -> Era_sched.Sched.ctx -> h
  val insert : h -> int -> bool
  val delete : h -> int -> bool
  val contains : h -> int -> bool
  val ops : h -> record:bool -> Set_intf.ops
  val to_list : h -> int list
end

(** Treiber's lock-free stack, functorized over the reclamation scheme.

    The anchor is a sentinel cell whose single pointer field is the top
    of stack. Pop retires the removed node, making the stack the classic
    ABA showcase: with address-reusing reclamation and no protection, a
    popped-and-reallocated node at the same address lets a stale CAS
    succeed. Schemes prevent this differently (EBR by quiescence, HP by
    protection, VBR by identity-comparing CAS), and the test suite checks
    them all. *)

type stack_ops = {
  push : int -> unit;
  pop : unit -> int option;
  quiesce : unit -> unit;
}

module Make (S : Era_smr.Smr_intf.S) : sig
  type t

  val create : Era_sched.Sched.ctx -> S.t -> t
  val anchor_word : t -> Era_sim.Word.t

  type h

  val handle : t -> Era_sched.Sched.ctx -> h
  val push : h -> int -> unit
  val pop : h -> int option
  val ops : h -> record:bool -> stack_ops
  val to_list : h -> int list
  (** Top-first contents (quiescent helper). *)
end

module Sched = Era_sched.Sched

(* The bucket implementation is a parameter so the same hash table comes
   in a Harris-bucket flavour (reclamation-hostile, inherits Figure 1/2)
   and a Michael-bucket flavour (HP-compatible) — the practical choice
   Section 6 of the paper discusses. *)
module Make_over
    (S : Era_smr.Smr_intf.S) (L : sig
      type t
      type h

      val create : Sched.ctx -> S.t -> t
      val handle : t -> Sched.ctx -> h
      val tctx : h -> S.tctx
      val insert : h -> int -> bool
      val delete : h -> int -> bool
      val contains : h -> int -> bool
      val to_list : h -> int list
    end) =
struct
  type t = {
    buckets : L.t array;
    scheme : S.t;
  }

  type h = {
    hs : t;
    handles : L.h array;
    ctx : Sched.ctx;
  }

  let create ?(nbuckets = 8) ctx scheme =
    if nbuckets <= 0 then invalid_arg "Hash_set.create: nbuckets";
    { buckets = Array.init nbuckets (fun _ -> L.create ctx scheme); scheme }

  let handle hs ctx =
    { hs; handles = Array.map (fun b -> L.handle b ctx) hs.buckets; ctx }

  let bucket h key = h.handles.(abs (key mod Array.length h.handles))

  let insert h key = L.insert (bucket h key) key
  let delete h key = L.delete (bucket h key) key
  let contains h key = L.contains (bucket h key) key

  let ops h ~record : Set_intf.ops =
    let quiesce () = S.quiesce (L.tctx h.handles.(0)) in
    if record then
      {
        insert =
          (fun k ->
            Set_intf.record h.ctx ~name:"insert" [ k ] (fun () -> insert h k));
        delete =
          (fun k ->
            Set_intf.record h.ctx ~name:"delete" [ k ] (fun () -> delete h k));
        contains =
          (fun k ->
            Set_intf.record h.ctx ~name:"contains" [ k ] (fun () ->
                contains h k));
        quiesce;
      }
    else
      {
        insert = (fun k -> insert h k);
        delete = (fun k -> delete h k);
        contains = (fun k -> contains h k);
        quiesce;
      }

  let to_list h =
    Array.to_list h.handles |> List.concat_map L.to_list |> List.sort compare
end

module Make (S : Era_smr.Smr_intf.S) = Make_over (S) (Harris_list.Make (S))

module Make_michael (S : Era_smr.Smr_intf.S) =
  Make_over (S) (Michael_list.Make (S))

open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

type stack_ops = {
  push : int -> unit;
  pop : unit -> int option;
  quiesce : unit -> unit;
}

module Make (S : Era_smr.Smr_intf.S) = struct
  let top = 0  (* anchor field *)
  let next = 0  (* node field *)

  type t = {
    anchor : Word.t;
    scheme : S.t;
  }

  type h = {
    st : t;
    s : S.tctx;
    ctx : Sched.ctx;
  }

  let create ctx scheme =
    let anchor = Mem.alloc_sentinel ctx ~key:0 in
    { anchor; scheme }

  let anchor_word t = t.anchor
  let handle st ctx = { st; s = S.thread st.scheme ctx; ctx }

  (* Each attempt is one read-phase bracket ending in the write phase
     that performs the CAS, so phase-restarting schemes re-run exactly one
     attempt; [None] from the bracket means "CAS lost, try again". *)
  let push h v =
    S.with_op h.s (fun () ->
        let node = S.alloc h.s ~key:v in
        let rec loop () =
          let attempt =
            S.read_phase h.s (fun () ->
                let old_top = S.read h.s ~via:h.st.anchor ~field:top in
                S.write h.s ~via:node ~field:next old_top;
                S.enter_write_phase h.s ~reserve:[];
                if
                  S.cas h.s ~via:h.st.anchor ~field:top ~expected:old_top
                    ~desired:node
                then Some ()
                else None)
          in
          match attempt with
          | Some () -> ()
          | None -> loop ()
        in
        loop ())

  let pop h =
    S.with_op h.s (fun () ->
        let rec loop () =
          let attempt =
            S.read_phase h.s (fun () ->
                let old_top = S.read h.s ~via:h.st.anchor ~field:top in
                match old_top with
                | Word.Null -> Some None
                | Word.Int _ -> assert false
                | Word.Ptr _ ->
                  let nxt = S.read h.s ~via:old_top ~field:next in
                  S.enter_write_phase h.s ~reserve:[ old_top ];
                  if
                    S.cas h.s ~via:h.st.anchor ~field:top ~expected:old_top
                      ~desired:nxt
                  then begin
                    let v = S.read_key h.s ~via:old_top in
                    S.retire h.s old_top;
                    Some (Some v)
                  end
                  else None)
          in
          match attempt with
          | Some r -> r
          | None -> loop ()
        in
        loop ())

  let ops h ~record =
    if record then
      {
        push =
          (fun v ->
            Set_intf.record_unit h.ctx ~name:"push" [ v ] (fun () -> push h v));
        pop =
          (fun () -> Set_intf.record_int h.ctx ~name:"pop" [] (fun () -> pop h));
        quiesce = (fun () -> S.quiesce h.s);
      }
    else
      {
        push = (fun v -> push h v);
        pop = (fun () -> pop h);
        quiesce = (fun () -> S.quiesce h.s);
      }

  let to_list h =
    S.with_op h.s @@ fun () ->
    S.read_phase h.s (fun () ->
        let rec walk w acc =
          match w with
          | Word.Null -> List.rev acc
          | Word.Int _ -> assert false
          | Word.Ptr _ ->
            let v = S.read_key h.s ~via:w in
            walk (S.read h.s ~via:w ~field:next) (v :: acc)
        in
        walk (S.read h.s ~via:h.st.anchor ~field:top) [])
end

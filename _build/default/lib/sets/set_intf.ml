(** Uniform closure-based handles for the simulated data structures, so
    experiment drivers can treat every (structure × scheme) pair alike. *)

type ops = {
  insert : int -> bool;
  delete : int -> bool;
  contains : int -> bool;
  quiesce : unit -> unit;
      (** flush this thread's retire lists if eligible *)
}

(** Record an operation in the history (for linearizability checking). *)
let record ctx ~name args f =
  match
    Era_sched.Sched.run_op ctx
      { Era_sim.Event.name; args }
      (fun () -> Era_sim.Event.R_bool (f ()))
  with
  | Era_sim.Event.R_bool b -> b
  | Era_sim.Event.R_int _ | Era_sim.Event.R_unit -> assert false

let record_int ctx ~name args f =
  match
    Era_sched.Sched.run_op ctx
      { Era_sim.Event.name; args }
      (fun () -> Era_sim.Event.R_int (f ()))
  with
  | Era_sim.Event.R_int v -> v
  | Era_sim.Event.R_bool _ | Era_sim.Event.R_unit -> assert false

let record_unit ctx ~name args f =
  match
    Era_sched.Sched.run_op ctx
      { Era_sim.Event.name; args }
      (fun () ->
        f ();
        Era_sim.Event.R_unit)
  with
  | Era_sim.Event.R_unit -> ()
  | Era_sim.Event.R_bool _ | Era_sim.Event.R_int _ -> assert false

open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

module Make (S : Era_smr.Smr_intf.S) = struct
  let next = 0

  type t = {
    head : Word.t;
    tail : Word.t;
    scheme : S.t;
  }

  type h = {
    dl : t;
    s : S.tctx;
    ctx : Sched.ctx;
  }

  let create ctx scheme =
    let tail = Mem.alloc_sentinel ctx ~key:max_int in
    let head = Mem.alloc_sentinel ctx ~key:min_int in
    Mem.write ctx ~via:head ~field:next tail;
    { head; tail; scheme }

  let head_word t = t.head
  let handle dl ctx = { dl; s = S.thread dl.scheme ctx; ctx }
  let tctx h = h.s

  let is_tail h w = Word.same_bits (Word.unmark w) h.dl.tail

  (* Find the (pred, curr) window for [key], unlinking every marked node
     encountered before stepping over it. The unlink winner retires the
     node (it is the only thread that can have unlinked it). Restarts
     from the head when a CAS loses. *)
  let rec search h key =
    S.read_phase h.s (fun () -> search_body h key)

  and search_body h key =
    let rec walk pred curr =
      if is_tail h curr then (pred, curr)
      else
        let curr_next = S.read h.s ~via:curr ~field:next in
        if Word.is_marked curr_next then begin
          let succ = Word.unmark curr_next in
          S.enter_write_phase h.s ~reserve:[ pred; curr; succ ];
          if S.cas h.s ~via:pred ~field:next ~expected:curr ~desired:succ
          then begin
            S.retire h.s curr;
            (* Restart from the head: keeps the traversal cleanly divided
               into read phases that only dereference pointers obtained in
               the same phase (a conservative variant of Michael's
               continue-from-pred step; the native implementation keeps
               the original). *)
            search h key
          end
          else search h key  (* contention: restart from the head *)
        end
        else if S.read_key h.s ~via:curr < key then walk curr curr_next
        else (pred, curr)
    in
    let first = S.read h.s ~via:h.dl.head ~field:next in
    walk h.dl.head first

  let insert h key =
    if key = min_int || key = max_int then
      invalid_arg "Michael_list: sentinel key";
    S.with_op h.s (fun () ->
        let new_node = S.alloc h.s ~key in
        let rec loop () =
          let pred, curr = search h key in
          if (not (is_tail h curr)) && S.read_key h.s ~via:curr = key then begin
            S.retire h.s new_node;
            false
          end
          else begin
            S.write h.s ~via:new_node ~field:next (Word.unmark curr);
            S.enter_write_phase h.s ~reserve:[ pred; curr ];
            if S.cas h.s ~via:pred ~field:next ~expected:curr ~desired:new_node
            then true
            else loop ()
          end
        in
        loop ())

  let delete h key =
    S.with_op h.s (fun () ->
        let rec loop () =
          let pred, curr = search h key in
          if is_tail h curr || S.read_key h.s ~via:curr <> key then false
          else begin
            let succ = S.read h.s ~via:curr ~field:next in
            if Word.is_marked succ then loop ()
            else begin
              S.enter_write_phase h.s ~reserve:[ pred; curr ];
              if
                not
                  (S.cas h.s ~via:curr ~field:next ~expected:succ
                     ~desired:(Word.mark succ))
              then loop ()
              else begin
                (* Unlink winner retires; on failure the node stays
                   linked-but-marked and some traversal's unlink CAS will
                   win and retire it. *)
                if S.cas h.s ~via:pred ~field:next ~expected:curr ~desired:succ
                then S.retire h.s curr;
                true
              end
            end
          end
        in
        loop ())

  let contains h key =
    S.with_op h.s (fun () ->
        let _, curr = search h key in
        (not (is_tail h curr)) && S.read_key h.s ~via:curr = key)

  let ops h ~record : Set_intf.ops =
    if record then
      {
        insert =
          (fun k ->
            Set_intf.record h.ctx ~name:"insert" [ k ] (fun () -> insert h k));
        delete =
          (fun k ->
            Set_intf.record h.ctx ~name:"delete" [ k ] (fun () -> delete h k));
        contains =
          (fun k ->
            Set_intf.record h.ctx ~name:"contains" [ k ] (fun () ->
                contains h k));
        quiesce = (fun () -> S.quiesce h.s);
      }
    else
      {
        insert = (fun k -> insert h k);
        delete = (fun k -> delete h k);
        contains = (fun k -> contains h k);
        quiesce = (fun () -> S.quiesce h.s);
      }

  let to_list h =
    S.with_op h.s @@ fun () ->
    S.read_phase h.s (fun () ->
        let rec walk w acc =
          if is_tail h w then List.rev acc
          else
            let w = Word.unmark w in
            let nxt = S.read h.s ~via:w ~field:next in
            let acc =
              if Word.is_marked nxt then acc else S.read_key h.s ~via:w :: acc
            in
            walk nxt acc
        in
        walk (S.read h.s ~via:h.dl.head ~field:next) [])
end

(** Harris's non-blocking linked-list set [19] — Algorithm 1 of the paper,
    with [retire()] placed exactly where the paper places it (insert
    line 34, delete line 52).

    The defining property for the ERA theorem: [search] traverses chains
    of {e marked} (logically deleted) nodes without unlinking them first,
    so a reclamation scheme integrated here must tolerate reads of
    retired — and, if it reclaims too eagerly, freed — nodes. The paper's
    Appendix D shows this implementation is access-aware, so every widely
    applicable scheme must handle it.

    Functorized over the reclamation scheme; the same source integrates
    with all seven. Phase annotations (read-only traversal / write window)
    follow the division of Appendix D; they are no-ops except under NBR. *)

module Make (S : Era_smr.Smr_intf.S) : sig
  type t

  val create : Era_sched.Sched.ctx -> S.t -> t
  (** Allocate the head/tail sentinels ([-inf]/[+inf]) and link them. *)

  val head_word : t -> Era_sim.Word.t
  (** The head sentinel (experiments steer schedules by its address). *)

  val tail_word : t -> Era_sim.Word.t

  type h
  (** Per-thread handle. *)

  val handle : t -> Era_sched.Sched.ctx -> h
  val tctx : h -> S.tctx

  val insert : h -> int -> bool
  val delete : h -> int -> bool
  val contains : h -> int -> bool

  val search : h -> int -> Era_sim.Word.t * Era_sim.Word.t
  (** The auxiliary method (lines 1–22): returns the [(pred, curr)]
      window. Exposed for the Figure 1/2 constructions, which need to
      drive a thread into the middle of a traversal. Runs inside the
      scheme's read/write phases but {e not} inside [with_op] — callers
      wanting a full operation use {!insert}/{!delete}/{!contains}. *)

  val ops : h -> record:bool -> Set_intf.ops
  (** Closure bundle; [record] wraps each call in history events. *)

  val to_list : h -> int list
  (** Keys of the unmarked reachable nodes (test/debug helper; uses scheme
      reads, run it at quiescence). *)
end

(** The Michael–Scott lock-free FIFO queue, functorized over the
    reclamation scheme.

    An anchor sentinel holds the head and tail pointers; the queue always
    contains a dummy node. Dequeue reads the value out of the {e second}
    node before swinging head — the access that makes MSQ another classic
    reclamation workout (the dequeued dummy is retired while other
    threads may still hold it as their [head]/[tail] snapshot). *)

type queue_ops = {
  enqueue : int -> unit;
  dequeue : unit -> int option;
  quiesce : unit -> unit;
}

module Make (S : Era_smr.Smr_intf.S) : sig
  type t

  val create : Era_sched.Sched.ctx -> S.t -> t

  type h

  val handle : t -> Era_sched.Sched.ctx -> h
  val enqueue : h -> int -> unit
  val dequeue : h -> int option
  val ops : h -> record:bool -> queue_ops
  val to_list : h -> int list
  (** Front-first contents (quiescent helper). *)
end

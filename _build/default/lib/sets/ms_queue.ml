open Era_sim
module Sched = Era_sched.Sched
module Mem = Era_sched.Mem

type queue_ops = {
  enqueue : int -> unit;
  dequeue : unit -> int option;
  quiesce : unit -> unit;
}

module Make (S : Era_smr.Smr_intf.S) = struct
  (* anchor fields *)
  let head_f = 0
  let tail_f = 1

  (* node field *)
  let next = 0

  type t = {
    anchor : Word.t;
    scheme : S.t;
  }

  type h = {
    q : t;
    s : S.tctx;
    ctx : Sched.ctx;
  }

  let create ctx scheme =
    let anchor = Mem.alloc_sentinel ctx ~key:0 in
    let dummy = Mem.alloc_sentinel ctx ~key:0 in
    Mem.write ctx ~via:anchor ~field:head_f dummy;
    Mem.write ctx ~via:anchor ~field:tail_f dummy;
    { anchor; scheme }

  let handle q ctx = { q; s = S.thread q.scheme ctx; ctx }

  (* Each attempt is one read-phase bracket ending in its write phase;
     [None] from a bracket means "retry". *)
  let enqueue h v =
    S.with_op h.s (fun () ->
        let node = S.alloc h.s ~key:v in
        let rec loop () =
          let attempt =
            S.read_phase h.s (fun () ->
                let last = S.read h.s ~via:h.q.anchor ~field:tail_f in
                let nxt = S.read h.s ~via:last ~field:next in
                match nxt with
                | Word.Null ->
                  S.enter_write_phase h.s ~reserve:[ last ];
                  if
                    S.cas h.s ~via:last ~field:next ~expected:Word.Null
                      ~desired:node
                  then begin
                    (* Swing the tail; anyone may have done it already. *)
                    ignore
                      (S.cas h.s ~via:h.q.anchor ~field:tail_f ~expected:last
                         ~desired:node);
                    Some ()
                  end
                  else None
                | Word.Ptr _ ->
                  (* Tail is lagging: help swing it, then retry. *)
                  S.enter_write_phase h.s ~reserve:[ last ];
                  ignore
                    (S.cas h.s ~via:h.q.anchor ~field:tail_f ~expected:last
                       ~desired:(Word.unmark nxt));
                  None
                | Word.Int _ -> assert false)
          in
          match attempt with
          | Some () -> ()
          | None -> loop ()
        in
        loop ())

  let dequeue h =
    S.with_op h.s (fun () ->
        let rec loop () =
          let attempt =
            S.read_phase h.s (fun () ->
                let first = S.read h.s ~via:h.q.anchor ~field:head_f in
                let last = S.read h.s ~via:h.q.anchor ~field:tail_f in
                let nxt = S.read h.s ~via:first ~field:next in
                if Word.same_bits first last then
                  match nxt with
                  | Word.Null -> Some None
                  | Word.Ptr _ ->
                    S.enter_write_phase h.s ~reserve:[ last ];
                    ignore
                      (S.cas h.s ~via:h.q.anchor ~field:tail_f ~expected:last
                         ~desired:(Word.unmark nxt));
                    None
                  | Word.Int _ -> assert false
                else
                  match nxt with
                  | Word.Null -> None  (* inconsistent snapshot; retry *)
                  | Word.Ptr _ ->
                    S.enter_write_phase h.s
                      ~reserve:[ first; Word.unmark nxt ];
                    let v = S.read_key h.s ~via:(Word.unmark nxt) in
                    if
                      S.cas h.s ~via:h.q.anchor ~field:head_f ~expected:first
                        ~desired:(Word.unmark nxt)
                    then begin
                      S.retire h.s first;
                      Some (Some v)
                    end
                    else None
                  | Word.Int _ -> assert false)
          in
          match attempt with
          | Some r -> r
          | None -> loop ()
        in
        loop ())

  let ops h ~record =
    if record then
      {
        enqueue =
          (fun v ->
            Set_intf.record_unit h.ctx ~name:"enqueue" [ v ] (fun () ->
                enqueue h v));
        dequeue =
          (fun () ->
            Set_intf.record_int h.ctx ~name:"dequeue" [] (fun () -> dequeue h));
        quiesce = (fun () -> S.quiesce h.s);
      }
    else
      {
        enqueue = (fun v -> enqueue h v);
        dequeue = (fun () -> dequeue h);
        quiesce = (fun () -> S.quiesce h.s);
      }

  let to_list h =
    S.with_op h.s @@ fun () ->
    S.read_phase h.s (fun () ->
        let first = S.read h.s ~via:h.q.anchor ~field:head_f in
        let rec walk w acc =
          match S.read h.s ~via:w ~field:next with
          | Word.Null -> List.rev acc
          | Word.Ptr _ as nxt ->
            let w' = Word.unmark nxt in
            walk w' (S.read_key h.s ~via:w' :: acc)
          | Word.Int _ -> assert false
        in
        walk first [])
end

(** Michael's lock-free linked-list set [30] — Harris's algorithm
    restructured so that a traversal {e never} walks past a marked node:
    it unlinks the node first (retrying from the head on contention) and
    only then advances.

    This is the modification Michael introduced precisely to make the
    list compatible with hazard pointers (discussed in Sections 2 and 6
    of the paper): every pointer a thread follows was validated while its
    source was reachable and unmarked, so HP/HE/IBR protection works.
    The price is extra CASes and restarts under churn — the performance
    cost the paper's Section 6 discussion refers to (reproduced by
    experiment E8). *)

module Make (S : Era_smr.Smr_intf.S) : sig
  type t

  val create : Era_sched.Sched.ctx -> S.t -> t
  val head_word : t -> Era_sim.Word.t

  type h

  val handle : t -> Era_sched.Sched.ctx -> h
  val tctx : h -> S.tctx

  val insert : h -> int -> bool
  val delete : h -> int -> bool
  val contains : h -> int -> bool

  val ops : h -> record:bool -> Set_intf.ops
  val to_list : h -> int list
end

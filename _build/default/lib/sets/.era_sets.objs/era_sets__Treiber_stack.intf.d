lib/sets/treiber_stack.mli: Era_sched Era_sim Era_smr

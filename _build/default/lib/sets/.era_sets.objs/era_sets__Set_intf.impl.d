lib/sets/set_intf.ml: Era_sched Era_sim

lib/sets/ms_queue.mli: Era_sched Era_smr

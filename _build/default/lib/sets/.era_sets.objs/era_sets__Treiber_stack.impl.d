lib/sets/treiber_stack.ml: Era_sched Era_sim Era_smr List Set_intf Word

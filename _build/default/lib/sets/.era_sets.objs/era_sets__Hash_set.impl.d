lib/sets/hash_set.ml: Array Era_sched Era_smr Harris_list List Michael_list Set_intf

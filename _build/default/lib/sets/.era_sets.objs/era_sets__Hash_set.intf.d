lib/sets/hash_set.mli: Era_sched Era_smr Set_intf

lib/sets/michael_list.mli: Era_sched Era_sim Era_smr Set_intf

type mode = [ `Raise | `Record ]

type sample = {
  time : int;
  active : int;
  retired : int;
  max_active : int;
}

type t = {
  mode : mode;
  keep_trace : bool;
  events : Event.t Vec.t;
  viols : Event.t Vec.t;
  samps : sample Vec.t;
  mutable hooks : (int -> Event.t -> unit) list;
  mutable time : int;
  mutable active : int;
  mutable retired : int;
  mutable max_active : int;
  mutable max_retired : int;
}

exception Violation of Event.t

let create ?(mode = `Raise) ?(trace = true) () =
  {
    mode;
    keep_trace = trace;
    events = Vec.create ();
    viols = Vec.create ();
    samps = Vec.create ();
    hooks = [];
    time = 0;
    active = 0;
    retired = 0;
    max_active = 0;
    max_retired = 0;
  }

let subscribe t f = t.hooks <- f :: t.hooks

let sample t =
  Vec.push t.samps
    { time = t.time; active = t.active; retired = t.retired;
      max_active = t.max_active }

let update_counts t (ev : Event.t) =
  match ev with
  | Alloc _ ->
    t.active <- t.active + 1;
    if t.active > t.max_active then t.max_active <- t.active;
    sample t
  | Retire _ ->
    t.active <- t.active - 1;
    t.retired <- t.retired + 1;
    if t.retired > t.max_retired then t.max_retired <- t.retired;
    sample t
  | Reclaim _ ->
    t.retired <- t.retired - 1;
    sample t
  | Share _ | Access _ | Key_read _ | Violation _ | Invoke _ | Response _
  | Label _ | Protect _ | Epoch _ | Neutralize _ | Stalled _ | Resumed _
  | Note _ ->
    ()

let emit t ev =
  t.time <- t.time + 1;
  update_counts t ev;
  if t.keep_trace then Vec.push t.events ev;
  (match ev with
  | Violation _ -> Vec.push t.viols ev
  | _ -> ());
  List.iter (fun f -> f t.time ev) t.hooks;
  match ev, t.mode with
  | Violation _, `Raise -> raise (Violation ev)
  | _ -> ()

let time t = t.time
let active t = t.active
let retired t = t.retired
let max_active t = t.max_active
let max_retired t = t.max_retired
let violations t = Vec.to_list t.viols
let first_violation t = if Vec.length t.viols = 0 then None else Some (Vec.get t.viols 0)
let violation_count t = Vec.length t.viols
let samples t = Vec.to_list t.samps
let trace t = Vec.to_list t.events
let trace_vec t = t.events
let find_last t p = Vec.find_last p t.events

let pp_violations fmt t =
  if Vec.length t.viols = 0 then Fmt.string fmt "(no violations)"
  else Vec.iter (fun ev -> Fmt.pf fmt "%a@." Event.pp ev) t.viols

(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the simulator (schedulers, workloads,
    fault injectors) draws from an explicit [Rng.t] so that executions are
    reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the same internal state. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

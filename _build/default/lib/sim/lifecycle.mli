(** The node life-cycle automaton of Section 4.1.

    A node is [Unallocated] until some thread allocates it, then [Local] to
    that thread, optionally [Shared], then [Retired], and finally
    [Unallocated] again when reclaimed. Only the transitions drawn in the
    paper are legal; everything else (double retire, retiring an
    unallocated node, sharing a retired node, ...) is a bug in either the
    data structure or the reclamation scheme, and the heap reports it. *)

type t =
  | Unallocated
  | Local of int  (** allocated, visible only to the allocating thread *)
  | Shared
  | Retired

val equal : t -> t -> bool

val is_active : t -> bool
(** [Local _] or [Shared] — the states that count towards
    [active]/[max_active] in Definitions 5.1–5.2. *)

val check_transition : from:t -> to_:t -> (unit, string) result
(** [Ok ()] iff the paper's life cycle permits [from -> to_]. The error
    string names the illegal move. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

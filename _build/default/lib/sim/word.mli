(** Machine words of the simulated shared memory.

    A word is either [Null], an integer, or a pointer. Pointers carry:

    - [addr]: the physical cell address (what a real machine stores);
    - [node]: the {e logical node identity} that occupied [addr] when the
      pointer value was created. The paper (Section 4.1) treats nodes as
      logical entities: re-allocating an address creates a {e different}
      node. Tracking [node] in the word realizes Definition 4.1 directly —
      a pointer is valid iff the node it was derived for still occupies its
      address and has not been unallocated in between;
    - [marked]: Harris-style deletion mark (a low-order tag bit in real
      implementations);
    - [stale]: taint set when the value was obtained through an {e unsafe}
      memory access (Definition 4.1). Definition 4.2(3) forbids ever
      {e using} such a value; the heap flags any dereference of a stale
      word.

    Physical comparison ([same_bits]) deliberately ignores [node] and
    [stale]: a real CAS compares bit patterns only, which is exactly what
    makes ABA failures possible and lets the simulator reproduce them. *)

type ptr = {
  addr : int;
  node : int;
  marked : bool;
  stale : bool;
}

type t =
  | Null
  | Int of int
  | Ptr of ptr

val null : t
val int : int -> t
val ptr : addr:int -> node:int -> t

val is_null : t -> bool
val is_ptr : t -> bool
val is_marked : t -> bool
(** [is_marked w] is [true] iff [w] is a pointer with the mark bit set.
    [Null] and [Int _] are unmarked. *)

val mark : t -> t
(** Set the mark bit. Raises [Invalid_argument] on non-pointers. *)

val unmark : t -> t
(** Clear the mark bit; identity on [Null]/[Int]. *)

val taint : t -> t
(** Set the stale bit on pointers; identity on [Null]/[Int _] is {e not}
    taken — integers read unsafely are replaced by [Int] with no taint
    carrier, so the heap tracks integer staleness separately. On [Null]
    and [Int] this returns the word unchanged. *)

val is_stale : t -> bool

val addr_exn : t -> int
(** Address of a pointer. Raises [Invalid_argument] otherwise. *)

val node_exn : t -> int

val same_bits : t -> t -> bool
(** Physical (bit-pattern) equality: address + mark for pointers, value for
    integers. Ignores logical node identity and staleness — the ABA-faithful
    comparison a hardware CAS performs. *)

val equal : t -> t -> bool
(** Full structural equality, including node identity and taint. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

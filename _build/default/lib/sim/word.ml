type ptr = {
  addr : int;
  node : int;
  marked : bool;
  stale : bool;
}

type t =
  | Null
  | Int of int
  | Ptr of ptr

let null = Null
let int v = Int v
let ptr ~addr ~node = Ptr { addr; node; marked = false; stale = false }

let is_null = function Null -> true | Int _ | Ptr _ -> false
let is_ptr = function Ptr _ -> true | Null | Int _ -> false
let is_marked = function Ptr p -> p.marked | Null | Int _ -> false

let mark = function
  | Ptr p -> Ptr { p with marked = true }
  | Null | Int _ -> invalid_arg "Word.mark: not a pointer"

let unmark = function
  | Ptr p -> Ptr { p with marked = false }
  | (Null | Int _) as w -> w

let taint = function
  | Ptr p -> Ptr { p with stale = true }
  | (Null | Int _) as w -> w

let is_stale = function Ptr p -> p.stale | Null | Int _ -> false

let addr_exn = function
  | Ptr p -> p.addr
  | Null | Int _ -> invalid_arg "Word.addr_exn: not a pointer"

let node_exn = function
  | Ptr p -> p.node
  | Null | Int _ -> invalid_arg "Word.node_exn: not a pointer"

let same_bits a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Ptr p, Ptr q -> p.addr = q.addr && p.marked = q.marked
  | (Null | Int _ | Ptr _), _ -> false

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Ptr p, Ptr q ->
    p.addr = q.addr && p.node = q.node && p.marked = q.marked
    && p.stale = q.stale
  | (Null | Int _ | Ptr _), _ -> false

let pp fmt = function
  | Null -> Fmt.string fmt "null"
  | Int v -> Fmt.pf fmt "%d" v
  | Ptr p ->
    Fmt.pf fmt "&%d#%d%s%s" p.addr p.node
      (if p.marked then "!" else "")
      (if p.stale then "~" else "")

let to_string w = Fmt.str "%a" pp w

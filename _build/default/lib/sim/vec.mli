(** Minimal growable array (OCaml 5.1 has no [Dynarray] yet). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val exists : ('a -> bool) -> 'a t -> bool
val find_last : ('a -> bool) -> 'a t -> 'a option

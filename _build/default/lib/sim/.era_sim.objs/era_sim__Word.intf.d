lib/sim/word.mli: Format

lib/sim/vec.ml: Array

lib/sim/lifecycle.ml: Fmt

lib/sim/monitor.ml: Event Fmt List Vec

lib/sim/lifecycle.mli: Format

lib/sim/rng.mli:

lib/sim/monitor.mli: Event Format Vec

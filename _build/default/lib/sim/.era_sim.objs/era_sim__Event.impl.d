lib/sim/event.ml: Fmt

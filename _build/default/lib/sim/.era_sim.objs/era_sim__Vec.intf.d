lib/sim/vec.mli:

lib/sim/heap.mli: Lifecycle Monitor Word

lib/sim/word.ml: Fmt

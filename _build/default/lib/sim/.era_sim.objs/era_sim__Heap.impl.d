lib/sim/heap.ml: Array Event Fmt Lifecycle List Monitor Vec Word

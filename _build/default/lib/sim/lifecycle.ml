type t =
  | Unallocated
  | Local of int
  | Shared
  | Retired

let equal a b =
  match a, b with
  | Unallocated, Unallocated -> true
  | Local x, Local y -> x = y
  | Shared, Shared -> true
  | Retired, Retired -> true
  | (Unallocated | Local _ | Shared | Retired), _ -> false

let is_active = function
  | Local _ | Shared -> true
  | Unallocated | Retired -> false

let pp fmt = function
  | Unallocated -> Fmt.string fmt "unallocated"
  | Local tid -> Fmt.pf fmt "local(T%d)" tid
  | Shared -> Fmt.string fmt "shared"
  | Retired -> Fmt.string fmt "retired"

let to_string s = Fmt.str "%a" pp s

let check_transition ~from ~to_ =
  match from, to_ with
  | Unallocated, Local _ -> Ok ()
  | Local _, Shared -> Ok ()
  | Local _, Retired -> Ok ()  (* a node may die without ever being shared *)
  | Shared, Retired -> Ok ()
  | Retired, Unallocated -> Ok ()
  | _ ->
    Error
      (Fmt.str "illegal life-cycle transition: %a -> %a" pp from pp to_)

(** Sequential specifications (the paper's "sequential specification" of an
    object, Section 3): deterministic state machines giving the unique
    legal result of each operation from each abstract state. *)

module type S = sig
  type state

  val init : state

  val apply : state -> Era_sim.Event.op -> state * Era_sim.Event.op_result
  (** Raises [Invalid_argument] on operations the object does not have. *)

  val canonical : state -> string
  (** Canonical encoding for memoization keys. *)

  val pp : Format.formatter -> state -> unit
end

module Int_set : S with type state = int list
(** The paper's running object: a set of integer keys with
    [insert]/[delete]/[contains] (Section 3). State is a sorted list. *)

module Int_stack : S with type state = int list
(** LIFO with [push v] (returns unit) and [pop] (returns [R_int]). *)

module Int_queue : S with type state = int list
(** FIFO with [enqueue v] and [dequeue]. *)

val result_matches : Era_sim.Event.op_result -> Era_sim.Event.op_result -> bool

(** Histories (Section 3 of the paper): the sub-sequence of operation
    invocation and response steps of an execution, extracted from a
    monitor trace. *)

type op_record = {
  opid : int;
  tid : int;
  op : Era_sim.Event.op;
  inv_time : int;
  result : Era_sim.Event.op_result option;  (** [None] while pending *)
  res_time : int;  (** [max_int] while pending *)
}

type t = op_record list
(** Sorted by invocation time. *)

val of_trace : Era_sim.Event.t list -> t
(** Pair [Invoke]/[Response] events by operation id. *)

val of_monitor : Era_sim.Monitor.t -> t

val is_complete : t -> bool
val completed : t -> op_record list
val pending : t -> op_record list

val is_well_formed : t -> bool
(** Per-thread: at most one pending operation per thread at any time, and
    responses match the latest invocation (the nesting-safe formulation of
    [4] restricted to the top-level data-structure object — scheme
    operations nested inside are not part of the history). *)

val concurrency_width : t -> int
(** Maximum number of simultaneously pending operations — the cost driver
    of the linearizability check. *)

val pp : Format.formatter -> t -> unit

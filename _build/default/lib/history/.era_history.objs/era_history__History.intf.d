lib/history/history.mli: Era_sim Format

lib/history/linearize.ml: Array Bytes Era_sim Hashtbl History Spec

lib/history/history.ml: Era_sim Fmt Hashtbl List Option

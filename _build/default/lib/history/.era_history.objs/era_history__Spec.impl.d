lib/history/spec.ml: Era_sim Fmt Format List String

lib/history/spec.mli: Era_sim Format

lib/history/linearize.mli: Era_sim History Spec

module Event = Era_sim.Event

module type S = sig
  type state

  val init : state
  val apply : state -> Event.op -> state * Event.op_result
  val canonical : state -> string
  val pp : Format.formatter -> state -> unit
end

let result_matches (a : Event.op_result) (b : Event.op_result) =
  match a, b with
  | Event.R_bool x, Event.R_bool y -> x = y
  | Event.R_int x, Event.R_int y -> x = y
  | Event.R_unit, Event.R_unit -> true
  | (Event.R_bool _ | Event.R_int _ | Event.R_unit), _ -> false

let canonical_ints l = String.concat "," (List.map string_of_int l)
let pp_ints fmt l = Fmt.pf fmt "[%a]" Fmt.(list ~sep:semi int) l

let bad_op (op : Event.op) =
  invalid_arg (Fmt.str "Spec: unknown operation %a" Event.pp_op op)

module Int_set = struct
  type state = int list  (* sorted ascending *)

  let init = []

  let rec insert k = function
    | [] -> [ k ]
    | x :: rest as l ->
      if k < x then k :: l
      else if k = x then l
      else x :: insert k rest

  let apply s (op : Event.op) =
    match op.name, op.args with
    | "insert", [ k ] ->
      if List.mem k s then (s, Event.R_bool false)
      else (insert k s, Event.R_bool true)
    | "delete", [ k ] ->
      if List.mem k s then (List.filter (fun x -> x <> k) s, Event.R_bool true)
      else (s, Event.R_bool false)
    | "contains", [ k ] -> (s, Event.R_bool (List.mem k s))
    | _ -> bad_op op

  let canonical = canonical_ints
  let pp = pp_ints
end

module Int_stack = struct
  type state = int list  (* head = top *)

  let init = []

  let apply s (op : Event.op) =
    match op.name, op.args with
    | "push", [ v ] -> (v :: s, Event.R_unit)
    | "pop", [] -> (
      match s with
      | [] -> ([], Event.R_int None)
      | v :: rest -> (rest, Event.R_int (Some v)))
    | _ -> bad_op op

  let canonical = canonical_ints
  let pp = pp_ints
end

module Int_queue = struct
  type state = int list  (* head = front *)

  let init = []

  let apply s (op : Event.op) =
    match op.name, op.args with
    | "enqueue", [ v ] -> (s @ [ v ], Event.R_unit)
    | "dequeue", [] -> (
      match s with
      | [] -> ([], Event.R_int None)
      | v :: rest -> (rest, Event.R_int (Some v)))
    | _ -> bad_op op

  let canonical = canonical_ints
  let pp = pp_ints
end

(** Linearizability checking (the paper's correctness condition,
    Section 3 / Definition 5.4(2)).

    Implements the Wing–Gong tree search with Lowe-style memoization on
    (linearized-set, abstract-state) pairs. Pending operations may either
    take effect (with whatever result the specification assigns) or be
    dropped — exactly the completion rule in the paper's definition of a
    linearizable (not necessarily complete) history. *)

type verdict = {
  ok : bool;
  witness : Era_sim.Event.op list;
      (** a linearization order when [ok]; [[]] otherwise *)
  states_explored : int;
}

val check : (module Spec.S) -> History.t -> verdict

val is_linearizable : (module Spec.S) -> History.t -> bool

val check_monitor : (module Spec.S) -> Era_sim.Monitor.t -> verdict
(** Extract the history from a monitor trace and check it. *)

val brute_force : (module Spec.S) -> History.t -> bool
(** Reference oracle: enumerate every real-time-respecting permutation of
    the completed operations (and every subset/placement of pending ones).
    Exponential — for cross-validating {!check} on tiny histories in
    property tests only. *)

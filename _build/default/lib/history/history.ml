module Event = Era_sim.Event

type op_record = {
  opid : int;
  tid : int;
  op : Event.op;
  inv_time : int;
  result : Event.op_result option;
  res_time : int;
}

type t = op_record list

let of_trace events =
  let table : (int, op_record) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iteri
    (fun time ev ->
      match ev with
      | Event.Invoke { tid; opid; op } ->
        let r =
          { opid; tid; op; inv_time = time; result = None;
            res_time = max_int }
        in
        Hashtbl.replace table opid r;
        order := opid :: !order
      | Event.Response { opid; result; _ } -> (
        match Hashtbl.find_opt table opid with
        | Some r ->
          Hashtbl.replace table opid
            { r with result = Some result; res_time = time }
        | None -> ())
      | _ -> ())
    events;
  List.rev !order |> List.map (Hashtbl.find table)

let of_monitor mon = of_trace (Era_sim.Monitor.trace mon)

let is_complete h = List.for_all (fun r -> r.result <> None) h
let completed h = List.filter (fun r -> r.result <> None) h
let pending h = List.filter (fun r -> r.result = None) h

let is_well_formed h =
  (* For each thread, intervals [inv, res] must not overlap. *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let l = Option.value (Hashtbl.find_opt by_tid r.tid) ~default:[] in
      Hashtbl.replace by_tid r.tid (r :: l))
    h;
  Hashtbl.fold
    (fun _tid ops ok ->
      ok
      &&
      let sorted =
        List.sort (fun a b -> compare a.inv_time b.inv_time) ops
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
          a.res_time < b.inv_time && check rest
        | [ _ ] | [] -> true
      in
      check sorted)
    by_tid true

let concurrency_width h =
  (* Sweep over invocation/response boundaries. *)
  let boundaries =
    List.concat_map
      (fun r ->
        if r.res_time = max_int then [ (r.inv_time, 1) ]
        else [ (r.inv_time, 1); (r.res_time, -1) ])
      h
    |> List.sort compare
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, d) ->
        let cur = cur + d in
        (cur, max cur best))
      (0, 0) boundaries
  in
  best

let pp fmt h =
  List.iter
    (fun r ->
      match r.result with
      | Some res ->
        Fmt.pf fmt "T%d [%d,%d] %a = %a@." r.tid r.inv_time r.res_time
          Event.pp_op r.op Event.pp_result res
      | None ->
        Fmt.pf fmt "T%d [%d,..] %a (pending)@." r.tid r.inv_time
          Event.pp_op r.op)
    h

(** Native multicore measurement harness for experiments E8 and E9.

    E8 (Section 6's practical remark): Harris's original list vs
    Michael's HP-compatible restructuring, each paired with a scheme that
    is {e applicable} to it — the cost of demanding an HP-friendly
    implementation shows up as lost throughput under churn.

    E9 (the robustness trade-off, Sections 1/5.1): with one domain
    stalled mid-operation, EBR's retired backlog grows with the churn
    volume while HP's and IBR's stay bounded.

    On a single-core host the domains time-share; relative per-operation
    costs and backlog shapes remain meaningful, absolute scaling does
    not. *)

type result = {
  label : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;  (** million completed operations per second *)
  max_backlog : int;
  reclaimed : int;
}

val run_workers :
  label:string -> domains:int -> ops_per_domain:int ->
  make_worker:(int -> unit -> unit) ->
  stats:(unit -> int * int) -> result
(** Spawn [domains] domains; each calls its worker [ops_per_domain]
    times; [stats ()] returns [(max_backlog, reclaimed)] at the end. *)

type list_kind =
  | Harris
  | Michael

type mix =
  | Churn  (** 50/50 insert/delete over a small key range *)
  | Read_heavy  (** 90% contains over a prefilled larger range *)

val e8_row :
  list_kind -> scheme:[ `Ebr | `Hp | `Ibr | `None ] -> mix ->
  domains:int -> ops_per_domain:int -> result
(** One throughput row. Pairings of HP with [Harris] are refused
    ([Invalid_argument]) — that is the unsafe combination the theorem
    rules out. *)

val e9_row :
  scheme:[ `Ebr | `Hp | `Ibr ] -> churn_ops:int -> result
(** Backlog with a stalled domain: domain 0 opens an operation and parks;
    two churn domains push [churn_ops] each through a Michael list. *)

val stack_row :
  scheme:[ `Ebr | `Hp | `Ibr | `None ] -> domains:int ->
  ops_per_domain:int -> result
(** Treiber stack, 50/50 push/pop. *)

val queue_row :
  scheme:[ `Ebr | `Hp | `Ibr | `None ] -> domains:int ->
  ops_per_domain:int -> result
(** Michael–Scott queue, 50/50 enqueue/dequeue. *)

val pp_result : Format.formatter -> result -> unit

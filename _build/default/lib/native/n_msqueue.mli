(** Native Michael–Scott FIFO queue over the native reclamation
    schemes. *)

module Make (S : Nsmr.S) : sig
  type t

  val create : unit -> t
  val enqueue : t -> S.tctx -> int -> unit
  val dequeue : t -> S.tctx -> int option
end

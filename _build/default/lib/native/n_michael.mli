(** Native Michael linked-list set [30]: the HP-compatible restructuring
    of Harris's algorithm — traversals unlink marked nodes before
    stepping over them (restarting from the head on contention), so
    every followed pointer was validated from a reachable, unmarked
    source. Safe with every native scheme, including HP; slower under
    churn (experiment E8). *)

module Make (S : Nsmr.S) : sig
  type t

  val create : unit -> t
  val head : t -> Nnode.node
  val insert : t -> S.tctx -> int -> bool
  val delete : t -> S.tctx -> int -> bool
  val contains : t -> S.tctx -> int -> bool
  val to_list : t -> S.tctx -> int list
end

type node = {
  mutable key : int;
  next : link Atomic.t;
  mutable birth : int;
}

and link = {
  marked : bool;
  target : node option;
}

let link ?(marked = false) target = { marked; target }
let make ~key = { key; next = Atomic.make (link None); birth = 0 }
let get n = Atomic.get n.next

let target_exn l =
  match l.target with
  | Some n -> n
  | None -> invalid_arg "Nnode.target_exn: null link"

let same_target a b =
  a.marked = b.marked
  &&
  match a.target, b.target with
  | None, None -> true
  | Some x, Some y -> x == y
  | (None | Some _), _ -> false

(** Native Michael–Scott queue over the native reclamation schemes. *)

open Nnode

module Make (S : Nsmr.S) = struct
  type t = {
    head : link Atomic.t;  (* always points at the current dummy *)
    tail : link Atomic.t;
  }

  let create () =
    let dummy = make ~key:0 in
    { head = Atomic.make (link (Some dummy));
      tail = Atomic.make (link (Some dummy)) }

  let enqueue t s v =
    S.begin_op s;
    let node = S.alloc s v in
    let rec loop () =
      let last_l = Atomic.get t.tail in
      let last = target_exn last_l in
      let nxt = S.read_link s last in
      match nxt.target with
      | None ->
        if Atomic.compare_and_set last.next nxt (link (Some node)) then
          ignore (Atomic.compare_and_set t.tail last_l (link (Some node)))
        else loop ()
      | Some _ ->
        ignore (Atomic.compare_and_set t.tail last_l (link nxt.target));
        loop ()
    in
    loop ();
    S.end_op s

  let dequeue t s =
    S.begin_op s;
    let rec loop () =
      let first_l = Atomic.get t.head in
      let last_l = Atomic.get t.tail in
      let first = target_exn first_l in
      let nxt = S.read_link s first in
      if target_exn first_l == target_exn last_l then
        match nxt.target with
        | None -> None
        | Some _ ->
          ignore (Atomic.compare_and_set t.tail last_l (link nxt.target));
          loop ()
      else
        match nxt.target with
        | None -> loop ()
        | Some second ->
          let v = second.key in
          if Atomic.compare_and_set t.head first_l (link (Some second)) then begin
            S.retire s first;
            Some v
          end
          else loop ()
    in
    let r = loop () in
    S.end_op s;
    r
end

lib/native/n_treiber.mli: Nsmr

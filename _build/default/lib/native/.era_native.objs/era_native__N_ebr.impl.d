lib/native/n_ebr.ml: Array Atomic List Nnode Nsmr

lib/native/throughput.ml: Atomic Domain Fmt Fun Int64 List N_ebr N_harris N_hp N_ibr N_michael N_msqueue N_none N_treiber Nsmr Unix

lib/native/n_hp.mli: Nsmr

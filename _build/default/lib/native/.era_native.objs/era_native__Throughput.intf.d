lib/native/throughput.mli: Format

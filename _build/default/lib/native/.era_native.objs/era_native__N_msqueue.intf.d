lib/native/n_msqueue.mli: Nsmr

lib/native/n_treiber.ml: Atomic Domain Nnode Nsmr

lib/native/n_hp.ml: Array Atomic List Nnode Nsmr

lib/native/n_harris.ml: Atomic List Nnode Nsmr

lib/native/n_none.mli: Nsmr

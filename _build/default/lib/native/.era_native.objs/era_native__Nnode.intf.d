lib/native/nnode.mli: Atomic

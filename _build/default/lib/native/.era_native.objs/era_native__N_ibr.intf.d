lib/native/n_ibr.mli: Nsmr

lib/native/n_harris.mli: Nnode Nsmr

lib/native/nnode.ml: Atomic

lib/native/nsmr.ml: Nnode

lib/native/n_ebr.mli: Nsmr

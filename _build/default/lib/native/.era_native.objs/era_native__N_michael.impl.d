lib/native/n_michael.ml: Atomic List Nnode Nsmr

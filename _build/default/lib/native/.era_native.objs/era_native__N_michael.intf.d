lib/native/n_michael.mli: Nnode Nsmr

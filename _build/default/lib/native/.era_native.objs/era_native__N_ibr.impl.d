lib/native/n_ibr.ml: Array Atomic List Nnode Nsmr

lib/native/n_msqueue.ml: Atomic Nnode Nsmr

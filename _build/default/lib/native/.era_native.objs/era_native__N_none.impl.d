lib/native/n_none.ml: Atomic Nnode

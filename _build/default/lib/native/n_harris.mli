(** Native Harris linked-list set (the original algorithm [19]):
    traversals stride over chains of marked nodes; a single CAS unlinks a
    whole marked run. Only pair it with schemes applicable to it
    (EBR, none) — that restriction {e is} the ERA theorem's content, and
    the throughput harness enforces it. *)

module Make (S : Nsmr.S) : sig
  type t

  val create : unit -> t
  val head : t -> Nnode.node
  val insert : t -> S.tctx -> int -> bool
  val delete : t -> S.tctx -> int -> bool
  val contains : t -> S.tctx -> int -> bool

  val to_list : t -> S.tctx -> int list
  (** Unmarked reachable keys, ascending (quiescent helper). *)
end

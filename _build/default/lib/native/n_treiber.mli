(** Native Treiber stack over the native reclamation schemes. *)

module Make (S : Nsmr.S) : sig
  type t

  val create : unit -> t
  val push : t -> S.tctx -> int -> unit
  val pop : t -> S.tctx -> int option
end

(** Nodes of the native (real multicore, Domain/Atomic) data structures.

    A link packs a Harris-style mark bit with the successor pointer in
    one immutable record, so a single [Atomic.compare_and_set] updates
    both — the OCaml idiom for tagged pointers. CAS relies on physical
    equality: always CAS with the exact link value previously read. *)

type node = {
  mutable key : int;
  next : link Atomic.t;
  mutable birth : int;  (** epoch stamp used by IBR *)
}

and link = {
  marked : bool;
  target : node option;
}

val make : key:int -> node
(** Fresh node with an unmarked null link and birth 0. *)

val link : ?marked:bool -> node option -> link
val get : node -> link
val target_exn : link -> node
val same_target : link -> link -> bool
(** Do two links denote the same (mark, target) value? (Physical node
    equality plus mark comparison — the bit-pattern test.) *)

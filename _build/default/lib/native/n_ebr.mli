(** Native epoch-based reclamation: a global epoch [Atomic], per-domain
    announcements, and three per-domain retire buckets; the bucket of
    epoch [e] recycles once the global epoch reaches [e + 2]. Cheap reads
    (no per-access protocol) but not robust: a stalled domain pins the
    epoch and the backlog grows with the churn volume (experiment E9). *)

include Nsmr.S

(** Native no-reclamation baseline: retired nodes are dropped (the OCaml
    GC eventually collects them, but nothing is recycled and the backlog
    counter grows forever). The zero-overhead, zero-robustness corner. *)

include Nsmr.S

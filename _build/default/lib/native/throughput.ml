type result = {
  label : string;
  domains : int;
  total_ops : int;
  elapsed_s : float;
  mops : float;
  max_backlog : int;
  reclaimed : int;
}

type list_kind =
  | Harris
  | Michael

type mix =
  | Churn
  | Read_heavy

(* splitmix64, local copy to keep this library free of simulator deps *)
let rng_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)

let run_workers ~label ~domains ~ops_per_domain ~make_worker ~stats =
  let barrier = Atomic.make 0 in
  let go = Atomic.make false in
  let body d () =
    let worker = make_worker d in
    ignore (Atomic.fetch_and_add barrier 1);
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    for _ = 1 to ops_per_domain do
      worker ()
    done
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (body (i + 1)))
  in
  (* domain 0 = this one; wait for the others to be ready *)
  let worker0 = make_worker 0 in
  ignore (Atomic.fetch_and_add barrier 1);
  while Atomic.get barrier < domains do
    Domain.cpu_relax ()
  done;
  let t0 = Unix.gettimeofday () in
  Atomic.set go true;
  for _ = 1 to ops_per_domain do
    worker0 ()
  done;
  List.iter Domain.join spawned;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = domains * ops_per_domain in
  let max_backlog, reclaimed = stats () in
  {
    label;
    domains;
    total_ops = total;
    elapsed_s = elapsed;
    mops = float_of_int total /. elapsed /. 1e6;
    max_backlog;
    reclaimed;
  }

let kind_name = function Harris -> "harris" | Michael -> "michael"
let mix_name = function Churn -> "churn" | Read_heavy -> "read-heavy"

let scheme_name = function
  | `Ebr -> "ebr"
  | `Hp -> "hp"
  | `Ibr -> "ibr"
  | `None -> "none"

(* Build (worker factory, stats) for a (list, scheme, mix) choice. The
   functor application must happen per concrete scheme module, hence the
   repetition-by-dispatch. *)
let build_list (type a) (module S : Nsmr.S with type t = a) kind mix ~domains
    ~prefill =
  match kind with
  | Harris ->
    let module L = N_harris.Make (S) in
    let g = S.create ~ndomains:domains in
    let l = L.create () in
    let s0 = S.thread g 0 in
    List.iter (fun k -> ignore (L.insert l s0 k)) prefill;
    let make_worker d =
      let s = S.thread g d in
      let st = ref (Int64.of_int ((d * 77) + 13)) in
      let key_range, contains_pct =
        match mix with Churn -> (64, 0) | Read_heavy -> (1024, 90)
      in
      fun () ->
        let r = rng_next st in
        let k = 1 + (r mod key_range) in
        let roll = (r / key_range) mod 100 in
        if roll < contains_pct then ignore (L.contains l s k)
        else if roll mod 2 = 0 then ignore (L.insert l s k)
        else ignore (L.delete l s k)
    in
    (make_worker, fun () -> (S.max_backlog g, S.reclaimed g))
  | Michael ->
    let module L = N_michael.Make (S) in
    let g = S.create ~ndomains:domains in
    let l = L.create () in
    let s0 = S.thread g 0 in
    List.iter (fun k -> ignore (L.insert l s0 k)) prefill;
    let make_worker d =
      let s = S.thread g d in
      let st = ref (Int64.of_int ((d * 77) + 13)) in
      let key_range, contains_pct =
        match mix with Churn -> (64, 0) | Read_heavy -> (1024, 90)
      in
      fun () ->
        let r = rng_next st in
        let k = 1 + (r mod key_range) in
        let roll = (r / key_range) mod 100 in
        if roll < contains_pct then ignore (L.contains l s k)
        else if roll mod 2 = 0 then ignore (L.insert l s k)
        else ignore (L.delete l s k)
    in
    (make_worker, fun () -> (S.max_backlog g, S.reclaimed g))

let scheme_module = function
  | `Ebr -> (module N_ebr : Nsmr.S)
  | `Hp -> (module N_hp)
  | `Ibr -> (module N_ibr)
  | `None -> (module N_none)

let e8_row kind ~scheme mix ~domains ~ops_per_domain =
  (match kind, scheme with
  | Harris, `Hp ->
    invalid_arg
      "Throughput.e8_row: HP is not applicable to Harris's list (that is \
       the theorem)"
  | _ -> ());
  let prefill =
    match mix with
    | Churn -> List.init 32 (fun i -> (i * 2) + 1)
    | Read_heavy -> List.init 512 (fun i -> (i * 2) + 1)
  in
  let (module S) = scheme_module scheme in
  let make_worker, stats = build_list (module S) kind mix ~domains ~prefill in
  run_workers
    ~label:
      (Fmt.str "%s+%s/%s" (kind_name kind) (scheme_name scheme)
         (mix_name mix))
    ~domains ~ops_per_domain ~make_worker ~stats

(* E9: domain 0 opens an operation (announcing its epoch / publishing its
   reservation) and parks until the churn domains are done. *)
let e9_row ~scheme ~churn_ops =
  let domains = 3 in
  let done_flag = Atomic.make 0 in
  let (module S) = scheme_module (scheme :> [ `Ebr | `Hp | `Ibr | `None ]) in
  let module L = N_michael.Make (S) in
  let g = S.create ~ndomains:domains in
  let l = L.create () in
  let s0 = S.thread g 0 in
  List.iter (fun k -> ignore (L.insert l s0 ((k * 2) + 1))) (List.init 32 Fun.id);
  let make_worker d =
    let s = S.thread g d in
    if d = 0 then (
      let started = ref false in
      fun () ->
        if not !started then begin
          started := true;
          (* Open an operation and stall inside it. *)
          S.begin_op s;
          ignore (S.read_link s (L.head l));
          while Atomic.get done_flag < 2 do
            Domain.cpu_relax ()
          done;
          S.end_op s
        end)
    else
      let st = ref (Int64.of_int ((d * 91) + 7)) in
      let count = ref 0 in
      fun () ->
        let r = rng_next st in
        let k = 1 + (r mod 64) in
        if r mod 2 = 0 then ignore (L.insert l s k)
        else ignore (L.delete l s k);
        incr count;
        if !count = churn_ops then ignore (Atomic.fetch_and_add done_flag 1)
  in
  let res =
    run_workers
      ~label:(Fmt.str "stall/%s" (scheme_name scheme))
      ~domains ~ops_per_domain:churn_ops ~make_worker
      ~stats:(fun () -> (S.max_backlog g, S.reclaimed g))
  in
  { res with total_ops = 2 * churn_ops }

(* Stack and queue throughput rows: 50/50 producer/consumer mixes. *)
let stack_row ~scheme ~domains ~ops_per_domain =
  let (module S) = scheme_module scheme in
  let module T = N_treiber.Make (S) in
  let g = S.create ~ndomains:domains in
  let st = T.create () in
  let make_worker d =
    let s = S.thread g d in
    let rng = ref (Int64.of_int ((d * 31) + 5)) in
    fun () ->
      let r = rng_next rng in
      if r mod 2 = 0 then T.push st s (r mod 1000)
      else ignore (T.pop st s)
  in
  run_workers
    ~label:(Fmt.str "treiber+%s" (scheme_name scheme))
    ~domains ~ops_per_domain ~make_worker
    ~stats:(fun () -> (S.max_backlog g, S.reclaimed g))

let queue_row ~scheme ~domains ~ops_per_domain =
  let (module S) = scheme_module scheme in
  let module Q = N_msqueue.Make (S) in
  let g = S.create ~ndomains:domains in
  let q = Q.create () in
  let make_worker d =
    let s = S.thread g d in
    let rng = ref (Int64.of_int ((d * 53) + 9)) in
    fun () ->
      let r = rng_next rng in
      if r mod 2 = 0 then Q.enqueue q s (r mod 1000)
      else ignore (Q.dequeue q s)
  in
  run_workers
    ~label:(Fmt.str "msqueue+%s" (scheme_name scheme))
    ~domains ~ops_per_domain ~make_worker
    ~stats:(fun () -> (S.max_backlog g, S.reclaimed g))

let pp_result fmt r =
  Fmt.pf fmt "%-24s d=%d ops=%-8d %6.3f s  %8.3f Mops/s  backlog(max)=%-6d \
              reclaimed=%d"
    r.label r.domains r.total_ops r.elapsed_s r.mops r.max_backlog r.reclaimed

module Mem = Era_sched.Mem

let name = "none"
let describe = "no reclamation: retired nodes leak (baseline)"

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points = [ Integration.Alloc_retire_replacement ];
    primitives_linearizable = true;
    uses_rollback = false;
    modifies_ds_fields = false;
    added_fields = 0;
    requires_type_preservation = false;
    special_support = [];
  }

type t = unit
type tctx = Era_sched.Sched.ctx

let create _heap ~nthreads:_ = ()
let thread () ctx = ctx
let global _ = ()
let begin_op _ = ()
let end_op _ = ()

let with_op _t f = f ()

let alloc ctx ~key = Mem.alloc ctx ~key
let retire ctx w = Mem.retire ctx w
let read ctx ~via ~field = Mem.read ctx ~via ~field
let read_key ctx ~via = Mem.read_key ctx ~via
let write ctx ~via ~field v = Mem.write ctx ~via ~field v

let cas ctx ~via ~field ~expected ~desired =
  Mem.cas ctx ~via ~field ~expected ~desired

let enter_read_phase _ = ()
let read_phase t f = enter_read_phase t; f ()
let enter_write_phase _ ~reserve:_ = ()
let quiesce _ = ()

(** The uniform interface every simulated reclamation scheme implements.

    The data structures in [Era_sets] are functorized over this signature,
    so one Harris-list (etc.) source integrates with every scheme. The
    interface is the union of what the paper's Definition 5.3 allows for
    easily-integrated schemes (operation boundaries, [alloc]/[retire]
    replacements, primitive replacements) and the extra hooks that
    hard-integration schemes need ({!S.with_op} restart scopes for
    VBR-style roll-backs and NBR-style neutralization,
    {!S.enter_read_phase}/{!S.enter_write_phase} phase annotations).
    Easy schemes implement the extra hooks as no-ops; which hooks a scheme
    {e requires} is recorded in its {!Integration.spec}, and that record —
    not the OCaml signature — is what the Definition 5.3 audit judges. *)

open Era_sim

module type S = sig
  val name : string
  val describe : string

  val integration : Integration.spec

  type t
  (** Global scheme state (epoch counters, hazard arrays, ...). *)

  type tctx
  (** Per-thread state bound to a scheduler context. *)

  val create : Heap.t -> nthreads:int -> t
  val thread : t -> Era_sched.Sched.ctx -> tctx
  val global : tctx -> t

  (** {2 Operation boundaries (Definition 5.3(2)(1))} *)

  val begin_op : tctx -> unit
  val end_op : tctx -> unit

  val with_op : tctx -> (unit -> 'a) -> 'a
  (** [with_op t f] brackets [f] with {!begin_op}/{!end_op} and provides
      the scheme's restart semantics: VBR re-runs [f] after a roll-back,
      NBR re-runs it after a neutralization. For easy schemes it is
      exactly [begin_op; f (); end_op]. [f] must therefore be written
      restartable (standard for lock-free retry loops). *)

  (** {2 Allocation and retirement (Definition 5.3(2)(2))} *)

  val alloc : tctx -> key:int -> Word.t

  val retire : tctx -> Word.t -> unit
  (** May trigger reclamation of eligible previously-retired nodes. *)

  (** {2 Primitive replacements (Definition 5.3(2)(3))} *)

  val read : tctx -> via:Word.t -> field:int -> Word.t
  (** Linearizable replacement for a pointer-field load; may protect /
      validate / retry internally. The returned word is safe to use iff
      the scheme is applicable to the calling data structure — when it is
      not (e.g. HP on Harris's list), the monitor records the violation. *)

  val read_key : tctx -> via:Word.t -> int
  val write : tctx -> via:Word.t -> field:int -> Word.t -> unit

  val cas :
    tctx -> via:Word.t -> field:int ->
    expected:Word.t -> desired:Word.t -> bool

  (** {2 Phase annotations (NBR-style; no-ops for other schemes)} *)

  val read_phase : tctx -> (unit -> 'a) -> 'a
  (** [read_phase t body] brackets a restartable read phase (ending, if
      the body enters one, with its write phase): NBR re-runs [body] after
      a neutralization, VBR re-runs it after a version roll-back (the
      bracket is VBR's "checkpoint"). Restart granularity matters for
      correctness: an operation that already performed an effect (e.g.
      Harris's delete after its marking CAS) must not be restarted from
      the top, only its in-progress traversal may be — which is exactly
      what bracketing each traversal gives. For easy schemes this is
      [enter_read_phase t; body ()]. [body] must be safe to re-execute
      from its start. *)

  val enter_read_phase : tctx -> unit

  val enter_write_phase : tctx -> reserve:Word.t list -> unit
  (** Publish write-set reservations obtained during the read phase. *)

  (** {2 Maintenance} *)

  val quiesce : tctx -> unit
  (** Best-effort: flush this thread's retire lists if currently eligible
      (tests use it to assert leak-freedom at quiescence). *)
end

(** Exceptions used by hard-integration schemes to restart an operation;
    they never escape {!S.with_op}. *)
exception Rollback
exception Neutralized

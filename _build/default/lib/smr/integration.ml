type insertion_point =
  | Op_boundaries
  | Alloc_retire_replacement
  | Primitive_replacement
  | Phase_annotations
  | Checkpoints
  | Normalized_form

type spec = {
  scheme_name : string;
  provided_as_object : bool;
  insertion_points : insertion_point list;
  primitives_linearizable : bool;
  uses_rollback : bool;
  modifies_ds_fields : bool;
  added_fields : int;
  requires_type_preservation : bool;
  special_support : string list;
}

let allowed_point = function
  | Op_boundaries | Alloc_retire_replacement | Primitive_replacement -> true
  | Phase_annotations | Checkpoints | Normalized_form -> false

let point_name = function
  | Op_boundaries -> "op-boundaries"
  | Alloc_retire_replacement -> "alloc/retire"
  | Primitive_replacement -> "primitive-replacement"
  | Phase_annotations -> "phase-annotations"
  | Checkpoints -> "checkpoints"
  | Normalized_form -> "normalized-form"

let easily_integrated s =
  let failures = ref [] in
  let fail msg = failures := msg :: !failures in
  if not s.provided_as_object then
    fail "condition 1: not provided as a uniform API object";
  List.iter
    (fun p ->
      if not (allowed_point p) then
        fail
          (Fmt.str "condition 2: requires insertion point '%s'"
             (point_name p)))
    s.insertion_points;
  if not s.primitives_linearizable then
    fail "condition 3: primitive replacements are not linearizable";
  if s.uses_rollback then
    fail "condition 4: rolls control back into the plain implementation";
  if s.modifies_ds_fields then
    fail "condition 5: modifies data-structure fields";
  (!failures = [], List.rev !failures)

let pp_spec fmt s =
  let easy, fails = easily_integrated s in
  Fmt.pf fmt "%s: %s" s.scheme_name
    (if easy then "easily integrated"
     else "NOT easily integrated (" ^ String.concat "; " fails ^ ")")

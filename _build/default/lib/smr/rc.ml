open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

let name = "rc"
let describe =
  "reference counting; easy + widely applicable (acyclic), not robust \
   (stalled holders pin whole retired chains)"

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [
        Integration.Op_boundaries;
        Integration.Alloc_retire_replacement;
        Integration.Primitive_replacement;
      ];
    primitives_linearizable = true;
    uses_rollback = false;
    modifies_ds_fields = false;
    added_fields = 1;  (* the reference count *)
    requires_type_preservation = false;
    special_support = [];
  }

type t = {
  heap : Heap.t;
  counts : (int, int) Hashtbl.t;  (* node id -> reference count *)
  retired : (int, Word.t) Hashtbl.t;  (* retired, waiting for count 0 *)
}

type tctx = {
  g : t;
  ctx : Sched.ctx;
  mutable held : Word.t list;  (* references acquired this operation *)
}

let create heap ~nthreads:_ =
  { heap; counts = Hashtbl.create 64; retired = Hashtbl.create 64 }

let thread g ctx = { g; ctx; held = [] }
let global t = t.g

let count g node = Option.value (Hashtbl.find_opt g.counts node) ~default:0

let count_of g w =
  match w with Word.Ptr p -> count g p.node | Word.Null | Word.Int _ -> 0

let pinned g = Hashtbl.length g.retired

let incr_node g node = Hashtbl.replace g.counts node (count g node + 1)

(* Decrement; on reaching zero for a retired node, reclaim it and cascade
   through the references its fields still hold. *)
let rec decr_node t node =
  let g = t.g in
  let c = count g node - 1 in
  if c <= 0 then Hashtbl.remove g.counts node
  else Hashtbl.replace g.counts node c;
  if c <= 0 then
    match Hashtbl.find_opt g.retired node with
    | None -> ()
    | Some w ->
      Hashtbl.remove g.retired node;
      release_fields t w;
      Mem.reclaim t.ctx w

and release_fields t w =
  (* The node is still valid here (retired, about to be reclaimed). *)
  let nfields = (Heap.config t.g.heap).Heap.ptr_fields in
  for f = 0 to nfields - 1 do
    match Mem.peek t.ctx ~via:w ~field:f with
    | Word.Ptr p, Heap.Valid -> decr_node t p.node
    | (Word.Ptr _ | Word.Null | Word.Int _), _ -> ()
  done

let acquire t w =
  match w with
  | Word.Ptr p ->
    incr_node t.g p.node;
    Mem.fence t.ctx ();  (* the count update is a shared step *)
    t.held <- w :: t.held
  | Word.Null | Word.Int _ -> ()

let begin_op t = t.held <- []

let end_op t =
  let held = t.held in
  t.held <- [];
  Mem.fence t.ctx ();
  List.iter
    (fun w ->
      match w with
      | Word.Ptr p -> decr_node t p.node
      | Word.Null | Word.Int _ -> ())
    held

let with_op t f =
  begin_op t;
  let r = f () in
  end_op t;
  r

let alloc t ~key =
  let w = Mem.alloc t.ctx ~key in
  acquire t w;
  w

let retire t w =
  Mem.retire t.ctx w;
  match w with
  | Word.Ptr p ->
    Hashtbl.replace t.g.retired p.node w;
    (* It may already be unreferenced (e.g. a never-published node whose
       only holder is this thread); reclamation then happens when the
       holder releases at end_op, or now if nobody holds it. *)
    if count t.g p.node = 0 then begin
      Hashtbl.remove t.g.retired p.node;
      release_fields t w;
      Mem.reclaim t.ctx w
    end
  | Word.Null | Word.Int _ -> ()

let read t ~via ~field =
  let w = Mem.read t.ctx ~via ~field in
  acquire t w;
  w

let read_key t ~via = Mem.read_key t.ctx ~via

(* Stored-reference accounting: a write/CAS that installs a pointer adds
   a stored reference to its target and drops the one held by the value
   it replaces. Under correct counting the replaced value's logical node
   is the expected word's node: the address cannot have been recycled
   while a stored reference kept its count positive. *)
let stored_swap t ~replaced ~installed =
  (match installed with
  | Word.Ptr p -> incr_node t.g p.node
  | Word.Null | Word.Int _ -> ());
  match replaced with
  | Word.Ptr p -> decr_node t p.node
  | Word.Null | Word.Int _ -> ()

let write t ~via ~field value =
  let old, _ = Mem.peek t.ctx ~via ~field in
  Mem.write t.ctx ~via ~field value;
  stored_swap t ~replaced:old ~installed:value

let cas t ~via ~field ~expected ~desired =
  let ok = Mem.cas t.ctx ~via ~field ~expected ~desired in
  if ok then stored_swap t ~replaced:expected ~installed:desired;
  ok

let enter_read_phase _ = ()
let read_phase t f = enter_read_phase t; f ()
let enter_write_phase _ ~reserve:_ = ()
let quiesce _ = ()

(** Access-awareness auditor (the paper's Appendix C), packaged as a
    reclamation scheme.

    Integrating a data structure with [Phase_audit] runs it with
    no-reclamation semantics while checking the read/write-phase
    discipline that defines {e access-aware} implementations:

    - during a read-only phase, every dereference must go through a
      {e j-permitted} pointer: one derived — within the current phase — by
      a chain of dereferences starting at an entry point, a fresh
      allocation, or another permitted pointer (Appendix C conditions 1–2);
    - during a write phase, every access must go through a pointer that
      was permitted when the last read phase ended and was declared in the
      phase's reservation set (condition 3; the reservation set is how the
      data structure names those pointers).

    Violations of the discipline are counted (not raised): a structure is
    access-aware evidence-wise when arbitrary executions audit clean.
    Experiment E7 uses this to re-derive Appendix D (Harris's list is
    access-aware). *)

include Smr_intf.S

val discipline_violations : t -> (string * int) list
(** [(description, count)] of distinct discipline violations observed. *)

val total_violations : t -> int

(** Static integration metadata for a reclamation scheme, mirroring
    Definition 5.3 (easy integration) condition by condition.

    Every scheme in this library declares how it plugs into a plain
    implementation; {!easily_integrated} audits the declaration against
    the five conditions. This is the paper's "E" property as an executable
    checklist — deliberately static, because ease of integration is a
    property of the scheme's {e interface}, not of any particular run. *)

type insertion_point =
  | Op_boundaries
      (** code inserted at operation invocation/termination
          (Definition 5.3(2)(1)) *)
  | Alloc_retire_replacement  (** replaces [alloc()]/[retire()] (2)(2) *)
  | Primitive_replacement
      (** replaces primitive memory accesses (2)(3) *)
  | Phase_annotations
      (** requires dividing the code into read/write phases (NBR, FA) —
          not among the allowed locations *)
  | Checkpoints
      (** requires installing checkpoints to roll back to (VBR) — not
          among the allowed locations *)
  | Normalized_form
      (** requires transforming the implementation into normalized form
          (AOA) — not among the allowed locations *)

type spec = {
  scheme_name : string;
  provided_as_object : bool;  (** Condition 1: uniform API object *)
  insertion_points : insertion_point list;  (** Condition 2 *)
  primitives_linearizable : bool;  (** Condition 3 *)
  uses_rollback : bool;
      (** Condition 4 (violated): control can leave a scheme operation
          into a point of the plain implementation (restarts / longjmp) *)
  modifies_ds_fields : bool;  (** Condition 5 (violated) *)
  added_fields : int;
      (** node fields the scheme adds for itself (allowed by Cond. 5) *)
  requires_type_preservation : bool;
  special_support : string list;
      (** e.g. ["OS signals"], ["wide CAS"]; informational *)
}

val allowed_point : insertion_point -> bool

val easily_integrated : spec -> bool * string list
(** [true] iff all five conditions hold; otherwise the list names every
    failing condition. *)

val pp_spec : Format.formatter -> spec -> unit
val point_name : insertion_point -> string

(** The no-reclamation baseline: retired nodes are never reclaimed.

    Trivially safe (no pointer ever becomes invalid), strongly applicable
    and easily integrated — and maximally non-robust: the retired count
    grows without bound even with no stalled thread. The degenerate corner
    of the ERA triangle. *)

include Smr_intf.S

open Era_sim
module Mem = Era_sched.Mem
module Sched = Era_sched.Sched

let name = "phase-audit"
let describe = "access-awareness auditor (Appendix C); no reclamation"

let integration : Integration.spec =
  {
    scheme_name = name;
    provided_as_object = true;
    insertion_points =
      [
        Integration.Op_boundaries;
        Integration.Alloc_retire_replacement;
        Integration.Primitive_replacement;
        Integration.Phase_annotations;
      ];
    primitives_linearizable = true;
    uses_rollback = false;
    modifies_ds_fields = false;
    added_fields = 0;
    requires_type_preservation = false;
    special_support = [];
  }

module Int_set = Set.Make (Int)

type t = {
  heap : Heap.t;
  counts : (string, int) Hashtbl.t;
}

type phase =
  | Read_phase
  | Write_phase

type tctx = {
  g : t;
  ctx : Sched.ctx;
  mutable phase : phase;
  mutable permitted : Int_set.t;  (* node ids permitted in current phase *)
  mutable reserved : Int_set.t;  (* write-phase reservation set *)
  mutable locals : Int_set.t;
      (* own allocations: permitted while still local (App. C cond. 1) *)
}

let create heap ~nthreads:_ = { heap; counts = Hashtbl.create 16 }

let thread g ctx =
  { g; ctx; phase = Read_phase; permitted = Int_set.empty;
    reserved = Int_set.empty; locals = Int_set.empty }

let global t = t.g

let flag t msg =
  let n = Option.value (Hashtbl.find_opt t.g.counts msg) ~default:0 in
  Hashtbl.replace t.g.counts msg (n + 1)

let discipline_violations g =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) g.counts []
  |> List.sort compare

let total_violations g = Hashtbl.fold (fun _ v acc -> acc + v) g.counts 0

let is_entry t w =
  match w with
  | Word.Ptr p -> Heap.is_entry t.g.heap ~addr:p.addr
  | Word.Null | Word.Int _ -> false

let node_id = function
  | Word.Ptr p -> Some p.node
  | Word.Null | Word.Int _ -> None

let is_local_alloc t w =
  match w with
  | Word.Ptr p -> (
    Int_set.mem p.node t.locals
    &&
    match Heap.cell_state t.g.heap ~addr:p.addr with
    | Lifecycle.Local _ -> true
    | Lifecycle.Shared | Retired | Unallocated -> false)
  | Word.Null | Word.Int _ -> false

let permitted_now t w =
  is_entry t w || is_local_alloc t w
  ||
  match node_id w with
  | Some n -> Int_set.mem n t.permitted
  | None -> true  (* null/int carry no permission question *)

(* A dereference during the write phase must go through an entry point or
   a pointer reserved at the phase boundary (Appendix C conditions 2-3). *)
let check_deref t w what =
  match t.phase with
  | Read_phase ->
    if not (permitted_now t w) then
      flag t (Fmt.str "read-phase %s through non-permitted pointer" what)
  | Write_phase ->
    let ok =
      is_entry t w || is_local_alloc t w
      ||
      match node_id w with
      | Some n -> Int_set.mem n t.reserved || Int_set.mem n t.permitted
      | None -> true
    in
    if not ok then
      flag t (Fmt.str "write-phase %s through unreserved pointer" what)

let grant t w =
  match node_id w with
  | Some n -> t.permitted <- Int_set.add n t.permitted
  | None -> ()

let begin_op t =
  t.phase <- Read_phase;
  t.permitted <- Int_set.empty;
  t.reserved <- Int_set.empty;
  t.locals <- Int_set.empty

let end_op t =
  t.phase <- Read_phase;
  t.permitted <- Int_set.empty;
  t.reserved <- Int_set.empty;
  t.locals <- Int_set.empty

let with_op t f =
  begin_op t;
  let r = f () in
  end_op t;
  r

let enter_read_phase t =
  t.phase <- Read_phase;
  t.permitted <- Int_set.empty;
  t.reserved <- Int_set.empty

let read_phase t f =
  enter_read_phase t;
  f ()

let enter_write_phase t ~reserve =
  (* The reservations must themselves be permitted at the boundary. *)
  List.iter
    (fun w ->
      if not (permitted_now t w) then
        flag t "reservation of a non-permitted pointer")
    reserve;
  t.phase <- Write_phase;
  t.reserved <-
    List.fold_left
      (fun acc w ->
        match node_id w with
        | Some n -> Int_set.add n acc
        | None -> acc)
      Int_set.empty reserve

let alloc t ~key =
  let w = Mem.alloc t.ctx ~key in
  (match node_id w with
  | Some n -> t.locals <- Int_set.add n t.locals
  | None -> ());
  grant t w;
  w

let retire t w =
  (* Retirement is not a shared-memory access (Appendix C); never flag. *)
  Mem.retire t.ctx w

let read t ~via ~field =
  check_deref t via "read";
  let w = Mem.read t.ctx ~via ~field in
  (match t.phase with Read_phase -> grant t w | Write_phase -> ());
  w

let read_key t ~via =
  check_deref t via "key read";
  Mem.read_key t.ctx ~via

let write t ~via ~field v =
  (match t.phase with
  | Write_phase -> ()
  | Read_phase ->
    (* Writes to still-local nodes are allowed in a read phase; shared
       writes are not. *)
    (match via with
    | Word.Ptr p -> (
      match Heap.cell_state t.g.heap ~addr:p.addr with
      | Lifecycle.Local _ -> ()
      | Lifecycle.Shared | Retired | Unallocated ->
        flag t "shared write during a read-only phase")
    | Word.Null | Word.Int _ -> ()));
  check_deref t via "write";
  Mem.write t.ctx ~via ~field v

let cas t ~via ~field ~expected ~desired =
  (match t.phase with
  | Write_phase -> ()
  | Read_phase -> flag t "CAS during a read-only phase");
  check_deref t via "CAS";
  Mem.cas t.ctx ~via ~field ~expected ~desired

let quiesce _ = ()

lib/smr/ibr.ml: Array Era_sched Era_sim Event Integration List Smr_intf Word

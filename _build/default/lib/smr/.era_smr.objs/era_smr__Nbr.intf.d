lib/smr/nbr.mli: Smr_intf

lib/smr/registry.mli: Integration Smr_intf

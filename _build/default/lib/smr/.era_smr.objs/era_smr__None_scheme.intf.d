lib/smr/none_scheme.mli: Smr_intf

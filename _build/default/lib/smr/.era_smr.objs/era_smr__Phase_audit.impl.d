lib/smr/phase_audit.ml: Era_sched Era_sim Fmt Hashtbl Heap Int Integration Lifecycle List Option Set Word

lib/smr/none_scheme.ml: Era_sched Integration

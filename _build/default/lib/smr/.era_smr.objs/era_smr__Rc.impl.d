lib/smr/rc.ml: Era_sched Era_sim Hashtbl Heap Integration List Option Word

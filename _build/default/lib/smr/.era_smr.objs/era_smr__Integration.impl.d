lib/smr/integration.ml: Fmt List String

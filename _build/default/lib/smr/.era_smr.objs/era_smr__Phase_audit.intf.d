lib/smr/phase_audit.mli: Smr_intf

lib/smr/vbr.ml: Array Era_sched Era_sim Event Heap Integration Lifecycle List Smr_intf Word

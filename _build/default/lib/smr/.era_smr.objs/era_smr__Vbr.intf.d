lib/smr/vbr.mli: Smr_intf

lib/smr/integration.mli: Format

lib/smr/he.ml: Array Era_sched Era_sim Event Integration List Word

lib/smr/smr_intf.ml: Era_sched Era_sim Heap Integration Word

lib/smr/registry.ml: Ebr Fmt He Hp Ibr Integration List Nbr None_scheme Rc Smr_intf Vbr

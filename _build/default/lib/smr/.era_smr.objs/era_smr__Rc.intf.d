lib/smr/rc.mli: Era_sim Smr_intf

lib/smr/ebr.ml: Array Era_sched Era_sim Event Integration List Word

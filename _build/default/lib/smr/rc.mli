(** Lock-free reference counting (in the style of Detlefs et al. [13] /
    Gidenstam et al. [17], simplified to acyclic structures).

    Every node carries a count of its references: one per thread-held
    pointer (acquired by the [read]/[alloc] replacements, released at
    operation end) and one per pointer stored in a shared node field
    (adjusted by the [write]/[cas] replacements). A retired node is
    reclaimed the moment its count reaches zero; reclamation cascades
    through the dead node's own pointer fields.

    ERA profile — reproducing the paper's Section 2 remark that
    "reference counting-based schemes are usually not robust":
    {b E} (pure primitive replacement, no roll-backs) and {b A} (safe
    even on Harris's list: a counted node is never reclaimed while
    reachable through held or stored references, so traversals of marked
    chains stay valid), but {b not} R — in the Figure 1 execution the
    stalled reader holds node 1, node 1's field references node 2, and so
    on: the {e entire} retired chain is transitively pinned, so the
    backlog grows without bound. (The classical caveat — cycles are never
    reclaimed — does not arise in this library's acyclic structures.) *)

include Smr_intf.S

val count_of : t -> Era_sim.Word.t -> int
(** Current reference count of a node (tests). *)

val pinned : t -> int
(** Retired-but-counted nodes currently pinned (tests). *)

(* Benchmark and experiment harness: regenerates every figure and claim
   table of the paper (experiments E1-E9 of DESIGN.md), then runs the
   Bechamel microbenchmarks (B1-B5).

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- quick     # smaller parameters *)

open Bechamel
module Sched = Era_sched.Sched

let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick"
let section title = Fmt.pr "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* E1: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1 | Figure 1: the Theorem 6.1 execution (Harris list, N=2)";
  let rounds = if quick then 128 else 1024 in
  let results = Era.Figure1.run_all ~rounds () in
  List.iter (fun r -> Fmt.pr "  %a@." Era.Figure1.pp_result r) results;
  (* The figure's series: retired backlog vs churn round. *)
  Fmt.pr "@.  retired backlog after n churn rounds (the figure's series):@.";
  let points =
    List.filter (fun p -> p <= rounds) [ 16; 64; 256; 1024 ]
  in
  Fmt.pr "  %-6s" "scheme";
  List.iter (fun p -> Fmt.pr "%8s" ("n=" ^ string_of_int p)) points;
  Fmt.pr "@.";
  List.iter
    (fun r ->
      Fmt.pr "  %-6s" r.Era.Figure1.scheme;
      List.iter
        (fun p ->
          match List.assoc_opt p r.Era.Figure1.series with
          | Some v -> Fmt.pr "%8d" v
          | None -> Fmt.pr "%8s" "-")
        points;
      Fmt.pr "@.")
    results

(* ------------------------------------------------------------------ *)
(* E2: Figure 2                                                        *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2 | Figure 2: protection defeated on Harris's list";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Figure2.pp_result r)
    (Era.Figure2.run_all ())

(* ------------------------------------------------------------------ *)
(* E3: robustness classification                                       *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3 | Robustness classes (Definitions 5.1/5.2)";
  let churn_points = if quick then [ 64; 256 ] else [ 128; 256; 512; 1024 ] in
  let size_points = if quick then [ 32; 96 ] else [ 32; 64; 128; 256 ] in
  List.iter
    (fun m -> Fmt.pr "  %a@." Era.Robustness.pp_measurement m)
    (Era.Robustness.classify_all ~churn_points ~size_points ())

(* ------------------------------------------------------------------ *)
(* E4: applicability matrix                                            *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4 | Applicability matrix (Definitions 5.4/5.6)";
  let fuzz_runs = if quick then 4 else 12 in
  let matrix = Era.Applicability.matrix ~fuzz_runs () in
  Fmt.pr "  %-6s" "";
  List.iter
    (fun st -> Fmt.pr "%-15s" (Era.Applicability.structure_name st))
    Era.Applicability.structures;
  Fmt.pr "@.";
  List.iter
    (fun (scheme, verdicts) ->
      Fmt.pr "  %-6s" scheme;
      List.iter
        (fun (_, v) ->
          Fmt.pr "%-15s"
            (if Era.Applicability.applicable v then "yes" else "NO"))
        verdicts;
      Fmt.pr "@.")
    matrix

(* ------------------------------------------------------------------ *)
(* E5: easy-integration audit                                          *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5 | Easy-integration audit (Definition 5.3)";
  List.iter
    (fun s ->
      Fmt.pr "  %a@." Era_smr.Integration.pp_spec
        (Era_smr.Registry.integration_of s))
    Era_smr.Registry.all

(* ------------------------------------------------------------------ *)
(* E6: the ERA matrix                                                  *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6 | The ERA matrix (Theorem 6.1)";
  let rows =
    if quick then
      Era.Era_matrix.compute ~fuzz_runs:4 ~churn_points:[ 64; 256 ]
        ~size_points:[ 32; 96 ] ()
    else Era.Era_matrix.compute ~fuzz_runs:8 ()
  in
  Fmt.pr "%a" Era.Era_matrix.pp_table rows

(* ------------------------------------------------------------------ *)
(* E7: access-aware audit                                              *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7 | Access-aware discipline audit (Appendices C/D)";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Access_aware.pp_report r)
    (Era.Access_aware.audit_all ~runs:(if quick then 3 else 8) ());
  Fmt.pr "  negative control flags: %a@."
    Fmt.(list ~sep:semi (pair ~sep:(any " x") string int))
    (Era.Access_aware.negative_control ())

(* ------------------------------------------------------------------ *)
(* E8/E9: native throughput and backlog                                *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8 | Native: Harris vs Michael's HP-compatible list";
  let open Era_native.Throughput in
  let ops = if quick then 50_000 else 200_000 in
  List.iter
    (fun (kind, scheme, mix, domains) ->
      Fmt.pr "  %a@." pp_result
        (e8_row kind ~scheme mix ~domains ~ops_per_domain:ops))
    [
      (Harris, `Ebr, Churn, 1); (Michael, `Ebr, Churn, 1);
      (Michael, `Hp, Churn, 1); (Michael, `Ibr, Churn, 1);
      (Harris, `Ebr, Churn, 2); (Michael, `Hp, Churn, 2);
      (Harris, `Ebr, Read_heavy, 1); (Michael, `Ebr, Read_heavy, 1);
      (Michael, `Hp, Read_heavy, 1); (Michael, `Ibr, Read_heavy, 1);
      (Harris, `Ebr, Read_heavy, 2); (Michael, `Hp, Read_heavy, 2);
    ]

let e8b () =
  section "E8b | Native: stack and queue throughput per scheme";
  let open Era_native.Throughput in
  let ops = if quick then 50_000 else 200_000 in
  List.iter
    (fun scheme ->
      Fmt.pr "  %a@." pp_result (stack_row ~scheme ~domains:2 ~ops_per_domain:ops);
      Fmt.pr "  %a@." pp_result (queue_row ~scheme ~domains:2 ~ops_per_domain:ops))
    [ `None; `Ebr; `Hp; `Ibr ]

let e9 () =
  section "E9 | Native: retired backlog with a stalled domain";
  let open Era_native.Throughput in
  let ops = if quick then 50_000 else 200_000 in
  List.iter
    (fun s -> Fmt.pr "  %a@." pp_result (e9_row ~scheme:s ~churn_ops:ops))
    [ `Ebr; `Hp; `Ibr ]

(* ------------------------------------------------------------------ *)
(* E10/E11: ablations                                                  *)
(* ------------------------------------------------------------------ *)

let e10 () =
  section "E10 | Ablation: HP scan threshold (space vs scan-frequency)";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_hp_row r)
    (Era.Ablation.hp_sweep
       ~thresholds:(if quick then [ 2; 32 ] else [ 2; 8; 32; 128 ])
       ());
  Fmt.pr
    "  (the bounded backlog tracks the threshold: the Braginsky et al. \
     space/time dial)@."

let e11 () =
  section "E11 | Ablation: IBR epoch granularity vs the theorem";
  List.iter
    (fun r -> Fmt.pr "  %a@." Era.Ablation.pp_ibr_row r)
    (Era.Ablation.ibr_sweep ~rates:(if quick then [ 1; 16 ] else [ 1; 4; 16; 64 ]) ());
  Fmt.pr
    "  (coarse epochs dodge the stock Figure 2 schedule but Figure 1 \
     defeats every@.   granularity: no tuning restores wide \
     applicability)@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)
(* ------------------------------------------------------------------ *)

let run_bechamel test =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.5))
      ()
  in
  let raw = Benchmark.all cfg instances test in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold (fun name r acc -> (name, r) :: acc) res []
  |> List.sort compare
  |> List.iter (fun (name, r) ->
         match Analyze.OLS.estimates r with
         | Some [ t ] ->
           Fmt.pr "  %-44s %12.1f ns/op%s@." name t
             (match Analyze.OLS.r_square r with
             | Some r2 -> Fmt.str "   (r² %.3f)" r2
             | None -> "")
         | _ -> Fmt.pr "  %-44s (no estimate)@." name)

(* B1: simulated per-operation cost of each scheme's read path. *)
let b1_sim_read_cost () =
  section "B1 | Simulated contains() cost per scheme (list of 64 keys)";
  let make_one (module S : Era_smr.Smr_intf.S) =
    let mon = Era_sim.Monitor.create ~mode:`Record ~trace:false () in
    let heap = Era_sim.Heap.create mon in
    let sched = Sched.create ~nthreads:1 Sched.Round_robin heap in
    let module L = Era_sets.Harris_list.Make (S) in
    let g = S.create heap ~nthreads:1 in
    let ext = Sched.external_ctx sched ~tid:0 in
    let dl = L.create ext g in
    let h = L.handle dl ext in
    for k = 1 to 64 do
      ignore (L.insert h k)
    done;
    let i = ref 0 in
    Test.make ~name:("sim-contains/" ^ S.name)
      (Staged.stage (fun () ->
           incr i;
           ignore (L.contains h (1 + (!i mod 64)))))
  in
  run_bechamel
    (Test.make_grouped ~name:"sim-contains"
       (List.map make_one Era_smr.Registry.all))

(* B2: simulated alloc/retire/reclaim cycle per scheme. *)
let b2_sim_lifecycle_cost () =
  section "B2 | Simulated alloc+retire cycle per scheme";
  let make_one (module S : Era_smr.Smr_intf.S) =
    let mon = Era_sim.Monitor.create ~mode:`Record ~trace:false () in
    let heap = Era_sim.Heap.create mon in
    let sched = Sched.create ~nthreads:1 Sched.Round_robin heap in
    let g = S.create heap ~nthreads:1 in
    let t = S.thread g (Sched.external_ctx sched ~tid:0) in
    Test.make ~name:("sim-alloc-retire/" ^ S.name)
      (Staged.stage (fun () ->
           S.with_op t (fun () ->
               let w = S.alloc t ~key:1 in
               S.retire t w)))
  in
  run_bechamel
    (Test.make_grouped ~name:"sim-alloc-retire"
       (List.map make_one Era_smr.Registry.all))

(* B3: native read cost: the real price of HP's protect-validate. *)
let b3_native_read_cost () =
  section "B3 | Native contains() cost (Michael list of 256 keys)";
  let tests =
    let make (type a) name (module S : Era_native.Nsmr.S with type t = a) =
      let module L = Era_native.N_michael.Make (S) in
      let g = S.create ~ndomains:1 in
      let s = S.thread g 0 in
      let l = L.create () in
      for k = 1 to 256 do
        ignore (L.insert l s k)
      done;
      let i = ref 0 in
      Test.make ~name:("native-contains/" ^ name)
        (Staged.stage (fun () ->
             incr i;
             ignore (L.contains l s (1 + (!i mod 256)))))
    in
    [
      make "none" (module Era_native.N_none);
      make "ebr" (module Era_native.N_ebr);
      make "hp" (module Era_native.N_hp);
      make "ibr" (module Era_native.N_ibr);
    ]
  in
  run_bechamel (Test.make_grouped ~name:"native-contains" tests)

(* B4: linearizability checker scaling in history length. *)
let b4_checker_scaling () =
  section "B4 | Linearizability checker cost vs history length";
  let history_of_length n =
    (* A width-2 concurrent history generated from a real run. *)
    let mon = Era_sim.Monitor.create ~mode:`Raise ~trace:true () in
    let heap = Era_sim.Heap.create mon in
    let sched =
      Sched.create ~nthreads:2 (Sched.Random (Era_sim.Rng.create 5)) heap
    in
    let module L = Era_sets.Harris_list.Make (Era_smr.Ebr) in
    let g = Era_smr.Ebr.create heap ~nthreads:2 in
    let ext = Sched.external_ctx sched ~tid:0 in
    let dl = L.create ext g in
    for tid = 0 to 1 do
      Sched.spawn sched ~tid (fun ctx ->
          let ops = L.ops (L.handle dl ctx) ~record:true in
          Era_workload.Workload.run_set_ops ops
            (Era_sim.Rng.create (tid + 3))
            ~ops:(n / 2)
            ~keys:(Era_workload.Workload.Uniform 6)
            ~mix:Era_workload.Workload.balanced)
    done;
    ignore (Sched.run sched);
    Era_history.History.of_monitor mon
  in
  let tests =
    List.map
      (fun n ->
        let h = history_of_length n in
        Test.make ~name:(Fmt.str "linearize/%d-ops" n)
          (Staged.stage (fun () ->
               ignore
                 (Era_history.Linearize.check
                    (module Era_history.Spec.Int_set)
                    h))))
      [ 16; 32; 64; 128 ]
  in
  run_bechamel (Test.make_grouped ~name:"linearize" tests)

(* B5: scheduler quantum overhead. *)
let b5_scheduler_overhead () =
  section "B5 | Scheduler cost per quantum (fiber suspend/resume)";
  let test =
    Test.make ~name:"sched/quantum"
      (Staged.stage (fun () ->
           let mon = Era_sim.Monitor.create ~mode:`Record ~trace:false () in
           let heap = Era_sim.Heap.create mon in
           let sched = Sched.create ~nthreads:2 Sched.Round_robin heap in
           for tid = 0 to 1 do
             Sched.spawn sched ~tid (fun ctx ->
                 for _ = 1 to 50 do
                   Sched.yield ctx
                 done)
           done;
           ignore (Sched.run sched)))
  in
  Fmt.pr "  (one run = 2 fibers x 50 yields + setup)@.";
  run_bechamel test

let () =
  Fmt.pr
    "ERA theorem reproduction — experiment and benchmark harness%s@."
    (if quick then " (quick mode)" else "");
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e8b ();
  e9 ();
  e10 ();
  e11 ();
  b1_sim_read_cost ();
  b2_sim_lifecycle_cost ();
  b3_native_read_cost ();
  b4_checker_scaling ();
  b5_scheduler_overhead ();
  Fmt.pr "@.done.@."

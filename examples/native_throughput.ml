(* The practical side of the theorem (experiments E8/E9) on real
   domains: what demanding an HP-compatible list costs, and what EBR's
   missing robustness costs.

     dune exec examples/native_throughput.exe            # quick
     dune exec examples/native_throughput.exe -- full    # bigger runs *)

open Era_native.Throughput

let () =
  let ops =
    if Array.length Sys.argv > 1 && Sys.argv.(1) = "full" then 400_000
    else 60_000
  in
  Fmt.pr "E8 — Harris's list vs Michael's HP-compatible restructuring@.@.";
  let grid =
    [
      (Harris, `Ebr, Churn); (Michael, `Ebr, Churn); (Michael, `Hp, Churn);
      (Harris, `Ebr, Read_heavy); (Michael, `Ebr, Read_heavy);
      (Michael, `Hp, Read_heavy); (Michael, `Ibr, Churn);
    ]
  in
  List.iter
    (fun (kind, scheme, mix) ->
      let r = e8_row kind ~scheme mix ~domains:2 ~ops_per_domain:ops in
      Fmt.pr "  %a@." pp_result r)
    grid;
  Fmt.pr
    "@.Expected shape: under read-heavy mixes Harris+EBR beats \
     Michael+HP (protection@.costs two loads and a fence per step, and \
     Michael restarts on every marked@.node); HP+Harris is refused — it \
     is the unsafe pairing.@.";
  Fmt.pr "@.E9 — retired backlog with one stalled domain@.@.";
  List.iter
    (fun s ->
      let r = e9_row ~scheme:s ~churn_ops:ops () in
      Fmt.pr "  %a@." pp_result r)
    [ `Ebr; `Hp; `Ibr ];
  Fmt.pr
    "@.Expected shape: EBR's backlog grows with the churn volume (the \
     stalled domain@.pins its epoch: not robust); HP and IBR stay \
     bounded.@."

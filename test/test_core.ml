(* Tests for the core ERA experiments: Figures 1/2, the robustness
   classifier, the applicability matrix, the access-aware audit and the
   theorem itself. Expected outcomes are the paper's claims. *)

let scheme = Era_smr.Registry.find_exn

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let fig1_expect name check () =
  let r = Era.Figure1.run ~rounds:128 (scheme name) in
  check r

let is_robustness_violation r =
  match r.Era.Figure1.outcome with
  | Era.Figure1.Robustness_violated _ -> true
  | _ -> false

let is_safety_violation r =
  match r.Era.Figure1.outcome with
  | Era.Figure1.Safety_violated _ -> true
  | _ -> false

let is_survival r =
  match r.Era.Figure1.outcome with
  | Era.Figure1.Survived _ -> true
  | _ -> false

let test_fig1_ebr =
  fig1_expect "ebr" (fun r ->
      Alcotest.(check bool) "robustness violated" true
        (is_robustness_violation r);
      Alcotest.(check bool) "easy" true r.Era.Figure1.easily_integrated;
      (* The backlog grows ~1 node per churn round while max_active = 4. *)
      (match r.Era.Figure1.outcome with
      | Era.Figure1.Robustness_violated { retired_end; max_active } ->
        Alcotest.(check bool) "backlog ~ rounds" true (retired_end >= 100);
        Alcotest.(check bool) "max_active tiny" true (max_active <= 6)
      | _ -> ());
      (* EBR stays safe: T1's solo run completes without violation. *)
      Alcotest.(check string) "T1 finished" "finished" r.Era.Figure1.t1_outcome)

let test_fig1_none =
  fig1_expect "none" (fun r ->
      Alcotest.(check bool) "leaks" true (is_robustness_violation r))

let test_fig1_protection name =
  fig1_expect name (fun r ->
      Alcotest.(check bool)
        (name ^ " loses safety") true (is_safety_violation r);
      Alcotest.(check bool) "easy" true r.Era.Figure1.easily_integrated)

let test_fig1_hard name =
  fig1_expect name (fun r ->
      Alcotest.(check bool) (name ^ " survives") true (is_survival r);
      Alcotest.(check bool) "not easy" false r.Era.Figure1.easily_integrated;
      match r.Era.Figure1.outcome with
      | Era.Figure1.Survived { retired_peak } ->
        Alcotest.(check bool) "bounded peak" true (retired_peak <= 32)
      | _ -> ())

(* DEBRA+ is the fourth Figure 1 outcome: it survives (the stalled
   thread is neutralized, so the epoch keeps moving and the backlog
   stays bounded) *while* passing the Definition 5.3 audit — the
   easy+robust corner EBR and NBR each miss one half of. *)
let test_fig1_debra =
  fig1_expect "debra" (fun r ->
      Alcotest.(check bool) "debra survives" true (is_survival r);
      Alcotest.(check bool) "easy" true r.Era.Figure1.easily_integrated;
      Alcotest.(check string) "T1 finished" "finished" r.Era.Figure1.t1_outcome;
      match r.Era.Figure1.outcome with
      | Era.Figure1.Survived { retired_peak } ->
        Alcotest.(check bool) "bounded peak" true (retired_peak <= 32)
      | _ -> ())

let test_fig1_series_monotone () =
  (* For EBR the series is (essentially) monotonically increasing. *)
  let r = Era.Figure1.run ~rounds:64 (scheme "ebr") in
  let rec non_decreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b + 2 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "series grows" true (non_decreasing r.Era.Figure1.series);
  Alcotest.(check int) "one sample per churn round + delete(1)" 64
    (List.length r.Era.Figure1.series - 1)

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let fig2_unsafe name () =
  let r = Era.Figure2.run (scheme name) in
  Alcotest.(check bool) (name ^ " unsafe") true
    (match r.Era.Figure2.outcome with Era.Figure2.Unsafe _ -> true | _ -> false)

let fig2_safe name () =
  let r = Era.Figure2.run (scheme name) in
  (match r.Era.Figure2.outcome with
  | Era.Figure2.Safe_completion _ -> ()
  | Era.Figure2.Unsafe v ->
    Alcotest.failf "%s should be safe, got %a" name Era_sim.Event.pp v);
  (* 15 and 43 deleted, 58 inserted: the final list is {58, 76}. *)
  Alcotest.(check (list int)) "final contents" [ 58; 76 ]
    r.Era.Figure2.final_list

(* The Appendix E footnote: with node 43 inserted before T1's
   protection, the era/interval reservations of HE and IBR cover it and
   the run is safe; HP protects addresses and is defeated either way. *)
let test_fig2_footnote () =
  let outcome name =
    match
      (Era.Figure2.run_footnote_variant (scheme name)).Era.Figure2.outcome
    with
    | Era.Figure2.Unsafe _ -> "unsafe"
    | Era.Figure2.Safe_completion _ -> "safe"
  in
  Alcotest.(check string) "hp defeated either way" "unsafe" (outcome "hp");
  Alcotest.(check string) "ibr covered" "safe" (outcome "ibr");
  Alcotest.(check string) "he covered" "safe" (outcome "he");
  Alcotest.(check string) "ebr still safe" "safe" (outcome "ebr")

(* ------------------------------------------------------------------ *)
(* Robustness classes                                                  *)
(* ------------------------------------------------------------------ *)

let classify name =
  (Era.Robustness.classify ~churn_points:[ 64; 256 ] ~size_points:[ 32; 96 ]
     (scheme name))
    .Era.Robustness.clazz

let test_robustness_classes () =
  let check name expected =
    Alcotest.(check string) name
      (Era.Robustness.clazz_name expected)
      (Era.Robustness.clazz_name (classify name))
  in
  check "none" Era.Robustness.Not_robust;
  check "ebr" Era.Robustness.Not_robust;
  check "hp" Era.Robustness.Robust;
  check "ibr" Era.Robustness.Weakly_robust;
  check "he" Era.Robustness.Weakly_robust;
  check "vbr" Era.Robustness.Robust;
  check "rc" Era.Robustness.Not_robust;
  check "nbr" Era.Robustness.Robust;
  check "debra" Era.Robustness.Robust

let test_size_sweep_scaling () =
  (* IBR's pinned backlog scales with the structure size; VBR's does
     not. *)
  let ibr_small = Era.Robustness.size_sweep_point (scheme "ibr") ~size:32 in
  let ibr_big = Era.Robustness.size_sweep_point (scheme "ibr") ~size:128 in
  Alcotest.(check bool) "ibr scales" true (ibr_big >= ibr_small + 64);
  let vbr_small = Era.Robustness.size_sweep_point (scheme "vbr") ~size:32 in
  let vbr_big = Era.Robustness.size_sweep_point (scheme "vbr") ~size:128 in
  Alcotest.(check bool) "vbr flat" true (abs (vbr_big - vbr_small) <= 4)

(* ------------------------------------------------------------------ *)
(* Applicability                                                       *)
(* ------------------------------------------------------------------ *)

let test_applicability_claims () =
  let applicable name structure =
    Era.Applicability.applicable
      (Era.Applicability.run ~fuzz_runs:4 (scheme name) structure)
  in
  Alcotest.(check bool) "ebr on harris" true
    (applicable "ebr" Era.Applicability.Harris);
  Alcotest.(check bool) "hp NOT on harris" false
    (applicable "hp" Era.Applicability.Harris);
  Alcotest.(check bool) "hp on michael" true
    (applicable "hp" Era.Applicability.Michael);
  Alcotest.(check bool) "ibr NOT on harris" false
    (applicable "ibr" Era.Applicability.Harris);
  Alcotest.(check bool) "he NOT on hash-harris" false
    (applicable "he" Era.Applicability.Hash);
  Alcotest.(check bool) "hp on hash-michael (pick your structure!)" true
    (applicable "hp" Era.Applicability.Hash_michael);
  Alcotest.(check bool) "vbr on harris" true
    (applicable "vbr" Era.Applicability.Harris);
  Alcotest.(check bool) "nbr on harris" true
    (applicable "nbr" Era.Applicability.Harris);
  Alcotest.(check bool) "debra NOT on michael (restarts)" false
    (applicable "debra" Era.Applicability.Michael);
  Alcotest.(check bool) "debra NOT on harris (restarts)" false
    (applicable "debra" Era.Applicability.Harris)

(* The deterministic version of DEBRA+'s applicability loss: suspend a
   delete right after its marking CAS, neutralize it, and watch the
   restarted operation answer [false] for the key it already deleted.
   NBR faces the identical schedule and survives (write phases shield
   the signal); EBR never neutralizes at all. *)
let test_neutralize_scenario () =
  let chk name structure =
    Era.Applicability.neutralize_check
      (Era_smr.Registry.find_exn name)
      structure
  in
  List.iter
    (fun st ->
      Alcotest.(check bool)
        (Fmt.str "debra non-linearizable on %s"
           (Era.Applicability.structure_name st))
        true (chk "debra" st))
    [
      Era.Applicability.Michael;
      Era.Applicability.Harris;
      Era.Applicability.Hash;
      Era.Applicability.Hash_michael;
    ];
  Alcotest.(check bool) "ebr survives the schedule" false
    (chk "ebr" Era.Applicability.Michael);
  Alcotest.(check bool) "nbr survives the schedule" false
    (chk "nbr" Era.Applicability.Michael);
  Alcotest.(check bool) "hp survives the schedule" false
    (chk "hp" Era.Applicability.Michael);
  Alcotest.(check bool) "vbr survives the schedule" false
    (chk "vbr" Era.Applicability.Michael)

(* Black-box confirmation: a stall-augmented fuzzer with no knowledge of
   the Figure 1 construction still finds the HP/HE/IBR violations on
   Harris's list, and finds nothing against the applicable schemes. *)
let test_stall_fuzz_discovers () =
  let found name =
    (Era.Applicability.stall_fuzz ~tries:30 ~seed:1 (scheme name)
       Era.Applicability.Harris)
      .Era_explore.Explore.fz_found
  in
  Alcotest.(check bool) "hp found" true (found "hp" > 0);
  Alcotest.(check bool) "ibr found" true (found "ibr" > 0);
  Alcotest.(check bool) "he found" true (found "he" > 0);
  Alcotest.(check int) "ebr clean" 0 (found "ebr");
  Alcotest.(check int) "vbr clean" 0 (found "vbr");
  Alcotest.(check int) "nbr clean" 0 (found "nbr");
  Alcotest.(check int) "rc clean" 0 (found "rc");
  (* debra restarts break return values, not memory safety *)
  Alcotest.(check int) "debra clean" 0 (found "debra")

(* ------------------------------------------------------------------ *)
(* Access-aware audits                                                 *)
(* ------------------------------------------------------------------ *)

let test_access_aware_clean () =
  List.iter
    (fun st ->
      let r = Era.Access_aware.audit ~runs:3 st in
      Alcotest.(check bool)
        (Era.Applicability.structure_name st ^ " clean")
        true (Era.Access_aware.clean r))
    Era.Applicability.structures

let test_access_aware_negative () =
  Alcotest.(check bool) "negative control flags" true
    (Era.Access_aware.negative_control () <> [])

(* ------------------------------------------------------------------ *)
(* The theorem                                                         *)
(* ------------------------------------------------------------------ *)

let test_theorem () =
  let rows =
    Era.Era_matrix.compute ~fuzz_runs:3 ~churn_points:[ 64; 256 ]
      ~size_points:[ 32; 96 ] ()
  in
  Alcotest.(check int) "nine rows" 9 (List.length rows);
  Alcotest.(check bool) "Theorem 6.1 holds" true
    (Era.Era_matrix.theorem_holds rows);
  (* Every scheme in the library provides exactly two properties. *)
  List.iter
    (fun row ->
      Alcotest.(check int)
        (row.Era.Era_matrix.scheme ^ " provides exactly 2")
        2
        (Era.Era_matrix.properties_held row))
    rows

let () =
  Alcotest.run "era_core"
    [
      ( "figure1",
        [
          Alcotest.test_case "ebr: robustness violated" `Slow test_fig1_ebr;
          Alcotest.test_case "none: leaks" `Slow test_fig1_none;
          Alcotest.test_case "rc: pins retired chains" `Slow
            (fig1_expect "rc" (fun r ->
                 Alcotest.(check bool) "robustness violated" true
                   (is_robustness_violation r);
                 Alcotest.(check bool) "easy" true
                   r.Era.Figure1.easily_integrated));
          Alcotest.test_case "hp: safety violated" `Slow
            (test_fig1_protection "hp");
          Alcotest.test_case "ibr: safety violated" `Slow
            (test_fig1_protection "ibr");
          Alcotest.test_case "he: safety violated" `Slow
            (test_fig1_protection "he");
          Alcotest.test_case "vbr: survives, hard integration" `Slow
            (test_fig1_hard "vbr");
          Alcotest.test_case "nbr: survives, hard integration" `Slow
            (test_fig1_hard "nbr");
          Alcotest.test_case "debra: survives, easy integration" `Slow
            test_fig1_debra;
          Alcotest.test_case "series shape" `Slow test_fig1_series_monotone;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "hp unsafe" `Quick (fig2_unsafe "hp");
          Alcotest.test_case "ibr unsafe" `Quick (fig2_unsafe "ibr");
          Alcotest.test_case "he unsafe" `Quick (fig2_unsafe "he");
          Alcotest.test_case "ebr safe" `Quick (fig2_safe "ebr");
          Alcotest.test_case "none safe" `Quick (fig2_safe "none");
          Alcotest.test_case "vbr safe" `Quick (fig2_safe "vbr");
          Alcotest.test_case "nbr safe" `Quick (fig2_safe "nbr");
          Alcotest.test_case "rc safe" `Quick (fig2_safe "rc");
          Alcotest.test_case "debra safe" `Quick (fig2_safe "debra");
          Alcotest.test_case "appendix E footnote variant" `Quick
            test_fig2_footnote;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "classes" `Slow test_robustness_classes;
          Alcotest.test_case "size-sweep scaling" `Slow
            test_size_sweep_scaling;
        ] );
      ( "applicability",
        [
          Alcotest.test_case "paper claims" `Slow test_applicability_claims;
          Alcotest.test_case "deterministic neutralization scenario" `Quick
            test_neutralize_scenario;
          Alcotest.test_case "stall fuzzer discovers violations" `Slow
            test_stall_fuzz_discovers;
        ] );
      ( "access-aware",
        [
          Alcotest.test_case "all structures clean" `Slow
            test_access_aware_clean;
          Alcotest.test_case "negative control" `Quick
            test_access_aware_negative;
        ] );
      ("theorem", [ Alcotest.test_case "ERA theorem" `Slow test_theorem ]);
    ]

(* Data-structure tests: sequential semantics against model oracles,
   concurrent safety + linearizability under every applicable scheme,
   and leak-freedom at quiescence for the robust schemes. *)

open Era_sim
module Sched = Era_sched.Sched
module Workload = Era_workload.Workload

let fresh ?(nthreads = 3) ?(strategy = Sched.Round_robin) () =
  let mon = Monitor.create ~mode:`Raise ~trace:true () in
  let heap = Heap.create mon in
  let sched = Sched.create ~nthreads strategy heap in
  (heap, mon, sched)

(* ------------------------------------------------------------------ *)
(* Sequential model check, generic over structure builders             *)
(* ------------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

let sequential_set_model build seed =
  (* Run 300 random ops single-threaded; compare against Set. *)
  let heap, mon, sched = fresh ~nthreads:1 () in
  let ext = Sched.external_ctx sched ~tid:0 in
  let ops : Era_sets.Set_intf.ops = build heap ext in
  let rng = Rng.create seed in
  let model = ref Int_set.empty in
  for _ = 1 to 300 do
    let k = 1 + Rng.int rng 10 in
    match Rng.int rng 3 with
    | 0 ->
      let expect = not (Int_set.mem k !model) in
      model := Int_set.add k !model;
      Alcotest.(check bool) (Fmt.str "insert %d" k) expect (ops.insert k)
    | 1 ->
      let expect = Int_set.mem k !model in
      model := Int_set.remove k !model;
      Alcotest.(check bool) (Fmt.str "delete %d" k) expect (ops.delete k)
    | _ ->
      Alcotest.(check bool)
        (Fmt.str "contains %d" k)
        (Int_set.mem k !model) (ops.contains k)
  done;
  Alcotest.(check int) "no violations" 0 (Monitor.violation_count mon)

let harris_build (module S : Era_smr.Smr_intf.S) heap ext =
  let module L = Era_sets.Harris_list.Make (S) in
  let g = S.create heap ~nthreads:1 in
  let dl = L.create ext g in
  L.ops (L.handle dl ext) ~record:false

let michael_build (module S : Era_smr.Smr_intf.S) heap ext =
  let module L = Era_sets.Michael_list.Make (S) in
  let g = S.create heap ~nthreads:1 in
  let dl = L.create ext g in
  L.ops (L.handle dl ext) ~record:false

let hash_build (module S : Era_smr.Smr_intf.S) heap ext =
  let module H = Era_sets.Hash_set.Make (S) in
  let g = S.create heap ~nthreads:1 in
  let hs = H.create ~nbuckets:3 ext g in
  H.ops (H.handle hs ext) ~record:false

(* VBR's simulated read validation is stricter than real VBR for
   single-thread runs too (it validates against the global version), so
   it is exercised like the rest. *)
let all_schemes = Era_smr.Registry.all

let seq_cases name build =
  List.map
    (fun (module S : Era_smr.Smr_intf.S) ->
      Alcotest.test_case
        (Fmt.str "%s+%s sequential model" name S.name)
        `Quick
        (fun () ->
          sequential_set_model (build (module S : Era_smr.Smr_intf.S)) 42))
    all_schemes

(* ------------------------------------------------------------------ *)
(* Stack and queue sequential semantics                                *)
(* ------------------------------------------------------------------ *)

let test_stack_sequential (module S : Era_smr.Smr_intf.S) () =
  let heap, mon, sched = fresh ~nthreads:1 () in
  let g = S.create heap ~nthreads:1 in
  let ext = Sched.external_ctx sched ~tid:0 in
  let module T = Era_sets.Treiber_stack.Make (S) in
  let st = T.create ext g in
  let h = T.handle st ext in
  Alcotest.(check (option int)) "pop empty" None (T.pop h);
  T.push h 1;
  T.push h 2;
  T.push h 3;
  Alcotest.(check (list int)) "to_list" [ 3; 2; 1 ] (T.to_list h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (T.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (T.pop h);
  T.push h 4;
  Alcotest.(check (option int)) "pop 4" (Some 4) (T.pop h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (T.pop h);
  Alcotest.(check (option int)) "empty again" None (T.pop h);
  Alcotest.(check int) "no violations" 0 (Monitor.violation_count mon)

let test_queue_sequential (module S : Era_smr.Smr_intf.S) () =
  let heap, mon, sched = fresh ~nthreads:1 () in
  let g = S.create heap ~nthreads:1 in
  let ext = Sched.external_ctx sched ~tid:0 in
  let module Q = Era_sets.Ms_queue.Make (S) in
  let q = Q.create ext g in
  let h = Q.handle q ext in
  Alcotest.(check (option int)) "dequeue empty" None (Q.dequeue h);
  Q.enqueue h 1;
  Q.enqueue h 2;
  Q.enqueue h 3;
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3 ] (Q.to_list h);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Q.dequeue h);
  Q.enqueue h 4;
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Q.dequeue h);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Q.dequeue h);
  Alcotest.(check (option int)) "fifo 4" (Some 4) (Q.dequeue h);
  Alcotest.(check (option int)) "empty" None (Q.dequeue h);
  Alcotest.(check int) "no violations" 0 (Monitor.violation_count mon)

(* ------------------------------------------------------------------ *)
(* Concurrent: safety + linearizability per applicable pair            *)
(* ------------------------------------------------------------------ *)

let concurrent_run (module S : Era_smr.Smr_intf.S) structure seed =
  let v =
    Era.Applicability.run ~fuzz_runs:4 ~threads:3 ~ops_per_thread:25 ~seed
      (module S : Era_smr.Smr_intf.S)
      structure
  in
  Alcotest.(check int)
    (Fmt.str "%s violations" S.name)
    0 v.Era.Applicability.violations;
  Alcotest.(check int)
    (Fmt.str "%s non-linearizable" S.name)
    0 v.Era.Applicability.non_linearizable;
  Alcotest.(check int)
    (Fmt.str "%s crashes" S.name)
    0 v.Era.Applicability.crashed

(* Schemes safe on Harris-family structures. *)
let harris_safe = [ "none"; "ebr"; "rc"; "vbr"; "nbr" ]

(* DEBRA+ is memory-safe everywhere (it is epoch-based), but a
   neutralization can restart an operation past its linearization point
   (a delete past its marking CAS, a pop past its head CAS), so its
   histories are not linearizable in general — that loss is the scheme's
   ERA trade-off, exhibited deterministically in test_core. Here it gets
   safety-only expectations; every other scheme keeps the full check. *)
let restart_tolerant names = List.filter (fun n -> n <> "debra") names

let debra_safety_run structure seed =
  let v =
    Era.Applicability.run ~fuzz_runs:4 ~threads:3 ~ops_per_thread:25 ~seed
      (Era_smr.Registry.find_exn "debra")
      structure
  in
  Alcotest.(check int) "debra violations" 0 v.Era.Applicability.violations;
  Alcotest.(check int) "debra crashes" 0 v.Era.Applicability.crashed

(* All schemes are safe on Michael's list, the stack and the queue. *)
let concurrent_cases =
  let mk structure names =
    List.filter_map
      (fun (module S : Era_smr.Smr_intf.S) ->
        if List.mem S.name (restart_tolerant names) then
          Some
            (Alcotest.test_case
               (Fmt.str "%s+%s concurrent"
                  (Era.Applicability.structure_name structure)
                  S.name)
               `Slow
               (fun () -> concurrent_run (module S) structure 3))
        else None)
      all_schemes
  in
  let debra_cases =
    List.map
      (fun structure ->
        Alcotest.test_case
          (Fmt.str "%s+debra concurrent (safety only)"
             (Era.Applicability.structure_name structure))
          `Slow
          (fun () -> debra_safety_run structure 3))
      [
        Era.Applicability.Harris;
        Era.Applicability.Hash;
        Era.Applicability.Hash_michael;
        Era.Applicability.Michael;
        Era.Applicability.Stack;
        Era.Applicability.Queue;
      ]
  in
  mk Era.Applicability.Harris harris_safe
  @ mk Era.Applicability.Hash harris_safe
  @ mk Era.Applicability.Hash_michael
      (List.map Era_smr.Registry.name_of all_schemes)
  @ mk Era.Applicability.Michael (List.map Era_smr.Registry.name_of all_schemes)
  @ mk Era.Applicability.Stack (List.map Era_smr.Registry.name_of all_schemes)
  @ mk Era.Applicability.Queue (List.map Era_smr.Registry.name_of all_schemes)
  @ debra_cases

(* ------------------------------------------------------------------ *)
(* Leak freedom at quiescence for robust schemes                       *)
(* ------------------------------------------------------------------ *)

let test_quiescent_leak_free (module S : Era_smr.Smr_intf.S) bound () =
  let heap, mon, sched = fresh ~nthreads:1 () in
  let g = S.create heap ~nthreads:1 in
  let ext = Sched.external_ctx sched ~tid:0 in
  let module L = Era_sets.Harris_list.Make (S) in
  let dl = L.create ext g in
  let h = L.handle dl ext in
  let ops = L.ops h ~record:false in
  Workload.run_set_ops ops (Rng.create 9) ~ops:400
    ~keys:(Workload.Uniform 16) ~mix:Workload.update_heavy;
  (* Quiesce repeatedly: epochs advance, eras drop, scans run. *)
  for _ = 1 to 8 do
    ops.quiesce ()
  done;
  Alcotest.(check bool)
    (Fmt.str "%s backlog %d within bound %d" S.name (Monitor.retired mon)
       bound)
    true
    (Monitor.retired mon <= bound)

let leak_cases =
  [
    ("ebr", 0);  (* single thread: everything past two epochs frees *)
    ("rc", 0);  (* single thread: all counts drop at op end *)
    ("hp", Era_smr.Hp.scan_threshold);
    ("ibr", Era_smr.Ibr.scan_threshold);
    ("he", Era_smr.He.scan_threshold);
    ("vbr", Era_smr.Vbr.retire_cap);
    ("nbr", Era_smr.Nbr.retire_cap);
    ("debra", 0);  (* single thread: quiescing advances epochs freely *)
  ]
  |> List.map (fun (name, bound) ->
         Alcotest.test_case
           (Fmt.str "%s leak-free at quiescence" name)
           `Quick
           (test_quiescent_leak_free (Era_smr.Registry.find_exn name) bound))

(* ------------------------------------------------------------------ *)
(* Structure-specific behaviours                                       *)
(* ------------------------------------------------------------------ *)

let test_harris_marked_traversal () =
  (* A traversal must stride over marked nodes: stall a deleter after
     marking and check a reader still completes correctly. *)
  let mon = Monitor.create ~mode:`Raise ~trace:true () in
  let heap = Heap.create mon in
  let module L = Era_sets.Harris_list.Make (Era_smr.None_scheme) in
  let g_none = Era_smr.None_scheme.create heap ~nthreads:2 in
  let cas_seen = ref 0 in
  let marked_cas = function
    (* the marking CAS is the first successful CAS by thread 0 *)
    | Event.Access { tid = 0; kind = Event.Cas true; _ } ->
      incr cas_seen;
      !cas_seen = 1
    | _ -> false
  in
  let sched =
    Sched.create ~nthreads:2
      (Sched.Script
         [ Sched.Run_until (0, marked_cas); Sched.Finish 1; Sched.Finish 0 ])
      heap
  in
  let ext = Sched.external_ctx sched ~tid:1 in
  let dl = L.create ext g_none in
  let hs = L.handle dl ext in
  List.iter (fun k -> ignore (L.insert hs k)) [ 1; 2; 3 ];
  let reader_saw = ref [] in
  Sched.spawn sched ~tid:0 (fun ctx ->
      ignore (L.delete (L.handle dl ctx) 2));
  Sched.spawn sched ~tid:1 (fun ctx ->
      let h = L.handle dl ctx in
      reader_saw :=
        [ L.contains h 1; L.contains h 2; L.contains h 3 ]);
  ignore (Sched.run sched);
  (* Node 2 is marked (logically deleted) when the reader runs. *)
  Alcotest.(check (list bool)) "reader sees logical deletion"
    [ true; false; true ] !reader_saw;
  Alcotest.(check (list int)) "final" [ 1; 3 ] (L.to_list hs)

let test_michael_unlinks_eagerly () =
  (* After the same stall-after-mark schedule, a Michael traversal has
     physically unlinked the marked node. *)
  let mon = Monitor.create ~mode:`Raise ~trace:true () in
  let heap = Heap.create mon in
  let module L = Era_sets.Michael_list.Make (Era_smr.None_scheme) in
  let g_none = Era_smr.None_scheme.create heap ~nthreads:2 in
  let cas_seen = ref 0 in
  let marked_cas = function
    | Event.Access { tid = 0; kind = Event.Cas true; _ } ->
      incr cas_seen;
      !cas_seen = 1
    | _ -> false
  in
  let sched =
    Sched.create ~nthreads:2
      (Sched.Script
         [ Sched.Run_until (0, marked_cas); Sched.Finish 1; Sched.Finish 0 ])
      heap
  in
  let ext = Sched.external_ctx sched ~tid:1 in
  let dl = L.create ext g_none in
  let hs = L.handle dl ext in
  List.iter (fun k -> ignore (L.insert hs k)) [ 1; 2; 3 ];
  let retired_by_reader = ref false in
  Monitor.subscribe mon (fun _ ev ->
      match ev with
      | Event.Retire { tid = 1; _ } -> retired_by_reader := true
      | _ -> ());
  Sched.spawn sched ~tid:0 (fun ctx ->
      ignore (L.delete (L.handle dl ctx) 2));
  Sched.spawn sched ~tid:1 (fun ctx ->
      let h = L.handle dl ctx in
      ignore (L.contains h 3));
  ignore (Sched.run sched);
  Alcotest.(check bool) "traverser unlinked and retired the marked node"
    true !retired_by_reader;
  Alcotest.(check (list int)) "final" [ 1; 3 ] (L.to_list hs)

let test_hash_dispatch () =
  let heap, _, sched = fresh ~nthreads:1 () in
  let g = Era_smr.Ebr.create heap ~nthreads:1 in
  let ext = Sched.external_ctx sched ~tid:0 in
  let module H = Era_sets.Hash_set.Make (Era_smr.Ebr) in
  let hs = H.create ~nbuckets:4 ext g in
  let h = H.handle hs ext in
  for k = 1 to 20 do
    Alcotest.(check bool) "fresh insert" true (H.insert h k)
  done;
  Alcotest.(check (list int)) "all present sorted"
    (List.init 20 (fun i -> i + 1))
    (H.to_list h);
  Alcotest.(check bool) "delete" true (H.delete h 7);
  Alcotest.(check bool) "deleted" false (H.contains h 7)

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

(* Reclaimed memory leaves the program space entirely: any lingering
   access would be a simulated segmentation fault, not just a stale
   read. Correct scheme integrations must stay clean even then. *)
let test_system_space_injection (module S : Era_smr.Smr_intf.S) () =
  let mon = Monitor.create ~mode:`Raise ~trace:false () in
  let config =
    { Heap.default_config with Heap.space = Heap.Return_to_system }
  in
  let heap = Heap.create ~config mon in
  let sched =
    Sched.create ~nthreads:3 (Sched.Random (Rng.create 31)) heap
  in
  let g = S.create heap ~nthreads:3 in
  let ext = Sched.external_ctx sched ~tid:0 in
  let module L = Era_sets.Michael_list.Make (S) in
  let dl = L.create ext g in
  for tid = 0 to 2 do
    Sched.spawn sched ~tid (fun ctx ->
        let ops = L.ops (L.handle dl ctx) ~record:false in
        Workload.run_set_ops ops
          (Rng.create (100 + tid))
          ~ops:60 ~keys:(Workload.Uniform 8) ~mix:Workload.update_heavy)
  done;
  Alcotest.(check bool) "finished" true (Sched.run sched = Sched.All_finished);
  Alcotest.(check bool) "memory actually left the program space" true
    ((Heap.stats heap).Heap.system_cells > 0
    || S.name = "none" (* the baseline never reclaims *));
  Alcotest.(check int) "no segfaults" 0 (Monitor.violation_count mon)

(* A thread stalled at an arbitrary point and resumed later must not
   break safety or linearizability for any scheme on Michael's list. *)
let test_stall_resume (module S : Era_smr.Smr_intf.S) () =
  let mon = Monitor.create ~mode:`Raise ~trace:true () in
  let heap = Heap.create mon in
  let sched =
    Sched.create ~nthreads:3 (Sched.Random (Rng.create 17)) heap
  in
  (* Stall T0 after its 40th access; other threads keep going. *)
  let countdown = ref 40 in
  Monitor.subscribe mon (fun _ ev ->
      match ev with
      | Event.Access { tid = 0; _ } ->
        decr countdown;
        if !countdown = 0 then Sched.stall sched 0
      | _ -> ());
  let g = S.create heap ~nthreads:3 in
  let ext = Sched.external_ctx sched ~tid:0 in
  let module L = Era_sets.Michael_list.Make (S) in
  let dl = L.create ext g in
  for tid = 0 to 2 do
    Sched.spawn sched ~tid (fun ctx ->
        let ops = L.ops (L.handle dl ctx) ~record:true in
        Workload.run_set_ops ops
          (Rng.create (50 + tid))
          ~ops:40 ~keys:(Workload.Uniform 6) ~mix:Workload.balanced)
  done;
  (* First phase: runs until only the stalled thread remains. *)
  (match Sched.run sched with
  | Sched.No_runnable | Sched.All_finished -> ()
  | Sched.Script_done | Sched.Step_limit ->
    Alcotest.fail "unexpected scheduler outcome");
  (* Resume and finish. *)
  Sched.unstall sched 0;
  Alcotest.(check bool) "finished after resume" true
    (Sched.run sched = Sched.All_finished);
  Alcotest.(check int) "no violations" 0 (Monitor.violation_count mon);
  Alcotest.(check bool) "linearizable" true
    (Era_history.Linearize.check_monitor
       (module Era_history.Spec.Int_set)
       mon)
      .Era_history.Linearize.ok

let injection_cases =
  List.concat_map
    (fun (module S : Era_smr.Smr_intf.S) ->
      [
        Alcotest.test_case
          (Fmt.str "system-space reclamation under %s" S.name)
          `Slow
          (test_system_space_injection (module S));
        Alcotest.test_case
          (Fmt.str "stall/resume under %s" S.name)
          `Slow
          (test_stall_resume (module S));
      ])
    all_schemes

let qcheck_set_vs_model (module S : Era_smr.Smr_intf.S) =
  QCheck2.Test.make
    ~name:(Fmt.str "harris+%s random ops match Set model" S.name)
    ~count:30
    QCheck2.Gen.(pair small_int (list (pair (int_range 0 2) (int_range 1 8))))
    (fun (seed, cmds) ->
      let mon = Monitor.create ~mode:`Raise ~trace:false () in
      let heap = Heap.create mon in
      let sched = Sched.create ~nthreads:1 Sched.Round_robin heap in
      ignore seed;
      let g = S.create heap ~nthreads:1 in
      let ext = Sched.external_ctx sched ~tid:0 in
      let module L = Era_sets.Harris_list.Make (S) in
      let dl = L.create ext g in
      let h = L.handle dl ext in
      let model = ref Int_set.empty in
      List.for_all
        (fun (what, k) ->
          match what with
          | 0 ->
            let e = not (Int_set.mem k !model) in
            model := Int_set.add k !model;
            L.insert h k = e
          | 1 ->
            let e = Int_set.mem k !model in
            model := Int_set.remove k !model;
            L.delete h k = e
          | _ -> L.contains h k = Int_set.mem k !model)
        cmds
      && L.to_list h = Int_set.elements !model)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "era_sets"
    [
      ("harris-sequential", seq_cases "harris" harris_build);
      ("michael-sequential", seq_cases "michael" michael_build);
      ("hash-sequential", seq_cases "hash" hash_build);
      ( "stack-queue-sequential",
        List.concat_map
          (fun (module S : Era_smr.Smr_intf.S) ->
            [
              Alcotest.test_case
                (Fmt.str "treiber+%s" S.name)
                `Quick
                (test_stack_sequential (module S));
              Alcotest.test_case
                (Fmt.str "msqueue+%s" S.name)
                `Quick
                (test_queue_sequential (module S));
            ])
          all_schemes );
      ("concurrent", concurrent_cases);
      ("leak-freedom", leak_cases);
      ("failure-injection", injection_cases);
      ( "structure-behaviour",
        [
          Alcotest.test_case "harris strides over marked nodes" `Quick
            test_harris_marked_traversal;
          Alcotest.test_case "michael unlinks eagerly" `Quick
            test_michael_unlinks_eagerly;
          Alcotest.test_case "hash dispatch" `Quick test_hash_dispatch;
        ] );
      qsuite "model-props" (List.map qcheck_set_vs_model all_schemes);
    ]

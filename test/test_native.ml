(* Tests for the native (Domain/Atomic) layer: sequential semantics,
   multi-domain stress with verification, and reclamation statistics. *)

open Era_native

module Int_set = Set.Make (Int)

(* ------------------------------------------------------------------ *)
(* Sequential model checks                                             *)
(* ------------------------------------------------------------------ *)

let test_native_harris_sequential () =
  let module L = N_harris.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let l = L.create () in
  let model = ref Int_set.empty in
  let st = ref 424242L in
  let next () =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    Int64.to_int (Int64.shift_right_logical !st 3)
  in
  for _ = 1 to 2000 do
    let k = 1 + (next () mod 20) in
    match next () mod 3 with
    | 0 ->
      let e = not (Int_set.mem k !model) in
      model := Int_set.add k !model;
      Alcotest.(check bool) "insert" e (L.insert l s k)
    | 1 ->
      let e = Int_set.mem k !model in
      model := Int_set.remove k !model;
      Alcotest.(check bool) "delete" e (L.delete l s k)
    | _ -> Alcotest.(check bool) "contains" (Int_set.mem k !model)
             (L.contains l s k)
  done;
  Alcotest.(check (list int)) "final" (Int_set.elements !model) (L.to_list l s)

let test_native_michael_sequential () =
  let module L = N_michael.Make (N_hp) in
  let g = N_hp.create ~ndomains:1 in
  let s = N_hp.thread g 0 in
  let l = L.create () in
  let model = ref Int_set.empty in
  let st = ref 99L in
  let next () =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    Int64.to_int (Int64.shift_right_logical !st 3)
  in
  for _ = 1 to 2000 do
    let k = 1 + (next () mod 20) in
    match next () mod 3 with
    | 0 ->
      let e = not (Int_set.mem k !model) in
      model := Int_set.add k !model;
      Alcotest.(check bool) "insert" e (L.insert l s k)
    | 1 ->
      let e = Int_set.mem k !model in
      model := Int_set.remove k !model;
      Alcotest.(check bool) "delete" e (L.delete l s k)
    | _ -> Alcotest.(check bool) "contains" (Int_set.mem k !model)
             (L.contains l s k)
  done;
  Alcotest.(check (list int)) "final" (Int_set.elements !model) (L.to_list l s)

let test_native_treiber_sequential () =
  let module T = N_treiber.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let t = T.create () in
  Alcotest.(check (option int)) "empty" None (T.pop t s);
  T.push t s 1;
  T.push t s 2;
  Alcotest.(check (option int)) "lifo" (Some 2) (T.pop t s);
  Alcotest.(check (option int)) "lifo2" (Some 1) (T.pop t s)

let test_native_msqueue_sequential () =
  let module Q = N_msqueue.Make (N_hp) in
  let g = N_hp.create ~ndomains:1 in
  let s = N_hp.thread g 0 in
  let q = Q.create () in
  Alcotest.(check (option int)) "empty" None (Q.dequeue q s);
  Q.enqueue q s 1;
  Q.enqueue q s 2;
  Q.enqueue q s 3;
  Alcotest.(check (option int)) "fifo" (Some 1) (Q.dequeue q s);
  Alcotest.(check (option int)) "fifo2" (Some 2) (Q.dequeue q s);
  Alcotest.(check (option int)) "fifo3" (Some 3) (Q.dequeue q s);
  Alcotest.(check (option int)) "empty again" None (Q.dequeue q s)

let test_native_debra_sequential () =
  (* Michael + DEBRA+ under the same 2000-op model as michael+hp. A
     single domain never lags behind its own advances, so no
     neutralization fires — this pins the scheme's plain-EBR face. *)
  let module L = N_michael.Make (N_debra) in
  let g = N_debra.create ~ndomains:1 in
  let s = N_debra.thread g 0 in
  let l = L.create () in
  let model = ref Int_set.empty in
  let st = ref 515151L in
  let next () =
    st := Int64.add !st 0x9E3779B97F4A7C15L;
    Int64.to_int (Int64.shift_right_logical !st 3)
  in
  for _ = 1 to 2000 do
    let k = 1 + (next () mod 20) in
    match next () mod 3 with
    | 0 ->
      let e = not (Int_set.mem k !model) in
      model := Int_set.add k !model;
      Alcotest.(check bool) "insert" e (L.insert l s k)
    | 1 ->
      let e = Int_set.mem k !model in
      model := Int_set.remove k !model;
      Alcotest.(check bool) "delete" e (L.delete l s k)
    | _ -> Alcotest.(check bool) "contains" (Int_set.mem k !model)
             (L.contains l s k)
  done;
  Alcotest.(check (list int)) "final" (Int_set.elements !model) (L.to_list l s);
  Alcotest.(check int) "no neutralization single-domain" 0
    (N_debra.neutralizations g)

(* ------------------------------------------------------------------ *)
(* Multi-domain stress with verifiable outcomes                        *)
(* ------------------------------------------------------------------ *)

let test_native_parallel_disjoint_inserts () =
  (* Two domains insert disjoint key ranges into one Michael+HP list;
     every key must be present at the end. *)
  let module L = N_michael.Make (N_hp) in
  let g = N_hp.create ~ndomains:2 in
  let l = L.create () in
  let worker lo hi d () =
    let s = N_hp.thread g d in
    for k = lo to hi do
      ignore (L.insert l s k)
    done
  in
  let d1 = Domain.spawn (worker 101 200 1) in
  worker 1 100 0 ();
  Domain.join d1;
  let s = N_hp.thread g 0 in
  Alcotest.(check (list int)) "all 200 keys present"
    (List.init 200 (fun i -> i + 1))
    (L.to_list l s)

let test_native_debra_parallel_restarts () =
  (* Two domains insert disjoint ranges into one Michael+DEBRA+ list
     with a tiny amortize period, so advance attempts (and hence
     neutralizations of whichever domain is between announcements) are
     frequent. A neutralized insert restarts from the top; every key
     must still land exactly once. *)
  let module L = N_michael.Make (N_debra) in
  let g = N_debra.create_with ~amortize:1 ~ndomains:2 () in
  let l = L.create () in
  let worker lo hi d () =
    let s = N_debra.thread g d in
    for k = lo to hi do
      ignore (L.insert l s k)
    done
  in
  let d1 = Domain.spawn (worker 101 200 1) in
  worker 1 100 0 ();
  Domain.join d1;
  let s = N_debra.thread g 0 in
  Alcotest.(check (list int)) "all 200 keys present"
    (List.init 200 (fun i -> i + 1))
    (L.to_list l s);
  Alcotest.(check bool) "flag accounting" true
    (N_debra.restarts g <= N_debra.neutralizations g)

let test_native_parallel_churn_counts () =
  (* Two domains each push/pop on a Treiber stack; pushes - successful
     pops = final size, and every popped value was pushed. *)
  let module T = N_treiber.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:2 in
  let t = T.create () in
  let pops = Array.make 2 0 in
  let worker d () =
    let s = N_ebr.thread g d in
    for k = 1 to 5000 do
      T.push t s ((d * 100000) + k);
      if k mod 2 = 0 then
        match T.pop t s with Some _ -> pops.(d) <- pops.(d) + 1 | None -> ()
    done
  in
  let d1 = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d1;
  let s = N_ebr.thread g 0 in
  let remaining = ref 0 in
  let rec drain () =
    match T.pop t s with
    | Some _ ->
      incr remaining;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "push/pop conservation" 10000
    (pops.(0) + pops.(1) + !remaining)

let test_native_queue_fifo_per_producer () =
  (* Single consumer, one producer domain: the consumer must see the
     producer's values in order. *)
  let module Q = N_msqueue.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:2 in
  let q = Q.create () in
  let producer () =
    let s = N_ebr.thread g 1 in
    for k = 1 to 5000 do
      Q.enqueue q s k
    done
  in
  let p = Domain.spawn producer in
  let s = N_ebr.thread g 0 in
  let last = ref 0 in
  let seen = ref 0 in
  let ok = ref true in
  while !seen < 5000 do
    match Q.dequeue q s with
    | Some v ->
      if v <= !last then ok := false;
      last := v;
      incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join p;
  Alcotest.(check bool) "FIFO per producer" true !ok

(* ------------------------------------------------------------------ *)
(* Limbo bags and pools                                                *)
(* ------------------------------------------------------------------ *)

let test_limbo_free_le () =
  let l = Limbo.create () in
  (* 3 epochs x 100 nodes: tags non-decreasing, bags seal on tag change. *)
  let all = Array.init 300 (fun i -> Nnode.make ~key:i) in
  Array.iteri (fun i n -> Limbo.push l ~tag:(i / 100) n) all;
  Alcotest.(check int) "size" 300 (Limbo.size l);
  let last = ref min_int in
  Limbo.iter l ~f:(fun tag _ ->
      Alcotest.(check bool) "tags non-decreasing along the chain" true
        (tag >= !last);
      last := tag);
  let free_count = ref 0 in
  let freed = Limbo.free_le l ~horizon:1 ~free:(fun _ -> incr free_count) in
  Alcotest.(check int) "freed exactly tags 0-1" 200 freed;
  Alcotest.(check int) "free callback per node" 200 !free_count;
  Alcotest.(check int) "remaining" 100 (Limbo.size l);
  Limbo.iter l ~f:(fun tag _ -> Alcotest.(check int) "survivor tag" 2 tag);
  (* Draining everything reopens a blank bag; pushes still work. *)
  ignore (Limbo.free_le l ~horizon:10 ~free:(fun _ -> ()));
  Alcotest.(check int) "drained" 0 (Limbo.size l);
  Limbo.push l ~tag:7 (Nnode.make ~key:1);
  Alcotest.(check int) "usable after drain" 1 (Limbo.size l)

let test_limbo_sweep () =
  let l = Limbo.create () in
  let nodes = Array.init 200 (fun i -> Nnode.make ~key:i) in
  Array.iter (fun n -> Limbo.push l ~tag:0 n) nodes;
  let pool = Limbo.Pool.create () in
  let freed =
    Limbo.sweep l
      ~keep:(fun _ n -> n.Nnode.key land 1 = 0)
      ~free:(fun n -> Limbo.Pool.put pool n)
  in
  Alcotest.(check int) "odd keys freed" 100 freed;
  Alcotest.(check int) "pool holds the freed nodes" 100 (Limbo.Pool.size pool);
  Alcotest.(check int) "even keys stay" 100 (Limbo.size l);
  Limbo.iter l ~f:(fun _ n ->
      Alcotest.(check bool) "survivors all even" true (n.Nnode.key land 1 = 0));
  (* A sweep that frees everything recycles every bag but one, so the
     chain stays usable. *)
  ignore (Limbo.sweep l ~keep:(fun _ _ -> false) ~free:(fun _ -> ()));
  Alcotest.(check int) "empty after full sweep" 0 (Limbo.size l);
  Limbo.push l ~tag:0 (Nnode.make ~key:1);
  Alcotest.(check int) "usable after full sweep" 1 (Limbo.size l)

let test_limbo_pool () =
  let p = Limbo.Pool.create () in
  Alcotest.(check bool) "take on empty is nil" true
    (Limbo.Pool.take p == Nnode.nil);
  (* Push past the initial capacity to exercise the doubling. *)
  let nodes = Array.init 200 (fun i -> Nnode.make ~key:i) in
  Array.iter (Limbo.Pool.put p) nodes;
  Alcotest.(check int) "size" 200 (Limbo.Pool.size p);
  Alcotest.(check bool) "mem sees a pooled node" true
    (Limbo.Pool.mem p nodes.(5));
  let n = Limbo.Pool.take p in
  Alcotest.(check bool) "take returns a node" true (n != Nnode.nil);
  Alcotest.(check bool) "taken node leaves the pool" false
    (Limbo.Pool.mem p n);
  Alcotest.(check int) "size after take" 199 (Limbo.Pool.size p)

(* ------------------------------------------------------------------ *)
(* Protected-never-pooled properties                                   *)
(* ------------------------------------------------------------------ *)

(* A deterministic adversarial interleaving of a protector domain and a
   retirer domain sharing one HP instance: whatever the order of
   protects, retires (including retiring the currently protected node)
   and scan-forcing churn, a node published in a hazard slot must never
   be recycled into a pool. The protected set is tracked externally and
   compared against the scheme's own pool after every step that can
   scan. *)
let hp_protected_never_pooled =
  QCheck2.Test.make ~name:"hp: protected node never pooled" ~count:60
    QCheck2.Gen.(
      list_size (int_range 10 80) (pair (int_range 0 3) (int_range 0 15)))
    (fun steps ->
      let g = N_hp.create ~ndomains:2 in
      let t0 = N_hp.thread g 0 (* retirer *)
      and t1 = N_hp.thread g 1 (* protector *) in
      let nodes = Array.init 16 (fun i -> Nnode.make ~key:i) in
      let holder = Nnode.make ~key:(-1) in
      let retired = Array.make 16 false in
      let protected_ = ref (-1) in
      let ok = ref true in
      let check () =
        if !protected_ >= 0 && N_hp.in_pool t0 nodes.(!protected_) then
          ok := false
      in
      List.iter
        (fun (op, i) ->
          match op with
          | 0 ->
            (* Protect node i (only live nodes — protect-validate would
               reject a retired one at the list layer). *)
            if not retired.(i) then begin
              N_hp.begin_op t1;
              Atomic.set holder.Nnode.next (Nnode.link nodes.(i));
              ignore (N_hp.read_link t1 holder);
              protected_ := i
            end
          | 1 ->
            N_hp.end_op t1;
            protected_ := -1
          | 2 ->
            if not retired.(i) then begin
              retired.(i) <- true;
              N_hp.retire t0 nodes.(i);
              check ()
            end
          | _ ->
            (* Churn enough fresh dummies through the retirer to force a
               threshold scan. *)
            for k = 1 to N_hp.scan_threshold do
              N_hp.retire t0 (Nnode.make ~key:(1000 + k))
            done;
            check ())
        steps;
      (* Once protection drops, a forced scan must recycle every
         previously retired node — protection delays reuse, it does not
         leak. *)
      N_hp.end_op t1;
      protected_ := -1;
      for k = 1 to N_hp.scan_threshold do
        N_hp.retire t0 (Nnode.make ~key:(2000 + k))
      done;
      Array.iteri
        (fun i n -> if retired.(i) && not (N_hp.in_pool t0 n) then ok := false)
        nodes;
      !ok)

(* The IBR analogue: a retired node whose [birth, retire] interval
   intersects the reserver's externally tracked [lo, hi] must never be
   in the retirer's pool at the first check after the scan that could
   have freed it. Nodes are allocated through the scheme so births are
   stamped and the pool recycles for real; a tracked node that is freed
   legitimately (checked against the reservation active at that moment)
   is marked escaped, because churn allocs may then resurrect it with
   fresh birth/retire metadata. *)
let ibr_reserved_never_pooled =
  QCheck2.Test.make ~name:"ibr: reserved interval never pooled" ~count:60
    QCheck2.Gen.(
      list_size (int_range 10 80) (pair (int_range 0 3) (int_range 0 15)))
    (fun steps ->
      let g = N_ibr.create ~ndomains:2 in
      let t0 = N_ibr.thread g 0 (* retirer *)
      and t1 = N_ibr.thread g 1 (* reserver *) in
      let nodes = Array.init 16 (fun i -> N_ibr.alloc t0 (i + 1)) in
      let birth = Array.map (fun n -> n.Nnode.birth) nodes in
      let holder = Nnode.make ~key:0 in
      let retired = Array.make 16 (-1) in (* retire epoch; -1 = live *)
      let escaped = Array.make 16 false in
      let resv = ref None in (* externally tracked [lo, hi] *)
      let ok = ref true in
      (* Every step that can scan ends with [check], so each free is
         validated against the reservation active when it happened
         before the reservation can change. *)
      let check () =
        Array.iteri
          (fun i n ->
            if (not escaped.(i)) && retired.(i) >= 0 && N_ibr.in_pool t0 n
            then begin
              (match !resv with
              | Some (lo, hi) when retired.(i) >= lo && birth.(i) <= hi ->
                ok := false
              | _ -> ());
              escaped.(i) <- true
            end)
          nodes
      in
      List.iter
        (fun (op, i) ->
          match op with
          | 0 ->
            if retired.(i) < 0 && not escaped.(i) then begin
              N_ibr.begin_op t1;
              let lo = N_ibr.current_epoch g in
              Atomic.set holder.Nnode.next (Nnode.link nodes.(i));
              ignore (N_ibr.read_link t1 holder);
              resv := Some (lo, N_ibr.current_epoch g)
            end
          | 1 ->
            N_ibr.end_op t1;
            resv := None
          | 2 ->
            if retired.(i) < 0 && not escaped.(i) then begin
              retired.(i) <- N_ibr.current_epoch g;
              N_ibr.retire t0 nodes.(i);
              check ()
            end
          | _ ->
            (* Alloc-then-retire churn: advances the epoch and forces
               threshold scans. Allocs may resurrect escaped nodes. *)
            let dummies =
              Array.init N_ibr.scan_threshold (fun k ->
                  N_ibr.alloc t0 (100 + k))
            in
            Array.iter (fun d -> N_ibr.retire t0 d) dummies;
            check ())
        steps;
      !ok)

(* ------------------------------------------------------------------ *)
(* DEBRA+ neutralization                                               *)
(* ------------------------------------------------------------------ *)

let test_native_debra_neutralization_unblocks () =
  (* The E9 scenario in miniature, single-threaded and deterministic:
     domain 1 opens an operation and stalls; domain 0 churns. After
     [patience] blocked advance attempts the observer flags the
     laggard, the epoch advances past it and reclamation resumes. The
     victim's next protected read consumes the flag and unwinds. *)
  let g = N_debra.create_with ~amortize:1 ~ndomains:2 () in
  let t0 = N_debra.thread g 0 and t1 = N_debra.thread g 1 in
  N_debra.begin_op t1;
  (* victim stalled *)
  for k = 1 to 200 do
    N_debra.begin_op t0;
    N_debra.retire t0 (Nnode.make ~key:k);
    N_debra.end_op t0
  done;
  Alcotest.(check bool) "laggard flagged" true (N_debra.neutralizations g >= 1);
  Alcotest.(check bool) "churner reclaims despite the stall" true
    (N_debra.reclaimed g > 100);
  Alcotest.(check int) "flag not yet consumed" 0 (N_debra.restarts g);
  let holder = Nnode.make ~key:0 in
  (match N_debra.read_link t1 holder with
  | _ -> Alcotest.fail "stalled victim's next read must neutralize"
  | exception Nsmr.Neutralized -> ());
  Alcotest.(check int) "restart recorded" 1 (N_debra.restarts g);
  (* The restarted operation proceeds normally: re-announced at the
     current epoch, reads succeed, and the op closes. *)
  N_debra.begin_op t1;
  ignore (N_debra.read_link t1 holder);
  N_debra.end_op t1

(* The DEBRA+ analogue of the two properties above, driving the scheme
   API directly through an adversarial interleaving of a victim and a
   churner/observer context. The invariants:

   - epoch protection with neutralization: a node retired during the
     victim's current operation attempt can only be freed once the
     victim has been flagged — so whenever the victim completes a
     [read_link] {e without} raising, none of those nodes is in the
     churner's pool;
   - restart hygiene: when the victim {e is} neutralized, every node it
     allocated in the abandoned attempt is back in its pool (no leak,
     no double hand-off), and the flag accounting balances.

   The victim only re-reads nodes retired during its current attempt
   (a pointer held across a restart is abandoned by construction — the
   restart wrapper re-traverses from the root, which is exactly why
   only restartable structures may use the scheme). *)
let debra_neutralized_never_derefs_pooled =
  QCheck2.Test.make ~name:"debra: victim never handed a pooled node" ~count:60
    QCheck2.Gen.(
      list_size (int_range 10 80) (pair (int_range 0 3) (int_range 0 15)))
    (fun steps ->
      let g = N_debra.create_with ~amortize:1 ~ndomains:2 () in
      let t0 = N_debra.thread g 0 (* churner / observer *)
      and t1 = N_debra.thread g 1 (* victim *) in
      let nodes = Array.init 16 (fun i -> Nnode.make ~key:i) in
      let holder = Nnode.make ~key:(-1) in
      let att = ref 0 in
      let retire_att = Array.make 16 (-1) in (* attempt when retired *)
      let victim_fresh = ref [] in
      let ok = ref true in
      let restart () =
        (* The restart wrapper's view: abandoned allocations must
           already be back in the victim's own pool. *)
        List.iter
          (fun n -> if not (N_debra.in_pool t1 n) then ok := false)
          !victim_fresh;
        victim_fresh := [];
        incr att;
        N_debra.begin_op t1
      in
      N_debra.begin_op t1;
      List.iter
        (fun (op, i) ->
          match op with
          | 0 ->
            (* Victim dereference. Eligible targets: live nodes, or
               nodes retired during this very attempt (the pointer was
               obtained before the retire — HP's protected-then-retired
               case, played on epochs). *)
            if retire_att.(i) = -1 || retire_att.(i) = !att then begin
              Atomic.set holder.Nnode.next (Nnode.link nodes.(i));
              match N_debra.read_link t1 holder with
              | _ ->
                (* No flag: nothing retired during this attempt may
                   have been freed. *)
                Array.iteri
                  (fun j n ->
                    if retire_att.(j) = !att && N_debra.in_pool t0 n then
                      ok := false)
                  nodes
              | exception Nsmr.Neutralized -> restart ()
            end
          | 1 ->
            (* Victim allocates into the in-progress attempt. *)
            let n = N_debra.alloc t1 (100 + i) in
            victim_fresh := n :: !victim_fresh
          | 2 ->
            if retire_att.(i) = -1 then begin
              retire_att.(i) <- !att;
              N_debra.retire t0 nodes.(i)
            end
          | _ ->
            (* Churner op: amortize = 1, so every begin_op runs the
               slow path — an advance attempt (building the victim's
               lag towards [patience]) plus a free pass. *)
            N_debra.begin_op t0;
            N_debra.retire t0 (Nnode.make ~key:(1000 + i));
            N_debra.end_op t0)
        steps;
      N_debra.end_op t1;
      if N_debra.restarts g > N_debra.neutralizations g then ok := false;
      !ok)

let test_e9_debra_bounded () =
  (* The native face of Figure 1's survival: same stalled-domain row as
     E9, but the stall gets neutralized and the backlog stays bounded
     while reclamation proceeds. Contrast test_e9_shape's EBR row
     (backlog tracks churn volume, nothing reclaimed). *)
  let r = Throughput.e9_row ~scheme:`Debra ~churn_ops:20_000 () in
  Alcotest.(check int) "stalled domain is a one-shot"
    ((2 * 20_000) + 1)
    r.Throughput.total_ops;
  Alcotest.(check bool) "debra backlog bounded under stall" true
    (r.Throughput.max_backlog < 2_000);
  Alcotest.(check bool) "debra reclaims despite the stall" true
    (r.Throughput.reclaimed > 10_000)

let test_e8_debra_harris_refused () =
  Alcotest.(check bool) "debra+harris pairing refused" true
    (match
       Throughput.e8_row Throughput.Harris ~scheme:`Debra Throughput.Churn
         ~domains:1 ~ops_per_domain:10
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Reclamation statistics                                              *)
(* ------------------------------------------------------------------ *)

let test_native_ebr_reclaims () =
  let module L = N_michael.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let l = L.create () in
  for k = 1 to 1000 do
    ignore (L.insert l s (k mod 10));
    ignore (L.delete l s (k mod 10))
  done;
  Alcotest.(check bool) "ebr recycles" true (N_ebr.reclaimed g > 100);
  (* The amortized slow path runs every [default_amortize] ops, so up to
     a few epochs' worth of retires may sit in limbo between frees. *)
  Alcotest.(check bool) "backlog small" true
    (N_ebr.backlog g < 4 * N_ebr.default_amortize)

let test_native_ebr_amortize_differential () =
  (* Amortization may only change when reclamation happens, never list
     semantics: the same op sequence against K=1 (per-op epoch checks,
     the unamortized scheme) and the default K must produce identical
     final contents. *)
  let module L = N_michael.Make (N_ebr) in
  let run g =
    let s = N_ebr.thread g 0 in
    let l = L.create () in
    let st = ref 7L in
    let next () =
      st := Int64.add !st 0x9E3779B97F4A7C15L;
      Int64.to_int (Int64.shift_right_logical !st 3)
    in
    for _ = 1 to 3000 do
      let k = 1 + (next () mod 40) in
      match next () mod 3 with
      | 0 -> ignore (L.insert l s k)
      | 1 -> ignore (L.delete l s k)
      | _ -> ignore (L.contains l s k)
    done;
    L.to_list l s
  in
  let unamortized = run (N_ebr.create_with ~amortize:1 ~ndomains:1 ()) in
  let amortized = run (N_ebr.create ~ndomains:1) in
  Alcotest.(check (list int)) "identical final contents" unamortized amortized

let test_native_hp_bounded_backlog () =
  let module L = N_michael.Make (N_hp) in
  let g = N_hp.create ~ndomains:1 in
  let s = N_hp.thread g 0 in
  let l = L.create () in
  for k = 1 to 2000 do
    ignore (L.insert l s (k mod 10));
    ignore (L.delete l s (k mod 10))
  done;
  Alcotest.(check bool) "hp backlog bounded" true
    (N_hp.max_backlog g <= N_hp.scan_threshold)

let test_e9_shape () =
  (* The robustness trade-off: a stalled domain blows up EBR's backlog
     but not HP's. *)
  let ebr = Throughput.e9_row ~scheme:`Ebr ~churn_ops:20_000 () in
  let hp = Throughput.e9_row ~scheme:`Hp ~churn_ops:20_000 () in
  (* The stalled domain performs exactly one (never-ending) op, so the
     row's op count is the two churners' plus one — computed, not
     patched. A wrong count here means the stall is no longer a genuine
     one-shot. *)
  Alcotest.(check int) "stalled domain is a one-shot"
    ((2 * 20_000) + 1)
    ebr.Throughput.total_ops;
  Alcotest.(check bool) "ebr backlog explodes" true
    (ebr.Throughput.max_backlog > 1000);
  Alcotest.(check bool) "ebr backlog tracks churn volume" true
    (ebr.Throughput.max_backlog > 2 * 20_000 / 8);
  Alcotest.(check bool) "hp backlog bounded" true
    (hp.Throughput.max_backlog <= 2 * 64);
  Alcotest.(check bool) "ebr reclaimed nothing under stall" true
    (ebr.Throughput.reclaimed < ebr.Throughput.max_backlog / 2)

let test_e8_hp_harris_refused () =
  Alcotest.(check bool) "hp+harris pairing refused" true
    (match
       Throughput.e8_row Throughput.Harris ~scheme:`Hp Throughput.Churn
         ~domains:1 ~ops_per_domain:10
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "era_native"
    [
      ( "sequential",
        [
          Alcotest.test_case "harris+ebr model" `Quick
            test_native_harris_sequential;
          Alcotest.test_case "michael+hp model" `Quick
            test_native_michael_sequential;
          Alcotest.test_case "michael+debra model" `Quick
            test_native_debra_sequential;
          Alcotest.test_case "treiber" `Quick test_native_treiber_sequential;
          Alcotest.test_case "msqueue" `Quick test_native_msqueue_sequential;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "disjoint inserts" `Slow
            test_native_parallel_disjoint_inserts;
          Alcotest.test_case "debra disjoint inserts with restarts" `Slow
            test_native_debra_parallel_restarts;
          Alcotest.test_case "stack conservation" `Slow
            test_native_parallel_churn_counts;
          Alcotest.test_case "queue FIFO" `Slow
            test_native_queue_fifo_per_producer;
        ] );
      ( "limbo",
        [
          Alcotest.test_case "free_le" `Quick test_limbo_free_le;
          Alcotest.test_case "sweep" `Quick test_limbo_sweep;
          Alcotest.test_case "pool" `Quick test_limbo_pool;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "ebr recycles" `Quick test_native_ebr_reclaims;
          Alcotest.test_case "ebr amortize differential" `Quick
            test_native_ebr_amortize_differential;
          Alcotest.test_case "hp bounded backlog" `Quick
            test_native_hp_bounded_backlog;
          QCheck_alcotest.to_alcotest hp_protected_never_pooled;
          QCheck_alcotest.to_alcotest ibr_reserved_never_pooled;
          Alcotest.test_case "E9 shape" `Slow test_e9_shape;
          Alcotest.test_case "hp+harris refused" `Quick
            test_e8_hp_harris_refused;
        ] );
      ( "neutralization",
        [
          Alcotest.test_case "stall flagged, epoch unblocked" `Quick
            test_native_debra_neutralization_unblocks;
          QCheck_alcotest.to_alcotest debra_neutralized_never_derefs_pooled;
          Alcotest.test_case "E9 debra bounded" `Slow test_e9_debra_bounded;
          Alcotest.test_case "debra+harris refused" `Quick
            test_e8_debra_harris_refused;
        ] );
    ]

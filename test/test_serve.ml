(* Serving layer (lib/serve): bounded-queue capacity and shutdown
   liveness (close-while-poppers-blocked, drain-then-stop, close_now
   accounting — the Work_queue lost-wakeup discipline applied to the
   admission path), tenant-fair scheduling, the content-addressed store,
   executor lifecycle, and a daemon/client/load end-to-end pass over a
   real Unix socket. *)

module Bq = Era_serve.Bounded_queue
module Fq = Era_serve.Fair_queue
module Store = Era_serve.Store
module Job = Era_serve.Job
module Executor = Era_serve.Executor
module Daemon = Era_serve.Daemon
module Client = Era_serve.Client
module Wire = Era_serve.Wire
module Load = Era_serve.Load
module Ex = Era_explore.Explore
module Json = Era_metrics.Json

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Bounded queue                                                       *)
(* ------------------------------------------------------------------ *)

let test_bq_fifo () =
  let q = Bq.create ~capacity:8 () in
  List.iter (fun i -> Alcotest.(check bool) "push" true (Bq.try_push q i))
    [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Bq.length q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Bq.try_pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Bq.try_pop q);
  Alcotest.(check bool) "interleaved push" true (Bq.try_push q 4);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Bq.try_pop q);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Bq.try_pop q);
  Alcotest.(check (option int)) "empty try_pop" None (Bq.try_pop q)

let test_bq_shed_on_full () =
  let q = Bq.create ~capacity:3 () in
  List.iter (fun i -> ignore (Bq.try_push q i)) [ 1; 2; 3 ];
  Alcotest.(check bool) "4th push shed" false (Bq.try_push q 4);
  Alcotest.(check bool) "5th push shed" false (Bq.try_push q 5);
  ignore (Bq.pop q);
  Alcotest.(check bool) "slot freed, push admitted" true (Bq.try_push q 6);
  Alcotest.(check bool) "full again" false (Bq.try_push q 7);
  Alcotest.(check int) "exactly capacity queued" 3 (Bq.length q)

let test_bq_push_after_close () =
  let q = Bq.create ~capacity:4 () in
  ignore (Bq.try_push q 1);
  Bq.close q;
  Alcotest.(check bool) "closed" true (Bq.closed q);
  Alcotest.(check bool) "push refused" false (Bq.try_push q 2);
  Alcotest.(check (option int)) "drain serves backlog" (Some 1) (Bq.pop q);
  Alcotest.(check (option int)) "then None" None (Bq.pop q)

(* Drain-then-stop with poppers BLOCKED on the empty queue in other
   domains: close must wake them into None — a conditioned-away
   broadcast would hang this test rather than fail it. *)
let test_bq_close_wakes_blocked_poppers () =
  let q : int Bq.t = Bq.create ~capacity:4 () in
  let poppers = List.init 3 (fun _ -> Domain.spawn (fun () -> Bq.pop q)) in
  Unix.sleepf 0.05;
  Bq.close q;
  List.iter
    (fun d ->
      Alcotest.(check (option int)) "woken into None" None (Domain.join d))
    poppers;
  Bq.close q (* idempotent *)

let test_bq_close_now_leftovers () =
  let q = Bq.create ~capacity:8 () in
  List.iter (fun i -> ignore (Bq.try_push q i)) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "one served" (Some 1) (Bq.pop q);
  Alcotest.(check (list int)) "abandoned items, FIFO" [ 2; 3; 4 ]
    (Bq.close_now q);
  Alcotest.(check (list int)) "second close_now empty" [] (Bq.close_now q);
  Alcotest.(check (option int)) "pop after close_now" None (Bq.pop q)

(* MPMC stress: every pushed item is popped exactly once across domains,
   and pushes beyond capacity shed rather than block. *)
let test_bq_stress () =
  let q = Bq.create ~capacity:64 () in
  let n_producers = 3 and n_consumers = 3 and per = 2_000 in
  let accepted = Atomic.make 0 in
  let producers =
    List.init n_producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              let v = (p * per) + i in
              let rec go tries =
                if Bq.try_push q v then Atomic.incr accepted
                else if tries > 0 then begin
                  Domain.cpu_relax ();
                  go (tries - 1)
                end
                (* full after retries: shed — that's the contract *)
              in
              go 1_000
            done))
  in
  let popped = Atomic.make 0 in
  let consumers =
    List.init n_consumers (fun _ ->
        Domain.spawn (fun () ->
            let rec loop acc =
              match Bq.pop q with
              | None -> acc
              | Some _ ->
                Atomic.incr popped;
                loop (acc + 1)
            in
            loop 0))
  in
  List.iter Domain.join producers;
  Bq.close q;
  let per_consumer = List.map Domain.join consumers in
  Alcotest.(check int) "every accepted item popped exactly once"
    (Atomic.get accepted) (Atomic.get popped);
  Alcotest.(check int) "consumer sums agree" (Atomic.get popped)
    (List.fold_left ( + ) 0 per_consumer);
  Alcotest.(check bool) "stress actually admitted work" true
    (Atomic.get accepted > 0)

(* ------------------------------------------------------------------ *)
(* Fair queue                                                          *)
(* ------------------------------------------------------------------ *)

let ok_submit q ~tenant v =
  match Fq.submit q ~tenant v with
  | Ok () -> ()
  | Error s -> Alcotest.failf "unexpected shed: %s" (Fq.shed_reason s)

let test_fq_round_robin () =
  let q = Fq.create ~tenant_cap:8 ~global_cap:64 () in
  (* a deep in front of b: round-robin must interleave, not FIFO-drain a *)
  List.iter (fun v -> ok_submit q ~tenant:"a" v) [ 1; 2; 3 ];
  List.iter (fun v -> ok_submit q ~tenant:"b" v) [ 10; 20 ];
  ok_submit q ~tenant:"c" 100;
  let order = List.init 6 (fun _ -> Option.get (Fq.next q)) in
  Alcotest.(check (list int)) "one job per tenant per turn"
    [ 1; 10; 100; 2; 20; 3 ] order;
  Alcotest.(check int) "drained" 0 (Fq.depth q)

let test_fq_tenant_cap () =
  let q = Fq.create ~tenant_cap:2 ~global_cap:64 () in
  ok_submit q ~tenant:"noisy" 1;
  ok_submit q ~tenant:"noisy" 2;
  (match Fq.submit q ~tenant:"noisy" 3 with
  | Error (`Tenant_cap as s) ->
    Alcotest.(check string) "wire reason" "tenant-cap" (Fq.shed_reason s)
  | Ok () -> Alcotest.fail "tenant cap not enforced"
  | Error s -> Alcotest.failf "wrong reason: %s" (Fq.shed_reason s));
  (* the noisy tenant's saturation does not displace others *)
  ok_submit q ~tenant:"quiet" 10;
  Alcotest.(check (list (pair string int)))
    "per-tenant depths"
    [ ("noisy", 2); ("quiet", 1) ]
    (Fq.tenants q)

let test_fq_global_cap () =
  let q = Fq.create ~tenant_cap:8 ~global_cap:3 () in
  ok_submit q ~tenant:"a" 1;
  ok_submit q ~tenant:"b" 2;
  ok_submit q ~tenant:"c" 3;
  match Fq.submit q ~tenant:"d" 4 with
  | Error (`Global_cap as s) ->
    Alcotest.(check string) "wire reason" "global-cap" (Fq.shed_reason s)
  | Ok () -> Alcotest.fail "global cap not enforced"
  | Error s -> Alcotest.failf "wrong reason: %s" (Fq.shed_reason s)

let test_fq_close_wakes_blocked_next () =
  let q : int Fq.t = Fq.create () in
  let waiters = List.init 2 (fun _ -> Domain.spawn (fun () -> Fq.next q)) in
  Unix.sleepf 0.05;
  Fq.close q;
  List.iter
    (fun d ->
      Alcotest.(check (option int)) "woken into None" None (Domain.join d))
    waiters;
  match Fq.submit q ~tenant:"late" 1 with
  | Error `Closed -> ()
  | _ -> Alcotest.fail "submit after close must shed `Closed"

let test_fq_close_now () =
  let q = Fq.create () in
  List.iter (fun v -> ok_submit q ~tenant:"a" v) [ 1; 2 ];
  ok_submit q ~tenant:"b" 3;
  let abandoned = List.sort compare (Fq.close_now q) in
  Alcotest.(check (list int)) "backlog returned" [ 1; 2; 3 ] abandoned;
  Alcotest.(check (option int)) "next after close_now" None (Fq.next q)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip_dedup () =
  let dir = temp_dir "era_store" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let s = Store.open_ ~dir in
      let k1 = Store.put s ~akind:"counterexample" ~job_id:1 "payload" in
      let k2 = Store.put s ~akind:"counterexample" ~job_id:2 "payload" in
      Alcotest.(check string) "identical content, one object" k1 k2;
      Alcotest.(check (option string)) "content back" (Some "payload")
        (Store.get s k1);
      Alcotest.(check (option string)) "unknown key" None
        (Store.get s (String.make 32 'f'));
      Alcotest.(check (option string)) "traversal rejected" None
        (Store.get s "../../etc/passwd");
      Alcotest.(check int) "one entry per (job, kind)" 2
        (List.length (Store.entries s));
      Alcotest.(check int) "find by job" 1
        (List.length (Store.find s ~job_id:2));
      (* a fresh open_ reads the manifest back *)
      let s' = Store.open_ ~dir in
      Alcotest.(check int) "manifest survives reopen" 2
        (List.length (Store.entries s'));
      Alcotest.(check (option string)) "objects survive reopen"
        (Some "payload") (Store.get s' k1))

(* ------------------------------------------------------------------ *)
(* Job codec                                                           *)
(* ------------------------------------------------------------------ *)

let roundtrip kind =
  match Job.kind_of_json (Job.kind_to_json kind) with
  | Ok k -> k
  | Error e -> Alcotest.failf "kind codec: %s" e

let test_job_kind_roundtrip () =
  let explore =
    Job.Explore
      {
        scheme = "ibr"; structure = "ms-queue"; preemptions = 3;
        max_runs = 123; steps = 456; seed = 7; ops = Some 9;
        robust_bound = Some 2;
      }
  in
  List.iter
    (fun k -> Alcotest.(check bool) (Job.kind_label k) true (roundtrip k = k))
    [
      explore; Job.default_explore ();
      Job.Figure1 { scheme = "ebr"; rounds = 64 };
      Job.Figure2 { scheme = "hp" }; Job.Probe { spin = 42 };
    ];
  match Job.kind_of_json (Json.Obj [ ("kind", Json.String "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown kind must not decode"

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

let with_store k =
  let dir = temp_dir "era_exec" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> k (Store.open_ ~dir))

let small_explore =
  Job.Explore
    {
      scheme = "hp"; structure = "harris-list"; preemptions = 2;
      max_runs = 2_000; steps = 50_000; seed = 2; ops = None;
      robust_bound = None;
    }

let test_run_job_probe () =
  with_store (fun store ->
      let j = Job.make ~id:1 ~tenant:"t" (Job.Probe { spin = 100 }) in
      Executor.run_job ~store j;
      Alcotest.(check string) "done" "done" (Job.status_name j.Job.status);
      Alcotest.(check bool) "timestamps set" true
        (j.Job.finished_s >= j.Job.started_s && j.Job.started_s > 0.))

let test_run_job_explore_artifacts () =
  with_store (fun store ->
      let j = Job.make ~id:7 ~tenant:"t" small_explore in
      Executor.run_job ~store j;
      Alcotest.(check string) "done" "done" (Job.status_name j.Job.status);
      let r = Option.get j.Job.result in
      Alcotest.(check bool) "violation reported" true
        (String.length r.Job.note > 0);
      let cex_key =
        match List.assoc_opt "counterexample" r.Job.artifacts with
        | Some k -> k
        | None -> Alcotest.fail "hp/harris explore must store a counterexample"
      in
      (* the stored artifact is a loadable counterexample *)
      (match Store.get store cex_key with
      | None -> Alcotest.fail "counterexample key dangling"
      | Some content -> (
        match
          Result.bind (Json.of_string content) Ex.counterexample_of_json
        with
        | Ok cex ->
          Alcotest.(check bool) "non-trivial schedule" true
            (List.length cex.Ex.c_steps > 0)
        | Error e -> Alcotest.failf "stored counterexample invalid: %s" e));
      match List.assoc_opt "registry" r.Job.artifacts with
      | Some _ -> ()
      | None -> Alcotest.fail "explore job must store a registry snapshot")

let test_run_job_unknown_scheme () =
  with_store (fun store ->
      let j =
        Job.make ~id:2 ~tenant:"t" (Job.Figure2 { scheme = "no-such" })
      in
      Executor.run_job ~store j;
      Alcotest.(check string) "failed" "failed"
        (Job.status_name j.Job.status);
      let r = Option.get j.Job.result in
      Alcotest.(check bool) "note names the problem" true
        (String.length r.Job.note > 0))

(* Heartbeats: a run with a bus attached pushes a start beat plus
   periodic explore progress, and persists the history — ascending
   sequence numbers, registry-format bodies — as an artifact. *)
let test_run_job_heartbeats () =
  with_store (fun store ->
      let hb = Executor.create_heartbeats () in
      (* a safe scheme exhausts its run budget, so progress beats fire
         (hp/harris would cut short at the first violation) *)
      let kind =
        Job.Explore
          {
            scheme = "ebr"; structure = "harris-list"; preemptions = 2;
            max_runs = 400; steps = 50_000; seed = 3; ops = None;
            robust_bound = None;
          }
      in
      let j = Job.make ~id:11 ~tenant:"t" kind in
      Executor.run_job ~hb ~store j;
      let r = Option.get j.Job.result in
      let key =
        match List.assoc_opt "heartbeats" r.Job.artifacts with
        | Some k -> k
        | None -> Alcotest.fail "heartbeat history not persisted"
      in
      let beats =
        match
          Result.bind
            (Json.of_string (Option.get (Store.get store key)))
            (fun j -> Option.to_result ~none:"not a list" (Json.to_list j))
        with
        | Ok l -> l
        | Error e -> Alcotest.failf "heartbeats artifact: %s" e
      in
      Alcotest.(check bool) "start beat plus explore progress" true
        (List.length beats >= 2);
      let int_of k b = Option.bind (Json.member k b) Json.to_int in
      List.iteri
        (fun i b ->
          Alcotest.(check (option int)) "seq is dense and ascending"
            (Some (i + 1)) (int_of "seq" b);
          Alcotest.(check (option int)) "beat names its job" (Some 11)
            (int_of "job" b);
          match Json.member "registry" b with
          | Some reg -> (
            match Era_obs.Registry.metrics_of_json reg with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "beat %d registry: %s" i e)
          | None -> Alcotest.failf "beat %d without a registry" i)
        beats;
      (* progress beats carry the explorer's counters *)
      let has_runs b =
        match
          Option.bind (Json.member "registry" b) (fun reg ->
              Result.to_option (Era_obs.Registry.metrics_of_json reg))
        with
        | Some ms ->
          List.exists
            (fun (m : Era_obs.Registry.metric) ->
              m.Era_obs.Registry.name = "explore_runs")
            ms
        | None -> false
      in
      Alcotest.(check bool) "explore progress beats present" true
        (List.exists has_runs beats))

let test_executor_drain_then_stop () =
  with_store (fun store ->
      let queue = Fq.create () in
      let jobs =
        List.init 8 (fun i ->
            Job.make ~id:i
              ~tenant:(Fmt.str "t%d" (i mod 3))
              (Job.Probe { spin = 50 }))
      in
      List.iter
        (fun j ->
          match Fq.submit queue ~tenant:j.Job.tenant j with
          | Ok () -> ()
          | Error _ -> Alcotest.fail "under capacity, nothing sheds")
        jobs;
      let ex = Executor.start ~workers:2 ~queue ~store () in
      Executor.stop ~drain:true ex;
      List.iter
        (fun j ->
          Alcotest.(check string) "drained to Done" "done"
            (Job.status_name j.Job.status))
        jobs;
      Alcotest.(check int) "served counter" 8
        (Atomic.get (Executor.stats ex).Executor.served))

let test_executor_stop_now_aborts_backlog () =
  with_store (fun store ->
      let queue = Fq.create () in
      (* a slow head job keeps both workers busy while the backlog waits *)
      let jobs =
        List.init 10 (fun i ->
            Job.make ~id:i ~tenant:"t" (Job.Probe { spin = 200_000 }))
      in
      List.iter (fun j -> ignore (Fq.submit queue ~tenant:"t" j)) jobs;
      let ex = Executor.start ~workers:2 ~queue ~store () in
      Executor.stop ~drain:false ex;
      let st = Executor.stats ex in
      let served = Atomic.get st.Executor.served
      and aborted = Atomic.get st.Executor.aborted in
      Alcotest.(check int) "every job accounted" 10 (served + aborted);
      List.iter
        (fun j ->
          Alcotest.(check bool) "terminal" true (Job.terminal j.Job.status);
          if j.Job.status = Job.Aborted then
            Alcotest.(check bool) "abort note" true
              (match j.Job.result with
              | Some r -> String.length r.Job.note > 0
              | None -> false))
        jobs)

(* Workers blocked on an EMPTY queue: stop must wake and join them — the
   executor-level lost-wakeup test (hangs on regression). *)
let test_executor_stop_while_blocked () =
  with_store (fun store ->
      let queue : Job.t Fq.t = Fq.create () in
      let ex = Executor.start ~workers:3 ~queue ~store () in
      Unix.sleepf 0.05;
      Executor.stop ~drain:true ex;
      Executor.stop ~drain:true ex (* idempotent *))

(* ------------------------------------------------------------------ *)
(* Daemon + client end-to-end                                          *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(workers = 2) ?(global_cap = 64) ?(tenant_cap = 32) k =
  let dir = temp_dir "era_daemon" in
  let socket = Filename.concat dir "serve.sock" in
  let cfg =
    {
      Daemon.socket_path = socket; workers; global_cap; tenant_cap;
      store_dir = Filename.concat dir "artifacts";
    }
  in
  let d = Daemon.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Daemon.stop d;
      (* the shutdown job-table dump lands in cwd: clean it up *)
      let dump = Fmt.str "jobs_%s.json" (Filename.remove_extension
                                           (Filename.basename socket)) in
      if Sys.file_exists dump then Sys.remove dump;
      rm_rf dir)
    (fun () -> k d socket)

let connect socket =
  match Client.connect ~retries:20 ~retry_delay_s:0.05 ~socket () with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let get_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "rpc: %s" e

let test_daemon_submit_wait () =
  with_daemon (fun d socket ->
      let cl = connect socket in
      get_exn (Client.ping cl);
      let id =
        match get_exn (Client.submit cl ~tenant:"alice" small_explore) with
        | Client.Admitted id -> id
        | Client.Shed r -> Alcotest.failf "shed under capacity: %s" r
      in
      let j = get_exn (Client.wait_job cl id) in
      let field k =
        Option.value (Option.bind (Json.member k j) Json.to_str) ~default:""
      in
      Alcotest.(check string) "done over the wire" "done" (field "status");
      (* the manifest indexes the counterexample; fetch it back by key *)
      let arts =
        match Option.bind (Json.member "artifacts" j) Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "job summary without artifacts"
      in
      let cex_key =
        List.find_map
          (fun a ->
            match Option.bind (Json.member "kind" a) Json.to_str with
            | Some "counterexample" ->
              Option.bind (Json.member "key" a) Json.to_str
            | _ -> None)
          arts
        |> function
        | Some k -> k
        | None -> Alcotest.fail "no counterexample artifact key"
      in
      let content = get_exn (Client.artifact cl cex_key) in
      (match
         Result.bind (Json.of_string content) Ex.counterexample_of_json
       with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "artifact not a counterexample: %s" e);
      (* jobs + stats agree *)
      let jobs = get_exn (Client.jobs cl) in
      Alcotest.(check int) "one job listed" 1 (List.length jobs);
      let stats = get_exn (Client.stats cl) in
      let int k =
        Option.value (Option.bind (Json.member k stats) Json.to_int)
          ~default:(-1)
      in
      Alcotest.(check int) "admitted" 1 (int "admitted");
      Alcotest.(check int) "served" 1 (int "served");
      Alcotest.(check int) "shed" 0 (int "shed");
      Alcotest.(check int) "daemon job table" 1 (List.length (Daemon.jobs d));
      Client.close cl)

(* The streaming exception to one-request/one-response: follow a live
   explore job and collect its heartbeats until the terminal summary. *)
let test_daemon_follow () =
  with_daemon (fun _ socket ->
      let cl = connect socket in
      let id =
        match get_exn (Client.submit cl ~tenant:"t" small_explore) with
        | Client.Admitted id -> id
        | Client.Shed r -> Alcotest.failf "shed under capacity: %s" r
      in
      let beats = ref [] in
      let summary =
        get_exn (Client.follow cl ~on_heartbeat:(fun b -> beats := b :: !beats) id)
      in
      let beats = List.rev !beats in
      Alcotest.(check bool) "at least the start beat streamed" true
        (beats <> []);
      let seqs =
        List.map
          (fun b ->
            Option.value (Option.bind (Json.member "seq" b) Json.to_int)
              ~default:(-1))
          beats
      in
      Alcotest.(check (list int)) "seqs stream in order, no gaps"
        (List.init (List.length seqs) (( + ) 1))
        seqs;
      (* the terminal line is the full summary, artifacts included *)
      Alcotest.(check (option string)) "terminal summary is done"
        (Some "done")
        (Option.bind (Json.member "status" summary) Json.to_str);
      (match Option.bind (Json.member "artifacts" summary) Json.to_list with
      | Some arts ->
        let kinds =
          List.filter_map
            (fun a -> Option.bind (Json.member "kind" a) Json.to_str)
            arts
        in
        Alcotest.(check bool) "heartbeat history is an artifact" true
          (List.mem "heartbeats" kinds)
      | None -> Alcotest.fail "summary without artifacts");
      (* the connection is reusable after the stream ends *)
      get_exn (Client.ping cl);
      Client.close cl)

let test_daemon_shed_and_registry () =
  (* 1 worker busy on a long probe; tiny caps force shed on the wire *)
  with_daemon ~workers:1 ~global_cap:2 ~tenant_cap:1 (fun d socket ->
      let cl = connect socket in
      let submit tenant =
        get_exn (Client.submit cl ~tenant (Job.Probe { spin = 2_000_000 }))
      in
      ignore (submit "a" : Client.submit_outcome) (* likely running *);
      let rec fill n =
        (* keep submitting until the tenant's slot is provably full *)
        match submit "a" with
        | Client.Shed reason -> reason
        | Client.Admitted _ when n > 0 -> fill (n - 1)
        | Client.Admitted _ -> Alcotest.fail "tenant cap never enforced"
      in
      let reason = fill 4 in
      Alcotest.(check string) "shed reason on the wire" "tenant-cap" reason;
      (* a different tenant still gets in (fairness of caps) *)
      (match submit "b" with
      | Client.Admitted _ -> ()
      | Client.Shed r -> Alcotest.failf "other tenant displaced: %s" r);
      let reg = Daemon.stats_registry d in
      let reg_json = Era_obs.Registry.to_string reg in
      Alcotest.(check bool) "registry exports shed counters" true
        (let has s =
           let n = String.length s and m = String.length reg_json in
           let rec go i =
             i + n <= m && (String.sub reg_json i n = s || go (i + 1))
           in
           go 0
         in
         has "serve_shed" && has "serve_admitted");
      Client.close cl)

let test_daemon_client_shutdown () =
  with_daemon (fun d socket ->
      let cl = connect socket in
      let id =
        match get_exn (Client.submit cl ~tenant:"t" (Job.Probe { spin = 10 }))
        with
        | Client.Admitted id -> id
        | Client.Shed r -> Alcotest.failf "shed: %s" r
      in
      get_exn (Client.shutdown cl ~drain:true);
      Client.close cl;
      (* wait completes the shutdown: socket gone, backlog drained *)
      Daemon.wait d;
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
      match Daemon.find_job d id with
      | Some j ->
        Alcotest.(check string) "drained before stopping" "done"
          (Job.status_name j.Job.status)
      | None -> Alcotest.fail "job table lost the job")

(* ------------------------------------------------------------------ *)
(* Load generator (small): zero lost, zero shed under capacity         *)
(* ------------------------------------------------------------------ *)

let test_load_under_capacity () =
  with_daemon ~workers:2 ~global_cap:512 ~tenant_cap:256 (fun _ socket ->
      let cfg =
        {
          Load.socket; conns = 8; pipeline = 4; requests = 200; tenants = 3;
          kind = Job.Probe { spin = 20 }; drain_timeout_s = 60.;
        }
      in
      match Load.run cfg with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok r ->
        Alcotest.(check int) "every request answered" 200 r.Load.responded;
        Alcotest.(check int) "no protocol errors" 0 r.Load.errors;
        Alcotest.(check int) "zero lost" 0 r.Load.lost;
        Alcotest.(check int) "under capacity nothing sheds" 0 r.Load.shed;
        Alcotest.(check int) "all admitted" 200 r.Load.admitted;
        Alcotest.(check int) "all served" 200
          (r.Load.served + r.Load.failed);
        Alcotest.(check bool) "pipelining overlapped requests" true
          (r.Load.inflight_peak > 1))

let () =
  Alcotest.run "era_serve"
    [
      ( "bounded_queue",
        [
          Alcotest.test_case "fifo" `Quick test_bq_fifo;
          Alcotest.test_case "shed on full" `Quick test_bq_shed_on_full;
          Alcotest.test_case "push after close" `Quick
            test_bq_push_after_close;
          Alcotest.test_case "close wakes blocked poppers" `Quick
            test_bq_close_wakes_blocked_poppers;
          Alcotest.test_case "close_now returns leftovers" `Quick
            test_bq_close_now_leftovers;
          Alcotest.test_case "mpmc stress" `Quick test_bq_stress;
        ] );
      ( "fair_queue",
        [
          Alcotest.test_case "round robin" `Quick test_fq_round_robin;
          Alcotest.test_case "tenant cap" `Quick test_fq_tenant_cap;
          Alcotest.test_case "global cap" `Quick test_fq_global_cap;
          Alcotest.test_case "close wakes blocked next" `Quick
            test_fq_close_wakes_blocked_next;
          Alcotest.test_case "close_now" `Quick test_fq_close_now;
        ] );
      ( "store",
        [
          Alcotest.test_case "round-trip, dedup, reopen" `Quick
            test_store_roundtrip_dedup;
        ] );
      ( "job",
        [ Alcotest.test_case "kind codec" `Quick test_job_kind_roundtrip ] );
      ( "executor",
        [
          Alcotest.test_case "probe runs" `Quick test_run_job_probe;
          Alcotest.test_case "explore artifacts" `Quick
            test_run_job_explore_artifacts;
          Alcotest.test_case "heartbeat bus and artifact" `Quick
            test_run_job_heartbeats;
          Alcotest.test_case "unknown scheme fails cleanly" `Quick
            test_run_job_unknown_scheme;
          Alcotest.test_case "drain then stop" `Quick
            test_executor_drain_then_stop;
          Alcotest.test_case "stop now aborts backlog" `Quick
            test_executor_stop_now_aborts_backlog;
          Alcotest.test_case "stop while workers blocked" `Quick
            test_executor_stop_while_blocked;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "submit, wait, artifacts" `Quick
            test_daemon_submit_wait;
          Alcotest.test_case "follow streams heartbeats" `Quick
            test_daemon_follow;
          Alcotest.test_case "shed + registry" `Quick
            test_daemon_shed_and_registry;
          Alcotest.test_case "client-driven shutdown" `Quick
            test_daemon_client_shutdown;
        ] );
      ( "load",
        [
          Alcotest.test_case "under capacity: no shed, no loss" `Quick
            test_load_under_capacity;
        ] );
    ]

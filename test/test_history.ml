(* Tests for histories, sequential specifications, and the
   linearizability checker — including cross-validation of the
   Wing–Gong search against a brute-force oracle on random histories. *)

open Era_sim
module History = Era_history.History
module Spec = Era_history.Spec
module Linearize = Era_history.Linearize

let op name args = { Event.name; args }

(* Hand-build a history from (tid, op, result, inv, res) tuples. *)
let hist entries : History.t =
  List.mapi
    (fun i (tid, o, result, inv_time, res_time) ->
      {
        History.opid = i;
        tid;
        op = o;
        inv_time;
        result;
        res_time;
      })
    entries

let bool_res b = Some (Event.R_bool b)

(* ------------------------------------------------------------------ *)
(* Specs                                                               *)
(* ------------------------------------------------------------------ *)

let test_set_spec () =
  let s0 = Spec.Int_set.init in
  let s1, r1 = Spec.Int_set.apply s0 (op "insert" [ 3 ]) in
  Alcotest.(check bool) "insert new" true (r1 = Event.R_bool true);
  let _, r2 = Spec.Int_set.apply s1 (op "insert" [ 3 ]) in
  Alcotest.(check bool) "insert dup" true (r2 = Event.R_bool false);
  let _, r3 = Spec.Int_set.apply s1 (op "contains" [ 3 ]) in
  Alcotest.(check bool) "contains" true (r3 = Event.R_bool true);
  let s2, r4 = Spec.Int_set.apply s1 (op "delete" [ 3 ]) in
  Alcotest.(check bool) "delete" true (r4 = Event.R_bool true);
  let _, r5 = Spec.Int_set.apply s2 (op "delete" [ 3 ]) in
  Alcotest.(check bool) "delete absent" true (r5 = Event.R_bool false)

let test_set_spec_sorted () =
  let s =
    List.fold_left
      (fun s k -> fst (Spec.Int_set.apply s (op "insert" [ k ])))
      Spec.Int_set.init [ 5; 1; 3; 2 ]
  in
  Alcotest.(check (list int)) "sorted state" [ 1; 2; 3; 5 ] s

let test_stack_spec () =
  let s, _ = Spec.Int_stack.apply Spec.Int_stack.init (op "push" [ 1 ]) in
  let s, _ = Spec.Int_stack.apply s (op "push" [ 2 ]) in
  let s, r = Spec.Int_stack.apply s (op "pop" []) in
  Alcotest.(check bool) "LIFO" true (r = Event.R_int (Some 2));
  let s, r = Spec.Int_stack.apply s (op "pop" []) in
  Alcotest.(check bool) "then 1" true (r = Event.R_int (Some 1));
  let _, r = Spec.Int_stack.apply s (op "pop" []) in
  Alcotest.(check bool) "empty" true (r = Event.R_int None)

let test_queue_spec () =
  let s, _ = Spec.Int_queue.apply Spec.Int_queue.init (op "enqueue" [ 1 ]) in
  let s, _ = Spec.Int_queue.apply s (op "enqueue" [ 2 ]) in
  let _, r = Spec.Int_queue.apply s (op "dequeue" []) in
  Alcotest.(check bool) "FIFO" true (r = Event.R_int (Some 1))

let test_spec_unknown_op () =
  Alcotest.(check bool) "unknown raises" true
    (match Spec.Int_set.apply [] (op "frobnicate" []) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* History structure                                                   *)
(* ------------------------------------------------------------------ *)

let test_extraction () =
  let events =
    [
      Event.Invoke { tid = 0; opid = 1; op = op "insert" [ 5 ] };
      Event.Note "interleaving";
      Event.Invoke { tid = 1; opid = 2; op = op "contains" [ 5 ] };
      Event.Response
        { tid = 0; opid = 1; op = op "insert" [ 5 ]; result = Event.R_bool true };
    ]
  in
  let h = History.of_trace events in
  Alcotest.(check int) "two ops" 2 (List.length h);
  Alcotest.(check int) "one pending" 1 (List.length (History.pending h));
  Alcotest.(check bool) "not complete" false (History.is_complete h);
  Alcotest.(check int) "width" 2 (History.concurrency_width h)

let test_well_formed () =
  let good =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 1);
        (0, op "insert" [ 2 ], bool_res true, 2, 3);
        (1, op "insert" [ 3 ], bool_res true, 0, 5);
      ]
  in
  Alcotest.(check bool) "sequential per thread ok" true
    (History.is_well_formed good);
  let bad =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 3);
        (0, op "insert" [ 2 ], bool_res true, 1, 2);
      ]
  in
  Alcotest.(check bool) "overlap within thread rejected" false
    (History.is_well_formed bad)

(* ------------------------------------------------------------------ *)
(* Linearizability: hand-crafted cases                                 *)
(* ------------------------------------------------------------------ *)

let set_spec = (module Spec.Int_set : Spec.S)

let test_lin_sequential () =
  let h =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 1);
        (0, op "contains" [ 1 ], bool_res true, 2, 3);
        (0, op "delete" [ 1 ], bool_res true, 4, 5);
        (0, op "contains" [ 1 ], bool_res false, 6, 7);
      ]
  in
  Alcotest.(check bool) "sequential ok" true (Linearize.is_linearizable set_spec h)

let test_lin_wrong_result () =
  let h =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 1);
        (0, op "contains" [ 1 ], bool_res false, 2, 3);
      ]
  in
  Alcotest.(check bool) "stale read rejected" false
    (Linearize.is_linearizable set_spec h)

let test_lin_concurrent_ok () =
  (* contains(1)=false concurrent with insert(1)=true: may linearize
     before the insert. *)
  let h =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 5);
        (1, op "contains" [ 1 ], bool_res false, 1, 2);
      ]
  in
  Alcotest.(check bool) "concurrent reordering" true
    (Linearize.is_linearizable set_spec h)

let test_lin_real_time_respected () =
  (* contains(1)=false strictly after insert(1)=true returned: no. *)
  let h =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 1);
        (1, op "contains" [ 1 ], bool_res false, 2, 3);
      ]
  in
  Alcotest.(check bool) "real-time order enforced" false
    (Linearize.is_linearizable set_spec h)

let test_lin_pending_completed () =
  (* A pending insert may take effect to explain a contains=true. *)
  let h =
    hist
      [
        (0, op "insert" [ 1 ], None, 0, max_int);
        (1, op "contains" [ 1 ], bool_res true, 1, 2);
      ]
  in
  Alcotest.(check bool) "pending op may linearize" true
    (Linearize.is_linearizable set_spec h)

let test_lin_pending_dropped () =
  (* Or be dropped to explain a contains=false. *)
  let h =
    hist
      [
        (0, op "insert" [ 1 ], None, 0, max_int);
        (1, op "contains" [ 1 ], bool_res false, 1, 2);
      ]
  in
  Alcotest.(check bool) "pending op may be dropped" true
    (Linearize.is_linearizable set_spec h)

let test_lin_witness () =
  let h =
    hist
      [
        (0, op "insert" [ 1 ], bool_res true, 0, 5);
        (1, op "delete" [ 1 ], bool_res true, 1, 4);
      ]
  in
  let v = Linearize.check set_spec h in
  Alcotest.(check bool) "ok" true v.Linearize.ok;
  Alcotest.(check int) "witness covers all" 2 (List.length v.Linearize.witness);
  (* The only valid order is insert before delete. *)
  Alcotest.(check string) "insert first" "insert"
    (List.hd v.Linearize.witness).Event.name

let test_lin_queue_fifo_violation () =
  let h =
    hist
      [
        (0, op "enqueue" [ 1 ], Some Event.R_unit, 0, 1);
        (0, op "enqueue" [ 2 ], Some Event.R_unit, 2, 3);
        (1, op "dequeue" [], Some (Event.R_int (Some 2)), 4, 5);
      ]
  in
  Alcotest.(check bool) "LIFO behaviour on a queue rejected" false
    (Linearize.is_linearizable (module Spec.Int_queue) h)

(* ------------------------------------------------------------------ *)
(* Property: checker agrees with brute force                           *)
(* ------------------------------------------------------------------ *)

let gen_history : History.t QCheck2.Gen.t =
  (* Small random histories over keys {1,2}, 2 threads, with plausible
     but unvalidated results — exercising both accepting and rejecting
     paths. *)
  let open QCheck2.Gen in
  let gen_op =
    oneof
      [
        map (fun k -> op "insert" [ k ]) (int_range 1 2);
        map (fun k -> op "delete" [ k ]) (int_range 1 2);
        map (fun k -> op "contains" [ k ]) (int_range 1 2);
      ]
  in
  let* n = int_range 1 5 in
  let* raw =
    list_size (return n)
      (triple gen_op bool (pair (int_range 0 1) (int_range 1 4)))
  in
  (* Assign per-thread non-overlapping intervals. *)
  let time = Array.make 2 0 in
  let entries =
    List.mapi
      (fun i (o, res, (tid, dur)) ->
        let inv = time.(tid) in
        let resp = inv + dur in
        time.(tid) <- resp + 1;
        {
          History.opid = i;
          tid;
          op = o;
          inv_time = (inv * 2) + tid;  (* unique-ish times *)
          result = bool_res res;
          res_time = (resp * 2) + tid;
        })
      raw
  in
  return entries

let checker_vs_bruteforce =
  QCheck2.Test.make ~name:"linearize: Wing-Gong agrees with brute force"
    ~count:400 gen_history (fun h ->
      Linearize.is_linearizable set_spec h = Linearize.brute_force set_spec h)

(* Same oracle cross-check on longer histories (up to 8 ops, 3 keys):
   more memo-table pressure on the bitmask keys than the n<=5 property
   above, while staying cheap enough for brute force. *)
let gen_history_wide : History.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_op =
    oneof
      [
        map (fun k -> op "insert" [ k ]) (int_range 1 3);
        map (fun k -> op "delete" [ k ]) (int_range 1 3);
        map (fun k -> op "contains" [ k ]) (int_range 1 3);
      ]
  in
  let* n = int_range 4 8 in
  let* raw =
    list_size (return n)
      (triple gen_op bool (pair (int_range 0 1) (int_range 1 4)))
  in
  let time = Array.make 2 0 in
  let entries =
    List.mapi
      (fun i (o, res, (tid, dur)) ->
        let inv = time.(tid) in
        let resp = inv + dur in
        time.(tid) <- resp + 1;
        {
          History.opid = i;
          tid;
          op = o;
          inv_time = (inv * 2) + tid;
          result = bool_res res;
          res_time = (resp * 2) + tid;
        })
      raw
  in
  return entries

let checker_vs_bruteforce_wide =
  QCheck2.Test.make
    ~name:"linearize: Wing-Gong agrees with brute force (wider)" ~count:150
    gen_history_wide (fun h ->
      Linearize.is_linearizable set_spec h = Linearize.brute_force set_spec h)

let sequential_always_linearizable =
  QCheck2.Test.make
    ~name:"linearize: spec-generated sequential histories accepted"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 12) (pair (int_range 0 2) (int_range 1 3)))
    (fun ops ->
      let state = ref Spec.Int_set.init in
      let t = ref 0 in
      let h =
        List.mapi
          (fun i (what, k) ->
            let o =
              match what with
              | 0 -> op "insert" [ k ]
              | 1 -> op "delete" [ k ]
              | _ -> op "contains" [ k ]
            in
            let s', r = Spec.Int_set.apply !state o in
            state := s';
            let inv = !t in
            t := !t + 2;
            {
              History.opid = i;
              tid = 0;
              op = o;
              inv_time = inv;
              result = Some r;
              res_time = inv + 1;
            })
          ops
      in
      Linearize.is_linearizable set_spec h)

(* ------------------------------------------------------------------ *)
(* Memo-key encodings                                                  *)
(* ------------------------------------------------------------------ *)

(* A sequential spec-generated history longer than 62 ops exercises the
   string-encoded memo-key fallback (histories up to 62 ops use an int
   bitmask); flipping one result must still be caught there. *)
let long_sequential_history n =
  let state = ref Spec.Int_set.init in
  List.init n (fun i ->
      let o =
        match i mod 3 with
        | 0 -> op "insert" [ (i mod 4) + 1 ]
        | 1 -> op "contains" [ (i mod 4) + 1 ]
        | _ -> op "delete" [ (i mod 4) + 1 ]
      in
      let s', r = Spec.Int_set.apply !state o in
      state := s';
      {
        History.opid = i;
        tid = 0;
        op = o;
        inv_time = 2 * i;
        result = Some r;
        res_time = (2 * i) + 1;
      })

let flip_result (r : History.op_record) =
  let result =
    match r.History.result with
    | Some (Event.R_bool b) -> Some (Event.R_bool (not b))
    | other -> other
  in
  { r with History.result }

let test_long_history_fallback () =
  let h = long_sequential_history 70 in
  Alcotest.(check bool) "70-op sequential history accepted" true
    (Linearize.is_linearizable set_spec h);
  let broken =
    List.mapi (fun i r -> if i = 69 then flip_result r else r) h
  in
  Alcotest.(check bool) "flipped final result rejected" false
    (Linearize.is_linearizable set_spec broken)

(* Golden checker run captured before the memo keys switched from
   string concatenation to int bitmasks: the key change is a bijection,
   so the verdict AND the explored-state count must be unchanged. *)
let golden_checker_run seed =
  let mon = Monitor.create ~mode:`Raise ~trace:true () in
  let heap = Heap.create mon in
  let sched =
    Era_sched.Sched.create ~nthreads:2
      (Era_sched.Sched.Random (Rng.create seed))
      heap
  in
  let module L = Era_sets.Harris_list.Make (Era_smr.Ebr) in
  let g = Era_smr.Ebr.create heap ~nthreads:2 in
  let ext = Era_sched.Sched.external_ctx sched ~tid:0 in
  let dl = L.create ext g in
  for tid = 0 to 1 do
    Era_sched.Sched.spawn sched ~tid (fun ctx ->
        let ops = L.ops (L.handle dl ctx) ~record:true in
        Era_workload.Workload.run_set_ops ops
          (Rng.create (tid + 3))
          ~ops:16
          ~keys:(Era_workload.Workload.Uniform 6)
          ~mix:Era_workload.Workload.balanced)
  done;
  ignore (Era_sched.Sched.run sched);
  let h = History.of_monitor mon in
  (List.length h, Linearize.check set_spec h)

let test_golden_checker_states () =
  List.iter
    (fun seed ->
      let n, v = golden_checker_run seed in
      Alcotest.(check int) (Fmt.str "ops (seed %d)" seed) 32 n;
      Alcotest.(check bool) (Fmt.str "linearizable (seed %d)" seed) true
        v.Linearize.ok;
      Alcotest.(check int)
        (Fmt.str "states explored (seed %d)" seed)
        32 v.Linearize.states_explored)
    [ 5; 9 ]

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "era_history"
    [
      ( "specs",
        [
          Alcotest.test_case "set" `Quick test_set_spec;
          Alcotest.test_case "set sorted" `Quick test_set_spec_sorted;
          Alcotest.test_case "stack" `Quick test_stack_spec;
          Alcotest.test_case "queue" `Quick test_queue_spec;
          Alcotest.test_case "unknown op" `Quick test_spec_unknown_op;
        ] );
      ( "history",
        [
          Alcotest.test_case "extraction" `Quick test_extraction;
          Alcotest.test_case "well-formed" `Quick test_well_formed;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "sequential" `Quick test_lin_sequential;
          Alcotest.test_case "wrong result" `Quick test_lin_wrong_result;
          Alcotest.test_case "concurrent reorder" `Quick
            test_lin_concurrent_ok;
          Alcotest.test_case "real-time order" `Quick
            test_lin_real_time_respected;
          Alcotest.test_case "pending completed" `Quick
            test_lin_pending_completed;
          Alcotest.test_case "pending dropped" `Quick test_lin_pending_dropped;
          Alcotest.test_case "witness" `Quick test_lin_witness;
          Alcotest.test_case "queue FIFO violation" `Quick
            test_lin_queue_fifo_violation;
          Alcotest.test_case "long-history memo fallback" `Quick
            test_long_history_fallback;
          Alcotest.test_case "golden checker run" `Quick
            test_golden_checker_states;
        ] );
      qsuite "linearizability-props"
        [
          checker_vs_bruteforce; checker_vs_bruteforce_wide;
          sequential_always_linearizable;
        ];
    ]

(* Unit and property tests for the simulation substrate: words, the node
   life cycle, the heap's Definition 4.1/4.2 checking, and the monitor. *)

open Era_sim

let mon () = Monitor.create ~mode:`Record ~trace:true ()

let heap_with ?config () =
  let m = mon () in
  (Heap.create ?config m, m)

(* ------------------------------------------------------------------ *)
(* Word                                                                *)
(* ------------------------------------------------------------------ *)

let test_word_basics () =
  let w = Word.ptr ~addr:3 ~node:7 in
  Alcotest.(check bool) "ptr" true (Word.is_ptr w);
  Alcotest.(check bool) "unmarked" false (Word.is_marked w);
  let m = Word.mark w in
  Alcotest.(check bool) "marked" true (Word.is_marked m);
  Alcotest.(check bool) "unmark round-trip" true
    (Word.equal w (Word.unmark m));
  Alcotest.(check int) "addr" 3 (Word.addr_exn m);
  Alcotest.(check int) "node" 7 (Word.node_exn m);
  Alcotest.(check bool) "null not marked" false (Word.is_marked Word.Null)

let test_word_bits () =
  let a = Word.ptr ~addr:3 ~node:7 in
  let b = Word.ptr ~addr:3 ~node:9 in
  (* Different logical nodes at the same address are bit-equal: ABA. *)
  Alcotest.(check bool) "same bits across nodes" true (Word.same_bits a b);
  Alcotest.(check bool) "not structurally equal" false (Word.equal a b);
  Alcotest.(check bool) "mark changes bits" false
    (Word.same_bits a (Word.mark a));
  Alcotest.(check bool) "taint invisible to bits" true
    (Word.same_bits a (Word.taint a));
  Alcotest.(check bool) "ints by value" true
    (Word.same_bits (Word.int 5) (Word.int 5));
  Alcotest.(check bool) "null = null" true (Word.same_bits Word.Null Word.Null)

let test_word_taint () =
  let a = Word.ptr ~addr:1 ~node:1 in
  Alcotest.(check bool) "fresh untainted" false (Word.is_stale a);
  Alcotest.(check bool) "tainted" true (Word.is_stale (Word.taint a));
  Alcotest.(check bool) "mark keeps taint" true
    (Word.is_stale (Word.mark (Word.taint a)))

let test_word_exn () =
  Alcotest.check_raises "mark null" (Invalid_argument "Word.mark: not a pointer")
    (fun () -> ignore (Word.mark Word.Null));
  Alcotest.check_raises "addr of int"
    (Invalid_argument "Word.addr_exn: not a pointer") (fun () ->
      ignore (Word.addr_exn (Word.int 3)))

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let test_lifecycle_legal () =
  let ok from to_ =
    Alcotest.(check bool)
      (Fmt.str "%a->%a" Lifecycle.pp from Lifecycle.pp to_)
      true
      (Result.is_ok (Lifecycle.check_transition ~from ~to_))
  in
  ok Lifecycle.Unallocated (Lifecycle.Local 0);
  ok (Lifecycle.Local 0) Lifecycle.Shared;
  ok (Lifecycle.Local 1) Lifecycle.Retired;
  ok Lifecycle.Shared Lifecycle.Retired;
  ok Lifecycle.Retired Lifecycle.Unallocated

let test_lifecycle_illegal () =
  let bad from to_ =
    Alcotest.(check bool)
      (Fmt.str "%a->%a" Lifecycle.pp from Lifecycle.pp to_)
      true
      (Result.is_error (Lifecycle.check_transition ~from ~to_))
  in
  bad Lifecycle.Unallocated Lifecycle.Shared;
  bad Lifecycle.Unallocated Lifecycle.Retired;
  bad Lifecycle.Shared (Lifecycle.Local 0);
  bad Lifecycle.Retired Lifecycle.Shared;
  bad Lifecycle.Retired (Lifecycle.Local 2);
  bad (Lifecycle.Local 0) Lifecycle.Unallocated;
  bad Lifecycle.Shared Lifecycle.Shared

let lifecycle_prop =
  (* Random walks through the automaton never reach a state from which
     the accounting (active iff local/shared) is inconsistent. *)
  QCheck2.Test.make ~name:"lifecycle: is_active matches state" ~count:200
    QCheck2.Gen.(list (int_range 0 3))
    (fun moves ->
      let state = ref Lifecycle.Unallocated in
      List.iter
        (fun m ->
          let candidate =
            match m with
            | 0 -> Lifecycle.Local 0
            | 1 -> Lifecycle.Shared
            | 2 -> Lifecycle.Retired
            | _ -> Lifecycle.Unallocated
          in
          match Lifecycle.check_transition ~from:!state ~to_:candidate with
          | Ok () -> state := candidate
          | Error _ -> ())
        moves;
      Lifecycle.is_active !state
      = (match !state with
        | Lifecycle.Local _ | Lifecycle.Shared -> true
        | Lifecycle.Unallocated | Lifecycle.Retired -> false))

(* ------------------------------------------------------------------ *)
(* Rng / Vec                                                           *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let rng_bounds_prop =
  QCheck2.Test.make ~name:"rng: int within bounds" ~count:500
    QCheck2.Gen.(pair int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let vec_model_prop =
  QCheck2.Test.make ~name:"vec: behaves like a list" ~count:300
    QCheck2.Gen.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Vec.to_list v = xs
      && Vec.length v = List.length xs
      && List.for_all (fun i -> Vec.get v i = List.nth xs i)
           (List.init (List.length xs) Fun.id))

let test_vec_find_last () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 4; 2; 4; 3 ];
  Alcotest.(check (option int)) "find_last" (Some 4)
    (Vec.find_last (fun x -> x = 4) v);
  Alcotest.(check (option int)) "absent" None
    (Vec.find_last (fun x -> x = 9) v)

(* ------------------------------------------------------------------ *)
(* Heap: life cycle and validity                                       *)
(* ------------------------------------------------------------------ *)

let test_heap_alloc_retire_reclaim () =
  let h, m = heap_with () in
  let w = Heap.alloc h ~tid:0 ~key:5 in
  Alcotest.(check bool) "valid after alloc" true (Heap.is_valid h w);
  Alcotest.(check int) "active" 1 (Monitor.active m);
  Heap.retire h ~tid:0 w;
  Alcotest.(check bool) "still valid while retired" true (Heap.is_valid h w);
  Alcotest.(check int) "retired" 1 (Monitor.retired m);
  Heap.reclaim h ~tid:0 w;
  Alcotest.(check bool) "invalid after reclaim" false (Heap.is_valid h w);
  Alcotest.(check int) "retired back to 0" 0 (Monitor.retired m);
  Alcotest.(check int) "no violations" 0 (Monitor.violation_count m)

let test_heap_node_identity_on_reuse () =
  let h, _ = heap_with () in
  let w1 = Heap.alloc h ~tid:0 ~key:1 in
  Heap.retire h ~tid:0 w1;
  Heap.reclaim h ~tid:0 w1;
  let w2 = Heap.alloc h ~tid:0 ~key:2 in
  Alcotest.(check int) "address reused" (Word.addr_exn w1) (Word.addr_exn w2);
  Alcotest.(check bool) "different logical node" false
    (Word.node_exn w1 = Word.node_exn w2);
  Alcotest.(check bool) "old pointer invalid" false (Heap.is_valid h w1);
  Alcotest.(check bool) "classified as reused" true
    (Heap.validity h w1 = Heap.Invalid_reused)

let test_heap_double_free () =
  let h, m = heap_with () in
  let w = Heap.alloc h ~tid:0 ~key:1 in
  Heap.retire h ~tid:0 w;
  Heap.retire h ~tid:0 w;
  Alcotest.(check int) "double retire flagged" 1 (Monitor.violation_count m);
  Heap.reclaim h ~tid:0 w;
  Heap.reclaim h ~tid:0 w;
  Alcotest.(check int) "double reclaim flagged" 2 (Monitor.violation_count m)

let test_heap_unsafe_read_taints () =
  let h, m = heap_with () in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  let b = Heap.alloc h ~tid:0 ~key:2 in
  Heap.write_checked h ~tid:0 ~via:a ~field:0 b;
  Heap.retire h ~tid:0 a;
  Heap.reclaim h ~tid:0 a;
  (* Peek through the dangling pointer: unsafe but not a violation. *)
  let w, v = Heap.peek h ~tid:0 ~via:a ~field:0 in
  Alcotest.(check bool) "invalid" true (v <> Heap.Valid);
  Alcotest.(check bool) "tainted" true (Word.is_stale w);
  Alcotest.(check int) "peek is not a violation" 0 (Monitor.violation_count m);
  (* Checked read through it is a use: Definition 4.2(3). *)
  ignore (Heap.read_checked h ~tid:0 ~via:a ~field:0);
  Alcotest.(check int) "checked read violates" 1 (Monitor.violation_count m);
  (* Dereferencing the tainted word is also a use. *)
  ignore (Heap.peek h ~tid:0 ~via:w ~field:0);
  Alcotest.(check bool) "stale deref flagged" true
    (Monitor.violation_count m >= 2)

let test_heap_unsafe_write () =
  let h, m = heap_with () in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  Heap.retire h ~tid:0 a;
  Heap.reclaim h ~tid:0 a;
  Heap.write_checked h ~tid:0 ~via:a ~field:0 Word.Null;
  Alcotest.(check bool) "unsafe write flagged" true
    (List.exists
       (function
         | Event.Violation { kind = Event.Unsafe_write; _ } -> true
         | _ -> false)
       (Monitor.violations m))

let test_heap_aba_cas () =
  (* The heap's plain CAS compares bits, so an ABA scenario succeeds (and
     is flagged); the identity CAS refuses. *)
  let h, m = heap_with () in
  let anchor = Heap.alloc_sentinel h ~tid:0 ~key:0 in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  Heap.write_checked h ~tid:0 ~via:anchor ~field:0 a;
  Heap.retire h ~tid:0 a;
  Heap.reclaim h ~tid:0 a;
  let b = Heap.alloc h ~tid:0 ~key:9 in
  Alcotest.(check int) "same address" (Word.addr_exn a) (Word.addr_exn b);
  Heap.write_checked h ~tid:0 ~via:anchor ~field:0 b;
  (* CAS with the stale expected pointer: bits match (ABA). *)
  let ok =
    Heap.cas_checked h ~tid:0 ~via:anchor ~field:0 ~expected:a ~desired:Word.Null
  in
  Alcotest.(check bool) "bit CAS suffers ABA" true ok;
  Heap.write_checked h ~tid:0 ~via:anchor ~field:0 b;
  let ok2 =
    Heap.cas_identity h ~tid:0 ~via:anchor ~field:0 ~expected:a
      ~desired:Word.Null
  in
  Alcotest.(check bool) "identity CAS immune to ABA" false ok2;
  Alcotest.(check int) "no spurious violations" 0 (Monitor.violation_count m)

let test_heap_system_space () =
  let config = { Heap.default_config with Heap.space = Heap.Return_to_system } in
  let h, m = heap_with ~config () in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  Heap.retire h ~tid:0 a;
  Heap.reclaim h ~tid:0 a;
  Alcotest.(check bool) "system classified" true
    (Heap.validity h a = Heap.Invalid_system);
  ignore (Heap.peek h ~tid:0 ~via:a ~field:0);
  Alcotest.(check bool) "segfault even on peek" true
    (List.exists
       (function
         | Event.Violation { kind = Event.System_space_access; _ } -> true
         | _ -> false)
       (Monitor.violations m));
  (* System cells are never recycled. *)
  let b = Heap.alloc h ~tid:0 ~key:2 in
  Alcotest.(check bool) "no reuse from system space" false
    (Word.addr_exn a = Word.addr_exn b)

let test_heap_capacity () =
  let config = { Heap.default_config with Heap.capacity = Some 4 } in
  let h, _ = heap_with ~config () in
  let ws = List.init 4 (fun k -> Heap.alloc h ~tid:0 ~key:k) in
  Alcotest.check_raises "exhausted" Heap.Heap_exhausted (fun () ->
      ignore (Heap.alloc h ~tid:0 ~key:9));
  (* Reclaiming frees capacity again. *)
  let w = List.hd ws in
  Heap.retire h ~tid:0 w;
  Heap.reclaim h ~tid:0 w;
  ignore (Heap.alloc h ~tid:0 ~key:9)

let test_heap_share_promotion () =
  let h, _ = heap_with () in
  let root = Heap.alloc_sentinel h ~tid:0 ~key:0 in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  Alcotest.(check bool) "local before publish" true
    (match Heap.cell_state h ~addr:(Word.addr_exn a) with
    | Lifecycle.Local _ -> true
    | _ -> false);
  Heap.write_checked h ~tid:0 ~via:root ~field:0 a;
  Alcotest.(check bool) "shared after publish" true
    (Heap.cell_state h ~addr:(Word.addr_exn a) = Lifecycle.Shared);
  Alcotest.(check bool) "entry flag" true
    (Heap.is_entry h ~addr:(Word.addr_exn root));
  Alcotest.(check bool) "non-entry" false
    (Heap.is_entry h ~addr:(Word.addr_exn a))

let heap_counters_prop =
  (* Random alloc/retire/reclaim interleavings keep the monitor counters
     equal to the heap's ground truth. *)
  QCheck2.Test.make ~name:"heap: monitor counters track ground truth"
    ~count:100
    QCheck2.Gen.(list (int_range 0 2))
    (fun moves ->
      let m = Monitor.create ~mode:`Record ~trace:false () in
      let h = Heap.create m in
      let live = ref [] and retired = ref [] in
      let step mv =
        match mv with
        | 0 ->
          let w = Heap.alloc h ~tid:0 ~key:0 in
          live := w :: !live
        | 1 -> (
          match !live with
          | w :: rest ->
            Heap.retire h ~tid:0 w;
            live := rest;
            retired := w :: !retired
          | [] -> ())
        | _ -> (
          match !retired with
          | w :: rest ->
            Heap.reclaim h ~tid:0 w;
            retired := rest
          | [] -> ())
      in
      List.iter step moves;
      Monitor.active m = List.length !live
      && Monitor.retired m = List.length !retired
      && Monitor.violation_count m = 0
      && List.length (Heap.live_nodes h) = List.length !live
      && List.length (Heap.retired_nodes h) = List.length !retired)

let validity_monotone_prop =
  (* Once a pointer goes invalid it never becomes valid again (nodes are
     logical entities: Definition 4.1). *)
  QCheck2.Test.make ~name:"heap: validity is monotone decreasing" ~count:100
    QCheck2.Gen.(list (int_range 0 2))
    (fun moves ->
      let m = Monitor.create ~mode:`Record ~trace:false () in
      let h = Heap.create m in
      let w0 = Heap.alloc h ~tid:0 ~key:0 in
      let dead = ref false in
      let ok = ref true in
      let live = ref [ w0 ] and retired = ref [] in
      let step mv =
        (match mv with
        | 0 -> live := Heap.alloc h ~tid:0 ~key:0 :: !live
        | 1 -> (
          match !live with
          | w :: rest ->
            Heap.retire h ~tid:0 w;
            live := rest;
            retired := w :: !retired
          | [] -> ())
        | _ -> (
          match !retired with
          | w :: rest ->
            Heap.reclaim h ~tid:0 w;
            retired := rest
          | [] -> ()));
        let valid = Heap.is_valid h w0 in
        if !dead && valid then ok := false;
        if not valid then dead := true
      in
      List.iter step moves;
      !ok)

(* ------------------------------------------------------------------ *)
(* Monitor                                                             *)
(* ------------------------------------------------------------------ *)

let test_monitor_raise_mode () =
  let m = Monitor.create ~mode:`Raise () in
  let h = Heap.create m in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  Heap.retire h ~tid:0 a;
  Heap.reclaim h ~tid:0 a;
  Alcotest.(check bool) "raises on violation" true
    (match Heap.read_checked h ~tid:0 ~via:a ~field:0 with
    | _ -> false
    | exception Monitor.Violation _ -> true)

let test_monitor_samples () =
  let m = mon () in
  let h = Heap.create m in
  let a = Heap.alloc h ~tid:0 ~key:1 in
  let b = Heap.alloc h ~tid:0 ~key:2 in
  Heap.retire h ~tid:0 a;
  Heap.retire h ~tid:0 b;
  Alcotest.(check int) "max_active" 2 (Monitor.max_active m);
  Alcotest.(check int) "max_retired" 2 (Monitor.max_retired m);
  let samples = Monitor.samples m in
  Alcotest.(check int) "one sample per count change" 4 (List.length samples);
  let last = List.nth samples 3 in
  Alcotest.(check int) "final retired" 2 last.Monitor.retired;
  Alcotest.(check int) "final active" 0 last.Monitor.active

let test_monitor_subscribe () =
  let m = mon () in
  let seen = ref 0 in
  Monitor.subscribe m (fun _ _ -> incr seen);
  Monitor.emit m (Event.Note "a");
  Monitor.emit m (Event.Note "b");
  Alcotest.(check int) "hook called" 2 !seen;
  Alcotest.(check int) "time advanced" 2 (Monitor.time m)

(* Regression: a hook that unsubscribes (itself or a later hook) while a
   dispatch is in flight must not disturb that dispatch — hooks run over
   a stable snapshot, and the removal takes effect from the next
   event. Previously this mutated the hook table mid-iteration. *)
let test_monitor_unsubscribe_during_emit () =
  let m = mon () in
  let a_seen = ref 0 and b_seen = ref 0 in
  let rec a _ _ =
    incr a_seen;
    (* During dispatch, remove both the later hook and ourselves. *)
    Monitor.unsubscribe m b;
    Monitor.unsubscribe m a
  and b _ _ = incr b_seen in
  Monitor.subscribe m a;
  Monitor.subscribe m b;
  Monitor.emit m (Event.Note "during");
  Alcotest.(check int) "a ran" 1 !a_seen;
  Alcotest.(check int) "b still ran (stable snapshot)" 1 !b_seen;
  Monitor.emit m (Event.Note "after");
  Alcotest.(check int) "a detached from next event" 1 !a_seen;
  Alcotest.(check int) "b detached from next event" 1 !b_seen;
  (* Resubscribing after a mid-dispatch unsubscribe works normally. *)
  Monitor.subscribe m b;
  Monitor.emit m (Event.Note "again");
  Alcotest.(check int) "b resubscribed" 2 !b_seen

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "era_sim"
    [
      ( "word",
        [
          Alcotest.test_case "basics" `Quick test_word_basics;
          Alcotest.test_case "bit-pattern equality" `Quick test_word_bits;
          Alcotest.test_case "taint" `Quick test_word_taint;
          Alcotest.test_case "exceptions" `Quick test_word_exn;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "legal transitions" `Quick test_lifecycle_legal;
          Alcotest.test_case "illegal transitions" `Quick
            test_lifecycle_illegal;
        ] );
      qsuite "lifecycle-props" [ lifecycle_prop ];
      ( "rng-vec",
        [
          Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
          Alcotest.test_case "vec find_last" `Quick test_vec_find_last;
        ] );
      qsuite "rng-vec-props" [ rng_bounds_prop; vec_model_prop ];
      ( "heap",
        [
          Alcotest.test_case "alloc/retire/reclaim" `Quick
            test_heap_alloc_retire_reclaim;
          Alcotest.test_case "node identity on reuse" `Quick
            test_heap_node_identity_on_reuse;
          Alcotest.test_case "double free" `Quick test_heap_double_free;
          Alcotest.test_case "unsafe read taints" `Quick
            test_heap_unsafe_read_taints;
          Alcotest.test_case "unsafe write" `Quick test_heap_unsafe_write;
          Alcotest.test_case "ABA: bit CAS vs identity CAS" `Quick
            test_heap_aba_cas;
          Alcotest.test_case "system space" `Quick test_heap_system_space;
          Alcotest.test_case "capacity" `Quick test_heap_capacity;
          Alcotest.test_case "share promotion" `Quick
            test_heap_share_promotion;
        ] );
      qsuite "heap-props" [ heap_counters_prop; validity_monotone_prop ];
      ( "monitor",
        [
          Alcotest.test_case "raise mode" `Quick test_monitor_raise_mode;
          Alcotest.test_case "samples" `Quick test_monitor_samples;
          Alcotest.test_case "subscribe" `Quick test_monitor_subscribe;
          Alcotest.test_case "unsubscribe during emit" `Quick
            test_monitor_unsubscribe_during_emit;
        ] );
    ]

(* Tests for the observability layer (lib/metrics): the JSON codec, the
   shared CLI parser, the bench_compare gate logic, and the reclamation
   statistics invariants of the native throughput harness. *)

module Json = Era_metrics.Json
module M = Era_metrics.Metrics
module Rc = Era_metrics.Run_config
module D = Era_metrics.Bench_diff

(* ------------------------------------------------------------------ *)
(* JSON emitter / parser                                               *)
(* ------------------------------------------------------------------ *)

let roundtrip v =
  match Json.of_string (Json.to_string v) with
  | Ok v' -> v'
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_scalars () =
  List.iter
    (fun v -> Alcotest.(check bool) "roundtrip" true (roundtrip v = v))
    [
      Json.Null; Json.Bool true; Json.Bool false; Json.Int 0;
      Json.Int (-42); Json.Int max_int; Json.Float 0.125;
      Json.Float 3.141592653589793; Json.Float (-1e-9);
      Json.String ""; Json.String "plain";
      Json.String "esc \"quotes\" \\ and \n\t\r control \001 bytes";
      Json.List []; Json.Obj [];
    ]

let test_json_nested () =
  let v =
    Json.Obj
      [
        ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null ]);
        ("b", Json.Obj [ ("nested", Json.List [ Json.Obj [] ]) ]);
        ("unicode", Json.String "caf\xc3\xa9");
      ]
  in
  Alcotest.(check bool) "nested roundtrip" true (roundtrip v = v);
  (* minified form parses to the same value *)
  match Json.of_string (Json.to_string ~minify:true v) with
  | Ok v' -> Alcotest.(check bool) "minified roundtrip" true (v' = v)
  | Error msg -> Alcotest.failf "minified parse failed: %s" msg

let test_json_unicode_escape () =
  match Json.of_string {|"aéb😀c"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "utf8 decode" "a\xc3\xa9b\xf0\x9f\x98\x80c" s
  | Ok _ -> Alcotest.fail "expected string"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{1: 2}" ]

(* ------------------------------------------------------------------ *)
(* Row / report codec                                                  *)
(* ------------------------------------------------------------------ *)

let sample_row =
  M.row ~experiment:"E8" ~label:"harris+ebr/churn" ~category:"native-throughput"
    ~scheme:"ebr" ~structure:"harris-list" ~domains:2 ~total_ops:400_000
    ~elapsed_s:0.112 ~mops:3.571428 ~max_backlog:3898 ~reclaimed:49661
    ~retired:53559 ~scans:17 ~note:"smoke"
    ~extra:[ ("contains_pct", 0.); ("key_range", 64.) ]
    ()

let test_row_roundtrip () =
  match M.row_of_json (M.row_to_json sample_row) with
  | Ok r -> Alcotest.(check bool) "row roundtrip" true (r = sample_row)
  | Error msg -> Alcotest.failf "row decode failed: %s" msg

let test_row_text_roundtrip () =
  (* Through the actual serialized text, not just the Json.t tree. *)
  match Json.of_string (Json.to_string (M.row_to_json sample_row)) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok j -> (
    match M.row_of_json j with
    | Ok r -> Alcotest.(check bool) "text roundtrip" true (r = sample_row)
    | Error msg -> Alcotest.failf "row decode failed: %s" msg)

let test_report_file_roundtrip () =
  let report =
    {
      M.manifest = M.manifest ~argv:[ "test" ] ~mode:"quick" ();
      rows = [ sample_row; M.row ~experiment:"E9" ~label:"stall/ebr" () ];
    }
  in
  let path = Filename.temp_file "era_metrics" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      M.write path report;
      match M.load path with
      | Ok r -> Alcotest.(check bool) "file roundtrip" true (r = report)
      | Error msg -> Alcotest.failf "load failed: %s" msg)

let test_row_decode_rejects_missing_field () =
  let j =
    match M.row_to_json sample_row with
    | Json.Obj fields ->
      Json.Obj (List.filter (fun (k, _) -> k <> "mops") fields)
    | _ -> assert false
  in
  match M.row_of_json j with
  | Ok _ -> Alcotest.fail "expected decode error on missing mops"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Run_config (the shared Arg parser)                                  *)
(* ------------------------------------------------------------------ *)

let parse_ok argv =
  match Rc.parse_result ~argv ~prog:"test" ~commands:[ "native"; "all" ] () with
  | Ok t -> t
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_cli_flags () =
  let t =
    parse_ok
      [|
        "bench"; "--quick"; "--json"; "out.json"; "--only"; "E1,E8b";
        "--schemes"; "ebr,ibr"; "--domains"; "4"; "--ops"; "1000";
      |]
  in
  Alcotest.(check bool) "quick" true t.Rc.quick;
  Alcotest.(check (option string)) "json" (Some "out.json") t.Rc.json;
  Alcotest.(check (list string)) "only" [ "E1"; "E8b" ] t.Rc.only;
  Alcotest.(check (list string)) "schemes" [ "ebr"; "ibr" ] t.Rc.schemes;
  Alcotest.(check (option int)) "domains" (Some 4) t.Rc.domains;
  Alcotest.(check (option int)) "ops" (Some 1000) t.Rc.ops;
  Alcotest.(check bool) "selects e8b" true (Rc.selects_experiment t "e8b");
  Alcotest.(check bool) "not e9" false (Rc.selects_experiment t "E9");
  Alcotest.(check bool) "selects ebr" true (Rc.selects_scheme t "EBR");
  Alcotest.(check bool) "not hp" false (Rc.selects_scheme t "hp")

let test_cli_positional_quick_compat () =
  (* The historical `bench/main.exe quick` spelling still works. *)
  let t = parse_ok [| "bench"; "quick" |] in
  Alcotest.(check bool) "compat quick" true t.Rc.quick;
  Alcotest.(check string) "mode" "quick" (Rc.mode t);
  let t = parse_ok [| "bench" |] in
  Alcotest.(check bool) "no quick" false t.Rc.quick;
  Alcotest.(check string) "mode full" "full" (Rc.mode t)

let test_cli_commands () =
  let t = parse_ok [| "era_cli"; "native"; "--ops"; "5" |] in
  Alcotest.(check (option string)) "command" (Some "native") t.Rc.command;
  Alcotest.(check int) "ops default" 5 (Rc.ops_or t 100);
  Alcotest.(check int) "domains default" 2 (Rc.domains_or t 2);
  (match
     Rc.parse_result ~argv:[| "era_cli"; "bogus" |] ~prog:"test"
       ~commands:[ "native" ] ()
   with
  | Ok _ -> Alcotest.fail "unknown command accepted"
  | Error _ -> ());
  match
    Rc.parse_result ~argv:[| "era_cli"; "native"; "all" |] ~prog:"test"
      ~commands:[ "native"; "all" ] ()
  with
  | Ok _ -> Alcotest.fail "two commands accepted"
  | Error _ -> ()

let test_cli_default_json_path () =
  let t = parse_ok [| "bench" |] in
  let path = Rc.default_json_path ~clock:(fun () -> 0.) t in
  Alcotest.(check string) "bench/ directory" "bench"
    (Filename.dirname path);
  Alcotest.(check bool) "BENCH_ prefix" true
    (String.length (Filename.basename path) > 6
    && String.sub (Filename.basename path) 0 6 = "BENCH_");
  Alcotest.(check bool) ".json suffix" true
    (Filename.check_suffix path ".json");
  let t = parse_ok [| "bench"; "--json"; "x.json" |] in
  Alcotest.(check string) "explicit" "x.json"
    (Rc.default_json_path ~clock:(fun () -> 0.) t)

(* ------------------------------------------------------------------ *)
(* bench_compare gate logic                                            *)
(* ------------------------------------------------------------------ *)

let report_of rows = { M.manifest = M.manifest ~argv:[] ~mode:"quick" (); rows }

let tput ?(mops = 4.0) ?(max_backlog = 100) label =
  M.row ~experiment:"E8" ~label ~category:"native-throughput" ~scheme:"ebr"
    ~structure:"michael-list" ~domains:2 ~total_ops:100_000 ~elapsed_s:0.025
    ~mops ~max_backlog ~reclaimed:40_000 ~retired:41_000 ~scans:12 ()

let test_diff_identical_pair_passes () =
  let r = report_of [ tput "a"; tput "b"; M.row ~experiment:"E1" ~label:"x" () ] in
  let v = D.diff ~old_report:r ~new_report:r () in
  Alcotest.(check bool) "ok" true (D.ok v);
  Alcotest.(check int) "compared" 3 v.D.compared;
  Alcotest.(check int) "no regressions" 0 (List.length v.D.regressions);
  Alcotest.(check int) "no blowups" 0 (List.length v.D.blowups);
  Alcotest.(check int) "no missing" 0 (List.length v.D.missing)

let test_diff_flags_50pct_regression () =
  let old_r = report_of [ tput "a"; tput ~mops:8.0 "b" ] in
  let new_r = report_of [ tput "a"; tput ~mops:4.0 "b" ] in
  let v = D.diff ~old_report:old_r ~new_report:new_r () in
  Alcotest.(check bool) "fails" false (D.ok v);
  (match v.D.regressions with
  | [ c ] ->
    Alcotest.(check string) "key" "E8/b" c.D.key;
    Alcotest.(check (float 0.01)) "delta" (-50.) c.D.delta_pct
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* The same pair within a 60% tolerance passes. *)
  let v' =
    D.diff ~max_regression_pct:60. ~old_report:old_r ~new_report:new_r ()
  in
  Alcotest.(check bool) "lenient ok" true (D.ok v')

let test_diff_flags_backlog_blowup () =
  let old_r = report_of [ tput ~max_backlog:1_000 "a" ] in
  let new_r = report_of [ tput ~max_backlog:10_000 "a" ] in
  let v = D.diff ~old_report:old_r ~new_report:new_r () in
  Alcotest.(check bool) "fails" false (D.ok v);
  Alcotest.(check int) "one blowup" 1 (List.length v.D.blowups);
  (* Additive slack: a bounded scheme growing 60 -> 200 is fine. *)
  let v' =
    D.diff
      ~old_report:(report_of [ tput ~max_backlog:60 "a" ])
      ~new_report:(report_of [ tput ~max_backlog:200 "a" ])
      ()
  in
  Alcotest.(check bool) "within slack" true (D.ok v')

let test_diff_flags_missing_row () =
  let old_r = report_of [ tput "a"; tput "b" ] in
  let new_r = report_of [ tput "a"; tput "c" ] in
  let v = D.diff ~old_report:old_r ~new_report:new_r () in
  Alcotest.(check bool) "fails" false (D.ok v);
  Alcotest.(check (list string)) "missing" [ "E8/b" ] v.D.missing;
  Alcotest.(check (list string)) "added" [ "E8/c" ] v.D.added

let suite ?(elapsed_s = 1.0) experiment =
  M.row ~experiment ~label:"suite" ~category:"suite-timing" ~elapsed_s ()

let test_diff_flags_suite_slowdown () =
  let old_r = report_of [ suite "E1"; suite ~elapsed_s:0.4 "E3" ] in
  let new_r = report_of [ suite ~elapsed_s:2.5 "E1"; suite ~elapsed_s:0.4 "E3" ] in
  let v = D.diff ~old_report:old_r ~new_report:new_r () in
  Alcotest.(check bool) "fails" false (D.ok v);
  (match v.D.slowdowns with
  | [ s ] ->
    Alcotest.(check string) "key" "E1/suite" s.D.key;
    Alcotest.(check (float 0.001)) "new elapsed" 2.5 s.D.new_elapsed_s
  | l -> Alcotest.failf "expected 1 slowdown, got %d" (List.length l));
  (* The same pair passes with a 200% tolerance. *)
  let v' =
    D.diff ~max_suite_regression_pct:200. ~old_report:old_r ~new_report:new_r
      ()
  in
  Alcotest.(check bool) "lenient ok" true (D.ok v');
  (* Additive slack absorbs jitter on near-instant experiments. *)
  let v'' =
    D.diff
      ~old_report:(report_of [ suite ~elapsed_s:0.001 "E5" ])
      ~new_report:(report_of [ suite ~elapsed_s:0.04 "E5" ])
      ()
  in
  Alcotest.(check bool) "within slack" true (D.ok v'')

let test_diff_ignores_simulated_timing () =
  (* Simulated rows carry no gated mops/backlog signal. *)
  let mk mops =
    report_of
      [ M.row ~experiment:"E1" ~label:"x" ~mops ~max_backlog:(int_of_float mops) () ]
  in
  let v = D.diff ~old_report:(mk 100.) ~new_report:(mk 1.) () in
  Alcotest.(check bool) "ok" true (D.ok v)

(* ------------------------------------------------------------------ *)
(* Native stats invariants                                             *)
(* ------------------------------------------------------------------ *)

open Era_native

let check_stats_invariants name (s : Nsmr.stats) =
  Alcotest.(check bool) (name ^ ": retired >= 0") true (s.Nsmr.retired >= 0);
  Alcotest.(check bool)
    (name ^ ": reclaimed <= retired")
    true
    (s.Nsmr.reclaimed <= s.Nsmr.retired);
  Alcotest.(check bool)
    (name ^ ": backlog = retired - reclaimed")
    true
    (s.Nsmr.backlog = s.Nsmr.retired - s.Nsmr.reclaimed);
  Alcotest.(check bool)
    (name ^ ": max_backlog >= 0")
    true (s.Nsmr.max_backlog >= 0)

let test_stats_monotone_single_domain () =
  (* Churn a Michael+EBR list in batches; between batches the counters
     are quiescent, so the invariants must hold and max_backlog and
     retired must be monotone in the batch index. *)
  let module L = N_michael.Make (N_ebr) in
  let g = N_ebr.create ~ndomains:1 in
  let s = N_ebr.thread g 0 in
  let l = L.create () in
  let prev = ref (N_ebr.stats g) in
  for batch = 1 to 20 do
    for k = 1 to 100 do
      ignore (L.insert l s (k mod 17));
      ignore (L.delete l s (k mod 17))
    done;
    let st = N_ebr.stats g in
    check_stats_invariants (Printf.sprintf "batch %d" batch) st;
    Alcotest.(check bool) "max_backlog monotone" true
      (st.Nsmr.max_backlog >= !prev.Nsmr.max_backlog);
    Alcotest.(check bool) "retired monotone" true
      (st.Nsmr.retired >= !prev.Nsmr.retired);
    Alcotest.(check bool) "reclaimed monotone" true
      (st.Nsmr.reclaimed >= !prev.Nsmr.reclaimed);
    prev := st
  done;
  Alcotest.(check bool) "something was retired" true
    (!prev.Nsmr.retired > 0);
  Alcotest.(check bool) "ebr scans counted" true (!prev.Nsmr.scans > 0)

let test_throughput_row_invariants_2domain () =
  (* A real 2-domain run through the harness: the row's counters must
     satisfy reclaimed <= retired and max_backlog <= retired, for every
     scheme. *)
  List.iter
    (fun scheme ->
      let r =
        Throughput.stack_row ~scheme ~domains:2 ~ops_per_domain:20_000 ()
      in
      let name = "stack/" ^ r.Throughput.scheme in
      Alcotest.(check bool) (name ^ ": retired > 0") true
        (r.Throughput.retired > 0);
      Alcotest.(check bool)
        (name ^ ": reclaimed <= retired")
        true
        (r.Throughput.reclaimed <= r.Throughput.retired);
      Alcotest.(check bool)
        (name ^ ": max_backlog <= retired")
        true
        (r.Throughput.max_backlog <= r.Throughput.retired);
      Alcotest.(check bool) (name ^ ": elapsed > 0") true
        (r.Throughput.elapsed_s > 0.);
      Alcotest.(check int) (name ^ ": total ops") 40_000
        r.Throughput.total_ops)
    [ `Ebr; `Hp; `Ibr ]

let test_e8_row_carries_stats () =
  let r =
    Throughput.e8_row Throughput.Michael ~scheme:`Hp Throughput.Churn
      ~domains:2 ~ops_per_domain:20_000
  in
  Alcotest.(check string) "scheme" "hp" r.Throughput.scheme;
  Alcotest.(check string) "structure" "michael-list" r.Throughput.structure;
  Alcotest.(check bool) "hp scans happened" true (r.Throughput.scans > 0);
  Alcotest.(check bool) "reclaimed <= retired" true
    (r.Throughput.reclaimed <= r.Throughput.retired);
  let row =
    Throughput.to_row ~experiment:"E8" ~category:"native-throughput" r
  in
  Alcotest.(check string) "row key" "E8/michael+hp/churn@2d" (M.key row);
  Alcotest.(check int) "row retired" r.Throughput.retired row.M.retired;
  (* The domain count is part of the key: the E8 grid measures the same
     pairing at several counts and they must not collide in the diff. *)
  let r1 =
    Throughput.e8_row Throughput.Michael ~scheme:`Hp Throughput.Churn
      ~domains:1 ~ops_per_domain:1_000
  in
  let row1 =
    Throughput.to_row ~experiment:"E8" ~category:"native-throughput" r1
  in
  Alcotest.(check bool) "domain count disambiguates keys" true
    (M.key row1 <> M.key row)

let () =
  Alcotest.run "era_metrics"
    [
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "nested" `Quick test_json_nested;
          Alcotest.test_case "unicode escapes" `Quick
            test_json_unicode_escape;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "rows",
        [
          Alcotest.test_case "row roundtrip" `Quick test_row_roundtrip;
          Alcotest.test_case "row text roundtrip" `Quick
            test_row_text_roundtrip;
          Alcotest.test_case "report file roundtrip" `Quick
            test_report_file_roundtrip;
          Alcotest.test_case "missing field rejected" `Quick
            test_row_decode_rejects_missing_field;
        ] );
      ( "cli",
        [
          Alcotest.test_case "flags" `Quick test_cli_flags;
          Alcotest.test_case "positional quick" `Quick
            test_cli_positional_quick_compat;
          Alcotest.test_case "commands" `Quick test_cli_commands;
          Alcotest.test_case "default json path" `Quick
            test_cli_default_json_path;
        ] );
      ( "bench_compare",
        [
          Alcotest.test_case "identical pair passes" `Quick
            test_diff_identical_pair_passes;
          Alcotest.test_case "50% regression flagged" `Quick
            test_diff_flags_50pct_regression;
          Alcotest.test_case "backlog blowup flagged" `Quick
            test_diff_flags_backlog_blowup;
          Alcotest.test_case "missing row flagged" `Quick
            test_diff_flags_missing_row;
          Alcotest.test_case "suite slowdown flagged" `Quick
            test_diff_flags_suite_slowdown;
          Alcotest.test_case "simulated rows not gated" `Quick
            test_diff_ignores_simulated_timing;
        ] );
      ( "native_stats",
        [
          Alcotest.test_case "monotone counters" `Quick
            test_stats_monotone_single_domain;
          Alcotest.test_case "2-domain row invariants" `Slow
            test_throughput_row_invariants_2domain;
          Alcotest.test_case "e8 row stats" `Slow test_e8_row_carries_stats;
        ] );
    ]

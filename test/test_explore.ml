(* Systematic schedule explorer (lib/explore): determinism, rediscovery
   of the paper's Figure 1/Figure 2 executions with zero scripting,
   shrinker soundness, and counterexample round-tripping. *)

module Ex = Era_explore.Explore
module App = Era.Applicability

let scheme name =
  match Era_smr.Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scheme %s" name

(* Small budget: every rediscovery below lands within ~100 runs. *)
let small = { Ex.default_config with Ex.max_runs = 2_000 }

let explore ?ops_per_thread ?robustness_bound name =
  App.explore ~config:small ?ops_per_thread ?robustness_bound (scheme name)
    App.Harris

let kind_of (r : Ex.search_result) =
  Option.map (fun c -> c.Ex.c_violation.Ex.v_kind) r.Ex.res_cex

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_deterministic () =
  let a = explore "hp" and b = explore "hp" in
  Alcotest.(check int) "runs" a.Ex.res_stats.Ex.runs b.Ex.res_stats.Ex.runs;
  Alcotest.(check int) "states" a.Ex.res_stats.Ex.states
    b.Ex.res_stats.Ex.states;
  let steps r =
    match r.Ex.res_cex with
    | Some c -> c.Ex.c_steps
    | None -> Alcotest.fail "expected a counterexample"
  in
  Alcotest.(check (list int)) "identical shrunk schedule" (steps a) (steps b)

(* ------------------------------------------------------------------ *)
(* E2 rediscovery: the Figure 2 refutations, found not scripted         *)
(* ------------------------------------------------------------------ *)

let test_rediscovers_figure2 () =
  List.iter
    (fun name ->
      let r = explore name in
      (match r.Ex.res_cex with
      | None -> Alcotest.failf "%s: no violation found" name
      | Some c ->
        Alcotest.(check bool)
          (name ^ " found within one preemption")
          true
          (c.Ex.c_preemptions <= 1);
        Alcotest.(check bool)
          (name ^ " shrunk script is short")
          true
          (List.length c.Ex.c_script <= 5));
      Alcotest.(check bool)
        (name ^ " is a safety violation")
        true
        (kind_of r <> Some Era_sim.Event.Robustness_exceeded))
    [ "hp"; "he"; "ibr" ]

(* EBR has no Figure 2 safety bug: the same search comes back empty. *)
let test_ebr_safe () =
  let r = explore "ebr" in
  Alcotest.(check bool) "ebr: no safety counterexample" true
    (r.Ex.res_cex = None)

(* ------------------------------------------------------------------ *)
(* E1 rediscovery: the Figure 1 dichotomy                              *)
(* ------------------------------------------------------------------ *)

let test_rediscovers_figure1_dichotomy () =
  (* Same workload, same backlog bound: EBR trips the robustness horn,
     HP the safety horn — Theorem 6.1's "pick your poison". *)
  let ebr = explore ~ops_per_thread:60 ~robustness_bound:24 "ebr" in
  Alcotest.(check bool) "ebr exceeds the robustness bound" true
    (kind_of ebr = Some Era_sim.Event.Robustness_exceeded);
  let hp = explore ~ops_per_thread:60 ~robustness_bound:24 "hp" in
  (match kind_of hp with
  | None -> Alcotest.fail "hp: no violation found"
  | Some Era_sim.Event.Robustness_exceeded ->
    Alcotest.fail "hp: robustness tripped before the safety violation"
  | Some _ -> ())

(* ------------------------------------------------------------------ *)
(* Shrinking and replay                                                *)
(* ------------------------------------------------------------------ *)

let cex_and_target name =
  let target = App.explore_target (scheme name) App.Harris in
  match (Ex.explore ~config:small target).Ex.res_cex with
  | Some c -> (c, target)
  | None -> Alcotest.failf "%s: no counterexample" name

let test_shrunk_still_violates () =
  let c, target = cex_and_target "hp" in
  let r = Ex.replay target c in
  match r.Ex.rp_violation with
  | Some v ->
    Alcotest.(check bool) "same violation kind" true
      (v.Ex.v_kind = c.Ex.c_violation.Ex.v_kind)
  | None -> Alcotest.fail "shrunk schedule no longer violates"

let test_replay_trace_identical () =
  let c, target = cex_and_target "hp" in
  let a = Ex.replay ~trace:true target c in
  let b = Ex.replay ~trace:true target c in
  Alcotest.(check bool) "trace is non-trivial" true
    (List.length a.Ex.rp_trace > 10);
  Alcotest.(check bool) "two replays emit the identical event trace" true
    (a.Ex.rp_trace = b.Ex.rp_trace)

let test_json_roundtrip () =
  let c, _ = cex_and_target "ibr" in
  match Ex.counterexample_of_json (Ex.counterexample_to_json c) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok c' ->
    Alcotest.(check string) "target" c.Ex.c_target c'.Ex.c_target;
    Alcotest.(check (list int)) "steps" c.Ex.c_steps c'.Ex.c_steps;
    Alcotest.(check bool) "violation" true
      (c.Ex.c_violation = c'.Ex.c_violation);
    Alcotest.(check bool) "params" true (c.Ex.c_params = c'.Ex.c_params)

let test_save_load_replay () =
  let c, _ = cex_and_target "hp" in
  let file = Filename.temp_file "counterexample" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Ex.save ~file c;
      match Ex.load ~file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok c' -> (
        (* The CLI replay path: rebuild the target from the JSON alone. *)
        match App.target_of_counterexample c' with
        | Error e -> Alcotest.failf "target rebuild failed: %s" e
        | Ok target -> (
          match (Ex.replay target c').Ex.rp_violation with
          | Some v ->
            Alcotest.(check bool) "reproduced" true
              (v.Ex.v_kind = c.Ex.c_violation.Ex.v_kind)
          | None -> Alcotest.fail "saved counterexample did not reproduce")))

(* ------------------------------------------------------------------ *)
(* Schedule bookkeeping                                                *)
(* ------------------------------------------------------------------ *)

let test_preemption_count () =
  (* First choice and post-exit switches are free; only a switch away
     from a thread that still runs later is a preemption. *)
  Alcotest.(check int) "solo" 0 (Ex.preemptions_of_steps [ 0; 0; 0 ]);
  Alcotest.(check int) "handoff at exit" 0
    (Ex.preemptions_of_steps [ 0; 0; 1; 1 ]);
  Alcotest.(check int) "one preemption" 1
    (Ex.preemptions_of_steps [ 0; 1; 0 ]);
  Alcotest.(check int) "two preemptions" 2
    (Ex.preemptions_of_steps [ 0; 1; 0; 1 ])

let () =
  Alcotest.run "explore"
    [
      ( "explorer",
        [
          Alcotest.test_case "deterministic search" `Quick test_deterministic;
          Alcotest.test_case "rediscovers Figure 2 (hp/he/ibr)" `Quick
            test_rediscovers_figure2;
          Alcotest.test_case "ebr safe under same search" `Quick test_ebr_safe;
          Alcotest.test_case "rediscovers Figure 1 dichotomy" `Quick
            test_rediscovers_figure1_dichotomy;
        ] );
      ( "shrink-replay",
        [
          Alcotest.test_case "shrunk schedule still violates" `Quick
            test_shrunk_still_violates;
          Alcotest.test_case "replay trace is identical" `Quick
            test_replay_trace_identical;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "save/load/replay round trip" `Quick
            test_save_load_replay;
          Alcotest.test_case "preemption counting" `Quick
            test_preemption_count;
        ] );
    ]

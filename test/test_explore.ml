(* Systematic schedule explorer (lib/explore): determinism, rediscovery
   of the paper's Figure 1/Figure 2 executions with zero scripting,
   shrinker soundness, and counterexample round-tripping. *)

module Ex = Era_explore.Explore
module App = Era.Applicability

let scheme name =
  match Era_smr.Registry.find name with
  | Some s -> s
  | None -> Alcotest.failf "unknown scheme %s" name

(* Small budget: every rediscovery below lands within ~100 runs. *)
let small = { Ex.default_config with Ex.max_runs = 2_000 }

let explore ?ops_per_thread ?robustness_bound name =
  App.explore ~config:small ?ops_per_thread ?robustness_bound (scheme name)
    App.Harris

let kind_of (r : Ex.search_result) =
  Option.map (fun c -> c.Ex.c_violation.Ex.v_kind) r.Ex.res_cex

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_deterministic () =
  let a = explore "hp" and b = explore "hp" in
  Alcotest.(check int) "runs" a.Ex.res_stats.Ex.runs b.Ex.res_stats.Ex.runs;
  Alcotest.(check int) "states" a.Ex.res_stats.Ex.states
    b.Ex.res_stats.Ex.states;
  let steps r =
    match r.Ex.res_cex with
    | Some c -> c.Ex.c_steps
    | None -> Alcotest.fail "expected a counterexample"
  in
  Alcotest.(check (list int)) "identical shrunk schedule" (steps a) (steps b)

(* ------------------------------------------------------------------ *)
(* E2 rediscovery: the Figure 2 refutations, found not scripted         *)
(* ------------------------------------------------------------------ *)

let test_rediscovers_figure2 () =
  List.iter
    (fun name ->
      let r = explore name in
      (match r.Ex.res_cex with
      | None -> Alcotest.failf "%s: no violation found" name
      | Some c ->
        Alcotest.(check bool)
          (name ^ " found within one preemption")
          true
          (c.Ex.c_preemptions <= 1);
        Alcotest.(check bool)
          (name ^ " shrunk script is short")
          true
          (List.length c.Ex.c_script <= 5));
      Alcotest.(check bool)
        (name ^ " is a safety violation")
        true
        (kind_of r <> Some Era_sim.Event.Robustness_exceeded))
    [ "hp"; "he"; "ibr" ]

(* EBR has no Figure 2 safety bug: the same search comes back empty. *)
let test_ebr_safe () =
  let r = explore "ebr" in
  Alcotest.(check bool) "ebr: no safety counterexample" true
    (r.Ex.res_cex = None)

(* DEBRA+'s failure mode is correctness, not memory safety. With
   [lincheck] on, the explorer finds a non-linearizable history within
   one preemption: a neutralization restart fires past a delete's
   marking CAS, so the re-run delete answers [false] for a key the
   operation already removed. With [lincheck] off the very same search
   finds nothing and completes preemption levels — a bounded
   "no safety violation within k preemptions" certificate, the other
   half of the scheme's ERA profile (safe and robust, not widely
   applicable). *)
let test_debra_lincheck_finds_failure () =
  let r =
    Ex.explore ~config:small
      (App.explore_target ~lincheck:true (scheme "debra") App.Michael)
  in
  match r.Ex.res_cex with
  | None -> Alcotest.fail "debra: no lincheck counterexample"
  | Some c ->
    Alcotest.(check bool) "linearizability failure" true
      (c.Ex.c_violation.Ex.v_kind = Era_sim.Event.Linearizability_failure);
    Alcotest.(check bool) "found within one preemption" true
      (c.Ex.c_preemptions <= 1)

let test_debra_safety_certificate () =
  let r =
    Ex.explore ~config:small (App.explore_target (scheme "debra") App.Michael)
  in
  Alcotest.(check bool) "debra: no safety counterexample" true
    (r.Ex.res_cex = None);
  Alcotest.(check bool) "certificate covers at least one preemption level"
    true
    (r.Ex.res_stats.Ex.levels_completed >= 1)

(* ------------------------------------------------------------------ *)
(* E1 rediscovery: the Figure 1 dichotomy                              *)
(* ------------------------------------------------------------------ *)

let test_rediscovers_figure1_dichotomy () =
  (* Same workload, same backlog bound: EBR trips the robustness horn,
     HP the safety horn — Theorem 6.1's "pick your poison". *)
  let ebr = explore ~ops_per_thread:60 ~robustness_bound:24 "ebr" in
  Alcotest.(check bool) "ebr exceeds the robustness bound" true
    (kind_of ebr = Some Era_sim.Event.Robustness_exceeded);
  let hp = explore ~ops_per_thread:60 ~robustness_bound:24 "hp" in
  (match kind_of hp with
  | None -> Alcotest.fail "hp: no violation found"
  | Some Era_sim.Event.Robustness_exceeded ->
    Alcotest.fail "hp: robustness tripped before the safety violation"
  | Some _ -> ())

(* ------------------------------------------------------------------ *)
(* Shrinking and replay                                                *)
(* ------------------------------------------------------------------ *)

let cex_and_target name =
  let target = App.explore_target (scheme name) App.Harris in
  match (Ex.explore ~config:small target).Ex.res_cex with
  | Some c -> (c, target)
  | None -> Alcotest.failf "%s: no counterexample" name

let test_shrunk_still_violates () =
  let c, target = cex_and_target "hp" in
  let r = Ex.replay target c in
  match r.Ex.rp_violation with
  | Some v ->
    Alcotest.(check bool) "same violation kind" true
      (v.Ex.v_kind = c.Ex.c_violation.Ex.v_kind)
  | None -> Alcotest.fail "shrunk schedule no longer violates"

let test_replay_trace_identical () =
  let c, target = cex_and_target "hp" in
  let a = Ex.replay ~trace:true target c in
  let b = Ex.replay ~trace:true target c in
  Alcotest.(check bool) "trace is non-trivial" true
    (List.length a.Ex.rp_trace > 10);
  Alcotest.(check bool) "two replays emit the identical event trace" true
    (a.Ex.rp_trace = b.Ex.rp_trace)

let test_json_roundtrip () =
  let c, _ = cex_and_target "ibr" in
  match Ex.counterexample_of_json (Ex.counterexample_to_json c) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok c' ->
    Alcotest.(check string) "target" c.Ex.c_target c'.Ex.c_target;
    Alcotest.(check (list int)) "steps" c.Ex.c_steps c'.Ex.c_steps;
    Alcotest.(check bool) "violation" true
      (c.Ex.c_violation = c'.Ex.c_violation);
    Alcotest.(check bool) "params" true (c.Ex.c_params = c'.Ex.c_params)

let test_save_load_replay () =
  let c, _ = cex_and_target "hp" in
  let file = Filename.temp_file "counterexample" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Ex.save ~file c;
      match Ex.load ~file with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok c' -> (
        (* The CLI replay path: rebuild the target from the JSON alone. *)
        match App.target_of_counterexample c' with
        | Error e -> Alcotest.failf "target rebuild failed: %s" e
        | Ok target -> (
          match (Ex.replay target c').Ex.rp_violation with
          | Some v ->
            Alcotest.(check bool) "reproduced" true
              (v.Ex.v_kind = c.Ex.c_violation.Ex.v_kind)
          | None -> Alcotest.fail "saved counterexample did not reproduce")))

(* ------------------------------------------------------------------ *)
(* Parallel exploration: differential suite                            *)
(* ------------------------------------------------------------------ *)

let with_domains d config = { config with Ex.domains = d }
let with_steal d config = { config with Ex.domains = d; Ex.steal = true }
let with_dpor config = { config with Ex.dpor = true }
let kind_of_cex c = c.Ex.c_violation.Ex.v_kind

(* CI runs the suite twice: with the default domain sweep and with
   ERA_TEST_DOMAINS=2, which pins every multi-domain test to exactly
   that count — 2-domain interleavings get a dedicated pass instead of
   sharing wall clock with the 4-domain sweep. *)
let diff_domain_counts =
  match Sys.getenv_opt "ERA_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n >= 2 -> [ n ]
    | _ -> [ 2; 4 ])
  | None -> [ 2; 4 ]

(* The built-in targets: the Figure 2 safety cells for each unsafe
   scheme, the Figure 1 robustness-dichotomy pair, the stall-fuzz
   workload setting (60 ops/thread, no bound) explored systematically,
   and the DEBRA+ neutralization cells — lincheck targets whose
   violation is a [Linearizability_failure] (a neutralization restart
   firing past a delete's linearization point), found, shrunk and
   replayed through exactly the same machinery as the safety cells. *)
let diff_cells =
  [
    ("figure2/hp", "hp", App.Harris, None, None, false);
    ("figure2/he", "he", App.Harris, None, None, false);
    ("figure2/ibr", "ibr", App.Harris, None, None, false);
    ("figure1/ebr", "ebr", App.Harris, Some 60, Some 24, false);
    ("figure1/hp", "hp", App.Harris, Some 60, Some 24, false);
    ("stall-fuzz/hp", "hp", App.Harris, Some 60, None, false);
    ("neutralize/debra-michael", "debra", App.Michael, None, None, true);
    ("neutralize/debra-hash", "debra", App.Hash_michael, None, None, true);
  ]

let target_of_cell (_, name, structure, ops_per_thread, robustness_bound,
                    lincheck) =
  App.explore_target ?ops_per_thread ?robustness_bound ~lincheck
    (scheme name) structure

(* Parallel explore at 2 and 4 domains must agree with the sequential
   search on the violation kind and the preemption level it is found at
   (the level barrier guarantees minimality), and its shrunk script must
   still violate under sequential replay. Which violating schedule wins
   the race may differ — validity never. *)
let test_differential () =
  List.iter
    (fun ((label, _, _, _, _, _) as cell) ->
      let target = target_of_cell cell in
      let seq = Ex.explore ~config:small target in
      let seq_kind = Option.map kind_of_cex seq.Ex.res_cex in
      Alcotest.(check bool)
        (label ^ " sequential search finds a violation")
        true (seq_kind <> None);
      List.iter
        (fun d ->
          let par = Ex.explore ~config:(with_domains d small) target in
          let par_kind = Option.map kind_of_cex par.Ex.res_cex in
          Alcotest.(check bool)
            (Fmt.str "%s d=%d same violation kind" label d)
            true (par_kind = seq_kind);
          Alcotest.(check (option int))
            (Fmt.str "%s d=%d same found preemption level" label d)
            seq.Ex.res_stats.Ex.cex_preemptions
            par.Ex.res_stats.Ex.cex_preemptions;
          match par.Ex.res_cex with
          | None -> ()
          | Some c -> (
            match (Ex.replay target c).Ex.rp_violation with
            | Some v ->
              Alcotest.(check bool)
                (Fmt.str "%s d=%d shrunk script replays sequentially" label d)
                true
                (v.Ex.v_kind = kind_of_cex c)
            | None ->
              Alcotest.failf "%s d=%d: shrunk script does not replay" label d))
        diff_domain_counts)
    diff_cells

(* DPOR (sequential) must agree with the classic search on every
   built-in cell: same violation kind, same (minimal) preemption level —
   sleep sets only cut schedules that commute with explored ones, so a
   violation findable without them stays findable — and the shrunk
   script must replay. Fewer or equal runs is the whole point. *)
let test_dpor_differential () =
  List.iter
    (fun ((label, _, _, _, _, _) as cell) ->
      let target = target_of_cell cell in
      let seq = Ex.explore ~config:small target in
      let dpor = Ex.explore ~config:(with_dpor small) target in
      Alcotest.(check bool)
        (label ^ " dpor same violation kind")
        true
        (Option.map kind_of_cex dpor.Ex.res_cex
        = Option.map kind_of_cex seq.Ex.res_cex);
      Alcotest.(check (option int))
        (label ^ " dpor same found preemption level")
        seq.Ex.res_stats.Ex.cex_preemptions
        dpor.Ex.res_stats.Ex.cex_preemptions;
      Alcotest.(check bool)
        (label ^ " dpor does not run more")
        true
        (dpor.Ex.res_stats.Ex.runs <= seq.Ex.res_stats.Ex.runs);
      match dpor.Ex.res_cex with
      | None -> ()
      | Some c -> (
        match (Ex.replay target c).Ex.rp_violation with
        | Some v ->
          Alcotest.(check bool)
            (label ^ " dpor shrunk script replays")
            true
            (v.Ex.v_kind = kind_of_cex c)
        | None -> Alcotest.failf "%s: dpor script does not replay" label))
    diff_cells

(* Work stealing has no level barriers, so the found preemption level is
   not compared (not guaranteed minimal) — violation kind and sequential
   replayability still must agree with the sequential search. *)
let test_steal_differential () =
  List.iter
    (fun ((label, _, _, _, _, _) as cell) ->
      let target = target_of_cell cell in
      let seq = Ex.explore ~config:small target in
      let seq_kind = Option.map kind_of_cex seq.Ex.res_cex in
      List.iter
        (fun d ->
          let st = Ex.explore ~config:(with_steal d small) target in
          Alcotest.(check bool)
            (Fmt.str "%s steal d=%d same violation kind" label d)
            true
            (Option.map kind_of_cex st.Ex.res_cex = seq_kind);
          match st.Ex.res_cex with
          | None -> ()
          | Some c -> (
            match (Ex.replay target c).Ex.rp_violation with
            | Some v ->
              Alcotest.(check bool)
                (Fmt.str "%s steal d=%d script replays" label d)
                true
                (v.Ex.v_kind = kind_of_cex c)
            | None ->
              Alcotest.failf "%s steal d=%d: script does not replay" label d))
        diff_domain_counts)
    diff_cells

let test_dpor_deterministic () =
  let target = App.explore_target (scheme "hp") App.Harris in
  let a = Ex.explore ~config:(with_dpor small) target in
  let b = Ex.explore ~config:(with_dpor small) target in
  Alcotest.(check int) "runs" a.Ex.res_stats.Ex.runs b.Ex.res_stats.Ex.runs;
  Alcotest.(check int) "states" a.Ex.res_stats.Ex.states
    b.Ex.res_stats.Ex.states;
  Alcotest.(check int) "sleep cuts" a.Ex.res_stats.Ex.sleep_cuts
    b.Ex.res_stats.Ex.sleep_cuts;
  let steps r = Option.map (fun c -> c.Ex.c_steps) r.Ex.res_cex in
  Alcotest.(check bool) "identical shrunk schedule" true
    (steps a = steps b && steps a <> None)

(* [domains = 1] is the pre-PR sequential DFS, bit for bit. The hp cell's
   run/state counts are pinned as goldens — the simulation is
   deterministic and machine-independent, so any drift here means the
   single-domain search path changed. *)
let test_domains1_bit_identical () =
  let a = explore "hp" in
  let b =
    App.explore ~config:(with_domains 1 small) (scheme "hp") App.Harris
  in
  Alcotest.(check int) "golden run count" 82 a.Ex.res_stats.Ex.runs;
  Alcotest.(check int) "golden state count" 45092 a.Ex.res_stats.Ex.states;
  Alcotest.(check int) "runs" a.Ex.res_stats.Ex.runs b.Ex.res_stats.Ex.runs;
  Alcotest.(check int) "states" a.Ex.res_stats.Ex.states
    b.Ex.res_stats.Ex.states;
  Alcotest.(check int) "domains_used" 1 b.Ex.res_stats.Ex.domains_used;
  let steps r =
    match r.Ex.res_cex with
    | Some c -> c.Ex.c_steps
    | None -> Alcotest.fail "expected a counterexample"
  in
  Alcotest.(check (list int)) "identical shrunk schedule" (steps a) (steps b)

(* ------------------------------------------------------------------ *)
(* QCheck: random small targets, sequential vs parallel                *)
(* ------------------------------------------------------------------ *)

module SI = Era_sets.Set_intf
module Sched = Era_sched.Sched

type qop = I of int | D of int | C of int

let pp_qop = function
  | I k -> Fmt.str "I%d" k
  | D k -> Fmt.str "D%d" k
  | C k -> Fmt.str "C%d" k

let apply_op (ops : SI.ops) = function
  | I k -> ignore (ops.SI.insert k)
  | D k -> ignore (ops.SI.delete k)
  | C k -> ignore (ops.SI.contains k)

(* A target whose two threads run explicit op sequences over a
   one-element list — op sequences (not outcomes) are fixed up front, so
   the choice-point structure is schedule-independent by construction. *)
let op_target ~structure ~scheme_name tid_ops =
  let nthreads = Array.length tid_ops in
  let (module S : Era_smr.Smr_intf.S) = scheme scheme_name in
  let make ~trace strategy =
    let mon = Era_sim.Monitor.create ~mode:`Record ~trace () in
    let heap = Era_sim.Heap.create mon in
    let sched = Sched.create ~nthreads strategy heap in
    let ext = Sched.external_ctx sched ~tid:0 in
    let g = S.create heap ~nthreads in
    let spawn_all ops_of =
      for tid = 0 to nthreads - 1 do
        let mine = tid_ops.(tid) in
        Sched.spawn sched ~tid (fun ctx ->
            let ops = ops_of ctx in
            List.iter (apply_op ops) mine;
            ops.SI.quiesce ())
      done
    in
    (match structure with
    | `Harris ->
      let module L = Era_sets.Harris_list.Make (S) in
      let dl = L.create ext g in
      ignore ((L.ops (L.handle dl ext) ~record:false).SI.insert 2);
      spawn_all (fun ctx -> L.ops (L.handle dl ctx) ~record:false)
    | `Michael ->
      let module L = Era_sets.Michael_list.Make (S) in
      let dl = L.create ext g in
      ignore ((L.ops (L.handle dl ext) ~record:false).SI.insert 2);
      spawn_all (fun ctx -> L.ops (L.handle dl ctx) ~record:false));
    sched
  in
  {
    Ex.name =
      ("qcheck/"
      ^ (match structure with `Harris -> "harris" | `Michael -> "michael"));
    nthreads;
    params = [];
    robustness_bound = None;
    make;
  }

let gen_case =
  QCheck.Gen.(
    let gen_op =
      map2
        (fun c k -> match c with 0 -> I k | 1 -> D k | _ -> C k)
        (int_bound 2) (int_range 1 3)
    in
    let gen_ops = list_size (int_range 1 3) gen_op in
    triple (oneofl [ `Harris; `Michael ]) gen_ops gen_ops)

let arb_case =
  QCheck.make
    ~print:(fun (structure, a, b) ->
      Fmt.str "%s [%a] [%a]"
        (match structure with `Harris -> "harris" | `Michael -> "michael")
        Fmt.(list ~sep:comma (of_to_string pp_qop))
        a
        Fmt.(list ~sep:comma (of_to_string pp_qop))
        b)
    gen_case

(* With pruning off the bounded tree is enumerated in full, so parallel
   and sequential searches must visit exactly the same runs — same
   deviation-point fingerprint set, same run/state counts — whatever the
   worker interleaving. EBR targets have no safety violation to cut the
   search short, which keeps the comparison exact. *)
let prop_fp_equivalence =
  QCheck.Test.make
    ~name:"pruning off: parallel visits the same fingerprint set" ~count:10
    arb_case
    (fun (structure, ops0, ops1) ->
      let target = op_target ~structure ~scheme_name:"ebr" [| ops0; ops1 |] in
      let config =
        {
          Ex.default_config with
          Ex.max_preemptions = 1;
          max_runs = 30_000;
          shrink = false;
          prune = false;
          record_fps = true;
        }
      in
      let seq = Ex.explore ~config target in
      QCheck.assume (seq.Ex.res_cex = None);
      (* the space must have been exhausted, not budget-truncated *)
      QCheck.assume (seq.Ex.res_stats.Ex.levels_completed = 2);
      let same par =
        par.Ex.res_fps = seq.Ex.res_fps
        && par.Ex.res_stats.Ex.runs = seq.Ex.res_stats.Ex.runs
        && par.Ex.res_stats.Ex.states = seq.Ex.res_stats.Ex.states
        && par.Ex.res_cex = None
      in
      List.for_all
        (fun d ->
          (* With pruning off, the work-stealing engine enumerates the
             same full tree as the level-synchronous one — only in a
             different order. *)
          same (Ex.explore ~config:(with_domains d config) target)
          && same (Ex.explore ~config:(with_steal d config) target))
        diff_domain_counts)

(* Soundness: whatever schedule a parallel search reports, the sequential
   replayer must reproduce the violation — a parallel-only artifact would
   surface here as an irreproducible counterexample. *)
let prop_parallel_sound =
  QCheck.Test.make
    ~name:"parallel violations always replay sequentially" ~count:8 arb_case
    (fun (structure, ops0, ops1) ->
      let target = op_target ~structure ~scheme_name:"hp" [| ops0; ops1 |] in
      let config =
        {
          Ex.default_config with
          Ex.max_preemptions = 1;
          max_runs = 5_000;
          shrink_budget = 100;
        }
      in
      List.for_all
        (fun d ->
          match
            (Ex.explore ~config:(with_domains d config) target).Ex.res_cex
          with
          | None -> true
          | Some c -> (
            match (Ex.run_steps target c.Ex.c_steps).Ex.rp_violation with
            | Some v -> v.Ex.v_kind = kind_of_cex c
            | None -> false))
        diff_domain_counts)

(* The DPOR soundness property: sleep-set reduction never suppresses a
   violating schedule. On each random target the classic sequential
   search and the DPOR sequential search must agree on {e whether} a
   violation exists within the bound (sleep sets only cut schedules
   that commute with explored ones), and a DPOR-found violation must
   replay sequentially with classic semantics. *)
let prop_dpor_sound =
  QCheck.Test.make
    ~name:"sleep sets never suppress a violating schedule" ~count:12 arb_case
    (fun (structure, ops0, ops1) ->
      let target = op_target ~structure ~scheme_name:"hp" [| ops0; ops1 |] in
      let config =
        {
          Ex.default_config with
          Ex.max_preemptions = 1;
          max_runs = 30_000;
          shrink = false;
        }
      in
      let classic = Ex.explore ~config target in
      let dpor = Ex.explore ~config:(with_dpor config) target in
      (classic.Ex.res_cex = None) = (dpor.Ex.res_cex = None)
      && dpor.Ex.res_stats.Ex.runs <= classic.Ex.res_stats.Ex.runs
      &&
      match dpor.Ex.res_cex with
      | None -> true
      | Some c -> (
        match (Ex.run_steps target c.Ex.c_steps).Ex.rp_violation with
        | Some v -> v.Ex.v_kind = kind_of_cex c
        | None -> false))

(* ------------------------------------------------------------------ *)
(* Crash safety: injected worker faults                                *)
(* ------------------------------------------------------------------ *)

exception Injected_fault

let test_worker_crash_queue_integrity () =
  let target = App.explore_target (scheme "ebr") App.Harris in
  let hits = Atomic.make 0 in
  let hook slot =
    if slot mod 5 = 3 then begin
      Atomic.incr hits;
      raise Injected_fault
    end
  in
  let config =
    {
      Ex.default_config with
      Ex.max_runs = 200;
      domains = 4;
      shrink = false;
      fault_hook = Some hook;
    }
  in
  (* The real assertion is that this returns at all: a worker dying with
     the queue's active count held would deadlock the level barrier. *)
  let r = Ex.explore ~config target in
  let s = r.Ex.res_stats in
  Alcotest.(check bool) "faults fired" true (Atomic.get hits > 0);
  Alcotest.(check int) "every fault reported as a failed run"
    (Atomic.get hits) s.Ex.failed_runs;
  Alcotest.(check bool)
    "frontier survived the crashes (other prefixes still explored)" true
    (s.Ex.runs > s.Ex.failed_runs);
  Alcotest.(check bool) "partial-coverage report: search still concluded"
    true
    (s.Ex.runs = 200 || s.Ex.levels_completed > 0)

let test_sequential_fault_partial_report () =
  let target = App.explore_target (scheme "ebr") App.Harris in
  let hook slot = if slot = 2 then raise Injected_fault in
  let config =
    {
      Ex.default_config with
      Ex.max_runs = 50;
      shrink = false;
      fault_hook = Some hook;
    }
  in
  let r = Ex.explore ~config target in
  Alcotest.(check int) "one failed run" 1 r.Ex.res_stats.Ex.failed_runs;
  Alcotest.(check int) "budget still fully used" 50 r.Ex.res_stats.Ex.runs

(* ------------------------------------------------------------------ *)
(* Heartbeat under parallel load; budget boundary                      *)
(* ------------------------------------------------------------------ *)

(* Heartbeat stress (the per-domain-counter data-race regression): with
   a 2-domain search reporting after every run, the coordinator reads
   the per-domain run counters while the other worker is writing its
   own — previously through a plain int array (an unsynchronized race in
   the OCaml memory model), now through per-slot atomics. The test
   asserts every snapshot is well-formed and the final per-domain
   breakdown exactly accounts for the budget. *)
let heartbeat_stress config =
  let target = App.explore_target (scheme "ebr") App.Harris in
  let beats = ref 0 in
  let bad = ref [] in
  let config =
    {
      config with
      Ex.max_runs = 150;
      shrink = false;
      progress_every = 1;
      on_progress =
        Some
          (fun p ->
            incr beats;
            if Array.length p.Ex.pg_per_domain_runs <> config.Ex.domains then
              bad := "per-domain array length" :: !bad;
            if Array.exists (fun n -> n < 0) p.Ex.pg_per_domain_runs then
              bad := "negative per-domain count" :: !bad;
            (* the CAS budget reserve: the run counter may never
               overshoot the budget, even transiently *)
            if p.Ex.pg_runs > 150 then bad := "runs above budget" :: !bad;
            if p.Ex.pg_budget_left < 0 then bad := "negative budget" :: !bad);
    }
  in
  let r = Ex.explore ~config target in
  let s = r.Ex.res_stats in
  Alcotest.(check (list string)) "all snapshots well-formed" [] !bad;
  Alcotest.(check bool) "heartbeats fired" true (!beats > 0);
  Alcotest.(check int) "per-domain breakdown sums to runs" s.Ex.runs
    (List.fold_left ( + ) 0 s.Ex.per_domain_runs);
  Alcotest.(check bool) "budget respected in final stats" true
    (s.Ex.runs <= 150)

let test_heartbeat_stress_queue () =
  heartbeat_stress (with_domains 2 Ex.default_config)

let test_heartbeat_stress_steal () =
  heartbeat_stress (with_steal 2 Ex.default_config)

(* Budget boundary regression: with several workers racing the last few
   run slots, the old fetch-and-add-then-rollback reservation could
   both overshoot [max_runs] transiently and under-count after the
   racing rollbacks; the CAS reserve hands out exactly [max_runs]
   slots. An awkward budget (not divisible by the domain count) on a
   violation-free target exercises the contention at the boundary. *)
let budget_boundary config =
  let target = App.explore_target (scheme "ebr") App.Harris in
  let config = { config with Ex.max_runs = 7; shrink = false } in
  let r = Ex.explore ~config target in
  let s = r.Ex.res_stats in
  Alcotest.(check int) "exactly max_runs runs" 7 s.Ex.runs;
  Alcotest.(check int) "per-domain breakdown accounts for every run" 7
    (List.fold_left ( + ) 0 s.Ex.per_domain_runs)

let test_budget_boundary_queue () =
  budget_boundary (with_domains 4 Ex.default_config)

let test_budget_boundary_steal () =
  budget_boundary (with_steal 4 Ex.default_config)

(* ------------------------------------------------------------------ *)
(* Work queue: quiescence wake-up                                      *)
(* ------------------------------------------------------------------ *)

module Wq = Era_explore.Work_queue

(* Single-threaded semantics: batched handoff, quiescence only when
   drained AND no batch outstanding. *)
let test_work_queue_semantics () =
  let q = Wq.create ~batch:2 () in
  Wq.push_batch q [ 1; 2; 3 ];
  (match Wq.take q with
  | Some [ 1; 2 ] -> ()
  | _ -> Alcotest.fail "first take should hand out [1; 2]");
  (* queue still holds 3 and the caller is active: more work can come *)
  Wq.push_batch q [ 4 ];
  Wq.batch_done q;
  (match Wq.take q with
  | Some [ 3; 4 ] -> ()
  | _ -> Alcotest.fail "second take should hand out [3; 4]");
  Wq.batch_done q;
  Alcotest.(check bool) "drained queue with no active worker quiesces" true
    (Wq.take q = None);
  Alcotest.(check bool) "take after quiescence stays None" true
    (Wq.take q = None)

(* The lost-wakeup scenario the audit covered: a worker blocks in [take]
   on an empty queue while the last active worker finishes a batch that
   produced no children. [batch_done] must wake the waiter (it
   broadcasts whenever the active count hits zero); if that wake-up were
   conditioned away, the waiter would sleep forever and this test would
   hang rather than fail. *)
let test_work_queue_last_worker_wakeup () =
  let q = Wq.create ~batch:1 () in
  Wq.push_batch q [ 42 ];
  (match Wq.take q with
  | Some [ 42 ] -> ()
  | _ -> Alcotest.fail "setup take");
  (* this domain now blocks: queue empty, one active worker remains *)
  let waiter = Domain.spawn (fun () -> Wq.take q) in
  Unix.sleepf 0.05;
  Wq.batch_done q;
  Alcotest.(check bool) "blocked waiter woken into quiescence" true
    (Domain.join waiter = None)

(* ------------------------------------------------------------------ *)
(* Save: parent-directory handling                                     *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_save_creates_parent_dirs () =
  let c, _ = cex_and_target "hp" in
  let base = Filename.temp_file "explore_out" "" in
  Sys.remove base;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists base then rm_rf base)
    (fun () ->
      let file =
        List.fold_left Filename.concat base [ "nested"; "deep"; "cex.json" ]
      in
      Ex.save ~file c;
      Alcotest.(check bool) "file written" true (Sys.file_exists file);
      match Ex.load ~file with
      | Ok c' ->
        Alcotest.(check (list int)) "round-trips" c.Ex.c_steps c'.Ex.c_steps
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_save_clear_error () =
  let c, _ = cex_and_target "hp" in
  (* A plain file standing where a directory is needed: creation cannot
     succeed, and the error must name the offending path. *)
  let blocker = Filename.temp_file "explore_block" "" in
  Fun.protect
    ~finally:(fun () -> Sys.remove blocker)
    (fun () ->
      let file = Filename.concat (Filename.concat blocker "sub") "cex.json" in
      match Ex.save ~file c with
      | () -> Alcotest.fail "save through a file should not succeed"
      | exception Sys_error msg ->
        Alcotest.(check bool) "error names the path" true
          (let sub = file and msg = msg in
           let n = String.length sub in
           let rec contains i =
             i + n <= String.length msg
             && (String.sub msg i n = sub || contains (i + 1))
           in
           contains 0))

(* ------------------------------------------------------------------ *)
(* Schedule bookkeeping                                                *)
(* ------------------------------------------------------------------ *)

let test_preemption_count () =
  (* First choice and post-exit switches are free; only a switch away
     from a thread that still runs later is a preemption. *)
  Alcotest.(check int) "solo" 0 (Ex.preemptions_of_steps [ 0; 0; 0 ]);
  Alcotest.(check int) "handoff at exit" 0
    (Ex.preemptions_of_steps [ 0; 0; 1; 1 ]);
  Alcotest.(check int) "one preemption" 1
    (Ex.preemptions_of_steps [ 0; 1; 0 ]);
  Alcotest.(check int) "two preemptions" 2
    (Ex.preemptions_of_steps [ 0; 1; 0; 1 ])

let () =
  Alcotest.run "explore"
    [
      ( "explorer",
        [
          Alcotest.test_case "deterministic search" `Quick test_deterministic;
          Alcotest.test_case "rediscovers Figure 2 (hp/he/ibr)" `Quick
            test_rediscovers_figure2;
          Alcotest.test_case "ebr safe under same search" `Quick test_ebr_safe;
          Alcotest.test_case "debra: lincheck finds non-linearizability"
            `Quick test_debra_lincheck_finds_failure;
          Alcotest.test_case "debra: bounded safety certificate" `Quick
            test_debra_safety_certificate;
          Alcotest.test_case "rediscovers Figure 1 dichotomy" `Quick
            test_rediscovers_figure1_dichotomy;
        ] );
      ( "shrink-replay",
        [
          Alcotest.test_case "shrunk schedule still violates" `Quick
            test_shrunk_still_violates;
          Alcotest.test_case "replay trace is identical" `Quick
            test_replay_trace_identical;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "save/load/replay round trip" `Quick
            test_save_load_replay;
          Alcotest.test_case "preemption counting" `Quick
            test_preemption_count;
        ] );
      ( "parallel-differential",
        [
          Alcotest.test_case "built-in targets at 2 and 4 domains" `Quick
            test_differential;
          Alcotest.test_case "domains=1 bit-identical to sequential" `Quick
            test_domains1_bit_identical;
          Alcotest.test_case "dpor agrees with classic on built-ins" `Quick
            test_dpor_differential;
          Alcotest.test_case "work stealing agrees on built-ins" `Quick
            test_steal_differential;
          Alcotest.test_case "dpor search is deterministic" `Quick
            test_dpor_deterministic;
        ] );
      ( "parallel-qcheck",
        [
          QCheck_alcotest.to_alcotest prop_fp_equivalence;
          QCheck_alcotest.to_alcotest prop_parallel_sound;
          QCheck_alcotest.to_alcotest prop_dpor_sound;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "worker fault does not deadlock the queue"
            `Quick test_worker_crash_queue_integrity;
          Alcotest.test_case "sequential fault gives a partial report" `Quick
            test_sequential_fault_partial_report;
        ] );
      ( "heartbeat-budget",
        [
          Alcotest.test_case "heartbeat stress, queue engine" `Quick
            test_heartbeat_stress_queue;
          Alcotest.test_case "heartbeat stress, steal engine" `Quick
            test_heartbeat_stress_steal;
          Alcotest.test_case "budget boundary, queue engine" `Quick
            test_budget_boundary_queue;
          Alcotest.test_case "budget boundary, steal engine" `Quick
            test_budget_boundary_steal;
        ] );
      ( "work-queue",
        [
          Alcotest.test_case "batched handoff and quiescence" `Quick
            test_work_queue_semantics;
          Alcotest.test_case "last worker wakes blocked taker" `Quick
            test_work_queue_last_worker_wakeup;
        ] );
      ( "save-dirs",
        [
          Alcotest.test_case "save creates parent directories" `Quick
            test_save_creates_parent_dirs;
          Alcotest.test_case "save fails with a clear error" `Quick
            test_save_clear_error;
        ] );
    ]
